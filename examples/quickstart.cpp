//===- examples/quickstart.cpp - Five-minute tour of the public API --------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Smallest end-to-end use of the library: parse a MiniC snippet, run the
/// use-after-free checker, print the reports. The snippet is the paper's
/// Figure 5 example — foo frees its parameter through an alias, the caller
/// dereferences it afterwards.
///
/// Build & run:  cmake --build build && ./build/examples/example_quickstart
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "svfa/GlobalSVFA.h"

#include <cstdio>

using namespace pinpoint;

int main() {
  // 1. The program under analysis (the paper's Fig. 5, in MiniC syntax).
  const char *Source = R"(
    int foo(int *a, int *c) {
      int *b = a;
      free(b);
      bool t = test(c);
      if (t) {
        output(*c, *a);
      }
      return *c;
    }
    bool test(int *e) {
      bool f = e != 0;
      return f;
    }
  )";

  // 2. Parse into the IR.
  ir::Module M;
  std::vector<frontend::Diag> Diags;
  if (!frontend::parseModule(Source, M, Diags)) {
    for (const auto &D : Diags)
      std::fprintf(stderr, "parse error: %s\n", D.str().c_str());
    return 1;
  }

  // 3. Run the whole pipeline + the use-after-free checker. checkModule is
  //    the one-call convenience; see embed_api.cpp for the layered APIs.
  smt::ExprContext Ctx;
  auto Reports =
      svfa::checkModule(M, Ctx, checkers::useAfterFreeChecker());

  // 4. Print what it found: the dereference of *a after free(b), reached
  //    through the alias b = a, guarded by a satisfiable path condition.
  std::printf("found %zu report(s)\n", Reports.size());
  for (const auto &R : Reports) {
    std::printf("%s: %s:%s frees a value that %s:%s dereferences\n",
                R.Checker.c_str(), R.SourceFn.c_str(),
                R.Source.str().c_str(), R.SinkFn.c_str(),
                R.Sink.str().c_str());
    for (const auto &Step : R.Path)
      std::printf("   %s\n", Step.c_str());
  }
  return Reports.empty() ? 1 : 0; // Expect one report.
}
