//===- examples/taint_audit.cpp - Auditing a small server for taint flows --===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Audits a hand-written "mini server" for the paper's two taint
/// properties: path traversal (CWE-23: user input reaching file
/// operations) and data transmission (CWE-402: secrets reaching the
/// network). Shows custom checker specs too: adding project-specific
/// sources and sinks is just editing the spec sets.
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "svfa/GlobalSVFA.h"

#include <cstdio>

using namespace pinpoint;

int main() {
  // A request handler with two real flaws and one clean flow:
  //  * the requested path flows into fopen (path traversal);
  //  * the session secret is written into the reply buffer and sent;
  //  * the static banner is sent too, which is fine.
  const char *Server = R"(
    int read_request() {
      int raw = recv();
      int decoded = raw + 0;
      return decoded;
    }

    int load_page(int path) {
      int fd = fopen(path);
      return fd;
    }

    void write_reply(int *buf, int data) {
      *buf = data;
    }

    void handle(bool authed) {
      int req = read_request();
      int page = load_page(req);
      print(page);

      int *reply = malloc();
      int banner = 200;
      write_reply(reply, banner);
      if (authed) {
        int secret = getpass();
        int token = secret * 31;
        write_reply(reply, token);
      }
      int payload = *reply;
      sendto(payload);
    }
  )";

  ir::Module M;
  std::vector<frontend::Diag> Diags;
  if (!frontend::parseModule(Server, M, Diags)) {
    for (const auto &D : Diags)
      std::fprintf(stderr, "parse error: %s\n", D.str().c_str());
    return 1;
  }

  smt::ExprContext Ctx;
  svfa::AnalyzedModule AM(M, Ctx);

  // The built-in CWE-23 / CWE-402 specs...
  checkers::CheckerSpec Specs[] = {checkers::pathTraversalChecker(),
                                   checkers::dataTransmissionChecker()};
  // ...plus a custom one: this project treats log output as a sink too.
  checkers::CheckerSpec Custom = checkers::dataTransmissionChecker();
  Custom.Name = "secret-to-log";
  Custom.SinkArgFns = {"print"};

  for (const auto &Spec : {Specs[0], Specs[1], Custom}) {
    svfa::GlobalSVFA Engine(AM, Spec);
    auto Reports = Engine.run();
    std::printf("[%s] %zu finding(s)\n", Spec.Name.c_str(), Reports.size());
    for (const auto &R : Reports)
      std::printf("  %s:%s -> %s:%s\n", R.SourceFn.c_str(),
                  R.Source.str().c_str(), R.SinkFn.c_str(),
                  R.Sink.str().c_str());
  }

  std::puts("\nExpected: one path-traversal (recv -> fopen via two calls),"
            "\none data-transmission (getpass -> sendto through the heap"
            "\nreply buffer and the write_reply connector), no log leak.");
  return 0;
}
