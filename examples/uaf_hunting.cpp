//===- examples/uaf_hunting.cpp - Precision study on a generated subject ---===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The research-harness workflow: generate a synthetic subject with planted
/// ground truth, run the use-after-free checker in both path-sensitive and
/// path-insensitive (SVF-like) modes, and compare precision — a miniature
/// of the paper's Table 1 experiment that runs in under a second.
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "svfa/GlobalSVFA.h"
#include "workload/Evaluate.h"

#include <cstdio>

using namespace pinpoint;

namespace {

std::vector<workload::ReportView> views(const std::vector<svfa::Report> &Rs) {
  std::vector<workload::ReportView> Out;
  for (const auto &R : Rs)
    Out.push_back({R.Source.Line, R.Sink.Line,
                   workload::BugChecker::UseAfterFree});
  return Out;
}

} // namespace

int main() {
  // A ~3K-line subject: 5 real bugs, 8 infeasible traps, 1 env-guarded FP.
  workload::WorkloadConfig Cfg;
  Cfg.Seed = 0xCAFE;
  Cfg.TargetLoC = 3000;
  Cfg.FeasibleUAF = 5;
  Cfg.InfeasibleUAF = 8;
  Cfg.EnvGuardedUAF = 1;
  Cfg.AliasNoise = 8;
  workload::Workload W = workload::generate(Cfg);
  std::printf("generated subject: %zu LoC, %zu planted bugs\n\n", W.LoC,
              W.Bugs.size());

  for (bool PathSensitive : {true, false}) {
    ir::Module M;
    std::vector<frontend::Diag> Diags;
    if (!frontend::parseModule(W.Source, M, Diags)) {
      std::fprintf(stderr, "generated source failed to parse!\n");
      return 1;
    }
    smt::ExprContext Ctx;
    svfa::GlobalOptions O;
    O.PathSensitive = PathSensitive;
    auto Reports =
        svfa::checkModule(M, Ctx, checkers::useAfterFreeChecker(), O);
    auto Eval = workload::evaluate(W.Bugs, views(Reports),
                                   workload::BugChecker::UseAfterFree);

    std::printf("%s mode:\n", PathSensitive ? "path-sensitive (Pinpoint)"
                                            : "path-insensitive (SVF-like)");
    std::printf("  reports: %d  TP: %d  FP: %d  missed: %d  "
                "(FP rate %.1f%%, recall %.0f%%)\n\n",
                Eval.Reports, Eval.TruePositives, Eval.FalsePositives,
                Eval.FalseNegatives, Eval.fpRate() * 100,
                Eval.recall() * 100);
  }

  std::puts("Path sensitivity removes the infeasible-trap reports without "
            "losing any real bug —\nthe core of the paper's precision "
            "argument.");
  return 0;
}
