//===- examples/embed_api.cpp - Layer-by-layer tour of the library ---------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Uses each layer of the library directly instead of the one-call
/// checkModule facade: the constraint DAG and solvers, the frontend and
/// SSA, the quasi path-sensitive points-to analysis, the connector
/// interfaces, and SEG constraint queries. This is the embedding guide for
/// building new analyses on top of the substrate.
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/SSA.h"
#include "smt/LinearSolver.h"
#include "smt/Solver.h"
#include "svfa/Pipeline.h"

#include <cstdio>

using namespace pinpoint;

int main() {
  //===--- Layer 1: the constraint DAG + staged solving -------------------===
  smt::ExprContext Ctx;
  const smt::Expr *T = Ctx.freshBoolVar("theta");
  const smt::Expr *X = Ctx.freshIntVar("x");
  const smt::Expr *Easy = Ctx.mkAnd(T, Ctx.mkNot(T)); // folds to false
  const smt::Expr *Hard =
      Ctx.mkAnd(Ctx.mkCmp(smt::ExprKind::Gt, X, Ctx.getInt(5)),
                Ctx.mkCmp(smt::ExprKind::Lt, X, Ctx.getInt(2)));

  smt::LinearSolver Linear(Ctx);
  smt::StagedSolver Solver(Ctx, smt::createDefaultSolver(Ctx));
  std::printf("layer 1 (smt): easy contradiction folds to '%s'; "
              "hard one is %s by the backend\n",
              Ctx.toString(Easy).c_str(),
              smt::toString(Solver.checkSat(Hard)));

  //===--- Layer 2: frontend + SSA ----------------------------------------===
  const char *Source = R"(
    int pick(int *p, int *q, bool sel) {
      int **cell = malloc();
      *cell = p;
      if (sel) {
        *cell = q;
      }
      int *chosen = *cell;
      return *chosen;
    }
  )";
  ir::Module M;
  std::vector<frontend::Diag> Diags;
  if (!frontend::parseModule(Source, M, Diags))
    return 1;
  std::printf("layer 2 (ir): parsed %zu function(s)\n",
              M.functions().size());

  //===--- Layer 3: the full pipeline (PTA, connectors, SEG) --------------===
  svfa::AnalyzedModule AM(M, Ctx);
  ir::Function *F = M.function("pick");
  const auto &Info = AM.info(F);

  // Quasi path-sensitive points-to: the load *cell sees {q under sel,
  // p under !sel}.
  const ir::LoadStmt *Load = nullptr;
  for (ir::BasicBlock *B : F->blocks())
    for (ir::Stmt *S : B->stmts())
      if (auto *L = dyn_cast<ir::LoadStmt>(S))
        if (L->derefs() == 1 && !L->isSynthetic() && !Load)
          Load = L; // First real load: the read of *cell.
  std::printf("layer 3 (pta): the load of *cell may observe:\n");
  for (const auto &[CV, Cond] : Info.PTA.loadDeps(Load))
    std::printf("   %s under %s\n",
                CV.isInitial() ? "<initial>" : CV.V->str().c_str(),
                Ctx.toString(Cond).c_str());

  // Connector interface: pick REFs *(p,1)/*(q,1) through the deref of the
  // chosen pointer.
  std::printf("layer 3 (connectors): %zu aux param(s), %zu aux return(s)\n",
              Info.Interface.RefPaths.size(),
              Info.Interface.ModPaths.size());

  //===--- Layer 4: SEG constraint queries --------------------------------===
  // DD closure of the returned value: its symbolic definition chain,
  // with the function's parameters left open (Example 3.7 of the paper).
  const ir::ReturnStmt *Ret = F->returnStmt();
  const auto *RetVal = dyn_cast<ir::Variable>(Ret->values()[0]);
  const seg::Closure &DD = Info.Seg->dd(RetVal);
  std::printf("layer 4 (seg): DD(retval) has %zu open parameter(s); "
              "constraint size %u node(s)\n",
              DD.OpenParams.size(), DD.C->id());
  return 0;
}
