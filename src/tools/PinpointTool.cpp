//===- tools/PinpointTool.cpp - The pinpoint command-line driver -----------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `pinpoint` tool: parses MiniC sources, runs the selected checkers
/// through the full pipeline, and prints reports and statistics.
///
///   pinpoint [options] file.mc [file2.mc ...]
///     --checker=LIST    comma list of uaf,df,taint-path,taint-data,
///                       null-deref,leak (default: uaf,df)
///     --max-depth=N     calling-context depth (default 6)
///     --no-path-sensitivity   skip the SMT feasibility stage
///     --no-linear-filter      disable the linear-time pre-filter
///     --solver-cache=MODE     on | off (default on): the query-acceleration
///                       layer in the staged solver — shared verdict cache +
///                       conjunct slicing (DESIGN.md section 11). Reports
///                       are byte-identical across modes; only speed and
///                       the acceleration counters change.
///     --demand=MODE     on | off (default on): demand-driven value-flow
///                       slicing (DESIGN.md section 13). A relevance
///                       pre-pass over the call graph skips summary
///                       construction for functions outside the
///                       bidirectional source/sink cones of every enabled
///                       checker (checkers without syntactic sinks fall
///                       back to the source-only cone). With --cache-dir,
///                       the computed relevance is persisted and warm runs
///                       replay it instead of re-walking the graph.
///                       Reports and the degradation log are byte-identical
///                       across modes; only speed, memory and the [demand]
///                       counters change.
///     --relevance-refresh=MODE  auto | full | local (default auto): how a
///                       warm run reacts to a persisted relevance entry
///                       from an edited subject (DESIGN.md section 15).
///                       `local` diffs per-function fingerprints and
///                       re-scans only the dirty cone, `full` always reruns
///                       the whole pre-pass, `auto` picks local below a
///                       dirty-fraction threshold. Pure performance policy:
///                       reports are byte-identical across modes.
///     --dump-ir         print the transformed IR
///     --stats           print pipeline and solver statistics
///     --jobs=N          worker threads (default 1 = serial; 0 = all
///                       hardware threads). Reports are byte-identical
///                       across values of N.
///     --cache-dir=PATH  persistent function-summary cache for incremental
///                       reanalysis; unchanged call-graph SCCs load their
///                       pipeline artifacts instead of rebuilding. Reports
///                       are byte-identical to a from-scratch run. The
///                       directory also holds the run journal: an
///                       interrupted run records its completed SCCs so a
///                       rerun resumes instead of starting over.
///     --cache=MODE      off | read | readwrite (default readwrite when
///                       --cache-dir is given)
///
///   Resource governance (see support/ResourceGovernor.h):
///     --time-budget-ms=N      whole-run wall clock; past it, remaining
///                             work degrades instead of running
///     --fn-budget-ms=N        per-function wall clock in the global stage
///     --solver-timeout-ms=N   per-query SMT timeout (default 10000)
///     --max-closure-steps=N   step budget per value-closure walk
///     --max-pta-steps=N       step budget per local points-to pass
///     --max-fn-stmts=N        skip (degrade) functions larger than N stmts
///     --mem-budget-mb=N       governed-memory budget; the largest SCCs
///                             are deterministically degraded until the
///                             projected footprint fits (0 = unlimited)
///     --retry-transient=N     retries per transient SMT backend failure
///                             (default 2; 0 = fail to Unknown immediately)
///     --fault-inject=SPEC     deterministic fault injection
///     --degradation-log       print every degradation event
///
/// The tool always terminates with best-effort reports: budget hits, solver
/// Unknowns and per-function/per-checker failures degrade gracefully and
/// are surfaced in the [governor] stats line. SIGINT/SIGTERM cancel the run
/// cooperatively: in-flight work drains at the next task boundary and the
/// partial report, statistics and degradation log are still flushed.
///
/// Exit status: 0 = analysis completed (reports, possibly degraded);
/// 2 = usage or input error; 3 = interrupted, partial results flushed;
/// 4 = internal error.
///
//===----------------------------------------------------------------------===//

#include "tools/PinpointTool.h"

#include "checkers/Checker.h"
#include "checkers/SpecialCheckers.h"
#include "frontend/Parser.h"
#include "support/Interrupt.h"
#include "support/ResourceGovernor.h"
#include "support/Statistics.h"
#include "support/SummaryCache.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "svfa/GlobalSVFA.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

using namespace pinpoint;

namespace pinpoint::tools {

namespace {

const char *const KnownCheckers[] = {"uaf",        "df",   "taint-path",
                                     "taint-data", "null-deref", "leak"};

struct Options {
  std::vector<std::string> Files;
  std::vector<std::string> Checkers{"uaf", "df"};
  int MaxDepth = 6;
  bool PathSensitive = true;
  bool LinearFilter = true;
  bool SolverCache = true;
  bool Demand = true;
  bool DumpIR = false;
  bool Stats = false;
  bool DegradationLog = false;
  long long TimeBudgetMs = -1;
  long long FnBudgetMs = -1;
  long long SolverTimeoutMs = 10000;
  long long MaxClosureSteps = 0;
  long long MaxPTASteps = 0;
  long long MaxFnStmts = 0;
  long long MemBudgetMB = 0;
  long long RetryTransient = 2;
  long long Jobs = 1;
  std::string Schedule = "steal"; ///< "steal" or "fifo".
  std::string RelevanceRefresh = "auto"; ///< "auto", "full" or "local".
  std::string FaultSpec;
  std::string CacheDir;
  std::string CacheMode; ///< "", "off", "read" or "readwrite".
};

void usage() {
  std::puts(
      "usage: pinpoint [options] file.mc [...]\n"
      "  --checker=LIST           uaf,df,taint-path,taint-data,null-deref,"
      "leak\n"
      "  --max-depth=N            calling context depth (default 6)\n"
      "  --no-path-sensitivity    report all candidates (no SMT stage)\n"
      "  --no-linear-filter       disable the linear-time pre-filter\n"
      "  --solver-cache=MODE      on | off (default on): SMT verdict cache "
      "+ conjunct slicing\n"
      "  --demand=MODE            on | off (default on): demand-driven "
      "value-flow slicing\n"
      "  --relevance-refresh=MODE auto | full | local (default auto): warm-"
      "run relevance refresh policy for edited subjects\n"
      "  --dump-ir                print the transformed IR\n"
      "  --stats                  print statistics\n"
      "  --jobs=N                 worker threads (default 1 = serial, 0 = "
      "all hardware threads)\n"
      "  --schedule=MODE          steal | fifo (default steal): work-stealing "
      "rank-priority scheduler or the legacy FIFO queue\n"
      "  --cache-dir=PATH         persistent function-summary cache for "
      "incremental reanalysis\n"
      "  --cache=MODE             off | read | readwrite (default readwrite "
      "when --cache-dir is given)\n"
      "resource governance:\n"
      "  --time-budget-ms=N       whole-run wall clock budget\n"
      "  --fn-budget-ms=N         per-function wall clock budget\n"
      "  --solver-timeout-ms=N    per-query SMT timeout (default 10000)\n"
      "  --max-closure-steps=N    step budget per value-closure walk\n"
      "  --max-pta-steps=N        step budget per points-to pass\n"
      "  --max-fn-stmts=N         degrade functions larger than N stmts\n"
      "  --mem-budget-mb=N        governed-memory budget (0 = unlimited)\n"
      "  --retry-transient=N      retries per transient solver failure "
      "(default 2)\n"
      "  --fault-inject=SPEC      e.g. seed=7,solver-unknown=50,throw-fn=f\n"
      "  --degradation-log        print every degradation event\n"
      "exit codes: 0 = completed, 2 = usage/input error, 3 = interrupted "
      "(partial results flushed), 4 = internal error");
}

/// Strict non-negative integer parse of the value part of --opt=N.
/// Garbage, empty, negative and overflowing values are all rejected.
bool parseCount(const std::string &Arg, size_t PrefixLen, long long &Out) {
  const std::string Val = Arg.substr(PrefixLen);
  if (Val.empty() || Val[0] == '-' || Val[0] == '+')
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Val.c_str(), &End, 10);
  if (errno != 0 || End != Val.c_str() + Val.size())
    return false;
  Out = V;
  return true;
}

bool knownChecker(const std::string &Name) {
  for (const char *K : KnownCheckers)
    if (Name == K)
      return true;
  return false;
}

enum class ParseResult { Ok, Help, Error };

ParseResult parseArgs(int Argc, char **Argv, Options &O) {
  // Numeric --opt=N flags that share the strict-parse-and-error path.
  struct CountFlag {
    const char *Prefix;
    long long *Slot;
  } CountFlags[] = {
      {"--max-depth=", nullptr}, // Handled below (int slot).
      {"--time-budget-ms=", &O.TimeBudgetMs},
      {"--fn-budget-ms=", &O.FnBudgetMs},
      {"--solver-timeout-ms=", &O.SolverTimeoutMs},
      {"--max-closure-steps=", &O.MaxClosureSteps},
      {"--max-pta-steps=", &O.MaxPTASteps},
      {"--max-fn-stmts=", &O.MaxFnStmts},
      {"--mem-budget-mb=", &O.MemBudgetMB},
      {"--retry-transient=", &O.RetryTransient},
      {"--jobs=", &O.Jobs},
  };

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--checker=", 0) == 0) {
      O.Checkers.clear();
      std::stringstream SS(A.substr(10));
      std::string Item;
      while (std::getline(SS, Item, ','))
        O.Checkers.push_back(Item);
      if (O.Checkers.empty()) {
        std::fprintf(stderr, "error: --checker= needs at least one name\n");
        return ParseResult::Error;
      }
      for (const std::string &Name : O.Checkers)
        if (!knownChecker(Name)) {
          std::fprintf(stderr,
                       "error: unknown checker '%s' (expected one of: uaf, "
                       "df, taint-path, taint-data, null-deref, leak)\n",
                       Name.c_str());
          return ParseResult::Error;
        }
    } else if (A.rfind("--max-depth=", 0) == 0) {
      long long V = 0;
      if (!parseCount(A, std::strlen("--max-depth="), V) || V > 64) {
        std::fprintf(stderr,
                     "error: invalid --max-depth value '%s' (expected an "
                     "integer in [0, 64])\n",
                     A.c_str() + std::strlen("--max-depth="));
        return ParseResult::Error;
      }
      O.MaxDepth = static_cast<int>(V);
    } else if (A.rfind("--fault-inject=", 0) == 0) {
      O.FaultSpec = A.substr(std::strlen("--fault-inject="));
    } else if (A.rfind("--cache-dir=", 0) == 0) {
      O.CacheDir = A.substr(std::strlen("--cache-dir="));
      if (O.CacheDir.empty()) {
        std::fprintf(stderr, "error: --cache-dir= needs a path\n");
        return ParseResult::Error;
      }
    } else if (A.rfind("--cache=", 0) == 0) {
      O.CacheMode = A.substr(std::strlen("--cache="));
      if (O.CacheMode != "off" && O.CacheMode != "read" &&
          O.CacheMode != "readwrite") {
        std::fprintf(stderr,
                     "error: invalid --cache value '%s' (expected off, "
                     "read or readwrite)\n",
                     O.CacheMode.c_str());
        return ParseResult::Error;
      }
    } else if (A.rfind("--schedule=", 0) == 0) {
      O.Schedule = A.substr(std::strlen("--schedule="));
      if (O.Schedule != "steal" && O.Schedule != "fifo") {
        std::fprintf(stderr,
                     "error: invalid --schedule value '%s' (expected steal "
                     "or fifo)\n",
                     O.Schedule.c_str());
        return ParseResult::Error;
      }
    } else if (A.rfind("--solver-cache=", 0) == 0) {
      const std::string Mode = A.substr(std::strlen("--solver-cache="));
      if (Mode != "on" && Mode != "off") {
        std::fprintf(stderr,
                     "error: invalid --solver-cache value '%s' (expected on "
                     "or off)\n",
                     Mode.c_str());
        return ParseResult::Error;
      }
      O.SolverCache = Mode == "on";
    } else if (A.rfind("--demand=", 0) == 0) {
      const std::string Mode = A.substr(std::strlen("--demand="));
      if (Mode != "on" && Mode != "off") {
        std::fprintf(stderr,
                     "error: invalid --demand value '%s' (expected on or "
                     "off)\n",
                     Mode.c_str());
        return ParseResult::Error;
      }
      O.Demand = Mode == "on";
    } else if (A.rfind("--relevance-refresh=", 0) == 0) {
      O.RelevanceRefresh = A.substr(std::strlen("--relevance-refresh="));
      if (O.RelevanceRefresh != "auto" && O.RelevanceRefresh != "full" &&
          O.RelevanceRefresh != "local") {
        std::fprintf(stderr,
                     "error: invalid --relevance-refresh value '%s' "
                     "(expected auto, full or local)\n",
                     O.RelevanceRefresh.c_str());
        return ParseResult::Error;
      }
    } else if (A == "--no-path-sensitivity") {
      O.PathSensitive = false;
    } else if (A == "--no-linear-filter") {
      O.LinearFilter = false;
    } else if (A == "--dump-ir") {
      O.DumpIR = true;
    } else if (A == "--stats") {
      O.Stats = true;
    } else if (A == "--degradation-log") {
      O.DegradationLog = true;
    } else if (A == "--help" || A == "-h") {
      // No std::exit here: every exit funnels through pinpointToolMain's
      // single return path (the run-lifecycle contract).
      return ParseResult::Help;
    } else if (!A.empty() && A[0] == '-') {
      bool Matched = false;
      for (const CountFlag &CF : CountFlags) {
        if (!CF.Slot || A.rfind(CF.Prefix, 0) != 0)
          continue;
        if (!parseCount(A, std::strlen(CF.Prefix), *CF.Slot)) {
          std::fprintf(stderr,
                       "error: invalid value in '%s' (expected a "
                       "non-negative integer)\n",
                       A.c_str());
          return ParseResult::Error;
        }
        Matched = true;
        break;
      }
      if (!Matched) {
        std::fprintf(stderr, "unknown option: %s\n", A.c_str());
        return ParseResult::Error;
      }
    } else {
      O.Files.push_back(A);
    }
  }
  if (O.Files.empty()) {
    std::fprintf(stderr, "error: no input files\n");
    return ParseResult::Error;
  }
  if (O.CacheDir.empty() && !O.CacheMode.empty() && O.CacheMode != "off") {
    std::fprintf(stderr, "error: --cache=%s requires --cache-dir=PATH\n",
                 O.CacheMode.c_str());
    return ParseResult::Error;
  }
  return ParseResult::Ok;
}

bool specFor(const std::string &Name, checkers::CheckerSpec &Out) {
  if (Name == "uaf")
    Out = checkers::useAfterFreeChecker();
  else if (Name == "df")
    Out = checkers::doubleFreeChecker();
  else if (Name == "taint-path")
    Out = checkers::pathTraversalChecker();
  else if (Name == "taint-data")
    Out = checkers::dataTransmissionChecker();
  else if (Name == "null-deref")
    Out = checkers::nullDerefChecker();
  else
    return false;
  return true;
}

} // namespace

int pinpointToolMain(int Argc, char **Argv) {
  Options O;
  switch (parseArgs(Argc, Argv, O)) {
  case ParseResult::Help:
    usage();
    return 0;
  case ParseResult::Error:
    usage();
    return 2;
  case ParseResult::Ok:
    break;
  }

  // Read & concatenate the inputs (one module).
  Timer ParseT;
  std::string Source;
  for (const std::string &File : O.Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", File.c_str());
      return 2;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Source += SS.str();
    Source += "\n";
  }

  ir::Module M;
  std::vector<frontend::Diag> Diags;
  if (!frontend::parseModule(Source, M, Diags)) {
    for (const auto &D : Diags)
      std::fprintf(stderr, "error: %s\n", D.str().c_str());
    return 2;
  }
  const double ParseSec = ParseT.seconds();

  // Assemble the resource governor: budgets + fault injection.
  Budget Bud;
  Bud.RunWallMs = O.TimeBudgetMs;
  Bud.FunctionWallMs = O.FnBudgetMs;
  Bud.SolverTimeoutMs = static_cast<int>(O.SolverTimeoutMs);
  Bud.MaxClosureSteps = static_cast<uint64_t>(O.MaxClosureSteps);
  Bud.MaxPTASteps = static_cast<uint64_t>(O.MaxPTASteps);
  Bud.MaxFunctionStmts = static_cast<size_t>(O.MaxFnStmts);
  Bud.MemBudgetMB = O.MemBudgetMB;
  Bud.RetryTransient = static_cast<int>(O.RetryTransient);
  FaultInjector FI;
  if (!O.FaultSpec.empty()) {
    std::string Err;
    if (!FI.parse(O.FaultSpec, Err)) {
      std::fprintf(stderr, "error: --fault-inject: %s\n", Err.c_str());
      return 2;
    }
  }
  ResourceGovernor Gov(Bud, std::move(FI));

  // Cooperative cancellation: SIGINT/SIGTERM flip the process token; every
  // long-running stage polls it at task boundaries, drains, and falls
  // through to the flush below, which prints whatever was found.
  interrupt::installSignalHandlers();
  Gov.setCancelToken(&interrupt::processToken());

  // Everything from here on either completes or is an internal error (4):
  // input validation is done, so an escaping exception is a bug, not a
  // usage problem.
  try {
    const unsigned Jobs = O.Jobs == 0 ? ThreadPool::hardwareConcurrency()
                                      : static_cast<unsigned>(O.Jobs);
    std::unique_ptr<ThreadPool> Pool;
    if (Jobs > 1)
      Pool = std::make_unique<ThreadPool>(Jobs,
                                          O.Schedule == "fifo"
                                              ? ThreadPool::Schedule::Fifo
                                              : ThreadPool::Schedule::Steal);

    std::unique_ptr<SummaryCache> Cache;
    if (!O.CacheDir.empty() && O.CacheMode != "off") {
      Cache = std::make_unique<SummaryCache>(
          O.CacheDir, O.CacheMode == "read" ? SummaryCache::Mode::Read
                                            : SummaryCache::Mode::ReadWrite);
      std::string Err;
      if (!Cache->prepare(Err)) {
        std::fprintf(stderr, "error: --cache-dir: %s\n", Err.c_str());
        return 2;
      }
    }

    Timer Total;
    smt::ExprContext Ctx;

    // Demand spec: the union of every enabled checker's sources and sinks,
    // so the pipeline keeps exactly the functions at least one checker
    // needs. The leak checker has no CheckerSpec; its sources are malloc
    // sites, flagged separately. Built unconditionally: even with
    // --demand=off it keys the memory plan (PlanDemand below), which is
    // what makes the --mem-budget-mb degraded-SCC set identical across
    // demand modes.
    svfa::DemandSpec DS;
    for (const std::string &Name : O.Checkers) {
      if (Name == "leak") {
        DS.LeakSources = true;
        continue;
      }
      checkers::CheckerSpec Spec;
      if (specFor(Name, Spec))
        DS.Checkers.push_back(std::move(Spec));
    }

    svfa::PipelineOptions PO;
    PO.UseLinearFilter = O.LinearFilter;
    PO.Governor = &Gov;
    PO.Pool = Pool.get();
    PO.Cache = Cache.get();
    PO.Demand = O.Demand ? &DS : nullptr;
    PO.PlanDemand = &DS;
    PO.RelevanceRefresh = O.RelevanceRefresh == "full"
                              ? svfa::RelevanceRefreshMode::Full
                          : O.RelevanceRefresh == "local"
                              ? svfa::RelevanceRefreshMode::Local
                              : svfa::RelevanceRefreshMode::Auto;
    svfa::AnalyzedModule AM(M, Ctx, PO);
    double PipelineSec = Total.seconds();

    if (O.DumpIR)
      std::fputs(M.str().c_str(), stdout);

    svfa::GlobalOptions GO;
    GO.MaxContextDepth = O.MaxDepth;
    GO.PathSensitive = O.PathSensitive;
    GO.UseLinearFilter = O.LinearFilter;
    GO.SolverCache = O.SolverCache;
    GO.SolverSlicing = O.SolverCache;
    GO.Demand = O.Demand;
    GO.Governor = &Gov;
    GO.Pool = Pool.get();

    // Each checker's results land in an indexed slot; with a pool the
    // checkers run concurrently (they share only thread-safe state: the
    // analysed module, the expression context and the governor) but slots
    // are always printed serially in command-line order, so the output is
    // byte-identical to the serial run.
    struct CheckerRun {
      std::vector<svfa::Report> Reports;
      svfa::GlobalSVFA::Stats EngineStats;
      smt::StagedSolver::Stats SolverStats;
      bool Failed = false;
      bool Unknown = false;
      std::string Error;
    };
    std::vector<CheckerRun> Runs(O.Checkers.size());

    auto runChecker = [&](size_t Idx) {
      const std::string &Name = O.Checkers[Idx];
      CheckerRun &Slot = Runs[Idx];
      // Checker-level fault isolation: one failing checker must not take
      // down the run — log, warn, move on to the next checker.
      try {
        if (Gov.faults().injectCheckerThrow(Name)) {
          Gov.note(DegradationKind::InjectedFault, "checker", Name,
                   "forced checker throw");
          throw std::runtime_error("injected checker fault");
        }
        if (Name == "leak") {
          Slot.Reports = checkers::checkMemoryLeaks(AM);
        } else {
          checkers::CheckerSpec Spec;
          if (!specFor(Name, Spec)) {
            Slot.Unknown = true;
            return;
          }
          svfa::GlobalSVFA Engine(AM, Spec, GO);
          Slot.Reports = Engine.run();
          Slot.EngineStats = Engine.stats();
          Slot.SolverStats = Engine.solverStats();
        }
      } catch (const std::exception &Ex) {
        Gov.note(DegradationKind::CheckerFailed, "checker", Name, Ex.what());
        Slot.Failed = true;
        Slot.Error = Ex.what();
      }
    };

    Timer DischargeT;
    if (Pool) {
      ThreadPool::TaskGroup G(*Pool);
      for (size_t Idx = 0; Idx < O.Checkers.size(); ++Idx)
        G.spawn([&runChecker, Idx] { runChecker(Idx); });
      G.wait();
    } else {
      for (size_t Idx = 0; Idx < O.Checkers.size(); ++Idx)
        runChecker(Idx);
    }
    const double DischargeSec = DischargeT.seconds();
    Timer ReportT;

    // --- Flush. Every post-analysis exit goes through this block so an
    // interrupted run still emits its partial report, statistics,
    // degradation log and run journal (written by the pipeline above).
    const bool Interrupted = Gov.cancelled();

    int TotalReports = 0;
    uint64_t TotalRetries = 0, TotalTransientFailures = 0;
    for (size_t Idx = 0; Idx < O.Checkers.size(); ++Idx) {
      const std::string &Name = O.Checkers[Idx];
      CheckerRun &Slot = Runs[Idx];
      if (Slot.Unknown) {
        std::fprintf(stderr, "unknown checker: %s\n", Name.c_str());
        return 2;
      }
      if (Slot.Failed) {
        std::fprintf(stderr, "warning: checker %s failed (%s); continuing\n",
                     Name.c_str(), Slot.Error.c_str());
        continue;
      }

      for (const auto &R : Slot.Reports) {
        ++TotalReports;
        std::printf("%s: source %s:%s -> sink %s:%s%s%s\n", R.Checker.c_str(),
                    R.SourceFn.c_str(), R.Source.str().c_str(),
                    R.SinkFn.c_str(), R.Sink.str().c_str(),
                    R.Verdict == smt::SatResult::Unknown
                        ? " [verdict=unknown]"
                        : "",
                    Interrupted ? " [partial]" : "");
        for (const auto &Step : R.Path)
          std::printf("    via %s\n", Step.c_str());
      }
      svfa::GlobalSVFA::Stats &EngineStats = Slot.EngineStats;
      smt::StagedSolver::Stats &SolverStats = Slot.SolverStats;
      TotalRetries += SolverStats.Retries;
      TotalTransientFailures += SolverStats.TransientFailures;
      if (O.Stats && Name != "leak") {
        // The trailing acceleration counters (backend-calls onward) are
        // interleaving-dependent under --jobs with the shared cache; every
        // field before them is deterministic.
        std::printf("[%s] events=%llu candidates=%llu sat=%llu unsat=%llu "
                    "unknown=%llu linear-pruned=%llu smt-queries=%llu "
                    "isolated-failures=%llu backend-calls=%llu "
                    "cache-hits=%llu sliced=%llu comps-refuted=%llu\n",
                    Name.c_str(), (unsigned long long)EngineStats.Events,
                    (unsigned long long)EngineStats.Candidates,
                    (unsigned long long)EngineStats.SolverSat,
                    (unsigned long long)EngineStats.SolverUnsat,
                    (unsigned long long)EngineStats.SolverUnknown,
                    (unsigned long long)EngineStats.LinearPruned,
                    (unsigned long long)SolverStats.BackendQueries,
                    (unsigned long long)EngineStats.IsolatedFailures,
                    (unsigned long long)SolverStats.BackendCalls,
                    (unsigned long long)SolverStats.CacheHits,
                    (unsigned long long)SolverStats.SlicedQueries,
                    (unsigned long long)SolverStats.ComponentsRefuted);
      }
    }

    if (O.Stats) {
      std::printf("[pipeline] %zu functions, %zu SEG edges, %.3fs build, "
                  "%.3fs total, %.1f MB peak\n",
                  M.functions().size(), AM.totalSEGEdges(), PipelineSec,
                  Total.seconds(), MemStats::get().peakBytes() / 1e6);
      // Per-stage wall clock, so an incremental win (or a regression) is
      // attributable without a profiler: parse = read+parse, ssa/prepass
      // come from the pipeline constructor, pipeline = the per-SCC stages
      // proper, discharge = the checker/solver runs, report = the flush up
      // to this line. Wall times are interleaving- and load-dependent, so
      // like [sched] this line is exempt from the cross-run determinism
      // contract (harnesses filter it).
      const svfa::AnalyzedModule::PhaseSeconds &PS = AM.phaseSeconds();
      std::printf("[phase] parse=%.3fs ssa=%.3fs prepass=%.3fs "
                  "pipeline=%.3fs discharge=%.3fs report=%.3fs\n",
                  ParseSec, PS.SSA, PS.Prepass,
                  std::max(0.0, PipelineSec - PS.SSA - PS.Prepass),
                  DischargeSec, ReportT.seconds());
      // Intern-table health of the shared expression context: node ids are
      // allocation-order dependent, so these figures may differ across
      // --jobs values (new observability counters, not a determinism
      // surface).
      const smt::ExprContext::InternStats IS = Ctx.internStats();
      std::printf("[exprs] nodes=%zu table-slots=%zu max-chain=%zu "
                  "arena-mb=%.1f\n",
                  IS.Nodes, IS.TableSlots, IS.MaxChain, IS.ArenaBytes / 1e6);
      if (Cache) {
        Counters &C = Counters::get();
        std::printf("[cache] hits=%lld misses=%lld invalidated=%lld "
                    "corrupt=%lld stored=%lld gc-tmp=%lld\n",
                    (long long)C.value("cache.hits"),
                    (long long)C.value("cache.misses"),
                    (long long)C.value("cache.invalidated"),
                    (long long)C.value("cache.corrupt"),
                    (long long)C.value("cache.stored"),
                    (long long)C.value("cache.gc-tmp"));
      }
      // Demand-slicing counters. Like [pipeline]/[exprs], this line
      // reflects the work performed, not the findings, so it is exempt
      // from the --demand on/off determinism contract (the reports,
      // degradation log and the deterministic [checker] fields are not).
      // Printed after [cache]: "relevance-stored=" must not shadow a
      // substring probe for the cache line's "stored=".
      if (AM.demandActive()) {
        Counters &C = Counters::get();
        std::printf("[demand] relevant-fns=%zu skipped-fns=%zu "
                    "source-fns=%zu sink-fns=%zu lazy-reach-rows=%lld "
                    "csr-bytes=%lld cg-csr-bytes=%lld relevance-stored=%lld "
                    "relevance-replayed=%lld relevance-stale=%lld "
                    "prepass-fns=%lld dirty-fns=%lld edges-reused=%lld "
                    "refresh-mode=%s\n",
                    AM.relevantFunctions(), AM.skippedFunctions(),
                    AM.sourceFunctions(), AM.sinkFunctions(),
                    (long long)C.value("svfa.lazy-reach-rows"),
                    (long long)C.value("seg.csr-bytes"),
                    (long long)C.value("cg.csr-bytes"),
                    (long long)C.value("demand.relevance-stored"),
                    (long long)C.value("demand.relevance-replayed"),
                    (long long)C.value("demand.relevance-stale"),
                    (long long)C.value("demand.prepass-fns"),
                    (long long)C.value("demand.dirty-fns"),
                    (long long)C.value("demand.edges-reused"),
                    AM.relevanceRefreshMode().c_str());
      }
      // Run-lifecycle counters, gated on something in the layer being
      // active so no-budget/no-signal/no-fault runs keep byte-identical
      // output.
      if (O.MemBudgetMB > 0 || Cache || TotalRetries > 0 ||
          TotalTransientFailures > 0 || Interrupted) {
        std::printf("[lifecycle] mem.peak-governed=%.1fMB "
                    "mem-plan-degraded=%zu resumed-sccs=%zu "
                    "solver.retries=%llu transient-failures=%llu\n",
                    MemStats::get().peakGovernedBytes() / 1e6,
                    AM.memPlanDegradedSCCs(), AM.resumedSCCs(),
                    (unsigned long long)TotalRetries,
                    (unsigned long long)TotalTransientFailures);
      }
      // Scheduler observability (parallel runs only). Like [exprs], every
      // field reflects work and interleaving, not findings: pop/steal
      // counts and prefetch/flush tallies vary across runs, schedules and
      // job counts, so the line is exempt from the cross-run determinism
      // contract (test harnesses filter it alongside [pipeline]/[cache]).
      if (Pool) {
        const ThreadPool::SchedStats SS = Pool->schedStats();
        Counters &C = Counters::get();
        std::printf("[sched] schedule=%s workers=%u local-pops=%llu "
                    "inbox-pops=%llu steals=%llu ranked-sccs=%lld "
                    "profiled-sccs=%lld prefetched=%lld flushed=%lld\n",
                    O.Schedule.c_str(), Pool->workers(),
                    (unsigned long long)SS.LocalPops,
                    (unsigned long long)SS.InboxPops,
                    (unsigned long long)SS.Steals,
                    (long long)C.value("sched.ranked-sccs"),
                    (long long)C.value("sched.profiled-sccs"),
                    (long long)C.value("sched.prefetched"),
                    (long long)C.value("sched.flushed"));
      }
      std::printf("[governor] %s\n", Gov.log().summary().c_str());
    }
    if (O.DegradationLog) {
      // Under --jobs>1 events arrive in completion order; sort so the log
      // is stable across thread interleavings (and across --jobs values).
      std::vector<DegradationEvent> Events = Gov.log().events();
      std::stable_sort(
          Events.begin(), Events.end(),
          [](const DegradationEvent &A, const DegradationEvent &B) {
            return std::tie(A.Stage, A.Function, A.Kind, A.Detail) <
                   std::tie(B.Stage, B.Function, B.Kind, B.Detail);
          });
      for (const DegradationEvent &E : Events)
        std::printf("[degradation] %s %s fn=%s: %s\n", toString(E.Kind),
                    E.Stage.c_str(),
                    E.Function.empty() ? "-" : E.Function.c_str(),
                    E.Detail.c_str());
    }

    if (Interrupted)
      std::printf("[partial] run interrupted (signal %d); results above "
                  "were flushed before exit\n",
                  interrupt::lastSignal());
    std::printf("%d report(s)\n", TotalReports);
    std::fflush(stdout);
    return Interrupted ? 3 : 0;
  } catch (const std::exception &Ex) {
    std::fprintf(stderr, "internal error: %s\n", Ex.what());
    std::fflush(stdout);
    return 4;
  }
}

} // namespace pinpoint::tools
