//===- tools/PinpointTool.h - Reusable pinpoint CLI entry point ------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `pinpoint` tool's whole driver as a library function, so lifecycle
/// tests can fork a child, run the exact CLI code path (signal handlers,
/// partial-result flush, exit codes) and assert on the child's output and
/// status without exec'ing the installed binary.
///
/// Exit codes (the run-lifecycle contract, DESIGN.md section 12):
///   0  analysis completed (reports possibly degraded, never silently lost)
///   2  usage or input error
///   3  interrupted (SIGINT/SIGTERM): partial results were flushed
///   4  internal error (unexpected exception escaping the analysis)
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_TOOLS_PINPOINTTOOL_H
#define PINPOINT_TOOLS_PINPOINTTOOL_H

namespace pinpoint::tools {

/// Runs the complete `pinpoint` command line: argument parsing, analysis,
/// report/stats printing, and the interrupt-aware flush. Returns the
/// process exit code documented above.
int pinpointToolMain(int Argc, char **Argv);

} // namespace pinpoint::tools

#endif // PINPOINT_TOOLS_PINPOINTTOOL_H
