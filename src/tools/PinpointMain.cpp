//===- tools/PinpointMain.cpp - pinpoint executable entry point ------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin `main` for the `pinpoint` binary. All driver logic lives in
/// tools/PinpointTool.cpp so lifecycle tests can run the identical code
/// path in a forked child process.
///
//===----------------------------------------------------------------------===//

#include "tools/PinpointTool.h"

int main(int Argc, char **Argv) {
  return pinpoint::tools::pinpointToolMain(Argc, Argv);
}
