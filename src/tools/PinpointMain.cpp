//===- tools/PinpointMain.cpp - The pinpoint command-line driver -----------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `pinpoint` tool: parses MiniC sources, runs the selected checkers
/// through the full pipeline, and prints reports and statistics.
///
///   pinpoint [options] file.mc [file2.mc ...]
///     --checker=LIST    comma list of uaf,df,taint-path,taint-data,
///                       null-deref,leak (default: uaf,df)
///     --max-depth=N     calling-context depth (default 6)
///     --no-path-sensitivity   skip the SMT feasibility stage
///     --no-linear-filter      disable the linear-time pre-filter
///     --dump-ir         print the transformed IR
///     --stats           print pipeline and solver statistics
///
//===----------------------------------------------------------------------===//

#include "checkers/Checker.h"
#include "checkers/SpecialCheckers.h"
#include "frontend/Parser.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include "svfa/GlobalSVFA.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace pinpoint;

namespace {

struct Options {
  std::vector<std::string> Files;
  std::vector<std::string> Checkers{"uaf", "df"};
  int MaxDepth = 6;
  bool PathSensitive = true;
  bool LinearFilter = true;
  bool DumpIR = false;
  bool Stats = false;
};

void usage() {
  std::puts(
      "usage: pinpoint [options] file.mc [...]\n"
      "  --checker=LIST           uaf,df,taint-path,taint-data,null-deref,"
      "leak\n"
      "  --max-depth=N            calling context depth (default 6)\n"
      "  --no-path-sensitivity    report all candidates (no SMT stage)\n"
      "  --no-linear-filter       disable the linear-time pre-filter\n"
      "  --dump-ir                print the transformed IR\n"
      "  --stats                  print statistics");
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--checker=", 0) == 0) {
      O.Checkers.clear();
      std::stringstream SS(A.substr(10));
      std::string Item;
      while (std::getline(SS, Item, ','))
        O.Checkers.push_back(Item);
    } else if (A.rfind("--max-depth=", 0) == 0) {
      O.MaxDepth = std::atoi(A.c_str() + 12);
    } else if (A == "--no-path-sensitivity") {
      O.PathSensitive = false;
    } else if (A == "--no-linear-filter") {
      O.LinearFilter = false;
    } else if (A == "--dump-ir") {
      O.DumpIR = true;
    } else if (A == "--stats") {
      O.Stats = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      std::exit(0);
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", A.c_str());
      return false;
    } else {
      O.Files.push_back(A);
    }
  }
  return !O.Files.empty();
}

bool specFor(const std::string &Name, checkers::CheckerSpec &Out) {
  if (Name == "uaf")
    Out = checkers::useAfterFreeChecker();
  else if (Name == "df")
    Out = checkers::doubleFreeChecker();
  else if (Name == "taint-path")
    Out = checkers::pathTraversalChecker();
  else if (Name == "taint-data")
    Out = checkers::dataTransmissionChecker();
  else if (Name == "null-deref")
    Out = checkers::nullDerefChecker();
  else
    return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    usage();
    return 2;
  }

  // Read & concatenate the inputs (one module).
  std::string Source;
  for (const std::string &File : O.Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", File.c_str());
      return 2;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Source += SS.str();
    Source += "\n";
  }

  ir::Module M;
  std::vector<frontend::Diag> Diags;
  if (!frontend::parseModule(Source, M, Diags)) {
    for (const auto &D : Diags)
      std::fprintf(stderr, "error: %s\n", D.str().c_str());
    return 2;
  }

  Timer Total;
  smt::ExprContext Ctx;
  svfa::PipelineOptions PO;
  PO.UseLinearFilter = O.LinearFilter;
  svfa::AnalyzedModule AM(M, Ctx, PO);
  double PipelineSec = Total.seconds();

  if (O.DumpIR)
    std::fputs(M.str().c_str(), stdout);

  svfa::GlobalOptions GO;
  GO.MaxContextDepth = O.MaxDepth;
  GO.PathSensitive = O.PathSensitive;
  GO.UseLinearFilter = O.LinearFilter;

  int TotalReports = 0;
  for (const std::string &Name : O.Checkers) {
    std::vector<svfa::Report> Reports;
    svfa::GlobalSVFA::Stats EngineStats;
    smt::StagedSolver::Stats SolverStats;
    if (Name == "leak") {
      Reports = checkers::checkMemoryLeaks(AM);
    } else {
      checkers::CheckerSpec Spec;
      if (!specFor(Name, Spec)) {
        std::fprintf(stderr, "unknown checker: %s\n", Name.c_str());
        return 2;
      }
      svfa::GlobalSVFA Engine(AM, Spec, GO);
      Reports = Engine.run();
      EngineStats = Engine.stats();
      SolverStats = Engine.solverStats();
    }

    for (const auto &R : Reports) {
      ++TotalReports;
      std::printf("%s: source %s:%s -> sink %s:%s\n", R.Checker.c_str(),
                  R.SourceFn.c_str(), R.Source.str().c_str(),
                  R.SinkFn.c_str(), R.Sink.str().c_str());
      for (const auto &Step : R.Path)
        std::printf("    via %s\n", Step.c_str());
    }
    if (O.Stats && Name != "leak") {
      std::printf("[%s] events=%llu candidates=%llu sat=%llu unsat=%llu "
                  "linear-pruned=%llu smt-queries=%llu\n",
                  Name.c_str(), (unsigned long long)EngineStats.Events,
                  (unsigned long long)EngineStats.Candidates,
                  (unsigned long long)EngineStats.SolverSat,
                  (unsigned long long)EngineStats.SolverUnsat,
                  (unsigned long long)EngineStats.LinearPruned,
                  (unsigned long long)SolverStats.BackendQueries);
    }
  }

  if (O.Stats) {
    std::printf("[pipeline] %zu functions, %zu SEG edges, %.3fs build, "
                "%.3fs total, %.1f MB peak\n",
                M.functions().size(), AM.totalSEGEdges(), PipelineSec,
                Total.seconds(), MemStats::get().peakBytes() / 1e6);
  }

  std::printf("%d report(s)\n", TotalReports);
  return TotalReports > 0 ? 1 : 0;
}
