//===- checkers/Checkers.cpp - Built-in checker definitions ----------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four checkers the paper evaluates: use-after-free and double-free
/// (Section 5.1) and the two taint checkers of Section 5.3. Sources/sinks
/// follow the paper's description: path traversal starts at user input like
/// `input = fgetc()` and ends at file operations like `fopen(path, …)`;
/// data transmission starts at sensitive data like `password = getpass(…)`
/// and ends at `sendto(data, …)`. Like the paper (and FlowDroid), the taint
/// checkers do not model sanitisation.
///
//===----------------------------------------------------------------------===//

#include "checkers/Checker.h"

namespace pinpoint::checkers {

bool CheckerSpec::hasSourceSite(const ir::Function &F) const {
  for (const ir::BasicBlock *B : F.blocks()) {
    for (const ir::Stmt *S : B->stmts()) {
      if (const auto *Call = dyn_cast<ir::CallStmt>(S)) {
        if (SourceArgFns.count(Call->calleeName()) && !Call->args().empty())
          return true;
        if (SourceRetFns.count(Call->calleeName()) && Call->receiver())
          return true;
        continue;
      }
      if (!NullConstIsSource)
        continue;
      const auto *A = dyn_cast<ir::AssignStmt>(S);
      if (!A || A->isSynthetic())
        continue;
      if (const auto *C = dyn_cast<ir::Constant>(A->src()))
        if (C->isNull())
          return true;
    }
  }
  return false;
}

bool CheckerSpec::hasSinkSite(const ir::Function &F) const {
  if (SinkArgFns.empty())
    return false;
  for (const ir::BasicBlock *B : F.blocks())
    for (const ir::Stmt *S : B->stmts())
      if (const auto *Call = dyn_cast<ir::CallStmt>(S))
        if (SinkArgFns.count(Call->calleeName()))
          return true;
  return false;
}

bool CheckerSpec::hasDerefSite(const ir::Function &F) const {
  for (const ir::BasicBlock *B : F.blocks())
    for (const ir::Stmt *S : B->stmts())
      if ((isa<ir::LoadStmt>(S) || isa<ir::StoreStmt>(S)) && !S->isSynthetic())
        return true;
  return false;
}

CheckerSpec useAfterFreeChecker() {
  CheckerSpec S;
  S.Name = "use-after-free";
  S.SourceArgFns = {"free"};
  S.DerefIsSink = true;
  S.TemporalOrder = true;
  S.FlowThroughOperators = false;
  return S;
}

CheckerSpec doubleFreeChecker() {
  CheckerSpec S;
  S.Name = "double-free";
  S.SourceArgFns = {"free"};
  S.SinkArgFns = {"free"};
  S.TemporalOrder = true;
  S.FlowThroughOperators = false;
  return S;
}

CheckerSpec pathTraversalChecker() {
  CheckerSpec S;
  S.Name = "path-traversal";
  S.SourceRetFns = {"fgetc", "fgets", "recv", "read_input", "getenv"};
  S.SinkArgFns = {"fopen", "open", "remove", "opendir"};
  S.TemporalOrder = false;
  S.FlowThroughOperators = true;
  return S;
}

CheckerSpec dataTransmissionChecker() {
  CheckerSpec S;
  S.Name = "data-transmission";
  S.SourceRetFns = {"getpass", "read_secret", "load_key"};
  S.SinkArgFns = {"sendto", "send", "write_log", "transmit"};
  S.TemporalOrder = false;
  S.FlowThroughOperators = true;
  return S;
}

} // namespace pinpoint::checkers
