//===- checkers/SpecialCheckers.cpp ------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "checkers/SpecialCheckers.h"

#include <set>

using namespace pinpoint::ir;

namespace pinpoint::checkers {

CheckerSpec nullDerefChecker() {
  CheckerSpec S;
  S.Name = "null-deref";
  S.NullConstIsSource = true;
  S.SourceRetFns = {"maybe_alloc", "find_entry", "lookup"};
  S.DerefIsSink = true;
  S.TemporalOrder = true;
  S.FlowThroughOperators = false;
  return S;
}

std::vector<svfa::Report> checkMemoryLeaks(svfa::AnalyzedModule &AM) {
  std::vector<svfa::Report> Out;

  for (const Function *F : AM.bottomUpOrder()) {
    if (!AM.info(F).Seg)
      continue; // Pipeline-degraded function: nothing to scan.
    seg::SEG &Seg = *AM.info(F).Seg;
    for (const CallStmt *Call : Seg.calls()) {
      if (Call->calleeName() != intrinsics::Malloc || !Call->receiver())
        continue;

      // Closure of the allocated value over direct flow edges.
      std::set<const Variable *> Closure{Call->receiver()};
      std::vector<const Variable *> Work{Call->receiver()};
      bool Consumed = false;
      while (!Work.empty() && !Consumed) {
        const Variable *V = Work.back();
        Work.pop_back();
        for (const seg::Use &U : Seg.usesOf(V)) {
          switch (U.Kind) {
          case seg::UseKind::CallArg:
            // Freed, or escapes into a callee that may keep it.
            Consumed = true;
            break;
          case seg::UseKind::RetVal:
            Consumed = true; // Ownership handed to the caller.
            break;
          case seg::UseKind::StoreVal:
            Consumed = true; // Stored into memory that may outlive us.
            break;
          default:
            break; // Local deref/compare: not a consumption.
          }
          if (Consumed)
            break;
        }
        if (Consumed)
          break;
        for (const seg::FlowEdge &E : Seg.flowsOut(V))
          if (E.Direct && Closure.insert(E.To).second)
            Work.push_back(E.To);
      }

      if (!Consumed) {
        svfa::Report R;
        R.Checker = "memory-leak";
        R.SourceFn = F->name();
        R.Source = Call->loc();
        R.Sink = F->exitBlock() && F->exitBlock()->terminator()
                     ? F->exitBlock()->terminator()->loc()
                     : Call->loc();
        R.SinkFn = F->name();
        R.Path = {"allocated at " + F->name() + ":" + Call->loc().str(),
                  "never freed, returned, stored, or passed on"};
        Out.push_back(std::move(R));
      }
    }
  }
  return Out;
}

} // namespace pinpoint::checkers
