//===- checkers/SpecialCheckers.h - Null-deref & leak extensions ----------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension checkers beyond the paper's evaluated four, covering the other
/// value-flow clients its introduction cites:
///
///  * **null dereference** — null-constant assignments are sources, derefs
///    are sinks; runs on the standard source-sink engine via the
///    NullConstIsSource spec flag;
///  * **memory leak** (Fastcheck/Saber style) — a malloc whose value-flow
///    closure never reaches a free, a return, a store into non-local
///    memory, or a call argument is reported as leaked. This is not a
///    source-sink property, so it gets its own small traversal over SEGs.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_CHECKERS_SPECIALCHECKERS_H
#define PINPOINT_CHECKERS_SPECIALCHECKERS_H

#include "checkers/Checker.h"
#include "svfa/GlobalSVFA.h"

namespace pinpoint::checkers {

/// Null-dereference checker: sources are `p = null` assignments (plus
/// functions named in SourceRetFns returning possibly-null values), sinks
/// are dereferences.
CheckerSpec nullDerefChecker();

/// Reports malloc() results that never escape or get freed.
std::vector<svfa::Report> checkMemoryLeaks(svfa::AnalyzedModule &AM);

} // namespace pinpoint::checkers

#endif // PINPOINT_CHECKERS_SPECIALCHECKERS_H
