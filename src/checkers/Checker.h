//===- checkers/Checker.h - Source/sink checker specifications ------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A checker is a source-sink specification over SEG vertices (paper
/// Section 4.1): problems that can be modelled as value-flow paths plug
/// into the global engine by describing which call statements create
/// sources and which uses are sinks.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_CHECKERS_CHECKER_H
#define PINPOINT_CHECKERS_CHECKER_H

#include "ir/IR.h"
#include "seg/SEG.h"

#include <optional>
#include <set>
#include <string>

namespace pinpoint::checkers {

/// Declarative checker description.
struct CheckerSpec {
  std::string Name;

  /// Functions whose call *argument* becomes the source value
  /// (e.g. free(p): p's value is dangling afterwards).
  std::set<std::string> SourceArgFns;
  /// Functions whose call *return value* is the source
  /// (e.g. fgetc(): the result is tainted).
  std::set<std::string> SourceRetFns;

  /// Assignments of the null constant are sources (null-deref checking).
  bool NullConstIsSource = false;

  /// Dereferencing the value (load/store address) is a sink.
  bool DerefIsSink = false;
  /// Passing the value to one of these functions is a sink; any argument
  /// position matches (e.g. free → double free; fopen → path traversal).
  std::set<std::string> SinkArgFns;

  /// Sinks must be reachable (in the CFG) from the source event. True for
  /// temporal properties (use-after-free); false for taint, where data flow
  /// implies ordering.
  bool TemporalOrder = false;

  /// Follow operator (binop/unop) edges, not just copies. Taint checkers
  /// track data derived through computation; pointer checkers do not.
  bool FlowThroughOperators = false;

  //===--- Matching helpers -------------------------------------------------

  /// The source value created by \p Call, if any: the argument value for
  /// SourceArgFns, the receiver for SourceRetFns.
  std::optional<const ir::Variable *>
  sourceOf(const ir::CallStmt *Call) const {
    if (SourceArgFns.count(Call->calleeName()) && !Call->args().empty())
      if (const auto *V = dyn_cast<ir::Variable>(Call->args()[0]))
        return V;
    if (SourceRetFns.count(Call->calleeName()) && Call->receiver())
      return Call->receiver();
    return std::nullopt;
  }

  /// True if \p F contains a syntactic source site of this checker: a
  /// source-function call the engine would seed an event from, or a
  /// non-synthetic null-constant assignment when NullConstIsSource. This
  /// is the seed predicate of the demand relevance pre-pass (svfa/Demand);
  /// it deliberately over-approximates `sourceOf` — extra seeds only cost
  /// analysis time, never change results.
  bool hasSourceSite(const ir::Function &F) const;

  /// True when every sink of this checker is a named-function call site.
  /// Deref sinks (use-after-free, null-deref) have no such call — any load
  /// or store can be one — so their sink cones seed from `hasDerefSite`
  /// hosts instead (svfa/Demand). This predicate picks which seed scan
  /// applies, not whether sink slicing happens at all.
  bool hasSyntacticSinks() const { return !DerefIsSink && !SinkArgFns.empty(); }

  /// True if \p F contains a syntactic sink site of this checker: a call to
  /// one of SinkArgFns. Only meaningful when `hasSyntacticSinks()`; like
  /// `hasSourceSite` it over-approximates (any call counts, argument values
  /// are not inspected) — extra sink seeds only keep functions relevant,
  /// never change results.
  bool hasSinkSite(const ir::Function &F) const;

  /// True if \p F contains a statement a deref-sink checker could sink at:
  /// a non-synthetic load or store — the only statements that produce
  /// DerefAddr uses, and `isSinkUse` ignores synthetic ones. This is the
  /// sink-seed predicate of the demand pre-pass for DerefIsSink checkers:
  /// a source region whose caller cone never meets a dereference can never
  /// surface their sinks. Over-approximates `isSinkUse` (the dereferenced
  /// value is not inspected), so extra seeds only keep functions relevant.
  bool hasDerefSite(const ir::Function &F) const;

  /// True if using \p V at \p U is a sink for this checker.
  bool isSinkUse(const seg::Use &U) const {
    if (DerefIsSink && U.Kind == seg::UseKind::DerefAddr &&
        !U.S->isSynthetic())
      return true;
    if (U.Kind == seg::UseKind::CallArg)
      if (const auto *Call = dyn_cast<ir::CallStmt>(U.S))
        return SinkArgFns.count(Call->calleeName()) > 0;
    return false;
  }
};

/// The built-in checkers evaluated in the paper.
CheckerSpec useAfterFreeChecker();
CheckerSpec doubleFreeChecker();
CheckerSpec pathTraversalChecker();    ///< CWE-23 taint checker.
CheckerSpec dataTransmissionChecker(); ///< CWE-402 taint checker.

} // namespace pinpoint::checkers

#endif // PINPOINT_CHECKERS_CHECKER_H
