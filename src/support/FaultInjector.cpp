//===- support/FaultInjector.cpp -------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include <cerrno>
#include <cstdlib>

namespace pinpoint {

namespace {

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (errno != 0 || End != S.c_str() + S.size() || S[0] == '-')
    return false;
  Out = V;
  return true;
}

} // namespace

bool FaultInjector::parse(const std::string &Spec, std::string &Err) {
  *this = FaultInjector();
  uint64_t Seed = 1;

  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Item = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Item.empty())
      continue;

    size_t Eq = Item.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Item.size()) {
      Err = "malformed fault-inject item (expected key=value): " + Item;
      return false;
    }
    std::string Key = Item.substr(0, Eq), Val = Item.substr(Eq + 1);

    if (Key == "seed") {
      if (!parseU64(Val, Seed)) {
        Err = "invalid seed: " + Val;
        return false;
      }
    } else if (Key == "solver-unknown") {
      if (!parseU64(Val, SolverUnknownPct) || SolverUnknownPct > 100) {
        Err = "invalid solver-unknown percentage (0-100): " + Val;
        return false;
      }
    } else if (Key == "transient") {
      if (!parseU64(Val, TransientPct) || TransientPct > 100) {
        Err = "invalid transient percentage (0-100): " + Val;
        return false;
      }
    } else if (Key == "transient-fails") {
      if (!parseU64(Val, TransientFails) || TransientFails == 0) {
        Err = "invalid transient-fails (positive integer): " + Val;
        return false;
      }
    } else if (Key == "pace-fn-ms") {
      if (!parseU64(Val, PaceFnMs) || PaceFnMs == 0 || PaceFnMs > 60000) {
        Err = "invalid pace-fn-ms (1-60000): " + Val;
        return false;
      }
    } else if (Key == "closure-steps") {
      if (!parseU64(Val, ClosureSteps) || ClosureSteps == 0) {
        Err = "invalid closure-steps (positive integer): " + Val;
        return false;
      }
    } else if (Key == "throw-fn") {
      ThrowFn = Val;
    } else if (Key == "pipeline-throw-fn") {
      PipelineThrowFn = Val;
    } else if (Key == "throw-checker") {
      ThrowChecker = Val;
    } else if (Key == "cache-read") {
      CacheReadFn = Val;
    } else {
      Err = "unknown fault-inject key: " + Key;
      return false;
    }
  }

  Rng = RNG(Seed);
  Enabled = true;
  return true;
}

} // namespace pinpoint
