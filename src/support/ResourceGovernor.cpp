//===- support/ResourceGovernor.cpp ----------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/ResourceGovernor.h"
#include "support/Statistics.h"

namespace pinpoint {

const char *toString(DegradationKind K) {
  switch (K) {
  case DegradationKind::SolverUnknown:
    return "solver-unknown";
  case DegradationKind::ClosureTruncated:
    return "closure-truncated";
  case DegradationKind::PTATruncated:
    return "pta-truncated";
  case DegradationKind::FunctionOversized:
    return "fn-oversized";
  case DegradationKind::FunctionBudgetExceeded:
    return "fn-budget-exceeded";
  case DegradationKind::FunctionFailed:
    return "fn-failed";
  case DegradationKind::FunctionSkipped:
    return "fn-skipped";
  case DegradationKind::CheckerFailed:
    return "checker-failed";
  case DegradationKind::RunBudgetExhausted:
    return "run-budget-exhausted";
  case DegradationKind::InjectedFault:
    return "injected-fault";
  case DegradationKind::CacheCorrupt:
    return "cache-corrupt";
  case DegradationKind::MemoryPressure:
    return "memory-pressure";
  case DegradationKind::Cancelled:
    return "cancelled";
  case DegradationKind::SolverTransient:
    return "solver-transient";
  case DegradationKind::NumKinds:
    break;
  }
  return "unknown";
}

void DegradationLog::note(DegradationKind K, std::string Stage,
                          std::string Function, std::string Detail) {
  Counts[static_cast<size_t>(K)].fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> L(Mu);
  if (Events.size() < MaxStoredEvents)
    Events.push_back({K, std::move(Stage), std::move(Function),
                      std::move(Detail)});
}

uint64_t DegradationLog::total() const {
  uint64_t N = 0;
  for (const auto &C : Counts)
    N += C.load(std::memory_order_relaxed);
  return N;
}

std::string DegradationLog::summary() const {
  std::string Out = "degradations=" + std::to_string(total());
  for (size_t I = 0; I < Counts.size(); ++I) {
    uint64_t C = Counts[I].load(std::memory_order_relaxed);
    if (C > 0)
      Out += " " + std::string(toString(static_cast<DegradationKind>(I))) +
             "=" + std::to_string(C);
  }
  return Out;
}

void ResourceGovernor::note(DegradationKind K, std::string Stage,
                            std::string Function, std::string Detail) {
  Counters::get().add(std::string("governor.") + toString(K));
  Log.note(K, std::move(Stage), std::move(Function), std::move(Detail));
}

bool ResourceGovernor::memHardExceeded() const {
  return B.MemBudgetMB > 0 &&
         MemStats::get().governedBytes() > B.MemBudgetMB * 1024 * 1024;
}

ResourceGovernor &ResourceGovernor::ungoverned() {
  static ResourceGovernor G;
  return G;
}

} // namespace pinpoint
