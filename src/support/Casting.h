//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal reimplementation of the LLVM casting machinery (isa<>, cast<>,
/// dyn_cast<>) used throughout the class hierarchies of this project. A class
/// participates by providing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_CASTING_H
#define PINPOINT_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace pinpoint {

/// Returns true if \p Val is an instance of type To (per To::classof).
template <typename To, typename From> inline bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts the dynamic type matches.
template <typename To, typename From> inline To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> inline const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Downcast that returns null when the dynamic type does not match.
template <typename To, typename From> inline To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
inline const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// dyn_cast that also tolerates a null input.
template <typename To, typename From> inline To *dyn_cast_or_null(From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
inline const To *dyn_cast_or_null(const From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_CASTING_H
