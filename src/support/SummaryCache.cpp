//===- support/SummaryCache.cpp --------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/SummaryCache.h"
#include "support/Hasher.h"
#include "support/Serializer.h"
#include "support/Statistics.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace pinpoint {

namespace {

constexpr char Magic[4] = {'P', 'P', 'S', 'C'};

/// Cost-profile file magic and version (see profilePath / loadCostProfile).
constexpr char ProfileMagic[4] = {'P', 'P', 'S', 'P'};
constexpr uint32_t ProfileVersion = 1;

/// Whole-file read; empty optional when the file does not exist or cannot
/// be opened.
bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign((std::istreambuf_iterator<char>(In)),
             std::istreambuf_iterator<char>());
  return true;
}

} // namespace

std::string SummaryCache::entryPath(const std::string &FnName) const {
  // File names are a hex hash of the function name, not the name itself:
  // generated subjects have thousands of functions and names are not
  // guaranteed filesystem-safe. A collision maps two functions to one file;
  // the stored name disambiguates and the loser simply misses.
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                (unsigned long long)Hasher::hashString(FnName));
  return Dir + "/" + Buf + ".pps";
}

bool SummaryCache::prepare(std::string &Err) const {
  if (!writable())
    return true;
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    Err = "cannot create cache directory " + Dir + ": " + EC.message();
    return false;
  }
  // Sweep temp files orphaned by a crash between write and rename (every
  // store in this directory — entries, relevance, journal, profiles — goes
  // through a `<final>.tmp<counter>` rename). Startup is the one moment no
  // store of ours is in flight; a concurrent process losing an in-flight
  // tmp just sees its rename fail and reports an unstored entry, which is
  // the same contract as any other I/O failure.
  int64_t Swept = 0;
  std::error_code IterEC;
  for (std::filesystem::directory_iterator
           It(Dir, IterEC),
       End;
       !IterEC && It != End; It.increment(IterEC)) {
    if (!It->is_regular_file(EC))
      continue;
    if (It->path().filename().string().find(".tmp") == std::string::npos)
      continue;
    std::error_code RmEC;
    if (std::filesystem::remove(It->path(), RmEC) && !RmEC)
      ++Swept;
  }
  if (Swept)
    Counters::get().add("cache.gc-tmp", Swept);
  return true;
}

SummaryCache::PrefetchShard &
SummaryCache::shardFor(const std::string &FnName) const {
  return Prefetched[Hasher::hashString(FnName) % NumPrefetchShards];
}

bool SummaryCache::prefetch(const std::string &FnName) const {
  std::vector<uint8_t> Raw;
  if (!readFileBytes(entryPath(FnName), Raw))
    return false;
  PrefetchShard &S = shardFor(FnName);
  std::lock_guard<std::mutex> L(S.Mu);
  S.Map[FnName] = std::move(Raw);
  return true;
}

void SummaryCache::dropPrefetched() const {
  for (PrefetchShard &S : Prefetched) {
    std::lock_guard<std::mutex> L(S.Mu);
    S.Map.clear();
  }
}

SummaryCache::Loaded SummaryCache::load(const std::string &FnName,
                                        uint64_t ExpectKey) const {
  // Consume the prefetch buffer first — validation below is identical for
  // buffered and freshly read bytes, so readahead never changes a status.
  std::vector<uint8_t> Raw;
  bool Buffered = false;
  {
    PrefetchShard &S = shardFor(FnName);
    std::lock_guard<std::mutex> L(S.Mu);
    auto It = S.Map.find(FnName);
    if (It != S.Map.end()) {
      Raw = std::move(It->second);
      S.Map.erase(It);
      Buffered = true;
    }
  }
  if (!Buffered && !readFileBytes(entryPath(FnName), Raw))
    return {LoadStatus::Missing, {}, ""};

  try {
    ByteReader R(Raw);
    char M[4];
    for (char &C : M)
      C = static_cast<char>(R.u8());
    if (std::memcmp(M, Magic, sizeof(Magic)) != 0)
      return {LoadStatus::Corrupt, {}, "bad magic"};
    uint32_t Version = R.u32();
    if (Version != FormatVersion)
      return {LoadStatus::Corrupt,
              {},
              "format version " + std::to_string(Version) + " != " +
                  std::to_string(FormatVersion)};
    uint64_t Key = R.u64();
    std::string Name = R.str();
    if (Name != FnName)
      return {LoadStatus::Missing, {}, ""}; // File-name hash collision.
    uint64_t Checksum = R.u64();
    uint32_t Size = R.u32();
    if (Size != R.remaining())
      return {LoadStatus::Corrupt, {}, "payload size mismatch"};
    std::vector<uint8_t> Payload(Size);
    for (uint32_t I = 0; I < Size; ++I)
      Payload[I] = R.u8();
    if (Hasher().bytes(Payload.data(), Payload.size()).digest() != Checksum)
      return {LoadStatus::Corrupt, {}, "payload checksum mismatch"};
    if (Key != ExpectKey)
      return {LoadStatus::Stale, {}, ""};
    return {LoadStatus::Ok, std::move(Payload), ""};
  } catch (const SerializationError &) {
    return {LoadStatus::Corrupt, {}, "truncated entry"};
  }
}

bool SummaryCache::store(const std::string &FnName, uint64_t Key,
                         const std::vector<uint8_t> &Payload) const {
  if (!writable())
    return false;

  ByteWriter W;
  for (char C : Magic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(FormatVersion);
  W.u64(Key);
  W.str(FnName);
  W.u64(Hasher().bytes(Payload.data(), Payload.size()).digest());
  W.u32(static_cast<uint32_t>(Payload.size()));
  std::vector<uint8_t> Bytes = W.take();
  Bytes.insert(Bytes.end(), Payload.begin(), Payload.end());

  // Unique temp name per store (concurrent --jobs writers, and a crashed
  // run's leftovers never collide), then an atomic rename into place.
  static std::atomic<uint64_t> TmpCounter{0};
  std::string Final = entryPath(FnName);
  std::string Tmp =
      Final + ".tmp" + std::to_string(TmpCounter.fetch_add(1)) + "." +
      std::to_string(static_cast<unsigned long long>(
          Hasher::hashString(FnName) & 0xffff));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    if (!Out)
      return false;
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Final, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  return true;
}

std::string SummaryCache::profilePath() const { return Dir + "/sched-profile"; }

bool SummaryCache::loadCostProfile(
    std::unordered_map<uint64_t, uint64_t> &Out) const {
  Out.clear();
  std::vector<uint8_t> Raw;
  if (!readFileBytes(profilePath(), Raw))
    return false;
  // Trailing u64 is a digest of everything before it; any truncation or
  // bit-rot reads as a cold profile, never as wrong costs.
  if (Raw.size() < 8)
    return false;
  uint64_t Expect = 0;
  for (size_t I = 0; I < 8; ++I)
    Expect |= static_cast<uint64_t>(Raw[Raw.size() - 8 + I]) << (8 * I);
  if (Hasher().bytes(Raw.data(), Raw.size() - 8).digest() != Expect)
    return false;
  try {
    ByteReader R(Raw);
    char M[4];
    for (char &C : M)
      C = static_cast<char>(R.u8());
    if (std::memcmp(M, ProfileMagic, sizeof(ProfileMagic)) != 0)
      return false;
    if (R.u32() != ProfileVersion)
      return false;
    uint32_t Count = R.u32();
    for (uint32_t I = 0; I < Count; ++I) {
      uint64_t Key = R.u64();
      uint64_t Micros = R.u64();
      Out[Key] = Micros;
    }
  } catch (const SerializationError &) {
    Out.clear();
    return false;
  }
  return !Out.empty();
}

bool SummaryCache::storeCostProfile(
    const std::vector<std::pair<uint64_t, uint64_t>> &Entries) const {
  if (!writable())
    return false;
  ByteWriter W;
  for (char C : ProfileMagic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(ProfileVersion);
  W.u32(static_cast<uint32_t>(Entries.size()));
  for (const auto &[Key, Micros] : Entries) {
    W.u64(Key);
    W.u64(Micros);
  }
  std::vector<uint8_t> Bytes = W.take();
  uint64_t Digest = Hasher().bytes(Bytes.data(), Bytes.size()).digest();
  for (size_t I = 0; I < 8; ++I)
    Bytes.push_back(static_cast<uint8_t>(Digest >> (8 * I)));

  static std::atomic<uint64_t> TmpCounter{0};
  std::string Final = profilePath();
  std::string Tmp = Final + ".tmp" + std::to_string(TmpCounter.fetch_add(1));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    if (!Out)
      return false;
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Final, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  return true;
}

} // namespace pinpoint
