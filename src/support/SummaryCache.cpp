//===- support/SummaryCache.cpp --------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/SummaryCache.h"
#include "support/Hasher.h"
#include "support/Serializer.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace pinpoint {

namespace {

constexpr char Magic[4] = {'P', 'P', 'S', 'C'};

} // namespace

std::string SummaryCache::entryPath(const std::string &FnName) const {
  // File names are a hex hash of the function name, not the name itself:
  // generated subjects have thousands of functions and names are not
  // guaranteed filesystem-safe. A collision maps two functions to one file;
  // the stored name disambiguates and the loser simply misses.
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                (unsigned long long)Hasher::hashString(FnName));
  return Dir + "/" + Buf + ".pps";
}

bool SummaryCache::prepare(std::string &Err) const {
  if (!writable())
    return true;
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    Err = "cannot create cache directory " + Dir + ": " + EC.message();
    return false;
  }
  return true;
}

SummaryCache::Loaded SummaryCache::load(const std::string &FnName,
                                        uint64_t ExpectKey) const {
  std::ifstream In(entryPath(FnName), std::ios::binary);
  if (!In)
    return {LoadStatus::Missing, {}, ""};
  std::vector<uint8_t> Raw((std::istreambuf_iterator<char>(In)),
                           std::istreambuf_iterator<char>());

  try {
    ByteReader R(Raw);
    char M[4];
    for (char &C : M)
      C = static_cast<char>(R.u8());
    if (std::memcmp(M, Magic, sizeof(Magic)) != 0)
      return {LoadStatus::Corrupt, {}, "bad magic"};
    uint32_t Version = R.u32();
    if (Version != FormatVersion)
      return {LoadStatus::Corrupt,
              {},
              "format version " + std::to_string(Version) + " != " +
                  std::to_string(FormatVersion)};
    uint64_t Key = R.u64();
    std::string Name = R.str();
    if (Name != FnName)
      return {LoadStatus::Missing, {}, ""}; // File-name hash collision.
    uint64_t Checksum = R.u64();
    uint32_t Size = R.u32();
    if (Size != R.remaining())
      return {LoadStatus::Corrupt, {}, "payload size mismatch"};
    std::vector<uint8_t> Payload(Size);
    for (uint32_t I = 0; I < Size; ++I)
      Payload[I] = R.u8();
    if (Hasher().bytes(Payload.data(), Payload.size()).digest() != Checksum)
      return {LoadStatus::Corrupt, {}, "payload checksum mismatch"};
    if (Key != ExpectKey)
      return {LoadStatus::Stale, {}, ""};
    return {LoadStatus::Ok, std::move(Payload), ""};
  } catch (const SerializationError &) {
    return {LoadStatus::Corrupt, {}, "truncated entry"};
  }
}

bool SummaryCache::store(const std::string &FnName, uint64_t Key,
                         const std::vector<uint8_t> &Payload) const {
  if (!writable())
    return false;

  ByteWriter W;
  for (char C : Magic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(FormatVersion);
  W.u64(Key);
  W.str(FnName);
  W.u64(Hasher().bytes(Payload.data(), Payload.size()).digest());
  W.u32(static_cast<uint32_t>(Payload.size()));
  std::vector<uint8_t> Bytes = W.take();
  Bytes.insert(Bytes.end(), Payload.begin(), Payload.end());

  // Unique temp name per store (concurrent --jobs writers, and a crashed
  // run's leftovers never collide), then an atomic rename into place.
  static std::atomic<uint64_t> TmpCounter{0};
  std::string Final = entryPath(FnName);
  std::string Tmp =
      Final + ".tmp" + std::to_string(TmpCounter.fetch_add(1)) + "." +
      std::to_string(static_cast<unsigned long long>(
          Hasher::hashString(FnName) & 0xffff));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    if (!Out)
      return false;
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Final, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  return true;
}

} // namespace pinpoint
