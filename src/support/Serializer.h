//===- support/Serializer.h - Bounds-checked binary (de)serialisation -----===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian binary writer/reader used by the persistent summary cache.
/// The writer appends into a byte vector; the reader is strictly
/// bounds-checked and *throws* `SerializationError` on any attempt to read
/// past the payload — a truncated or bit-flipped cache entry surfaces as one
/// catchable error, never as undefined behaviour. Numbers are serialised
/// byte-by-byte, so payloads are portable across hosts.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_SERIALIZER_H
#define PINPOINT_SUPPORT_SERIALIZER_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pinpoint {

class SerializationError : public std::runtime_error {
public:
  explicit SerializationError(const std::string &What)
      : std::runtime_error(What) {}
};

class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    Buf.push_back(static_cast<uint8_t>(V));
    Buf.push_back(static_cast<uint8_t>(V >> 8));
    Buf.push_back(static_cast<uint8_t>(V >> 16));
    Buf.push_back(static_cast<uint8_t>(V >> 24));
  }
  void u64(uint64_t V) {
    u32(static_cast<uint32_t>(V));
    u32(static_cast<uint32_t>(V >> 32));
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void boolean(bool B) { u8(B ? 1 : 0); }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }

  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : P(Data), End(Data + Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Buf)
      : ByteReader(Buf.data(), Buf.size()) {}

  uint8_t u8() {
    need(1);
    return *P++;
  }
  uint32_t u32() {
    need(4);
    uint32_t V = static_cast<uint32_t>(P[0]) |
                 (static_cast<uint32_t>(P[1]) << 8) |
                 (static_cast<uint32_t>(P[2]) << 16) |
                 (static_cast<uint32_t>(P[3]) << 24);
    P += 4;
    return V;
  }
  uint64_t u64() {
    uint64_t Lo = u32();
    return Lo | (static_cast<uint64_t>(u32()) << 32);
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str() {
    uint32_t N = u32();
    need(N);
    std::string S(reinterpret_cast<const char *>(P), N);
    P += N;
    return S;
  }

  size_t remaining() const { return static_cast<size_t>(End - P); }
  bool atEnd() const { return P == End; }

private:
  void need(size_t N) {
    if (static_cast<size_t>(End - P) < N)
      throw SerializationError("truncated payload");
  }
  const uint8_t *P;
  const uint8_t *End;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_SERIALIZER_H
