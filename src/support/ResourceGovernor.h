//===- support/ResourceGovernor.h - Budgets & graceful degradation --------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource-governance layer the paper relies on to survive million-LoC
/// inputs (Section 5: SMT timeouts treated soundily, a global wall clock,
/// bounded context depth). A `ResourceGovernor` carries
///
///  * a `Budget` — wall clock for the whole run and per function, step
///    budgets for the value-closure walk and the local points-to pass, the
///    per-query SMT timeout, and a size cap on analysed functions;
///  * a `DegradationLog` — every budget hit, solver Unknown, isolated
///    failure or injected fault is recorded as a structured event (and
///    mirrored into the global `Counters` under `governor.*`), so a
///    degraded run says exactly *what* was given up;
///  * a `FaultInjector` — deterministic forcing of the degradation paths.
///
/// The contract across the pipeline: exceeding a budget never aborts the
/// analysis. Stages truncate or skip the offending unit, log the event, and
/// keep producing best-effort results; SMT Unknown degrades to the soundy
/// "keep the report, tagged Unknown" verdict.
///
/// Stages take a `ResourceGovernor *`; passing nullptr means "ungoverned"
/// and stages then fall back to a process-wide unlimited instance.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_RESOURCEGOVERNOR_H
#define PINPOINT_SUPPORT_RESOURCEGOVERNOR_H

#include "support/FaultInjector.h"
#include "support/Timer.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace pinpoint {

/// Resource limits for one analysis run. Negative wall-clock values and
/// zero step values mean "unlimited".
struct Budget {
  int64_t RunWallMs = -1;      ///< Whole-run wall clock (paper: 12 hours).
  int64_t FunctionWallMs = -1; ///< Per-function wall clock (global SVFA).
  uint64_t MaxClosureSteps = 0; ///< Per value-closure walk.
  uint64_t MaxPTASteps = 0;     ///< Per local points-to pass (statements).
  int SolverTimeoutMs = 10000;  ///< Per SMT query (Z3 ms / MiniSolver-scaled).
  size_t MaxFunctionStmts = 0;  ///< Oversized-function pipeline skip.
};

enum class DegradationKind : uint8_t {
  SolverUnknown = 0,    ///< SMT backend answered Unknown (timeout/step cap).
  ClosureTruncated,     ///< Value-closure walk hit its step budget.
  PTATruncated,         ///< Local points-to pass hit its step budget.
  FunctionOversized,    ///< Function skipped: exceeds MaxFunctionStmts.
  FunctionBudgetExceeded, ///< Per-function wall clock expired.
  FunctionFailed,       ///< Exception isolated to one function's analysis.
  FunctionSkipped,      ///< Function skipped for a non-size reason.
  CheckerFailed,        ///< Exception isolated to one checker's run.
  RunBudgetExhausted,   ///< Whole-run wall clock expired.
  InjectedFault,        ///< A FaultInjector-forced event fired.
  NumKinds
};

const char *toString(DegradationKind K);

/// One structured degradation event.
struct DegradationEvent {
  DegradationKind Kind;
  std::string Stage;  ///< "pipeline", "svfa", "closure", "smt", "checker:uaf".
  std::string Detail; ///< Function name, step counts, exception text, ...
};

/// Append-only record of everything a run gave up. Event storage is capped;
/// per-kind counters are exact past the cap.
class DegradationLog {
public:
  void note(DegradationKind K, std::string Stage, std::string Detail);

  const std::vector<DegradationEvent> &events() const { return Events; }
  uint64_t count(DegradationKind K) const {
    return Counts[static_cast<size_t>(K)];
  }
  uint64_t total() const;
  /// One-line "kind=count ..." summary of the nonzero counters.
  std::string summary() const;

private:
  static constexpr size_t MaxStoredEvents = 4096;
  std::vector<DegradationEvent> Events;
  std::array<uint64_t, static_cast<size_t>(DegradationKind::NumKinds)>
      Counts{};
};

class ResourceGovernor {
public:
  explicit ResourceGovernor(Budget B = {}, FaultInjector FI = {})
      : B(B), FI(std::move(FI)) {}

  const Budget &budget() const { return B; }
  FaultInjector &faults() { return FI; }
  DegradationLog &log() { return Log; }
  const DegradationLog &log() const { return Log; }

  /// Records a degradation event (and bumps the `governor.<kind>` counter).
  void note(DegradationKind K, std::string Stage, std::string Detail);

  bool degraded() const { return Log.total() > 0; }

  //===--- Run-level wall clock -------------------------------------------===

  /// Restarts the run clock. The constructor starts it too, so callers that
  /// build the governor right before analysing need not call this.
  void beginRun() { RunTimer.restart(); }
  bool runExpired() const {
    return B.RunWallMs >= 0 && RunTimer.millis() > (double)B.RunWallMs;
  }

  //===--- Function-level wall clock --------------------------------------===

  void beginFunction() { FnTimer.restart(); }
  bool functionExpired() const {
    return B.FunctionWallMs >= 0 && FnTimer.millis() > (double)B.FunctionWallMs;
  }

  //===--- Value-closure step budget --------------------------------------===

  /// Arms the per-walk step budget (fault-injected override wins).
  void beginClosure() {
    uint64_t Limit = FI.closureStepOverride() ? FI.closureStepOverride()
                                              : B.MaxClosureSteps;
    ClosureBounded = Limit > 0;
    ClosureStepsLeft = Limit;
  }
  /// Charges one step of the current walk; false when exhausted.
  bool chargeClosureStep() {
    if (!ClosureBounded)
      return true;
    if (ClosureStepsLeft == 0)
      return false;
    --ClosureStepsLeft;
    return true;
  }

  int solverTimeoutMs() const { return B.SolverTimeoutMs; }

  /// The shared unlimited instance stages fall back to when no governor is
  /// supplied. Its log still accumulates (useful for ungoverned CLI runs).
  static ResourceGovernor &ungoverned();

private:
  Budget B;
  FaultInjector FI;
  DegradationLog Log;
  Timer RunTimer, FnTimer;
  uint64_t ClosureStepsLeft = 0;
  bool ClosureBounded = false;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_RESOURCEGOVERNOR_H
