//===- support/ResourceGovernor.h - Budgets & graceful degradation --------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource-governance layer the paper relies on to survive million-LoC
/// inputs (Section 5: SMT timeouts treated soundily, a global wall clock,
/// bounded context depth). A `ResourceGovernor` carries
///
///  * a `Budget` — wall clock for the whole run and per function, step
///    budgets for the value-closure walk and the local points-to pass, the
///    per-query SMT timeout, and a size cap on analysed functions;
///  * a `DegradationLog` — every budget hit, solver Unknown, isolated
///    failure or injected fault is recorded as a structured event (and
///    mirrored into the global `Counters` under `governor.*`), so a
///    degraded run says exactly *what* was given up;
///  * a `FaultInjector` — deterministic forcing of the degradation paths.
///
/// The contract across the pipeline: exceeding a budget never aborts the
/// analysis. Stages truncate or skip the offending unit, log the event, and
/// keep producing best-effort results; SMT Unknown degrades to the soundy
/// "keep the report, tagged Unknown" verdict.
///
/// Stages take a `ResourceGovernor *`; passing nullptr means "ungoverned"
/// and stages then fall back to a process-wide unlimited instance.
///
/// One governor is shared by every task of a `--jobs N` run: `note` and the
/// fault injector are internally locked, the degradation counters are
/// atomic, and the per-function/per-closure budget clocks live in
/// thread-local slots (each worker analyses one unit at a time).
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_RESOURCEGOVERNOR_H
#define PINPOINT_SUPPORT_RESOURCEGOVERNOR_H

#include "support/FaultInjector.h"
#include "support/Interrupt.h"
#include "support/Timer.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pinpoint {

/// Resource limits for one analysis run. Negative wall-clock values and
/// zero step values mean "unlimited".
struct Budget {
  int64_t RunWallMs = -1;      ///< Whole-run wall clock (paper: 12 hours).
  int64_t FunctionWallMs = -1; ///< Per-function wall clock (global SVFA).
  uint64_t MaxClosureSteps = 0; ///< Per value-closure walk.
  uint64_t MaxPTASteps = 0;     ///< Per local points-to pass (statements).
  int SolverTimeoutMs = 10000;  ///< Per SMT query (Z3 ms / MiniSolver-scaled).
  size_t MaxFunctionStmts = 0;  ///< Oversized-function pipeline skip.
  /// Governed-memory budget in MB (0 = unlimited). Crossing the modelled
  /// soft threshold pre-degrades the largest SCCs deterministically
  /// (svfa/Pipeline.cpp); crossing the hard threshold at run time degrades
  /// remaining work reactively (DESIGN.md section 12).
  int64_t MemBudgetMB = 0;
  /// Max retries per transient SMT-backend failure (smt/Solver.cpp).
  int RetryTransient = 2;
};

enum class DegradationKind : uint8_t {
  SolverUnknown = 0,    ///< SMT backend answered Unknown (timeout/step cap).
  ClosureTruncated,     ///< Value-closure walk hit its step budget.
  PTATruncated,         ///< Local points-to pass hit its step budget.
  FunctionOversized,    ///< Function skipped: exceeds MaxFunctionStmts.
  FunctionBudgetExceeded, ///< Per-function wall clock expired.
  FunctionFailed,       ///< Exception isolated to one function's analysis.
  FunctionSkipped,      ///< Function skipped for a non-size reason.
  CheckerFailed,        ///< Exception isolated to one checker's run.
  RunBudgetExhausted,   ///< Whole-run wall clock expired.
  InjectedFault,        ///< A FaultInjector-forced event fired.
  CacheCorrupt,         ///< Summary-cache entry failed integrity checks.
  MemoryPressure,       ///< SCC degraded to fit the governed-memory budget.
  Cancelled,            ///< Remaining work dropped: cancellation requested.
  SolverTransient,      ///< Transient backend failure persisted past retries.
  NumKinds
};

const char *toString(DegradationKind K);

/// One structured degradation event. Events carry the function they
/// degraded in explicitly — under `--jobs N` the emission order is a race,
/// so attribution can never rely on "the function currently being analysed".
struct DegradationEvent {
  DegradationKind Kind;
  std::string Stage;    ///< "pipeline", "svfa", "closure", "smt", "checker:uaf".
  std::string Function; ///< Function the event degraded in; "" if run-level.
  std::string Detail;   ///< Step counts, exception text, query origin, ...
};

/// Append-only record of everything a run gave up. Event storage is capped;
/// per-kind counters are exact past the cap. Thread-safe: `note` may be
/// called concurrently from pool tasks; counters are atomic and the event
/// vector is mutex-guarded, so `events()` returns a snapshot copy.
class DegradationLog {
public:
  void note(DegradationKind K, std::string Stage, std::string Function,
            std::string Detail);

  std::vector<DegradationEvent> events() const {
    std::lock_guard<std::mutex> L(Mu);
    return Events;
  }
  uint64_t count(DegradationKind K) const {
    return Counts[static_cast<size_t>(K)].load(std::memory_order_relaxed);
  }
  uint64_t total() const;
  /// One-line "kind=count ..." summary of the nonzero counters.
  std::string summary() const;

private:
  static constexpr size_t MaxStoredEvents = 4096;
  mutable std::mutex Mu; ///< Guards Events.
  std::vector<DegradationEvent> Events;
  std::array<std::atomic<uint64_t>,
             static_cast<size_t>(DegradationKind::NumKinds)>
      Counts{};
};

class ResourceGovernor {
public:
  explicit ResourceGovernor(Budget B = {}, FaultInjector FI = {})
      : B(B), FI(std::move(FI)) {}

  const Budget &budget() const { return B; }
  FaultInjector &faults() { return FI; }
  DegradationLog &log() { return Log; }
  const DegradationLog &log() const { return Log; }

  /// Records a degradation event (and bumps the `governor.<kind>` counter).
  /// \p Function names the function the event degraded in ("" = run-level).
  void note(DegradationKind K, std::string Stage, std::string Function,
            std::string Detail);

  bool degraded() const { return Log.total() > 0; }

  //===--- Run-level wall clock -------------------------------------------===

  /// Restarts the run clock. The constructor starts it too, so callers that
  /// build the governor right before analysing need not call this.
  void beginRun() { RunTimer.restart(); }
  bool runExpired() const {
    return B.RunWallMs >= 0 && RunTimer.millis() > (double)B.RunWallMs;
  }

  //===--- Cooperative cancellation ---------------------------------------===

  /// Attaches the cancellation token stages poll (nullptr detaches). The
  /// driver wires the process-wide signal token here; library callers may
  /// use their own. Not owned; must outlive the governed run.
  void setCancelToken(CancelToken *T) { Cancel = T; }
  CancelToken *cancelToken() const { return Cancel; }
  /// True once cancellation was requested; remaining work should degrade
  /// and unwind so partial results can be flushed.
  bool cancelled() const { return Cancel && Cancel->cancelled(); }

  //===--- Governed-memory budget -----------------------------------------===

  /// True when the live governed bytes (arena + per-structure accounting in
  /// MemStats) exceed the hard memory budget. The reactive backstop behind
  /// the deterministic pre-degradation plan: actual usage is interleaving-
  /// dependent, so this fires only when the model under-estimated.
  bool memHardExceeded() const;

  //===--- Function-level wall clock --------------------------------------===
  //
  // The function clock and the closure step budget are *per task*: each
  // pool worker analyses one function (or runs one query) at a time, so
  // this state lives in a thread-local slot keyed by governor.
  // beginFunction/beginClosure re-arm it at the start of every unit, which
  // is what makes the single slot sufficient.

  void beginFunction() { threadState().FnTimer.restart(); }
  bool functionExpired() const {
    return B.FunctionWallMs >= 0 &&
           threadState().FnTimer.millis() > (double)B.FunctionWallMs;
  }

  //===--- Value-closure step budget --------------------------------------===

  /// Arms the per-walk step budget (fault-injected override wins).
  void beginClosure() {
    uint64_t Limit = FI.closureStepOverride() ? FI.closureStepOverride()
                                              : B.MaxClosureSteps;
    ThreadState &TS = threadState();
    TS.ClosureBounded = Limit > 0;
    TS.ClosureStepsLeft = Limit;
  }
  /// Charges one step of the current walk; false when exhausted.
  bool chargeClosureStep() {
    ThreadState &TS = threadState();
    if (!TS.ClosureBounded)
      return true;
    if (TS.ClosureStepsLeft == 0)
      return false;
    --TS.ClosureStepsLeft;
    return true;
  }

  int solverTimeoutMs() const { return B.SolverTimeoutMs; }

  /// The shared unlimited instance stages fall back to when no governor is
  /// supplied. Its log still accumulates (useful for ungoverned CLI runs).
  static ResourceGovernor &ungoverned();

private:
  /// Per-thread budget state. One slot per thread is enough because a
  /// thread works under one governor at a time and every unit of work
  /// re-arms its budgets on entry; a governor switch just resets the slot.
  struct ThreadState {
    const ResourceGovernor *Owner = nullptr;
    Timer FnTimer;
    uint64_t ClosureStepsLeft = 0;
    bool ClosureBounded = false;
  };
  ThreadState &threadState() const {
    static thread_local ThreadState TS;
    if (TS.Owner != this) {
      TS.Owner = this;
      TS.FnTimer.restart();
      TS.ClosureStepsLeft = 0;
      TS.ClosureBounded = false;
    }
    return TS;
  }

  Budget B;
  FaultInjector FI;
  DegradationLog Log;
  Timer RunTimer;
  CancelToken *Cancel = nullptr;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_RESOURCEGOVERNOR_H
