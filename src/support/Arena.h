//===- support/Arena.h - Bump-pointer arena with byte accounting ---------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena allocator. All IR, SEG and constraint objects are
/// arena-allocated so that (a) allocation is cheap and (b) the benchmark
/// harness can report per-phase memory the same way the paper's Figures 8/9
/// report it, via exact byte accounting.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_ARENA_H
#define PINPOINT_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace pinpoint {

/// A simple bump-pointer arena. Objects allocated here are never individually
/// freed; destructors of trivially destructible payloads are skipped, others
/// must be registered via `allocObject`.
class Arena {
public:
  Arena() = default;
  /// \p Reported controls whether slab bytes flow into the global
  /// `MemStats` arena ledger. Pass false for arenas whose bytes are already
  /// charged through another channel (e.g. the SEG CSR arena, charged as
  /// per-structure bytes via `noteSEGNodes`), so governance never counts
  /// the same byte twice.
  explicit Arena(bool Reported) : Reported(Reported) {}
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  ~Arena() { reset(); }

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t)) {
    size_t P = (Cur + Align - 1) & ~(Align - 1);
    if (P + Size > End) {
      newSlab(Size + Align);
      P = (Cur + Align - 1) & ~(Align - 1);
    }
    Cur = P + Size;
    BytesUsed += Size;
    return reinterpret_cast<void *>(P);
  }

  /// Allocates and constructs a T. If T has a non-trivial destructor it is
  /// registered to run at arena destruction.
  template <typename T, typename... Args> T *allocObject(Args &&...A) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = new (Mem) T(std::forward<Args>(A)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Dtors.push_back({Obj, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Obj;
  }

  /// Allocates an uninitialised array of \p N trivially-destructible Ts.
  /// Returns nullptr for N == 0 so empty CSR rows cost nothing.
  template <typename T> T *allocArray(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "allocArray cannot register element destructors");
    if (N == 0)
      return nullptr;
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Moves the contents of \p Src into arena storage and returns the new
  /// base pointer; elements with non-trivial destructors are registered
  /// individually. \p Src is left empty.
  template <typename T> T *allocMove(std::vector<T> &&Src) {
    if (Src.empty())
      return nullptr;
    T *Base = static_cast<T *>(allocate(Src.size() * sizeof(T), alignof(T)));
    for (size_t I = 0; I < Src.size(); ++I) {
      T *Obj = new (Base + I) T(std::move(Src[I]));
      if constexpr (!std::is_trivially_destructible_v<T>)
        Dtors.push_back({Obj, [](void *P) { static_cast<T *>(P)->~T(); }});
    }
    Src.clear();
    return Base;
  }

  /// Total payload bytes handed out (excludes slab slack).
  size_t bytesUsed() const { return BytesUsed; }
  /// Total bytes reserved from the system.
  size_t bytesReserved() const { return BytesReserved; }

  /// Destroys registered objects and releases all slabs.
  void reset();

private:
  void newSlab(size_t MinSize);

  struct DtorEntry {
    void *Obj;
    void (*Fn)(void *);
  };

  std::vector<char *> Slabs;
  std::vector<DtorEntry> Dtors;
  uintptr_t Cur = 0, End = 0;
  size_t BytesUsed = 0, BytesReserved = 0;
  bool Reported = true;
  /// Slabs grow geometrically from MinSlabSize to MaxSlabSize so that many
  /// small arenas (one per analysed function) stay cheap.
  static constexpr size_t MinSlabSize = 4 << 10;
  static constexpr size_t MaxSlabSize = 1 << 20;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_ARENA_H
