//===- support/RNG.h - Deterministic random number generation ------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SplitMix64-based deterministic RNG. The synthetic-workload generator
/// must be reproducible across runs and platforms, so std::mt19937 with
/// distribution objects (whose outputs are implementation-defined) is not
/// used; everything here is fully specified.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_RNG_H
#define PINPOINT_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace pinpoint {

/// Deterministic 64-bit RNG (SplitMix64).
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "bad range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Bernoulli draw with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

  /// Derives an independent child RNG (for stable per-item streams).
  RNG fork(uint64_t Salt) { return RNG(next() ^ (Salt * 0x9e3779b97f4a7c15ULL)); }

private:
  uint64_t State;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_RNG_H
