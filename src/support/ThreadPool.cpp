//===- support/ThreadPool.cpp ----------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <cassert>

namespace pinpoint {

ThreadPool::ThreadPool(unsigned Workers) {
  if (Workers == 0)
    Workers = 1;
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(Mu);
    assert(Queue.empty() && "destroying pool with queued tasks");
  }
  requestStop();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::requestStop() {
  {
    // Flipped under Mu: a worker that just evaluated the wait predicate
    // false still holds the lock until it blocks, so the cancel cannot slip
    // into that window and lose its wakeup.
    std::lock_guard<std::mutex> L(Mu);
    Shutdown.cancel();
  }
  Cv.notify_all();
}

unsigned ThreadPool::hardwareConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> L(Mu);
  while (true) {
    // Task-boundary poll: the shutdown token is checked between tasks,
    // never inside one — a running task finishes (or polls its own run
    // token) before the worker exits.
    Cv.wait(L, [this] { return Shutdown.cancelled() || !Queue.empty(); });
    if (Shutdown.cancelled())
      return;
    Task T = std::move(Queue.front());
    Queue.pop_front();
    L.unlock();
    runTask(std::move(T));
    L.lock();
  }
}

void ThreadPool::runTask(Task T) {
  std::exception_ptr E;
  try {
    T.Fn();
  } catch (...) {
    E = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> L(Mu);
    if (E && !T.Group->Err)
      T.Group->Err = E;
    --T.Group->Pending;
  }
  // Wakes both idle workers (new tasks may have been spawned by T) and
  // helping waiters (whose group may just have drained).
  Cv.notify_all();
}

void ThreadPool::TaskGroup::spawn(std::function<void()> Fn) {
  {
    std::lock_guard<std::mutex> L(Pool.Mu);
    ++Pending;
    Pool.Queue.push_back({std::move(Fn), this});
  }
  Pool.Cv.notify_all();
}

void ThreadPool::TaskGroup::wait() {
  std::unique_lock<std::mutex> L(Pool.Mu);
  while (Pending > 0) {
    if (!Pool.Queue.empty()) {
      // Helping: run a queued task inline (possibly another group's) so a
      // wait from inside a task can never deadlock the pool.
      Task T = std::move(Pool.Queue.front());
      Pool.Queue.pop_front();
      L.unlock();
      Pool.runTask(std::move(T));
      L.lock();
      continue;
    }
    Pool.Cv.wait(L, [this] { return Pending == 0 || !Pool.Queue.empty(); });
  }
  std::exception_ptr E = Err;
  Err = nullptr;
  L.unlock();
  if (E)
    std::rethrow_exception(E);
}

ThreadPool::TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destructor-swallowed; observe exceptions via an explicit wait().
  }
}

} // namespace pinpoint
