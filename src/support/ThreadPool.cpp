//===- support/ThreadPool.cpp ----------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <cassert>

namespace pinpoint {

namespace {

/// Identifies the pool worker running on this thread (if any), so spawns
/// from inside a task land on the spawning worker's own deque.
struct WorkerIdentity {
  ThreadPool *Pool = nullptr;
  size_t Index = 0;
};
thread_local WorkerIdentity CurrentWorker;

/// xorshift64*: cheap per-worker victim shuffling. Owner-only state.
inline uint64_t nextRand(uint64_t &State) {
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return State * 0x2545F4914F6CDD1Dull;
}

} // namespace

ThreadPool::ThreadPool(unsigned Workers, Schedule Mode) : Mode(Mode) {
  if (Workers == 0)
    Workers = 1;
  Deques.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Deques.push_back(std::make_unique<WorkerDeque>());
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  assert(allQueuesEmpty() && "destroying pool with queued tasks");
  requestStop();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::requestStop() {
  {
    // Flipped under Mu: a worker that just evaluated the wait predicate
    // false still holds the lock until it blocks, so the cancel cannot slip
    // into that window and lose its wakeup.
    std::lock_guard<std::mutex> L(Mu);
    Shutdown.cancel();
  }
  Cv.notify_all();
}

bool ThreadPool::currentThreadIsWorker() const {
  return CurrentWorker.Pool == this;
}

unsigned ThreadPool::hardwareConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ThreadPool::SchedStats ThreadPool::schedStats() const {
  SchedStats S;
  for (const std::unique_ptr<WorkerDeque> &D : Deques) {
    std::lock_guard<std::mutex> L(D->Mu);
    S.LocalPops += D->LocalPops;
    S.InboxPops += D->InboxPops;
    S.Steals += D->Steals;
  }
  {
    std::lock_guard<std::mutex> L(InboxMu);
    S.InboxPops += HelperPops;
  }
  return S;
}

bool ThreadPool::allQueuesEmpty() {
  {
    std::lock_guard<std::mutex> L(InboxMu);
    if (!Inbox.empty())
      return false;
  }
  for (const std::unique_ptr<WorkerDeque> &D : Deques) {
    std::lock_guard<std::mutex> L(D->Mu);
    if (!D->Deque.empty())
      return false;
  }
  return true;
}

void ThreadPool::push(Task T) {
  if (Mode == Schedule::Steal && CurrentWorker.Pool == this) {
    WorkerDeque &D = *Deques[CurrentWorker.Index];
    std::lock_guard<std::mutex> L(D.Mu);
    D.Deque.push_back(std::move(T));
    return;
  }
  std::lock_guard<std::mutex> L(InboxMu);
  Inbox.push_back(std::move(T));
}

bool ThreadPool::popForWorker(size_t Index, Task &Out) {
  WorkerDeque &Own = *Deques[Index];
  if (Mode == Schedule::Steal) {
    // Own back first: LIFO keeps a task's children on the cache-warm
    // worker that spawned them.
    std::lock_guard<std::mutex> L(Own.Mu);
    if (!Own.Deque.empty()) {
      Out = std::move(Own.Deque.back());
      Own.Deque.pop_back();
      ++Own.LocalPops;
      return true;
    }
  }
  {
    // The inbox holds external submissions in priority (spawn) order; it
    // is the only queue in fifo mode.
    std::lock_guard<std::mutex> L(InboxMu);
    if (!Inbox.empty()) {
      Out = std::move(Inbox.front());
      Inbox.pop_front();
      std::lock_guard<std::mutex> LD(Own.Mu);
      ++Own.InboxPops;
      return true;
    }
  }
  if (Mode != Schedule::Steal || Deques.size() < 2)
    return false;
  // Steal from the *front* of a victim deque (the oldest task — in a
  // recursive decomposition the root of the largest unexplored subtree),
  // visiting victims from a randomized starting point so idle workers do
  // not convoy on one victim.
  if (Own.RngState == 0)
    Own.RngState = 0x9E3779B97F4A7C15ull ^ (Index + 1);
  const size_t N = Deques.size();
  size_t Start = static_cast<size_t>(nextRand(Own.RngState) % N);
  for (size_t K = 0; K < N; ++K) {
    size_t V = (Start + K) % N;
    if (V == Index)
      continue;
    WorkerDeque &Victim = *Deques[V];
    std::unique_lock<std::mutex> LV(Victim.Mu);
    if (Victim.Deque.empty())
      continue;
    Out = std::move(Victim.Deque.front());
    Victim.Deque.pop_front();
    LV.unlock();
    std::lock_guard<std::mutex> L(Own.Mu);
    ++Own.Steals;
    return true;
  }
  return false;
}

bool ThreadPool::popForHelper(TaskGroup *Only, Task &Out) {
  {
    std::lock_guard<std::mutex> L(InboxMu);
    for (auto It = Inbox.begin(); It != Inbox.end(); ++It) {
      if (Only && It->Group != Only)
        continue;
      Out = std::move(*It);
      Inbox.erase(It);
      ++HelperPops;
      return true;
    }
  }
  for (const std::unique_ptr<WorkerDeque> &D : Deques) {
    std::lock_guard<std::mutex> L(D->Mu);
    for (auto It = D->Deque.begin(); It != D->Deque.end(); ++It) {
      if (Only && It->Group != Only)
        continue;
      Out = std::move(*It);
      D->Deque.erase(It);
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(size_t Index) {
  CurrentWorker = {this, Index};
  std::unique_lock<std::mutex> L(Mu);
  while (true) {
    // Task-boundary poll: the shutdown token is checked between tasks,
    // never inside one — a running task finishes (or polls its own run
    // token) before the worker exits.
    if (Shutdown.cancelled())
      return;
    const uint64_t E = Epoch;
    L.unlock();
    Task T;
    if (popForWorker(Index, T)) {
      runTask(std::move(T));
      L.lock();
      continue;
    }
    L.lock();
    // Epoch is bumped (under Mu) after every push, so a push that landed
    // after our scan flips the predicate and a push that landed before it
    // was visible to the scan: no task is ever slept past.
    Cv.wait(L, [this, E] { return Shutdown.cancelled() || Epoch != E; });
  }
}

void ThreadPool::runTask(Task T) {
  std::exception_ptr E;
  try {
    T.Fn();
  } catch (...) {
    E = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> L(Mu);
    if (E && !T.Group->Err)
      T.Group->Err = E;
    --T.Group->Pending;
  }
  // Wakes both idle workers (new tasks may have been spawned by T) and
  // helping waiters (whose group may just have drained).
  Cv.notify_all();
}

void ThreadPool::TaskGroup::spawn(std::function<void()> Fn) {
  {
    // Pending is raised before the task becomes stealable so a completion
    // can never underflow the ledger.
    std::lock_guard<std::mutex> L(Pool.Mu);
    ++Pending;
  }
  Pool.push({std::move(Fn), this});
  {
    // The epoch bump is ordered after the push: a sleeper whose scan
    // missed this task observes Epoch != E and rescans.
    std::lock_guard<std::mutex> L(Pool.Mu);
    ++Pool.Epoch;
  }
  Pool.Cv.notify_all();
}

void ThreadPool::TaskGroup::wait() {
  std::unique_lock<std::mutex> L(Pool.Mu);
  while (Pending > 0) {
    const uint64_t E = Pool.Epoch;
    // While a shutdown is pending, help only with *this* group's tasks:
    // running another group's backlog here would delay the cancel drain
    // (each waiter finishes just its own stragglers and returns).
    const bool Restricted = Pool.Shutdown.cancelled();
    L.unlock();
    Task T;
    if (Pool.popForHelper(Restricted ? this : nullptr, T)) {
      Pool.runTask(std::move(T));
      L.lock();
      continue;
    }
    L.lock();
    Pool.Cv.wait(L, [this, E, Restricted] {
      return Pending == 0 || Pool.Epoch != E ||
             Pool.Shutdown.cancelled() != Restricted;
    });
  }
  std::exception_ptr E = Err;
  Err = nullptr;
  L.unlock();
  if (E)
    std::rethrow_exception(E);
}

ThreadPool::TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destructor-swallowed; observe exceptions via an explicit wait().
  }
}

} // namespace pinpoint
