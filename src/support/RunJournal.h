//===- support/RunJournal.h - Interrupt/resume run journal ----------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk run journal of the resilience layer (DESIGN.md section 12).
/// Every cache-enabled run records, in its `--cache-dir`, the subject
/// fingerprint and the completed/degraded status of every call-graph SCC
/// (keyed by the same transitive content keys the summary cache uses). A
/// later run over the same subject reads the previous journal and counts
/// how many of its SCCs were already completed — the `resumed-sccs` stat
/// that makes interrupt/resume observable. Resume *correctness* needs no
/// journal at all: completed SCC summaries are flushed to the cache as they
/// finish, so a rerun simply replays them.
///
/// Format (text, one record per line, written via atomic tmp+rename):
///
///   PPRJ 1 <subject-fingerprint-hex>
///   <scc-key-hex> completed
///   <scc-key-hex> degraded
///   ...
///
/// A missing or corrupt journal is never an error — the run just reports
/// zero resumed SCCs and rewrites the journal at the end.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_RUNJOURNAL_H
#define PINPOINT_SUPPORT_RUNJOURNAL_H

#include <cstdint>
#include <string>
#include <vector>

namespace pinpoint {

struct RunJournal {
  static constexpr uint32_t FormatVersion = 1;

  struct Entry {
    uint64_t Key = 0; ///< The SCC's transitive content key.
    bool Completed = false;
  };

  uint64_t SubjectFingerprint = 0;
  std::vector<Entry> SCCs;

  /// Journal path inside cache directory \p Dir.
  static std::string path(const std::string &Dir);

  /// Loads the journal from \p Dir. Returns false (leaving *this default)
  /// when the file is missing, unreadable, or fails format checks.
  bool load(const std::string &Dir);

  /// Atomically writes the journal into \p Dir (tmp file + rename, like the
  /// summary cache). Returns false on I/O failure; callers treat that as a
  /// non-fatal degradation, never an abort.
  bool store(const std::string &Dir) const;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_RUNJOURNAL_H
