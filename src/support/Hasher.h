//===- support/Hasher.h - Streaming structural hashing --------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming 64-bit hasher (FNV-1a core with a final avalanche mix)
/// used for stable, platform-independent content keys: IR fingerprints, the
/// summary-cache SCC keys, and cache file names. Not cryptographic — the
/// cache pairs every key with an explicit payload checksum and the stored
/// function name, so a collision degrades to a detected mismatch, never to
/// silently wrong results.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_HASHER_H
#define PINPOINT_SUPPORT_HASHER_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace pinpoint {

class Hasher {
public:
  Hasher &bytes(const void *Data, size_t N) {
    const auto *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < N; ++I)
      H = (H ^ P[I]) * 1099511628211ull;
    return *this;
  }

  Hasher &u8(uint8_t V) { return bytes(&V, 1); }
  Hasher &u32(uint32_t V) {
    // Byte-serialise explicitly so the digest is endianness-independent.
    uint8_t B[4] = {static_cast<uint8_t>(V), static_cast<uint8_t>(V >> 8),
                    static_cast<uint8_t>(V >> 16),
                    static_cast<uint8_t>(V >> 24)};
    return bytes(B, sizeof(B));
  }
  Hasher &u64(uint64_t V) {
    u32(static_cast<uint32_t>(V));
    return u32(static_cast<uint32_t>(V >> 32));
  }
  Hasher &i64(int64_t V) { return u64(static_cast<uint64_t>(V)); }
  /// Length-prefixed, so "ab"+"c" and "a"+"bc" hash differently.
  Hasher &str(const std::string &S) {
    u64(S.size());
    return bytes(S.data(), S.size());
  }

  /// The digest. A final mix (splitmix64 finaliser) spreads the FNV state's
  /// low-entropy high bits before the value is truncated or bucketed.
  uint64_t digest() const {
    uint64_t Z = H;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// One-shot convenience for short keys (cache file names).
  static uint64_t hashString(const std::string &S) {
    return Hasher().str(S).digest();
  }

private:
  uint64_t H = 1469598103934665603ull;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_HASHER_H
