//===- support/Timer.h - Wall-clock timing helpers ------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small wall-clock stopwatch used by the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_TIMER_H
#define PINPOINT_SUPPORT_TIMER_H

#include <chrono>

namespace pinpoint {

/// A stopwatch that starts on construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Elapsed seconds since construction or last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }
  double millis() const { return seconds() * 1e3; }
  void restart() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_TIMER_H
