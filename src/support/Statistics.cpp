//===- support/Statistics.cpp ---------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <cstdio>
#include <cstring>

namespace pinpoint {

Counters &Counters::get() {
  static Counters C;
  return C;
}

MemStats &MemStats::get() {
  static MemStats M;
  return M;
}

int64_t MemStats::processPeakRSS() {
  FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return 0;
  char Line[256];
  int64_t KB = 0;
  while (std::fgets(Line, sizeof(Line), F)) {
    if (std::strncmp(Line, "VmHWM:", 6) == 0) {
      std::sscanf(Line + 6, "%ld", &KB);
      break;
    }
  }
  std::fclose(F);
  return KB * 1024;
}

} // namespace pinpoint
