//===- support/Span.h - Non-owning contiguous range view -----------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal non-owning view over a contiguous range, used by the frozen
/// CSR encodings (SEG adjacency, value-flow summaries) so consumers can
/// range-for over arena-backed edge arrays without copying and without the
/// containers that backed construction. Keeps us off C++20's std::span.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_SPAN_H
#define PINPOINT_SUPPORT_SPAN_H

#include <cstddef>

namespace pinpoint {

template <typename T> class Span {
public:
  Span() = default;
  Span(const T *Data, size_t Size) : Data(Data), N(Size) {}

  const T *begin() const { return Data; }
  const T *end() const { return Data + N; }
  const T *data() const { return Data; }
  size_t size() const { return N; }
  bool empty() const { return N == 0; }
  const T &operator[](size_t I) const { return Data[I]; }
  const T &front() const { return Data[0]; }
  const T &back() const { return Data[N - 1]; }

private:
  const T *Data = nullptr;
  size_t N = 0;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_SPAN_H
