//===- support/SummaryCache.h - Persistent function-summary store ---------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk half of incremental reanalysis (`--cache-dir`): a directory
/// of per-function entry files, one per analysed function, in a versioned
/// binary format. This layer is deliberately IR-agnostic — it stores opaque
/// payload bytes against a (function name, content key) pair; encoding and
/// decoding the pipeline artifacts lives in svfa/SummaryIO.
///
/// Entry file layout (little-endian, see support/Serializer.h):
///
///   "PPSC"            magic
///   u32               format version
///   u64               content key (transitive SCC hash, see DESIGN.md §10)
///   str               function name (guards file-name hash collisions)
///   u64               payload checksum (Hasher digest of the payload)
///   u32               payload size
///   bytes             payload
///
/// Every integrity failure — short file, bad magic, version mismatch,
/// checksum mismatch — is reported as `Corrupt` with a human-readable
/// detail; a key mismatch is `Stale` (the function or its callees changed).
/// Callers fall back to a full rebuild in both cases. Writes go through a
/// unique temp file plus an atomic rename, so concurrent `--jobs` stores
/// and a reader racing a writer never observe a half-written entry.
///
/// Two side channels support the pipelined scheduler (DESIGN.md §14):
///
///  * `prefetch` reads an entry's raw bytes into a sharded in-memory
///    buffer ahead of time (a pool task overlapping neighbouring SCC
///    analysis); `load` consumes the buffered bytes instead of touching
///    the filesystem, with identical validation, statuses and counters —
///    prefetching is pure I/O readahead and can never change a result;
///  * `{load,store}CostProfile` persist measured per-SCC analysis costs
///    (`<dir>/sched-profile`, keyed by SCC content key) so warm runs rank
///    the critical path with real costs instead of the size heuristic.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_SUMMARYCACHE_H
#define PINPOINT_SUPPORT_SUMMARYCACHE_H

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pinpoint {

class SummaryCache {
public:
  enum class Mode { Read, ReadWrite };

  /// Bump whenever the payload encoding or the key derivation changes; old
  /// entries then read as Corrupt("format version ...") and are rebuilt.
  static constexpr uint32_t FormatVersion = 1;

  SummaryCache(std::string Directory, Mode M)
      : Dir(std::move(Directory)), M(M) {}

  const std::string &directory() const { return Dir; }
  bool writable() const { return M == Mode::ReadWrite; }

  /// Creates the directory when writable and sweeps `*.tmp*` files that a
  /// crashed run's atomic write-then-rename left orphaned (counted in the
  /// `cache.gc-tmp` stat). Returns false (with \p Err set) only if the
  /// directory cannot be created; a missing directory in read mode is not
  /// an error — every probe simply misses.
  bool prepare(std::string &Err) const;

  enum class LoadStatus : uint8_t {
    Missing, ///< No entry (or a file-name hash collision with another fn).
    Corrupt, ///< Integrity failure; Detail says which check tripped.
    Stale,   ///< Entry exists but its content key does not match.
    Ok,
  };
  struct Loaded {
    LoadStatus Status;
    std::vector<uint8_t> Payload; ///< Filled only for Ok.
    std::string Detail;           ///< Filled for Corrupt.
  };

  Loaded load(const std::string &FnName, uint64_t ExpectKey) const;

  /// Atomically (re)writes \p FnName's entry. Returns false on I/O failure;
  /// the previous entry, if any, is left intact in that case.
  bool store(const std::string &FnName, uint64_t Key,
             const std::vector<uint8_t> &Payload) const;

  /// Reads \p FnName's entry bytes into the prefetch buffer (no parsing,
  /// no validation, no counters — those all happen at `load`, which
  /// consumes the buffered bytes). A missing file buffers nothing; `load`
  /// then probes the filesystem as usual. Thread-safe; returns true when
  /// bytes were buffered.
  bool prefetch(const std::string &FnName) const;
  /// Frees entries that were prefetched but never consumed (degraded or
  /// cancelled chains whose probe was skipped).
  void dropPrefetched() const;

  /// Measured per-SCC analysis costs from a previous run, persisted as
  /// `<dir>/sched-profile` and keyed by SCC content key — an edit changes
  /// the keys of exactly the dirtied caller chain, so unaffected SCCs keep
  /// their measured costs. Returns false (leaving \p Out empty) when the
  /// profile is missing or fails its checksum; the scheduler then falls
  /// back to the size heuristic.
  bool loadCostProfile(std::unordered_map<uint64_t, uint64_t> &Out) const;
  /// Atomically rewrites the profile with this run's (key, microseconds)
  /// measurements. Returns false on I/O failure (harmless: the next run
  /// ranks heuristically).
  bool storeCostProfile(
      const std::vector<std::pair<uint64_t, uint64_t>> &Entries) const;

  /// The entry file backing \p FnName (exposed for tests that corrupt it).
  std::string entryPath(const std::string &FnName) const;
  /// The cost-profile file (exposed for tests that corrupt it).
  std::string profilePath() const;

private:
  std::string Dir;
  Mode M;

  /// Prefetched raw entry bytes, keyed by function name. Sharded like the
  /// SMT verdict cache: prefetch tasks and consuming analysis tasks run on
  /// different workers.
  struct PrefetchShard {
    mutable std::mutex Mu;
    std::map<std::string, std::vector<uint8_t>> Map;
  };
  static constexpr size_t NumPrefetchShards = 8;
  mutable std::array<PrefetchShard, NumPrefetchShards> Prefetched;
  PrefetchShard &shardFor(const std::string &FnName) const;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_SUMMARYCACHE_H
