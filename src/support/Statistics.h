//===- support/Statistics.h - Counters, memory and time accounting -------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight global statistics used by the evaluation harnesses:
///  * named counters (e.g. "smt.linear.unsat", "seg.vertices");
///  * live arena-byte accounting, with a high-water mark, used to reproduce
///    the paper's memory figures (Figs. 8-10, Table 2) deterministically;
///  * peak-RSS probing from /proc for sanity cross-checks.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_STATISTICS_H
#define PINPOINT_SUPPORT_STATISTICS_H

#include <cstdint>
#include <map>
#include <string>

namespace pinpoint {

/// Global named counters. Not thread-safe; the analyses are single-threaded
/// (the evaluation machine here has one core, and the paper's numbers for a
/// single checker are per-process anyway).
class Counters {
public:
  static Counters &get();

  void add(const std::string &Name, int64_t Delta = 1) { Map[Name] += Delta; }
  int64_t value(const std::string &Name) const {
    auto It = Map.find(Name);
    return It == Map.end() ? 0 : It->second;
  }
  void clear() { Map.clear(); }
  const std::map<std::string, int64_t> &all() const { return Map; }

private:
  std::map<std::string, int64_t> Map;
};

/// Tracks bytes held by all live arenas, with a resettable high-water mark.
class MemStats {
public:
  static MemStats &get();

  void noteArenaBytes(int64_t Delta) {
    Live += Delta;
    if (Live > Peak)
      Peak = Live;
  }
  int64_t liveBytes() const { return Live; }
  int64_t peakBytes() const { return Peak; }
  void resetPeak() { Peak = Live; }

  /// Reads VmHWM (peak resident set) from /proc/self/status, in bytes.
  /// Returns 0 if unavailable.
  static int64_t processPeakRSS();

private:
  int64_t Live = 0;
  int64_t Peak = 0;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_STATISTICS_H
