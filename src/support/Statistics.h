//===- support/Statistics.h - Counters, memory and time accounting -------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight global statistics used by the evaluation harnesses:
///  * named counters (e.g. "smt.linear.unsat", "seg.vertices");
///  * live arena-byte accounting, with a high-water mark, used to reproduce
///    the paper's memory figures (Figs. 8-10, Table 2) deterministically;
///  * peak-RSS probing from /proc for sanity cross-checks.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_STATISTICS_H
#define PINPOINT_SUPPORT_STATISTICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace pinpoint {

/// Global named counters. Thread-safe: `add` may be called concurrently
/// from pipeline/checker tasks under `--jobs N` (the name is hashed to one
/// of a fixed set of internally-locked shards, so unrelated counters do
/// not contend). Reads (`value`, `snapshot`) take the shard locks and are
/// linearizable per counter; `snapshot` is *not* an atomic cut across
/// counters — take it when the pool is quiescent for exact totals.
class Counters {
public:
  static Counters &get();

  void add(const std::string &Name, int64_t Delta = 1) {
    Shard &S = shardFor(Name);
    std::lock_guard<std::mutex> L(S.Mu);
    S.Map[Name] += Delta;
  }

  int64_t value(const std::string &Name) const {
    const Shard &S = shardFor(Name);
    std::lock_guard<std::mutex> L(S.Mu);
    auto It = S.Map.find(Name);
    return It == S.Map.end() ? 0 : It->second;
  }

  void clear() {
    for (Shard &S : Shards) {
      std::lock_guard<std::mutex> L(S.Mu);
      S.Map.clear();
    }
  }

  /// Merged copy of every counter, sorted by name.
  std::map<std::string, int64_t> snapshot() const {
    std::map<std::string, int64_t> Out;
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> L(S.Mu);
      for (const auto &[Name, V] : S.Map)
        Out[Name] += V;
    }
    return Out;
  }

private:
  struct Shard {
    mutable std::mutex Mu;
    std::map<std::string, int64_t> Map;
  };
  static constexpr size_t NumShards = 16;

  Shard &shardFor(const std::string &Name) {
    return Shards[hashName(Name) % NumShards];
  }
  const Shard &shardFor(const std::string &Name) const {
    return Shards[hashName(Name) % NumShards];
  }
  static size_t hashName(const std::string &Name) {
    // FNV-1a; stable across runs so shard assignment is deterministic.
    uint64_t H = 1469598103934665603ull;
    for (char C : Name)
      H = (H ^ static_cast<unsigned char>(C)) * 1099511628211ull;
    return static_cast<size_t>(H);
  }

  std::array<Shard, NumShards> Shards;
};

/// Tracks bytes held by all live arenas, with a resettable high-water mark.
/// Thread-safe: arenas on concurrent analysis tasks report through atomics
/// (the peak is maintained with a CAS loop, so it never under-reports).
///
/// Beyond arenas, the memory governor (`--mem-budget-mb`) also needs the
/// big non-arena structures accounted: points-to sets and SEG vertices live
/// in heap containers the arena counter never sees. Their owners charge
/// per-structure deltas (entry/node counts times a coarse byte weight)
/// through `notePTEntries`/`noteSEGNodes` and discharge them on
/// destruction; `governedBytes()` is the budget the governor polls and
/// `peakGovernedBytes()` feeds the `mem.peak-governed` stat.
class MemStats {
public:
  static MemStats &get();

  void noteArenaBytes(int64_t Delta) {
    int64_t Now = Live.fetch_add(Delta, std::memory_order_relaxed) + Delta;
    raisePeak(Peak, Now);
    raisePeak(GovernedPeak,
              Now + Struct.load(std::memory_order_relaxed));
  }
  int64_t liveBytes() const { return Live.load(std::memory_order_relaxed); }
  int64_t peakBytes() const { return Peak.load(std::memory_order_relaxed); }
  void resetPeak() { Peak.store(liveBytes(), std::memory_order_relaxed); }
  /// Rebases both high-water marks to the current live totals. Used by the
  /// benchmark harness between phases so each phase reports its own peak.
  void resetPeaks() {
    Peak.store(liveBytes(), std::memory_order_relaxed);
    GovernedPeak.store(governedBytes(), std::memory_order_relaxed);
  }

  /// Per-structure accounting hooks (negative deltas discharge). \p Bytes
  /// is the owner's *measured* heap cost for those \p N entries — container
  /// node overhead included — not a fixed per-entry weight, so
  /// `planMemoryPressure` orders SCCs by what they actually cost.
  void notePTEntries(int64_t N, int64_t Bytes) {
    PTEntries.fetch_add(N, std::memory_order_relaxed);
    noteStructBytes(Bytes);
  }
  void noteSEGNodes(int64_t N, int64_t Bytes) {
    SEGNodes.fetch_add(N, std::memory_order_relaxed);
    noteStructBytes(Bytes);
  }
  int64_t ptEntries() const {
    return PTEntries.load(std::memory_order_relaxed);
  }
  int64_t segNodes() const { return SEGNodes.load(std::memory_order_relaxed); }

  /// Everything the memory governor charges against `--mem-budget-mb`:
  /// live arena bytes plus the weighted per-structure accounting.
  int64_t governedBytes() const {
    return Live.load(std::memory_order_relaxed) +
           Struct.load(std::memory_order_relaxed);
  }
  int64_t peakGovernedBytes() const {
    return GovernedPeak.load(std::memory_order_relaxed);
  }

  /// Reads VmHWM (peak resident set) from /proc/self/status, in bytes.
  /// Returns 0 if unavailable.
  static int64_t processPeakRSS();

private:
  void noteStructBytes(int64_t Delta) {
    int64_t Now = Struct.fetch_add(Delta, std::memory_order_relaxed) + Delta;
    raisePeak(GovernedPeak, Now + Live.load(std::memory_order_relaxed));
  }
  static void raisePeak(std::atomic<int64_t> &P, int64_t Now) {
    int64_t Seen = P.load(std::memory_order_relaxed);
    while (Now > Seen &&
           !P.compare_exchange_weak(Seen, Now, std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> Live{0};
  std::atomic<int64_t> Peak{0};
  std::atomic<int64_t> Struct{0}; ///< Weighted per-structure bytes.
  std::atomic<int64_t> GovernedPeak{0};
  std::atomic<int64_t> PTEntries{0};
  std::atomic<int64_t> SEGNodes{0};
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_STATISTICS_H
