//===- support/Interrupt.cpp -----------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Interrupt.h"

#include <csignal>

namespace pinpoint::interrupt {

namespace {

// Constant-initialised so the handler can touch them even if a signal lands
// before main() runs any of this file's code.
CancelToken ProcessToken;
std::atomic<int> LastSignal{0};

void handleSignal(int Sig) {
  // Async-signal-safe: two lock-free atomic stores, nothing else.
  LastSignal.store(Sig, std::memory_order_relaxed);
  ProcessToken.cancel();
}

} // namespace

CancelToken &processToken() { return ProcessToken; }

bool installSignalHandlers() {
#ifdef _WIN32
  return std::signal(SIGINT, handleSignal) != SIG_ERR &&
         std::signal(SIGTERM, handleSignal) != SIG_ERR;
#else
  struct sigaction SA = {};
  SA.sa_handler = handleSignal;
  sigemptyset(&SA.sa_mask);
  // No SA_RESTART: a blocking read should fail with EINTR so the polling
  // loops get to observe the token promptly.
  SA.sa_flags = 0;
  return sigaction(SIGINT, &SA, nullptr) == 0 &&
         sigaction(SIGTERM, &SA, nullptr) == 0;
#endif
}

int lastSignal() { return LastSignal.load(std::memory_order_relaxed); }

void resetForTesting() {
  LastSignal.store(0, std::memory_order_relaxed);
  ProcessToken.reset();
}

} // namespace pinpoint::interrupt
