//===- support/ThreadPool.h - Fixed worker pool with task groups ----------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate of the parallel analysis engine (`--jobs N`).
/// A `ThreadPool` owns a fixed set of worker threads draining one shared
/// FIFO task queue; work is submitted through `TaskGroup`s, which scope a
/// batch of tasks so the submitter can wait for exactly its own work:
///
///  * `spawn` never blocks — tasks queue and run as workers free up;
///  * `wait` is a *helping* wait: while its group has pending tasks, the
///    waiting thread pops and runs queued tasks inline instead of idling.
///    This makes nested waits deadlock-free — a task running on the last
///    worker can spawn subtasks into a fresh group and wait on them (the
///    reentrancy guard the scheduler and the checker fan-out rely on);
///  * the first exception thrown by a task of a group is captured and
///    rethrown from that group's `wait()`; remaining tasks still run
///    (analysis tasks isolate their own failures — a group-level throw is
///    an engine bug, not a degradation path).
///
/// Scheduling order is FIFO but completion order is nondeterministic;
/// callers that need deterministic output write results into pre-sized
/// slots indexed by task and merge after `wait()` (see svfa/Pipeline.cpp
/// and tools/PinpointMain.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_THREADPOOL_H
#define PINPOINT_SUPPORT_THREADPOOL_H

#include "support/Interrupt.h"

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pinpoint {

class ThreadPool {
public:
  /// Starts \p Workers worker threads (at least one).
  explicit ThreadPool(unsigned Workers);
  /// Joins the workers. All TaskGroups must have completed their waits.
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workers() const { return static_cast<unsigned>(Threads.size()); }

  /// std::thread::hardware_concurrency(), never 0.
  static unsigned hardwareConcurrency();

  /// Cancels the shutdown token and wakes every worker — the single drain
  /// path shared by destructor teardown and explicit cancellation. Workers
  /// exit at their next task boundary; queued tasks still drain through
  /// helping waits (`TaskGroup::wait`), so pending groups complete.
  void requestStop();

  /// The token the worker loops observe. Exposed so lifecycle tests can
  /// assert the drain path; cancelling it directly is equivalent to
  /// `requestStop()` minus the wakeup (prefer `requestStop`).
  const CancelToken &shutdownToken() const { return Shutdown; }

  /// A batch of tasks that can be waited on together. Not thread-safe
  /// itself: spawn/wait from one owner thread (tasks may spawn into their
  /// own group's pool via a nested TaskGroup).
  class TaskGroup {
  public:
    explicit TaskGroup(ThreadPool &Pool) : Pool(Pool) {}
    /// Waits for stragglers; exceptions are swallowed here — call wait()
    /// explicitly to observe them.
    ~TaskGroup();
    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /// Enqueues \p Fn; never blocks. Safe to call from inside a task.
    void spawn(std::function<void()> Fn);

    /// Blocks until every task spawned into this group has finished,
    /// helping to drain the pool's queue meanwhile. Rethrows the first
    /// exception any task of this group threw.
    void wait();

  private:
    friend class ThreadPool;
    ThreadPool &Pool;
    size_t Pending = 0;     ///< Guarded by Pool.Mu.
    std::exception_ptr Err; ///< Guarded by Pool.Mu; first failure wins.
  };

private:
  struct Task {
    std::function<void()> Fn;
    TaskGroup *Group;
  };

  void workerLoop();
  void runTask(Task T);

  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<Task> Queue;
  std::vector<std::thread> Threads;
  /// Worker shutdown signal. A CancelToken instead of a plain flag so
  /// teardown reuses the same cancellation primitive the rest of the
  /// lifecycle layer polls; it is still flipped under Mu (and observed
  /// under Mu in the wait predicate) to keep the no-missed-wakeup protocol.
  CancelToken Shutdown;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_THREADPOOL_H
