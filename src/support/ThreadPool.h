//===- support/ThreadPool.h - Work-stealing worker pool with task groups --===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate of the parallel analysis engine (`--jobs N`).
/// A `ThreadPool` owns a fixed set of worker threads; work is submitted
/// through `TaskGroup`s, which scope a batch of tasks so the submitter can
/// wait for exactly its own work.
///
/// Two scheduling disciplines (`--schedule`):
///
///  * `Steal` (default): each worker owns a deque in the Chase-Lev style —
///    the owner pushes and pops at the back (LIFO, so a task's children run
///    while their working set is hot), thieves take from the front (FIFO,
///    so the oldest — typically largest — subtree migrates). Tasks spawned
///    from outside the pool land in a shared inbox that idle workers drain
///    before stealing; steal victims are visited in a per-worker randomized
///    order to avoid convoying.
///  * `Fifo`: the legacy single shared FIFO queue (the inbox), kept as an
///    escape hatch and as the baseline the scheduling bench compares
///    against.
///
/// Group semantics are identical in both modes:
///
///  * `spawn` never blocks — tasks queue and run as workers free up;
///  * `wait` is a *helping* wait: while its group has pending tasks, the
///    waiting thread pops and runs queued tasks inline instead of idling.
///    This makes nested waits deadlock-free — a task running on the last
///    worker can spawn subtasks into a fresh group and wait on them (the
///    reentrancy guard the scheduler and the checker fan-out rely on).
///    While a shutdown is pending (`requestStop`), helping narrows to the
///    waiter's *own* group: running another group's backlog inline would
///    delay the cancel drain (the SIGINT path wants each waiter to finish
///    just its own stragglers and return);
///  * the first exception thrown by a task of a group is captured and
///    rethrown from that group's `wait()`; remaining tasks still run
///    (analysis tasks isolate their own failures — a group-level throw is
///    an engine bug, not a degradation path).
///
/// Scheduling order is best-effort and completion order is always
/// nondeterministic; callers that need deterministic output write results
/// into pre-sized slots indexed by task and merge after `wait()` (see
/// svfa/Pipeline.cpp and tools/PinpointTool.cpp). Priority is the caller's
/// job, encoded in spawn order: the pipeline dispatches ready SCCs ordered
/// by upward rank (DESIGN.md section 14) and the pool preserves that order
/// where its discipline allows.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_THREADPOOL_H
#define PINPOINT_SUPPORT_THREADPOOL_H

#include "support/Interrupt.h"

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pinpoint {

class ThreadPool {
public:
  /// Scheduling discipline for queued tasks.
  enum class Schedule {
    Fifo, ///< One shared FIFO queue (legacy; `--schedule=fifo`).
    Steal ///< Per-worker LIFO deques with randomized stealing (default).
  };

  /// Starts \p Workers worker threads (at least one).
  explicit ThreadPool(unsigned Workers, Schedule Mode = Schedule::Steal);
  /// Joins the workers. All TaskGroups must have completed their waits.
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workers() const { return static_cast<unsigned>(Threads.size()); }
  Schedule schedule() const { return Mode; }

  /// True when the calling thread is one of this pool's workers. Spawns
  /// from a worker land on its own LIFO deque (steal mode) while external
  /// spawns queue FIFO in the inbox, so a caller ordering sibling spawns by
  /// priority needs to know which discipline will receive them.
  bool currentThreadIsWorker() const;

  /// std::thread::hardware_concurrency(), never 0.
  static unsigned hardwareConcurrency();

  /// Cancels the shutdown token and wakes every worker — the single drain
  /// path shared by destructor teardown and explicit cancellation. Workers
  /// exit at their next task boundary; queued tasks still drain through
  /// helping waits (`TaskGroup::wait`), so pending groups complete — each
  /// waiter running only its own group's tasks once the stop is pending.
  void requestStop();

  /// The token the worker loops observe. Exposed so lifecycle tests can
  /// assert the drain path; cancelling it directly is equivalent to
  /// `requestStop()` minus the wakeup (prefer `requestStop`).
  const CancelToken &shutdownToken() const { return Shutdown; }

  /// Scheduling counters, monotone over the pool's lifetime. All of them
  /// reflect nondeterministic interleaving (like the SMT acceleration
  /// counters) and are exempt from the cross-run determinism contract;
  /// they feed the `[sched]` stats line.
  struct SchedStats {
    uint64_t LocalPops = 0; ///< Owner popped its own deque (LIFO hit).
    uint64_t InboxPops = 0; ///< Popped from the shared inbox.
    uint64_t Steals = 0;    ///< Took the front of another worker's deque.
  };
  SchedStats schedStats() const;

  /// A batch of tasks that can be waited on together. Not thread-safe
  /// itself: spawn/wait from one owner thread (tasks may spawn into their
  /// own group's pool via a nested TaskGroup).
  class TaskGroup {
  public:
    explicit TaskGroup(ThreadPool &Pool) : Pool(Pool) {}
    /// Waits for stragglers; exceptions are swallowed here — call wait()
    /// explicitly to observe them.
    ~TaskGroup();
    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /// Enqueues \p Fn; never blocks. Safe to call from inside a task.
    void spawn(std::function<void()> Fn);

    /// Blocks until every task spawned into this group has finished,
    /// helping to drain queued tasks meanwhile (restricted to this group's
    /// tasks while a pool shutdown is pending). Rethrows the first
    /// exception any task of this group threw.
    void wait();

  private:
    friend class ThreadPool;
    ThreadPool &Pool;
    size_t Pending = 0;     ///< Guarded by Pool.Mu.
    std::exception_ptr Err; ///< Guarded by Pool.Mu; first failure wins.
  };

private:
  struct Task {
    std::function<void()> Fn;
    TaskGroup *Group;
  };

  /// One worker's deque. Own mutex so local pushes/pops and steals never
  /// touch the pool-wide lock; the global Mu/Cv pair is only for sleeping
  /// and for the Pending/Err ledgers.
  struct WorkerDeque {
    std::mutex Mu;
    std::deque<Task> Deque;
    // Per-worker steal counters, aggregated by schedStats(). Guarded by
    // this->Mu (bumped only by the owning worker right after a pop).
    uint64_t LocalPops = 0;
    uint64_t Steals = 0;
    uint64_t InboxPops = 0;
    uint64_t RngState = 0; ///< Victim-shuffle state; owner-thread only.
  };

  void workerLoop(size_t Index);
  void runTask(Task T);
  /// Enqueues \p T: a worker of this pool pushes the back of its own deque
  /// (steal mode); everything else goes to the shared inbox.
  void push(Task T);
  /// Dequeues any runnable task for worker \p Index: own back, inbox
  /// front, then randomized steal. Returns false when everything is empty.
  bool popForWorker(size_t Index, Task &Out);
  /// Dequeues a task for a helping waiter. When \p Only is non-null, only
  /// tasks of that group qualify (the shutdown-pending restriction).
  bool popForHelper(TaskGroup *Only, Task &Out);
  bool allQueuesEmpty();

  Schedule Mode;
  std::mutex Mu;               ///< Guards Pending/Err/Epoch; sleep lock.
  std::condition_variable Cv;
  uint64_t Epoch = 0; ///< Bumped (under Mu) after every push; wakeup token.
  mutable std::mutex InboxMu;
  std::deque<Task> Inbox; ///< External spawns and all fifo-mode tasks.
  uint64_t HelperPops = 0; ///< Inbox pops by helping waiters; guarded by InboxMu.
  std::vector<std::unique_ptr<WorkerDeque>> Deques; ///< One per worker.
  std::vector<std::thread> Threads;
  /// Worker shutdown signal. A CancelToken instead of a plain flag so
  /// teardown reuses the same cancellation primitive the rest of the
  /// lifecycle layer polls; it is still flipped under Mu (and observed
  /// under Mu in the wait predicate) to keep the no-missed-wakeup protocol.
  CancelToken Shutdown;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_THREADPOOL_H
