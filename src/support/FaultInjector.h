//===- support/FaultInjector.h - Deterministic fault injection ------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection harness for exercising the pipeline's
/// degradation paths (`--fault-inject=spec`). Faults are seeded through the
/// repo's SplitMix64 RNG so a given spec reproduces the exact same failure
/// pattern on every run and platform — degradation behaviour is testable,
/// not just observable in production.
///
/// Spec grammar: comma-separated `key=value` items.
///
///   seed=N                RNG seed for probabilistic faults (default 1)
///   solver-unknown=P      degrade each SMT backend query to Unknown with
///                         probability P percent (0-100)
///   throw-fn=NAME         throw while the global SVFA analyses NAME
///   pipeline-throw-fn=NAME  throw in NAME's per-function pipeline stage
///   throw-checker=NAME    throw at the start of checker NAME's run
///   closure-steps=N       override the value-closure step budget to N
///                         (forces walk truncation)
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_FAULTINJECTOR_H
#define PINPOINT_SUPPORT_FAULTINJECTOR_H

#include "support/RNG.h"

#include <cstdint>
#include <string>

namespace pinpoint {

class FaultInjector {
public:
  FaultInjector() : Rng(1) {}

  /// Parses \p Spec (see file comment). Returns false and fills \p Err on
  /// malformed input; the injector is left disabled in that case.
  bool parse(const std::string &Spec, std::string &Err);

  bool enabled() const { return Enabled; }

  /// True when the next SMT backend query should be degraded to Unknown.
  /// Advances the RNG stream, so calls must be 1:1 with backend queries.
  bool injectSolverUnknown() {
    return Enabled && SolverUnknownPct > 0 && Rng.chance(SolverUnknownPct, 100);
  }

  /// True when the global SVFA stage should throw while analysing \p Fn.
  bool injectFunctionThrow(const std::string &Fn) const {
    return Enabled && !ThrowFn.empty() && Fn == ThrowFn;
  }

  /// True when \p Fn's per-function pipeline stage should throw.
  bool injectPipelineThrow(const std::string &Fn) const {
    return Enabled && !PipelineThrowFn.empty() && Fn == PipelineThrowFn;
  }

  /// True when checker \p Name should throw at the start of its run.
  bool injectCheckerThrow(const std::string &Name) const {
    return Enabled && !ThrowChecker.empty() && Name == ThrowChecker;
  }

  /// Value-closure step-budget override (0 = none).
  uint64_t closureStepOverride() const { return ClosureSteps; }

private:
  bool Enabled = false;
  RNG Rng;
  uint64_t SolverUnknownPct = 0;
  uint64_t ClosureSteps = 0;
  std::string ThrowFn;
  std::string PipelineThrowFn;
  std::string ThrowChecker;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_FAULTINJECTOR_H
