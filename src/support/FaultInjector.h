//===- support/FaultInjector.h - Deterministic fault injection ------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection harness for exercising the pipeline's
/// degradation paths (`--fault-inject=spec`). Faults are seeded through the
/// repo's SplitMix64 RNG so a given spec reproduces the exact same failure
/// pattern on every run and platform — degradation behaviour is testable,
/// not just observable in production.
///
/// Spec grammar: comma-separated `key=value` items.
///
///   seed=N                RNG seed for probabilistic faults (default 1)
///   solver-unknown=P      degrade each SMT backend query to Unknown with
///                         probability P percent (0-100)
///   throw-fn=NAME         throw while the global SVFA analyses NAME
///   pipeline-throw-fn=NAME  throw in NAME's per-function pipeline stage
///   throw-checker=NAME    throw at the start of checker NAME's run
///   closure-steps=N       override the value-closure step budget to N
///                         (forces walk truncation)
///   cache-read=NAME       treat NAME's summary-cache entry as corrupt on
///                         read (exercises the fallback-to-rebuild path)
///   transient=P           fail each SMT backend *attempt* transiently with
///                         probability P percent (0-100); the staged solver
///                         retries with capped backoff (--retry-transient)
///   transient-fails=K     deterministic variant: every backend call fails
///                         its first K attempts, then succeeds (takes
///                         precedence over transient=P when both are set)
///   pace-fn-ms=N          sleep N ms at each function's pipeline entry — a
///                         deterministic throttle so interrupt tests can
///                         reliably catch a run mid-flight
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_FAULTINJECTOR_H
#define PINPOINT_SUPPORT_FAULTINJECTOR_H

#include "support/RNG.h"

#include <cstdint>
#include <mutex>
#include <string>

namespace pinpoint {

class FaultInjector {
public:
  FaultInjector() : Rng(1) {}

  // The RNG mutex would otherwise delete the implicit copies; governor
  // construction takes the injector by value, so restore them by copying
  // every field except the (stateless-by-value) lock.
  FaultInjector(const FaultInjector &O)
      : Enabled(O.Enabled), Rng(O.Rng), SolverUnknownPct(O.SolverUnknownPct),
        TransientPct(O.TransientPct), TransientFails(O.TransientFails),
        PaceFnMs(O.PaceFnMs), ClosureSteps(O.ClosureSteps), ThrowFn(O.ThrowFn),
        PipelineThrowFn(O.PipelineThrowFn), ThrowChecker(O.ThrowChecker),
        CacheReadFn(O.CacheReadFn) {}
  FaultInjector &operator=(const FaultInjector &O) {
    Enabled = O.Enabled;
    Rng = O.Rng;
    SolverUnknownPct = O.SolverUnknownPct;
    TransientPct = O.TransientPct;
    TransientFails = O.TransientFails;
    PaceFnMs = O.PaceFnMs;
    ClosureSteps = O.ClosureSteps;
    ThrowFn = O.ThrowFn;
    PipelineThrowFn = O.PipelineThrowFn;
    ThrowChecker = O.ThrowChecker;
    CacheReadFn = O.CacheReadFn;
    return *this;
  }

  /// Parses \p Spec (see file comment). Returns false and fills \p Err on
  /// malformed input; the injector is left disabled in that case.
  bool parse(const std::string &Spec, std::string &Err);

  bool enabled() const { return Enabled; }

  /// True when the next SMT backend query should be degraded to Unknown.
  /// Advances the (internally locked) RNG stream; under `--jobs N` the
  /// draw order follows query completion order, so only the degenerate
  /// rates 0 and 100 are deterministic across job counts — tests that
  /// compare parallel against serial output use exactly those.
  bool injectSolverUnknown() {
    if (!Enabled || SolverUnknownPct == 0)
      return false;
    std::lock_guard<std::mutex> L(Mu);
    return Rng.chance(SolverUnknownPct, 100);
  }

  /// True when backend attempt number \p Attempt (0-based, per call) of the
  /// current SMT discharge should fail transiently. `transient-fails=K`
  /// fails attempts 0..K-1 of every call deterministically; otherwise
  /// `transient=P` draws per attempt (probabilistic — only 0 and 100 are
  /// deterministic across job counts, like injectSolverUnknown).
  bool injectSolverTransient(int Attempt) {
    if (!Enabled)
      return false;
    if (TransientFails > 0)
      return static_cast<uint64_t>(Attempt) < TransientFails;
    if (TransientPct == 0)
      return false;
    std::lock_guard<std::mutex> L(Mu);
    return Rng.chance(TransientPct, 100);
  }

  /// Per-function pipeline pacing in ms (0 = none; interrupt-test throttle).
  uint64_t paceFunctionMs() const { return Enabled ? PaceFnMs : 0; }

  /// True when the global SVFA stage should throw while analysing \p Fn.
  bool injectFunctionThrow(const std::string &Fn) const {
    return Enabled && !ThrowFn.empty() && Fn == ThrowFn;
  }

  /// True when \p Fn's per-function pipeline stage should throw.
  bool injectPipelineThrow(const std::string &Fn) const {
    return Enabled && !PipelineThrowFn.empty() && Fn == PipelineThrowFn;
  }

  /// True when checker \p Name should throw at the start of its run.
  bool injectCheckerThrow(const std::string &Name) const {
    return Enabled && !ThrowChecker.empty() && Name == ThrowChecker;
  }

  /// True when \p Fn's summary-cache entry should read back as corrupt.
  bool injectCacheReadFault(const std::string &Fn) const {
    return Enabled && !CacheReadFn.empty() && Fn == CacheReadFn;
  }

  /// Value-closure step-budget override (0 = none).
  uint64_t closureStepOverride() const { return ClosureSteps; }

private:
  bool Enabled = false;
  std::mutex Mu; ///< Guards Rng; the other fields are immutable after parse().
  RNG Rng;
  uint64_t SolverUnknownPct = 0;
  uint64_t TransientPct = 0;
  uint64_t TransientFails = 0;
  uint64_t PaceFnMs = 0;
  uint64_t ClosureSteps = 0;
  std::string ThrowFn;
  std::string PipelineThrowFn;
  std::string ThrowChecker;
  std::string CacheReadFn;
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_FAULTINJECTOR_H
