//===- support/Arena.cpp --------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Statistics.h"

#include <algorithm>

#include <cstdlib>

namespace pinpoint {

void Arena::newSlab(size_t MinSize) {
  size_t Size = MinSlabSize << std::min<size_t>(Slabs.size(), 8);
  if (Size > MaxSlabSize)
    Size = MaxSlabSize;
  if (MinSize > Size)
    Size = MinSize;
  char *Slab = static_cast<char *>(std::malloc(Size));
  Slabs.push_back(Slab);
  Cur = reinterpret_cast<uintptr_t>(Slab);
  End = Cur + Size;
  BytesReserved += Size;
  if (Reported)
    MemStats::get().noteArenaBytes(static_cast<int64_t>(Size));
}

void Arena::reset() {
  for (auto It = Dtors.rbegin(); It != Dtors.rend(); ++It)
    It->Fn(It->Obj);
  Dtors.clear();
  for (char *Slab : Slabs)
    std::free(Slab);
  if (Reported)
    MemStats::get().noteArenaBytes(-static_cast<int64_t>(BytesReserved));
  Slabs.clear();
  Cur = End = 0;
  BytesUsed = BytesReserved = 0;
}

} // namespace pinpoint
