//===- support/SourceLoc.h - Source positions -----------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations threaded from the lexer through the IR into bug reports;
/// the evaluation harness matches reports against planted ground truth by
/// source line.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_SOURCELOC_H
#define PINPOINT_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace pinpoint {

/// A (line, column) position in a module's source text. Line 0 means unknown.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }
  bool operator==(const SourceLoc &O) const {
    return Line == O.Line && Col == O.Col;
  }

  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_SOURCELOC_H
