//===- support/RunJournal.cpp ----------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/RunJournal.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace pinpoint {

namespace {

std::string toHex(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

bool fromHex(const std::string &S, uint64_t &Out) {
  if (S.empty() || S.size() > 16)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    int D;
    if (C >= '0' && C <= '9')
      D = C - '0';
    else if (C >= 'a' && C <= 'f')
      D = C - 'a' + 10;
    else
      return false;
    V = (V << 4) | static_cast<uint64_t>(D);
  }
  Out = V;
  return true;
}

} // namespace

std::string RunJournal::path(const std::string &Dir) {
  return (std::filesystem::path(Dir) / "run-journal").string();
}

bool RunJournal::load(const std::string &Dir) {
  *this = RunJournal();
  std::ifstream In(path(Dir));
  if (!In)
    return false;

  std::string Line;
  if (!std::getline(In, Line))
    return false;
  std::istringstream Header(Line);
  std::string Magic, FpHex;
  uint32_t Version = 0;
  if (!(Header >> Magic >> Version >> FpHex) || Magic != "PPRJ" ||
      Version != FormatVersion || !fromHex(FpHex, SubjectFingerprint)) {
    *this = RunJournal();
    return false;
  }

  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::istringstream LS(Line);
    std::string KeyHex, Status;
    Entry E;
    if (!(LS >> KeyHex >> Status) || !fromHex(KeyHex, E.Key) ||
        (Status != "completed" && Status != "degraded")) {
      *this = RunJournal();
      return false;
    }
    E.Completed = Status == "completed";
    SCCs.push_back(E);
  }
  return true;
}

bool RunJournal::store(const std::string &Dir) const {
  std::string Final = path(Dir);
  std::string Tmp = Final + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out)
      return false;
    Out << "PPRJ " << FormatVersion << " " << toHex(SubjectFingerprint)
        << "\n";
    for (const Entry &E : SCCs)
      Out << toHex(E.Key) << " " << (E.Completed ? "completed" : "degraded")
          << "\n";
    if (!Out)
      return false;
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Final, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  return true;
}

} // namespace pinpoint
