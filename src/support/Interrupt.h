//===- support/Interrupt.h - Cooperative cancellation ----------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cancellation half of the run-lifecycle resilience layer (DESIGN.md
/// section 12). A `CancelToken` is a lock-free flag that long-running stages
/// poll at task boundaries: the pipeline's SCC tasks, the global SVFA's
/// per-function loop, every chunked SMT discharge loop and the checker
/// fan-out all check it and unwind cleanly — results computed so far are
/// kept, remaining work degrades exactly like a budget hit, and the driver
/// can still flush a partial report, stats, the degradation log and every
/// completed-SCC cache entry.
///
/// `installSignalHandlers` wires `SIGINT`/`SIGTERM` to the process-wide
/// token. The handler body is async-signal-safe: it stores into two
/// lock-free atomics and nothing else; everything that allocates, locks or
/// prints happens later on the polling threads.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SUPPORT_INTERRUPT_H
#define PINPOINT_SUPPORT_INTERRUPT_H

#include <atomic>

namespace pinpoint {

/// A one-way cooperative cancellation flag. `cancel()` may be called from
/// any thread — or, for the process-wide instance, from a signal handler —
/// and is observed by polling `cancelled()`. Once set it stays set until
/// `reset()` (tests only; production runs exit instead).
class CancelToken {
public:
  constexpr CancelToken() = default;
  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  void cancel() noexcept { Flag.store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return Flag.load(std::memory_order_acquire);
  }
  void reset() noexcept { Flag.store(false, std::memory_order_release); }

private:
  std::atomic<bool> Flag{false};
};

namespace interrupt {

/// The process-wide token `SIGINT`/`SIGTERM` cancel. Stages never reach for
/// this directly — the driver hands it to the `ResourceGovernor`, keeping
/// library-level runs free to use their own tokens.
CancelToken &processToken();

/// Installs `SIGINT` and `SIGTERM` handlers that cancel `processToken()`.
/// Returns false if installation failed (the run proceeds uninterruptible).
bool installSignalHandlers();

/// The signal number that cancelled `processToken()`, or 0 if none did.
int lastSignal();

/// Clears the process token and the recorded signal (tests only).
void resetForTesting();

} // namespace interrupt

} // namespace pinpoint

#endif // PINPOINT_SUPPORT_INTERRUPT_H
