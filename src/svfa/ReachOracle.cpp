//===- svfa/ReachOracle.cpp ---------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "svfa/ReachOracle.h"
#include "support/Statistics.h"

using namespace pinpoint::ir;

namespace pinpoint::svfa {

ReachOracle::ReachOracle(const Function &F) : F(F) {}

void ReachOracle::ensureBuilt() {
  if (Built)
    return;
  Built = true;
  Counters::get().add("svfa.reach-oracles-built", 1);
  const std::vector<BasicBlock *> &Blocks = F.blocks();
  const size_t NumBlocks = Blocks.size();
  Words = (NumBlocks + 63) / 64;
  Index.reserve(NumBlocks);
  for (size_t I = 0; I < NumBlocks; ++I)
    Index.emplace(Blocks[I], static_cast<uint32_t>(I));
  RowBuilt.assign(NumBlocks, 0);
  Rows.resize(NumBlocks);

  // Iterative Tarjan over block indices; component ids are completion
  // order, which gives the topological invariant reaches() prunes with.
  Comp.assign(NumBlocks, UINT32_MAX);
  std::vector<uint32_t> Idx(NumBlocks, UINT32_MAX), Low(NumBlocks, 0);
  std::vector<uint8_t> OnStack(NumBlocks, 0);
  std::vector<uint32_t> Stack;
  uint32_t NextIdx = 0, NextComp = 0;

  struct Frame {
    uint32_t Node;
    size_t SuccPos;
  };
  std::vector<Frame> Call;
  for (uint32_t Root = 0; Root < NumBlocks; ++Root) {
    if (Idx[Root] != UINT32_MAX)
      continue;
    Call.push_back({Root, 0});
    while (!Call.empty()) {
      // Re-fetch per iteration: Call may reallocate on the push below.
      uint32_t U = Call.back().Node;
      if (Call.back().SuccPos == 0) {
        Idx[U] = Low[U] = NextIdx++;
        Stack.push_back(U);
        OnStack[U] = 1;
      }
      const std::vector<BasicBlock *> &Succs = Blocks[U]->succs();
      bool Descended = false;
      while (Call.back().SuccPos < Succs.size()) {
        uint32_t V = Index.at(Succs[Call.back().SuccPos]);
        ++Call.back().SuccPos;
        if (Idx[V] == UINT32_MAX) {
          Call.push_back({V, 0});
          Descended = true;
          break;
        }
        if (OnStack[V] && Idx[V] < Low[U])
          Low[U] = Idx[V];
      }
      if (Descended)
        continue;
      // U finished: pop its component if it is a root.
      if (Low[U] == Idx[U]) {
        for (;;) {
          uint32_t W = Stack.back();
          Stack.pop_back();
          OnStack[W] = 0;
          Comp[W] = NextComp;
          if (W == U)
            break;
        }
        ++NextComp;
      }
      Call.pop_back();
      if (!Call.empty()) {
        uint32_t Parent = Call.back().Node;
        if (Low[U] < Low[Parent])
          Low[Parent] = Low[U];
      }
    }
  }
}

void ReachOracle::buildRow(uint32_t Row) {
  RowBuilt[Row] = 1;
  Counters::get().add("svfa.lazy-reach-rows", 1);
  const std::vector<BasicBlock *> &Blocks = F.blocks();
  Rows[Row].assign(Words, 0);
  uint64_t *R = Rows[Row].data();
  // Per-row DFS; the row doubles as the visited set (loops are fine: a set
  // bit is never pushed again).
  std::vector<uint32_t> Work;
  for (const BasicBlock *Succ : Blocks[Row]->succs())
    Work.push_back(Index.at(Succ));
  while (!Work.empty()) {
    uint32_t Cur = Work.back();
    Work.pop_back();
    uint64_t &W = R[Cur >> 6];
    const uint64_t Bit = uint64_t(1) << (Cur & 63);
    if (W & Bit)
      continue;
    W |= Bit;
    for (const BasicBlock *Succ : Blocks[Cur]->succs())
      Work.push_back(Index.at(Succ));
  }
}

bool ReachOracle::reaches(const Stmt *A, const Stmt *B) {
  if (A == B)
    return false;
  if (A->parent() == B->parent())
    return F.stmtOrder(A) < F.stmtOrder(B);
  ensureBuilt();
  const uint32_t From = Index.at(A->parent()), To = Index.at(B->parent());
  // Completion-order ids: a path to a different component only ever
  // reaches smaller ids, so a larger target id is unreachable O(1); a
  // shared component of two distinct blocks is cyclic, hence mutually
  // reachable.
  if (Comp[To] > Comp[From])
    return false;
  if (Comp[To] == Comp[From])
    return true;
  if (!RowBuilt[From])
    buildRow(From);
  return (Rows[From][To >> 6] >> (To & 63)) & 1;
}

} // namespace pinpoint::svfa
