//===- svfa/Demand.h - Checker-driven relevance pre-pass ------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demand-driven relevance pre-pass (`--demand`). Before any summary is
/// built, the call graph is walked from the enabled checkers' source *and*
/// sink sites to mark the set of functions the analysis can possibly need.
/// Per checker c:
///
///   Core_c = callers*( Src_c ) ∩ callers*( Snk_c )
///   R_c    = callees*( Core_c )
///
/// where `Src_c` is every function containing a syntactic source site and
/// `Snk_c` every function containing a syntactic sink site. The caller
/// closures cover every function that can *surface* a source event or sink
/// use (VF2/VF3 summaries propagate events up the call chain, VF4 surfaces
/// sink uses): a candidate can only materialise in a function that lies in
/// both caller cones, so their intersection bounds where reports form. The
/// callee closure is applied *after* intersecting — this is a deliberate
/// strengthening of the naive `callees*(callers*(Src)) ∩
/// callers*(callees*(Snk))` formula, which is not callee-closed and would
/// let an analyzed function miss callee interfaces the exhaustive run saw.
/// Closing the intersected core under callees guarantees byte-identical
/// reports and degradation logs vs `--demand=off`.
///
/// Checkers without syntactic sinks (deref sinks: use-after-free,
/// null-deref; the leak checker's implicit exhaustion sink) conservatively
/// fall back to the source-only cone `R_c = callees*(callers*(Src_c))`.
/// The pre-pass result is the union `R = ∪_c R_c` — the pipeline analyzes
/// the union once and each engine run consumes its own checker's slice.
///
/// R is closed under SCC membership by construction (members of one SCC are
/// mutually reachable through calls), so the per-SCC pipeline schedule
/// never splits a condensation node.
///
/// With `--cache-dir`, the computed artifact is persisted into a versioned,
/// checksummed `relevance` entry keyed on the subject fingerprint and a
/// spec key, so warm runs replay the sets without re-walking the module
/// (`demand.relevance-{stored,replayed,stale}` counters).
///
/// Since v3 the entry also carries a per-function record section: each
/// function's seed membership (source/sink/deref/leak bits per checker) and
/// its outgoing call-edge list, keyed on that function's post-SSA
/// fingerprint. An edit no longer throws the whole pre-pass away — a warm
/// run diffs fingerprints, re-scans only the dirty functions, reuses every
/// clean function's seeds and edges, and recomputes the cones from the
/// merged seed table (`refreshRelevanceArtifact`, DESIGN.md section 15).
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SVFA_DEMAND_H
#define PINPOINT_SVFA_DEMAND_H

#include "checkers/Checker.h"
#include "ir/CallGraph.h"

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace pinpoint::svfa {

/// What the relevance pre-pass must consider a source. One spec covers the
/// union of every checker the run will evaluate: the pipeline analyzes the
/// union-relevant set once and each engine run consumes the subset its own
/// checker needs.
struct DemandSpec {
  std::vector<checkers::CheckerSpec> Checkers;
  /// The leak checker has no CheckerSpec: its sources are malloc calls
  /// with a receiver (see checkers/SpecialCheckers.h). Its sink (heap
  /// exhaustion) is non-syntactic, so it always uses the source-only cone.
  bool LeakSources = false;
  /// Ablation knob: when false, sink sites are ignored and every checker
  /// gets the source-only cone (the pre-PR-8 behavior). When true,
  /// syntactic-sink checkers seed their sink cones at SinkArgFns call
  /// sites and deref-sink checkers at deref hosts (hasDerefSite).
  bool UseSinkCones = true;
};

/// The computed relevant-function set.
struct RelevanceSet {
  /// True = demand off / not computed: everything is relevant.
  bool All = true;
  std::unordered_set<const ir::Function *> Fns;
  /// Functions that directly contain a source site (diagnostics only).
  size_t SourceFns = 0;
  /// Functions that directly contain a sink seed of a sink-sliced checker
  /// — a syntactic sink call site, or a deref host for DerefIsSink
  /// checkers (diagnostics only; 0 when every checker used the
  /// source-only cone).
  size_t SinkFns = 0;

  bool relevant(const ir::Function *F) const { return All || Fns.count(F); }
};

/// One function's persisted pre-pass facts, keyed on its post-SSA
/// fingerprint. A warm run reuses the seed bits and call edges verbatim
/// while the fingerprint still matches, so only edited functions pay a
/// statement scan.
struct FunctionRecord {
  uint64_t FP = 0;
  /// Bit 0: leak source (malloc with receiver). Bit 1: deref host (seed of
  /// every DerefIsSink checker's sink cone). Scanned only when the spec
  /// needs them; the spec key guards reuse, so the convention is stable.
  uint8_t Flags = 0;
  /// Parallel to RelevanceRecords::Checkers. Bit 0: contains a source site
  /// of that checker. Bit 1: contains a syntactic sink site.
  std::vector<uint8_t> SeedBits;
  /// Sorted names of resolved callees (the live call-graph edge list).
  std::vector<std::string> Callees;

  static constexpr uint8_t LeakSrcFlag = 1;
  static constexpr uint8_t DerefHostFlag = 2;
};

/// The per-function record table the v3 `relevance` entry persists beside
/// the union sets. `Checkers` is the sorted CheckerSpec name list the seed
/// bits index into (the leak pseudo-checker lives in FunctionRecord::Flags).
struct RelevanceRecords {
  std::vector<std::string> Checkers;
  std::map<std::string, FunctionRecord> Fns;
};

/// The full pre-pass result: the union set the pipeline analyzes plus the
/// per-checker slices the engines consume. This is what the `relevance`
/// cache entry round-trips.
struct RelevanceArtifact {
  RelevanceSet Union;
  /// Keyed by CheckerSpec::Name. Each entry is All=false.
  std::map<std::string, RelevanceSet> PerChecker;
  /// The per-function seed/edge table backing warm-run refresh.
  RelevanceRecords Records;
};

/// Walks \p CG from the source/sink sites described by \p Spec and returns
/// the bidirectional relevant set (All = false).
RelevanceSet computeRelevance(const ir::CallGraph &CG, ir::Module &M,
                              const DemandSpec &Spec);

/// As computeRelevance, but also returns the per-checker slices and the
/// per-function records. \p FnFP, when non-null, supplies precomputed
/// post-SSA fingerprints (the pipeline computes them once for SCC keys);
/// otherwise fingerprints are taken here.
RelevanceArtifact computeRelevanceArtifact(
    const ir::CallGraph &CG, ir::Module &M, const DemandSpec &Spec,
    const std::unordered_map<const ir::Function *, uint64_t> *FnFP = nullptr);

//===----------------------------------------------------------------------===
// Edit-localised refresh (DESIGN.md section 15)
//===----------------------------------------------------------------------===

/// How a warm run reacts to a stale-subject relevance entry whose spec key
/// still matches (--relevance-refresh). Purely a performance policy: every
/// mode yields a byte-identical artifact.
enum class RelevanceRefreshMode {
  Auto,  ///< Local while the dirty fraction stays under the threshold.
  Full,  ///< Always rerun the full pre-pass (the pre-v3 behaviour).
  Local, ///< Always take the dirty-cone path, whatever the dirty fraction.
};

/// What a refresh did, for the [demand] stats line and the scheduling hint.
struct RelevanceRefreshStats {
  /// Functions whose fingerprint changed or that are new in this module.
  std::unordered_set<const ir::Function *> Dirty;
  size_t DirtyFns = 0;
  /// Functions whose statements were actually re-scanned for seeds — the
  /// dirty set on the local path, the whole module on the full fallback.
  size_t ScannedFns = 0;
  /// Call edges carried over from clean functions' records.
  size_t EdgesReused = 0;
  /// True when the dirty-cone path ran (false = full fallback).
  bool Local = false;
  /// True when the diff proved the seed table and edge list unchanged and
  /// the previous closure results were adopted without recomputation.
  bool ClosureReused = false;
};

/// A persisted entry parsed but not resolved against any module: the record
/// table plus the stored result sets as sorted name lists. This is what a
/// stale-subject load surfaces for refresh — stored names may no longer
/// resolve in the edited module, so resolution is deferred.
struct StoredRelevance {
  struct NamedSet {
    uint64_t SourceFns = 0, SinkFns = 0;
    std::vector<std::string> Names;
  };
  NamedSet Union;
  std::vector<std::pair<std::string, NamedSet>> PerChecker;
  RelevanceRecords Records;
};

/// Rebuilds the artifact for the *current* module from a previous run's
/// persisted entry: functions whose fingerprint still matches reuse their
/// persisted seed bits and call edges, dirty functions are re-scanned, and
/// the callers*/callees* cones are recomputed over the live call graph from
/// the merged seed table — or adopted wholesale from the stored sets when
/// the diff shows no seed or edge delta at all. Falls back to the full
/// pre-pass when \p Mode says so or (Auto) the dirty fraction exceeds the
/// threshold.
RelevanceArtifact refreshRelevanceArtifact(
    const ir::CallGraph &CG, ir::Module &M, const DemandSpec &Spec,
    const StoredRelevance &Prev,
    const std::unordered_map<const ir::Function *, uint64_t> &FnFP,
    RelevanceRefreshMode Mode, RelevanceRefreshStats &Stats);

//===----------------------------------------------------------------------===
// Persistence (the `relevance` cache entry)
//===----------------------------------------------------------------------===

enum class RelevanceLoadStatus {
  Missing, ///< No entry on disk.
  Corrupt, ///< Unreadable: bad magic/version/checksum/payload.
  Stale,   ///< Well-formed, but for a different subject or demand spec.
  Ok,      ///< Replayed.
};

/// Deterministic key over everything that shapes the pre-pass result apart
/// from the subject itself: every checker spec field plus the leak and
/// sink-cone knobs. A persisted artifact is only replayed when both the
/// subject fingerprint and this key match.
uint64_t relevanceSpecKey(const DemandSpec &Spec);

/// Loads the `relevance` entry from cache directory \p Dir. On Ok, \p Out
/// holds the replayed artifact with function pointers resolved against
/// \p M; any name that no longer resolves makes the entry Corrupt.
RelevanceLoadStatus loadRelevance(const std::string &Dir, uint64_t SubjectFP,
                                  uint64_t SpecKey, const ir::Module &M,
                                  RelevanceArtifact &Out);

/// Extended load for the warm-refresh path.
struct RelevanceLoadResult {
  RelevanceLoadStatus Status = RelevanceLoadStatus::Missing;
  /// Resolved artifact; filled only when Status == Ok.
  RelevanceArtifact Artifact;
  /// The unresolved entry; filled when StoredUsable.
  StoredRelevance Stored;
  /// True for a Stale entry whose spec key matches and whose payload parsed
  /// (subject fingerprint differs): `Stored` can seed a localized refresh.
  /// Version- or spec-mismatched entries are never usable — their seed-bit
  /// layout belongs to another format or checker set.
  bool StoredUsable = false;
};

RelevanceLoadResult loadRelevanceEx(const std::string &Dir, uint64_t SubjectFP,
                                    uint64_t SpecKey, const ir::Module &M);

/// Atomically (tmp + rename) stores \p A as the `relevance` entry in \p Dir.
/// Returns false on I/O failure.
bool storeRelevance(const std::string &Dir, uint64_t SubjectFP,
                    uint64_t SpecKey, const RelevanceArtifact &A);

} // namespace pinpoint::svfa

#endif // PINPOINT_SVFA_DEMAND_H
