//===- svfa/Demand.h - Checker-driven relevance pre-pass ------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demand-driven relevance pre-pass (`--demand`). Before any summary is
/// built, the call graph is walked from the enabled checkers' source sites
/// to mark the set of functions the analysis can possibly need:
///
///   R = callees*( callers*( Src ) )
///
/// where `Src` is every function containing a syntactic source site. The
/// caller closure covers every function that can *surface* a source event
/// (VF2/VF3 summaries propagate events up the call chain); the callee
/// closure then guarantees that every analyzed function sees exactly the
/// callee interfaces and summaries the exhaustive analysis saw — which is
/// what makes reports, stats and degradation logs byte-identical to
/// `--demand=off`. Functions outside R get no points-to pass, no SEG and no
/// value-flow summaries, and neither probe nor populate the summary cache.
///
/// R is closed under SCC membership by construction (members of one SCC are
/// mutually reachable through calls), so the per-SCC pipeline schedule
/// never splits a condensation node.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SVFA_DEMAND_H
#define PINPOINT_SVFA_DEMAND_H

#include "checkers/Checker.h"
#include "ir/CallGraph.h"

#include <unordered_set>
#include <vector>

namespace pinpoint::svfa {

/// What the relevance pre-pass must consider a source. One spec covers the
/// union of every checker the run will evaluate: the pipeline analyzes the
/// union-relevant set once and each engine run consumes the subset its own
/// checker needs.
struct DemandSpec {
  std::vector<checkers::CheckerSpec> Checkers;
  /// The leak checker has no CheckerSpec: its sources are malloc calls
  /// with a receiver (see checkers/SpecialCheckers.h).
  bool LeakSources = false;
};

/// The computed relevant-function set.
struct RelevanceSet {
  /// True = demand off / not computed: everything is relevant.
  bool All = true;
  std::unordered_set<const ir::Function *> Fns;
  /// Functions that directly contain a source site (diagnostics only).
  size_t SourceFns = 0;

  bool relevant(const ir::Function *F) const { return All || Fns.count(F); }
};

/// Walks \p CG from the source sites described by \p Spec and returns the
/// backward/forward-relevant set (All = false).
RelevanceSet computeRelevance(const ir::CallGraph &CG, ir::Module &M,
                              const DemandSpec &Spec);

} // namespace pinpoint::svfa

#endif // PINPOINT_SVFA_DEMAND_H
