//===- svfa/Demand.h - Checker-driven relevance pre-pass ------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demand-driven relevance pre-pass (`--demand`). Before any summary is
/// built, the call graph is walked from the enabled checkers' source *and*
/// sink sites to mark the set of functions the analysis can possibly need.
/// Per checker c:
///
///   Core_c = callers*( Src_c ) ∩ callers*( Snk_c )
///   R_c    = callees*( Core_c )
///
/// where `Src_c` is every function containing a syntactic source site and
/// `Snk_c` every function containing a syntactic sink site. The caller
/// closures cover every function that can *surface* a source event or sink
/// use (VF2/VF3 summaries propagate events up the call chain, VF4 surfaces
/// sink uses): a candidate can only materialise in a function that lies in
/// both caller cones, so their intersection bounds where reports form. The
/// callee closure is applied *after* intersecting — this is a deliberate
/// strengthening of the naive `callees*(callers*(Src)) ∩
/// callers*(callees*(Snk))` formula, which is not callee-closed and would
/// let an analyzed function miss callee interfaces the exhaustive run saw.
/// Closing the intersected core under callees guarantees byte-identical
/// reports and degradation logs vs `--demand=off`.
///
/// Checkers without syntactic sinks (deref sinks: use-after-free,
/// null-deref; the leak checker's implicit exhaustion sink) conservatively
/// fall back to the source-only cone `R_c = callees*(callers*(Src_c))`.
/// The pre-pass result is the union `R = ∪_c R_c` — the pipeline analyzes
/// the union once and each engine run consumes its own checker's slice.
///
/// R is closed under SCC membership by construction (members of one SCC are
/// mutually reachable through calls), so the per-SCC pipeline schedule
/// never splits a condensation node.
///
/// With `--cache-dir`, the computed artifact is persisted into a versioned,
/// checksummed `relevance` entry keyed on the subject fingerprint and a
/// spec key, so warm runs replay the sets without re-walking the module
/// (`demand.relevance-{stored,replayed,stale}` counters).
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SVFA_DEMAND_H
#define PINPOINT_SVFA_DEMAND_H

#include "checkers/Checker.h"
#include "ir/CallGraph.h"

#include <map>
#include <string>
#include <unordered_set>
#include <vector>

namespace pinpoint::svfa {

/// What the relevance pre-pass must consider a source. One spec covers the
/// union of every checker the run will evaluate: the pipeline analyzes the
/// union-relevant set once and each engine run consumes the subset its own
/// checker needs.
struct DemandSpec {
  std::vector<checkers::CheckerSpec> Checkers;
  /// The leak checker has no CheckerSpec: its sources are malloc calls
  /// with a receiver (see checkers/SpecialCheckers.h). Its sink (heap
  /// exhaustion) is non-syntactic, so it always uses the source-only cone.
  bool LeakSources = false;
  /// Ablation knob: when false, sink sites are ignored and every checker
  /// gets the source-only cone (the pre-PR-8 behavior). When true,
  /// syntactic-sink checkers seed their sink cones at SinkArgFns call
  /// sites and deref-sink checkers at deref hosts (hasDerefSite).
  bool UseSinkCones = true;
};

/// The computed relevant-function set.
struct RelevanceSet {
  /// True = demand off / not computed: everything is relevant.
  bool All = true;
  std::unordered_set<const ir::Function *> Fns;
  /// Functions that directly contain a source site (diagnostics only).
  size_t SourceFns = 0;
  /// Functions that directly contain a sink seed of a sink-sliced checker
  /// — a syntactic sink call site, or a deref host for DerefIsSink
  /// checkers (diagnostics only; 0 when every checker used the
  /// source-only cone).
  size_t SinkFns = 0;

  bool relevant(const ir::Function *F) const { return All || Fns.count(F); }
};

/// The full pre-pass result: the union set the pipeline analyzes plus the
/// per-checker slices the engines consume. This is what the `relevance`
/// cache entry round-trips.
struct RelevanceArtifact {
  RelevanceSet Union;
  /// Keyed by CheckerSpec::Name. Each entry is All=false.
  std::map<std::string, RelevanceSet> PerChecker;
};

/// Walks \p CG from the source/sink sites described by \p Spec and returns
/// the bidirectional relevant set (All = false).
RelevanceSet computeRelevance(const ir::CallGraph &CG, ir::Module &M,
                              const DemandSpec &Spec);

/// As computeRelevance, but also returns the per-checker slices.
RelevanceArtifact computeRelevanceArtifact(const ir::CallGraph &CG,
                                           ir::Module &M,
                                           const DemandSpec &Spec);

//===----------------------------------------------------------------------===
// Persistence (the `relevance` cache entry)
//===----------------------------------------------------------------------===

enum class RelevanceLoadStatus {
  Missing, ///< No entry on disk.
  Corrupt, ///< Unreadable: bad magic/version/checksum/payload.
  Stale,   ///< Well-formed, but for a different subject or demand spec.
  Ok,      ///< Replayed.
};

/// Deterministic key over everything that shapes the pre-pass result apart
/// from the subject itself: every checker spec field plus the leak and
/// sink-cone knobs. A persisted artifact is only replayed when both the
/// subject fingerprint and this key match.
uint64_t relevanceSpecKey(const DemandSpec &Spec);

/// Loads the `relevance` entry from cache directory \p Dir. On Ok, \p Out
/// holds the replayed artifact with function pointers resolved against
/// \p M; any name that no longer resolves makes the entry Corrupt.
RelevanceLoadStatus loadRelevance(const std::string &Dir, uint64_t SubjectFP,
                                  uint64_t SpecKey, const ir::Module &M,
                                  RelevanceArtifact &Out);

/// Atomically (tmp + rename) stores \p A as the `relevance` entry in \p Dir.
/// Returns false on I/O failure.
bool storeRelevance(const std::string &Dir, uint64_t SubjectFP,
                    uint64_t SpecKey, const RelevanceArtifact &A);

} // namespace pinpoint::svfa

#endif // PINPOINT_SVFA_DEMAND_H
