//===- svfa/Context.h - Calling contexts & constraint instantiation -------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cloning-based context sensitivity (paper Section 3.3.1(2)): when a
/// callee's constraints are used at a call site they are α-renamed into a
/// fresh variable space per calling context, with the callee's formal
/// parameters mapped to the caller-side symbols of the actual arguments —
/// exactly the bold "constraints from the callee" parts of Equations (2)
/// and (3).
///
/// Contexts form an interned chain of call sites, bounded by the engine's
/// depth limit (six nested calls in the paper's evaluation).
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SVFA_CONTEXT_H
#define PINPOINT_SVFA_CONTEXT_H

#include "ir/Conditions.h"
#include "ir/IR.h"
#include "smt/Expr.h"

#include <map>
#include <vector>

namespace pinpoint::svfa {

/// A calling context: a chain of call sites. The null context is the
/// top level (the function currently being analysed).
struct Context {
  const Context *Parent = nullptr;
  const ir::CallStmt *Site = nullptr;
  int Depth = 0;
  uint32_t Id = 0;
};

/// Interns contexts and instantiates callee expressions into caller ones.
class ContextTable {
public:
  ContextTable(smt::ExprContext &Ctx, ir::SymbolMap &Syms)
      : Ctx(Ctx), Syms(Syms) {}

  /// The top-level (identity) context.
  const Context *top() { return nullptr; }

  /// Extends \p Parent with \p Site.
  const Context *push(const Context *Parent, const ir::CallStmt *Site);

  static int depth(const Context *C) { return C ? C->Depth : 0; }

  /// Rewrites \p E (an expression over the callee's symbols) into \p C:
  /// callee formal parameters become the caller-side symbols of the actual
  /// arguments (themselves instantiated into the parent context); all other
  /// variables get fresh clones, cached per (context, variable).
  /// \p Callee is the function the expression belongs to.
  const smt::Expr *instantiate(const smt::Expr *E, const ir::Function *Callee,
                               const Context *C);

  /// The symbol of \p V as seen under context \p C (clone or actual-param
  /// mapping applied). For the top context this is just the symbol.
  const smt::Expr *symbolIn(const ir::Value *V, const ir::Function *Owner,
                            const Context *C);

  size_t numContexts() const { return Contexts.size(); }

private:
  const smt::Expr *mappedVar(uint32_t SymVarId, const ir::Function *Callee,
                             const Context *C);

  smt::ExprContext &Ctx;
  ir::SymbolMap &Syms;
  std::map<std::pair<const Context *, const ir::CallStmt *>,
           std::unique_ptr<Context>>
      Interned;
  std::vector<Context *> Contexts;
  /// Clone cache: (context, symbolic var id) -> replacement expression.
  std::map<std::pair<const Context *, uint32_t>, const smt::Expr *> Clones;
  uint32_t NextId = 1;
};

} // namespace pinpoint::svfa

#endif // PINPOINT_SVFA_CONTEXT_H
