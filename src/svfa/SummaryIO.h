//===- svfa/SummaryIO.h - Pipeline artifacts ⇄ cache payloads -------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialises one function's per-function pipeline artifacts for the
/// persistent summary cache, and replays them on a cache hit. What is
/// stored is exactly the pipeline state the two points-to passes produce
/// and everything downstream consumes:
///
///  * the connector interface as (parameter index, level) access paths —
///    replayed through the same `applyInterfaceTransform`, so the function
///    IR after a hit is bit-identical to a from-scratch build;
///  * the per-load data dependences (the SEG's only points-to input):
///    value + condition per entry, with conditions stored as a
///    topologically-ordered expression-node table whose variables are
///    references to IR variables (symbolic ids are allocation-order
///    dependent and never serialised);
///  * the deterministic degradation facts (points-to truncation), replayed
///    into the governor log so a warm run's log matches a cold run's.
///
/// Decoding is split in two: `decodeFunctionSummary` +
/// `validateSummary` are pure (the function IR is untouched, so any
/// failure falls back to a clean full rebuild), while
/// `replayFunctionSummary` mutates the function and throws on residual
/// mismatches — the pipeline's per-function isolation catch turns that into
/// the standard conservative fallback.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SVFA_SUMMARYIO_H
#define PINPOINT_SVFA_SUMMARYIO_H

#include "ir/Conditions.h"
#include "ir/IR.h"
#include "pta/PointsTo.h"
#include "svfa/Pipeline.h"
#include "transform/Connectors.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pinpoint::svfa {

/// A decoded cache payload: structurally validated, not yet resolved
/// against live IR.
struct FunctionSummaryEntry {
  /// Replay a PTATruncated degradation note (a deterministic consequence of
  /// the configured step budget, so it is cacheable).
  bool NoteTruncated = false;
  /// The reconstituted result's truncated() flag.
  bool ResultTruncated = false;

  /// Access paths as (original parameter index, deref level).
  std::vector<std::pair<uint32_t, uint32_t>> RefPaths, ModPaths;

  /// Loads in the fully-transformed function, for replay validation.
  uint32_t NumLoads = 0;

  struct ExprNode {
    uint8_t Kind; ///< smt::ExprKind.
    uint32_t VarId = 0;  ///< BoolVar/IntVar: function-local IR variable id.
    std::string VarName; ///< BoolVar/IntVar: IR variable name (validation).
    int64_t Const = 0;   ///< IntConst.
    std::vector<uint32_t> Ops; ///< Operand node indices (strictly smaller).
  };
  std::vector<ExprNode> Nodes;

  struct DepVal {
    uint8_t Tag; ///< 1=variable, 2=int const, 3=bool const, 4=null const.
    uint32_t VarId = 0;
    std::string VarName;
    int64_t IntVal = 0;
    uint8_t PtrDepth = 0;
    uint32_t CondIdx = 0; ///< Index into Nodes.
  };
  struct LoadEntry {
    uint32_t LoadIdx; ///< Position in block-order load enumeration.
    std::vector<DepVal> Vals;
  };
  std::vector<LoadEntry> Loads;
};

/// Encodes \p Info's artifacts (the function must be fully transformed).
/// Returns false when the artifacts are not representable — e.g. a load-dep
/// condition mentions a symbolic variable with no IR backing — in which
/// case the function is simply not cached.
bool encodeFunctionSummary(const ir::Function &F, const AnalyzedFunction &Info,
                           ir::SymbolMap &Syms, bool NoteTruncated,
                           std::vector<uint8_t> &Out);

/// Decodes \p Payload. Returns false (with \p Err) on malformed bytes.
bool decodeFunctionSummary(const std::vector<uint8_t> &Payload,
                           FunctionSummaryEntry &Out, std::string &Err);

/// Pure structural validation against the *untransformed* \p F: path
/// indices name original parameters with sufficient pointer depth, node
/// kinds and arities are sound, operand references are topological.
/// Returns false (with \p Err) when the entry cannot be replayed; \p F is
/// never touched.
bool validateSummary(const FunctionSummaryEntry &E, const ir::Function &F,
                     std::string &Err);

/// Replays \p E onto \p F (call-site rewriting must already have run):
/// applies the interface transform, rebuilds the load-dependence conditions
/// and reconstitutes the points-to result. Throws std::runtime_error on a
/// residual mismatch (stale-but-key-matching entry, i.e. a hash collision).
void replayFunctionSummary(ir::Function &F, const FunctionSummaryEntry &E,
                           ir::SymbolMap &Syms,
                           transform::FunctionInterface &InterfaceOut,
                           pta::PointsToResult &PTAOut);

} // namespace pinpoint::svfa

#endif // PINPOINT_SVFA_SUMMARYIO_H
