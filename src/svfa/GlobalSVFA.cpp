//===- svfa/GlobalSVFA.cpp ----------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "svfa/GlobalSVFA.h"

#include "support/Arena.h"
#include "support/ResourceGovernor.h"
#include "support/Span.h"
#include "support/ThreadPool.h"
#include "svfa/Demand.h"
#include "svfa/ReachOracle.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <unordered_map>

using namespace pinpoint::ir;

namespace pinpoint::svfa {

namespace {

/// A variable whose DD closure must be expanded (in a context) when the
/// final constraint is assembled.
struct VarRef {
  const Function *Fn;
  const Variable *V;
  const Context *Ctx;
  bool operator<(const VarRef &O) const {
    return std::tie(Fn, V, Ctx) < std::tie(O.Fn, O.V, O.Ctx);
  }
};

/// A call receiver whose RV summary (Equation 2) must be expanded.
struct RecvRef {
  const Function *Fn; ///< Function containing the call.
  const CallStmt *Call;
  int BundleIdx; ///< -1 primary, >=0 aux index.
  const Context *Ctx;
  bool operator<(const RecvRef &O) const {
    return std::tie(Fn, Call, BundleIdx, Ctx) <
           std::tie(O.Fn, O.Call, O.BundleIdx, O.Ctx);
  }
};

/// A condition with its unexpanded support and provenance.
struct CondBundle {
  const smt::Expr *C = nullptr;
  std::vector<VarRef> Vars;
  std::vector<RecvRef> Recvs;
  int Depth = 0;
  std::vector<std::string> Path;
};

/// One VF summary entry (paper Section 3.3.2), in the owning function's
/// symbol space (context refs relative to it).
struct VFEntry {
  const Variable *Param = nullptr; ///< VF1/VF3/VF4.
  int BundleIdx = -1;              ///< VF1 target / VF2 origin bundle index.
  CondBundle B;
  SourceLoc Loc;     ///< Source (VF2/VF3) or sink (VF4) location.
  std::string LocFn; ///< Function containing Loc (for reporting).
};

/// Mutable summary accumulator, used only while one function is being
/// analysed; frozen into arena-backed spans afterwards.
struct FnSummaries {
  std::vector<VFEntry> VF1, VF2, VF3, VF4;
};

/// A function's finished summaries: immutable spans over entries packed
/// contiguously in the engine's summary arena. Callers range-for these
/// exactly as they did the vectors.
struct FrozenSummaries {
  Span<VFEntry> VF1, VF2, VF3, VF4;
};

/// A source event inside the function being analysed.
struct SourceEvent {
  const Variable *Val;
  const Stmt *At;
  CondBundle B;
  SourceLoc Loc;
  std::string LocFn;
};

} // namespace

//===----------------------------------------------------------------------===
// Impl
//===----------------------------------------------------------------------===

class GlobalSVFA::Impl {
public:
  Impl(AnalyzedModule &AM, const checkers::CheckerSpec &Spec,
       GlobalOptions Opts, Stats &S)
      : AM(AM), Spec(Spec), Opts(Opts), S(S), Ctx(AM.context()),
        CT(AM.context(), AM.symbols()), Linear(AM.context()),
        Gov(Opts.Governor ? *Opts.Governor : ResourceGovernor::ungoverned()),
        Solver(AM.context(),
               smt::createDefaultSolver(
                   AM.context(),
                   smt::SolverConfig{.TimeoutMs = Gov.solverTimeoutMs()}),
               Opts.UseLinearFilter, &Gov) {
    if (Opts.SolverCache)
      Solver.setQueryCache(&QCache);
    Solver.setSlicing(Opts.SolverSlicing);
  }

  std::vector<Report> run();
  const smt::StagedSolver::Stats &solverStats() const {
    // Fold in the per-chunk solvers of the parallel discharge (all zero on
    // the serial path, making this the plain inline stats).
    Merged = Solver.stats();
    Merged.Queries += Deferred.Queries;
    Merged.LinearUnsat += Deferred.LinearUnsat;
    Merged.BackendQueries += Deferred.BackendQueries;
    Merged.BackendUnsat += Deferred.BackendUnsat;
    Merged.BackendUnknown += Deferred.BackendUnknown;
    Merged.InjectedUnknown += Deferred.InjectedUnknown;
    Merged.BackendCalls += Deferred.BackendCalls;
    Merged.CacheHits += Deferred.CacheHits;
    Merged.SlicedQueries += Deferred.SlicedQueries;
    Merged.ComponentsRefuted += Deferred.ComponentsRefuted;
    Merged.Retries += Deferred.Retries;
    Merged.TransientFailures += Deferred.TransientFailures;
    return Merged;
  }

private:
  //===--- Small helpers ---------------------------------------------------===

  seg::SEG &segOf(const Function *F) { return *AM.info(F).Seg; }

  /// Conjoins, applying the linear-time filter inline (the engine's use of
  /// Section 3.1.1: contradictory flows die during the search, before any
  /// SMT query). With the filter disabled only constructor-level folding
  /// remains and infeasible candidates survive to the SMT stage.
  const smt::Expr *conj(const smt::Expr *A, const smt::Expr *B) {
    const smt::Expr *C = Ctx.mkAnd(A, B);
    if (C->isFalse())
      return nullptr;
    if (Opts.UseLinearFilter && Linear.isObviouslyUnsat(C)) {
      ++S.LinearPruned;
      return nullptr;
    }
    return C;
  }

  /// Bool-aware equality of two symbolic expressions.
  const smt::Expr *exprEq(const smt::Expr *A, const smt::Expr *B) {
    auto boolify = [&](const smt::Expr *E) {
      return E->isBool() ? E : Ctx.mkNe(E, Ctx.getInt(0));
    };
    if (A->isBool() || B->isBool()) {
      const smt::Expr *BA = boolify(A), *BB = boolify(B);
      return Ctx.mkAnd(Ctx.mkImplies(BA, BB), Ctx.mkImplies(BB, BA));
    }
    return Ctx.mkEq(A, B);
  }

  /// Maps a callee return-bundle index to the call-site receiver.
  const Variable *receiverForBundle(const CallStmt *Call,
                                    const Function *Callee, int BundleIdx) {
    bool HasPrimary = !Callee->returnType().isVoid();
    if (HasPrimary && BundleIdx == 0)
      return Call->receiver();
    int AuxIdx = HasPrimary ? BundleIdx - 1 : BundleIdx;
    if (AuxIdx < 0 ||
        static_cast<size_t>(AuxIdx) >= Call->auxReceivers().size())
      return nullptr;
    return Call->auxReceivers()[AuxIdx];
  }

  /// BundleIdx for an OpenRecv pair (-1 primary / aux index).
  static int bundleIndexFor(const Function *Callee, int OpenRecvIdx) {
    bool HasPrimary = !Callee->returnType().isVoid();
    if (OpenRecvIdx == -1)
      return 0;
    return HasPrimary ? OpenRecvIdx + 1 : OpenRecvIdx;
  }

  const Value *bundleValue(const Function *Callee, int BundleIdx) {
    const ReturnStmt *Ret = Callee->returnStmt();
    if (!Ret || BundleIdx < 0 ||
        static_cast<size_t>(BundleIdx) >= Ret->values().size())
      return nullptr;
    return Ret->values()[BundleIdx];
  }

  ReachOracle &reach(const Function *F) {
    auto It = ReachCache.find(F);
    if (It != ReachCache.end())
      return *It->second;
    return *ReachCache.emplace(F, std::make_unique<ReachOracle>(*F))
                .first->second;
  }

  const seg::Closure &controlCondOf(const Function *F, const Stmt *St) {
    auto Key = std::make_pair(F, St);
    auto It = CDCache.find(Key);
    if (It != CDCache.end())
      return It->second;
    return CDCache.emplace(Key, segOf(F).controlCond(St)).first->second;
  }

  /// Rebases a context chain (relative to a callee) onto \p Base.
  const Context *rebase(const Context *C, const Context *Base) {
    if (!C)
      return Base;
    return CT.push(rebase(C->Parent, Base), C->Site);
  }

  /// Instantiates a callee-space CondBundle at a call site.
  bool instantiateBundle(const CondBundle &In, const Function *Callee,
                         const Context *CallCtx, CondBundle &Out) {
    const smt::Expr *C = CT.instantiate(In.C, Callee, CallCtx);
    const smt::Expr *Merged = conj(Out.C, C);
    if (!Merged)
      return false;
    Out.C = Merged;
    for (const VarRef &R : In.Vars)
      Out.Vars.push_back({R.Fn, R.V, rebase(R.Ctx, CallCtx)});
    for (const RecvRef &R : In.Recvs)
      Out.Recvs.push_back({R.Fn, R.Call, R.BundleIdx, rebase(R.Ctx, CallCtx)});
    Out.Depth = std::max(Out.Depth, In.Depth + 1);
    // Path traces are for reporting only; cap them so deep call DAGs do
    // not drag ever-growing string vectors through the search.
    for (const std::string &P : In.Path) {
      if (Out.Path.size() >= 16)
        break;
      Out.Path.push_back(P);
    }
    return true;
  }

  /// Folds a DD/CD closure (function-local, top context) into a bundle.
  bool foldClosure(CondBundle &B, const Function *F, const seg::Closure &D) {
    const smt::Expr *Merged = conj(B.C, D.C);
    if (!Merged)
      return false;
    B.C = Merged;
    // Open params of the *top* function stay open (unconstrained).
    for (auto &[Call, Idx] : D.OpenRecvs)
      B.Recvs.push_back({F, Call, Idx, nullptr});
    return true;
  }

  //===--- Value closure ----------------------------------------------------

  std::map<const Variable *, CondBundle>
  valueClosure(const Function *F, const Variable *Start,
               const CondBundle &StartB);

  /// IR variables whose symbols occur in \p E (support for DD expansion).
  std::vector<const Variable *> gateVars(const smt::Expr *E,
                                         const Function *F);

  //===--- Per-function analysis --------------------------------------------

  void analyzeFunction(const Function *F);
  void paramSummaries(const Function *F, FnSummaries &Sum);
  std::vector<SourceEvent> collectEvents(const Function *F);
  void processEvent(const Function *F, const SourceEvent &Ev,
                    FnSummaries &Sum);

  //===--- Candidates -------------------------------------------------------

  void addCandidate(const Function *F, const SourceEvent &Ev,
                    const CondBundle &B, SourceLoc SinkLoc,
                    const std::string &SinkFn);
  const smt::Expr *assemble(const CondBundle &B);

  /// True when SMT discharge is deferred to the end of run() and fanned out
  /// across the pool (candidate *generation* always stays serial: summaries
  /// are order-dependent).
  bool deferSolving() const {
    return Opts.PathSensitive && Opts.Pool && Opts.Pool->workers() > 1;
  }
  void dischargePending();

  AnalyzedModule &AM;
  const checkers::CheckerSpec Spec; // By value: callers often pass temporaries.
  GlobalOptions Opts;
  Stats &S;
  smt::ExprContext &Ctx;
  ContextTable CT;
  smt::LinearSolver Linear;
  ResourceGovernor &Gov;
  /// One verdict cache per run, shared by the inline solver and every
  /// parallel discharge chunk (declared before Solver so it outlives it).
  smt::QueryCache QCache;
  smt::StagedSolver Solver;

  /// Hot per-function caches: accessed only by point lookup (never
  /// iterated), so hash maps are safe for determinism and shave the
  /// tree-walk off every summary/control-dependence probe.
  struct FnStmtHash {
    size_t operator()(const std::pair<const Function *, const Stmt *> &K)
        const {
      uintptr_t A = reinterpret_cast<uintptr_t>(K.first);
      uintptr_t B = reinterpret_cast<uintptr_t>(K.second);
      return std::hash<uintptr_t>()(A * 0x9e3779b97f4a7c15ULL ^ B);
    }
  };
  /// Finished summaries: spans into SumArena (declared first so the spans
  /// never dangle). The arena is unreported to the MemStats arena ledger —
  /// summary memory was never governed before and stays ungoverned, just
  /// packed contiguously now instead of spread over per-function vectors.
  Arena SumArena{/*Reported=*/false};
  std::unordered_map<const Function *, FrozenSummaries> Summaries;
  std::unordered_map<const Function *, std::unique_ptr<ReachOracle>>
      ReachCache;
  std::unordered_map<std::pair<const Function *, const Stmt *>, seg::Closure,
                     FnStmtHash>
      CDCache;
  std::vector<Report> Reports;
  std::set<std::tuple<std::string, uint32_t, uint32_t>> Reported;

  /// Candidates awaiting SMT discharge under deferSolving(): the fully
  /// assembled formula plus everything needed to commit the report in
  /// generation order afterwards.
  struct PendingCandidate {
    Report R;
    const smt::Expr *Full;
    std::tuple<std::string, uint32_t, uint32_t> Key;
  };
  std::vector<PendingCandidate> Pending;
  /// Accumulated stats of the per-chunk solvers (parallel discharge only).
  smt::StagedSolver::Stats Deferred;
  mutable smt::StagedSolver::Stats Merged; ///< Scratch for solverStats().
};

//===----------------------------------------------------------------------===
// Value closure
//===----------------------------------------------------------------------===

std::map<const Variable *, CondBundle>
GlobalSVFA::Impl::valueClosure(const Function *F, const Variable *Start,
                               const CondBundle &StartB) {
  seg::SEG &Seg = segOf(F);
  std::map<const Variable *, CondBundle> Result;
  std::vector<std::pair<const Variable *, CondBundle>> Work{{Start, StartB}};

  auto describe = [&](const Variable *V) {
    return F->name() + "::" + V->name();
  };

  Gov.beginClosure();
  uint64_t WalkSteps = 0;
  while (!Work.empty()) {
    // Cooperative cancellation: a cancelled run keeps whatever the closure
    // found so far (silent — the run-level Cancelled event is logged once
    // by the driving loop, not per closure).
    if (Gov.cancelled())
      break;
    // Graceful truncation: past the step budget (or the function's wall
    // clock) the closure computed so far is returned as-is — a best-effort
    // under-approximation, logged so the degradation is visible.
    if (!Gov.chargeClosureStep()) {
      Gov.note(DegradationKind::ClosureTruncated, "closure", F->name(),
               describe(Start) + " truncated after " +
                   std::to_string(WalkSteps) + " steps");
      break;
    }
    if (Gov.functionExpired()) {
      Gov.note(DegradationKind::FunctionBudgetExceeded, "closure", F->name(),
               describe(Start) + ": function wall clock expired");
      break;
    }
    ++WalkSteps;
    auto [V, B] = std::move(Work.back());
    Work.pop_back();
    if (Result.count(V))
      continue; // First-visit condition wins (see header comment).
    Result.emplace(V, B);
    ++S.ClosureSteps;

    // A step along a flow edge: conjoin the edge condition, the control
    // dependence of the mediating statement (Equation 1's CD terms), and —
    // for direct edges — the value equality.
    auto step = [&](const Variable *Next, const seg::FlowEdge &E) {
      if (Result.count(Next))
        return;
      CondBundle NB = B;
      const smt::Expr *C = conj(NB.C, E.Cond);
      if (!C)
        return;
      NB.C = C;
      for (const Variable *GV : gateVars(E.Cond, F))
        NB.Vars.push_back({F, GV, nullptr});
      if (E.Via) {
        const seg::Closure &CD = controlCondOf(F, E.Via);
        if (!foldClosure(NB, F, CD))
          return;
      }
      if (E.Direct) {
        NB.C = conj(NB.C, exprEq(Seg.symbol(V), Seg.symbol(Next)));
        if (!NB.C)
          return;
      }
      if (NB.Path.size() < 16)
        NB.Path.push_back(describe(Next));
      Work.push_back({Next, std::move(NB)});
    };

    for (const seg::FlowEdge &E : Seg.flowsOut(V))
      if (E.Direct || Spec.FlowThroughOperators)
        step(E.To, E);
    for (const seg::FlowEdge &E : Seg.flowsIn(V))
      if (E.Direct || Spec.FlowThroughOperators)
        step(E.To, E); // FlowIn stores the source var in To.

    // VF1 hops: the value enters a callee and returns.
    for (const seg::Use &U : Seg.usesOf(V)) {
      if (U.Kind != seg::UseKind::CallArg)
        continue;
      const auto *Call = cast<CallStmt>(U.S);
      const Function *Callee = Call->callee();
      if (!Callee || AM.callGraph().inSameSCC(F, Callee) ||
          !Summaries.count(Callee))
        continue;
      for (const VFEntry &E : Summaries.at(Callee).VF1) {
        if (E.Param->paramIndex() != U.Index ||
            E.B.Depth + 1 > Opts.MaxContextDepth)
          continue;
        const Variable *Recv = receiverForBundle(Call, Callee, E.BundleIdx);
        if (!Recv || Result.count(Recv))
          continue;
        const Context *CallCtx = CT.push(nullptr, Call);
        CondBundle NB = B;
        if (!instantiateBundle(E.B, Callee, CallCtx, NB))
          continue;
        // Receiver equals the callee's returned bundle value.
        const Value *RetVal = bundleValue(Callee, E.BundleIdx);
        if (RetVal) {
          NB.C = conj(NB.C, exprEq(Seg.symbol(Recv),
                                   CT.symbolIn(RetVal, Callee, CallCtx)));
          if (!NB.C)
            continue;
          if (const auto *RV = dyn_cast<Variable>(RetVal))
            NB.Vars.push_back({Callee, RV, CallCtx});
        }
        if (NB.Path.size() < 16)
          NB.Path.push_back("through " + Callee->name() + "()");
        Work.push_back({Recv, std::move(NB)});
      }
    }

    // Backward VF1 hop: V is a receiver — the value may have come from an
    // actual argument through the callee.
    if (const auto *Call = dyn_cast_or_null<CallStmt>(
            V->isParam() ? nullptr : V->def())) {
      const Function *Callee = Call->callee();
      if (Callee && !AM.callGraph().inSameSCC(F, Callee) &&
          Summaries.count(Callee)) {
        int BundleIdx = -1;
        bool HasPrimary = !Callee->returnType().isVoid();
        if (Call->receiver() == V && HasPrimary)
          BundleIdx = 0;
        for (size_t I = 0; I < Call->auxReceivers().size(); ++I)
          if (Call->auxReceivers()[I] == V)
            BundleIdx = static_cast<int>(I) + (HasPrimary ? 1 : 0);
        if (BundleIdx >= 0) {
          for (const VFEntry &E : Summaries.at(Callee).VF1) {
            if (E.BundleIdx != BundleIdx ||
                E.B.Depth + 1 > Opts.MaxContextDepth)
              continue;
            int ArgIdx = E.Param->paramIndex();
            if (ArgIdx < 0 ||
                static_cast<size_t>(ArgIdx) >= Call->args().size())
              continue;
            const auto *Actual = dyn_cast<Variable>(Call->args()[ArgIdx]);
            if (!Actual || Result.count(Actual))
              continue;
            const Context *CallCtx = CT.push(nullptr, Call);
            CondBundle NB = B;
            if (!instantiateBundle(E.B, Callee, CallCtx, NB))
              continue;
            if (NB.Path.size() < 16)
              NB.Path.push_back("back through " + Callee->name() + "()");
            Work.push_back({Actual, std::move(NB)});
          }
        }
      }
    }
  }
  return Result;
}

//===----------------------------------------------------------------------===
// Per-function analysis
//===----------------------------------------------------------------------===

std::vector<const Variable *>
gateVarsImpl(ir::SymbolMap &Syms, smt::ExprContext &Ctx, const smt::Expr *E) {
  std::vector<uint32_t> SymVars;
  Ctx.collectVars(E, SymVars);
  std::vector<const Variable *> Out;
  for (uint32_t Id : SymVars)
    if (const Variable *V = Syms.irVar(Id))
      Out.push_back(V);
  return Out;
}

std::vector<const Variable *>
GlobalSVFA::Impl::gateVars(const smt::Expr *E, const Function *) {
  return gateVarsImpl(AM.symbols(), Ctx, E);
}

void GlobalSVFA::Impl::paramSummaries(const Function *F, FnSummaries &Sum) {
  seg::SEG &Seg = segOf(F);
  for (const Variable *P : F->params()) {
    CondBundle Start;
    Start.C = Ctx.getTrue();
    Start.Path = {F->name() + "::" + P->name()};
    auto CL = valueClosure(F, P, Start);
    for (auto &[V, B] : CL) {
      for (const seg::Use &U : Seg.usesOf(V)) {
        // Local sink: VF4. A use may be sink *and* source (double free's
        // free() call), so fall through afterwards.
        if (Spec.isSinkUse(U)) {
          CondBundle NB = B;
          if (foldClosure(NB, F, controlCondOf(F, U.S))) {
            Sum.VF4.push_back({P, -1, NB, U.S->loc(), F->name()});
            ++S.VF4;
          }
        }
        // Return: VF1.
        if (U.Kind == seg::UseKind::RetVal) {
          Sum.VF1.push_back({P, U.Index, B, U.S->loc(), F->name()});
          ++S.VF1;
          continue;
        }
        if (U.Kind != seg::UseKind::CallArg)
          continue;
        const auto *Call = cast<CallStmt>(U.S);
        // Local source call: VF3 (the parameter's value is source-marked,
        // e.g. freed).
        if (U.Index == 0 && Spec.SourceArgFns.count(Call->calleeName())) {
          CondBundle NB = B;
          if (!foldClosure(NB, F, controlCondOf(F, Call)))
            continue;
          Sum.VF3.push_back({P, -1, NB, Call->loc(), F->name()});
          ++S.VF3;
          continue;
        }
        // Composition through callee VF3/VF4.
        const Function *Callee = Call->callee();
        if (!Callee || AM.callGraph().inSameSCC(F, Callee) ||
            !Summaries.count(Callee))
          continue;
        const FrozenSummaries &CS = Summaries.at(Callee);
        const Context *CallCtx = CT.push(nullptr, Call);
        for (const VFEntry &E : CS.VF3) {
          if (E.Param->paramIndex() != U.Index ||
              E.B.Depth + 1 > Opts.MaxContextDepth)
            continue;
          CondBundle NB = B;
          if (!instantiateBundle(E.B, Callee, CallCtx, NB))
            continue;
          if (!foldClosure(NB, F, controlCondOf(F, Call)))
            continue;
          Sum.VF3.push_back({P, -1, NB, E.Loc, E.LocFn});
          ++S.VF3;
        }
        for (const VFEntry &E : CS.VF4) {
          if (E.Param->paramIndex() != U.Index ||
              E.B.Depth + 1 > Opts.MaxContextDepth)
            continue;
          CondBundle NB = B;
          if (!instantiateBundle(E.B, Callee, CallCtx, NB))
            continue;
          if (!foldClosure(NB, F, controlCondOf(F, Call)))
            continue;
          Sum.VF4.push_back({P, -1, NB, E.Loc, E.LocFn});
          ++S.VF4;
        }
      }
    }
  }
}

std::vector<SourceEvent>
GlobalSVFA::Impl::collectEvents(const Function *F) {
  std::vector<SourceEvent> Events;
  seg::SEG &Seg = segOf(F);

  // Null-constant assignments as sources (the null-deref extension).
  if (Spec.NullConstIsSource) {
    for (const BasicBlock *B : F->blocks())
      for (const Stmt *St : B->stmts()) {
        const auto *A = dyn_cast<AssignStmt>(St);
        if (!A || A->isSynthetic())
          continue;
        const auto *C = dyn_cast<Constant>(A->src());
        if (!C || !C->isNull())
          continue;
        SourceEvent Ev;
        Ev.Val = A->dst();
        Ev.At = A;
        Ev.B.C = Ctx.getTrue();
        Ev.Loc = A->loc();
        Ev.LocFn = F->name();
        Ev.B.Path = {"null at " + F->name() + ":" + A->loc().str()};
        if (foldClosure(Ev.B, F, controlCondOf(F, A)))
          Events.push_back(std::move(Ev));
      }
  }
  for (const CallStmt *Call : Seg.calls()) {
    // Direct sources.
    if (auto Src = Spec.sourceOf(Call)) {
      SourceEvent Ev;
      Ev.Val = *Src;
      Ev.At = Call;
      Ev.B.C = Ctx.getTrue();
      Ev.Loc = Call->loc();
      Ev.LocFn = F->name();
      Ev.B.Path = {"source at " + F->name() + ":" + Call->loc().str()};
      if (foldClosure(Ev.B, F, controlCondOf(F, Call)))
        Events.push_back(std::move(Ev));
    }
    // Sources surfacing from callees.
    const Function *Callee = Call->callee();
    if (!Callee || AM.callGraph().inSameSCC(F, Callee) ||
        !Summaries.count(Callee))
      continue;
    const FrozenSummaries &CS = Summaries.at(Callee);
    const Context *CallCtx = CT.push(nullptr, Call);
    for (const VFEntry &E : CS.VF3) {
      if (E.B.Depth + 1 > Opts.MaxContextDepth)
        continue;
      int ArgIdx = E.Param->paramIndex();
      if (ArgIdx < 0 || static_cast<size_t>(ArgIdx) >= Call->args().size())
        continue;
      const auto *Actual = dyn_cast<Variable>(Call->args()[ArgIdx]);
      if (!Actual)
        continue;
      SourceEvent Ev;
      Ev.Val = Actual;
      Ev.At = Call;
      Ev.B.C = Ctx.getTrue();
      Ev.Loc = E.Loc;
      Ev.LocFn = E.LocFn;
      if (!instantiateBundle(E.B, Callee, CallCtx, Ev.B))
        continue;
      if (!foldClosure(Ev.B, F, controlCondOf(F, Call)))
        continue;
      Events.push_back(std::move(Ev));
    }
    for (const VFEntry &E : CS.VF2) {
      if (E.B.Depth + 1 > Opts.MaxContextDepth)
        continue;
      const Variable *Recv = receiverForBundle(Call, Callee, E.BundleIdx);
      if (!Recv)
        continue;
      SourceEvent Ev;
      Ev.Val = Recv;
      Ev.At = Call;
      Ev.B.C = Ctx.getTrue();
      Ev.Loc = E.Loc;
      Ev.LocFn = E.LocFn;
      if (!instantiateBundle(E.B, Callee, CallCtx, Ev.B))
        continue;
      if (!foldClosure(Ev.B, F, controlCondOf(F, Call)))
        continue;
      // Receiver carries the callee's returned source value.
      const Value *RetVal = bundleValue(Callee, E.BundleIdx);
      if (RetVal) {
        Ev.B.C = conj(Ev.B.C, exprEq(Seg.symbol(Recv),
                                     CT.symbolIn(RetVal, Callee, CallCtx)));
        if (!Ev.B.C)
          continue;
        if (const auto *RV = dyn_cast<Variable>(RetVal))
          Ev.B.Vars.push_back({Callee, RV, CallCtx});
      }
      Events.push_back(std::move(Ev));
    }
  }
  return Events;
}

void GlobalSVFA::Impl::processEvent(const Function *F, const SourceEvent &Ev,
                                    FnSummaries &Sum) {
  ++S.Events;
  seg::SEG &Seg = segOf(F);
  ReachOracle &RO = reach(F);
  auto CL = valueClosure(F, Ev.Val, Ev.B);

  for (auto &[V, B] : CL) {
    for (const seg::Use &U : Seg.usesOf(V)) {
      bool InOrder = !Spec.TemporalOrder || RO.reaches(Ev.At, U.S);
      // Local sink.
      if (Spec.isSinkUse(U) && U.S != Ev.At && InOrder) {
        CondBundle NB = B;
        if (!foldClosure(NB, F, controlCondOf(F, U.S)))
          continue;
        addCandidate(F, Ev, NB, U.S->loc(), F->name());
        continue;
      }
      // Source escapes through the return bundle: VF2.
      if (U.Kind == seg::UseKind::RetVal) {
        VFEntry E;
        E.BundleIdx = U.Index;
        E.B = B;
        E.Loc = Ev.Loc;
        E.LocFn = Ev.LocFn;
        Sum.VF2.push_back(std::move(E));
        ++S.VF2;
        continue;
      }
      // Sink inside a callee: VF4 composition.
      if (U.Kind == seg::UseKind::CallArg && InOrder) {
        const auto *Call = cast<CallStmt>(U.S);
        const Function *Callee = Call->callee();
        if (!Callee || AM.callGraph().inSameSCC(F, Callee) ||
            !Summaries.count(Callee))
          continue;
        const Context *CallCtx = CT.push(nullptr, Call);
        for (const VFEntry &E : Summaries.at(Callee).VF4) {
          if (E.Param->paramIndex() != U.Index ||
              E.B.Depth + 1 > Opts.MaxContextDepth)
            continue;
          CondBundle NB = B;
          if (!instantiateBundle(E.B, Callee, CallCtx, NB))
            continue;
          if (!foldClosure(NB, F, controlCondOf(F, Call)))
            continue;
          addCandidate(F, Ev, NB, E.Loc, E.LocFn);
        }
      }
    }
  }
}

void GlobalSVFA::Impl::analyzeFunction(const Function *F) {
  // Accumulate into local vectors, freeze into the summary arena at the
  // end. A throw mid-analysis simply drops the partial accumulator —
  // Summaries never holds a half-built entry (run()'s erase is then a
  // no-op), and callers only ever observe frozen, immutable spans.
  FnSummaries Sum;
  paramSummaries(F, Sum);
  for (const SourceEvent &Ev : collectEvents(F)) {
    if (Gov.functionExpired()) {
      Gov.note(DegradationKind::FunctionBudgetExceeded, "svfa", F->name(),
               "remaining source events skipped");
      break;
    }
    processEvent(F, Ev, Sum);
  }
  auto Freeze = [this](std::vector<VFEntry> &&V) -> Span<VFEntry> {
    const size_t N = V.size();
    const VFEntry *Base = SumArena.allocMove(std::move(V));
    return {Base, N};
  };
  FrozenSummaries FS;
  FS.VF1 = Freeze(std::move(Sum.VF1));
  FS.VF2 = Freeze(std::move(Sum.VF2));
  FS.VF3 = Freeze(std::move(Sum.VF3));
  FS.VF4 = Freeze(std::move(Sum.VF4));
  Summaries.emplace(F, FS);
}

//===----------------------------------------------------------------------===
// Candidates & constraint assembly (Equations 1-3)
//===----------------------------------------------------------------------===

const smt::Expr *GlobalSVFA::Impl::assemble(const CondBundle &B) {
  const smt::Expr *Acc = B.C;
  std::set<VarRef> SeenVars;
  std::set<RecvRef> SeenRecvs;
  std::vector<VarRef> VarWork(B.Vars.begin(), B.Vars.end());
  std::vector<RecvRef> RecvWork(B.Recvs.begin(), B.Recvs.end());

  while (!VarWork.empty() || !RecvWork.empty()) {
    if (!VarWork.empty()) {
      VarRef R = VarWork.back();
      VarWork.pop_back();
      if (!SeenVars.insert(R).second)
        continue;
      const seg::Closure &D = segOf(R.Fn).dd(R.V);
      Acc = Ctx.mkAnd(Acc, CT.instantiate(D.C, R.Fn, R.Ctx));
      for (const Variable *P : D.OpenParams) {
        if (!R.Ctx)
          continue; // Top-level params stay open.
        if (P->paramIndex() < 0 ||
            static_cast<size_t>(P->paramIndex()) >= R.Ctx->Site->args().size())
          continue;
        const auto *Actual =
            dyn_cast<Variable>(R.Ctx->Site->args()[P->paramIndex()]);
        if (!Actual)
          continue;
        const Function *Caller = R.Ctx->Site->parent()->parent();
        VarWork.push_back({Caller, Actual, R.Ctx->Parent});
      }
      for (auto &[Call, Idx] : D.OpenRecvs)
        RecvWork.push_back({R.Fn, Call, Idx, R.Ctx});
      continue;
    }

    RecvRef R = RecvWork.back();
    RecvWork.pop_back();
    if (!SeenRecvs.insert(R).second)
      continue;
    if (ContextTable::depth(R.Ctx) + 1 > Opts.MaxContextDepth)
      continue; // Beyond the depth limit: leave unconstrained (soundy).
    const Function *Caller = R.Call->parent()->parent();
    const Function *Callee = R.Call->callee();
    if (!Callee || AM.callGraph().inSameSCC(Caller, Callee) ||
        !Summaries.count(Callee))
      continue;
    int BundleIdx = bundleIndexFor(Callee, R.BundleIdx);
    const Variable *Recv = receiverForBundle(R.Call, Callee, BundleIdx);
    const Value *RetVal = bundleValue(Callee, BundleIdx);
    if (!Recv || !RetVal)
      continue;
    const Context *ChildCtx = CT.push(R.Ctx, R.Call);
    // RV summary (Equation 2): receiver equals the callee's return value,
    // whose own constraints are expanded in the child context.
    Acc = Ctx.mkAnd(Acc, exprEq(CT.symbolIn(Recv, R.Fn, R.Ctx),
                                CT.symbolIn(RetVal, Callee, ChildCtx)));
    if (const auto *RV = dyn_cast<Variable>(RetVal))
      VarWork.push_back({Callee, RV, ChildCtx});
  }
  return Acc;
}

void GlobalSVFA::Impl::addCandidate(const Function *F, const SourceEvent &Ev,
                                    const CondBundle &B, SourceLoc SinkLoc,
                                    const std::string &SinkFn) {
  (void)F;
  auto Key = std::make_tuple(Spec.Name + Ev.LocFn + SinkFn, Ev.Loc.Line,
                             SinkLoc.Line);
  // Deduplicate only *surviving* reports: an infeasible candidate for the
  // same (source, sink) must not shadow a feasible one reached through a
  // different value-flow path.
  if (Reported.count(Key))
    return;
  ++S.Candidates;

  Report R;
  R.Checker = Spec.Name;
  R.SourceFn = Ev.LocFn;
  R.Source = Ev.Loc;
  R.Sink = SinkLoc;
  R.SinkFn = SinkFn;
  R.Path = B.Path;

  if (Opts.PathSensitive) {
    const smt::Expr *Full = assemble(B);
    if (deferSolving()) {
      // Parallel mode: assemble now (summaries/contexts are only coherent
      // during serial generation), solve later across the pool. Note the
      // dedup asymmetry: a later candidate whose key would have been
      // reported inline still lands in Pending here, so S.Candidates and
      // query counts can exceed the serial run's — the committed report
      // list cannot (dischargePending re-checks the key in order).
      Pending.push_back({std::move(R), Full, std::move(Key)});
      return;
    }
    // Cancelled runs stop paying for SMT: the candidate is kept soundily
    // as Unknown, exactly like a solver timeout.
    if (Gov.cancelled()) {
      R.Verdict = smt::SatResult::Unknown;
    } else {
      Solver.setQueryOrigin(R.SourceFn);
      R.Verdict = Solver.checkSat(Full);
    }
    if (R.Verdict == smt::SatResult::Unsat) {
      ++S.SolverUnsat;
      return; // Infeasible path: not a bug.
    }
    // Unknown (solver timeout / step budget) is kept soundily: dropping it
    // would silently lose a potential bug. The report stays tagged.
    if (R.Verdict == smt::SatResult::Unknown)
      ++S.SolverUnknown;
    else
      ++S.SolverSat;
  }
  Reported.insert(Key);
  Reports.push_back(std::move(R));
}

void GlobalSVFA::Impl::dischargePending() {
  if (Pending.empty())
    return;
  ThreadPool &Pool = *Opts.Pool;
  const size_t N = Pending.size();
  std::vector<smt::SatResult> Verdicts(N, smt::SatResult::Sat);
  // A few chunks per worker balances uneven query costs without paying a
  // solver construction per candidate.
  const size_t NumChunks = std::min<size_t>(N, size_t(Pool.workers()) * 4);
  std::mutex StatsMu;

  // Cross-function batching (DESIGN.md section 14). Contiguous chunking
  // follows generation order, which clusters one source function's
  // candidates into one chunk — a function with the expensive queries
  // serializes the discharge on one worker. Instead, probe the run-wide
  // verdict cache once per candidate (a pure lookup, no solver counters)
  // and deal the *misses* — the candidates that will actually pay a solve —
  // round-robin across chunks regardless of originating function.
  // Duplicate miss formulas (interned, so pointer-comparable) go to the
  // same chunk: its sequential solve warms the shared cache for the
  // duplicates instead of two chunks racing the backend on one query.
  // Cache-known candidates are dealt round-robin too; they cost one cache
  // hit wherever they land. Every candidate still flows through a chunk
  // solver's checkSat, so the deterministic stats fields count exactly as
  // before — only the chunk assignment changed, and verdicts are still
  // committed in generation order below.
  std::vector<std::vector<size_t>> Chunks(NumChunks);
  {
    std::unordered_map<const smt::Expr *, size_t> MissChunk;
    size_t NextMiss = 0, NextHit = 0;
    for (size_t I = 0; I < N; ++I) {
      const smt::Expr *E = Pending[I].Full;
      if (Opts.SolverCache && QCache.lookup(E)) {
        Chunks[NextHit++ % NumChunks].push_back(I);
        continue;
      }
      auto [It, Fresh] = MissChunk.try_emplace(E, NextMiss % NumChunks);
      if (Fresh)
        ++NextMiss;
      Chunks[It->second].push_back(I);
    }
    // Per-chunk generation order (entries were appended ascending, so this
    // holds already; assert-in-spirit, kept explicit for clarity).
    for (std::vector<size_t> &C : Chunks)
      std::sort(C.begin(), C.end());
  }

  ThreadPool::TaskGroup G(Pool);
  for (size_t C = 0; C < NumChunks; ++C) {
    if (Chunks[C].empty())
      continue;
    G.spawn([this, Chunk = std::move(Chunks[C]), &Verdicts, &StatsMu] {
      // Each chunk owns its StagedSolver (and thereby its Z3 context /
      // MiniSolver state), so chunks never share backend state — only the
      // run-wide QueryCache, which is sharded and thread-safe, so a
      // component refuted in one chunk is a cache hit in every other.
      smt::StagedSolver ChunkSolver(
          Ctx,
          smt::createDefaultSolver(
              Ctx, smt::SolverConfig{.TimeoutMs = Gov.solverTimeoutMs()}),
          Opts.UseLinearFilter, &Gov);
      if (Opts.SolverCache)
        ChunkSolver.setQueryCache(&QCache);
      ChunkSolver.setSlicing(Opts.SolverSlicing);
      for (size_t K = 0; K < Chunk.size(); ++K) {
        // Per-query cancellation poll: the chunk drains by downgrading its
        // remaining candidates to Unknown (kept soundily, tagged in the
        // report) instead of abandoning slots at their Sat default.
        if (Gov.cancelled()) {
          for (size_t J = K; J < Chunk.size(); ++J)
            Verdicts[Chunk[J]] = smt::SatResult::Unknown;
          break;
        }
        const size_t I = Chunk[K];
        ChunkSolver.setQueryOrigin(Pending[I].R.SourceFn);
        Verdicts[I] = ChunkSolver.checkSat(Pending[I].Full);
      }
      const smt::StagedSolver::Stats &CS = ChunkSolver.stats();
      std::lock_guard<std::mutex> L(StatsMu);
      Deferred.Queries += CS.Queries;
      Deferred.LinearUnsat += CS.LinearUnsat;
      Deferred.BackendQueries += CS.BackendQueries;
      Deferred.BackendUnsat += CS.BackendUnsat;
      Deferred.BackendUnknown += CS.BackendUnknown;
      Deferred.InjectedUnknown += CS.InjectedUnknown;
      Deferred.BackendCalls += CS.BackendCalls;
      Deferred.CacheHits += CS.CacheHits;
      Deferred.SlicedQueries += CS.SlicedQueries;
      Deferred.ComponentsRefuted += CS.ComponentsRefuted;
      Deferred.Retries += CS.Retries;
      Deferred.TransientFailures += CS.TransientFailures;
    });
  }
  G.wait();

  // Serial commit in generation order with the same key-dedup rule the
  // inline path applies, so the report list is identical to a serial run.
  for (size_t I = 0; I < N; ++I) {
    PendingCandidate &PC = Pending[I];
    if (Reported.count(PC.Key))
      continue;
    PC.R.Verdict = Verdicts[I];
    if (PC.R.Verdict == smt::SatResult::Unsat) {
      ++S.SolverUnsat;
      continue;
    }
    if (PC.R.Verdict == smt::SatResult::Unknown)
      ++S.SolverUnknown;
    else
      ++S.SolverSat;
    Reported.insert(PC.Key);
    Reports.push_back(std::move(PC.R));
  }
  Pending.clear();
}

std::vector<Report> GlobalSVFA::Impl::run() {
  // Per-checker relevance: a subset of the pipeline's union set (the
  // pipeline may have analyzed functions only *other* checkers need).
  // Relevant functions see every callee summary the exhaustive run built —
  // irrelevant ones can contribute no event, no candidate and no summary
  // any relevant function consults — so the reports and checker stats are
  // byte-identical either way.
  RelevanceSet Rel;
  if (Opts.Demand) {
    // The pipeline's pre-pass already computed (or replayed from the
    // persisted relevance entry) this checker's slice; reuse it rather
    // than re-walking the call graph. The fallback covers library users
    // who run an engine over a pipeline built without a demand spec.
    if (const RelevanceSet *PreSliced = AM.checkerRelevance(Spec.Name)) {
      Rel = *PreSliced;
    } else {
      DemandSpec DS;
      DS.Checkers.push_back(Spec);
      Rel = computeRelevance(AM.callGraph(), AM.module(), DS);
    }
  }

  const auto &Order = AM.bottomUpOrder();
  for (size_t I = 0; I < Order.size(); ++I) {
    const Function *F = Order[I];
    // Demand skip (before the no-SEG degradation note: a skipped function
    // legitimately has no SEG and is not a degradation).
    if (!Rel.relevant(F))
      continue;
    // Task-boundary cancellation poll: drain here so the caller can still
    // flush reports already found and the summaries stay coherent.
    if (Gov.cancelled()) {
      Gov.note(DegradationKind::Cancelled, "svfa", F->name(),
               "cancellation requested; " +
                   std::to_string(Order.size() - I) +
                   " function(s) skipped");
      break;
    }
    if (Gov.budget().MemBudgetMB > 0 && Gov.memHardExceeded()) {
      Gov.note(DegradationKind::MemoryPressure, "svfa", F->name(),
               "governed bytes over --mem-budget-mb; " +
                   std::to_string(Order.size() - I) +
                   " function(s) skipped");
      break;
    }
    if (Gov.runExpired()) {
      Gov.note(DegradationKind::RunBudgetExhausted, "svfa", F->name(),
               "wall clock expired; " + std::to_string(Order.size() - I) +
                   " function(s) skipped");
      break;
    }
    // Functions the pipeline could not analyse at all have no SEG; their
    // summaries stay absent, which callers already treat conservatively.
    if (!AM.info(F).Seg) {
      Gov.note(DegradationKind::FunctionSkipped, "svfa", F->name(),
               "no SEG (pipeline degraded)");
      continue;
    }
    Gov.beginFunction();
    try {
      if (Gov.faults().injectFunctionThrow(F->name())) {
        Gov.note(DegradationKind::InjectedFault, "svfa", F->name(),
                 "forced svfa throw");
        throw std::runtime_error("injected svfa fault");
      }
      analyzeFunction(F);
    } catch (const std::exception &Ex) {
      // Fault isolation: one function's failure must not lose the reports
      // and summaries of every other function. Partial summaries of the
      // failed function are discarded; reports already emitted stand.
      Summaries.erase(F);
      ++S.IsolatedFailures;
      Gov.note(DegradationKind::FunctionFailed, "svfa", F->name(), Ex.what());
    }
  }
  dischargePending();
  return std::move(Reports);
}

//===----------------------------------------------------------------------===
// Facade
//===----------------------------------------------------------------------===

GlobalSVFA::GlobalSVFA(AnalyzedModule &AM, const checkers::CheckerSpec &Spec,
                       GlobalOptions Opts)
    : P(std::make_unique<Impl>(AM, Spec, Opts, S)) {}

GlobalSVFA::~GlobalSVFA() = default;

std::vector<Report> GlobalSVFA::run() { return P->run(); }

const smt::StagedSolver::Stats &GlobalSVFA::solverStats() const {
  return P->solverStats();
}

std::vector<Report> checkModule(ir::Module &M, smt::ExprContext &Ctx,
                                const checkers::CheckerSpec &Spec,
                                GlobalOptions Opts) {
  PipelineOptions PO;
  PO.Governor = Opts.Governor;
  PO.Pool = Opts.Pool;
  // With demand on, the pipeline slices to this one checker's relevance
  // set too (a single-checker run is its own union).
  DemandSpec DS;
  if (Opts.Demand) {
    DS.Checkers.push_back(Spec);
    PO.Demand = &DS;
  }
  AnalyzedModule AM(M, Ctx, PO);
  GlobalSVFA Engine(AM, Spec, Opts);
  return Engine.run();
}

} // namespace pinpoint::svfa
