//===- svfa/Demand.cpp --------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "svfa/Demand.h"

using namespace pinpoint::ir;

namespace pinpoint::svfa {

namespace {

bool hasMallocSite(const Function &F) {
  for (const BasicBlock *B : F.blocks())
    for (const Stmt *S : B->stmts())
      if (const auto *Call = dyn_cast<CallStmt>(S))
        if (Call->calleeName() == intrinsics::Malloc && Call->receiver())
          return true;
  return false;
}

} // namespace

RelevanceSet computeRelevance(const CallGraph &CG, Module &M,
                              const DemandSpec &Spec) {
  RelevanceSet R;
  R.All = false;

  // Seed: functions with a syntactic source site of any enabled checker.
  // This is a name-based over-approximation (a source call whose value the
  // engine later discards still seeds) — extra relevant functions only
  // cost time, never change results.
  std::vector<Function *> Work;
  std::unordered_set<const Function *> HasSrc;
  for (Function *F : M.functions()) {
    bool IsSrc = false;
    for (const checkers::CheckerSpec &CS : Spec.Checkers)
      IsSrc = IsSrc || CS.hasSourceSite(*F);
    if (!IsSrc && Spec.LeakSources)
      IsSrc = hasMallocSite(*F);
    if (IsSrc && HasSrc.insert(F).second)
      Work.push_back(F);
  }
  R.SourceFns = Work.size();

  // Close under callers: a caller can surface a callee's source events
  // through VF2/VF3 summaries, so every transitive caller of a
  // source-bearing function may itself produce events and candidates.
  while (!Work.empty()) {
    Function *F = Work.back();
    Work.pop_back();
    for (Function *C : CG.callers(F))
      if (HasSrc.insert(C).second)
        Work.push_back(C);
  }

  // Close under callees: analyzed functions must see the exact callee
  // interfaces (connector rewriting) and VF summaries the exhaustive run
  // saw, so everything reachable below the event-producing set is kept.
  R.Fns = HasSrc;
  for (const Function *F : HasSrc)
    Work.push_back(const_cast<Function *>(F));
  while (!Work.empty()) {
    Function *F = Work.back();
    Work.pop_back();
    for (Function *C : CG.callees(F))
      if (R.Fns.insert(C).second)
        Work.push_back(C);
  }
  return R;
}

} // namespace pinpoint::svfa
