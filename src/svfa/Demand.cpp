//===- svfa/Demand.cpp --------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "svfa/Demand.h"
#include "ir/Fingerprint.h"
#include "support/Hasher.h"
#include "support/Serializer.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>

using namespace pinpoint::ir;

namespace pinpoint::svfa {

namespace {

bool hasMallocSite(const Function &F) {
  for (const BasicBlock *B : F.blocks())
    for (const Stmt *S : B->stmts())
      if (const auto *Call = dyn_cast<CallStmt>(S))
        if (Call->calleeName() == intrinsics::Malloc && Call->receiver())
          return true;
  return false;
}

using FnSet = std::unordered_set<const Function *>;

/// Closes \p Seeds under CG.callers (in place).
void closeUnderCallers(const CallGraph &CG, FnSet &Set) {
  std::vector<const Function *> Work(Set.begin(), Set.end());
  while (!Work.empty()) {
    const Function *F = Work.back();
    Work.pop_back();
    for (Function *C : CG.callers(const_cast<Function *>(F)))
      if (Set.insert(C).second)
        Work.push_back(C);
  }
}

/// Closes \p Set under CG.callees (in place).
void closeUnderCallees(const CallGraph &CG, FnSet &Set) {
  std::vector<const Function *> Work(Set.begin(), Set.end());
  while (!Work.empty()) {
    const Function *F = Work.back();
    Work.pop_back();
    for (Function *C : CG.callees(const_cast<Function *>(F)))
      if (Set.insert(C).second)
        Work.push_back(C);
  }
}

/// The per-checker slice from materialised seed sets. When \p Snk is
/// non-null the source cone is intersected with the sink cone *before* the
/// callee closure — candidates only materialise where both a source event
/// and a sink use can surface (caller closures), and closing the
/// intersected core under callees keeps every analyzed function's callee
/// interfaces identical to the exhaustive run's.
RelevanceSet coneFromSeeds(const CallGraph &CG, const FnSet &Src,
                           const FnSet *Snk) {
  RelevanceSet R;
  R.All = false;
  R.SourceFns = Src.size();

  FnSet SrcCone = Src;
  closeUnderCallers(CG, SrcCone);

  FnSet Core;
  if (Snk) {
    R.SinkFns = Snk->size();
    FnSet SnkCone = *Snk;
    closeUnderCallers(CG, SnkCone);
    for (const Function *F : SrcCone)
      if (SnkCone.count(F))
        Core.insert(F);
  } else {
    Core = std::move(SrcCone);
  }

  closeUnderCallees(CG, Core);
  R.Fns = std::move(Core);
  return R;
}

/// The spec's checkers sorted by name — the index space FunctionRecord's
/// seed bits live in (and the order relevanceSpecKey hashes).
std::vector<const checkers::CheckerSpec *>
sortedCheckers(const DemandSpec &Spec) {
  std::vector<const checkers::CheckerSpec *> Sorted;
  for (const checkers::CheckerSpec &CS : Spec.Checkers)
    Sorted.push_back(&CS);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const checkers::CheckerSpec *A, const checkers::CheckerSpec *B) {
              return A->Name < B->Name;
            });
  return Sorted;
}

/// The checker whose sink cone seeds at deref hosts, if the spec has one.
/// hasDerefSite is spec-independent, so any such checker serves to scan the
/// per-function deref-host flag.
const checkers::CheckerSpec *
derefScanChecker(const DemandSpec &Spec,
                 const std::vector<const checkers::CheckerSpec *> &Sorted) {
  if (!Spec.UseSinkCones)
    return nullptr;
  for (const checkers::CheckerSpec *CS : Sorted)
    if (CS->DerefIsSink && !CS->hasSyntacticSinks())
      return CS;
  return nullptr;
}

/// Scans \p F's statements into one seed record (everything except the
/// fingerprint and the call-edge list).
void scanSeeds(const Function &F, const DemandSpec &Spec,
               const std::vector<const checkers::CheckerSpec *> &Sorted,
               const checkers::CheckerSpec *DerefScan, FunctionRecord &R) {
  R.Flags = 0;
  if (Spec.LeakSources && hasMallocSite(F))
    R.Flags |= FunctionRecord::LeakSrcFlag;
  if (DerefScan && DerefScan->hasDerefSite(F))
    R.Flags |= FunctionRecord::DerefHostFlag;
  R.SeedBits.assign(Sorted.size(), 0);
  for (size_t I = 0; I < Sorted.size(); ++I) {
    const checkers::CheckerSpec &CS = *Sorted[I];
    uint8_t Bits = 0;
    if (CS.hasSourceSite(F))
      Bits |= 1;
    if (Spec.UseSinkCones && CS.hasSyntacticSinks() && CS.hasSinkSite(F))
      Bits |= 2;
    R.SeedBits[I] = Bits;
  }
}

/// \p F's resolved callees by name, sorted — the persisted edge list.
std::vector<std::string> calleeNames(const CallGraph &CG, const Function *F) {
  std::vector<std::string> Names;
  for (Function *C : CG.callees(const_cast<Function *>(F)))
    Names.push_back(C->name());
  std::sort(Names.begin(), Names.end());
  return Names;
}

/// The full per-function scan: every function's seeds, fingerprint and
/// call edges. This is the expensive part of a cold pre-pass; the warm
/// refresh reuses it per function while fingerprints match.
RelevanceRecords
buildRecords(const CallGraph &CG, Module &M, const DemandSpec &Spec,
             const std::unordered_map<const Function *, uint64_t> *FnFP) {
  std::vector<const checkers::CheckerSpec *> Sorted = sortedCheckers(Spec);
  const checkers::CheckerSpec *DerefScan = derefScanChecker(Spec, Sorted);

  RelevanceRecords Recs;
  for (const checkers::CheckerSpec *CS : Sorted)
    Recs.Checkers.push_back(CS->Name);
  for (Function *F : M.functions()) {
    FunctionRecord R;
    if (FnFP) {
      auto It = FnFP->find(F);
      R.FP = It == FnFP->end() ? fingerprintFunction(*F) : It->second;
    } else {
      R.FP = fingerprintFunction(*F);
    }
    scanSeeds(*F, Spec, Sorted, DerefScan, R);
    R.Callees = calleeNames(CG, F);
    Recs.Fns.emplace(F->name(), std::move(R));
  }
  return Recs;
}

/// Rebuilds the artifact's cones from a seed table. Pure in the table and
/// the live call graph, so a cold scan and a warm refresh that merged to
/// the same table produce byte-identical artifacts.
RelevanceArtifact artifactFromRecords(const CallGraph &CG, Module &M,
                                      const DemandSpec &Spec,
                                      const RelevanceRecords &Recs) {
  RelevanceArtifact A;
  A.Union.All = false;

  std::vector<const checkers::CheckerSpec *> Sorted = sortedCheckers(Spec);

  auto record = [&Recs](const Function *F) -> const FunctionRecord * {
    auto It = Recs.Fns.find(F->name());
    return It == Recs.Fns.end() ? nullptr : &It->second;
  };

  // Union diagnostics count *functions* that seed any checker, matching the
  // pre-sink-slicing semantics of [demand] source-fns.
  FnSet UnionSrc, UnionSnk;

  for (size_t I = 0; I < Sorted.size(); ++I) {
    const checkers::CheckerSpec &CS = *Sorted[I];
    FnSet Src, Snk;
    bool UseSnk = false;
    for (Function *F : M.functions()) {
      const FunctionRecord *R = record(F);
      if (!R || I >= R->SeedBits.size())
        continue;
      if (R->SeedBits[I] & 1) {
        Src.insert(F);
        UnionSrc.insert(F);
      }
      if (Spec.UseSinkCones && CS.hasSyntacticSinks()) {
        UseSnk = true;
        if (R->SeedBits[I] & 2) {
          Snk.insert(F);
          UnionSnk.insert(F);
        }
      } else if (Spec.UseSinkCones && CS.DerefIsSink) {
        // Semantic sink narrowing: a deref-sink checker names no sink
        // function, but its sinks can only surface where something is
        // actually dereferenced — seed the sink cone at deref hosts so
        // deref-free source regions prune exactly like syntactic ones.
        UseSnk = true;
        if (R->Flags & FunctionRecord::DerefHostFlag) {
          Snk.insert(F);
          UnionSnk.insert(F);
        }
      }
    }
    RelevanceSet RC = coneFromSeeds(CG, Src, UseSnk ? &Snk : nullptr);
    A.Union.Fns.insert(RC.Fns.begin(), RC.Fns.end());
    A.PerChecker.emplace(CS.Name, std::move(RC));
  }

  if (Spec.LeakSources) {
    // The leak checker's sink (exhaustion) is non-syntactic: source-only.
    FnSet Src;
    for (Function *F : M.functions()) {
      const FunctionRecord *R = record(F);
      if (R && (R->Flags & FunctionRecord::LeakSrcFlag)) {
        Src.insert(F);
        UnionSrc.insert(F);
      }
    }
    RelevanceSet RC = coneFromSeeds(CG, Src, nullptr);
    A.Union.Fns.insert(RC.Fns.begin(), RC.Fns.end());
    A.PerChecker.emplace("leak", std::move(RC));
  }

  A.Union.SourceFns = UnionSrc.size();
  A.Union.SinkFns = UnionSnk.size();
  return A;
}

} // namespace

RelevanceArtifact computeRelevanceArtifact(
    const CallGraph &CG, Module &M, const DemandSpec &Spec,
    const std::unordered_map<const Function *, uint64_t> *FnFP) {
  RelevanceRecords Recs = buildRecords(CG, M, Spec, FnFP);
  RelevanceArtifact A = artifactFromRecords(CG, M, Spec, Recs);
  A.Records = std::move(Recs);
  return A;
}

RelevanceSet computeRelevance(const CallGraph &CG, Module &M,
                              const DemandSpec &Spec) {
  return computeRelevanceArtifact(CG, M, Spec).Union;
}

//===----------------------------------------------------------------------===
// Edit-localised refresh
//===----------------------------------------------------------------------===

namespace {

/// Resolves a stored name set against \p M. False when any name is gone —
/// the caller falls back to recomputing the cones.
bool resolveNamedSet(const StoredRelevance::NamedSet &S, const Module &M,
                     RelevanceSet &Out) {
  Out.All = false;
  Out.SourceFns = S.SourceFns;
  Out.SinkFns = S.SinkFns;
  Out.Fns.clear();
  Out.Fns.reserve(S.Names.size());
  for (const std::string &N : S.Names) {
    const Function *F = M.function(N);
    if (!F)
      return false;
    Out.Fns.insert(F);
  }
  return true;
}

bool resolveStored(const StoredRelevance &S, const Module &M,
                   RelevanceArtifact &Out) {
  if (!resolveNamedSet(S.Union, M, Out.Union))
    return false;
  for (const auto &[Name, NS] : S.PerChecker) {
    RelevanceSet RS;
    if (!resolveNamedSet(NS, M, RS))
      return false;
    Out.PerChecker.emplace(Name, std::move(RS));
  }
  return true;
}

} // namespace

RelevanceArtifact refreshRelevanceArtifact(
    const CallGraph &CG, Module &M, const DemandSpec &Spec,
    const StoredRelevance &Prev,
    const std::unordered_map<const Function *, uint64_t> &FnFP,
    RelevanceRefreshMode Mode, RelevanceRefreshStats &Stats) {
  const size_t Total = M.functions().size();
  std::vector<const checkers::CheckerSpec *> Sorted = sortedCheckers(Spec);

  // The spec key guards reuse, so the stored checker list should always
  // match the live spec's; treat a mismatch as an unusable table.
  bool Compatible = Prev.Records.Checkers.size() == Sorted.size();
  for (size_t I = 0; Compatible && I < Sorted.size(); ++I)
    Compatible = Prev.Records.Checkers[I] == Sorted[I]->Name;

  // Dirty diff: a function is dirty when it is new or its post-SSA
  // fingerprint no longer matches its record. Fingerprints hash callee
  // *names*, so a clean function's seed bits and call-by-name edges are
  // unchanged by construction.
  for (const Function *F : M.functions()) {
    auto It = Prev.Records.Fns.find(F->name());
    if (It == Prev.Records.Fns.end() || It->second.FP != FnFP.at(F) ||
        It->second.SeedBits.size() != Sorted.size())
      Stats.Dirty.insert(F);
  }
  Stats.DirtyFns = Stats.Dirty.size();

  // Auto threshold (DESIGN.md section 15): past ~30% dirty the merge
  // bookkeeping approaches the cost of simply re-scanning everything, so
  // fall back to the plain full pre-pass.
  bool Local = Compatible && Mode != RelevanceRefreshMode::Full &&
               (Mode == RelevanceRefreshMode::Local ||
                Stats.DirtyFns * 10 <= Total * 3);
  if (!Local) {
    Stats.ScannedFns = Total;
    return computeRelevanceArtifact(CG, M, Spec, &FnFP);
  }
  Stats.Local = true;
  Stats.ScannedFns = Stats.DirtyFns;

  const checkers::CheckerSpec *DerefScan = derefScanChecker(Spec, Sorted);

  // Merge: clean functions reuse their record's seed bits, dirty ones are
  // re-scanned. Edge lists always come from the live call graph — for a
  // clean function that is a copy of its record unless the *set of defined
  // function names* changed (an added definition resolves a formerly
  // external call, a deleted one un-resolves it), and both of those cases
  // surface in the diff below and force the closure recomputation.
  RelevanceRecords New;
  New.Checkers = Prev.Records.Checkers;
  bool SeedDelta = false, EdgeDelta = false;
  for (Function *F : M.functions()) {
    auto It = Prev.Records.Fns.find(F->name());
    FunctionRecord R;
    R.FP = FnFP.at(F);
    if (!Stats.Dirty.count(F)) {
      R.Flags = It->second.Flags;
      R.SeedBits = It->second.SeedBits;
      Stats.EdgesReused += It->second.Callees.size();
    } else {
      scanSeeds(*F, Spec, Sorted, DerefScan, R);
      if (It == Prev.Records.Fns.end()) {
        // A new definition can re-resolve existing call sites.
        SeedDelta = true;
        EdgeDelta = true;
      } else if (R.Flags != It->second.Flags ||
                 R.SeedBits != It->second.SeedBits) {
        SeedDelta = true;
      }
    }
    R.Callees = calleeNames(CG, F);
    if (It != Prev.Records.Fns.end() && R.Callees != It->second.Callees)
      EdgeDelta = true;
    New.Fns.emplace(F->name(), std::move(R));
  }
  for (const auto &[Name, R] : Prev.Records.Fns)
    if (!M.function(Name)) {
      // A deleted definition un-resolves surviving callers' edges to it.
      SeedDelta = true;
      EdgeDelta = true;
    }

  // No seed or edge delta: the cones are a pure function of the seed table
  // and the call graph, so the stored closure results are still exact —
  // adopt them and skip the cone recomputation entirely. (A body edit that
  // touches no source/sink/deref/call site lands here: one function
  // scanned, zero cones walked.)
  if (!SeedDelta && !EdgeDelta) {
    RelevanceArtifact A;
    if (resolveStored(Prev, M, A)) {
      A.Records = std::move(New);
      Stats.ClosureReused = true;
      return A;
    }
  }

  RelevanceArtifact A = artifactFromRecords(CG, M, Spec, New);
  A.Records = std::move(New);
  return A;
}

//===----------------------------------------------------------------------===
// Persistence
//===----------------------------------------------------------------------===

namespace {

constexpr char RelMagic[4] = {'P', 'P', 'R', 'L'};
/// v2: deref-sink checkers gained semantic sink narrowing — a v1 entry for
/// the same spec would replay the wider source-only slice, so old versions
/// must recompute (the version also feeds relevanceSpecKey).
/// v3: per-function record section (fingerprint, seed bits, call edges)
/// appended after the sets, backing the edit-localised warm refresh. Any
/// older version loads as Stale — an honest leftover, never corruption.
constexpr uint32_t RelFormatVersion = 3;

std::string relevancePath(const std::string &Dir) { return Dir + "/relevance"; }

void writeSet(ByteWriter &W, const RelevanceSet &S) {
  W.u64(S.SourceFns);
  W.u64(S.SinkFns);
  std::vector<std::string> Names;
  Names.reserve(S.Fns.size());
  for (const Function *F : S.Fns)
    Names.push_back(F->name());
  std::sort(Names.begin(), Names.end());
  W.u32(static_cast<uint32_t>(Names.size()));
  for (const std::string &N : Names)
    W.str(N);
}

StoredRelevance::NamedSet readNamedSet(ByteReader &R) {
  StoredRelevance::NamedSet S;
  S.SourceFns = R.u64();
  S.SinkFns = R.u64();
  uint32_t N = R.u32();
  S.Names.reserve(N);
  for (uint32_t I = 0; I < N; ++I)
    S.Names.push_back(R.str());
  return S;
}

void writeRecords(ByteWriter &W, const RelevanceRecords &Recs) {
  W.u32(static_cast<uint32_t>(Recs.Checkers.size()));
  for (const std::string &N : Recs.Checkers)
    W.str(N);
  W.u32(static_cast<uint32_t>(Recs.Fns.size()));
  for (const auto &[Name, R] : Recs.Fns) {
    W.str(Name);
    W.u64(R.FP);
    W.u8(R.Flags);
    for (size_t I = 0; I < Recs.Checkers.size(); ++I)
      W.u8(I < R.SeedBits.size() ? R.SeedBits[I] : 0);
    W.u32(static_cast<uint32_t>(R.Callees.size()));
    for (const std::string &C : R.Callees)
      W.str(C);
  }
}

RelevanceRecords readRecords(ByteReader &R) {
  RelevanceRecords Recs;
  uint32_t NumCheckers = R.u32();
  Recs.Checkers.reserve(NumCheckers);
  for (uint32_t I = 0; I < NumCheckers; ++I)
    Recs.Checkers.push_back(R.str());
  uint32_t NumFns = R.u32();
  for (uint32_t I = 0; I < NumFns; ++I) {
    std::string Name = R.str();
    FunctionRecord FR;
    FR.FP = R.u64();
    FR.Flags = R.u8();
    FR.SeedBits.resize(NumCheckers);
    for (uint32_t C = 0; C < NumCheckers; ++C)
      FR.SeedBits[C] = R.u8();
    uint32_t NumCallees = R.u32();
    FR.Callees.reserve(NumCallees);
    for (uint32_t C = 0; C < NumCallees; ++C)
      FR.Callees.push_back(R.str());
    Recs.Fns.emplace(std::move(Name), std::move(FR));
  }
  return Recs;
}

void hashStringSet(Hasher &H, const std::set<std::string> &S) {
  H.u32(static_cast<uint32_t>(S.size()));
  for (const std::string &E : S)
    H.str(E);
}

} // namespace

uint64_t relevanceSpecKey(const DemandSpec &Spec) {
  // Sort checkers by name so CLI flag order does not shake the key.
  std::vector<const checkers::CheckerSpec *> Sorted;
  for (const checkers::CheckerSpec &CS : Spec.Checkers)
    Sorted.push_back(&CS);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const checkers::CheckerSpec *A, const checkers::CheckerSpec *B) {
              return A->Name < B->Name;
            });

  Hasher H;
  H.str("pinpoint-relevance-spec");
  H.u32(RelFormatVersion);
  H.u8(Spec.LeakSources ? 1 : 0);
  H.u8(Spec.UseSinkCones ? 1 : 0);
  H.u32(static_cast<uint32_t>(Sorted.size()));
  for (const checkers::CheckerSpec *CS : Sorted) {
    H.str(CS->Name);
    hashStringSet(H, CS->SourceArgFns);
    hashStringSet(H, CS->SourceRetFns);
    H.u8(CS->NullConstIsSource ? 1 : 0);
    H.u8(CS->DerefIsSink ? 1 : 0);
    hashStringSet(H, CS->SinkArgFns);
    H.u8(CS->TemporalOrder ? 1 : 0);
    H.u8(CS->FlowThroughOperators ? 1 : 0);
  }
  return H.digest();
}

RelevanceLoadResult loadRelevanceEx(const std::string &Dir, uint64_t SubjectFP,
                                    uint64_t SpecKey, const Module &M) {
  RelevanceLoadResult Res;
  std::ifstream In(relevancePath(Dir), std::ios::binary);
  if (!In)
    return Res;
  std::vector<uint8_t> Raw((std::istreambuf_iterator<char>(In)),
                           std::istreambuf_iterator<char>());

  Res.Status = RelevanceLoadStatus::Corrupt;
  try {
    ByteReader R(Raw);
    char Mg[4];
    for (char &C : Mg)
      C = static_cast<char>(R.u8());
    if (std::memcmp(Mg, RelMagic, sizeof(RelMagic)) != 0)
      return Res;
    // A well-formed entry from another format version is an honest
    // leftover of an older/newer build, not damage: recompute silently.
    if (R.u32() != RelFormatVersion) {
      Res.Status = RelevanceLoadStatus::Stale;
      return Res;
    }
    uint64_t FP = R.u64();
    uint64_t Key = R.u64();
    uint64_t Checksum = R.u64();
    uint32_t Size = R.u32();
    if (Size != R.remaining())
      return Res;
    std::vector<uint8_t> Payload(Size);
    for (uint32_t I = 0; I < Size; ++I)
      Payload[I] = R.u8();
    if (Hasher().bytes(Payload.data(), Payload.size()).digest() != Checksum)
      return Res;
    if (Key != SpecKey) {
      // Another checker set: the seed-bit layout is not ours, so the
      // records cannot seed a refresh either.
      Res.Status = RelevanceLoadStatus::Stale;
      return Res;
    }

    ByteReader PR(Payload);
    StoredRelevance S;
    const bool Matched = FP == SubjectFP;
    try {
      S.Union = readNamedSet(PR);
      uint32_t NumCheckers = PR.u32();
      for (uint32_t I = 0; I < NumCheckers; ++I) {
        std::string Name = PR.str();
        S.PerChecker.emplace_back(std::move(Name), readNamedSet(PR));
      }
      S.Records = readRecords(PR);
      if (!PR.atEnd())
        throw SerializationError("trailing relevance payload bytes");
    } catch (const SerializationError &) {
      // Checksummed-but-unparseable is damage for the matching subject;
      // for a stale one it is merely unusable (matching the pre-v3
      // behaviour of never parsing stale payloads).
      Res.Status = Matched ? RelevanceLoadStatus::Corrupt
                           : RelevanceLoadStatus::Stale;
      return Res;
    }

    if (!Matched) {
      Res.Status = RelevanceLoadStatus::Stale;
      Res.Stored = std::move(S);
      Res.StoredUsable = true;
      return Res;
    }
    RelevanceArtifact A;
    if (!resolveStored(S, M, A))
      return Res; // Names from another world under our fingerprint: damage.
    A.Records = std::move(S.Records);
    Res.Artifact = std::move(A);
    Res.Status = RelevanceLoadStatus::Ok;
    return Res;
  } catch (const SerializationError &) {
    Res.Status = RelevanceLoadStatus::Corrupt;
    return Res;
  }
}

RelevanceLoadStatus loadRelevance(const std::string &Dir, uint64_t SubjectFP,
                                  uint64_t SpecKey, const Module &M,
                                  RelevanceArtifact &Out) {
  RelevanceLoadResult Res = loadRelevanceEx(Dir, SubjectFP, SpecKey, M);
  if (Res.Status == RelevanceLoadStatus::Ok)
    Out = std::move(Res.Artifact);
  return Res.Status;
}

bool storeRelevance(const std::string &Dir, uint64_t SubjectFP,
                    uint64_t SpecKey, const RelevanceArtifact &A) {
  ByteWriter PW;
  writeSet(PW, A.Union);
  PW.u32(static_cast<uint32_t>(A.PerChecker.size()));
  for (const auto &[Name, S] : A.PerChecker) {
    PW.str(Name);
    writeSet(PW, S);
  }
  writeRecords(PW, A.Records);
  std::vector<uint8_t> Payload = PW.take();

  ByteWriter W;
  for (char C : RelMagic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(RelFormatVersion);
  W.u64(SubjectFP);
  W.u64(SpecKey);
  W.u64(Hasher().bytes(Payload.data(), Payload.size()).digest());
  W.u32(static_cast<uint32_t>(Payload.size()));
  std::vector<uint8_t> Bytes = W.take();
  Bytes.insert(Bytes.end(), Payload.begin(), Payload.end());

  static std::atomic<uint64_t> TmpCounter{0};
  std::string Final = relevancePath(Dir);
  std::string Tmp = Final + ".tmp" + std::to_string(TmpCounter.fetch_add(1));
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return false;
    OutF.write(reinterpret_cast<const char *>(Bytes.data()),
               static_cast<std::streamsize>(Bytes.size()));
    if (!OutF)
      return false;
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Final, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  return true;
}

} // namespace pinpoint::svfa
