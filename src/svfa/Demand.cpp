//===- svfa/Demand.cpp --------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "svfa/Demand.h"
#include "support/Hasher.h"
#include "support/Serializer.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>

using namespace pinpoint::ir;

namespace pinpoint::svfa {

namespace {

bool hasMallocSite(const Function &F) {
  for (const BasicBlock *B : F.blocks())
    for (const Stmt *S : B->stmts())
      if (const auto *Call = dyn_cast<CallStmt>(S))
        if (Call->calleeName() == intrinsics::Malloc && Call->receiver())
          return true;
  return false;
}

using FnSet = std::unordered_set<const Function *>;

/// Closes \p Seeds under CG.callers (in place).
void closeUnderCallers(const CallGraph &CG, FnSet &Set) {
  std::vector<const Function *> Work(Set.begin(), Set.end());
  while (!Work.empty()) {
    const Function *F = Work.back();
    Work.pop_back();
    for (Function *C : CG.callers(const_cast<Function *>(F)))
      if (Set.insert(C).second)
        Work.push_back(C);
  }
}

/// Closes \p Set under CG.callees (in place).
void closeUnderCallees(const CallGraph &CG, FnSet &Set) {
  std::vector<const Function *> Work(Set.begin(), Set.end());
  while (!Work.empty()) {
    const Function *F = Work.back();
    Work.pop_back();
    for (Function *C : CG.callees(const_cast<Function *>(F)))
      if (Set.insert(C).second)
        Work.push_back(C);
  }
}

/// The per-checker slice. Seeds from \p IsSrc; when \p IsSnk is non-null the
/// source cone is intersected with the sink cone *before* the callee closure
/// — candidates only materialise where both a source event and a sink use
/// can surface (caller closures), and closing the intersected core under
/// callees keeps every analyzed function's callee interfaces identical to
/// the exhaustive run's.
template <typename SrcPred, typename SnkPred>
RelevanceSet sliceOne(const CallGraph &CG, Module &M, SrcPred IsSrc,
                      const SnkPred *IsSnk) {
  RelevanceSet R;
  R.All = false;

  FnSet SrcCone;
  for (Function *F : M.functions())
    if (IsSrc(*F))
      SrcCone.insert(F);
  R.SourceFns = SrcCone.size();
  closeUnderCallers(CG, SrcCone);

  FnSet Core;
  if (IsSnk) {
    FnSet SnkCone;
    for (Function *F : M.functions())
      if ((*IsSnk)(*F))
        SnkCone.insert(F);
    R.SinkFns = SnkCone.size();
    closeUnderCallers(CG, SnkCone);
    for (const Function *F : SrcCone)
      if (SnkCone.count(F))
        Core.insert(F);
  } else {
    Core = std::move(SrcCone);
  }

  closeUnderCallees(CG, Core);
  R.Fns = std::move(Core);
  return R;
}

} // namespace

RelevanceArtifact computeRelevanceArtifact(const CallGraph &CG, Module &M,
                                           const DemandSpec &Spec) {
  RelevanceArtifact A;
  A.Union.All = false;

  // Union diagnostics count *functions* that seed any checker, matching the
  // pre-sink-slicing semantics of [demand] source-fns.
  FnSet UnionSrc, UnionSnk;

  for (const checkers::CheckerSpec &CS : Spec.Checkers) {
    auto IsSrc = [&CS](const Function &F) { return CS.hasSourceSite(F); };
    RelevanceSet RC;
    if (Spec.UseSinkCones && CS.hasSyntacticSinks()) {
      auto IsSnk = [&CS](const Function &F) { return CS.hasSinkSite(F); };
      RC = sliceOne(CG, M, IsSrc, &IsSnk);
      for (Function *F : M.functions())
        if (CS.hasSinkSite(*F))
          UnionSnk.insert(F);
    } else if (Spec.UseSinkCones && CS.DerefIsSink) {
      // Semantic sink narrowing: a deref-sink checker names no sink
      // function, but its sinks can only surface where something is
      // actually dereferenced — seed the sink cone at deref hosts so
      // deref-free source regions prune exactly like syntactic ones.
      auto IsSnk = [&CS](const Function &F) { return CS.hasDerefSite(F); };
      RC = sliceOne(CG, M, IsSrc, &IsSnk);
      for (Function *F : M.functions())
        if (CS.hasDerefSite(*F))
          UnionSnk.insert(F);
    } else {
      RC = sliceOne<decltype(IsSrc), decltype(IsSrc)>(CG, M, IsSrc, nullptr);
    }
    for (Function *F : M.functions())
      if (CS.hasSourceSite(*F))
        UnionSrc.insert(F);
    A.Union.Fns.insert(RC.Fns.begin(), RC.Fns.end());
    A.PerChecker.emplace(CS.Name, std::move(RC));
  }

  if (Spec.LeakSources) {
    // The leak checker's sink (exhaustion) is non-syntactic: source-only.
    auto IsSrc = [](const Function &F) { return hasMallocSite(F); };
    RelevanceSet RC =
        sliceOne<decltype(IsSrc), decltype(IsSrc)>(CG, M, IsSrc, nullptr);
    for (Function *F : M.functions())
      if (hasMallocSite(*F))
        UnionSrc.insert(F);
    A.Union.Fns.insert(RC.Fns.begin(), RC.Fns.end());
    A.PerChecker.emplace("leak", std::move(RC));
  }

  A.Union.SourceFns = UnionSrc.size();
  A.Union.SinkFns = UnionSnk.size();
  return A;
}

RelevanceSet computeRelevance(const CallGraph &CG, Module &M,
                              const DemandSpec &Spec) {
  return computeRelevanceArtifact(CG, M, Spec).Union;
}

//===----------------------------------------------------------------------===
// Persistence
//===----------------------------------------------------------------------===

namespace {

constexpr char RelMagic[4] = {'P', 'P', 'R', 'L'};
/// v2: deref-sink checkers gained semantic sink narrowing — a v1 entry for
/// the same spec would replay the wider source-only slice, so old versions
/// must recompute (the version also feeds relevanceSpecKey).
constexpr uint32_t RelFormatVersion = 2;

std::string relevancePath(const std::string &Dir) { return Dir + "/relevance"; }

void writeSet(ByteWriter &W, const RelevanceSet &S) {
  W.u64(S.SourceFns);
  W.u64(S.SinkFns);
  std::vector<std::string> Names;
  Names.reserve(S.Fns.size());
  for (const Function *F : S.Fns)
    Names.push_back(F->name());
  std::sort(Names.begin(), Names.end());
  W.u32(static_cast<uint32_t>(Names.size()));
  for (const std::string &N : Names)
    W.str(N);
}

/// Returns false when a stored function name no longer resolves in \p M —
/// the entry cannot describe this module and is treated as corrupt.
bool readSet(ByteReader &R, const Module &M, RelevanceSet &S) {
  S.All = false;
  S.SourceFns = R.u64();
  S.SinkFns = R.u64();
  uint32_t N = R.u32();
  S.Fns.clear();
  S.Fns.reserve(N);
  for (uint32_t I = 0; I < N; ++I) {
    const Function *F = M.function(R.str());
    if (!F)
      return false;
    S.Fns.insert(F);
  }
  return true;
}

void hashStringSet(Hasher &H, const std::set<std::string> &S) {
  H.u32(static_cast<uint32_t>(S.size()));
  for (const std::string &E : S)
    H.str(E);
}

} // namespace

uint64_t relevanceSpecKey(const DemandSpec &Spec) {
  // Sort checkers by name so CLI flag order does not shake the key.
  std::vector<const checkers::CheckerSpec *> Sorted;
  for (const checkers::CheckerSpec &CS : Spec.Checkers)
    Sorted.push_back(&CS);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const checkers::CheckerSpec *A, const checkers::CheckerSpec *B) {
              return A->Name < B->Name;
            });

  Hasher H;
  H.str("pinpoint-relevance-spec");
  H.u32(RelFormatVersion);
  H.u8(Spec.LeakSources ? 1 : 0);
  H.u8(Spec.UseSinkCones ? 1 : 0);
  H.u32(static_cast<uint32_t>(Sorted.size()));
  for (const checkers::CheckerSpec *CS : Sorted) {
    H.str(CS->Name);
    hashStringSet(H, CS->SourceArgFns);
    hashStringSet(H, CS->SourceRetFns);
    H.u8(CS->NullConstIsSource ? 1 : 0);
    H.u8(CS->DerefIsSink ? 1 : 0);
    hashStringSet(H, CS->SinkArgFns);
    H.u8(CS->TemporalOrder ? 1 : 0);
    H.u8(CS->FlowThroughOperators ? 1 : 0);
  }
  return H.digest();
}

RelevanceLoadStatus loadRelevance(const std::string &Dir, uint64_t SubjectFP,
                                  uint64_t SpecKey, const Module &M,
                                  RelevanceArtifact &Out) {
  std::ifstream In(relevancePath(Dir), std::ios::binary);
  if (!In)
    return RelevanceLoadStatus::Missing;
  std::vector<uint8_t> Raw((std::istreambuf_iterator<char>(In)),
                           std::istreambuf_iterator<char>());

  try {
    ByteReader R(Raw);
    char Mg[4];
    for (char &C : Mg)
      C = static_cast<char>(R.u8());
    if (std::memcmp(Mg, RelMagic, sizeof(RelMagic)) != 0)
      return RelevanceLoadStatus::Corrupt;
    // A well-formed entry from another format version is an honest
    // leftover of an older/newer build, not damage: recompute silently.
    if (R.u32() != RelFormatVersion)
      return RelevanceLoadStatus::Stale;
    uint64_t FP = R.u64();
    uint64_t Key = R.u64();
    uint64_t Checksum = R.u64();
    uint32_t Size = R.u32();
    if (Size != R.remaining())
      return RelevanceLoadStatus::Corrupt;
    std::vector<uint8_t> Payload(Size);
    for (uint32_t I = 0; I < Size; ++I)
      Payload[I] = R.u8();
    if (Hasher().bytes(Payload.data(), Payload.size()).digest() != Checksum)
      return RelevanceLoadStatus::Corrupt;
    if (FP != SubjectFP || Key != SpecKey)
      return RelevanceLoadStatus::Stale;

    ByteReader PR(Payload);
    RelevanceArtifact A;
    if (!readSet(PR, M, A.Union))
      return RelevanceLoadStatus::Corrupt;
    uint32_t NumCheckers = PR.u32();
    for (uint32_t I = 0; I < NumCheckers; ++I) {
      std::string Name = PR.str();
      RelevanceSet S;
      if (!readSet(PR, M, S))
        return RelevanceLoadStatus::Corrupt;
      A.PerChecker.emplace(std::move(Name), std::move(S));
    }
    if (!PR.atEnd())
      return RelevanceLoadStatus::Corrupt;
    Out = std::move(A);
    return RelevanceLoadStatus::Ok;
  } catch (const SerializationError &) {
    return RelevanceLoadStatus::Corrupt;
  }
}

bool storeRelevance(const std::string &Dir, uint64_t SubjectFP,
                    uint64_t SpecKey, const RelevanceArtifact &A) {
  ByteWriter PW;
  writeSet(PW, A.Union);
  PW.u32(static_cast<uint32_t>(A.PerChecker.size()));
  for (const auto &[Name, S] : A.PerChecker) {
    PW.str(Name);
    writeSet(PW, S);
  }
  std::vector<uint8_t> Payload = PW.take();

  ByteWriter W;
  for (char C : RelMagic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(RelFormatVersion);
  W.u64(SubjectFP);
  W.u64(SpecKey);
  W.u64(Hasher().bytes(Payload.data(), Payload.size()).digest());
  W.u32(static_cast<uint32_t>(Payload.size()));
  std::vector<uint8_t> Bytes = W.take();
  Bytes.insert(Bytes.end(), Payload.begin(), Payload.end());

  static std::atomic<uint64_t> TmpCounter{0};
  std::string Final = relevancePath(Dir);
  std::string Tmp = Final + ".tmp" + std::to_string(TmpCounter.fetch_add(1));
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return false;
    OutF.write(reinterpret_cast<const char *>(Bytes.data()),
               static_cast<std::streamsize>(Bytes.size()));
    if (!OutF)
      return false;
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Final, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  return true;
}

} // namespace pinpoint::svfa
