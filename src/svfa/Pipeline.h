//===- svfa/Pipeline.h - Bottom-up module analysis pipeline ---------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the per-function stages of Pinpoint's architecture (paper Fig. 6)
/// bottom-up over the call graph:
///
///   SSA → call-site rewriting (callees' connectors) → local quasi
///   path-sensitive points-to (pass 1) → Mod/Ref → interface transform
///   (Aux params / returns) → points-to pass 2 → SEG.
///
/// The result, `AnalyzedModule`, owns per-function condition maps, final
/// points-to results, connector interfaces and SEGs — everything the global
/// value-flow stage (GlobalSVFA) and the checkers consume.
///
/// With a `ThreadPool` in the options, the per-function stages run as a
/// dependency-aware schedule over the call-graph condensation: each SCC is
/// one task, ready once all its distinct callee SCCs finished, so
/// independent call-tree branches analyse concurrently while
/// `rewriteCallSites` still sees every callee interface completed. SCC
/// members run sequentially inside their task, preserving the serial
/// semantics; without a pool (or with one worker) the schedule degenerates
/// to exactly the historical bottom-up loop.
///
/// Under the stealing discipline the schedule is critical-path aware
/// (DESIGN.md section 14): a reverse topological sweep computes each SCC's
/// upward rank `rank(scc) = cost(scc) + max(rank(dependents))` — costs are
/// measured microseconds replayed from `<cache-dir>/sched-profile` when
/// available, a statement-count heuristic otherwise — and ready SCCs are
/// dispatched highest-rank first. With a summary cache, entry reads become
/// prefetch tasks and entry writes flush tasks, both overlapped with
/// neighbouring SCC analysis in the same task group. All of it is pure
/// scheduling: reports, deterministic counters and degradation logs are
/// byte-identical across schedules, job counts and cache temperature.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SVFA_PIPELINE_H
#define PINPOINT_SVFA_PIPELINE_H

#include "ir/CallGraph.h"
#include "ir/Conditions.h"
#include "seg/SEG.h"
#include "support/ThreadPool.h"
#include "svfa/Demand.h"
#include "transform/Connectors.h"

#include <atomic>
#include <map>
#include <memory>

namespace pinpoint {
class ResourceGovernor;
class SummaryCache;
}

namespace pinpoint::svfa {

/// Everything the pipeline derives for one function.
struct AnalyzedFunction {
  ir::Function *F = nullptr;
  std::unique_ptr<ir::ConditionMap> Conds;
  pta::PointsToResult PTA; ///< Final (post-transform) points-to results.
  transform::FunctionInterface Interface;
  std::unique_ptr<seg::SEG> Seg;
  /// The full per-function pipeline was not run (oversized function, budget
  /// exhaustion, or an isolated failure): the connector interface is empty
  /// — callers see no side effects — and points-to is empty, so the SEG
  /// carries only direct def-use flow. Seg is null only if even the
  /// conservative fallback failed; consumers must skip such functions.
  bool Degraded = false;
  /// The demand pre-pass proved this function irrelevant to every enabled
  /// checker: nothing ran at all (no points-to, no interface, no SEG) and
  /// the summary cache was neither probed nor populated. Distinct from
  /// Degraded — a skipped function is a deliberate, deterministic elision,
  /// not a failure, and emits no degradation note.
  bool Skipped = false;
};

struct PipelineOptions {
  /// Quasi path sensitivity in the local points-to stages (ablation knob).
  bool UseLinearFilter = true;
  /// Budgets, degradation log and fault injection; nullptr = ungoverned.
  ResourceGovernor *Governor = nullptr;
  /// Worker pool for the SCC-DAG schedule; nullptr (or a 1-worker pool)
  /// runs the historical serial bottom-up loop.
  ThreadPool *Pool = nullptr;
  /// Persistent function-summary cache for incremental reanalysis;
  /// nullptr = from-scratch analysis (the historical behaviour).
  SummaryCache *Cache = nullptr;
  /// Demand-driven slicing: when set, the relevance pre-pass runs over
  /// this spec (the union of every checker the run will evaluate) and
  /// irrelevant functions are skipped wholesale. nullptr = exhaustive
  /// analysis (the historical behaviour and the differential baseline).
  const DemandSpec *Demand = nullptr;
  /// Spec the memory plan is keyed on, independent of `Demand`: with a
  /// --mem-budget-mb set, planMemoryPressure models exactly the functions
  /// this spec's union-relevant set keeps, whether or not the run itself
  /// slices. The CLI passes the same spec here for --demand=on and off, so
  /// the plan (and the pre-degraded SCC set) is identical across modes.
  /// nullptr = plan on the analysis slice (Demand if set, else everything).
  const DemandSpec *PlanDemand = nullptr;
  /// How a warm run reacts to a stale-subject relevance entry whose spec
  /// key still matches (--relevance-refresh): localized dirty-cone refresh,
  /// full pre-pass, or the auto threshold between them. Pure performance
  /// policy — never part of any cache key, never changes a byte of output.
  RelevanceRefreshMode RelevanceRefresh = RelevanceRefreshMode::Auto;
};

/// Owns the analysed state of a whole module.
class AnalyzedModule {
public:
  AnalyzedModule(ir::Module &M, smt::ExprContext &Ctx,
                 const PipelineOptions &Opts = {});
  /// Discharges this module's governed-memory accounting (see MemStats).
  ~AnalyzedModule();

  ir::Module &module() { return M; }
  const ir::CallGraph &callGraph() const { return *CG; }
  ir::SymbolMap &symbols() { return Syms; }
  smt::ExprContext &context() { return Ctx; }

  AnalyzedFunction &info(const ir::Function *F) { return Fns.at(F); }
  const AnalyzedFunction &info(const ir::Function *F) const {
    return Fns.at(F);
  }

  /// Functions in bottom-up order (same as the call graph's).
  const std::vector<ir::Function *> &bottomUpOrder() const {
    return CG->bottomUpOrder();
  }

  /// Aggregate SEG statistics (for the scalability benchmarks).
  size_t totalSEGEdges() const;
  size_t totalSEGVertices() const;

  //===--- Run-lifecycle state (DESIGN.md section 12) ---------------------===

  /// Per-SCC completion record for the run journal. Completed means every
  /// member ran the full pipeline (or replayed from cache) undegraded, so a
  /// rerun with the same cache resumes past it.
  struct SCCRecord {
    uint64_t Key = 0;
    bool Completed = false;
  };
  /// Empty when no summary cache is configured (keys need the cache).
  const std::vector<SCCRecord> &sccRecords() const { return Records; }
  /// Post-SSA fingerprint of the whole subject (0 without a cache).
  uint64_t subjectFingerprint() const { return SubjectFP; }
  /// SCCs of this run whose keys a previous run's journal had already
  /// completed — the `resumed-sccs` stat.
  size_t resumedSCCs() const { return Resumed; }
  /// SCCs the deterministic memory plan pre-degraded for --mem-budget-mb.
  size_t memPlanDegradedSCCs() const { return MemPlanDegraded; }
  /// Measured per-SCC analysis cost in microseconds, indexed by SCC id
  /// (parallel to `callGraph().sccs()`; >= 1 for every analysed SCC).
  /// These are the same measurements the `sched-profile` cache entry
  /// persists for the next run's upward ranks; together with the
  /// condensation's callee edges they let the scheduling bench replay a
  /// dispatch order's makespan deterministically, which wall clock cannot
  /// do when the host has fewer cores than workers.
  const std::vector<uint64_t> &sccCostsUs() const { return SCCCostUs; }

  //===--- Demand state (`--demand`, DESIGN.md section 13) ----------------===

  /// True when a demand spec was supplied and the relevance pre-pass ran.
  bool demandActive() const { return DemandOn; }
  /// Functions the pre-pass kept / skipped (both 0 when demand is off).
  size_t relevantFunctions() const { return RelevantFns; }
  size_t skippedFunctions() const { return SkippedFns; }
  /// Functions that directly contain a source site (seed count).
  size_t sourceFunctions() const { return Rel.SourceFns; }
  /// Functions that directly contain a syntactic sink site of a
  /// sink-sliced checker (0 when every checker fell back to source-only).
  size_t sinkFunctions() const { return Rel.SinkFns; }
  /// The per-checker relevance slice the pre-pass computed (or replayed
  /// from the cache) alongside the union, keyed by CheckerSpec::Name;
  /// nullptr when demand is off or the checker was not in the spec. Engine
  /// runs consume this instead of re-walking the call graph.
  const RelevanceSet *checkerRelevance(const std::string &Name) const {
    auto It = PerChecker.find(Name);
    return It == PerChecker.end() ? nullptr : &It->second;
  }
  /// How this run obtained its relevance sets: "off" (no demand), "cold"
  /// (computed with no usable persisted entry), "replay" (exact warm hit),
  /// "local" (edit-localised refresh from per-function records), or "full"
  /// (stale entry, full recompute) — the [demand] refresh-mode field.
  const std::string &relevanceRefreshMode() const { return RefreshMode; }
  /// Functions whose fingerprint the warm refresh found changed/new, and
  /// call edges it carried over from clean records (both 0 outside the
  /// refresh path) — the [demand] dirty-fns / edges-reused fields.
  size_t dirtyFunctions() const { return DirtyFns; }
  size_t reusedEdges() const { return ReusedEdges; }

  /// Wall seconds of the constructor's serial stages, for the [phase]
  /// stats line: SSA construction and the demand pre-pass (load / refresh
  /// / compute / store). The remainder of the constructor is the per-SCC
  /// pipeline itself.
  struct PhaseSeconds {
    double SSA = 0, Prepass = 0;
  };
  const PhaseSeconds &phaseSeconds() const { return Phases; }

private:
  /// One-shot note guards shared by every analyzeOne call of a run, so
  /// run-level degradations (wall clock, cancellation, memory backstop)
  /// log once instead of once per remaining function.
  struct RunState {
    std::atomic<bool> RunExhaustedNoted{false};
    std::atomic<bool> CancelNoted{false};
    std::atomic<bool> MemHardNoted{false};
  };
  /// Runs the whole per-function pipeline for \p F (including every
  /// degradation path) and fills its pre-created `Fns` slot. Never throws:
  /// failures are isolated per function, which is also what makes it safe
  /// as the body of a pool task. \p SCCId is F's condensation node;
  /// \p CalleeTainted is true when any transitive callee SCC degraded
  /// nondeterministically this run, which disables both cache probe and
  /// store for F (its cached artifacts assume healthy callee interfaces).
  /// \p FlushG, when non-null, receives the summary-cache store as a flush
  /// task (overlapping neighbouring SCC analysis) instead of writing
  /// synchronously; it must be the group the run waits on, so the write
  /// completes before the run does.
  void analyzeOne(ir::Function *F, size_t SCCId, bool CalleeTainted,
                  ResourceGovernor &Gov, const PipelineOptions &Opts,
                  transform::InterfaceMap &Interfaces, RunState &RS,
                  ThreadPool::TaskGroup *FlushG);

  /// Charges \p Info's points-to entries and SEG vertices to the governed-
  /// memory accounting (discharged again by the destructor).
  void chargeGoverned(const AnalyzedFunction &Info);

  /// Builds the deterministic memory-pressure plan: with a memory budget
  /// set, pre-degrades the largest not-yet-analyzed SCCs (by modelled byte
  /// estimate, ties to the smaller id) until the model fits the soft
  /// threshold. Purely a function of the subject and the budget, so the
  /// degraded-SCC set is identical across runs and job counts.
  void planMemoryPressure(const std::vector<ir::CallGraph::SCCNode> &SCCs,
                          ResourceGovernor &Gov);

  /// Post-analysis lifecycle bookkeeping: completion records, resume
  /// counting against the previous journal, journal rewrite.
  void finishLifecycle(const std::vector<ir::CallGraph::SCCNode> &SCCs);

  ir::Module &M;
  smt::ExprContext &Ctx;
  ir::SymbolMap Syms;
  std::unique_ptr<ir::CallGraph> CG;
  std::map<const ir::Function *, AnalyzedFunction> Fns;

  /// Incremental-reanalysis state (empty when no cache is configured).
  /// SCCKeys[I] is the transitive content key of condensation node I:
  /// config knobs + member fingerprints + callee-SCC keys. The taint
  /// vectors track *nondeterministic* degradation (failures, wall-clock
  /// budget skips) — deterministic degradations are covered by the config
  /// part of the key. Writes are ordered by the SCC-DAG schedule (a
  /// dependent reads them only after the acquire/release dependency
  /// decrement), so plain bytes suffice.
  SummaryCache *Cache = nullptr;
  std::vector<uint64_t> SCCKeys;
  std::vector<uint8_t> SCCOwnTaint; ///< This SCC degraded nondeterministically.
  std::vector<uint8_t> SCCTaint;    ///< Own taint OR any callee-SCC taint.
  /// Measured wall microseconds per SCC task (≥1 once it ran). Each slot is
  /// written by exactly the task that analysed the SCC and read only after
  /// the group wait; completed SCCs' costs feed the persisted scheduling
  /// profile (see finishLifecycle).
  std::vector<uint64_t> SCCCostUs;

  /// Run-lifecycle state (DESIGN.md section 12).
  std::vector<uint8_t> MemPlanDegrade; ///< Plan-degraded SCCs (empty = none).
  size_t MemPlanDegraded = 0;
  std::vector<SCCRecord> Records;
  uint64_t SubjectFP = 0;
  size_t Resumed = 0;
  /// Demand state: the relevance set and its summary counts (all inert
  /// when no DemandSpec was supplied).
  RelevanceSet Rel;
  std::map<std::string, RelevanceSet> PerChecker;
  bool DemandOn = false;
  size_t RelevantFns = 0, SkippedFns = 0;
  std::string RefreshMode = "off";
  size_t DirtyFns = 0, ReusedEdges = 0;
  /// Scheduling hint from the warm refresh: SCCs containing a dirty
  /// function, closed under callers over the condensation. Ranked first in
  /// steal mode so the re-analysed cone drains ahead of cached clean SCCs
  /// (pure dispatch order; empty when no refresh ran).
  std::vector<uint8_t> DirtySCCHint;
  PhaseSeconds Phases;
  /// The set the memory plan is keyed on (All = true models everything;
  /// see PipelineOptions::PlanDemand).
  RelevanceSet PlanRel;

  /// Governed-memory charges to discharge at destruction (atomic: charged
  /// from concurrent SCC tasks). Counts and measured bytes are ledgered
  /// separately: counts feed the accounting-balance assertions, bytes the
  /// governor.
  std::atomic<int64_t> PTCharge{0};
  std::atomic<int64_t> SEGCharge{0};
  std::atomic<int64_t> PTChargeBytes{0};
  std::atomic<int64_t> SEGChargeBytes{0};
};

} // namespace pinpoint::svfa

#endif // PINPOINT_SVFA_PIPELINE_H
