//===- svfa/Pipeline.h - Bottom-up module analysis pipeline ---------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the per-function stages of Pinpoint's architecture (paper Fig. 6)
/// bottom-up over the call graph:
///
///   SSA → call-site rewriting (callees' connectors) → local quasi
///   path-sensitive points-to (pass 1) → Mod/Ref → interface transform
///   (Aux params / returns) → points-to pass 2 → SEG.
///
/// The result, `AnalyzedModule`, owns per-function condition maps, final
/// points-to results, connector interfaces and SEGs — everything the global
/// value-flow stage (GlobalSVFA) and the checkers consume.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SVFA_PIPELINE_H
#define PINPOINT_SVFA_PIPELINE_H

#include "ir/CallGraph.h"
#include "ir/Conditions.h"
#include "seg/SEG.h"
#include "transform/Connectors.h"

#include <map>
#include <memory>

namespace pinpoint {
class ResourceGovernor;
}

namespace pinpoint::svfa {

/// Everything the pipeline derives for one function.
struct AnalyzedFunction {
  ir::Function *F = nullptr;
  std::unique_ptr<ir::ConditionMap> Conds;
  pta::PointsToResult PTA; ///< Final (post-transform) points-to results.
  transform::FunctionInterface Interface;
  std::unique_ptr<seg::SEG> Seg;
  /// The full per-function pipeline was not run (oversized function, budget
  /// exhaustion, or an isolated failure): the connector interface is empty
  /// — callers see no side effects — and points-to is empty, so the SEG
  /// carries only direct def-use flow. Seg is null only if even the
  /// conservative fallback failed; consumers must skip such functions.
  bool Degraded = false;
};

struct PipelineOptions {
  /// Quasi path sensitivity in the local points-to stages (ablation knob).
  bool UseLinearFilter = true;
  /// Budgets, degradation log and fault injection; nullptr = ungoverned.
  ResourceGovernor *Governor = nullptr;
};

/// Owns the analysed state of a whole module.
class AnalyzedModule {
public:
  AnalyzedModule(ir::Module &M, smt::ExprContext &Ctx,
                 const PipelineOptions &Opts = {});

  ir::Module &module() { return M; }
  const ir::CallGraph &callGraph() const { return *CG; }
  ir::SymbolMap &symbols() { return Syms; }
  smt::ExprContext &context() { return Ctx; }

  AnalyzedFunction &info(const ir::Function *F) { return Fns.at(F); }
  const AnalyzedFunction &info(const ir::Function *F) const {
    return Fns.at(F);
  }

  /// Functions in bottom-up order (same as the call graph's).
  const std::vector<ir::Function *> &bottomUpOrder() const {
    return CG->bottomUpOrder();
  }

  /// Aggregate SEG statistics (for the scalability benchmarks).
  size_t totalSEGEdges() const;
  size_t totalSEGVertices() const;

private:
  ir::Module &M;
  smt::ExprContext &Ctx;
  ir::SymbolMap Syms;
  std::unique_ptr<ir::CallGraph> CG;
  std::map<const ir::Function *, AnalyzedFunction> Fns;
};

} // namespace pinpoint::svfa

#endif // PINPOINT_SVFA_PIPELINE_H
