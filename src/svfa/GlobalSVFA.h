//===- svfa/GlobalSVFA.h - Demand-driven global value-flow analysis -------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compositional bug-detection stage of paper Section 3.3. Functions
/// are visited bottom-up; for each, the engine
///
///  * collects *source events* — checker sources created locally (e.g. the
///    argument of free()) or surfaced from callees via VF2/VF3 summaries;
///  * computes the conditional *value closure* of each event (all SSA
///    values holding the source value, connected through SEG flow edges and
///    callee VF1 summaries), pruning contradictory conditions with the
///    linear-time solver;
///  * matches closure values against sink uses (locally or via callee VF4
///    summaries), producing candidates whose full path condition —
///    Equation (1) locally, Equations (2)/(3) across calls via
///    context-cloned instantiation — is finally discharged by the staged
///    SMT solver;
///  * records this function's own VF1-VF4 and RV summaries for its callers.
///
/// Temporal checkers (use-after-free) additionally require the sink to be
/// CFG-reachable from the source event.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SVFA_GLOBALSVFA_H
#define PINPOINT_SVFA_GLOBALSVFA_H

#include "checkers/Checker.h"
#include "smt/Solver.h"
#include "svfa/Context.h"
#include "svfa/Pipeline.h"

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pinpoint {
class ResourceGovernor;
class ThreadPool;
}

namespace pinpoint::svfa {

/// A bug report.
struct Report {
  std::string Checker;
  std::string SourceFn;          ///< Function containing the source event.
  SourceLoc Source;              ///< The source statement (e.g. free site).
  SourceLoc Sink;                ///< The sink statement (e.g. deref site).
  std::string SinkFn;
  std::vector<std::string> Path; ///< Human-readable value-flow steps.
  /// Sat: the SMT stage confirmed the path condition (or path sensitivity
  /// is off). Unknown: the solver gave up — the report is kept soundily but
  /// tagged so consumers can rank it below confirmed findings.
  smt::SatResult Verdict = smt::SatResult::Sat;
};

struct GlobalOptions {
  int MaxContextDepth = 6; ///< Nested calling contexts (paper Section 5.1).
  /// Path-sensitive mode: discharge candidates with the SMT stage. When
  /// false the engine reports every candidate (the SVF-like ablation).
  bool PathSensitive = true;
  /// Linear pre-filter in the staged solver (ablation knob).
  bool UseLinearFilter = true;
  /// Shared verdict cache in the staged solver: one QueryCache per run,
  /// consulted by the inline path and every parallel discharge chunk
  /// (ablation knob; CLI --solver-cache).
  bool SolverCache = true;
  /// Conjunct slicing in the staged solver: variable-disjoint components
  /// discharged independently (ablation knob; toggled with SolverCache by
  /// the CLI, separable here for the four-way ablation bench).
  bool SolverSlicing = true;
  /// Demand-driven mode: skip summary construction for functions the
  /// relevance pre-pass (svfa/Demand.h) proves irrelevant to this
  /// checker. The engine computes its own per-checker relevance set (a
  /// subset of the pipeline's union set), so results are byte-identical
  /// to the exhaustive run either way. Off by default for library users;
  /// the CLI defaults it on.
  bool Demand = false;
  /// Budgets, degradation log and fault injection (see
  /// support/ResourceGovernor.h); nullptr = ungoverned.
  ResourceGovernor *Governor = nullptr;
  /// Worker pool for parallel candidate discharge: generation stays
  /// serial (summaries are order-dependent), but the SMT queries of the
  /// collected candidates fan out one task per chunk and commit in
  /// generation order, so the report list is identical to the serial
  /// path. nullptr (or a 1-worker pool) = solve inline as always.
  ThreadPool *Pool = nullptr;
};

class GlobalSVFA {
public:
  GlobalSVFA(AnalyzedModule &AM, const checkers::CheckerSpec &Spec,
             GlobalOptions Opts = {});
  ~GlobalSVFA();

  /// Runs the analysis and returns the surviving reports.
  std::vector<Report> run();

  /// Live counters. The fields are atomics so an observer thread can poll
  /// `stats()` while `run()` is in flight (progress reporting) without a
  /// data race; copying takes a relaxed per-field snapshot.
  struct Stats {
    std::atomic<uint64_t> Events{0};
    std::atomic<uint64_t> Candidates{0};
    std::atomic<uint64_t> SolverSat{0};
    std::atomic<uint64_t> SolverUnsat{0};
    /// Candidates whose verdict came back Unknown (kept, tagged).
    std::atomic<uint64_t> SolverUnknown{0};
    std::atomic<uint64_t> VF1{0}, VF2{0}, VF3{0}, VF4{0};
    std::atomic<uint64_t> ClosureSteps{0};
    /// Flows/candidates killed inline by the linear-time filter.
    std::atomic<uint64_t> LinearPruned{0};
    /// Functions whose analysis threw and was isolated (skipped).
    std::atomic<uint64_t> IsolatedFailures{0};

    Stats() = default;
    Stats(const Stats &O) { *this = O; }
    Stats &operator=(const Stats &O) {
      if (this != &O) {
        auto Snap = [](const std::atomic<uint64_t> &A) {
          return A.load(std::memory_order_relaxed);
        };
        Events = Snap(O.Events);
        Candidates = Snap(O.Candidates);
        SolverSat = Snap(O.SolverSat);
        SolverUnsat = Snap(O.SolverUnsat);
        SolverUnknown = Snap(O.SolverUnknown);
        VF1 = Snap(O.VF1);
        VF2 = Snap(O.VF2);
        VF3 = Snap(O.VF3);
        VF4 = Snap(O.VF4);
        ClosureSteps = Snap(O.ClosureSteps);
        LinearPruned = Snap(O.LinearPruned);
        IsolatedFailures = Snap(O.IsolatedFailures);
      }
      return *this;
    }
  };
  const Stats &stats() const { return S; }
  const smt::StagedSolver::Stats &solverStats() const;

private:
  class Impl;
  std::unique_ptr<Impl> P;
  Stats S;
};

/// Convenience: runs one checker over parsed source text. Used by the
/// examples and tests.
std::vector<Report> checkModule(ir::Module &M, smt::ExprContext &Ctx,
                                const checkers::CheckerSpec &Spec,
                                GlobalOptions Opts = {});

} // namespace pinpoint::svfa

#endif // PINPOINT_SVFA_GLOBALSVFA_H
