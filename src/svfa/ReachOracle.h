//===- svfa/ReachOracle.h - CFG reachability with topological pruning -----===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function CFG reachability oracle: can control reach statement B
/// strictly after statement A? Used by temporal checkers (use-after-free)
/// to order source events before sink uses.
///
/// Two layers, both exact:
///
///  1. A condensation interval check answers most queries O(1): block
///     component ids are Tarjan completion order, so a cross-component
///     edge always goes to a *smaller* id — `comp(To) > comp(From)` proves
///     unreachability without touching a bitset, and two distinct blocks
///     sharing a (necessarily cyclic) component are mutually reachable.
///     Subject CFGs are acyclic (loops unroll at lowering), making the
///     no-path fast path the common case.
///
///  2. Only ties (`comp(To) < comp(From)`) fall through to the bitset DFS —
///     and its rows are built lazily, one row per *queried* source block,
///     so functions whose events never consult the oracle (or consult it
///     from few blocks) never pay the O(B^2/8) matrix. Row builds count
///     into the `svfa.lazy-reach-rows` stat.
///
/// Construction itself is lazy too: the per-function Tarjan pass runs at
/// the first cross-block `reaches()` query, not when the oracle object is
/// made — a non-temporal checker (or a function whose events all share a
/// block, answered by statement order alone) never pays it. Builds count
/// into `svfa.reach-oracles-built`.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SVFA_REACHORACLE_H
#define PINPOINT_SVFA_REACHORACLE_H

#include "ir/IR.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace pinpoint::svfa {

class ReachOracle {
public:
  explicit ReachOracle(const ir::Function &F);

  /// True when control can reach \p B strictly after \p A. Not const: the
  /// first query from a block materialises that block's row (the engine's
  /// candidate generation is serial, so no locking is needed).
  bool reaches(const ir::Stmt *A, const ir::Stmt *B);

private:
  /// Runs the deferred block indexing + Tarjan condensation on the first
  /// cross-block query (same-block queries need only statement order).
  void ensureBuilt();
  void buildRow(uint32_t Row);

  bool Built = false;
  const ir::Function &F;
  std::unordered_map<const ir::BasicBlock *, uint32_t> Index;
  /// Condensation component of each block, in Tarjan completion order:
  /// any CFG path from u to a different component lands on a smaller id.
  std::vector<uint32_t> Comp;
  /// One bitset row per *queried* source block; unqueried rows stay
  /// unallocated (a function never consulted costs only the Comp vector).
  std::vector<std::vector<uint64_t>> Rows;
  std::vector<uint8_t> RowBuilt; ///< Which rows are materialised.
  size_t Words = 0;              ///< Words per row.
};

} // namespace pinpoint::svfa

#endif // PINPOINT_SVFA_REACHORACLE_H
