//===- svfa/Pipeline.cpp -----------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "svfa/Pipeline.h"
#include "ir/SSA.h"
#include "support/ResourceGovernor.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"

#include <functional>
#include <stdexcept>

namespace pinpoint::svfa {

namespace {

size_t countStmts(const ir::Function &F) {
  size_t N = 0;
  for (const ir::BasicBlock *B : F.blocks())
    N += B->stmts().size();
  return N;
}

} // namespace

void AnalyzedModule::analyzeOne(ir::Function *F, ResourceGovernor &Gov,
                                const PipelineOptions &Opts,
                                transform::InterfaceMap &Interfaces,
                                std::atomic<bool> &RunExhaustedNoted) {
  AnalyzedFunction Info;
  Info.F = F;

  // Budget gates: oversized functions and post-deadline stragglers get
  // the conservative fallback instead of the full per-function pipeline.
  bool SkipFull = false;
  size_t NumStmts = countStmts(*F);
  if (Gov.budget().MaxFunctionStmts > 0 &&
      NumStmts > Gov.budget().MaxFunctionStmts) {
    Gov.note(DegradationKind::FunctionOversized, "pipeline", F->name(),
             std::to_string(NumStmts) + " stmts > cap " +
                 std::to_string(Gov.budget().MaxFunctionStmts));
    SkipFull = true;
  } else if (Gov.runExpired()) {
    if (!RunExhaustedNoted.exchange(true))
      Gov.note(DegradationKind::RunBudgetExhausted, "pipeline", "",
               "wall clock expired; remaining functions degraded");
    SkipFull = true;
  }

  if (!SkipFull) {
    try {
      if (Gov.faults().injectPipelineThrow(F->name())) {
        Gov.note(DegradationKind::InjectedFault, "pipeline", F->name(),
                 "forced pipeline throw");
        throw std::runtime_error("injected pipeline fault");
      }

      // Mirror the already-transformed callees' connectors at call sites,
      // so side effects compose transitively up the call chain. Under the
      // SCC-DAG schedule every callee task has completed (the dependency
      // decrement is the happens-before edge), so the reads are safe.
      transform::rewriteCallSites(*F, *CG, Interfaces);

      Info.Conds = std::make_unique<ir::ConditionMap>(*F, Syms);

      // Pass 1: discover this function's own side effects.
      pta::PTAConfig Cfg1;
      Cfg1.UseLinearFilter = Opts.UseLinearFilter;
      Cfg1.MaxSteps = Gov.budget().MaxPTASteps;
      pta::PointsToResult Pass1 = pta::runPointsTo(*F, Syms, *Info.Conds, Cfg1);

      // Materialise the connector interface (Fig. 3(a)).
      Info.Interface = transform::applyInterfaceTransform(*F, Pass1);
      Interfaces.set(F, Info.Interface);

      // Pass 2: final points-to with the Aux bindings in place.
      pta::PTAConfig Cfg2;
      Cfg2.UseLinearFilter = Opts.UseLinearFilter;
      Cfg2.MaxSteps = Gov.budget().MaxPTASteps;
      Cfg2.AuxParams = Info.Interface.auxBindings();
      Info.PTA = pta::runPointsTo(*F, Syms, *Info.Conds, Cfg2);

      if (Pass1.truncated() || Info.PTA.truncated())
        Gov.note(DegradationKind::PTATruncated, "pipeline", F->name(),
                 "points-to step budget hit");

      Info.Seg = std::make_unique<seg::SEG>(*F, Syms, *Info.Conds, Info.PTA);
      Counters::get().add("seg.edges",
                          static_cast<int64_t>(Info.Seg->numEdges()));

      Fns.at(F) = std::move(Info);
      return;
    } catch (const std::exception &Ex) {
      Gov.note(DegradationKind::FunctionFailed, "pipeline", F->name(),
               Ex.what());
      Info = AnalyzedFunction();
      Info.F = F;
    }
  }

  // Conservative fallback: no connectors (callers see no side effects),
  // empty points-to (SEG keeps only direct def-use flow). Best effort —
  // a degraded function can still surface its local value-flow bugs.
  Info.Degraded = true;
  try {
    Info.Conds = std::make_unique<ir::ConditionMap>(*F, Syms);
    Info.Interface = transform::FunctionInterface();
    Info.PTA = pta::PointsToResult();
    Info.Seg = std::make_unique<seg::SEG>(*F, Syms, *Info.Conds, Info.PTA);
  } catch (const std::exception &Ex) {
    Gov.note(DegradationKind::FunctionSkipped, "pipeline", F->name(),
             std::string("fallback failed: ") + Ex.what());
    Info.Conds = nullptr;
    Info.Seg = nullptr;
  }
  Interfaces.set(F, Info.Interface);
  Fns.at(F) = std::move(Info);
}

AnalyzedModule::AnalyzedModule(ir::Module &M, smt::ExprContext &Ctx,
                               const PipelineOptions &Opts)
    : M(M), Ctx(Ctx), Syms(Ctx) {
  ResourceGovernor &Gov =
      Opts.Governor ? *Opts.Governor : ResourceGovernor::ungoverned();

  // SSA first for every function — the call graph and rewriting do not
  // change CFG shape, and rewriting emits SSA-compatible fresh variables.
  for (ir::Function *F : M.functions()) {
    F->recomputeCFGEdges();
    ir::constructSSA(*F);
  }

  CG = std::make_unique<ir::CallGraph>(M);

  // Pre-create every function's result slot and interface slot so the
  // parallel schedule mutates fixed storage, never a growing map.
  transform::InterfaceMap Interfaces(M);
  for (ir::Function *F : CG->bottomUpOrder())
    Fns[F];

  std::atomic<bool> RunExhaustedNoted{false};

  if (!Opts.Pool || Opts.Pool->workers() <= 1) {
    // Serial: the historical bottom-up loop, bit-for-bit.
    for (ir::Function *F : CG->bottomUpOrder())
      analyzeOne(F, Gov, Opts, Interfaces, RunExhaustedNoted);
    return;
  }

  // Parallel: walk the call-graph condensation as a DAG. Each SCC is one
  // task; finishing a task decrements its dependents' counts and spawns
  // the newly-ready ones, so independent call-tree branches overlap while
  // every caller still starts after all its callees.
  const std::vector<ir::CallGraph::SCCNode> &SCCs = CG->sccs();
  std::vector<std::atomic<size_t>> DepsLeft(SCCs.size());
  std::vector<std::vector<size_t>> Dependents(SCCs.size());
  for (size_t I = 0; I < SCCs.size(); ++I) {
    DepsLeft[I].store(SCCs[I].CalleeSCCs.size(), std::memory_order_relaxed);
    for (size_t Callee : SCCs[I].CalleeSCCs)
      Dependents[Callee].push_back(I);
  }

  ThreadPool::TaskGroup G(*Opts.Pool);
  std::function<void(size_t)> RunSCC = [&](size_t I) {
    for (ir::Function *F : SCCs[I].Members)
      analyzeOne(F, Gov, Opts, Interfaces, RunExhaustedNoted);
    for (size_t Dep : Dependents[I])
      // acq_rel: publishes this SCC's interfaces/results to whichever task
      // performs the final decrement and runs the dependent.
      if (DepsLeft[Dep].fetch_sub(1, std::memory_order_acq_rel) == 1)
        G.spawn([&RunSCC, Dep] { RunSCC(Dep); });
  };
  // Roots are identified structurally (no cross-SCC callees), never by
  // reading DepsLeft: a fast leaf task finishing mid-loop drops a
  // dependent's counter to zero and spawns it via fetch_sub, and a
  // counter-based root scan racing with that would spawn the same SCC a
  // second time (two pipelines mutating one function's IR).
  for (size_t I = 0; I < SCCs.size(); ++I)
    if (SCCs[I].CalleeSCCs.empty())
      G.spawn([&RunSCC, I] { RunSCC(I); });
  G.wait();
}

size_t AnalyzedModule::totalSEGEdges() const {
  size_t N = 0;
  for (auto &[F, Info] : Fns)
    if (Info.Seg)
      N += Info.Seg->numEdges();
  return N;
}

size_t AnalyzedModule::totalSEGVertices() const {
  size_t N = 0;
  for (auto &[F, Info] : Fns)
    if (Info.Seg)
      N += Info.Seg->numVertices();
  return N;
}

} // namespace pinpoint::svfa
