//===- svfa/Pipeline.cpp -----------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "svfa/Pipeline.h"
#include "ir/SSA.h"
#include "support/ResourceGovernor.h"
#include "support/Statistics.h"

#include <stdexcept>

namespace pinpoint::svfa {

namespace {

size_t countStmts(const ir::Function &F) {
  size_t N = 0;
  for (const ir::BasicBlock *B : F.blocks())
    N += B->stmts().size();
  return N;
}

} // namespace

AnalyzedModule::AnalyzedModule(ir::Module &M, smt::ExprContext &Ctx,
                               const PipelineOptions &Opts)
    : M(M), Ctx(Ctx), Syms(Ctx) {
  ResourceGovernor &Gov =
      Opts.Governor ? *Opts.Governor : ResourceGovernor::ungoverned();

  // SSA first for every function — the call graph and rewriting do not
  // change CFG shape, and rewriting emits SSA-compatible fresh variables.
  for (ir::Function *F : M.functions()) {
    F->recomputeCFGEdges();
    ir::constructSSA(*F);
  }

  CG = std::make_unique<ir::CallGraph>(M);

  bool RunExhaustedNoted = false;
  std::map<const ir::Function *, transform::FunctionInterface> Interfaces;
  for (ir::Function *F : CG->bottomUpOrder()) {
    AnalyzedFunction Info;
    Info.F = F;

    // Budget gates: oversized functions and post-deadline stragglers get
    // the conservative fallback instead of the full per-function pipeline.
    bool SkipFull = false;
    size_t NumStmts = countStmts(*F);
    if (Gov.budget().MaxFunctionStmts > 0 &&
        NumStmts > Gov.budget().MaxFunctionStmts) {
      Gov.note(DegradationKind::FunctionOversized, "pipeline",
               F->name() + ": " + std::to_string(NumStmts) + " stmts > cap " +
                   std::to_string(Gov.budget().MaxFunctionStmts));
      SkipFull = true;
    } else if (Gov.runExpired()) {
      if (!RunExhaustedNoted) {
        Gov.note(DegradationKind::RunBudgetExhausted, "pipeline",
                 "wall clock expired at " + F->name() +
                     "; remaining functions degraded");
        RunExhaustedNoted = true;
      }
      SkipFull = true;
    }

    if (!SkipFull) {
      try {
        if (Gov.faults().injectPipelineThrow(F->name())) {
          Gov.note(DegradationKind::InjectedFault, "pipeline", F->name());
          throw std::runtime_error("injected pipeline fault");
        }

        // Mirror the already-transformed callees' connectors at call sites,
        // so side effects compose transitively up the call chain.
        transform::rewriteCallSites(*F, *CG, Interfaces);

        Info.Conds = std::make_unique<ir::ConditionMap>(*F, Syms);

        // Pass 1: discover this function's own side effects.
        pta::PTAConfig Cfg1;
        Cfg1.UseLinearFilter = Opts.UseLinearFilter;
        Cfg1.MaxSteps = Gov.budget().MaxPTASteps;
        pta::PointsToResult Pass1 =
            pta::runPointsTo(*F, Syms, *Info.Conds, Cfg1);

        // Materialise the connector interface (Fig. 3(a)).
        Info.Interface = transform::applyInterfaceTransform(*F, Pass1);
        Interfaces[F] = Info.Interface;

        // Pass 2: final points-to with the Aux bindings in place.
        pta::PTAConfig Cfg2;
        Cfg2.UseLinearFilter = Opts.UseLinearFilter;
        Cfg2.MaxSteps = Gov.budget().MaxPTASteps;
        Cfg2.AuxParams = Info.Interface.auxBindings();
        Info.PTA = pta::runPointsTo(*F, Syms, *Info.Conds, Cfg2);

        if (Pass1.truncated() || Info.PTA.truncated())
          Gov.note(DegradationKind::PTATruncated, "pipeline", F->name());

        Info.Seg = std::make_unique<seg::SEG>(*F, Syms, *Info.Conds, Info.PTA);
        Counters::get().add("seg.edges",
                            static_cast<int64_t>(Info.Seg->numEdges()));

        Fns.emplace(F, std::move(Info));
        continue;
      } catch (const std::exception &Ex) {
        Gov.note(DegradationKind::FunctionFailed, "pipeline",
                 F->name() + ": " + Ex.what());
        Info = AnalyzedFunction();
        Info.F = F;
      }
    }

    // Conservative fallback: no connectors (callers see no side effects),
    // empty points-to (SEG keeps only direct def-use flow). Best effort —
    // a degraded function can still surface its local value-flow bugs.
    Info.Degraded = true;
    try {
      Info.Conds = std::make_unique<ir::ConditionMap>(*F, Syms);
      Info.Interface = transform::FunctionInterface();
      Info.PTA = pta::PointsToResult();
      Info.Seg = std::make_unique<seg::SEG>(*F, Syms, *Info.Conds, Info.PTA);
    } catch (const std::exception &Ex) {
      Gov.note(DegradationKind::FunctionSkipped, "pipeline",
               F->name() + ": fallback failed: " + Ex.what());
      Info.Conds = nullptr;
      Info.Seg = nullptr;
    }
    Interfaces[F] = Info.Interface;
    Fns.emplace(F, std::move(Info));
  }
}

size_t AnalyzedModule::totalSEGEdges() const {
  size_t N = 0;
  for (auto &[F, Info] : Fns)
    if (Info.Seg)
      N += Info.Seg->numEdges();
  return N;
}

size_t AnalyzedModule::totalSEGVertices() const {
  size_t N = 0;
  for (auto &[F, Info] : Fns)
    if (Info.Seg)
      N += Info.Seg->numVertices();
  return N;
}

} // namespace pinpoint::svfa
