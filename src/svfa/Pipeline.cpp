//===- svfa/Pipeline.cpp -----------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "svfa/Pipeline.h"
#include "ir/Fingerprint.h"
#include "ir/SSA.h"
#include "support/Hasher.h"
#include "support/ResourceGovernor.h"
#include "support/RunJournal.h"
#include "support/Statistics.h"
#include "support/SummaryCache.h"
#include "support/ThreadPool.h"
#include "svfa/SummaryIO.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

namespace pinpoint::svfa {

namespace {

size_t countStmts(const ir::Function &F) {
  size_t N = 0;
  for (const ir::BasicBlock *B : F.blocks())
    N += B->stmts().size();
  return N;
}

} // namespace

void AnalyzedModule::analyzeOne(ir::Function *F, size_t SCCId,
                                bool CalleeTainted, ResourceGovernor &Gov,
                                const PipelineOptions &Opts,
                                transform::InterfaceMap &Interfaces,
                                RunState &RS,
                                ThreadPool::TaskGroup *FlushG) {
  // Demand skip: the relevance pre-pass proved no enabled checker can need
  // this function. Nothing runs — no pacing, no budget gates, no cache
  // probe or store, no degradation note. Its interface slot stays unset,
  // which is safe because every *analyzed* caller is itself relevant and
  // relevance is callee-closed: an analyzed function never reads a skipped
  // callee's interface.
  if (DemandOn && !Rel.relevant(F)) {
    AnalyzedFunction Skip;
    Skip.F = F;
    Skip.Skipped = true;
    Fns.at(F) = std::move(Skip);
    return;
  }

  // Fault-injected pacing: slows every function down so lifecycle tests can
  // interrupt a run mid-flight reproducibly.
  if (uint64_t Pace = Gov.faults().paceFunctionMs())
    std::this_thread::sleep_for(std::chrono::milliseconds(Pace));

  AnalyzedFunction Info;
  Info.F = F;

  // Budget gates: oversized functions and post-deadline stragglers get
  // the conservative fallback instead of the full per-function pipeline.
  // Oversized is a deterministic function of the (key-hashed) budget, so
  // it does not taint; a wall-clock skip is not reproducible and does.
  // Cancellation and the reactive memory backstop are likewise run-local
  // accidents and taint; the pre-computed memory plan is deterministic but
  // still taints — the issue's rule is that memory-degraded chains neither
  // probe nor populate the summary cache, and taint is that mechanism.
  bool SkipFull = false;
  size_t NumStmts = countStmts(*F);
  if (Gov.budget().MaxFunctionStmts > 0 &&
      NumStmts > Gov.budget().MaxFunctionStmts) {
    Gov.note(DegradationKind::FunctionOversized, "pipeline", F->name(),
             std::to_string(NumStmts) + " stmts > cap " +
                 std::to_string(Gov.budget().MaxFunctionStmts));
    SkipFull = true;
  } else if (Gov.cancelled()) {
    if (!RS.CancelNoted.exchange(true))
      Gov.note(DegradationKind::Cancelled, "pipeline", "",
               "cancellation requested; remaining functions degraded");
    SkipFull = true;
    SCCOwnTaint[SCCId] = 1;
  } else if (Gov.runExpired()) {
    if (!RS.RunExhaustedNoted.exchange(true))
      Gov.note(DegradationKind::RunBudgetExhausted, "pipeline", "",
               "wall clock expired; remaining functions degraded");
    SkipFull = true;
    SCCOwnTaint[SCCId] = 1;
  } else if (!MemPlanDegrade.empty() && MemPlanDegrade[SCCId]) {
    Gov.note(DegradationKind::MemoryPressure, "pipeline", F->name(),
             "memory plan: projected footprint over --mem-budget-mb");
    SkipFull = true;
    SCCOwnTaint[SCCId] = 1;
  } else if (Gov.memHardExceeded()) {
    if (!RS.MemHardNoted.exchange(true))
      Gov.note(DegradationKind::MemoryPressure, "pipeline", "",
               "governed bytes over --mem-budget-mb; remaining functions "
               "degraded");
    SkipFull = true;
    SCCOwnTaint[SCCId] = 1;
  }

  if (!SkipFull) {
    try {
      if (Gov.faults().injectPipelineThrow(F->name())) {
        Gov.note(DegradationKind::InjectedFault, "pipeline", F->name(),
                 "forced pipeline throw");
        throw std::runtime_error("injected pipeline fault");
      }

      // Mirror the already-transformed callees' connectors at call sites,
      // so side effects compose transitively up the call chain. Under the
      // SCC-DAG schedule every callee task has completed (the dependency
      // decrement is the happens-before edge), so the reads are safe.
      transform::rewriteCallSites(*F, *CG, Interfaces);

      Info.Conds = std::make_unique<ir::ConditionMap>(*F, Syms);

      // Cache probe: on a key match, replay the stored interface + load
      // dependences instead of running both points-to passes. Any
      // integrity failure falls back to the full rebuild below — the cache
      // can cost a rebuild, never a wrong result.
      if (Cache && !CalleeTainted) {
        bool Probe = true;
        if (Gov.faults().injectCacheReadFault(F->name())) {
          Gov.note(DegradationKind::InjectedFault, "cache", F->name(),
                   "forced cache read fault");
          Counters::get().add("cache.corrupt", 1);
          Counters::get().add("cache.misses", 1);
          Probe = false;
        }
        if (Probe) {
          SummaryCache::Loaded L = Cache->load(F->name(), SCCKeys[SCCId]);
          if (L.Status == SummaryCache::LoadStatus::Ok) {
            FunctionSummaryEntry E;
            std::string Err;
            if (decodeFunctionSummary(L.Payload, E, Err) &&
                validateSummary(E, *F, Err)) {
              replayFunctionSummary(*F, E, Syms, Info.Interface, Info.PTA);
              Interfaces.set(F, Info.Interface);
              if (E.NoteTruncated)
                Gov.note(DegradationKind::PTATruncated, "pipeline", F->name(),
                         "points-to step budget hit");
              Info.Seg =
                  std::make_unique<seg::SEG>(*F, Syms, *Info.Conds, Info.PTA);
              Counters::get().add("seg.edges",
                                  static_cast<int64_t>(Info.Seg->numEdges()));
              Counters::get().add("cache.hits", 1);
              chargeGoverned(Info);
              Fns.at(F) = std::move(Info);
              return;
            }
            Gov.note(DegradationKind::CacheCorrupt, "cache", F->name(), Err);
            Counters::get().add("cache.corrupt", 1);
            Counters::get().add("cache.misses", 1);
          } else if (L.Status == SummaryCache::LoadStatus::Corrupt) {
            Gov.note(DegradationKind::CacheCorrupt, "cache", F->name(),
                     L.Detail);
            Counters::get().add("cache.corrupt", 1);
            Counters::get().add("cache.misses", 1);
          } else if (L.Status == SummaryCache::LoadStatus::Stale) {
            Counters::get().add("cache.invalidated", 1);
            Counters::get().add("cache.misses", 1);
          } else {
            Counters::get().add("cache.misses", 1);
          }
        }
      }

      // Pass 1: discover this function's own side effects.
      pta::PTAConfig Cfg1;
      Cfg1.UseLinearFilter = Opts.UseLinearFilter;
      Cfg1.MaxSteps = Gov.budget().MaxPTASteps;
      pta::PointsToResult Pass1 = pta::runPointsTo(*F, Syms, *Info.Conds, Cfg1);

      // Materialise the connector interface (Fig. 3(a)).
      Info.Interface = transform::applyInterfaceTransform(*F, Pass1);
      Interfaces.set(F, Info.Interface);

      // Pass 2: final points-to with the Aux bindings in place.
      pta::PTAConfig Cfg2;
      Cfg2.UseLinearFilter = Opts.UseLinearFilter;
      Cfg2.MaxSteps = Gov.budget().MaxPTASteps;
      Cfg2.AuxParams = Info.Interface.auxBindings();
      Info.PTA = pta::runPointsTo(*F, Syms, *Info.Conds, Cfg2);

      if (Pass1.truncated() || Info.PTA.truncated())
        Gov.note(DegradationKind::PTATruncated, "pipeline", F->name(),
                 "points-to step budget hit");

      Info.Seg = std::make_unique<seg::SEG>(*F, Syms, *Info.Conds, Info.PTA);
      Counters::get().add("seg.edges",
                          static_cast<int64_t>(Info.Seg->numEdges()));

      // Persist the freshly-built artifacts. Tainted chains are never
      // stored: their interfaces reflect this run's nondeterministic
      // degradation, not the keyed source content. Unrepresentable
      // summaries are silently skipped (the function just stays uncached).
      if (Cache && Cache->writable() && !CalleeTainted &&
          !SCCOwnTaint[SCCId]) {
        std::vector<uint8_t> Payload;
        if (encodeFunctionSummary(*F, Info, Syms,
                                  Pass1.truncated() || Info.PTA.truncated(),
                                  Payload)) {
          if (FlushG) {
            // Flush task: the entry's file I/O overlaps neighbouring SCC
            // analysis. Same task group as the schedule, so both the run's
            // wait and the SIGINT drain (which helps exactly its own
            // group's tasks) cover the write; counters land before stats
            // are read.
            SummaryCache *C = Cache;
            FlushG->spawn([C, Name = F->name(), Key = SCCKeys[SCCId],
                           Payload = std::move(Payload)] {
              if (C->store(Name, Key, Payload)) {
                Counters::get().add("cache.stored", 1);
                Counters::get().add("sched.flushed", 1);
              }
            });
          } else if (Cache->store(F->name(), SCCKeys[SCCId], Payload)) {
            Counters::get().add("cache.stored", 1);
          }
        }
      }

      chargeGoverned(Info);
      Fns.at(F) = std::move(Info);
      return;
    } catch (const std::exception &Ex) {
      Gov.note(DegradationKind::FunctionFailed, "pipeline", F->name(),
               Ex.what());
      SCCOwnTaint[SCCId] = 1;
      Info = AnalyzedFunction();
      Info.F = F;
    }
  }

  // Conservative fallback: no connectors (callers see no side effects),
  // empty points-to (SEG keeps only direct def-use flow). Best effort —
  // a degraded function can still surface its local value-flow bugs.
  Info.Degraded = true;
  try {
    Info.Conds = std::make_unique<ir::ConditionMap>(*F, Syms);
    Info.Interface = transform::FunctionInterface();
    Info.PTA = pta::PointsToResult();
    Info.Seg = std::make_unique<seg::SEG>(*F, Syms, *Info.Conds, Info.PTA);
  } catch (const std::exception &Ex) {
    Gov.note(DegradationKind::FunctionSkipped, "pipeline", F->name(),
             std::string("fallback failed: ") + Ex.what());
    SCCOwnTaint[SCCId] = 1;
    Info.Conds = nullptr;
    Info.Seg = nullptr;
  }
  Interfaces.set(F, Info.Interface);
  chargeGoverned(Info);
  Fns.at(F) = std::move(Info);
}

void AnalyzedModule::chargeGoverned(const AnalyzedFunction &Info) {
  MemStats &MS = MemStats::get();
  int64_t PT = static_cast<int64_t>(Info.PTA.numGovernedEntries());
  int64_t PTB = static_cast<int64_t>(Info.PTA.memoryBytes());
  if (PT || PTB) {
    MS.notePTEntries(PT, PTB);
    PTCharge.fetch_add(PT, std::memory_order_relaxed);
    PTChargeBytes.fetch_add(PTB, std::memory_order_relaxed);
  }
  if (Info.Seg) {
    int64_t SG = static_cast<int64_t>(Info.Seg->numVertices());
    int64_t SGB = static_cast<int64_t>(Info.Seg->memoryBytes());
    if (SG || SGB) {
      MS.noteSEGNodes(SG, SGB);
      SEGCharge.fetch_add(SG, std::memory_order_relaxed);
      SEGChargeBytes.fetch_add(SGB, std::memory_order_relaxed);
    }
  }
}

void AnalyzedModule::planMemoryPressure(
    const std::vector<ir::CallGraph::SCCNode> &SCCs, ResourceGovernor &Gov) {
  int64_t BudgetMB = Gov.budget().MemBudgetMB;
  if (BudgetMB <= 0 || SCCs.empty())
    return;

  // Byte model: the per-function pipeline's footprint is dominated by the
  // conditional points-to sets and the SEG, both roughly linear in statement
  // count; the fallback keeps only the SSA'd IR and a def-use SEG. The
  // estimate only has to *rank* SCCs consistently — it is a pure function of
  // the subject and the budget, never of measured usage, so the plan (and
  // with it the degraded-SCC set) is identical across runs and job counts.
  constexpr int64_t FnBaseBytes = 16384;
  constexpr int64_t FullBytesPerStmt = 4096;
  constexpr int64_t FallbackBytesPerStmt = 256;

  std::vector<int64_t> Est(SCCs.size()), Fallback(SCCs.size());
  int64_t Total = 0;
  for (size_t I = 0; I < SCCs.size(); ++I) {
    int64_t Full = 0, Fb = 0;
    for (const ir::Function *F : SCCs[I].Members) {
      // The plan is keyed on PlanRel, not on this run's analysis slice:
      // functions outside the planning set contribute nothing (relevance
      // is SCC-uniform: one member relevant means all are). With the CLI's
      // mode-independent planning spec, PlanRel is the same union-relevant
      // set under --demand=on and off, so the plan — and the pre-degraded
      // SCC set — is identical across modes, runs and job counts.
      if (!PlanRel.relevant(F))
        continue;
      int64_t Stmts = static_cast<int64_t>(countStmts(*F));
      Full += FnBaseBytes + Stmts * FullBytesPerStmt;
      Fb += FnBaseBytes / 4 + Stmts * FallbackBytesPerStmt;
    }
    Est[I] = Full;
    Fallback[I] = Fb;
    Total += Full;
  }

  // Soft threshold at 80% of the budget leaves headroom for everything the
  // model does not see (expression arena, checker state). Degrade the
  // largest projected SCC first — one big SCC displaced buys the most
  // relief — with ties broken towards the smaller id for determinism.
  const int64_t Soft = BudgetMB * 1024 * 1024 * 8 / 10;
  MemPlanDegrade.assign(SCCs.size(), 0);
  while (Total > Soft) {
    size_t Best = SCCs.size();
    // Est == 0 marks plan-irrelevant SCCs: degrading one frees nothing, so
    // they are never selected (and could otherwise spin this loop).
    for (size_t I = 0; I < SCCs.size(); ++I)
      if (!MemPlanDegrade[I] && Est[I] > 0 &&
          (Best == SCCs.size() || Est[I] > Est[Best]))
        Best = I;
    if (Best == SCCs.size())
      break; // Everything degraded; the plan can do no more.
    MemPlanDegrade[Best] = 1;
    ++MemPlanDegraded;
    Total -= Est[Best] - Fallback[Best];
  }
  if (MemPlanDegraded == 0)
    MemPlanDegrade.clear();
}

void AnalyzedModule::finishLifecycle(
    const std::vector<ir::CallGraph::SCCNode> &SCCs) {
  if (!Cache)
    return;

  // Free prefetched entry bytes that were never consumed (tainted or
  // degraded chains whose probe was skipped, fault-injected probes).
  Cache->dropPrefetched();

  // Resume accounting: SCCs whose key the previous run (same subject, same
  // cache directory) already completed are the ones this run replays
  // instead of recomputing — the `resumed-sccs` stat.
  RunJournal Prev;
  if (Prev.load(Cache->directory()) && Prev.SubjectFingerprint == SubjectFP) {
    std::unordered_set<uint64_t> Done;
    for (const RunJournal::Entry &E : Prev.SCCs)
      if (E.Completed)
        Done.insert(E.Key);
    for (uint64_t K : SCCKeys)
      if (Done.count(K))
        ++Resumed;
  }

  // Completed = every member ran undegraded and no nondeterministic taint
  // anywhere below — exactly the SCCs a rerun may trust from the cache.
  Records.resize(SCCs.size());
  for (size_t I = 0; I < SCCs.size(); ++I) {
    bool Completed = SCCTaint[I] == 0;
    // Demand-skipped SCCs are honestly incomplete: they stored no cache
    // artifacts, so a later exhaustive (or differently-checkered) run must
    // not count them as resumable.
    for (const ir::Function *F : SCCs[I].Members)
      Completed =
          Completed && !Fns.at(F).Degraded && !Fns.at(F).Skipped;
    Records[I] = {SCCKeys[I], Completed};
  }

  // Rewrite the journal even on interrupted runs: flushing the completed
  // set is what makes a warm rerun resume rather than start over. Failure
  // to write is harmless (the next run just resumes less).
  if (Cache->writable()) {
    RunJournal J;
    J.SubjectFingerprint = SubjectFP;
    J.SCCs.reserve(Records.size());
    for (const SCCRecord &R : Records)
      J.SCCs.push_back({R.Key, R.Completed});
    J.store(Cache->directory());
  }

  // Persist measured SCC costs for the next run's upward ranks. Only
  // completed SCCs qualify: a degraded, skipped or tainted SCC's wall time
  // reflects this run's accident (or a deliberate elision), not the keyed
  // content's cost. Write failure is harmless — the next run just ranks
  // heuristically.
  if (Cache->writable() && !SCCCostUs.empty()) {
    std::vector<std::pair<uint64_t, uint64_t>> Prof;
    Prof.reserve(Records.size());
    for (size_t I = 0; I < Records.size(); ++I)
      if (Records[I].Completed && SCCCostUs[I] > 0)
        Prof.push_back({SCCKeys[I], SCCCostUs[I]});
    if (!Prof.empty() && Cache->storeCostProfile(Prof))
      Counters::get().add("sched.profile-stored", 1);
  }
}

AnalyzedModule::~AnalyzedModule() {
  // Balance the governed-memory ledger so sequential AnalyzedModules in one
  // process (tests, benchmarks) do not accumulate phantom bytes.
  MemStats &MS = MemStats::get();
  int64_t PT = PTCharge.load(std::memory_order_relaxed);
  int64_t PTB = PTChargeBytes.load(std::memory_order_relaxed);
  if (PT || PTB)
    MS.notePTEntries(-PT, -PTB);
  int64_t SG = SEGCharge.load(std::memory_order_relaxed);
  int64_t SGB = SEGChargeBytes.load(std::memory_order_relaxed);
  if (SG || SGB)
    MS.noteSEGNodes(-SG, -SGB);
}

AnalyzedModule::AnalyzedModule(ir::Module &M, smt::ExprContext &Ctx,
                               const PipelineOptions &Opts)
    : M(M), Ctx(Ctx), Syms(Ctx) {
  ResourceGovernor &Gov =
      Opts.Governor ? *Opts.Governor : ResourceGovernor::ungoverned();

  // SSA first for every function — the call graph and rewriting do not
  // change CFG shape, and rewriting emits SSA-compatible fresh variables.
  auto SSAStart = std::chrono::steady_clock::now();
  for (ir::Function *F : M.functions()) {
    F->recomputeCFGEdges();
    ir::constructSSA(*F);
  }
  Phases.SSA = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             SSAStart)
                   .count();

  CG = std::make_unique<ir::CallGraph>(M);
  const std::vector<ir::CallGraph::SCCNode> &SCCs = CG->sccs();

  // Pre-create every function's result slot and interface slot so the
  // parallel schedule mutates fixed storage, never a growing map.
  transform::InterfaceMap Interfaces(M);
  for (ir::Function *F : CG->bottomUpOrder())
    Fns[F];

  SCCOwnTaint.assign(SCCs.size(), 0);
  SCCTaint.assign(SCCs.size(), 0);
  Cache = Opts.Cache;
  ir::ModuleFingerprints FnFP;
  if (Cache) {
    // Transitive content keys over the condensation. SCC ids are
    // topological (callee < caller), so one ascending pass sees every
    // callee key before it is consumed. The key covers everything a cached
    // artifact can depend on: analysis knobs, the post-SSA fingerprints of
    // every member, and the callee SCCs' transitive keys (a change
    // anywhere below invalidates the whole caller chain).
    Hasher ConfigH;
    ConfigH.u8(Opts.UseLinearFilter ? 1 : 0);
    ConfigH.u64(static_cast<uint64_t>(Gov.budget().MaxPTASteps));
    ConfigH.u64(static_cast<uint64_t>(Gov.budget().MaxFunctionStmts));
    uint64_t ConfigKey = ConfigH.digest();

    // One fingerprint sweep feeds the SCC keys, the whole-subject
    // fingerprint (run journal + relevance entry: an artifact from a
    // different subject must never feed the resume accounting or the
    // pre-pass replay, even when individual SCC keys happen to collide
    // across subjects), and the per-function relevance records' dirty diff.
    FnFP = ir::fingerprintModule(M);
    SubjectFP = FnFP.Subject;

    SCCKeys.resize(SCCs.size());
    for (size_t I = 0; I < SCCs.size(); ++I) {
      Hasher H;
      H.u64(ConfigKey);
      for (const ir::Function *F : SCCs[I].Members)
        H.u64(FnFP.PerFn.at(F));
      for (size_t Callee : SCCs[I].CalleeSCCs)
        H.u64(SCCKeys[Callee]);
      SCCKeys[I] = H.digest();
    }
  }

  // Demand relevance pre-pass: runs on the post-SSA call graph, before any
  // summary work, so skipped functions pay only their part of the graph
  // walk. The set is a pure function of the subject and the checker union,
  // independent of job count and cache state. With a cache directory, the
  // artifact is persisted keyed on (subject fingerprint, spec key): warm
  // runs replay it and skip the pre-pass entirely.
  if (Opts.Demand) {
    DemandOn = true;
    auto PrepassStart = std::chrono::steady_clock::now();
    uint64_t SpecKey = 0;
    bool Done = false;
    RefreshMode = "cold";
    std::unordered_set<const ir::Function *> DirtySet;
    if (Cache) {
      SpecKey = relevanceSpecKey(*Opts.Demand);
      RelevanceLoadResult LR =
          loadRelevanceEx(Cache->directory(), SubjectFP, SpecKey, M);
      switch (LR.Status) {
      case RelevanceLoadStatus::Ok:
        Rel = std::move(LR.Artifact.Union);
        PerChecker = std::move(LR.Artifact.PerChecker);
        Done = true;
        RefreshMode = "replay";
        Counters::get().add("demand.relevance-replayed", 1);
        break;
      case RelevanceLoadStatus::Stale: {
        // Different subject or checker set: the entry cannot replay.
        Counters::get().add("demand.relevance-stale", 1);
        RefreshMode = "full";
        if (LR.StoredUsable &&
            Opts.RelevanceRefresh != RelevanceRefreshMode::Full) {
          // Same spec, edited subject: diff per-function fingerprints and
          // rebuild from the dirty frontier instead of re-walking the
          // whole module (DESIGN.md section 15).
          RelevanceRefreshStats RS;
          RelevanceArtifact A =
              refreshRelevanceArtifact(*CG, M, *Opts.Demand, LR.Stored,
                                       FnFP.PerFn, Opts.RelevanceRefresh, RS);
          Counters::get().add("demand.prepass-fns",
                              static_cast<int64_t>(RS.ScannedFns));
          Counters::get().add("demand.dirty-fns",
                              static_cast<int64_t>(RS.DirtyFns));
          Counters::get().add("demand.edges-reused",
                              static_cast<int64_t>(RS.EdgesReused));
          DirtyFns = RS.DirtyFns;
          ReusedEdges = RS.EdgesReused;
          if (RS.Local) {
            RefreshMode = "local";
            DirtySet = std::move(RS.Dirty);
          }
          if (Cache->writable() &&
              storeRelevance(Cache->directory(), SubjectFP, SpecKey, A))
            Counters::get().add("demand.relevance-stored", 1);
          Rel = std::move(A.Union);
          PerChecker = std::move(A.PerChecker);
          Done = true;
        }
        break;
      }
      case RelevanceLoadStatus::Corrupt:
        Gov.note(DegradationKind::CacheCorrupt, "demand", "",
                 "relevance entry unreadable; recomputing pre-pass");
        Counters::get().add("cache.corrupt", 1);
        RefreshMode = "full";
        break;
      case RelevanceLoadStatus::Missing:
        break;
      }
    }
    if (!Done) {
      RelevanceArtifact A = computeRelevanceArtifact(
          *CG, M, *Opts.Demand, Cache ? &FnFP.PerFn : nullptr);
      // Pre-pass cost proxy: functions walked computing the sets. Zero on
      // a warm replay — the CI smoke greps exactly that.
      Counters::get().add("demand.prepass-fns",
                          static_cast<int64_t>(M.functions().size()));
      if (Cache && Cache->writable() &&
          storeRelevance(Cache->directory(), SubjectFP, SpecKey, A))
        Counters::get().add("demand.relevance-stored", 1);
      Rel = std::move(A.Union);
      PerChecker = std::move(A.PerChecker);
    }
    for (const ir::Function *F : CG->bottomUpOrder())
      Rel.relevant(F) ? ++RelevantFns : ++SkippedFns;

    // Scheduling hint: SCCs holding a dirty function, closed under callers
    // over the condensation (ids are topological, callee < caller, so one
    // ascending pass suffices). Consumed by the steal-mode ranks below —
    // the refreshed cone has real work to do, cached clean SCCs mostly
    // replay, so the cone drains first and hides cache I/O behind it.
    if (!DirtySet.empty()) {
      DirtySCCHint.assign(SCCs.size(), 0);
      for (const ir::Function *F : DirtySet)
        DirtySCCHint[CG->sccOf(F)] = 1;
      for (size_t I = 0; I < SCCs.size(); ++I) {
        if (DirtySCCHint[I])
          continue;
        for (size_t Callee : SCCs[I].CalleeSCCs)
          if (DirtySCCHint[Callee]) {
            DirtySCCHint[I] = 1;
            break;
          }
      }
    }
    Phases.Prepass = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - PrepassStart)
                         .count();
  }

  // Resolve the set the memory plan is keyed on (only consulted when a
  // budget is set). An explicit PlanDemand decouples the plan from the
  // analysis mode; without one the plan follows the analysis slice, which
  // is the historical library behaviour.
  if (Gov.budget().MemBudgetMB > 0) {
    if (Opts.PlanDemand) {
      if (DemandOn && Opts.PlanDemand == Opts.Demand)
        PlanRel = Rel;
      else
        PlanRel = computeRelevance(*CG, M, *Opts.PlanDemand);
    } else if (DemandOn) {
      PlanRel = Rel;
    }
  }

  planMemoryPressure(SCCs, Gov);

  RunState RS;
  SCCCostUs.assign(SCCs.size(), 0);

  if (!Opts.Pool || Opts.Pool->workers() <= 1) {
    // Serial: ascending SCC ids with members in order is exactly the
    // historical `bottomUpOrder()` loop (ids are Tarjan completion order),
    // plus the per-SCC taint bookkeeping the cache needs. Costs are still
    // measured — a serial warm-up run seeds the profile a later parallel
    // run ranks with.
    for (size_t I = 0; I < SCCs.size(); ++I) {
      bool CalleeTainted = false;
      for (size_t Callee : SCCs[I].CalleeSCCs)
        CalleeTainted |= SCCTaint[Callee] != 0;
      auto T0 = std::chrono::steady_clock::now();
      for (ir::Function *F : SCCs[I].Members)
        analyzeOne(F, I, CalleeTainted, Gov, Opts, Interfaces, RS, nullptr);
      SCCCostUs[I] = std::max<uint64_t>(
          1, static_cast<uint64_t>(
                 std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - T0)
                     .count()));
      SCCTaint[I] = (SCCOwnTaint[I] || CalleeTainted) ? 1 : 0;
    }
    finishLifecycle(SCCs);
    return;
  }

  // Parallel: walk the call-graph condensation as a DAG. Each SCC is one
  // task; finishing a task decrements its dependents' counts and spawns
  // the newly-ready ones, so independent call-tree branches overlap while
  // every caller still starts after all its callees.
  std::vector<std::atomic<size_t>> DepsLeft(SCCs.size());
  std::vector<std::vector<size_t>> Dependents(SCCs.size());
  for (size_t I = 0; I < SCCs.size(); ++I) {
    DepsLeft[I].store(SCCs[I].CalleeSCCs.size(), std::memory_order_relaxed);
    for (size_t Callee : SCCs[I].CalleeSCCs)
      Dependents[Callee].push_back(I);
  }

  // Upward ranks (steal mode only; fifo keeps the legacy structural order
  // and doubles as the scheduling bench's baseline): rank(I) = cost(I) +
  // max(rank(dependents)), one descending-id sweep since ids are
  // topological. Costs come from the persisted profile when the SCC's
  // content key has a measurement, else from a statement-count heuristic
  // (both points-to passes and the SEG build are roughly linear in
  // statements). Ranks only order dispatch — results are slot-addressed,
  // so any order yields identical output.
  const bool Ranked = Opts.Pool->schedule() == ThreadPool::Schedule::Steal;
  std::vector<uint64_t> Rank;
  if (Ranked) {
    std::unordered_map<uint64_t, uint64_t> Profile;
    if (Cache)
      Cache->loadCostProfile(Profile);
    int64_t Profiled = 0;
    std::vector<uint64_t> Cost(SCCs.size());
    for (size_t I = 0; I < SCCs.size(); ++I) {
      uint64_t C = 0;
      if (!Profile.empty()) {
        auto It = Profile.find(SCCKeys[I]);
        if (It != Profile.end() && It->second > 0) {
          C = It->second;
          ++Profiled;
        }
      }
      if (C == 0) {
        size_t Stmts = 0;
        for (const ir::Function *F : SCCs[I].Members) {
          if (DemandOn && !Rel.relevant(F))
            continue;
          Stmts += countStmts(*F);
        }
        C = 1 + Stmts;
      }
      Cost[I] = C;
    }
    Rank.resize(SCCs.size());
    for (size_t I = SCCs.size(); I-- > 0;) {
      uint64_t R = 0;
      for (size_t Dep : Dependents[I])
        R = std::max(R, Rank[Dep]);
      Rank[I] = Cost[I] + R;
    }
    // Warm-refresh dirty-cone hint: lift every SCC in the edited cone
    // above the highest clean rank, so the re-analysed frontier dispatches
    // first and cached clean SCCs drain behind it. Pure dispatch ordering
    // — dependencies and result slots are untouched, so output stays
    // byte-identical.
    if (!DirtySCCHint.empty()) {
      uint64_t MaxR = 0;
      for (uint64_t R : Rank)
        MaxR = std::max(MaxR, R);
      for (size_t I = 0; I < SCCs.size(); ++I)
        if (DirtySCCHint[I])
          Rank[I] += MaxR + 1;
    }
    Counters::get().add("sched.ranked-sccs",
                        static_cast<int64_t>(SCCs.size()));
    Counters::get().add("sched.profiled-sccs", Profiled);
  }

  ThreadPool::TaskGroup G(*Opts.Pool);
  std::function<void(size_t)> RunSCC;

  // Dispatches a batch of newly-ready SCCs, highest rank first. The order
  // has to be encoded per receiving queue: an external spawn lands in the
  // pool's FIFO inbox (spawn descending, pop front preserves it), a
  // worker's own spawn lands on its LIFO deque (spawn ascending, pop back
  // restores it).
  auto SpawnOrdered = [&](std::vector<size_t> Ready) {
    if (Ready.size() > 1 && Ranked) {
      std::sort(Ready.begin(), Ready.end(), [&](size_t A, size_t B) {
        return Rank[A] != Rank[B] ? Rank[A] > Rank[B] : A < B;
      });
      if (Opts.Pool->currentThreadIsWorker())
        std::reverse(Ready.begin(), Ready.end());
    }
    for (size_t I : Ready)
      G.spawn([&RunSCC, I] { RunSCC(I); });
  };

  RunSCC = [&](size_t I) {
    // Callee taints were finalised by callee tasks, which all completed
    // before this task was spawned (the dependency decrement below is the
    // acquire/release edge), so the plain reads are ordered.
    bool CalleeTainted = false;
    for (size_t Callee : SCCs[I].CalleeSCCs)
      CalleeTainted |= SCCTaint[Callee] != 0;
    auto T0 = std::chrono::steady_clock::now();
    for (ir::Function *F : SCCs[I].Members)
      analyzeOne(F, I, CalleeTainted, Gov, Opts, Interfaces, RS, &G);
    SCCCostUs[I] = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - T0)
                   .count()));
    SCCTaint[I] = (SCCOwnTaint[I] || CalleeTainted) ? 1 : 0;
    std::vector<size_t> Ready;
    for (size_t Dep : Dependents[I])
      // acq_rel: publishes this SCC's interfaces/results to whichever task
      // performs the final decrement and runs the dependent.
      if (DepsLeft[Dep].fetch_sub(1, std::memory_order_acq_rel) == 1)
        Ready.push_back(Dep);
    SpawnOrdered(std::move(Ready));
  };
  // Roots are identified structurally (no cross-SCC callees), never by
  // reading DepsLeft: a fast leaf task finishing mid-loop drops a
  // dependent's counter to zero and spawns it via fetch_sub, and a
  // counter-based root scan racing with that would spawn the same SCC a
  // second time (two pipelines mutating one function's IR).
  {
    std::vector<size_t> Roots;
    for (size_t I = 0; I < SCCs.size(); ++I)
      if (SCCs[I].CalleeSCCs.empty())
        Roots.push_back(I);
    SpawnOrdered(std::move(Roots));
  }

  // Cache readahead: one prefetch task per cache-probing SCC, queued
  // behind the roots so idle workers warm entry bytes while busy workers
  // analyse. Readahead is invisible to results — `load` applies identical
  // validation to buffered bytes, and unconsumed buffers are dropped in
  // finishLifecycle.
  if (Cache) {
    for (size_t I = 0; I < SCCs.size(); ++I) {
      if (!MemPlanDegrade.empty() && MemPlanDegrade[I])
        continue; // Plan-degraded SCCs never probe.
      std::vector<const ir::Function *> Members;
      for (const ir::Function *F : SCCs[I].Members)
        if (!DemandOn || Rel.relevant(F))
          Members.push_back(F);
      if (Members.empty())
        continue;
      SummaryCache *C = Cache;
      G.spawn([C, Members = std::move(Members)] {
        int64_t N = 0;
        for (const ir::Function *F : Members)
          if (C->prefetch(F->name()))
            ++N;
        if (N)
          Counters::get().add("sched.prefetched", N);
      });
    }
  }

  G.wait();
  finishLifecycle(SCCs);
}

size_t AnalyzedModule::totalSEGEdges() const {
  size_t N = 0;
  for (auto &[F, Info] : Fns)
    if (Info.Seg)
      N += Info.Seg->numEdges();
  return N;
}

size_t AnalyzedModule::totalSEGVertices() const {
  size_t N = 0;
  for (auto &[F, Info] : Fns)
    if (Info.Seg)
      N += Info.Seg->numVertices();
  return N;
}

} // namespace pinpoint::svfa
