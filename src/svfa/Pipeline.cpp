//===- svfa/Pipeline.cpp -----------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "svfa/Pipeline.h"
#include "ir/SSA.h"
#include "support/Statistics.h"

namespace pinpoint::svfa {

AnalyzedModule::AnalyzedModule(ir::Module &M, smt::ExprContext &Ctx,
                               const PipelineOptions &Opts)
    : M(M), Ctx(Ctx), Syms(Ctx) {
  // SSA first for every function — the call graph and rewriting do not
  // change CFG shape, and rewriting emits SSA-compatible fresh variables.
  for (ir::Function *F : M.functions()) {
    F->recomputeCFGEdges();
    ir::constructSSA(*F);
  }

  CG = std::make_unique<ir::CallGraph>(M);

  std::map<const ir::Function *, transform::FunctionInterface> Interfaces;
  for (ir::Function *F : CG->bottomUpOrder()) {
    AnalyzedFunction Info;
    Info.F = F;

    // Mirror the already-transformed callees' connectors at call sites, so
    // side effects compose transitively up the call chain.
    transform::rewriteCallSites(*F, *CG, Interfaces);

    Info.Conds = std::make_unique<ir::ConditionMap>(*F, Syms);

    // Pass 1: discover this function's own side effects.
    pta::PTAConfig Cfg1;
    Cfg1.UseLinearFilter = Opts.UseLinearFilter;
    pta::PointsToResult Pass1 = pta::runPointsTo(*F, Syms, *Info.Conds, Cfg1);

    // Materialise the connector interface (Fig. 3(a)).
    Info.Interface = transform::applyInterfaceTransform(*F, Pass1);
    Interfaces[F] = Info.Interface;

    // Pass 2: final points-to with the Aux bindings in place.
    pta::PTAConfig Cfg2;
    Cfg2.UseLinearFilter = Opts.UseLinearFilter;
    Cfg2.AuxParams = Info.Interface.auxBindings();
    Info.PTA = pta::runPointsTo(*F, Syms, *Info.Conds, Cfg2);

    Info.Seg = std::make_unique<seg::SEG>(*F, Syms, *Info.Conds, Info.PTA);
    Counters::get().add("seg.edges",
                        static_cast<int64_t>(Info.Seg->numEdges()));

    Fns.emplace(F, std::move(Info));
  }
}

size_t AnalyzedModule::totalSEGEdges() const {
  size_t N = 0;
  for (auto &[F, Info] : Fns)
    N += Info.Seg->numEdges();
  return N;
}

size_t AnalyzedModule::totalSEGVertices() const {
  size_t N = 0;
  for (auto &[F, Info] : Fns)
    N += Info.Seg->numVertices();
  return N;
}

} // namespace pinpoint::svfa
