//===- svfa/SummaryIO.cpp ----------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "svfa/SummaryIO.h"
#include "support/Serializer.h"

#include <map>
#include <stdexcept>
#include <unordered_map>

using namespace pinpoint::ir;

namespace pinpoint::svfa {

namespace {

// DepVal tags.
constexpr uint8_t TagVariable = 1;
constexpr uint8_t TagIntConst = 2;
constexpr uint8_t TagBoolConst = 3;
constexpr uint8_t TagNullConst = 4;

constexpr uint8_t MaxExprKind = static_cast<uint8_t>(smt::ExprKind::Ite);

/// Loads of \p F in deterministic block/statement order. The same
/// enumeration runs at encode time (fully transformed F) and at replay time
/// (after call-site rewriting + interface replay), so indices line up.
std::vector<const LoadStmt *> loadsInOrder(const Function &F) {
  std::vector<const LoadStmt *> Out;
  for (const BasicBlock *B : F.blocks())
    for (const Stmt *S : B->stmts())
      if (const auto *L = dyn_cast<LoadStmt>(S))
        Out.push_back(L);
  return Out;
}

/// Post-order DFS over a condition DAG, assigning each distinct node an
/// index such that operands always precede their users.
class ExprTable {
public:
  explicit ExprTable(const ir::SymbolMap &Syms, const Function &F)
      : Syms(Syms), F(F) {}

  /// Returns the node index of \p E, or false if E (or a descendant) is not
  /// serialisable (a symbolic variable without IR backing in this function).
  bool add(const smt::Expr *E, uint32_t &IdxOut) {
    auto It = Index.find(E);
    if (It != Index.end()) {
      IdxOut = It->second;
      return true;
    }
    FunctionSummaryEntry::ExprNode N;
    N.Kind = static_cast<uint8_t>(E->kind());
    switch (E->kind()) {
    case smt::ExprKind::True:
    case smt::ExprKind::False:
      break;
    case smt::ExprKind::BoolVar:
    case smt::ExprKind::IntVar: {
      const Variable *V = Syms.irVar(E->varId());
      if (!V || V->parent() != &F)
        return false;
      N.VarId = V->id();
      N.VarName = V->name();
      break;
    }
    case smt::ExprKind::IntConst:
      N.Const = E->constValue();
      break;
    default:
      for (const smt::Expr *Op : E->operands()) {
        uint32_t OpIdx;
        if (!add(Op, OpIdx))
          return false;
        N.Ops.push_back(OpIdx);
      }
      break;
    }
    IdxOut = static_cast<uint32_t>(Nodes.size());
    Nodes.push_back(std::move(N));
    Index.emplace(E, IdxOut);
    return true;
  }

  std::vector<FunctionSummaryEntry::ExprNode> take() {
    return std::move(Nodes);
  }

private:
  const ir::SymbolMap &Syms;
  const Function &F;
  std::unordered_map<const smt::Expr *, uint32_t> Index;
  std::vector<FunctionSummaryEntry::ExprNode> Nodes;
};

unsigned expectedArity(smt::ExprKind K) {
  switch (K) {
  case smt::ExprKind::Not:
  case smt::ExprKind::Neg:
    return 1;
  case smt::ExprKind::Eq:
  case smt::ExprKind::Ne:
  case smt::ExprKind::Lt:
  case smt::ExprKind::Le:
  case smt::ExprKind::Gt:
  case smt::ExprKind::Ge:
  case smt::ExprKind::Add:
  case smt::ExprKind::Sub:
  case smt::ExprKind::Mul:
    return 2;
  case smt::ExprKind::Ite:
    return 3;
  default:
    return 0; // And/Or are n-ary, leaves are 0-ary; checked separately.
  }
}

} // namespace

bool encodeFunctionSummary(const Function &F, const AnalyzedFunction &Info,
                           ir::SymbolMap &Syms, bool NoteTruncated,
                           std::vector<uint8_t> &Out) {
  std::vector<const LoadStmt *> Loads = loadsInOrder(F);

  // Pass 1: collect the load-dep entries and their condition DAGs.
  ExprTable Table(Syms, F);
  struct PendingVal {
    FunctionSummaryEntry::DepVal V;
  };
  std::vector<FunctionSummaryEntry::LoadEntry> Entries;
  for (uint32_t LI = 0; LI < Loads.size(); ++LI) {
    const pta::ValSet &Deps = Info.PTA.loadDeps(Loads[LI]);
    FunctionSummaryEntry::LoadEntry LE;
    LE.LoadIdx = LI;
    for (const auto &CE : Deps) {
      // Opaque initial-content entries reference per-run memory objects and
      // have no SEG consumer (SEG::build skips them); they are not stored.
      if (CE.Item.isInitial())
        continue;
      FunctionSummaryEntry::DepVal DV;
      if (const auto *Var = dyn_cast<Variable>(CE.Item.V)) {
        if (Var->parent() != &F)
          return false;
        DV.Tag = TagVariable;
        DV.VarId = Var->id();
        DV.VarName = Var->name();
      } else {
        const auto *C = cast<Constant>(CE.Item.V);
        if (C->isNull()) {
          DV.Tag = TagNullConst;
          DV.PtrDepth = static_cast<uint8_t>(C->type().pointerDepth());
        } else if (C->type().isBool()) {
          DV.Tag = TagBoolConst;
          DV.IntVal = C->value() != 0;
        } else {
          DV.Tag = TagIntConst;
          DV.IntVal = C->value();
        }
      }
      if (!Table.add(CE.Cond, DV.CondIdx))
        return false;
      LE.Vals.push_back(std::move(DV));
    }
    if (!LE.Vals.empty())
      Entries.push_back(std::move(LE));
  }
  std::vector<FunctionSummaryEntry::ExprNode> Nodes = Table.take();

  // Pass 2: serialise.
  ByteWriter W;
  W.boolean(NoteTruncated);
  W.boolean(Info.PTA.truncated());

  auto writePaths = [&](const std::vector<pta::ParamPath> &Paths) {
    W.u32(static_cast<uint32_t>(Paths.size()));
    for (const pta::ParamPath &P : Paths) {
      W.u32(static_cast<uint32_t>(P.first->paramIndex()));
      W.u32(static_cast<uint32_t>(P.second));
    }
  };
  writePaths(Info.Interface.RefPaths);
  writePaths(Info.Interface.ModPaths);

  W.u32(static_cast<uint32_t>(Loads.size()));

  W.u32(static_cast<uint32_t>(Nodes.size()));
  for (const auto &N : Nodes) {
    W.u8(N.Kind);
    switch (static_cast<smt::ExprKind>(N.Kind)) {
    case smt::ExprKind::True:
    case smt::ExprKind::False:
      break;
    case smt::ExprKind::BoolVar:
    case smt::ExprKind::IntVar:
      W.u32(N.VarId);
      W.str(N.VarName);
      break;
    case smt::ExprKind::IntConst:
      W.i64(N.Const);
      break;
    default:
      W.u32(static_cast<uint32_t>(N.Ops.size()));
      for (uint32_t Op : N.Ops)
        W.u32(Op);
      break;
    }
  }

  W.u32(static_cast<uint32_t>(Entries.size()));
  for (const auto &LE : Entries) {
    W.u32(LE.LoadIdx);
    W.u32(static_cast<uint32_t>(LE.Vals.size()));
    for (const auto &DV : LE.Vals) {
      W.u8(DV.Tag);
      switch (DV.Tag) {
      case TagVariable:
        W.u32(DV.VarId);
        W.str(DV.VarName);
        break;
      case TagIntConst:
      case TagBoolConst:
        W.i64(DV.IntVal);
        break;
      case TagNullConst:
        W.u8(DV.PtrDepth);
        break;
      }
      W.u32(DV.CondIdx);
    }
  }

  Out = W.take();
  return true;
}

bool decodeFunctionSummary(const std::vector<uint8_t> &Payload,
                           FunctionSummaryEntry &Out, std::string &Err) {
  try {
    ByteReader R(Payload);
    Out.NoteTruncated = R.boolean();
    Out.ResultTruncated = R.boolean();

    auto readPaths = [&](std::vector<std::pair<uint32_t, uint32_t>> &Paths) {
      uint32_t N = R.u32();
      Paths.reserve(N);
      for (uint32_t I = 0; I < N; ++I) {
        uint32_t Idx = R.u32(), Level = R.u32();
        Paths.emplace_back(Idx, Level);
      }
    };
    readPaths(Out.RefPaths);
    readPaths(Out.ModPaths);

    Out.NumLoads = R.u32();

    uint32_t NumNodes = R.u32();
    Out.Nodes.reserve(NumNodes);
    for (uint32_t I = 0; I < NumNodes; ++I) {
      FunctionSummaryEntry::ExprNode N;
      N.Kind = R.u8();
      if (N.Kind > MaxExprKind) {
        Err = "invalid expr kind";
        return false;
      }
      switch (static_cast<smt::ExprKind>(N.Kind)) {
      case smt::ExprKind::True:
      case smt::ExprKind::False:
        break;
      case smt::ExprKind::BoolVar:
      case smt::ExprKind::IntVar:
        N.VarId = R.u32();
        N.VarName = R.str();
        break;
      case smt::ExprKind::IntConst:
        N.Const = R.i64();
        break;
      default: {
        uint32_t NumOps = R.u32();
        N.Ops.reserve(NumOps);
        for (uint32_t J = 0; J < NumOps; ++J)
          N.Ops.push_back(R.u32());
        break;
      }
      }
      Out.Nodes.push_back(std::move(N));
    }

    uint32_t NumEntries = R.u32();
    Out.Loads.reserve(NumEntries);
    for (uint32_t I = 0; I < NumEntries; ++I) {
      FunctionSummaryEntry::LoadEntry LE;
      LE.LoadIdx = R.u32();
      uint32_t NumVals = R.u32();
      LE.Vals.reserve(NumVals);
      for (uint32_t J = 0; J < NumVals; ++J) {
        FunctionSummaryEntry::DepVal DV;
        DV.Tag = R.u8();
        switch (DV.Tag) {
        case TagVariable:
          DV.VarId = R.u32();
          DV.VarName = R.str();
          break;
        case TagIntConst:
        case TagBoolConst:
          DV.IntVal = R.i64();
          break;
        case TagNullConst:
          DV.PtrDepth = R.u8();
          break;
        default:
          Err = "invalid dep-value tag";
          return false;
        }
        DV.CondIdx = R.u32();
        LE.Vals.push_back(std::move(DV));
      }
      Out.Loads.push_back(std::move(LE));
    }

    if (!R.atEnd()) {
      Err = "trailing bytes";
      return false;
    }
    return true;
  } catch (const SerializationError &Ex) {
    Err = Ex.what();
    return false;
  }
}

bool validateSummary(const FunctionSummaryEntry &E, const Function &F,
                     std::string &Err) {
  auto checkPaths =
      [&](const std::vector<std::pair<uint32_t, uint32_t>> &Paths) {
        for (const auto &[Idx, Level] : Paths) {
          if (Idx >= F.numOriginalParams())
            return false;
          const Variable *P = F.params()[Idx];
          if (Level < 1 ||
              static_cast<uint32_t>(P->type().pointerDepth()) < Level)
            return false;
        }
        return true;
      };
  if (!checkPaths(E.RefPaths) || !checkPaths(E.ModPaths)) {
    Err = "interface path out of range";
    return false;
  }

  for (uint32_t I = 0; I < E.Nodes.size(); ++I) {
    const auto &N = E.Nodes[I];
    auto K = static_cast<smt::ExprKind>(N.Kind);
    unsigned Arity = expectedArity(K);
    bool Nary = K == smt::ExprKind::And || K == smt::ExprKind::Or;
    if (Nary ? N.Ops.size() < 2 : N.Ops.size() != Arity) {
      Err = "expr node arity mismatch";
      return false;
    }
    for (uint32_t Op : N.Ops)
      if (Op >= I) {
        Err = "non-topological expr operand";
        return false;
      }
  }

  for (const auto &LE : E.Loads) {
    if (LE.LoadIdx >= E.NumLoads) {
      Err = "load index out of range";
      return false;
    }
    for (const auto &DV : LE.Vals) {
      if (DV.CondIdx >= E.Nodes.size()) {
        Err = "condition index out of range";
        return false;
      }
      if (DV.Tag == TagNullConst && DV.PtrDepth < 1) {
        Err = "null constant without pointer depth";
        return false;
      }
    }
  }
  return true;
}

void replayFunctionSummary(Function &F, const FunctionSummaryEntry &E,
                           ir::SymbolMap &Syms,
                           transform::FunctionInterface &InterfaceOut,
                           pta::PointsToResult &PTAOut) {
  smt::ExprContext &Ctx = Syms.context();
  Module &M = *F.parent();

  auto resolvePaths =
      [&](const std::vector<std::pair<uint32_t, uint32_t>> &In) {
        std::vector<pta::ParamPath> Out;
        Out.reserve(In.size());
        for (const auto &[Idx, Level] : In)
          Out.emplace_back(F.params()[Idx], static_cast<int>(Level));
        return Out;
      };
  std::vector<pta::ParamPath> RefV = resolvePaths(E.RefPaths);
  std::vector<pta::ParamPath> ModV = resolvePaths(E.ModPaths);

  InterfaceOut = transform::applyInterfaceTransform(F, RefV, ModV);

  std::vector<const LoadStmt *> Loads = loadsInOrder(F);
  if (Loads.size() != E.NumLoads)
    throw std::runtime_error("summary replay: load count mismatch in " +
                             F.name());

  // Function-local variable resolution; ids are creation order and the
  // replayed transform re-creates aux variables in the original order, so
  // cached ids land on the same variables.
  std::unordered_map<uint32_t, const Variable *> VarById;
  for (const Variable *V : F.vars())
    VarById.emplace(V->id(), V);
  auto resolveVar = [&](uint32_t Id, const std::string &Name) {
    auto It = VarById.find(Id);
    if (It == VarById.end() || It->second->name() != Name)
      throw std::runtime_error("summary replay: variable mismatch in " +
                               F.name());
    return It->second;
  };

  // Rebuild the condition DAG bottom-up through the interning constructors.
  std::vector<const smt::Expr *> NodeExprs;
  NodeExprs.reserve(E.Nodes.size());
  for (const auto &N : E.Nodes) {
    auto K = static_cast<smt::ExprKind>(N.Kind);
    std::vector<const smt::Expr *> Ops;
    Ops.reserve(N.Ops.size());
    for (uint32_t Op : N.Ops)
      Ops.push_back(NodeExprs[Op]);
    const smt::Expr *Built = nullptr;
    switch (K) {
    case smt::ExprKind::True:
      Built = Ctx.getTrue();
      break;
    case smt::ExprKind::False:
      Built = Ctx.getFalse();
      break;
    case smt::ExprKind::BoolVar:
    case smt::ExprKind::IntVar: {
      const Variable *V = resolveVar(N.VarId, N.VarName);
      Built = Syms[V];
      if ((K == smt::ExprKind::BoolVar) != Built->isBool())
        throw std::runtime_error("summary replay: symbol type mismatch in " +
                                 F.name());
      break;
    }
    case smt::ExprKind::IntConst:
      Built = Ctx.getInt(N.Const);
      break;
    case smt::ExprKind::Not:
      Built = Ctx.mkNot(Ops[0]);
      break;
    case smt::ExprKind::And:
      Built = Ctx.mkAndN(Ops);
      break;
    case smt::ExprKind::Or:
      Built = Ctx.mkOrN(Ops);
      break;
    case smt::ExprKind::Eq:
    case smt::ExprKind::Ne:
    case smt::ExprKind::Lt:
    case smt::ExprKind::Le:
    case smt::ExprKind::Gt:
    case smt::ExprKind::Ge:
      Built = Ctx.mkCmp(K, Ops[0], Ops[1]);
      break;
    case smt::ExprKind::Add:
    case smt::ExprKind::Sub:
    case smt::ExprKind::Mul:
      Built = Ctx.mkArith(K, Ops[0], Ops[1]);
      break;
    case smt::ExprKind::Neg:
      Built = Ctx.mkNeg(Ops[0]);
      break;
    case smt::ExprKind::Ite:
      Built = Ctx.mkIte(Ops[0], Ops[1], Ops[2]);
      break;
    }
    NodeExprs.push_back(Built);
  }

  std::map<const LoadStmt *, pta::ValSet> LoadDeps;
  for (const auto &LE : E.Loads) {
    pta::ValSet VS;
    VS.reserve(LE.Vals.size());
    for (const auto &DV : LE.Vals) {
      pta::ContentVal CV;
      switch (DV.Tag) {
      case TagVariable:
        CV.V = resolveVar(DV.VarId, DV.VarName);
        break;
      case TagIntConst:
        CV.V = M.getIntConst(DV.IntVal);
        break;
      case TagBoolConst:
        CV.V = M.getBoolConst(DV.IntVal != 0);
        break;
      case TagNullConst:
        CV.V = M.getNullConst(Type::ptrTy(DV.PtrDepth));
        break;
      }
      VS.push_back({CV, NodeExprs[DV.CondIdx]});
    }
    LoadDeps.emplace(Loads[LE.LoadIdx], std::move(VS));
  }

  std::set<pta::ParamPath> Refs(RefV.begin(), RefV.end());
  std::set<pta::ParamPath> Mods(ModV.begin(), ModV.end());
  PTAOut = pta::PointsToRebuilder::build(std::move(LoadDeps), std::move(Refs),
                                         std::move(Mods), E.ResultTruncated);
}

} // namespace pinpoint::svfa
