//===- svfa/Context.cpp ------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "svfa/Context.h"

using namespace pinpoint::ir;

namespace pinpoint::svfa {

const Context *ContextTable::push(const Context *Parent,
                                  const CallStmt *Site) {
  auto Key = std::make_pair(Parent, Site);
  auto It = Interned.find(Key);
  if (It != Interned.end())
    return It->second.get();
  auto C = std::make_unique<Context>();
  C->Parent = Parent;
  C->Site = Site;
  C->Depth = depth(Parent) + 1;
  C->Id = NextId++;
  Context *Raw = C.get();
  Contexts.push_back(Raw);
  Interned.emplace(Key, std::move(C));
  return Raw;
}

const smt::Expr *ContextTable::mappedVar(uint32_t SymVarId,
                                         const Function *Callee,
                                         const Context *C) {
  auto Key = std::make_pair(C, SymVarId);
  auto It = Clones.find(Key);
  if (It != Clones.end())
    return It->second;

  const smt::Expr *Repl = nullptr;
  const Variable *IRVar = Syms.irVar(SymVarId);

  // Formal parameter of the callee: map to the caller-side symbol of the
  // actual argument (Equation (3)'s vi@si = M(vi@si)).
  if (IRVar && IRVar->parent() == Callee && IRVar->isParam() && C->Site &&
      static_cast<size_t>(IRVar->paramIndex()) < C->Site->args().size()) {
    const Value *Actual = C->Site->args()[IRVar->paramIndex()];
    const Function *Caller = C->Site->parent()->parent();
    Repl = symbolIn(Actual, Caller, C->Parent);
    // Coerce to the formal's sort (e.g. boolean formal, constant actual).
    Repl = Ctx.varIsBool(SymVarId) ? Ctx.toBoolExpr(Repl)
                                   : Ctx.toIntExpr(Repl);
  } else {
    // Any other variable: α-rename into this context.
    std::string Name = Ctx.varName(SymVarId) + "#" + std::to_string(C->Id);
    Repl = Ctx.varIsBool(SymVarId) ? Ctx.freshBoolVar(std::move(Name))
                                   : Ctx.freshIntVar(std::move(Name));
  }
  Clones.emplace(Key, Repl);
  return Repl;
}

const smt::Expr *ContextTable::instantiate(const smt::Expr *E,
                                           const Function *Callee,
                                           const Context *C) {
  if (!C)
    return E; // Top context: identity.
  std::vector<uint32_t> Vars;
  Ctx.collectVars(E, Vars);
  if (Vars.empty())
    return E;
  std::unordered_map<uint32_t, const smt::Expr *> Map;
  for (uint32_t V : Vars)
    Map[V] = mappedVar(V, Callee, C);
  return Ctx.substitute(E, Map);
}

const smt::Expr *ContextTable::symbolIn(const Value *V,
                                        const Function *Owner,
                                        const Context *C) {
  const smt::Expr *Sym = Syms[V];
  if (!C || isa<Constant>(V))
    return Sym;
  return instantiate(Sym, Owner, C);
}

} // namespace pinpoint::svfa
