//===- baselines/FSVFG.h - Layered sparse value-flow baseline -------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conventional *layered* SVFA design the paper compares against
/// (SVF-style, Section 5.1): a global, condition-free value-flow graph is
/// materialised on top of an independent Andersen points-to analysis:
///
///  * direct def-use edges (assign/phi/call bindings);
///  * memory edges from every store to every load whose pointers may alias
///    — the "pointer trap": an imprecise points-to analysis blows the graph
///    up with false edges, quadratically in the store/load counts per
///    may-alias class;
///  * bug checking is plain graph reachability — no path conditions, no
///    context, no temporal filtering — so the FP rate on guarded or planted
///    infeasible bugs approaches 100% (Table 1's SVF column).
///
/// A build budget models the paper's 12-hour timeout: construction reports
/// `TimedOut` when the edge budget is exceeded (Figures 7-9 mark these).
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_BASELINES_FSVFG_H
#define PINPOINT_BASELINES_FSVFG_H

#include "baselines/Andersen.h"
#include "ir/IR.h"

#include <map>
#include <vector>

namespace pinpoint::baselines {

class FSVFG {
public:
  struct Budget {
    size_t MaxEdges = SIZE_MAX;
    uint64_t MaxPTAIterations = UINT64_MAX;
    Budget() {}
    Budget(size_t MaxEdges, uint64_t MaxPTAIters)
        : MaxEdges(MaxEdges), MaxPTAIterations(MaxPTAIters) {}
  };

  /// Builds the graph (runs Andersen first). Check timedOut() afterwards.
  explicit FSVFG(ir::Module &M, Budget B = {});

  bool timedOut() const { return TimedOut; }
  size_t numEdges() const { return EdgeCount; }
  size_t numNodes() const { return Flow.size(); }
  /// Approximate bytes held by the graph (for the memory figures).
  size_t approxBytes() const;

  const std::vector<const ir::Variable *> &
  flowsOut(const ir::Variable *V) const {
    static const std::vector<const ir::Variable *> None;
    auto It = Flow.find(V);
    return It == Flow.end() ? None : It->second;
  }

  /// Condition-free use-after-free/double-free style check: reachability
  /// from each free()'s argument to dereference or free sites. Returns
  /// (source loc, sink loc) pairs.
  struct Finding {
    SourceLoc Source, Sink;
    std::string SourceFn, SinkFn;
  };
  std::vector<Finding> checkUseAfterFree(size_t MaxReports = SIZE_MAX);

  const Andersen &pointsTo() const { return PTA; }

private:
  void addEdge(const ir::Variable *From, const ir::Variable *To);
  void build();

  ir::Module &M;
  Budget B;
  Andersen PTA;
  bool TimedOut = false;
  size_t EdgeCount = 0;
  std::map<const ir::Variable *, std::vector<const ir::Variable *>> Flow;
};

} // namespace pinpoint::baselines

#endif // PINPOINT_BASELINES_FSVFG_H
