//===- baselines/IntraProc.h - Infer/CSA-like intraprocedural checker -----===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compilation-unit-confined checker in the spirit of the paper's Table 3
/// baselines (Facebook Infer and the Clang Static Analyzer, as the paper
/// characterises them): it
///
///  * analyses each function in isolation — bugs whose source and sink live
///    in different functions are invisible;
///  * tracks value copies flow-sensitively but does not solve path
///    conditions across branches ("do not fully track path correlations"),
///    so branch-guarded infeasible pairs are reported as bugs;
///  * is very fast — there is no SMT solving and no summary composition.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_BASELINES_INTRAPROC_H
#define PINPOINT_BASELINES_INTRAPROC_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace pinpoint::baselines {

struct IntraFinding {
  SourceLoc Source, Sink;
  std::string Fn;
};

/// Runs the intraprocedural use-after-free/double-free check over \p M
/// (expects SSA form).
std::vector<IntraFinding> checkIntraProcUAF(ir::Module &M);

} // namespace pinpoint::baselines

#endif // PINPOINT_BASELINES_INTRAPROC_H
