//===- baselines/Andersen.h - Global inclusion-based points-to ------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A whole-program, flow- and context-insensitive, inclusion-based
/// (Andersen-style) points-to analysis. This is the "independent global
/// points-to analysis" of the conventional *layered* SVFA design the paper
/// argues against (Figure 1): it is what our SVF-like FSVFG baseline builds
/// its value-flow graph from.
///
/// Field-insensitive object model: every abstract object has one contents
/// node. Multi-level loads/stores are desugared through temporary nodes.
/// Pointer parameters of every function are seeded with outside-world
/// objects so the analysis is sound for library-style modules.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_BASELINES_ANDERSEN_H
#define PINPOINT_BASELINES_ANDERSEN_H

#include "ir/IR.h"

#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace pinpoint::baselines {

/// Node ids in the constraint graph.
using NodeId = uint32_t;

class Andersen {
public:
  struct Budget {
    uint64_t MaxIterations = UINT64_MAX; ///< Propagation work units before bail-out.
    Budget() {}
    explicit Budget(uint64_t Max) : MaxIterations(Max) {}
  };

  explicit Andersen(ir::Module &M, Budget B = {});

  /// Runs to fixpoint (or budget). Returns false when the budget was hit.
  bool solve();

  /// Points-to set of a variable (object node ids).
  const std::set<NodeId> &pointsTo(const ir::Variable *V) const;

  /// True when two pointers may alias (points-to sets intersect).
  bool mayAlias(const ir::Variable *A, const ir::Variable *B) const;

  /// The contents node of an object (for clients chasing indirection).
  NodeId contentsOf(NodeId Obj) const { return Contents[Obj]; }

  size_t numNodes() const { return NumNodes; }
  size_t numConstraints() const { return Copies.size() + Complex.size(); }
  uint64_t iterations() const { return Iterations; }
  /// Total points-to set cardinality (memory proxy).
  size_t totalPtsSize() const;

private:
  NodeId varNode(const ir::Variable *V);
  NodeId valueNode(const ir::Value *V);
  NodeId newObject();
  /// Ensures a chain of outside-world objects for a pointer of depth D.
  void seedOutsideWorld(NodeId Node, int Depth);
  void addCopy(NodeId From, NodeId To);
  void generateConstraints(ir::Module &M);

  struct ComplexConstraint {
    enum Kind : uint8_t { Load, Store } K;
    NodeId Ptr;   ///< The dereferenced pointer node.
    NodeId Other; ///< Load: destination; Store: stored value.
  };

  ir::Module &M;
  Budget B;
  uint32_t NumNodes = 0;
  std::map<const ir::Variable *, NodeId> VarNodes;
  std::vector<NodeId> Contents; ///< Object -> contents node (0 if none).
  std::vector<bool> IsObject;
  std::vector<std::set<NodeId>> Pts;        ///< Per pointer node.
  std::vector<std::vector<NodeId>> Copies;  ///< Adjacency: copy edges.
  std::vector<ComplexConstraint> Complex;
  std::vector<std::vector<uint32_t>> ComplexOf; ///< Ptr node -> complex idx.
  uint64_t Iterations = 0;
  NodeId NullNode = 0;
  bool NullNodeValid = false;
  std::set<std::pair<NodeId, NodeId>> MaterialisedCopies;
  std::set<NodeId> Empty;
};

} // namespace pinpoint::baselines

#endif // PINPOINT_BASELINES_ANDERSEN_H
