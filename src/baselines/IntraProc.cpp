//===- baselines/IntraProc.cpp -------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/IntraProc.h"

#include <map>
#include <set>

using namespace pinpoint::ir;

namespace pinpoint::baselines {

namespace {

/// Per-function value-copy closure: which SSA variables share a value.
/// Follows assignments and phis only (no memory, no calls — the tool is
/// unit-confined).
class CopyGraph {
public:
  explicit CopyGraph(const Function &F) {
    for (const BasicBlock *B : F.blocks())
      for (const Stmt *S : B->stmts()) {
        if (const auto *A = dyn_cast<AssignStmt>(S)) {
          link(A->src(), A->dst());
        } else if (const auto *Phi = dyn_cast<PhiStmt>(S)) {
          for (auto &[Pred, V] : Phi->incoming())
            link(V, Phi->dst());
        }
      }
  }

  std::set<const Variable *> closure(const Variable *Start) const {
    std::set<const Variable *> Seen{Start};
    std::vector<const Variable *> Work{Start};
    while (!Work.empty()) {
      const Variable *V = Work.back();
      Work.pop_back();
      auto It = Adj.find(V);
      if (It == Adj.end())
        continue;
      for (const Variable *N : It->second)
        if (Seen.insert(N).second)
          Work.push_back(N);
    }
    return Seen;
  }

private:
  void link(const Value *A, const Variable *B) {
    const auto *VA = dyn_cast<Variable>(A);
    if (!VA)
      return;
    Adj[VA].push_back(B);
    Adj[B].push_back(VA);
  }
  std::map<const Variable *, std::vector<const Variable *>> Adj;
};

} // namespace

std::vector<IntraFinding> checkIntraProcUAF(Module &M) {
  std::vector<IntraFinding> Out;

  for (Function *F : M.functions()) {
    if (!F->hasStmtOrder())
      F->renumberStmts();
    CopyGraph CG(*F);

    // Free sites in statement order.
    std::vector<std::pair<const CallStmt *, const Variable *>> Frees;
    for (const BasicBlock *B : F->blocks())
      for (const Stmt *S : B->stmts())
        if (const auto *Call = dyn_cast<CallStmt>(S))
          if (Call->calleeName() == intrinsics::Free &&
              !Call->args().empty())
            if (const auto *P = dyn_cast<Variable>(Call->args()[0]))
              Frees.push_back({Call, P});

    for (auto &[FreeCall, Ptr] : Frees) {
      std::set<const Variable *> Aliases = CG.closure(Ptr);
      uint32_t FreeOrder = F->stmtOrder(FreeCall);
      for (const BasicBlock *B : F->blocks())
        for (const Stmt *S : B->stmts()) {
          if (S == FreeCall || S->isSynthetic())
            continue;
          // Path-insensitive "after": statement order only — branch
          // correlations are not consulted, which is exactly where the
          // false positives of Table 3 come from.
          if (F->stmtOrder(S) <= FreeOrder)
            continue;
          const Variable *Used = nullptr;
          if (const auto *L = dyn_cast<LoadStmt>(S))
            Used = dyn_cast<Variable>(L->addr());
          else if (const auto *St = dyn_cast<StoreStmt>(S))
            Used = dyn_cast<Variable>(St->addr());
          else if (const auto *Call = dyn_cast<CallStmt>(S)) {
            if (Call->calleeName() == intrinsics::Free &&
                !Call->args().empty())
              Used = dyn_cast<Variable>(Call->args()[0]);
          }
          if (Used && Aliases.count(Used))
            Out.push_back({FreeCall->loc(), S->loc(), F->name()});
        }
    }
  }
  return Out;
}

} // namespace pinpoint::baselines
