//===- baselines/DenseIFDS.h - Dense dataflow propagation baseline --------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, IFDS-style taint propagation: data-flow facts ("this value is
/// freed/tainted") are pushed through *every* program point along control
/// flow, the design of Saturn/Calysto/IFDS the paper's introduction blames
/// for 6-11 hour runtimes. The ablation benchmark contrasts its
/// facts × program-points cost against the sparse SEG propagation, which
/// only touches the def-use chains of relevant values.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_BASELINES_DENSEIFDS_H
#define PINPOINT_BASELINES_DENSEIFDS_H

#include "ir/IR.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pinpoint::baselines {

struct DenseResult {
  uint64_t FactPropagations = 0; ///< (fact, program-point) visits.
  size_t Findings = 0;           ///< Freed-value dereferences seen.
};

/// Runs the dense pointer-value propagation over \p M (expects SSA).
/// Facts are tracked values (every pointer-producing site, as dense
/// symbolic tools track all values) carried through every statement.
DenseResult runDenseUAF(ir::Module &M);

} // namespace pinpoint::baselines

#endif // PINPOINT_BASELINES_DENSEIFDS_H
