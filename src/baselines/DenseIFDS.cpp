//===- baselines/DenseIFDS.cpp --------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/DenseIFDS.h"
#include "ir/Dominators.h"

#include <map>
#include <set>

using namespace pinpoint::ir;

namespace pinpoint::baselines {

namespace {

/// A fact: a variable known to hold a freed value, tagged by free site.
struct Fact {
  const Variable *V;
  uint32_t FreeSite;
  bool operator<(const Fact &O) const {
    return std::tie(V, FreeSite) < std::tie(O.V, O.FreeSite);
  }
  bool operator==(const Fact &O) const {
    return V == O.V && FreeSite == O.FreeSite;
  }
};

using FactSet = std::set<Fact>;

} // namespace

DenseResult runDenseUAF(Module &M) {
  DenseResult R;
  // Stable free-site ids (the fixpoint revisits statements).
  std::map<const Stmt *, uint32_t> SiteIds;
  auto siteId = [&](const Stmt *S) {
    auto [It, New] = SiteIds.try_emplace(S, SiteIds.size());
    (void)New;
    return It->second;
  };
  // Findings deduplicated across fixpoint iterations.
  std::set<std::pair<uint32_t, const Stmt *>> Found;

  // Dense propagation: per basic-block IN sets, iterated to fixpoint per
  // function; every statement transfers the *whole* fact set (this is the
  // dense cost: |facts| work at every program point).
  for (Function *F : M.functions()) {
    std::map<const BasicBlock *, FactSet> In;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BasicBlock *B : reversePostOrder(*F)) {
        FactSet Cur;
        for (const BasicBlock *P : B->preds()) {
          const FactSet &PS = In[P]; // OUT == IN-at-end cached below.
          Cur.insert(PS.begin(), PS.end());
        }
        // Transfer through every statement.
        for (const Stmt *S : B->stmts()) {
          R.FactPropagations += Cur.size() + 1;
          switch (S->stmtKind()) {
          case Stmt::SK_Call: {
            const auto *Call = cast<CallStmt>(S);
            if (Call->calleeName() == intrinsics::Free &&
                !Call->args().empty()) {
              if (const auto *P = dyn_cast<Variable>(Call->args()[0]))
                Cur.insert({P, siteId(S)});
            } else if (Call->receiver() &&
                       Call->receiver()->type().isPointer()) {
              // Dense tools track every pointer value, not just freed ones.
              Cur.insert({Call->receiver(), siteId(S)});
            }
            break;
          }
          case Stmt::SK_Assign: {
            const auto *A = cast<AssignStmt>(S);
            if (const auto *Src = dyn_cast<Variable>(A->src()))
              for (const Fact &Fa : FactSet(Cur))
                if (Fa.V == Src)
                  Cur.insert({A->dst(), Fa.FreeSite});
            break;
          }
          case Stmt::SK_Phi: {
            const auto *Phi = cast<PhiStmt>(S);
            for (auto &[Pred, V] : Phi->incoming())
              if (const auto *Src = dyn_cast<Variable>(V))
                for (const Fact &Fa : FactSet(Cur))
                  if (Fa.V == Src)
                    Cur.insert({Phi->dst(), Fa.FreeSite});
            break;
          }
          case Stmt::SK_Load: {
            const auto *L = cast<LoadStmt>(S);
            if (L->dst()->type().isPointer())
              Cur.insert({L->dst(), siteId(S)});
            if (const auto *P = dyn_cast<Variable>(L->addr()))
              for (const Fact &Fa : Cur)
                if (Fa.V == P)
                  Found.insert({Fa.FreeSite, S});
            break;
          }
          case Stmt::SK_Store: {
            const auto *St = cast<StoreStmt>(S);
            if (const auto *P = dyn_cast<Variable>(St->addr()))
              for (const Fact &Fa : Cur)
                if (Fa.V == P)
                  Found.insert({Fa.FreeSite, S});
            break;
          }
          default:
            break;
          }
        }
        // Record as this block's OUT (reuse In map keyed by block).
        FactSet &Slot = In[B];
        if (Slot != Cur) {
          Slot = std::move(Cur);
          Changed = true;
        }
      }
    }
  }
  R.Findings = Found.size();
  return R;
}

} // namespace pinpoint::baselines
