//===- baselines/FSVFG.cpp ----------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/FSVFG.h"

#include <deque>
#include <set>

using namespace pinpoint::ir;

namespace pinpoint::baselines {

FSVFG::FSVFG(Module &M, Budget Budg)
    : M(M), B(Budg), PTA(M, Andersen::Budget{Budg.MaxPTAIterations}) {
  if (!PTA.solve()) {
    TimedOut = true;
    return;
  }
  build();
}

void FSVFG::addEdge(const Variable *From, const Variable *To) {
  if (TimedOut)
    return;
  Flow[From].push_back(To);
  if (++EdgeCount > B.MaxEdges)
    TimedOut = true;
}

void FSVFG::build() {
  // Group stores and loads by the objects their pointers may target, then
  // connect every store to every load of a shared object — the layered
  // design cannot do better without conditions.
  std::map<NodeId, std::vector<const StoreStmt *>> StoresOf;
  std::map<NodeId, std::vector<const LoadStmt *>> LoadsOf;

  for (Function *F : M.functions()) {
    for (BasicBlock *Blk : F->blocks()) {
      for (Stmt *S : Blk->stmts()) {
        if (TimedOut)
          return;
        switch (S->stmtKind()) {
        case Stmt::SK_Assign: {
          auto *A = cast<AssignStmt>(S);
          if (const auto *Src = dyn_cast<Variable>(A->src()))
            addEdge(Src, A->dst());
          break;
        }
        case Stmt::SK_Phi: {
          auto *Phi = cast<PhiStmt>(S);
          for (auto &[Pred, V] : Phi->incoming())
            if (const auto *Src = dyn_cast<Variable>(V))
              addEdge(Src, Phi->dst());
          break;
        }
        case Stmt::SK_Load: {
          auto *L = cast<LoadStmt>(S);
          if (const auto *P = dyn_cast<Variable>(L->addr()))
            for (NodeId Obj : PTA.pointsTo(P))
              LoadsOf[Obj].push_back(L);
          break;
        }
        case Stmt::SK_Store: {
          auto *St = cast<StoreStmt>(S);
          if (const auto *P = dyn_cast<Variable>(St->addr()))
            for (NodeId Obj : PTA.pointsTo(P))
              StoresOf[Obj].push_back(St);
          break;
        }
        case Stmt::SK_Call: {
          auto *Call = cast<CallStmt>(S);
          Function *Callee = Call->callee();
          if (!Callee)
            Callee = M.function(Call->calleeName());
          if (!Callee)
            break;
          size_t N = std::min(Call->args().size(), Callee->params().size());
          for (size_t I = 0; I < N; ++I)
            if (const auto *A = dyn_cast<Variable>(Call->args()[I]))
              addEdge(A, Callee->params()[I]);
          const ReturnStmt *Ret = Callee->returnStmt();
          if (Ret && Call->receiver() && !Ret->values().empty())
            if (const auto *RV = dyn_cast<Variable>(Ret->values()[0]))
              addEdge(RV, Call->receiver());
          break;
        }
        default:
          break;
        }
      }
    }
  }

  // The quadratic memory-edge product.
  for (auto &[Obj, Stores] : StoresOf) {
    auto It = LoadsOf.find(Obj);
    if (It == LoadsOf.end())
      continue;
    for (const StoreStmt *St : Stores) {
      const auto *Val = dyn_cast<Variable>(St->value());
      if (!Val)
        continue;
      for (const LoadStmt *L : It->second) {
        addEdge(Val, L->dst());
        if (TimedOut)
          return;
      }
    }
  }
}

size_t FSVFG::approxBytes() const {
  size_t Bytes = Flow.size() * (sizeof(void *) * 6);
  Bytes += EdgeCount * sizeof(void *);
  Bytes += PTA.totalPtsSize() * sizeof(NodeId) * 3; // Red-black overhead.
  return Bytes;
}

std::vector<FSVFG::Finding>
FSVFG::checkUseAfterFree(size_t MaxReports) {
  std::vector<Finding> Out;
  if (TimedOut)
    return Out;

  // Deref/free sites per variable.
  std::map<const Variable *, std::vector<const Stmt *>> SinkUses;
  std::vector<std::pair<const Variable *, const CallStmt *>> Sources;
  for (Function *F : M.functions())
    for (BasicBlock *Blk : F->blocks())
      for (Stmt *S : Blk->stmts()) {
        if (auto *L = dyn_cast<LoadStmt>(S)) {
          if (const auto *P = dyn_cast<Variable>(L->addr()))
            SinkUses[P].push_back(S);
        } else if (auto *St = dyn_cast<StoreStmt>(S)) {
          if (const auto *P = dyn_cast<Variable>(St->addr()))
            SinkUses[P].push_back(S);
        } else if (auto *Call = dyn_cast<CallStmt>(S)) {
          if (Call->calleeName() == intrinsics::Free &&
              !Call->args().empty())
            if (const auto *P = dyn_cast<Variable>(Call->args()[0])) {
              Sources.push_back({P, Call});
              SinkUses[P].push_back(S); // Double free counts as a use.
            }
        }
      }

  for (auto &[Src, FreeCall] : Sources) {
    // Forward reachability from the freed value, condition-free.
    std::set<const Variable *> Seen{Src};
    std::deque<const Variable *> Work{Src};
    while (!Work.empty()) {
      const Variable *V = Work.front();
      Work.pop_front();
      auto SU = SinkUses.find(V);
      if (SU != SinkUses.end()) {
        for (const Stmt *Use : SU->second) {
          if (Use == FreeCall)
            continue;
          Out.push_back({FreeCall->loc(), Use->loc(),
                         FreeCall->parent()->parent()->name(),
                         Use->parent()->parent()->name()});
          if (Out.size() >= MaxReports)
            return Out;
        }
      }
      for (const Variable *Next : flowsOut(V))
        if (Seen.insert(Next).second)
          Work.push_back(Next);
    }
  }
  return Out;
}

} // namespace pinpoint::baselines
