//===- baselines/Andersen.cpp ------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/Andersen.h"

#include <algorithm>

using namespace pinpoint::ir;

namespace pinpoint::baselines {

Andersen::Andersen(Module &M, Budget B) : M(M), B(B) {
  generateConstraints(M);
}

NodeId Andersen::varNode(const Variable *V) {
  auto It = VarNodes.find(V);
  if (It != VarNodes.end())
    return It->second;
  NodeId N = NumNodes++;
  Pts.emplace_back();
  Copies.emplace_back();
  ComplexOf.emplace_back();
  Contents.push_back(0);
  IsObject.push_back(false);
  VarNodes.emplace(V, N);
  // Pointer parameters may point anywhere outside: seed a fresh
  // outside-world object chain.
  if (V->isParam() && V->type().isPointer())
    seedOutsideWorld(N, V->type().pointerDepth());
  return N;
}

NodeId Andersen::valueNode(const Value *V) {
  if (const auto *Var = dyn_cast<Variable>(V))
    return varNode(Var);
  // Constants (null) share one sink node with an empty points-to set.
  if (!NullNodeValid) {
    NullNode = NumNodes++;
    Pts.emplace_back();
    Copies.emplace_back();
    ComplexOf.emplace_back();
    Contents.push_back(0);
    IsObject.push_back(false);
    NullNodeValid = true;
  }
  return NullNode;
}

NodeId Andersen::newObject() {
  NodeId Obj = NumNodes++;
  Pts.emplace_back();
  Copies.emplace_back();
  ComplexOf.emplace_back();
  Contents.push_back(0);
  IsObject.push_back(true);
  // Contents node.
  NodeId C = NumNodes++;
  Pts.emplace_back();
  Copies.emplace_back();
  ComplexOf.emplace_back();
  Contents.push_back(0);
  IsObject.push_back(false);
  Contents[Obj] = C;
  return Obj;
}

void Andersen::seedOutsideWorld(NodeId Node, int Depth) {
  NodeId Cur = Node;
  for (int I = 0; I < Depth; ++I) {
    NodeId Obj = newObject();
    Pts[Cur].insert(Obj);
    Cur = Contents[Obj];
  }
}

void Andersen::addCopy(NodeId From, NodeId To) {
  if (From != To)
    Copies[From].push_back(To);
}

void Andersen::generateConstraints(Module &M) {
  // Desugars *(p,k) by chasing through temporary nodes.
  auto derefChain = [&](const Value *Base, uint32_t K) {
    // Returns the node whose points-to set holds the *final-level* objects;
    // K-1 intermediate loads are materialised as complex constraints into
    // fresh temp nodes.
    NodeId Cur = valueNode(Base);
    for (uint32_t I = 1; I < K; ++I) {
      NodeId Tmp = NumNodes++;
      Pts.emplace_back();
      Copies.emplace_back();
      ComplexOf.emplace_back();
      Contents.push_back(0);
      IsObject.push_back(false);
      Complex.push_back({ComplexConstraint::Load, Cur, Tmp});
      ComplexOf[Cur].push_back(static_cast<uint32_t>(Complex.size() - 1));
      Cur = Tmp;
    }
    return Cur;
  };

  for (Function *F : M.functions()) {
    for (BasicBlock *Blk : F->blocks()) {
      for (Stmt *S : Blk->stmts()) {
        switch (S->stmtKind()) {
        case Stmt::SK_Assign: {
          auto *A = cast<AssignStmt>(S);
          addCopy(valueNode(A->src()), varNode(A->dst()));
          break;
        }
        case Stmt::SK_Phi: {
          auto *Phi = cast<PhiStmt>(S);
          for (auto &[Pred, V] : Phi->incoming())
            addCopy(valueNode(V), varNode(Phi->dst()));
          break;
        }
        case Stmt::SK_Load: {
          auto *L = cast<LoadStmt>(S);
          NodeId Ptr = derefChain(L->addr(), L->derefs());
          Complex.push_back(
              {ComplexConstraint::Load, Ptr, varNode(L->dst())});
          ComplexOf[Ptr].push_back(
              static_cast<uint32_t>(Complex.size() - 1));
          break;
        }
        case Stmt::SK_Store: {
          auto *St = cast<StoreStmt>(S);
          NodeId Ptr = derefChain(St->addr(), St->derefs());
          Complex.push_back(
              {ComplexConstraint::Store, Ptr, valueNode(St->value())});
          ComplexOf[Ptr].push_back(
              static_cast<uint32_t>(Complex.size() - 1));
          break;
        }
        case Stmt::SK_Call: {
          auto *Call = cast<CallStmt>(S);
          if (Call->calleeName() == intrinsics::Malloc &&
              Call->receiver()) {
            // Sequence carefully: newObject() reallocates Pts.
            NodeId Recv = varNode(Call->receiver());
            NodeId Obj = newObject();
            Pts[Recv].insert(Obj);
            break;
          }
          Function *Callee = Call->callee();
          if (!Callee)
            Callee = M.function(Call->calleeName());
          if (Callee) {
            // Context-insensitive parameter/return bindings.
            size_t N = std::min(Call->args().size(),
                                Callee->params().size());
            for (size_t I = 0; I < N; ++I)
              addCopy(valueNode(Call->args()[I]),
                      varNode(Callee->params()[I]));
            const ReturnStmt *Ret = Callee->returnStmt();
            if (Ret && Call->receiver() && !Ret->values().empty())
              addCopy(valueNode(Ret->values()[0]),
                      varNode(Call->receiver()));
          } else if (Call->receiver() &&
                     Call->receiver()->type().isPointer()) {
            // External call returning a pointer: outside world.
            seedOutsideWorld(varNode(Call->receiver()),
                             Call->receiver()->type().pointerDepth());
          }
          break;
        }
        default:
          break;
        }
      }
    }
  }
}

bool Andersen::solve() {
  std::vector<NodeId> Work;
  std::vector<bool> InWork(NumNodes, false);
  for (NodeId N = 0; N < NumNodes; ++N)
    if (!Pts[N].empty()) {
      Work.push_back(N);
      InWork[N] = true;
    }

  auto propagateInto = [&](NodeId To, const std::set<NodeId> &Delta) {
    size_t Before = Pts[To].size();
    Pts[To].insert(Delta.begin(), Delta.end());
    // The budget counts element-insertion work, so hitting it bounds wall
    // time regardless of set sizes (the 12h-timeout stand-in).
    Iterations += Delta.size();
    if (Pts[To].size() != Before && !InWork[To]) {
      Work.push_back(To);
      InWork[To] = true;
    }
  };

  while (!Work.empty()) {
    if (++Iterations > B.MaxIterations)
      return false;
    NodeId N = Work.back();
    Work.pop_back();
    InWork[N] = false;

    // Snapshot: propagation may insert into Pts[N] itself when the
    // constraint graph has cycles (e.g. self-referential cells).
    const std::set<NodeId> Snapshot = Pts[N];

    // Complex constraints on N materialise copy edges (so later growth of
    // the endpoints keeps propagating), then push the current sets.
    for (uint32_t CI : ComplexOf[N]) {
      const ComplexConstraint &C = Complex[CI];
      for (NodeId Obj : Snapshot) {
        if (!IsObject[Obj])
          continue;
        NodeId Cont = Contents[Obj];
        NodeId From = C.K == ComplexConstraint::Load ? Cont : C.Other;
        NodeId To = C.K == ComplexConstraint::Load ? C.Other : Cont;
        if (MaterialisedCopies.insert({From, To}).second)
          addCopy(From, To);
        propagateInto(To, Pts[From]);
      }
    }
    // Copy edges. Copies[N] may grow during materialisation above; index
    // iteration stays valid, and the snapshot avoids self-insertion UB.
    for (size_t I = 0; I < Copies[N].size(); ++I)
      propagateInto(Copies[N][I], Snapshot);
  }
  return true;
}

const std::set<NodeId> &Andersen::pointsTo(const Variable *V) const {
  auto It = VarNodes.find(V);
  return It == VarNodes.end() ? Empty : Pts[It->second];
}

bool Andersen::mayAlias(const Variable *A, const Variable *B) const {
  const auto &PA = pointsTo(A);
  const auto &PB = pointsTo(B);
  auto IA = PA.begin();
  auto IB = PB.begin();
  while (IA != PA.end() && IB != PB.end()) {
    if (*IA < *IB)
      ++IA;
    else if (*IB < *IA)
      ++IB;
    else
      return true;
  }
  return false;
}

size_t Andersen::totalPtsSize() const {
  size_t N = 0;
  for (const auto &S : Pts)
    N += S.size();
  return N;
}

} // namespace pinpoint::baselines
