//===- transform/Connectors.h - The connector model (paper Fig. 3) --------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic-preserving function transformation of Section 3.1.2. For
/// each function the Mod/Ref results of the local points-to analysis are
/// materialised on the interface:
///
///  * every REF'd access path *(p, k) rooted at a formal parameter becomes
///    an **Aux formal parameter** F with an entry store `*(p,k) ← F`;
///  * every MOD'd access path *(q, r) becomes an **Aux return value** R with
///    a pre-return load `R ← *(q,r)` appended to the return bundle;
///  * call sites of transformed callees get the mirrored plumbing:
///    `A ← *(u,k)` loads before the call (passed as extra arguments) and
///    `*(u,r) ← C` stores of the extra receivers after it (Fig. 3(b)).
///
/// These input/output connectors are what lets values of interest flow in
/// and out of a function scope on demand, instead of cloning MOD/REF
/// summaries into every caller.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_TRANSFORM_CONNECTORS_H
#define PINPOINT_TRANSFORM_CONNECTORS_H

#include "ir/CallGraph.h"
#include "ir/IR.h"
#include "pta/PointsTo.h"

#include <map>
#include <vector>

namespace pinpoint::transform {

/// The connector interface of a transformed function.
struct FunctionInterface {
  /// REF'd access paths, ordered by (parameter index, level); parallel to
  /// AuxParams.
  std::vector<pta::ParamPath> RefPaths;
  std::vector<ir::Variable *> AuxParams; ///< The F_i.

  /// MOD'd access paths, same ordering; parallel to AuxReturns and to the
  /// extra entries of the return bundle.
  std::vector<pta::ParamPath> ModPaths;
  std::vector<ir::Variable *> AuxReturns; ///< The R_p.

  /// Bindings for the second points-to pass: F_i ↦ *(root, level).
  std::map<const ir::Variable *, pta::AuxBinding> auxBindings() const {
    std::map<const ir::Variable *, pta::AuxBinding> Out;
    for (size_t I = 0; I < RefPaths.size(); ++I)
      Out[AuxParams[I]] = {RefPaths[I].first, RefPaths[I].second};
    return Out;
  }
};

/// Completed `FunctionInterface`s, pre-sized to one slot per function so
/// concurrent pipeline tasks never rehash a shared map. The index is built
/// once (single-threaded) from the module; `set` fills a function's slot
/// exactly once, and `find` returns null until then. Cross-thread
/// visibility is the scheduler's obligation: a caller's task only starts
/// after all its callee tasks finished (the dependency-count decrement is
/// an acquire/release edge), so no per-slot synchronisation is needed.
class InterfaceMap {
public:
  explicit InterfaceMap(const ir::Module &M) {
    Slots.resize(M.functions().size());
    size_t I = 0;
    for (const ir::Function *F : M.functions())
      Index.emplace(F, I++);
  }

  void set(const ir::Function *F, FunctionInterface IF) {
    Slot &S = Slots[Index.at(F)];
    S.IF = std::move(IF);
    S.Set = true;
  }

  /// The completed interface of \p F, or null if \p F is unknown or its
  /// pipeline task has not filled the slot.
  const FunctionInterface *find(const ir::Function *F) const {
    auto It = Index.find(F);
    if (It == Index.end() || !Slots[It->second].Set)
      return nullptr;
    return &Slots[It->second].IF;
  }

private:
  struct Slot {
    FunctionInterface IF;
    bool Set = false;
  };
  std::vector<Slot> Slots;
  std::map<const ir::Function *, size_t> Index; ///< Read-only after ctor.
};

/// Applies Fig. 3(a) to \p F (already in SSA): adds Aux formal parameters
/// and Aux return values for the REF/MOD sets in \p PTA, inserting the
/// entry stores and exit loads. Returns the new interface.
FunctionInterface applyInterfaceTransform(ir::Function &F,
                                          const pta::PointsToResult &PTA);

/// Replay overload for the incremental summary cache: applies the exact same
/// transform from pre-resolved path lists instead of a points-to result.
/// Both lists must already be in the canonical (parameter index, level)
/// order — the cache stores them in the order the original transform
/// produced, so a cached function's replayed IR is bit-identical to the
/// from-scratch build.
FunctionInterface
applyInterfaceTransform(ir::Function &F, std::vector<pta::ParamPath> RefPaths,
                        std::vector<pta::ParamPath> ModPaths);

/// Applies Fig. 3(b) to every call in \p F whose callee has an interface in
/// \p Interfaces. Intra-SCC (recursive) calls are left untouched — the
/// paper unrolls call-graph cycles once. Returns the number of rewritten
/// call sites.
unsigned rewriteCallSites(ir::Function &F, const ir::CallGraph &CG,
                          const InterfaceMap &Interfaces);

} // namespace pinpoint::transform

#endif // PINPOINT_TRANSFORM_CONNECTORS_H
