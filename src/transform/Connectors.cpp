//===- transform/Connectors.cpp ----------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/Connectors.h"

#include <algorithm>

using namespace pinpoint::ir;

namespace pinpoint::transform {

namespace {

/// Orders access paths by (parameter index, level) for a deterministic
/// interface layout.
std::vector<pta::ParamPath> sortedPaths(const std::set<pta::ParamPath> &In) {
  std::vector<pta::ParamPath> Out(In.begin(), In.end());
  std::sort(Out.begin(), Out.end(),
            [](const pta::ParamPath &A, const pta::ParamPath &B) {
              if (A.first->paramIndex() != B.first->paramIndex())
                return A.first->paramIndex() < B.first->paramIndex();
              return A.second < B.second;
            });
  return Out;
}

std::string pathName(const pta::ParamPath &P, const char *Prefix) {
  return std::string(Prefix) + "$" + P.first->name() + "$" +
         std::to_string(P.second);
}

} // namespace

FunctionInterface applyInterfaceTransform(Function &F,
                                          const pta::PointsToResult &PTA) {
  return applyInterfaceTransform(F, sortedPaths(PTA.refs()),
                                 sortedPaths(PTA.mods()));
}

FunctionInterface applyInterfaceTransform(Function &F,
                                          std::vector<pta::ParamPath> RefPaths,
                                          std::vector<pta::ParamPath> ModPaths) {
  FunctionInterface I;
  Module &M = *F.parent();

  // Aux formal parameters with entry stores *(p,k) ← F, inserted in
  // ascending level order so deeper paths resolve through shallower ones.
  I.RefPaths = std::move(RefPaths);
  std::vector<Stmt *> EntryStores;
  for (const pta::ParamPath &P : I.RefPaths) {
    Type AuxTy = P.first->type().deref(P.second);
    Variable *Aux = F.addAuxParam(AuxTy, pathName(P, "F"));
    I.AuxParams.push_back(Aux);
    auto *Store = M.make<StoreStmt>(const_cast<Variable *>(P.first),
                                    static_cast<uint32_t>(P.second), Aux,
                                    SourceLoc{});
    Store->setSynthetic(true);
    EntryStores.push_back(Store);
  }
  if (!EntryStores.empty()) {
    BasicBlock *Entry = F.entry();
    for (Stmt *S : EntryStores)
      S->setParent(Entry);
    Entry->stmts().insert(Entry->stmts().begin(), EntryStores.begin(),
                          EntryStores.end());
  }

  // Aux return values with pre-return loads R ← *(q,r).
  I.ModPaths = std::move(ModPaths);
  ReturnStmt *Ret = F.returnStmt();
  assert(Ret && "function must have its unified return");
  for (const pta::ParamPath &P : I.ModPaths) {
    Type AuxTy = P.first->type().deref(P.second);
    Variable *R = F.createVar(AuxTy, pathName(P, "R"));
    I.AuxReturns.push_back(R);
    auto *Load = M.make<LoadStmt>(R, const_cast<Variable *>(P.first),
                                  static_cast<uint32_t>(P.second),
                                  SourceLoc{});
    Load->setSynthetic(true);
    F.exitBlock()->insertBeforeTerminator(Load);
    R->setDef(Load);
    Ret->addValue(R);
  }

  if (!I.RefPaths.empty() || !I.ModPaths.empty())
    F.renumberStmts();
  return I;
}

unsigned rewriteCallSites(Function &F, const CallGraph &CG,
                          const InterfaceMap &Interfaces) {
  Module &M = *F.parent();
  unsigned Rewritten = 0;

  for (BasicBlock *B : F.blocks()) {
    std::vector<Stmt *> NewStmts;
    NewStmts.reserve(B->stmts().size());
    bool Changed = false;

    for (Stmt *S : B->stmts()) {
      auto *Call = dyn_cast<CallStmt>(S);
      Function *Callee = Call ? Call->callee() : nullptr;
      const FunctionInterface *CIP =
          (Call && Callee && !CG.inSameSCC(&F, Callee))
              ? Interfaces.find(Callee)
              : nullptr;
      if (!CIP) {
        NewStmts.push_back(S);
        continue;
      }
      const FunctionInterface &CI = *CIP;
      if (CI.RefPaths.empty() && CI.ModPaths.empty()) {
        NewStmts.push_back(S);
        continue;
      }
      ++Rewritten;
      Changed = true;

      // A_i ← *(u_j, k) for every Aux formal parameter of the callee.
      for (size_t Idx = 0; Idx < CI.RefPaths.size(); ++Idx) {
        const pta::ParamPath &P = CI.RefPaths[Idx];
        int ArgIdx = P.first->paramIndex();
        assert(ArgIdx >= 0 &&
               static_cast<size_t>(ArgIdx) < Call->args().size() &&
               "callee param without matching actual");
        Value *Actual = Call->args()[ArgIdx];
        Variable *A = F.createVar(CI.AuxParams[Idx]->type(),
                                  "A$" + std::to_string(Idx));
        if (Actual->type().pointerDepth() >= P.second) {
          auto *Load =
              M.make<LoadStmt>(A, Actual, static_cast<uint32_t>(P.second),
                               Call->loc());
          Load->setSynthetic(true);
          Load->setParent(B);
          A->setDef(Load);
          NewStmts.push_back(Load);
        }
        // Even for a degenerate actual (e.g. null) the argument slot must
        // exist; A stays unconstrained then.
        Call->addArg(A);
      }

      NewStmts.push_back(Call);

      // *(u_q, r) ← C_p for every Aux return value of the callee.
      for (size_t Idx = 0; Idx < CI.ModPaths.size(); ++Idx) {
        const pta::ParamPath &P = CI.ModPaths[Idx];
        int ArgIdx = P.first->paramIndex();
        Value *Actual = Call->args()[ArgIdx];
        Variable *C = F.createVar(CI.AuxReturns[Idx]->type(),
                                  "C$" + std::to_string(Idx));
        Call->addAuxReceiver(C);
        C->setDef(Call);
        if (Actual->type().pointerDepth() >= P.second) {
          auto *Store = M.make<StoreStmt>(
              Actual, static_cast<uint32_t>(P.second), C, Call->loc());
          Store->setSynthetic(true);
          Store->setParent(B);
          NewStmts.push_back(Store);
        }
      }
    }

    if (Changed)
      B->stmts() = std::move(NewStmts);
  }

  if (Rewritten)
    F.renumberStmts();
  return Rewritten;
}

} // namespace pinpoint::transform
