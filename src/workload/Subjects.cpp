//===- workload/Subjects.cpp ----------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workload/Subjects.h"

#include <algorithm>
#include <cstdlib>

namespace pinpoint::workload {

const std::vector<Subject> &table1Subjects() {
  // Sizes and report counts from Table 1 of the paper; Pinpoint's two false
  // positives (MySQL, Firefox) appear as EnvGuarded plants.
  static const std::vector<Subject> Subjects = {
      {"mcf", "SPEC", 2, 0, 0},
      {"bzip2", "SPEC", 3, 0, 0},
      {"gzip", "SPEC", 6, 0, 0},
      {"parser", "SPEC", 8, 0, 0},
      {"vpr", "SPEC", 11, 0, 0},
      {"crafty", "SPEC", 13, 0, 0},
      {"twolf", "SPEC", 18, 0, 0},
      {"eon", "SPEC", 22, 0, 0},
      {"gap", "SPEC", 36, 0, 0},
      {"vortex", "SPEC", 49, 0, 0},
      {"perkbmk", "SPEC", 73, 0, 0},
      {"gcc", "SPEC", 135, 0, 0},
      {"webassembly", "OpenSource", 23, 1, 0},
      {"darknet", "OpenSource", 24, 0, 0},
      {"html5-parser", "OpenSource", 31, 0, 0},
      {"tmux", "OpenSource", 40, 0, 0},
      {"libssh", "OpenSource", 44, 1, 0},
      {"goacess", "OpenSource", 48, 1, 0},
      {"shadowsocks", "OpenSource", 53, 2, 0},
      {"swoole", "OpenSource", 54, 0, 0},
      {"libuv", "OpenSource", 62, 0, 0},
      {"transmission", "OpenSource", 88, 1, 0},
      {"git", "OpenSource", 185, 0, 0},
      {"vim", "OpenSource", 333, 0, 0},
      {"wrk", "OpenSource", 340, 0, 0},
      {"libicu", "OpenSource", 537, 1, 0},
      {"php", "OpenSource", 863, 0, 0},
      {"ffmpeg", "OpenSource", 967, 0, 0},
      {"mysql", "OpenSource", 2030, 4, 1},
      {"firefox", "OpenSource", 7998, 1, 1},
  };
  return Subjects;
}

WorkloadConfig configFor(const Subject &S, double Scale) {
  WorkloadConfig Cfg;
  Cfg.Seed = 0x5eed0000 + static_cast<uint64_t>(S.PaperKLoC * 7);
  Cfg.TargetLoC = static_cast<size_t>(
      std::max(300.0, S.PaperKLoC * 1000.0 * Scale));
  Cfg.FeasibleUAF = S.FeasibleUAF;
  Cfg.EnvGuardedUAF = S.EnvGuardedUAF;
  // Infeasible plants and alias noise scale with subject size: they feed
  // the layered baseline's false positives and graph blow-up.
  Cfg.InfeasibleUAF = 2 + static_cast<int>(Cfg.TargetLoC / 400);
  Cfg.AliasNoise = 2 + static_cast<int>(Cfg.TargetLoC / 300);
  Cfg.CallDepth = 4;
  return Cfg;
}

double benchScaleFromEnv(double Def) {
  if (const char *Env = std::getenv("PINPOINT_BENCH_SCALE")) {
    double V = std::atof(Env);
    if (V > 0)
      return V;
  }
  return Def;
}

} // namespace pinpoint::workload
