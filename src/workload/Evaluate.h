//===- workload/Evaluate.h - Ground-truth report classification -----------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies tool reports against a workload's planted ground truth by
/// source/sink line match. Replaces the original study's manual triage with
/// a mechanical oracle: feasible bugs are true positives; infeasible or
/// environment-guarded plants (and unmatched reports) are false positives;
/// unreported feasible plants are false negatives.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_WORKLOAD_EVALUATE_H
#define PINPOINT_WORKLOAD_EVALUATE_H

#include "workload/Generator.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace pinpoint::workload {

/// Minimal view of a tool report for classification.
struct ReportView {
  uint32_t SourceLine;
  uint32_t SinkLine;
  BugChecker Checker;
};

struct EvalResult {
  int TruePositives = 0;
  int FalsePositives = 0;
  int FalseNegatives = 0;
  int Reports = 0;

  double fpRate() const {
    return Reports == 0 ? 0.0
                        : static_cast<double>(FalsePositives) / Reports;
  }
  double recall() const {
    int Total = TruePositives + FalseNegatives;
    return Total == 0 ? 1.0 : static_cast<double>(TruePositives) / Total;
  }
};

/// Classifies \p Reports of one checker against \p Bugs.
EvalResult evaluate(const std::vector<PlantedBug> &Bugs,
                    const std::vector<ReportView> &Reports,
                    BugChecker Checker);

} // namespace pinpoint::workload

#endif // PINPOINT_WORKLOAD_EVALUATE_H
