//===- workload/Generator.cpp --------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"
#include "support/RNG.h"

namespace pinpoint::workload {

namespace {

/// Emits source text while tracking line numbers.
class Emitter {
public:
  /// Emits one line (no embedded newlines) and returns its line number.
  uint32_t line(const std::string &Text) {
    Out += Text;
    Out += '\n';
    return Line++;
  }
  void blank() { line(""); }

  const std::string &text() const { return Out; }
  uint32_t currentLine() const { return Line; }

private:
  std::string Out;
  uint32_t Line = 1;
};

class Generator {
public:
  Generator(const WorkloadConfig &Cfg) : Cfg(Cfg), Rand(Cfg.Seed) {}

  Workload run();

private:
  std::string uid(const std::string &Base) {
    return Base + "_" + std::to_string(NextId++);
  }

  //===--- Filler ----------------------------------------------------------===

  /// Central pointer-plumbing helpers shared by the whole subject — the
  /// memcpy/container-utility pattern of real code. A context-insensitive
  /// global points-to analysis merges every caller's slots and values at
  /// the hub formals (the "pointer trap"), so FSVFG memory edges grow
  /// quadratically; Pinpoint analyses each hub once and keeps callers
  /// separate through connectors.
  void emitHubs();
  std::string hubPut() { return "hub_put_" + std::to_string(Rand.below(NumHubs)); }
  std::string hubGet() { return "hub_get_" + std::to_string(Rand.below(NumHubs)); }
  std::string hubNew() { return "new_cell_" + std::to_string(Rand.below(NumHubs)); }

  /// An arithmetic helper (~7 lines); returns its name.
  std::string emitMathFiller();
  /// A pointer-plumbing helper that loads/stores through a heap cell and a
  /// parameter (~10 lines) — alias-noise food for a global analysis.
  std::string emitPtrFiller();
  /// A call-chain wrapper over previously generated fillers.
  std::string emitChainFiller();

  //===--- Bug patterns ----------------------------------------------------===

  void plantUAF(BugKind K);
  void plantDoubleFree();
  void plantTaint(BugChecker C, BugKind K);
  void emitAliasNoise();

  /// Registers a planted bug.
  void record(BugKind K, BugChecker C, const std::string &Shape,
              uint32_t Src, uint32_t Snk) {
    W.Bugs.push_back({K, C, Shape, Src, Snk});
  }

  const WorkloadConfig &Cfg;
  RNG Rand;
  Emitter E;
  Workload W;
  unsigned NextId = 0;
  static constexpr uint64_t NumHubs = 2;
  std::vector<std::string> MathFillers, PtrFillers, ChainFillers;
};

void Generator::emitHubs() {
  for (uint64_t H = 0; H < NumHubs; ++H) {
    std::string N = std::to_string(H);
    // A central allocator: one malloc site serving the whole subject, like
    // a pool/arena/constructor helper in real code. A context-insensitive
    // analysis gives every caller the *same* abstract cell, so all their
    // stores and loads alias pairwise (the quadratic FSVFG blow-up);
    // Pinpoint sees an opaque callee-returned pointer per caller.
    E.line("int **new_cell_" + N + "() {");
    E.line("  int **c = malloc();");
    E.line("  return c;");
    E.line("}");
    E.line("int *hub_put_" + N + "(int **slot, int *v) {");
    E.line("  *slot = v;");
    E.line("  return v;");
    E.line("}");
    E.line("int *hub_get_" + N + "(int **slot) {");
    E.line("  int *r = *slot;");
    E.line("  return r;");
    E.line("}");
    E.blank();
  }
}

//===----------------------------------------------------------------------===
// Filler
//===----------------------------------------------------------------------===

std::string Generator::emitMathFiller() {
  std::string Name = uid("calc");
  int64_t A = Rand.range(1, 9), B = Rand.range(2, 7), C = Rand.range(10, 90);
  E.line("int " + Name + "(int a, int b) {");
  E.line("  int c = a * " + std::to_string(A) + " + b;");
  E.line("  if (c > " + std::to_string(C) + ") {");
  E.line("    c = c - " + std::to_string(B) + ";");
  E.line("  } else {");
  E.line("    c = c + " + std::to_string(B) + ";");
  E.line("  }");
  E.line("  return c;");
  E.line("}");
  E.blank();
  MathFillers.push_back(Name);
  return Name;
}

std::string Generator::emitPtrFiller() {
  std::string Name = uid("shuffle");
  E.line("int " + Name + "(int *p, int *q, bool sel) {");
  E.line("  int **cell = " + hubNew() + "();");
  E.line("  *cell = p;");
  E.line("  if (sel) {");
  E.line("    *cell = q;");
  E.line("  }");
  E.line("  int *got = *cell;");
  E.line("  int v = *got;");
  E.line("  *q = v + 1;");
  E.line("  return v;");
  E.line("}");
  E.blank();
  PtrFillers.push_back(Name);
  return Name;
}

std::string Generator::emitChainFiller() {
  // Pointer-carrying call trees over shared data: each new chain function
  // stores through its parameter and calls two previously generated chains
  // with the same pointer. Connector interfaces stay constant-size
  // (everything collapses to *(p,1)), while inlining-style MOD/REF
  // summaries multiply along every call path.
  std::string Name = uid("chain");
  E.line("int " + Name + "(int *p, int x) {");
  E.line("  *p = x;");
  if (ChainFillers.empty()) {
    E.line("  int a = *p + 1;");
    E.line("  int b = x - 1;");
  } else {
    const std::string &C1 = ChainFillers[Rand.below(ChainFillers.size())];
    const std::string &C2 = ChainFillers[Rand.below(ChainFillers.size())];
    E.line("  int a = " + C1 + "(p, x + 1);");
    E.line("  int b = " + C2 + "(p, a);");
  }
  E.line("  if (a > b) {");
  E.line("    return a - b;");
  E.line("  }");
  E.line("  return b + *p;");
  E.line("}");
  E.blank();
  ChainFillers.push_back(Name);
  return Name;
}

//===----------------------------------------------------------------------===
// Use-after-free patterns
//===----------------------------------------------------------------------===

void Generator::plantUAF(BugKind K) {
  std::string Id = uid("uaf");
  int Shape = static_cast<int>(Rand.below(4));

  // Guard pair: feasible bugs share a guard on both sides; infeasible ones
  // get complementary guards; env-guarded ones use a "config" int the
  // oracle knows is never large.
  std::string SrcGuard, SnkGuard;
  switch (K) {
  case BugKind::Feasible:
    SrcGuard = "flag";
    SnkGuard = "flag";
    break;
  case BugKind::Infeasible:
    // The paper observes that >90% of infeasible path conditions are "easy"
    // (syntactic a ∧ ¬a); the plant mix mirrors that 9:1 split, leaving the
    // arithmetic contradictions for the SMT stage.
    if (Rand.chance(9, 10)) {
      SrcGuard = "flag";
      SnkGuard = "!flag";
    } else {
      SrcGuard = "lvl > 5";
      SnkGuard = "lvl < 2";
    }
    break;
  case BugKind::EnvGuarded:
    SrcGuard = "cfg > 100";
    SnkGuard = "cfg > 100";
    break;
  }

  uint32_t Src = 0, Snk = 0;
  switch (Shape) {
  case 0: { // Intra-procedural, aliased copy.
    E.line("int " + Id + "(int *p, bool flag, int lvl, int cfg) {");
    E.line("  int *alias = p;");
    E.line("  int out = 0;");
    E.line("  if (" + SrcGuard + ") {");
    Src = E.line("    free(alias);");
    E.line("  }");
    E.line("  if (" + SnkGuard + ") {");
    Snk = E.line("    out = *p;");
    E.line("  }");
    E.line("  return out;");
    E.line("}");
    record(K, BugChecker::UseAfterFree, "intra-alias", Src, Snk);
    break;
  }
  case 1: { // Through a heap cell.
    E.line("int " + Id + "(int *p, bool flag, int lvl, int cfg) {");
    E.line("  int **cell = malloc();");
    E.line("  *cell = p;");
    E.line("  int out = 0;");
    E.line("  if (" + SrcGuard + ") {");
    Src = E.line("    free(p);");
    E.line("  }");
    E.line("  int *got = *cell;");
    E.line("  if (" + SnkGuard + ") {");
    Snk = E.line("    out = *got;");
    E.line("  }");
    E.line("  return out;");
    E.line("}");
    record(K, BugChecker::UseAfterFree, "intra-heap", Src, Snk);
    break;
  }
  case 2: { // Free in a callee chain (VF3), use in the caller.
    int Depth = 1 + static_cast<int>(Rand.below(
                        static_cast<uint64_t>(Cfg.CallDepth)));
    std::string Prev = Id + "_d0";
    E.line("void " + Prev + "(int *h) {");
    Src = E.line("  free(h);");
    E.line("}");
    for (int D = 1; D < Depth; ++D) {
      std::string Cur = Id + "_d" + std::to_string(D);
      E.line("void " + Cur + "(int *h) {");
      E.line("  " + Prev + "(h);");
      E.line("}");
      Prev = Cur;
    }
    E.line("int " + Id + "(int *p, bool flag, int lvl, int cfg) {");
    E.line("  int out = 0;");
    E.line("  if (" + SrcGuard + ") {");
    E.line("    " + Prev + "(p);");
    E.line("  }");
    E.line("  if (" + SnkGuard + ") {");
    Snk = E.line("    out = *p;");
    E.line("  }");
    E.line("  return out;");
    E.line("}");
    record(K, BugChecker::UseAfterFree, "interproc-vf3", Src, Snk);
    break;
  }
  default: { // The paper's Fig. 1 shape: freed pointer escapes through *q.
    std::string Callee = Id + "_bar";
    E.line("void " + Callee + "(int **q, bool inner) {");
    E.line("  int *fresh = malloc();");
    E.line("  if (*q != 0) {");
    E.line("    *q = fresh;");
    Src = E.line("    free(fresh);");
    E.line("  }");
    E.line("}");
    E.line("int " + Id + "(int *a, bool flag, int lvl, int cfg) {");
    E.line("  int **ptr = malloc();");
    E.line("  *ptr = a;");
    E.line("  int out = 0;");
    E.line("  if (" + SrcGuard + ") {");
    E.line("    " + Callee + "(ptr, flag);");
    E.line("  }");
    E.line("  int *f = *ptr;");
    E.line("  if (" + SnkGuard + ") {");
    Snk = E.line("    out = *f;");
    E.line("  }");
    E.line("  return out;");
    E.line("}");
    record(K, BugChecker::UseAfterFree, "connector-escape", Src, Snk);
    break;
  }
  }
  E.blank();
}

void Generator::plantDoubleFree() {
  std::string Id = uid("df");
  if (Rand.chance(1, 2)) {
    E.line("void " + Id + "(int *p, bool flag) {");
    uint32_t Src = E.line("  free(p);");
    E.line("  int *r = p;");
    uint32_t Snk = E.line("  free(r);");
    E.line("}");
    record(BugKind::Feasible, BugChecker::DoubleFree, "intra", Src, Snk);
  } else {
    std::string Callee = Id + "_rel";
    E.line("void " + Callee + "(int *h) {");
    uint32_t Src = E.line("  free(h);");
    E.line("}");
    E.line("void " + Id + "(int *p, bool flag) {");
    E.line("  " + Callee + "(p);");
    uint32_t Snk = E.line("  " + Callee + "(p);");
    E.line("}");
    // Both the source and sink resolve to the free inside the callee; the
    // engine reports the callee's free line for both ends.
    record(BugKind::Feasible, BugChecker::DoubleFree, "interproc", Src, Src);
    (void)Snk;
  }
  E.blank();
}

//===----------------------------------------------------------------------===
// Taint patterns
//===----------------------------------------------------------------------===

void Generator::plantTaint(BugChecker C, BugKind K) {
  std::string Id = uid(C == BugChecker::PathTraversal ? "pt" : "dt");
  const char *SourceFn =
      C == BugChecker::PathTraversal ? "fgetc" : "getpass";
  const char *SinkFn = C == BugChecker::PathTraversal ? "fopen" : "sendto";

  std::string SrcGuard, SnkGuard;
  switch (K) {
  case BugKind::Feasible:
    SrcGuard = "flag";
    SnkGuard = "flag";
    break;
  case BugKind::Infeasible:
    SrcGuard = "flag";
    SnkGuard = "!flag";
    break;
  case BugKind::EnvGuarded:
    SrcGuard = "cfg > 100";
    SnkGuard = "cfg > 100";
    break;
  }

  uint32_t Src = 0, Snk = 0;
  if (Rand.chance(1, 2)) {
    // Direct, branch-guarded.
    E.line("void " + Id + "(bool flag, int cfg) {");
    E.line("  int data = 0;");
    E.line("  if (" + SrcGuard + ") {");
    Src = E.line("    data = " + std::string(SourceFn) + "();");
    E.line("  }");
    E.line("  int cooked = data + 7;");
    E.line("  if (" + SnkGuard + ") {");
    Snk = E.line("    " + std::string(SinkFn) + "(cooked);");
    E.line("  }");
    E.line("}");
    record(K, C, "taint-direct", Src, Snk);
  } else {
    // Through a callee and the heap.
    std::string Reader = Id + "_read";
    E.line("int " + Reader + "() {");
    Src = E.line("  int raw = " + std::string(SourceFn) + "();");
    E.line("  return raw;");
    E.line("}");
    E.line("void " + Id + "(bool flag, int cfg) {");
    E.line("  int *cell = malloc();");
    E.line("  if (" + SrcGuard + ") {");
    E.line("    *cell = " + Reader + "();");
    E.line("  } else {");
    E.line("    *cell = 5;");
    E.line("  }");
    E.line("  int out = *cell;");
    E.line("  if (" + SnkGuard + ") {");
    Snk = E.line("    " + std::string(SinkFn) + "(out);");
    E.line("  }");
    E.line("}");
    record(K, C, "taint-heap", Src, Snk);
  }
  E.blank();
}

//===----------------------------------------------------------------------===
// Alias noise
//===----------------------------------------------------------------------===

void Generator::emitAliasNoise() {
  // A cluster of functions passing pointers around and storing/loading
  // through them: a flow-insensitive global analysis merges all of this
  // into fat may-alias classes, multiplying FSVFG memory edges.
  std::string Id = uid("noise");
  E.line("void " + Id + "_sink(int **a, int **b, int *v) {");
  E.line("  *a = v;");
  E.line("  *b = v;");
  E.line("}");
  E.line("int " + Id + "(int *x, int *y, bool s) {");
  E.line("  int **m = " + hubNew() + "();");
  E.line("  int **n = " + hubNew() + "();");
  E.line("  *m = x;");
  E.line("  *n = y;");
  E.line("  " + Id + "_sink(m, n, x);");
  E.line("  " + Id + "_sink(n, m, y);");
  E.line("  int *r1 = *m;");
  E.line("  int *r2 = *n;");
  E.line("  int acc = *r1 + *r2;");
  E.line("  if (s) {");
  E.line("    acc = acc + *r1;");
  E.line("  }");
  E.line("  return acc;");
  E.line("}");
  E.blank();
}

//===----------------------------------------------------------------------===
// Driver
//===----------------------------------------------------------------------===

Workload Generator::run() {
  E.line("// Auto-generated subject; seed " + std::to_string(Cfg.Seed));
  E.blank();

  emitHubs();

  // Seed fillers so chains have callees.
  emitMathFiller();
  emitPtrFiller();

  for (int I = 0; I < Cfg.FeasibleUAF; ++I)
    plantUAF(BugKind::Feasible);
  for (int I = 0; I < Cfg.InfeasibleUAF; ++I)
    plantUAF(BugKind::Infeasible);
  for (int I = 0; I < Cfg.EnvGuardedUAF; ++I)
    plantUAF(BugKind::EnvGuarded);
  for (int I = 0; I < Cfg.FeasibleDF; ++I)
    plantDoubleFree();
  for (int I = 0; I < Cfg.FeasibleTaint; ++I) {
    plantTaint(BugChecker::PathTraversal, BugKind::Feasible);
    plantTaint(BugChecker::DataTransmission, BugKind::Feasible);
  }
  for (int I = 0; I < Cfg.InfeasibleTaint; ++I) {
    plantTaint(BugChecker::PathTraversal, BugKind::Infeasible);
    plantTaint(BugChecker::DataTransmission, BugKind::Infeasible);
  }
  for (int I = 0; I < Cfg.EnvGuardedTaint; ++I) {
    plantTaint(BugChecker::PathTraversal, BugKind::EnvGuarded);
    plantTaint(BugChecker::DataTransmission, BugKind::EnvGuarded);
  }
  for (int I = 0; I < Cfg.AliasNoise; ++I)
    emitAliasNoise();

  // Fill to the size target.
  while (E.currentLine() <= Cfg.TargetLoC) {
    switch (Rand.below(3)) {
    case 0:
      emitMathFiller();
      break;
    case 1:
      emitPtrFiller();
      break;
    default:
      emitChainFiller();
      break;
    }
  }

  W.Source = E.text();
  W.LoC = E.currentLine() - 1;
  return std::move(W);
}

} // namespace

Workload generate(const WorkloadConfig &Config) {
  return Generator(Config).run();
}

} // namespace pinpoint::workload
