//===- workload/Evaluate.cpp ----------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workload/Evaluate.h"

#include <set>

namespace pinpoint::workload {

EvalResult evaluate(const std::vector<PlantedBug> &Bugs,
                    const std::vector<ReportView> &Reports,
                    BugChecker Checker) {
  EvalResult R;
  std::set<size_t> MatchedBugs;

  auto matches = [](const PlantedBug &B, const ReportView &Rep) {
    // Source must match exactly; the sink may legitimately be attributed to
    // a nearby statement of the same pattern, so allow a small window.
    return B.SourceLine == Rep.SourceLine &&
           (B.SinkLine == Rep.SinkLine ||
            (Rep.SinkLine >= B.SinkLine - 1 &&
             Rep.SinkLine <= B.SinkLine + 1));
  };

  for (const ReportView &Rep : Reports) {
    if (Rep.Checker != Checker)
      continue;
    ++R.Reports;
    bool Matched = false;
    for (size_t I = 0; I < Bugs.size(); ++I) {
      const PlantedBug &B = Bugs[I];
      if (B.Checker != Checker || !matches(B, Rep))
        continue;
      Matched = true;
      MatchedBugs.insert(I);
      if (B.Kind == BugKind::Feasible)
        ++R.TruePositives;
      else
        ++R.FalsePositives; // Infeasible or environment-guarded plant.
      break;
    }
    if (!Matched)
      ++R.FalsePositives; // Spurious report outside the ground truth.
  }

  for (size_t I = 0; I < Bugs.size(); ++I)
    if (Bugs[I].Checker == Checker && Bugs[I].Kind == BugKind::Feasible &&
        !MatchedBugs.count(I))
      ++R.FalseNegatives;

  return R;
}

} // namespace pinpoint::workload
