//===- workload/Subjects.h - The paper's 30-subject benchmark table -------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thirty subjects of the paper's evaluation (SPEC CINT2000 plus
/// eighteen open-source projects, Table 1), emulated as generated MiniC
/// subjects: each entry carries the paper-reported size and a bug-planting
/// profile mirroring Table 1's Pinpoint column (confirmed bugs; the MySQL
/// and Firefox false positives become environment-guarded plants).
///
/// Generated sizes are `PaperKLoC × 1000 × Scale` lines; the benchmarks
/// default Scale so the whole table runs on a small machine and raise it
/// via the PINPOINT_BENCH_SCALE environment variable.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_WORKLOAD_SUBJECTS_H
#define PINPOINT_WORKLOAD_SUBJECTS_H

#include "workload/Generator.h"

#include <vector>

namespace pinpoint::workload {

struct Subject {
  const char *Name;
  const char *Origin; ///< "SPEC" or "OpenSource".
  double PaperKLoC;   ///< Size reported in the paper.
  int FeasibleUAF;    ///< Table 1 true positives.
  int EnvGuardedUAF;  ///< Table 1 false positives (env-guarded plants).
};

/// The thirty subjects in Table 1 order (by size within each origin).
const std::vector<Subject> &table1Subjects();

/// Builds the generator config for a subject at the given scale
/// (lines = PaperKLoC * 1000 * Scale, with a floor so tiny subjects still
/// exercise the pipeline). Infeasible plants and alias noise grow with
/// size, giving the layered baseline its Table 1 report counts.
WorkloadConfig configFor(const Subject &S, double Scale);

/// Reads PINPOINT_BENCH_SCALE (default \p Def).
double benchScaleFromEnv(double Def);

} // namespace pinpoint::workload

#endif // PINPOINT_WORKLOAD_SUBJECTS_H
