//===- workload/Generator.h - Synthetic subject generator -----------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of MiniC "subjects" standing in for the paper's
/// open-source code bases (SPEC CINT2000 + eighteen C/C++ projects). Each
/// subject is generated to a target size and salted with:
///
///  * **feasible bugs** — real use-after-free / double-free / taint flows,
///    several shapes (intra-procedural, aliased, through the heap, across
///    call chains via the connector patterns of the paper's Fig. 1);
///  * **infeasible bugs** — the same shapes guarded by contradictory path
///    conditions (boolean or arithmetic); a path-sensitive tool must prune
///    them, a layered/condition-free one reports them (Table 1's SVF
///    column);
///  * **environment-guarded pseudo-bugs** — statically feasible flows that
///    the ground truth marks as false positives (modelling invariants no
///    static tool can see — the source of Pinpoint's own 14-24% FP rate);
///  * **alias noise** — store/load plumbing that bloats a global
///    points-to/FSVFG construction but is invisible to local reasoning.
///
/// Every planted bug records its source/sink lines; the evaluation harness
/// (workload/Evaluate.h) classifies tool reports against this ground truth
/// mechanically, removing the manual-triage subjectivity of the original
/// study.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_WORKLOAD_GENERATOR_H
#define PINPOINT_WORKLOAD_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace pinpoint::workload {

enum class BugKind : uint8_t {
  Feasible,   ///< A real bug; a sound tool should report it.
  Infeasible, ///< Contradictory path conditions; reports are FPs.
  EnvGuarded, ///< Statically feasible, dynamically impossible: FP by oracle.
};

enum class BugChecker : uint8_t {
  UseAfterFree,
  DoubleFree,
  PathTraversal,
  DataTransmission,
};

struct PlantedBug {
  BugKind Kind;
  BugChecker Checker;
  std::string Shape;   ///< Pattern name (for diagnostics).
  uint32_t SourceLine; ///< Line of the source statement (e.g. free).
  uint32_t SinkLine;   ///< Line of the sink statement (e.g. deref).
};

struct WorkloadConfig {
  uint64_t Seed = 1;
  /// Approximate generated size in lines of code.
  size_t TargetLoC = 1000;
  /// Planted bug counts.
  int FeasibleUAF = 0;
  int InfeasibleUAF = 0;
  int EnvGuardedUAF = 0;
  int FeasibleDF = 0;
  int FeasibleTaint = 0;
  int InfeasibleTaint = 0;
  int EnvGuardedTaint = 0;
  /// Alias-noise clusters (each ~ a dozen store/load pairs).
  int AliasNoise = 4;
  /// Depth of call chains in inter-procedural patterns.
  int CallDepth = 3;
};

struct Workload {
  std::string Source;
  std::vector<PlantedBug> Bugs;
  size_t LoC = 0;
};

/// Generates a subject. Deterministic in the config.
Workload generate(const WorkloadConfig &Config);

} // namespace pinpoint::workload

#endif // PINPOINT_WORKLOAD_GENERATOR_H
