//===- workload/Juliet.cpp ------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workload/Juliet.h"

namespace pinpoint::workload {

std::vector<JulietCase> generateJulietSuite(int CasesPerFamily) {
  std::vector<JulietCase> Cases;
  int CaseId = 0;

  // Bad cases: one feasible bug, every shape reachable via seeds.
  auto addBad = [&](BugChecker C, uint64_t Seed) {
    WorkloadConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.TargetLoC = 1; // No filler beyond the pattern itself.
    Cfg.AliasNoise = 0;
    Cfg.CallDepth = 3;
    switch (C) {
    case BugChecker::UseAfterFree:
      Cfg.FeasibleUAF = 1;
      break;
    case BugChecker::DoubleFree:
      Cfg.FeasibleDF = 1;
      break;
    case BugChecker::PathTraversal:
    case BugChecker::DataTransmission:
      Cfg.FeasibleTaint = 1;
      break;
    }
    Workload W = generate(Cfg);
    Cases.push_back({"bad_" + std::to_string(CaseId++), std::move(W.Source),
                     true, std::move(W.Bugs), C});
  };

  // Good cases: the same shapes with contradictory guards (runtime-
  // infeasible), or plain bug-free code.
  auto addGoodInfeasible = [&](BugChecker C, uint64_t Seed) {
    WorkloadConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.TargetLoC = 1;
    Cfg.AliasNoise = 0;
    switch (C) {
    case BugChecker::UseAfterFree:
      Cfg.InfeasibleUAF = 1;
      break;
    case BugChecker::DoubleFree:
      // No infeasible DF shape in the generator; use UAF's.
      Cfg.InfeasibleUAF = 1;
      break;
    case BugChecker::PathTraversal:
    case BugChecker::DataTransmission:
      Cfg.InfeasibleTaint = 1;
      break;
    }
    Workload W = generate(Cfg);
    Cases.push_back({"good_inf_" + std::to_string(CaseId++),
                     std::move(W.Source), false, std::move(W.Bugs), C});
  };

  auto addGoodClean = [&](BugChecker C, uint64_t Seed) {
    WorkloadConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.TargetLoC = 60; // Filler only.
    Cfg.AliasNoise = 1;
    Workload W = generate(Cfg);
    Cases.push_back({"good_clean_" + std::to_string(CaseId++),
                     std::move(W.Source), false, {}, C});
  };

  const BugChecker Checkers[] = {BugChecker::UseAfterFree,
                                 BugChecker::DoubleFree};
  for (BugChecker C : Checkers)
    for (int I = 0; I < CasesPerFamily; ++I) {
      uint64_t Seed = 0x70000 + static_cast<uint64_t>(I) * 131 +
                      static_cast<uint64_t>(C) * 7919;
      addBad(C, Seed);
      addGoodInfeasible(C, Seed + 1);
      addGoodClean(C, Seed + 2);
    }
  return Cases;
}

} // namespace pinpoint::workload
