//===- workload/Juliet.h - Juliet-style recall suite -----------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Juliet-Test-Suite-style corpus for measuring recall against ground
/// truth (paper Section 5.1.2): families of use-after-free / double-free
/// flaw patterns, each instantiated many times, as
///
///  * *bad* cases — one feasible planted bug each (recall numerator);
///  * *good* cases — the same shapes with contradictory guards (a
///    path-sensitive tool must stay silent) or bug-free code.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_WORKLOAD_JULIET_H
#define PINPOINT_WORKLOAD_JULIET_H

#include "workload/Generator.h"

#include <string>
#include <vector>

namespace pinpoint::workload {

struct JulietCase {
  std::string Name;
  std::string Source;
  bool IsBad;                  ///< True: contains exactly one real bug.
  std::vector<PlantedBug> Bugs;
  BugChecker Checker;
};

/// Generates the suite: every (shape × guard × checker) family instantiated
/// \p CasesPerFamily times, bad and good variants.
std::vector<JulietCase> generateJulietSuite(int CasesPerFamily = 8);

} // namespace pinpoint::workload

#endif // PINPOINT_WORKLOAD_JULIET_H
