//===- ir/Verifier.cpp -------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "ir/Dominators.h"

#include <algorithm>
#include <map>
#include <set>

namespace pinpoint::ir {

namespace {

void collectUses(const Stmt *S, std::vector<Value *> &Uses) {
  switch (S->stmtKind()) {
  case Stmt::SK_Assign:
    Uses.push_back(cast<AssignStmt>(S)->src());
    break;
  case Stmt::SK_Phi:
    for (auto &[BB, V] : cast<PhiStmt>(S)->incoming())
      Uses.push_back(V);
    break;
  case Stmt::SK_BinOp:
    Uses.push_back(cast<BinOpStmt>(S)->lhs());
    Uses.push_back(cast<BinOpStmt>(S)->rhs());
    break;
  case Stmt::SK_UnOp:
    Uses.push_back(cast<UnOpStmt>(S)->src());
    break;
  case Stmt::SK_Load:
    Uses.push_back(cast<LoadStmt>(S)->addr());
    break;
  case Stmt::SK_Store:
    Uses.push_back(cast<StoreStmt>(S)->addr());
    Uses.push_back(cast<StoreStmt>(S)->value());
    break;
  case Stmt::SK_Branch:
    Uses.push_back(cast<BranchStmt>(S)->cond());
    break;
  case Stmt::SK_Return:
    for (Value *V : cast<ReturnStmt>(S)->values())
      Uses.push_back(V);
    break;
  case Stmt::SK_Call:
    for (Value *V : cast<CallStmt>(S)->args())
      Uses.push_back(V);
    break;
  case Stmt::SK_Jump:
    break;
  }
}

} // namespace

std::vector<std::string> verifyFunction(const Function &F, bool ExpectSSA) {
  std::vector<std::string> Errs;
  auto err = [&](const std::string &Msg) {
    Errs.push_back(F.name() + ": " + Msg);
  };

  if (!F.entry()) {
    err("no entry block");
    return Errs;
  }

  int Returns = 0;
  for (const BasicBlock *B : F.blocks()) {
    if (B->stmts().empty() || !B->terminator()) {
      // Unreachable helper blocks may be empty; only reachable ones matter.
      bool Reachable = false;
      for (const BasicBlock *P : B->preds())
        (void)P, Reachable = true;
      if (B == F.entry() || Reachable)
        err("block " + B->name() + " lacks a terminator");
      continue;
    }
    for (const Stmt *S : B->stmts()) {
      if (S->isTerminator() && S != B->terminator())
        err("terminator in the middle of block " + B->name());
      if (S->parent() != B)
        err("statement with stale parent in " + B->name());
    }
    if (isa<ReturnStmt>(B->terminator())) {
      ++Returns;
      if (B != F.exitBlock())
        err("return outside the designated exit block");
    }
    // Phi/pred agreement.
    for (const Stmt *S : B->stmts()) {
      const auto *Phi = dyn_cast<PhiStmt>(S);
      if (!Phi)
        continue;
      if (ExpectSSA && Phi->incoming().size() != B->preds().size())
        err("phi arity mismatch in " + B->name());
      for (auto &[Pred, V] : Phi->incoming())
        if (std::find(B->preds().begin(), B->preds().end(), Pred) ==
            B->preds().end())
          err("phi incoming from non-predecessor in " + B->name());
    }
  }
  if (Returns != 1)
    err("expected exactly one return, found " + std::to_string(Returns));

  // Acyclic CFG check (paper unrolls loops once).
  {
    std::map<const BasicBlock *, int> State; // 0 new, 1 open, 2 done.
    std::vector<std::pair<const BasicBlock *, size_t>> Stack{{F.entry(), 0}};
    State[F.entry()] = 1;
    while (!Stack.empty()) {
      auto &[B, Idx] = Stack.back();
      if (Idx < B->succs().size()) {
        const BasicBlock *Next = B->succs()[Idx++];
        if (State[Next] == 1) {
          err("CFG cycle through " + Next->name());
          State[Next] = 2;
        } else if (State[Next] == 0) {
          State[Next] = 1;
          Stack.push_back({Next, 0});
        }
      } else {
        State[B] = 2;
        Stack.pop_back();
      }
    }
  }

  if (!ExpectSSA)
    return Errs;

  // SSA: unique defs.
  std::map<const Variable *, int> DefCount;
  for (const BasicBlock *B : F.blocks())
    for (const Stmt *S : B->stmts()) {
      if (const Variable *D = S->definedVar())
        ++DefCount[D];
      if (const auto *Call = dyn_cast<CallStmt>(S))
        for (const Variable *R : Call->auxReceivers())
          if (R)
            ++DefCount[R];
    }
  for (auto &[V, N] : DefCount) {
    if (N > 1)
      err("variable " + V->name() + " defined " + std::to_string(N) +
          " times");
    if (V->isParam() && N > 0)
      err("parameter " + V->name() + " redefined");
  }

  // SSA: defs dominate uses (phi uses checked at the incoming edge's pred).
  DomTree DT(F);
  for (const BasicBlock *B : F.blocks())
    for (const Stmt *S : B->stmts()) {
      std::vector<Value *> Uses;
      collectUses(S, Uses);
      for (const Value *V : Uses) {
        const auto *Var = dyn_cast<Variable>(V);
        if (!Var || Var->isParam())
          continue;
        const Stmt *Def = Var->def();
        if (!Def)
          continue; // Unconstrained placeholder; allowed.
        const BasicBlock *DefBB = Def->parent();
        if (const auto *Phi = dyn_cast<PhiStmt>(S)) {
          for (auto &[Pred, In] : Phi->incoming())
            if (In == Var && !DT.dominates(DefBB, Pred))
              err("phi operand " + Var->name() + " does not dominate edge");
        } else if (DefBB == B) {
          // Same-block: def must appear earlier.
          bool Seen = false;
          for (const Stmt *T : B->stmts()) {
            if (T == Def)
              Seen = true;
            if (T == S)
              break;
          }
          if (!Seen)
            err("use of " + Var->name() + " before its def in " + B->name());
        } else if (!DT.dominates(DefBB, B)) {
          err("def of " + Var->name() + " does not dominate use");
        }
      }
    }

  return Errs;
}

std::vector<std::string> verifyModule(const Module &M, bool ExpectSSA) {
  std::vector<std::string> Errs;
  for (const Function *F : M.functions()) {
    auto E = verifyFunction(*F, ExpectSSA);
    Errs.insert(Errs.end(), E.begin(), E.end());
  }
  return Errs;
}

} // namespace pinpoint::ir
