//===- ir/Dominators.cpp ----------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"

#include <algorithm>
#include <set>

namespace pinpoint::ir {

std::vector<BasicBlock *> reversePostOrder(const Function &F) {
  std::vector<BasicBlock *> Order;
  if (!F.entry())
    return Order;
  std::set<const BasicBlock *> Visited{F.entry()};
  std::vector<std::pair<BasicBlock *, size_t>> Stack{{F.entry(), 0}};
  while (!Stack.empty()) {
    auto &[B, Idx] = Stack.back();
    if (Idx < B->succs().size()) {
      BasicBlock *Next = B->succs()[Idx++];
      if (Visited.insert(Next).second)
        Stack.push_back({Next, 0});
    } else {
      Order.push_back(B);
      Stack.pop_back();
    }
  }
  std::reverse(Order.begin(), Order.end());
  return Order;
}

DomTree::DomTree(const Function &F, Direction D) : Dir(D) {
  Root = Dir == Direction::Forward ? F.entry() : F.exitBlock();
  if (!Root)
    return;

  // RPO of the walked direction.
  {
    std::set<const BasicBlock *> Visited{Root};
    std::vector<std::pair<BasicBlock *, size_t>> Stack{{Root, 0}};
    std::vector<BasicBlock *> Post;
    while (!Stack.empty()) {
      auto &[B, Idx] = Stack.back();
      const auto &Out = edgesOut(B);
      if (Idx < Out.size()) {
        BasicBlock *Next = Out[Idx++];
        if (Visited.insert(Next).second)
          Stack.push_back({Next, 0});
      } else {
        Post.push_back(B);
        Stack.pop_back();
      }
    }
    RPO.assign(Post.rbegin(), Post.rend());
  }
  for (size_t I = 0; I < RPO.size(); ++I)
    RPOIndex[RPO[I]] = I;

  // Cooper-Harvey-Kennedy iteration.
  IDom[Root] = Root;
  bool Changed = true;
  auto intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RPOIndex[A] > RPOIndex[B])
        A = IDom[A];
      while (RPOIndex[B] > RPOIndex[A])
        B = IDom[B];
    }
    return A;
  };
  while (Changed) {
    Changed = false;
    for (BasicBlock *B : RPO) {
      if (B == Root)
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *P : edgesIn(B)) {
        if (!IDom.count(P))
          continue; // Unreachable or not yet processed.
        NewIDom = NewIDom ? intersect(NewIDom, P) : P;
      }
      if (!NewIDom)
        continue;
      auto It = IDom.find(B);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[B] = NewIDom;
        Changed = true;
      }
    }
  }
  IDom[Root] = nullptr; // Root has no idom.

  // Tree children.
  for (BasicBlock *B : RPO)
    if (BasicBlock *D = IDom[B])
      Children[D].push_back(B);

  // Dominance frontiers (Cytron et al.).
  for (BasicBlock *B : RPO) {
    const auto &In = edgesIn(B);
    if (In.size() < 2)
      continue;
    for (BasicBlock *P : In) {
      if (!IDom.count(P) && P != Root)
        continue;
      BasicBlock *Runner = P;
      while (Runner && Runner != IDom[B]) {
        auto &FR = Frontier[Runner];
        if (std::find(FR.begin(), FR.end(), B) == FR.end())
          FR.push_back(B);
        Runner = IDom[Runner];
      }
    }
  }
}

bool DomTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  const BasicBlock *Cur = B;
  while (Cur) {
    if (Cur == A)
      return true;
    auto It = IDom.find(Cur);
    Cur = It == IDom.end() ? nullptr : It->second;
  }
  return false;
}

const std::vector<BasicBlock *> &
DomTree::frontier(const BasicBlock *B) const {
  auto It = Frontier.find(B);
  return It == Frontier.end() ? Empty : It->second;
}

const std::vector<BasicBlock *> &
DomTree::children(const BasicBlock *B) const {
  auto It = Children.find(B);
  return It == Children.end() ? Empty : It->second;
}

} // namespace pinpoint::ir
