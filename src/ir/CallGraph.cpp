//===- ir/CallGraph.cpp ------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/CallGraph.h"
#include "support/Statistics.h"

#include <algorithm>

namespace pinpoint::ir {

CallGraph::CallGraph(Module &M) {
  for (Function *F : M.functions()) {
    Callees[F];
    Callers[F];
  }
  for (Function *F : M.functions())
    for (BasicBlock *B : F->blocks())
      for (Stmt *S : B->stmts())
        if (auto *Call = dyn_cast<CallStmt>(S)) {
          Function *Callee = M.function(Call->calleeName());
          Call->setCallee(Callee);
          if (Callee) {
            Callees[F].insert(Callee);
            Callers[Callee].insert(F);
          }
        }

  // Tarjan SCC; the stack-pop order yields bottom-up (callees first).
  for (Function *F : M.functions())
    if (!Index.count(F))
      tarjan(F);

  buildCondensation();

  // Tarjan scratch state is dead once the condensation is frozen.
  Index.clear();
  Low.clear();
}

void CallGraph::buildCondensation() {
  // Gather in transient per-SCC vectors, then freeze into arena-backed
  // arrays: the condensation never changes after construction, and packed
  // rows drop the per-vector header/capacity overhead of node-per-entry
  // storage for the many singleton SCCs of typical subjects.
  std::vector<std::vector<Function *>> Members(NumSCCs);
  std::vector<std::vector<uint32_t>> CalleeIds(NumSCCs);
  // BottomUp lists each SCC's members consecutively in pop order; keep
  // that order so a per-SCC task replays the serial schedule exactly.
  for (Function *F : BottomUp)
    Members[SCCIndex[F]].push_back(F);
  for (Function *F : BottomUp) {
    size_t Id = SCCIndex[F];
    for (Function *C : Callees[F]) {
      size_t CalleeId = SCCIndex[C];
      if (CalleeId != Id)
        CalleeIds[Id].push_back(static_cast<uint32_t>(CalleeId));
    }
  }

  SCCs.resize(NumSCCs);
  for (size_t I = 0; I < NumSCCs; ++I) {
    std::vector<uint32_t> &CS = CalleeIds[I];
    std::sort(CS.begin(), CS.end());
    CS.erase(std::unique(CS.begin(), CS.end()), CS.end());

    Function **MRow = Mem.allocArray<Function *>(Members[I].size());
    if (MRow)
      std::copy(Members[I].begin(), Members[I].end(), MRow);
    SCCs[I].Members = Span<Function *>(MRow, Members[I].size());

    uint32_t *CRow = Mem.allocArray<uint32_t>(CS.size());
    if (CRow)
      std::copy(CS.begin(), CS.end(), CRow);
    SCCs[I].CalleeSCCs = Span<uint32_t>(CRow, CS.size());
  }
  Counters::get().add("cg.csr-bytes", static_cast<int64_t>(Mem.bytesUsed()));
}

void CallGraph::tarjan(Function *F) {
  // Iterative Tarjan to be safe on deep call chains.
  struct Frame {
    Function *F;
    std::set<Function *>::const_iterator It, End;
  };
  std::vector<Frame> Frames;

  auto push = [&](Function *G) {
    Index[G] = Low[G] = NextIndex++;
    Stack.push_back(G);
    OnStack.insert(G);
    Frames.push_back({G, Callees[G].begin(), Callees[G].end()});
  };
  push(F);

  while (!Frames.empty()) {
    Frame &Top = Frames.back();
    if (Top.It != Top.End) {
      Function *Next = *Top.It++;
      if (!Index.count(Next)) {
        push(Next);
      } else if (OnStack.count(Next)) {
        Low[Top.F] = std::min(Low[Top.F], Index[Next]);
      }
      continue;
    }
    // Finished Top.F.
    Function *Done = Top.F;
    Frames.pop_back();
    if (!Frames.empty())
      Low[Frames.back().F] = std::min(Low[Frames.back().F], Low[Done]);
    if (Low[Done] == Index[Done]) {
      size_t SCC = NumSCCs++;
      while (true) {
        Function *Member = Stack.back();
        Stack.pop_back();
        OnStack.erase(Member);
        SCCIndex[Member] = SCC;
        BottomUp.push_back(Member);
        if (Member == Done)
          break;
      }
    }
  }
}

} // namespace pinpoint::ir
