//===- ir/CallGraph.cpp ------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/CallGraph.h"

#include <algorithm>

namespace pinpoint::ir {

CallGraph::CallGraph(Module &M) {
  for (Function *F : M.functions()) {
    Callees[F];
    Callers[F];
  }
  for (Function *F : M.functions())
    for (BasicBlock *B : F->blocks())
      for (Stmt *S : B->stmts())
        if (auto *Call = dyn_cast<CallStmt>(S)) {
          Function *Callee = M.function(Call->calleeName());
          Call->setCallee(Callee);
          if (Callee) {
            Callees[F].insert(Callee);
            Callers[Callee].insert(F);
          }
        }

  // Tarjan SCC; the stack-pop order yields bottom-up (callees first).
  for (Function *F : M.functions())
    if (!Index.count(F))
      tarjan(F);

  buildCondensation();
}

void CallGraph::buildCondensation() {
  SCCs.resize(NumSCCs);
  // BottomUp lists each SCC's members consecutively in pop order; keep
  // that order so a per-SCC task replays the serial schedule exactly.
  for (Function *F : BottomUp)
    SCCs[SCCIndex[F]].Members.push_back(F);
  for (Function *F : BottomUp) {
    size_t Id = SCCIndex[F];
    for (Function *C : Callees[F]) {
      size_t CalleeId = SCCIndex[C];
      if (CalleeId != Id)
        SCCs[Id].CalleeSCCs.push_back(CalleeId);
    }
  }
  for (SCCNode &N : SCCs) {
    std::sort(N.CalleeSCCs.begin(), N.CalleeSCCs.end());
    N.CalleeSCCs.erase(std::unique(N.CalleeSCCs.begin(), N.CalleeSCCs.end()),
                       N.CalleeSCCs.end());
  }
}

void CallGraph::tarjan(Function *F) {
  // Iterative Tarjan to be safe on deep call chains.
  struct Frame {
    Function *F;
    std::set<Function *>::const_iterator It, End;
  };
  std::vector<Frame> Frames;

  auto push = [&](Function *G) {
    Index[G] = Low[G] = NextIndex++;
    Stack.push_back(G);
    OnStack.insert(G);
    Frames.push_back({G, Callees[G].begin(), Callees[G].end()});
  };
  push(F);

  while (!Frames.empty()) {
    Frame &Top = Frames.back();
    if (Top.It != Top.End) {
      Function *Next = *Top.It++;
      if (!Index.count(Next)) {
        push(Next);
      } else if (OnStack.count(Next)) {
        Low[Top.F] = std::min(Low[Top.F], Index[Next]);
      }
      continue;
    }
    // Finished Top.F.
    Function *Done = Top.F;
    Frames.pop_back();
    if (!Frames.empty())
      Low[Frames.back().F] = std::min(Low[Frames.back().F], Low[Done]);
    if (Low[Done] == Index[Done]) {
      size_t SCC = NumSCCs++;
      while (true) {
        Function *Member = Stack.back();
        Stack.pop_back();
        OnStack.erase(Member);
        SCCIndex[Member] = SCC;
        BottomUp.push_back(Member);
        if (Member == Done)
          break;
      }
    }
  }
}

} // namespace pinpoint::ir
