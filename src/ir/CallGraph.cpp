//===- ir/CallGraph.cpp ------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/CallGraph.h"

namespace pinpoint::ir {

CallGraph::CallGraph(Module &M) {
  for (Function *F : M.functions()) {
    Callees[F];
    Callers[F];
  }
  for (Function *F : M.functions())
    for (BasicBlock *B : F->blocks())
      for (Stmt *S : B->stmts())
        if (auto *Call = dyn_cast<CallStmt>(S)) {
          Function *Callee = M.function(Call->calleeName());
          Call->setCallee(Callee);
          if (Callee) {
            Callees[F].insert(Callee);
            Callers[Callee].insert(F);
          }
        }

  // Tarjan SCC; the stack-pop order yields bottom-up (callees first).
  for (Function *F : M.functions())
    if (!Index.count(F))
      tarjan(F);
}

void CallGraph::tarjan(Function *F) {
  // Iterative Tarjan to be safe on deep call chains.
  struct Frame {
    Function *F;
    std::set<Function *>::const_iterator It, End;
  };
  std::vector<Frame> Frames;

  auto push = [&](Function *G) {
    Index[G] = Low[G] = NextIndex++;
    Stack.push_back(G);
    OnStack.insert(G);
    Frames.push_back({G, Callees[G].begin(), Callees[G].end()});
  };
  push(F);

  while (!Frames.empty()) {
    Frame &Top = Frames.back();
    if (Top.It != Top.End) {
      Function *Next = *Top.It++;
      if (!Index.count(Next)) {
        push(Next);
      } else if (OnStack.count(Next)) {
        Low[Top.F] = std::min(Low[Top.F], Index[Next]);
      }
      continue;
    }
    // Finished Top.F.
    Function *Done = Top.F;
    Frames.pop_back();
    if (!Frames.empty())
      Low[Frames.back().F] = std::min(Low[Frames.back().F], Low[Done]);
    if (Low[Done] == Index[Done]) {
      size_t SCC = NumSCCs++;
      while (true) {
        Function *Member = Stack.back();
        Stack.pop_back();
        OnStack.erase(Member);
        SCCIndex[Member] = SCC;
        BottomUp.push_back(Member);
        if (Member == Done)
          break;
      }
    }
  }
}

} // namespace pinpoint::ir
