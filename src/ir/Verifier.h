//===- ir/Verifier.h - IR well-formedness checks ---------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and SSA invariants checked in tests and after passes:
/// terminators present, single return, phi/pred agreement, defs dominate
/// uses (post-SSA), acyclic CFG (the frontend unrolls loops).
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_IR_VERIFIER_H
#define PINPOINT_IR_VERIFIER_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace pinpoint::ir {

/// Verifies structural invariants of \p F. Returns the list of violations
/// (empty means well-formed). \p ExpectSSA additionally checks SSA-ness.
std::vector<std::string> verifyFunction(const Function &F,
                                        bool ExpectSSA = false);

/// Verifies all functions in \p M.
std::vector<std::string> verifyModule(const Module &M, bool ExpectSSA = false);

} // namespace pinpoint::ir

#endif // PINPOINT_IR_VERIFIER_H
