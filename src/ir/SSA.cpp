//===- ir/SSA.cpp ------------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/SSA.h"
#include "ir/Dominators.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace pinpoint::ir {

namespace {

class SSABuilder {
public:
  SSABuilder(Function &F) : F(F), DT(F) {}

  void run() {
    collectDefs();
    placePhis();
    rename(F.entry());
    setDefPointers();
    F.renumberStmts();
  }

private:
  void collectDefs() {
    for (BasicBlock *B : F.blocks())
      for (Stmt *S : B->stmts()) {
        if (Variable *D = S->definedVar())
          DefBlocks[D].insert(B);
        // Calls may define several receivers.
        if (auto *Call = dyn_cast<CallStmt>(S))
          for (Variable *R : Call->auxReceivers())
            if (R)
              DefBlocks[R].insert(B);
      }
    // Parameters are defined at entry.
    for (Variable *P : F.params())
      DefBlocks[P].insert(F.entry());
  }

  void placePhis() {
    // DefBlocks is keyed by pointer, but the phi sequence of a join block
    // follows this loop's order — iterate by variable id so the emitted IR
    // is identical from run to run regardless of heap layout.
    std::vector<Variable *> Vars;
    Vars.reserve(DefBlocks.size());
    for (auto &[Var, Blocks] : DefBlocks)
      Vars.push_back(Var);
    std::sort(Vars.begin(), Vars.end(),
              [](const Variable *A, const Variable *B) {
                return A->id() < B->id();
              });
    for (Variable *Var : Vars) {
      const std::set<BasicBlock *> &Blocks = DefBlocks[Var];
      std::set<BasicBlock *> HasPhi;
      std::vector<BasicBlock *> Work(Blocks.begin(), Blocks.end());
      while (!Work.empty()) {
        BasicBlock *B = Work.back();
        Work.pop_back();
        for (BasicBlock *D : DT.frontier(B)) {
          if (!HasPhi.insert(D).second)
            continue;
          auto *Phi = F.parent()->make<PhiStmt>(Var, SourceLoc{});
          D->insertAfterPhis(Phi);
          PhiOrigin[Phi] = Var;
          if (!DefBlocks[Var].count(D))
            Work.push_back(D);
        }
      }
    }
  }

  Variable *freshVersion(Variable *Orig) {
    ++VersionCount[Orig];
    // The very first version of a parameter is the parameter itself.
    if (Orig->isParam() && VersionCount[Orig] == 1)
      return Orig;
    Variable *V = F.createVar(
        Orig->type(), Orig->name() + "." + std::to_string(VersionCount[Orig]));
    return V;
  }

  Variable *currentVersion(Variable *Orig) {
    auto It = Stacks.find(Orig);
    if (It == Stacks.end() || It->second.empty())
      return Orig; // Use before def: keep the original (unconstrained).
    return It->second.back();
  }

  Value *rewriteUse(Value *V) {
    if (auto *Var = dyn_cast<Variable>(V))
      if (DefBlocks.count(Var))
        return currentVersion(Var);
    return V;
  }

  void rename(BasicBlock *B) {
    std::vector<Variable *> Pushed;

    auto pushDef = [&](Variable *Orig) -> Variable * {
      Variable *New = freshVersion(Orig);
      Stacks[Orig].push_back(New);
      Pushed.push_back(Orig);
      return New;
    };

    if (B == F.entry())
      for (Variable *P : F.params())
        pushDef(P);

    for (Stmt *S : B->stmts()) {
      switch (S->stmtKind()) {
      case Stmt::SK_Phi: {
        auto *Phi = cast<PhiStmt>(S);
        Variable *Orig = Phi->dst();
        Phi->setDst(pushDef(Orig));
        break;
      }
      case Stmt::SK_Assign: {
        auto *A = cast<AssignStmt>(S);
        A->setSrc(rewriteUse(A->src()));
        A->setDst(pushDef(A->dst()));
        break;
      }
      case Stmt::SK_BinOp: {
        auto *O = cast<BinOpStmt>(S);
        O->setLhs(rewriteUse(O->lhs()));
        O->setRhs(rewriteUse(O->rhs()));
        O->setDst(pushDef(O->dst()));
        break;
      }
      case Stmt::SK_UnOp: {
        auto *O = cast<UnOpStmt>(S);
        O->setSrc(rewriteUse(O->src()));
        O->setDst(pushDef(O->dst()));
        break;
      }
      case Stmt::SK_Load: {
        auto *L = cast<LoadStmt>(S);
        L->setAddr(rewriteUse(L->addr()));
        L->setDst(pushDef(L->dst()));
        break;
      }
      case Stmt::SK_Store: {
        auto *St = cast<StoreStmt>(S);
        St->setAddr(rewriteUse(St->addr()));
        St->setValue(rewriteUse(St->value()));
        break;
      }
      case Stmt::SK_Branch: {
        auto *Br = cast<BranchStmt>(S);
        Br->setCond(rewriteUse(Br->cond()));
        break;
      }
      case Stmt::SK_Return: {
        auto *R = cast<ReturnStmt>(S);
        for (Value *&V : R->values())
          V = rewriteUse(V);
        break;
      }
      case Stmt::SK_Call: {
        auto *C = cast<CallStmt>(S);
        for (Value *&A : C->args())
          A = rewriteUse(A);
        if (C->receiver())
          C->setReceiver(pushDef(C->receiver()));
        for (Variable *&R : C->auxReceivers())
          if (R)
            R = pushDef(R);
        break;
      }
      case Stmt::SK_Jump:
        break;
      }
    }

    // Fill phi operands of successors.
    for (BasicBlock *Succ : B->succs())
      for (Stmt *S : Succ->stmts()) {
        auto *Phi = dyn_cast<PhiStmt>(S);
        if (!Phi)
          break; // Phis are grouped at the front.
        Variable *Orig = PhiOrigin.count(Phi) ? PhiOrigin[Phi] : Phi->dst();
        Phi->addIncoming(B, currentVersion(Orig));
      }

    for (BasicBlock *Child : DT.children(B))
      rename(Child);

    for (auto It = Pushed.rbegin(); It != Pushed.rend(); ++It)
      Stacks[*It].pop_back();
  }

  void setDefPointers() {
    for (BasicBlock *B : F.blocks())
      for (Stmt *S : B->stmts()) {
        if (Variable *D = S->definedVar())
          D->setDef(S);
        if (auto *Call = dyn_cast<CallStmt>(S))
          for (Variable *R : Call->auxReceivers())
            if (R)
              R->setDef(S);
      }
  }

  Function &F;
  DomTree DT;
  std::map<Variable *, std::set<BasicBlock *>> DefBlocks;
  std::map<Variable *, std::vector<Variable *>> Stacks;
  std::map<Variable *, int> VersionCount;
  std::map<PhiStmt *, Variable *> PhiOrigin;
};

} // namespace

void constructSSA(Function &F) { SSABuilder(F).run(); }

} // namespace pinpoint::ir
