//===- ir/CallGraph.h - Call graph with bottom-up ordering -----------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module call graph. Pinpoint's whole pipeline is bottom-up (callees
/// before callers); recursion cycles are collapsed into SCCs and, matching
/// the paper's soundiness choice of unrolling call-graph cycles once,
/// intra-SCC call edges are treated as opaque by the analyses.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_IR_CALLGRAPH_H
#define PINPOINT_IR_CALLGRAPH_H

#include "ir/IR.h"
#include "support/Span.h"

#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace pinpoint::ir {

class CallGraph {
public:
  explicit CallGraph(Module &M);

  /// Resolved callees of \p F (unresolved externals are not listed).
  const std::set<Function *> &callees(Function *F) const {
    return Callees.at(F);
  }
  const std::set<Function *> &callers(Function *F) const {
    return Callers.at(F);
  }

  /// Functions in bottom-up order: every (non-SCC) callee precedes its
  /// callers; members of one SCC appear consecutively.
  const std::vector<Function *> &bottomUpOrder() const { return BottomUp; }

  /// True if \p A and \p B belong to the same (recursion) SCC.
  bool inSameSCC(const Function *A, const Function *B) const {
    return SCCIndex.at(const_cast<Function *>(A)) ==
           SCCIndex.at(const_cast<Function *>(B));
  }

  size_t numSCCs() const { return NumSCCs; }

  /// One node of the call-graph condensation (the DAG the parallel
  /// scheduler walks). SCC ids are Tarjan completion order, which is
  /// topological: every cross-SCC callee has a smaller id than its caller,
  /// so iterating SCCs by id with `Members` in order replays exactly
  /// `bottomUpOrder()`. The membership and adjacency arrays are frozen
  /// into the graph's arena at construction (the condensation is immutable
  /// once built), packed the same way as the SEG's CSR rows; their bytes
  /// show up in the `cg.csr-bytes` counter.
  struct SCCNode {
    Span<Function *> Members;   ///< In bottom-up (stack pop) order.
    Span<uint32_t> CalleeSCCs;  ///< Distinct cross-SCC callee ids, sorted.
  };

  /// The condensation, indexed by SCC id.
  const std::vector<SCCNode> &sccs() const { return SCCs; }
  size_t sccOf(const Function *F) const {
    return SCCIndex.at(const_cast<Function *>(F));
  }

private:
  void tarjan(Function *F);
  void buildCondensation();

  std::map<Function *, std::set<Function *>> Callees, Callers;
  std::vector<Function *> BottomUp;
  std::map<Function *, size_t> SCCIndex;
  std::vector<SCCNode> SCCs;
  size_t NumSCCs = 0;
  /// Backs the frozen SCCNode arrays. Not reported to the MemStats arena
  /// ledger: condensation bytes are tracked via the cg.csr-bytes counter,
  /// like the SEG's CSR arena.
  Arena Mem{/*Reported=*/false};

  // Tarjan state.
  std::map<Function *, int> Index, Low;
  std::vector<Function *> Stack;
  std::set<Function *> OnStack;
  int NextIndex = 0;
};

} // namespace pinpoint::ir

#endif // PINPOINT_IR_CALLGRAPH_H
