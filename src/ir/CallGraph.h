//===- ir/CallGraph.h - Call graph with bottom-up ordering -----------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module call graph. Pinpoint's whole pipeline is bottom-up (callees
/// before callers); recursion cycles are collapsed into SCCs and, matching
/// the paper's soundiness choice of unrolling call-graph cycles once,
/// intra-SCC call edges are treated as opaque by the analyses.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_IR_CALLGRAPH_H
#define PINPOINT_IR_CALLGRAPH_H

#include "ir/IR.h"

#include <map>
#include <set>
#include <vector>

namespace pinpoint::ir {

class CallGraph {
public:
  explicit CallGraph(Module &M);

  /// Resolved callees of \p F (unresolved externals are not listed).
  const std::set<Function *> &callees(Function *F) const {
    return Callees.at(F);
  }
  const std::set<Function *> &callers(Function *F) const {
    return Callers.at(F);
  }

  /// Functions in bottom-up order: every (non-SCC) callee precedes its
  /// callers; members of one SCC appear consecutively.
  const std::vector<Function *> &bottomUpOrder() const { return BottomUp; }

  /// True if \p A and \p B belong to the same (recursion) SCC.
  bool inSameSCC(const Function *A, const Function *B) const {
    return SCCIndex.at(const_cast<Function *>(A)) ==
           SCCIndex.at(const_cast<Function *>(B));
  }

  size_t numSCCs() const { return NumSCCs; }

private:
  void tarjan(Function *F);

  std::map<Function *, std::set<Function *>> Callees, Callers;
  std::vector<Function *> BottomUp;
  std::map<Function *, size_t> SCCIndex;
  size_t NumSCCs = 0;

  // Tarjan state.
  std::map<Function *, int> Index, Low;
  std::vector<Function *> Stack;
  std::set<Function *> OnStack;
  int NextIndex = 0;
};

} // namespace pinpoint::ir

#endif // PINPOINT_IR_CALLGRAPH_H
