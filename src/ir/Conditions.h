//===- ir/Conditions.h - Gated-SSA conditions & control dependence --------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges the IR and the symbolic expression DAG:
///
///  * `SymbolMap` assigns each SSA variable a symbolic variable (bool-typed
///    IR variables become boolean atoms — the θs of the paper; everything
///    else, including pointers, becomes an integer term).
///
///  * `ConditionMap` computes, per function,
///      - edge conditions (branch literal per CFG edge),
///      - reaching conditions RC(From→X) by topological propagation
///        (the gated-SSA construction; almost-linear thanks to hash-consing,
///        in the spirit of Tu & Padua [48]),
///      - phi gates: gate(phi in B, pred P) = RC(idom(B)→P) ∧ edgeCond(P→B),
///      - control dependence per Ferrante-Ottenstein-Warren (the paper's
///        "efficient path conditions" [43] come from chaining these),
///      - canonical (King-style) full path conditions, kept only for the
///        ablation benchmark that reproduces Example 3.6's contrast.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_IR_CONDITIONS_H
#define PINPOINT_IR_CONDITIONS_H

#include "ir/Dominators.h"
#include "ir/IR.h"
#include "smt/Expr.h"

#include <mutex>
#include <unordered_map>
#include <vector>

namespace pinpoint::ir {

/// Maps IR variables to symbolic variables, creating them on demand.
/// Thread-safe: one SymbolMap spans the whole module and is hit by
/// concurrent pipeline/query tasks under `--jobs N`, so the memo tables
/// are mutex-guarded (the returned Expr nodes are immutable).
class SymbolMap {
public:
  explicit SymbolMap(smt::ExprContext &Ctx) : Ctx(Ctx) {}

  /// The symbolic variable (or constant) denoting \p V.
  const smt::Expr *operator[](const Value *V);

  /// The IR variable a symbolic variable id came from, or null.
  const Variable *irVar(uint32_t SymVarId) const {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Reverse.find(SymVarId);
    return It == Reverse.end() ? nullptr : It->second;
  }

  smt::ExprContext &context() { return Ctx; }

private:
  smt::ExprContext &Ctx;
  mutable std::mutex Mu; ///< Guards Map and Reverse.
  std::unordered_map<const Variable *, const smt::Expr *> Map;
  std::unordered_map<uint32_t, const Variable *> Reverse;
};

/// A control-dependence parent: the branch-condition variable an entity is
/// control dependent on, with the edge polarity (paper Fig. 4's dashed
/// edges and their true/false labels).
struct ControlDep {
  const Variable *BranchVar;
  bool Polarity;
};

/// Per-function condition computations (see file comment).
class ConditionMap {
public:
  ConditionMap(const Function &F, SymbolMap &Syms);

  /// Condition on taking the CFG edge From -> To: the branch literal, or
  /// true for unconditional edges.
  const smt::Expr *edgeCond(const BasicBlock *From, const BasicBlock *To);

  /// Reaching condition of \p To within the region headed by \p From:
  /// RC(From) = true; RC(X) = ⋁_{P→X} RC(P) ∧ edgeCond(P→X).
  const smt::Expr *reachCond(const BasicBlock *From, const BasicBlock *To);

  /// Canonical King-style path condition of \p B from the entry; the
  /// verbose form the paper contrasts against (Example 3.6).
  const smt::Expr *canonicalPathCond(const BasicBlock *B) {
    return reachCond(F.entry(), B);
  }

  /// Gate for \p Phi's incoming value from \p Pred (gated SSA).
  const smt::Expr *phiGate(const PhiStmt *Phi, const BasicBlock *Pred);

  /// Direct control-dependence parents of \p B (FOW). Structured lowering
  /// yields at most one entry per block.
  const std::vector<ControlDep> &controlDeps(const BasicBlock *B) const;

  const DomTree &domTree() const { return DT; }
  const DomTree &postDomTree() const { return PDT; }

private:
  void computeControlDeps();

  const Function &F;
  SymbolMap &Syms;
  smt::ExprContext &Ctx;
  DomTree DT, PDT;
  std::vector<BasicBlock *> RPO;
  std::unordered_map<const BasicBlock *,
                     std::unordered_map<const BasicBlock *, const smt::Expr *>>
      ReachCache;
  std::unordered_map<const BasicBlock *, std::vector<ControlDep>> CDs;
  std::vector<ControlDep> Empty;
};

} // namespace pinpoint::ir

#endif // PINPOINT_IR_CONDITIONS_H
