//===- ir/Fingerprint.h - Stable structural function hashing --------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-hashes a function's post-SSA IR for the incremental summary
/// cache. The fingerprint covers everything the per-function pipeline's
/// output depends on — signature, CFG shape, every statement's kind and
/// operands (variables by function-local id, constants by value, callees by
/// name) — and deliberately *excludes* source locations: reports print
/// locations from the live IR, so a pure line shift re-uses the cached
/// summary and still prints the shifted lines.
///
/// Must be taken after SSA construction and *before* the connector
/// transforms (call-site rewriting / interface transform): the transforms'
/// extra statements are derived state that the cache replays, not input.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_IR_FINGERPRINT_H
#define PINPOINT_IR_FINGERPRINT_H

#include <cstdint>
#include <unordered_map>

namespace pinpoint::ir {

class Function;
class Module;

/// The structural, location-independent content hash of \p F.
uint64_t fingerprintFunction(const Function &F);

/// Every function's fingerprint plus the whole-subject digest composed from
/// them in module order. One sweep feeds every consumer — SCC content keys,
/// the run journal's subject fingerprint, and the per-function relevance
/// records — so a module is never hashed twice per run.
struct ModuleFingerprints {
  uint64_t Subject = 0;
  std::unordered_map<const Function *, uint64_t> PerFn;
};

ModuleFingerprints fingerprintModule(const Module &M);

} // namespace pinpoint::ir

#endif // PINPOINT_IR_FINGERPRINT_H
