//===- ir/SSA.h - SSA construction -----------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic SSA construction (Cytron et al.): phi placement on iterated
/// dominance frontiers followed by a renaming walk over the dominator tree.
/// The paper's SEG (Definition 3.2) assumes the program is in SSA form so
/// every variable has a unique definition vertex.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_IR_SSA_H
#define PINPOINT_IR_SSA_H

#include "ir/IR.h"

namespace pinpoint::ir {

/// Rewrites \p F into SSA form. Requires CFG edges to be up to date
/// (Function::recomputeCFGEdges). Fresh variables are named `x.N`.
/// Also populates Variable::def() for every SSA variable and renumbers
/// statements (Function::stmtOrder).
void constructSSA(Function &F);

} // namespace pinpoint::ir

#endif // PINPOINT_IR_SSA_H
