//===- ir/IR.cpp -----------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <algorithm>
#include <set>

namespace pinpoint::ir {

//===----------------------------------------------------------------------===
// Type / Value printing
//===----------------------------------------------------------------------===

std::string Type::str() const {
  if (isVoid())
    return "void";
  if (isBool())
    return "bool";
  std::string S = "int";
  for (int I = 0; I < pointerDepth(); ++I)
    S += "*";
  return S;
}

std::string Value::str() const {
  if (const auto *V = dyn_cast<Variable>(this))
    return V->name();
  const auto *C = cast<Constant>(this);
  if (C->isNull())
    return "null";
  return std::to_string(C->value());
}

const char *opCodeName(OpCode Op) {
  switch (Op) {
  case OpCode::Add:
    return "+";
  case OpCode::Sub:
    return "-";
  case OpCode::Mul:
    return "*";
  case OpCode::And:
    return "&&";
  case OpCode::Or:
    return "||";
  case OpCode::Eq:
    return "==";
  case OpCode::Ne:
    return "!=";
  case OpCode::Lt:
    return "<";
  case OpCode::Le:
    return "<=";
  case OpCode::Gt:
    return ">";
  case OpCode::Ge:
    return ">=";
  case OpCode::Neg:
    return "-";
  case OpCode::Not:
    return "!";
  }
  return "?";
}

//===----------------------------------------------------------------------===
// Stmt
//===----------------------------------------------------------------------===

Variable *Stmt::definedVar() const {
  switch (Kind) {
  case SK_Assign:
    return cast<AssignStmt>(this)->dst();
  case SK_Phi:
    return cast<PhiStmt>(this)->dst();
  case SK_BinOp:
    return cast<BinOpStmt>(this)->dst();
  case SK_UnOp:
    return cast<UnOpStmt>(this)->dst();
  case SK_Load:
    return cast<LoadStmt>(this)->dst();
  case SK_Call:
    return cast<CallStmt>(this)->receiver();
  default:
    return nullptr;
  }
}

static std::string derefStr(const Value *V, uint32_t K) {
  std::string S;
  for (uint32_t I = 0; I < K; ++I)
    S += "*";
  return S + V->str();
}

std::string Stmt::str() const {
  switch (Kind) {
  case SK_Assign: {
    const auto *S = cast<AssignStmt>(this);
    return S->dst()->str() + " = " + S->src()->str();
  }
  case SK_Phi: {
    const auto *S = cast<PhiStmt>(this);
    std::string Out = S->dst()->str() + " = phi(";
    bool First = true;
    for (auto &[BB, V] : S->incoming()) {
      if (!First)
        Out += ", ";
      Out += "[" + BB->name() + ": " + V->str() + "]";
      First = false;
    }
    return Out + ")";
  }
  case SK_BinOp: {
    const auto *S = cast<BinOpStmt>(this);
    return S->dst()->str() + " = " + S->lhs()->str() + " " +
           opCodeName(S->op()) + " " + S->rhs()->str();
  }
  case SK_UnOp: {
    const auto *S = cast<UnOpStmt>(this);
    return S->dst()->str() + " = " + std::string(opCodeName(S->op())) +
           S->src()->str();
  }
  case SK_Load: {
    const auto *S = cast<LoadStmt>(this);
    return S->dst()->str() + " = " + derefStr(S->addr(), S->derefs());
  }
  case SK_Store: {
    const auto *S = cast<StoreStmt>(this);
    return derefStr(S->addr(), S->derefs()) + " = " + S->value()->str();
  }
  case SK_Branch: {
    const auto *S = cast<BranchStmt>(this);
    return "br " + S->cond()->str() + ", " + S->trueBlock()->name() + ", " +
           S->falseBlock()->name();
  }
  case SK_Jump:
    return "jmp " + cast<JumpStmt>(this)->target()->name();
  case SK_Return: {
    const auto *S = cast<ReturnStmt>(this);
    std::string Out = "return";
    for (const Value *V : S->values())
      Out += " " + V->str();
    return Out;
  }
  case SK_Call: {
    const auto *S = cast<CallStmt>(this);
    std::string Out;
    bool First = true;
    bool HasRecv = S->receiver() || !S->auxReceivers().empty();
    if (HasRecv) {
      Out += S->receiver() ? S->receiver()->str() : "_";
      First = false;
    }
    for (const Variable *R : S->auxReceivers()) {
      if (!First)
        Out += ", ";
      Out += R ? R->str() : "_";
      First = false;
    }
    if (HasRecv)
      Out += " = ";
    First = true;
    Out += "call " + S->calleeName() + "(";
    First = true;
    for (const Value *A : S->args()) {
      if (!First)
        Out += ", ";
      Out += A->str();
      First = false;
    }
    return Out + ")";
  }
  }
  return "?";
}

//===----------------------------------------------------------------------===
// BasicBlock
//===----------------------------------------------------------------------===

void BasicBlock::insertBeforeTerminator(Stmt *S) {
  S->setParent(this);
  if (terminator())
    Stmts.insert(Stmts.end() - 1, S);
  else
    Stmts.push_back(S);
}

void BasicBlock::insertAfterPhis(Stmt *S) {
  S->setParent(this);
  auto It = Stmts.begin();
  while (It != Stmts.end() && isa<PhiStmt>(*It))
    ++It;
  Stmts.insert(It, S);
}

//===----------------------------------------------------------------------===
// Function
//===----------------------------------------------------------------------===

Variable *Function::addParam(Type Ty, const std::string &Name) {
  Variable *V = createVar(Ty, Name);
  V->setParamIndex(static_cast<int>(Params.size()));
  Params.push_back(V);
  NumOriginalParams = static_cast<unsigned>(Params.size());
  return V;
}

Variable *Function::addAuxParam(Type Ty, const std::string &Name) {
  Variable *V = createVar(Ty, Name);
  V->setParamIndex(static_cast<int>(Params.size()));
  V->setAuxParam(true);
  Params.push_back(V);
  return V;
}

BasicBlock *Function::createBlock(const std::string &Name) {
  BasicBlock *B = Parent->make<BasicBlock>(
      BasicBlock(Name + "." + std::to_string(NextBlockId), NextBlockId,
                 this));
  ++NextBlockId;
  Blocks.push_back(B);
  return B;
}

Variable *Function::createVar(Type Ty, const std::string &Name) {
  Variable *V =
      Parent->make<Variable>(Variable(Ty, Name, NextVarId++, this));
  Vars.push_back(V);
  return V;
}

ReturnStmt *Function::returnStmt() const {
  if (!Exit)
    return nullptr;
  return dyn_cast_or_null<ReturnStmt>(Exit->terminator());
}

void Function::recomputeCFGEdges() {
  for (BasicBlock *B : Blocks) {
    B->Preds.clear();
    B->Succs.clear();
  }
  for (BasicBlock *B : Blocks) {
    Stmt *T = B->terminator();
    if (!T)
      continue;
    if (auto *Br = dyn_cast<BranchStmt>(T)) {
      B->Succs.push_back(Br->trueBlock());
      Br->trueBlock()->Preds.push_back(B);
      if (Br->falseBlock() != Br->trueBlock()) {
        B->Succs.push_back(Br->falseBlock());
        Br->falseBlock()->Preds.push_back(B);
      }
    } else if (auto *J = dyn_cast<JumpStmt>(T)) {
      B->Succs.push_back(J->target());
      J->target()->Preds.push_back(B);
    }
  }
}

void Function::removeUnreachableBlocks() {
  recomputeCFGEdges();
  std::set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work;
  if (entry()) {
    Reachable.insert(entry());
    Work.push_back(entry());
  }
  while (!Work.empty()) {
    BasicBlock *B = Work.back();
    Work.pop_back();
    for (BasicBlock *S : B->succs())
      if (Reachable.insert(S).second)
        Work.push_back(S);
  }
  Blocks.erase(std::remove_if(Blocks.begin(), Blocks.end(),
                              [&](BasicBlock *B) {
                                return !Reachable.count(B);
                              }),
               Blocks.end());
  recomputeCFGEdges();
}

void Function::renumberStmts() {
  // Topological (RPO-consistent) numbering: block order is creation order,
  // which lowering makes topological for these acyclic CFGs; we still do a
  // proper DFS post-order to be safe.
  StmtOrder.clear();
  std::vector<BasicBlock *> Order;
  std::set<BasicBlock *> Visited;
  // Iterative DFS producing post-order, then reverse.
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  if (entry()) {
    Stack.push_back({entry(), 0});
    Visited.insert(entry());
  }
  while (!Stack.empty()) {
    auto &[B, Idx] = Stack.back();
    if (Idx < B->succs().size()) {
      BasicBlock *Next = B->succs()[Idx++];
      if (Visited.insert(Next).second)
        Stack.push_back({Next, 0});
    } else {
      Order.push_back(B);
      Stack.pop_back();
    }
  }
  std::reverse(Order.begin(), Order.end());
  uint32_t N = 0;
  for (BasicBlock *B : Order)
    for (Stmt *S : B->stmts())
      StmtOrder[S] = N++;
}

std::string Function::str() const {
  std::string Out = RetTy.str() + " " + Name + "(";
  bool First = true;
  for (const Variable *P : Params) {
    if (!First)
      Out += ", ";
    Out += P->type().str() + " " + P->name();
    if (P->isAuxParam())
      Out += " /*aux*/";
    First = false;
  }
  Out += ") {\n";
  for (const BasicBlock *B : Blocks) {
    Out += B->name() + ":";
    if (!B->preds().empty()) {
      Out += "  ; preds:";
      for (const BasicBlock *P : B->preds())
        Out += " " + P->name();
    }
    Out += "\n";
    for (const Stmt *S : B->stmts())
      Out += "  " + S->str() + "\n";
  }
  return Out + "}\n";
}

//===----------------------------------------------------------------------===
// Module
//===----------------------------------------------------------------------===

Function *Module::createFunction(const std::string &Name, Type RetTy) {
  std::lock_guard<std::mutex> L(Mu);
  assert(!FunctionMap.count(Name) && "duplicate function");
  Function *F = makeLocked<Function>(Function(Name, RetTy, this));
  Functions.push_back(F);
  FunctionMap[Name] = F;
  return F;
}

Function *Module::function(const std::string &Name) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = FunctionMap.find(Name);
  return It == FunctionMap.end() ? nullptr : It->second;
}

Constant *Module::getIntConst(int64_t V) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = IntConsts.find(V);
  if (It != IntConsts.end())
    return It->second;
  Constant *C = makeLocked<Constant>(Constant(Type::intTy(), V));
  IntConsts[V] = C;
  return C;
}

Constant *Module::getBoolConst(bool B) {
  // Bool constants are interned alongside ints with shifted keys.
  std::lock_guard<std::mutex> L(Mu);
  int64_t Key = B ? -1000001 : -1000002;
  auto It = IntConsts.find(Key);
  if (It != IntConsts.end())
    return It->second;
  Constant *C = makeLocked<Constant>(Constant(Type::boolTy(), B ? 1 : 0));
  IntConsts[Key] = C;
  return C;
}

Constant *Module::getNullConst(Type PtrTy) {
  assert(PtrTy.isPointer());
  std::lock_guard<std::mutex> L(Mu);
  auto It = NullConsts.find(PtrTy.pointerDepth());
  if (It != NullConsts.end())
    return It->second;
  Constant *C = makeLocked<Constant>(Constant(PtrTy, 0));
  NullConsts[PtrTy.pointerDepth()] = C;
  return C;
}

std::string Module::str() const {
  std::string Out;
  for (const Function *F : Functions)
    Out += F->str() + "\n";
  return Out;
}

namespace intrinsics {
bool isIntrinsic(const std::string &Name) {
  return Name == Malloc || Name == Free;
}
} // namespace intrinsics

} // namespace pinpoint::ir
