//===- ir/Conditions.cpp -----------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Conditions.h"

namespace pinpoint::ir {

const smt::Expr *SymbolMap::operator[](const Value *V) {
  if (const auto *C = dyn_cast<Constant>(V))
    return Ctx.getInt(C->value());
  const auto *Var = cast<Variable>(V);
  // Held across creation so two tasks racing on the same IR variable
  // cannot mint two distinct symbolic variables for it.
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(Var);
  if (It != Map.end())
    return It->second;
  std::string Name = Var->parent()->name() + "::" + Var->name();
  const smt::Expr *E = Var->type().isBool() ? Ctx.freshBoolVar(Name)
                                            : Ctx.freshIntVar(Name);
  Map.emplace(Var, E);
  Reverse.emplace(E->varId(), Var);
  return E;
}

ConditionMap::ConditionMap(const Function &F, SymbolMap &Syms)
    : F(F), Syms(Syms), Ctx(Syms.context()), DT(F),
      PDT(F, DomTree::Direction::Post), RPO(reversePostOrder(F)) {
  computeControlDeps();
}

const smt::Expr *ConditionMap::edgeCond(const BasicBlock *From,
                                        const BasicBlock *To) {
  const Stmt *T = From->terminator();
  const auto *Br = dyn_cast_or_null<BranchStmt>(T);
  if (!Br || Br->trueBlock() == Br->falseBlock())
    return Ctx.getTrue();
  const smt::Expr *CondVar = Syms[Br->cond()];
  // Bool-typed conditions map to boolean atoms; int-typed ones (C-style
  // truthiness) become `v != 0`.
  const smt::Expr *Lit =
      CondVar->isBool() ? CondVar : Ctx.mkNe(CondVar, Ctx.getInt(0));
  if (To == Br->trueBlock())
    return Lit;
  assert(To == Br->falseBlock() && "edge does not exist");
  return Ctx.mkNot(Lit);
}

const smt::Expr *ConditionMap::reachCond(const BasicBlock *From,
                                         const BasicBlock *To) {
  auto &Cache = ReachCache[From];
  if (auto It = Cache.find(To); It != Cache.end())
    return It->second;

  // Topological propagation over the acyclic CFG, restricted to blocks at
  // or after From in RPO. Blocks not reached from From get condition false.
  Cache[From] = Ctx.getTrue();
  for (BasicBlock *X : RPO) {
    if (Cache.count(X))
      continue;
    const smt::Expr *RC = Ctx.getFalse();
    for (BasicBlock *P : X->preds()) {
      auto PIt = Cache.find(P);
      if (PIt == Cache.end() || PIt->second->isFalse())
        continue;
      RC = Ctx.mkOr(RC, Ctx.mkAnd(PIt->second, edgeCond(P, X)));
    }
    Cache[X] = RC;
  }
  auto It = Cache.find(To);
  return It == Cache.end() ? Ctx.getFalse() : It->second;
}

const smt::Expr *ConditionMap::phiGate(const PhiStmt *Phi,
                                       const BasicBlock *Pred) {
  const BasicBlock *B = Phi->parent();
  const BasicBlock *Region = DT.idom(B);
  const smt::Expr *RC =
      Region ? reachCond(Region, Pred) : Ctx.getTrue();
  return Ctx.mkAnd(RC, edgeCond(Pred, B));
}

void ConditionMap::computeControlDeps() {
  // FOW: B is control dependent on branch A via successor S when B
  // post-dominates S but not A. Walk each branch edge (A -> S) up the
  // post-dominator tree from S to pdom(A), marking every node passed.
  for (BasicBlock *A : F.blocks()) {
    const auto *Br = dyn_cast_or_null<BranchStmt>(A->terminator());
    if (!Br || Br->trueBlock() == Br->falseBlock())
      continue;
    const auto *CondVar = dyn_cast<Variable>(Br->cond());
    if (!CondVar)
      continue; // Constant condition: no real dependence.
    BasicBlock *StopAt = PDT.idom(A);
    for (bool Polarity : {true, false}) {
      BasicBlock *S = Polarity ? Br->trueBlock() : Br->falseBlock();
      BasicBlock *Runner = S;
      while (Runner && Runner != StopAt) {
        CDs[Runner].push_back({CondVar, Polarity});
        Runner = PDT.idom(Runner);
      }
    }
  }
}

const std::vector<ControlDep> &
ConditionMap::controlDeps(const BasicBlock *B) const {
  auto It = CDs.find(B);
  return It == CDs.end() ? Empty : It->second;
}

} // namespace pinpoint::ir
