//===- ir/Dominators.h - Dominator / post-dominator trees -----------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and post-dominator trees (Cooper-Harvey-Kennedy iterative
/// algorithm) plus dominance frontiers. Used by SSA construction, gated-SSA
/// condition computation, and the control-dependence subgraph of the SEG
/// (Ferrante-Ottenstein-Warren: control dependence = post-dominance
/// frontier).
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_IR_DOMINATORS_H
#define PINPOINT_IR_DOMINATORS_H

#include "ir/IR.h"

#include <unordered_map>
#include <vector>

namespace pinpoint::ir {

/// Dominator tree over a function's CFG. With Direction::Post it is the
/// post-dominator tree (requires the single exit block lowering guarantees).
class DomTree {
public:
  enum class Direction { Forward, Post };

  DomTree(const Function &F, Direction Dir = Direction::Forward);

  /// Immediate dominator; null for the root.
  BasicBlock *idom(const BasicBlock *B) const {
    auto It = IDom.find(B);
    return It == IDom.end() ? nullptr : It->second;
  }

  /// True if A dominates B (reflexive).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// The dominance frontier of \p B.
  const std::vector<BasicBlock *> &frontier(const BasicBlock *B) const;

  /// Tree children of \p B.
  const std::vector<BasicBlock *> &children(const BasicBlock *B) const;

  BasicBlock *root() const { return Root; }

  /// Blocks in reverse post-order of the walked direction.
  const std::vector<BasicBlock *> &rpo() const { return RPO; }

private:
  const std::vector<BasicBlock *> &edgesOut(const BasicBlock *B) const {
    return Dir == Direction::Forward ? B->succs() : B->preds();
  }
  const std::vector<BasicBlock *> &edgesIn(const BasicBlock *B) const {
    return Dir == Direction::Forward ? B->preds() : B->succs();
  }

  Direction Dir;
  BasicBlock *Root = nullptr;
  std::vector<BasicBlock *> RPO;
  std::unordered_map<const BasicBlock *, size_t> RPOIndex;
  std::unordered_map<const BasicBlock *, BasicBlock *> IDom;
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> Frontier;
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> Children;
  std::vector<BasicBlock *> Empty;
};

/// Computes the blocks of \p F in reverse post-order.
std::vector<BasicBlock *> reversePostOrder(const Function &F);

} // namespace pinpoint::ir

#endif // PINPOINT_IR_DOMINATORS_H
