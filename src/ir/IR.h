//===- ir/IR.h - IR for the paper's call-by-value mini language ----------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intermediate representation of the call-by-value language of paper
/// Section 3:
///
///   S := v1 ← v2 | v ← φ(v1, v2, …) | v1 ← v2 binop v3 | v1 ← unop v2
///      | v1 ← *(v2, k) | *(v1, k) ← v2 | if (v) S1 else S2 | return v
///      | r ← call f(v1, v2, …) | S1; S2
///
/// realised as a conventional CFG of basic blocks. Branches/sequencing become
/// block structure; every function has a single return statement (paper
/// assumption), which the frontend guarantees by lowering through a unified
/// exit block. After the transformation of Section 3.1.2, returns carry
/// multiple values ({v0, R1, R2, …}) and calls have multiple receivers.
///
/// The frontend unrolls loops once while lowering (the paper's soundiness
/// choice, Section 4.2), so all CFGs here are acyclic; analyses exploit this.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_IR_IR_H
#define PINPOINT_IR_IR_H

#include "support/Arena.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pinpoint::ir {

class BasicBlock;
class Function;
class Module;
class Stmt;

//===----------------------------------------------------------------------===
// Types
//===----------------------------------------------------------------------===

/// The mini language's types: bool, int, and int with k levels of pointers.
class Type {
public:
  static Type boolTy() { return Type(-1); }
  static Type intTy() { return Type(0); }
  static Type ptrTy(int Depth) {
    assert(Depth >= 1);
    return Type(static_cast<int8_t>(Depth));
  }
  static Type voidTy() { return Type(-2); }

  bool isBool() const { return Code == -1; }
  bool isInt() const { return Code == 0; }
  bool isPointer() const { return Code >= 1; }
  bool isVoid() const { return Code == -2; }
  /// Pointer depth; 0 for non-pointers.
  int pointerDepth() const { return Code >= 1 ? Code : 0; }
  /// The type obtained by dereferencing \p Levels times.
  Type deref(int Levels = 1) const {
    assert(pointerDepth() >= Levels && "over-dereference");
    return Code - Levels == 0 ? intTy() : ptrTy(Code - Levels);
  }

  bool operator==(const Type &O) const { return Code == O.Code; }
  bool operator!=(const Type &O) const { return Code != O.Code; }

  std::string str() const;

private:
  explicit Type(int8_t C) : Code(C) {}
  int8_t Code; // -2 void, -1 bool, 0 int, k>=1 pointer depth.
};

//===----------------------------------------------------------------------===
// Values
//===----------------------------------------------------------------------===

/// Base of the value hierarchy: variables and constants.
class Value {
public:
  enum ValueKind : uint8_t { VK_Variable, VK_Constant };

  ValueKind valueKind() const { return Kind; }
  Type type() const { return Ty; }

  std::string str() const;

protected:
  Value(ValueKind K, Type Ty) : Kind(K), Ty(Ty) {}

private:
  ValueKind Kind;
  Type Ty;
};

/// A variable. Before SSA construction a variable may have many defining
/// statements; after it, exactly one (or none, for parameters).
class Variable : public Value {
public:
  static bool classof(const Value *V) {
    return V->valueKind() == VK_Variable;
  }

  const std::string &name() const { return Name; }
  uint32_t id() const { return Id; }
  Function *parent() const { return Parent; }

  /// The unique defining statement in SSA form; null for parameters.
  Stmt *def() const { return Def; }
  void setDef(Stmt *S) { Def = S; }

  bool isParam() const { return ParamIdx >= 0; }
  /// Index within the (possibly transformed) parameter list, or -1.
  int paramIndex() const { return ParamIdx; }
  void setParamIndex(int I) { ParamIdx = I; }

  /// True for Aux formal parameters introduced by the connector transform.
  bool isAuxParam() const { return AuxParam; }
  void setAuxParam(bool B) { AuxParam = B; }

private:
  friend class Function;
  Variable(Type Ty, std::string Name, uint32_t Id, Function *Parent)
      : Value(VK_Variable, Ty), Name(std::move(Name)), Id(Id),
        Parent(Parent) {}

  std::string Name;
  uint32_t Id;
  Function *Parent;
  Stmt *Def = nullptr;
  int ParamIdx = -1;
  bool AuxParam = false;
};

/// An integer (or null-pointer) literal.
class Constant : public Value {
public:
  static bool classof(const Value *V) {
    return V->valueKind() == VK_Constant;
  }

  int64_t value() const { return Val; }
  bool isNull() const { return type().isPointer(); }

private:
  friend class Module;
  Constant(Type Ty, int64_t Val) : Value(VK_Constant, Ty), Val(Val) {}
  int64_t Val;
};

//===----------------------------------------------------------------------===
// Statements
//===----------------------------------------------------------------------===

/// Binary / unary operators.
enum class OpCode : uint8_t {
  Add,
  Sub,
  Mul,
  And,
  Or,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  Neg,
  Not,
};

const char *opCodeName(OpCode Op);

/// Base class of all statements.
class Stmt {
public:
  enum StmtKind : uint8_t {
    SK_Assign,
    SK_Phi,
    SK_BinOp,
    SK_UnOp,
    SK_Load,
    SK_Store,
    SK_Branch,
    SK_Jump,
    SK_Return,
    SK_Call,
  };

  StmtKind stmtKind() const { return Kind; }
  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *B) { Parent = B; }
  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  /// True for connector plumbing inserted by the transform (entry stores,
  /// exit loads, call-site mirror loads/stores). Synthetic memory accesses
  /// model callee effects and are not themselves program dereferences.
  bool isSynthetic() const { return Synthetic; }
  void setSynthetic(bool B) { Synthetic = B; }

  /// The variable defined by this statement, or null.
  Variable *definedVar() const;

  bool isTerminator() const {
    return Kind == SK_Branch || Kind == SK_Jump || Kind == SK_Return;
  }

  std::string str() const;

protected:
  Stmt(StmtKind K, SourceLoc Loc) : Kind(K), Loc(Loc) {}

private:
  StmtKind Kind;
  bool Synthetic = false;
  SourceLoc Loc;
  BasicBlock *Parent = nullptr;
};

/// v1 ← v2
class AssignStmt : public Stmt {
public:
  AssignStmt(Variable *Dst, Value *Src, SourceLoc Loc)
      : Stmt(SK_Assign, Loc), Dst(Dst), Src(Src) {}
  static bool classof(const Stmt *S) { return S->stmtKind() == SK_Assign; }

  Variable *dst() const { return Dst; }
  Value *src() const { return Src; }
  void setDst(Variable *V) { Dst = V; }
  void setSrc(Value *V) { Src = V; }

private:
  Variable *Dst;
  Value *Src;
};

/// v ← φ(v1, v2, …) with per-predecessor incoming values.
class PhiStmt : public Stmt {
public:
  PhiStmt(Variable *Dst, SourceLoc Loc) : Stmt(SK_Phi, Loc), Dst(Dst) {}
  static bool classof(const Stmt *S) { return S->stmtKind() == SK_Phi; }

  Variable *dst() const { return Dst; }
  void setDst(Variable *V) { Dst = V; }

  void addIncoming(BasicBlock *Pred, Value *V) {
    Incoming.push_back({Pred, V});
  }
  const std::vector<std::pair<BasicBlock *, Value *>> &incoming() const {
    return Incoming;
  }
  std::vector<std::pair<BasicBlock *, Value *>> &incoming() {
    return Incoming;
  }

private:
  Variable *Dst;
  std::vector<std::pair<BasicBlock *, Value *>> Incoming;
};

/// v1 ← v2 binop v3
class BinOpStmt : public Stmt {
public:
  BinOpStmt(Variable *Dst, OpCode Op, Value *L, Value *R, SourceLoc Loc)
      : Stmt(SK_BinOp, Loc), Dst(Dst), L(L), R(R), Op(Op) {}
  static bool classof(const Stmt *S) { return S->stmtKind() == SK_BinOp; }

  Variable *dst() const { return Dst; }
  void setDst(Variable *V) { Dst = V; }
  OpCode op() const { return Op; }
  Value *lhs() const { return L; }
  Value *rhs() const { return R; }
  void setLhs(Value *V) { L = V; }
  void setRhs(Value *V) { R = V; }

private:
  Variable *Dst;
  Value *L, *R;
  OpCode Op;
};

/// v1 ← unop v2
class UnOpStmt : public Stmt {
public:
  UnOpStmt(Variable *Dst, OpCode Op, Value *Src, SourceLoc Loc)
      : Stmt(SK_UnOp, Loc), Dst(Dst), Src(Src), Op(Op) {}
  static bool classof(const Stmt *S) { return S->stmtKind() == SK_UnOp; }

  Variable *dst() const { return Dst; }
  void setDst(Variable *V) { Dst = V; }
  OpCode op() const { return Op; }
  Value *src() const { return Src; }
  void setSrc(Value *V) { Src = V; }

private:
  Variable *Dst;
  Value *Src;
  OpCode Op;
};

/// v1 ← *(v2, k)
class LoadStmt : public Stmt {
public:
  LoadStmt(Variable *Dst, Value *Addr, uint32_t Derefs, SourceLoc Loc)
      : Stmt(SK_Load, Loc), Dst(Dst), Addr(Addr), Derefs(Derefs) {
    assert(Derefs >= 1);
  }
  static bool classof(const Stmt *S) { return S->stmtKind() == SK_Load; }

  Variable *dst() const { return Dst; }
  void setDst(Variable *V) { Dst = V; }
  Value *addr() const { return Addr; }
  void setAddr(Value *V) { Addr = V; }
  uint32_t derefs() const { return Derefs; }

private:
  Variable *Dst;
  Value *Addr;
  uint32_t Derefs;
};

/// *(v1, k) ← v2
class StoreStmt : public Stmt {
public:
  StoreStmt(Value *Addr, uint32_t Derefs, Value *Val, SourceLoc Loc)
      : Stmt(SK_Store, Loc), Addr(Addr), Val(Val), Derefs(Derefs) {
    assert(Derefs >= 1);
  }
  static bool classof(const Stmt *S) { return S->stmtKind() == SK_Store; }

  Value *addr() const { return Addr; }
  void setAddr(Value *V) { Addr = V; }
  Value *value() const { return Val; }
  void setValue(Value *V) { Val = V; }
  uint32_t derefs() const { return Derefs; }

private:
  Value *Addr;
  Value *Val;
  uint32_t Derefs;
};

/// if (v) then-block else else-block
class BranchStmt : public Stmt {
public:
  BranchStmt(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB,
             SourceLoc Loc)
      : Stmt(SK_Branch, Loc), Cond(Cond), TrueBB(TrueBB), FalseBB(FalseBB) {}
  static bool classof(const Stmt *S) { return S->stmtKind() == SK_Branch; }

  Value *cond() const { return Cond; }
  void setCond(Value *V) { Cond = V; }
  BasicBlock *trueBlock() const { return TrueBB; }
  BasicBlock *falseBlock() const { return FalseBB; }

private:
  Value *Cond;
  BasicBlock *TrueBB, *FalseBB;
};

/// Unconditional jump.
class JumpStmt : public Stmt {
public:
  JumpStmt(BasicBlock *Target, SourceLoc Loc)
      : Stmt(SK_Jump, Loc), Target(Target) {}
  static bool classof(const Stmt *S) { return S->stmtKind() == SK_Jump; }

  BasicBlock *target() const { return Target; }

private:
  BasicBlock *Target;
};

/// return {v0, R1, R2, …}. Before the connector transform a return carries
/// at most one value; afterwards it also carries the Aux return values.
class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(SourceLoc Loc) : Stmt(SK_Return, Loc) {}
  static bool classof(const Stmt *S) { return S->stmtKind() == SK_Return; }

  const std::vector<Value *> &values() const { return Vals; }
  std::vector<Value *> &values() { return Vals; }
  void addValue(Value *V) { Vals.push_back(V); }

private:
  std::vector<Value *> Vals;
};

/// {r0, C1, C2, …} ← call f(v1, v2, …). The primary receiver r0 catches the
/// callee's own return value (null when void or unused); aux receivers,
/// added by the connector transform, catch the callee's Aux return values
/// positionally (AuxReceivers[i] ↔ callee's i-th Aux return).
class CallStmt : public Stmt {
public:
  CallStmt(std::string CalleeName, SourceLoc Loc)
      : Stmt(SK_Call, Loc), CalleeName(std::move(CalleeName)) {}
  static bool classof(const Stmt *S) { return S->stmtKind() == SK_Call; }

  const std::string &calleeName() const { return CalleeName; }
  Function *callee() const { return Callee; }
  void setCallee(Function *F) { Callee = F; }

  const std::vector<Value *> &args() const { return Args; }
  std::vector<Value *> &args() { return Args; }
  void addArg(Value *V) { Args.push_back(V); }

  /// The primary receiver r0, or null.
  Variable *receiver() const { return PrimaryRecv; }
  Variable *&receiverRef() { return PrimaryRecv; }
  void setReceiver(Variable *V) { PrimaryRecv = V; }

  const std::vector<Variable *> &auxReceivers() const {
    return AuxReceivers;
  }
  std::vector<Variable *> &auxReceivers() { return AuxReceivers; }
  void addAuxReceiver(Variable *V) { AuxReceivers.push_back(V); }

private:
  std::string CalleeName;
  Function *Callee = nullptr;
  std::vector<Value *> Args;
  Variable *PrimaryRecv = nullptr;
  std::vector<Variable *> AuxReceivers;
};

//===----------------------------------------------------------------------===
// Basic blocks, functions, modules
//===----------------------------------------------------------------------===

/// A basic block: a straight-line statement list ending in a terminator.
class BasicBlock {
public:
  const std::string &name() const { return Name; }
  uint32_t id() const { return Id; }
  Function *parent() const { return Parent; }

  const std::vector<Stmt *> &stmts() const { return Stmts; }
  std::vector<Stmt *> &stmts() { return Stmts; }

  void append(Stmt *S) {
    S->setParent(this);
    Stmts.push_back(S);
  }
  /// Inserts \p S before the terminator (or at the end if none yet).
  void insertBeforeTerminator(Stmt *S);
  /// Inserts \p S at the front (after any phis).
  void insertAfterPhis(Stmt *S);

  Stmt *terminator() const {
    return !Stmts.empty() && Stmts.back()->isTerminator() ? Stmts.back()
                                                          : nullptr;
  }

  const std::vector<BasicBlock *> &preds() const { return Preds; }
  const std::vector<BasicBlock *> &succs() const { return Succs; }

private:
  friend class Function;
  BasicBlock(std::string Name, uint32_t Id, Function *Parent)
      : Name(std::move(Name)), Id(Id), Parent(Parent) {}

  std::string Name;
  uint32_t Id;
  Function *Parent;
  std::vector<Stmt *> Stmts;
  std::vector<BasicBlock *> Preds, Succs;
};

/// A function: parameters, blocks, and a single exit block.
class Function {
public:
  const std::string &name() const { return Name; }
  Module *parent() const { return Parent; }
  Type returnType() const { return RetTy; }

  //===--- Parameters ------------------------------------------------------===
  const std::vector<Variable *> &params() const { return Params; }
  Variable *addParam(Type Ty, const std::string &Name);
  /// Appends an Aux formal parameter (connector transform).
  Variable *addAuxParam(Type Ty, const std::string &Name);
  unsigned numOriginalParams() const { return NumOriginalParams; }

  //===--- Blocks & variables ---------------------------------------------===
  BasicBlock *createBlock(const std::string &Name);
  const std::vector<BasicBlock *> &blocks() const { return Blocks; }
  BasicBlock *entry() const { return Blocks.empty() ? nullptr : Blocks[0]; }
  /// The unique block holding the ReturnStmt.
  BasicBlock *exitBlock() const { return Exit; }
  void setExitBlock(BasicBlock *B) { Exit = B; }

  Variable *createVar(Type Ty, const std::string &Name);
  const std::vector<Variable *> &vars() const { return Vars; }

  /// The unique return statement (after lowering).
  ReturnStmt *returnStmt() const;

  /// Recomputes pred/succ lists from terminators. Call after CFG mutations.
  void recomputeCFGEdges();

  /// Drops blocks unreachable from the entry (dead code after early
  /// returns) and refreshes CFG edges.
  void removeUnreachableBlocks();

  /// Numbers statements in reverse-post-order execution order; used for
  /// intra-procedural happens-before tests. Returns the order as a map
  /// embedded in statement ids via stmtOrder().
  void renumberStmts();
  uint32_t stmtOrder(const Stmt *S) const {
    auto It = StmtOrder.find(S);
    assert(It != StmtOrder.end() && "statement not numbered");
    return It->second;
  }
  bool hasStmtOrder() const { return !StmtOrder.empty(); }

  std::string str() const;

private:
  friend class Module;
  Function(std::string Name, Type RetTy, Module *Parent)
      : Name(std::move(Name)), RetTy(RetTy), Parent(Parent) {}

  std::string Name;
  Type RetTy;
  Module *Parent;
  std::vector<Variable *> Params;
  unsigned NumOriginalParams = 0;
  std::vector<BasicBlock *> Blocks;
  BasicBlock *Exit = nullptr;
  std::vector<Variable *> Vars;
  uint32_t NextVarId = 0;
  uint32_t NextBlockId = 0;
  std::map<const Stmt *, uint32_t> StmtOrder;
};

/// A module: functions plus ownership of all IR objects.
///
/// Allocation (`make`, the constant pools) is internally locked so
/// concurrent pipeline tasks can materialise aux statements under
/// `--jobs N`. The function list itself is built by the (serial) frontend
/// and read-only during analysis, so `functions()` needs no lock.
class Module {
public:
  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  Function *createFunction(const std::string &Name, Type RetTy);
  Function *function(const std::string &Name) const;
  const std::vector<Function *> &functions() const { return Functions; }

  Constant *getIntConst(int64_t V);
  Constant *getBoolConst(bool B);
  Constant *getNullConst(Type PtrTy);

  /// Arena for all statements (create via `make<...>`). Thread-safe.
  template <typename T, typename... Args> T *make(Args &&...A) {
    std::lock_guard<std::mutex> L(Mu);
    return Mem.allocObject<T>(std::forward<Args>(A)...);
  }

  size_t bytesUsed() const {
    std::lock_guard<std::mutex> L(Mu);
    return Mem.bytesUsed();
  }

  std::string str() const;

private:
  /// For members that already hold Mu (the constant pools).
  template <typename T, typename... Args> T *makeLocked(Args &&...A) {
    return Mem.allocObject<T>(std::forward<Args>(A)...);
  }

  mutable std::mutex Mu; ///< Guards Mem and the interning maps below.
  Arena Mem;
  std::vector<Function *> Functions;
  std::map<std::string, Function *> FunctionMap;
  std::map<int64_t, Constant *> IntConsts;
  std::map<int, Constant *> NullConsts;
};

/// Names with built-in semantics for the analyses.
namespace intrinsics {
inline constexpr const char *Malloc = "malloc";
inline constexpr const char *Free = "free";
bool isIntrinsic(const std::string &Name);
} // namespace intrinsics

} // namespace pinpoint::ir

#endif // PINPOINT_IR_IR_H
