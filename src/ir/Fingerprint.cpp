//===- ir/Fingerprint.cpp ----------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Fingerprint.h"
#include "ir/IR.h"
#include "support/Hasher.h"

namespace pinpoint::ir {

namespace {

// Types are hashed by their depth code; -2/-1/0/k>=1 are all distinct.
void hashType(Hasher &H, Type Ty) {
  if (Ty.isVoid())
    H.u8(0xfe);
  else if (Ty.isBool())
    H.u8(0xff);
  else
    H.u8(static_cast<uint8_t>(Ty.pointerDepth()));
}

void hashValue(Hasher &H, const Value *V) {
  if (V == nullptr) {
    H.u8(0);
    return;
  }
  if (const auto *Var = dyn_cast<Variable>(V)) {
    // Function-local id + name: ids are creation order (deterministic per
    // parse+SSA), the name catches pathological id reuse across edits.
    H.u8(1).u32(Var->id()).str(Var->name());
    return;
  }
  const auto *C = cast<Constant>(V);
  H.u8(2);
  hashType(H, C->type());
  H.i64(C->value());
}

void hashStmt(Hasher &H, const Stmt *S) {
  H.u8(static_cast<uint8_t>(S->stmtKind()));
  H.u8(S->isSynthetic() ? 1 : 0);
  switch (S->stmtKind()) {
  case Stmt::SK_Assign: {
    const auto *A = cast<AssignStmt>(S);
    hashValue(H, A->dst());
    hashValue(H, A->src());
    break;
  }
  case Stmt::SK_Phi: {
    const auto *P = cast<PhiStmt>(S);
    hashValue(H, P->dst());
    H.u32(static_cast<uint32_t>(P->incoming().size()));
    for (const auto &[Pred, V] : P->incoming()) {
      H.u32(Pred->id());
      hashValue(H, V);
    }
    break;
  }
  case Stmt::SK_BinOp: {
    const auto *B = cast<BinOpStmt>(S);
    H.u8(static_cast<uint8_t>(B->op()));
    hashValue(H, B->dst());
    hashValue(H, B->lhs());
    hashValue(H, B->rhs());
    break;
  }
  case Stmt::SK_UnOp: {
    const auto *U = cast<UnOpStmt>(S);
    H.u8(static_cast<uint8_t>(U->op()));
    hashValue(H, U->dst());
    hashValue(H, U->src());
    break;
  }
  case Stmt::SK_Load: {
    const auto *L = cast<LoadStmt>(S);
    hashValue(H, L->dst());
    hashValue(H, L->addr());
    H.u32(L->derefs());
    break;
  }
  case Stmt::SK_Store: {
    const auto *St = cast<StoreStmt>(S);
    hashValue(H, St->addr());
    H.u32(St->derefs());
    hashValue(H, St->value());
    break;
  }
  case Stmt::SK_Branch: {
    const auto *Br = cast<BranchStmt>(S);
    hashValue(H, Br->cond());
    H.u32(Br->trueBlock()->id());
    H.u32(Br->falseBlock()->id());
    break;
  }
  case Stmt::SK_Jump:
    H.u32(cast<JumpStmt>(S)->target()->id());
    break;
  case Stmt::SK_Return: {
    const auto *R = cast<ReturnStmt>(S);
    H.u32(static_cast<uint32_t>(R->values().size()));
    for (const Value *V : R->values())
      hashValue(H, V);
    break;
  }
  case Stmt::SK_Call: {
    const auto *C = cast<CallStmt>(S);
    // Callee by *name*: which function the name resolves to (and what that
    // callee's interface looks like) is covered by the callee-SCC keys the
    // cache folds into the transitive hash, not by this local fingerprint.
    H.str(C->calleeName());
    hashValue(H, C->receiver());
    H.u32(static_cast<uint32_t>(C->args().size()));
    for (const Value *A : C->args())
      hashValue(H, A);
    H.u32(static_cast<uint32_t>(C->auxReceivers().size()));
    for (const Variable *R : C->auxReceivers())
      hashValue(H, R);
    break;
  }
  }
}

} // namespace

uint64_t fingerprintFunction(const Function &F) {
  Hasher H;
  H.str(F.name());
  hashType(H, F.returnType());

  H.u32(static_cast<uint32_t>(F.params().size()));
  for (const Variable *P : F.params()) {
    H.u32(P->id()).str(P->name());
    hashType(H, P->type());
    H.u8(P->isAuxParam() ? 1 : 0);
  }

  H.u32(static_cast<uint32_t>(F.blocks().size()));
  for (const BasicBlock *B : F.blocks()) {
    H.u32(B->id());
    H.u32(static_cast<uint32_t>(B->stmts().size()));
    for (const Stmt *S : B->stmts())
      hashStmt(H, S);
  }
  return H.digest();
}

ModuleFingerprints fingerprintModule(const Module &M) {
  ModuleFingerprints MF;
  Hasher SubjectH;
  MF.PerFn.reserve(M.functions().size());
  for (const Function *F : M.functions()) {
    uint64_t FP = fingerprintFunction(*F);
    MF.PerFn.emplace(F, FP);
    SubjectH.u64(FP);
  }
  MF.Subject = SubjectH.digest();
  return MF;
}

} // namespace pinpoint::ir
