//===- pta/PointsTo.h - Quasi path-sensitive local points-to ---------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intra-procedural, flow-sensitive, *quasi path-sensitive* points-to
/// analysis of paper Section 3.1.1. Points-to sets and memory contents carry
/// conditions; merges at CFG joins gate entries with the gated-SSA edge
/// conditions; entries whose conditions the linear-time solver refutes are
/// pruned — path sensitivity without ever invoking an SMT solver.
///
/// Outputs:
///  * per-load data dependences (which stored values a load may observe,
///    under which condition) — the memory-induced SEG edges;
///  * per-variable conditional points-to sets;
///  * the function's REF/MOD access paths `*(param, k)` — the side-effect
///    summary the connector transform materialises (Definition 3.1).
///
/// CFGs are acyclic (loops unrolled at lowering), so one RPO pass suffices —
/// this is what makes the local stage cheap, and it is run per function,
/// bottom-up, never globally.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_PTA_POINTSTO_H
#define PINPOINT_PTA_POINTSTO_H

#include "ir/Conditions.h"
#include "ir/IR.h"
#include "pta/Memory.h"
#include "smt/LinearSolver.h"

#include <map>
#include <memory>
#include <set>

namespace pinpoint::pta {

/// Binding of an Aux formal parameter to its access path (set up by the
/// connector transform; consumed by the second analysis pass).
struct AuxBinding {
  const ir::Variable *Root;
  int Level;
};

struct PTAConfig {
  /// Aux formal parameter bindings (empty on the first, pre-transform pass).
  std::map<const ir::Variable *, AuxBinding> AuxParams;
  /// Quasi path sensitivity: prune entries with obviously-unsat conditions.
  /// Disabled for the flow-sensitivity-only ablation.
  bool UseLinearFilter = true;
  /// Step budget (statement transfers); 0 = unlimited. When exceeded the
  /// pass stops early and the result is marked truncated — remaining loads
  /// simply get no dependences (best effort, never an abort).
  uint64_t MaxSteps = 0;
};

/// An access path *(param, k).
using ParamPath = std::pair<const ir::Variable *, int>;

class PointsToResult {
public:
  /// Values a load may observe, with conditions. Entries with a null IR
  /// value denote opaque initial contents (unconstrained).
  const ValSet &loadDeps(const ir::LoadStmt *L) const {
    static const ValSet None;
    auto It = LoadDeps.find(L);
    return It == LoadDeps.end() ? None : It->second;
  }

  /// Conditional points-to set of a pointer variable (empty if untracked).
  const PtsSet &pointsTo(const ir::Variable *V) const {
    static const PtsSet None;
    auto It = VarPts.find(V);
    return It == VarPts.end() ? None : It->second;
  }

  const std::set<ParamPath> &refs() const { return Refs; }
  const std::set<ParamPath> &mods() const { return Mods; }

  /// Conditions constructed / pruned as obviously unsat (ablation stats).
  uint64_t condsChecked() const { return CondsChecked; }
  uint64_t condsPruned() const { return CondsPruned; }

  size_t numObjects() const { return Objects ? Objects->all().size() : 0; }

  /// True when the pass stopped early on its step budget.
  bool truncated() const { return Truncated; }

  /// Total conditional entries held (points-to tuples + load dependences) —
  /// the cardinality the memory governor charges against `--mem-budget-mb`
  /// via `MemStats::notePTEntries` (see support/Statistics.h).
  size_t numGovernedEntries() const {
    size_t N = 0;
    for (const auto &[L, Vals] : LoadDeps)
      N += Vals.size();
    for (const auto &[V, Pts] : VarPts)
      N += Pts.size();
    return N;
  }

  /// Measured heap footprint of the retained outputs: tree nodes plus
  /// vector payloads. This is the byte figure the governor charges (the
  /// entry *count* above feeds the balance assertions only).
  size_t memoryBytes() const {
    // Node overhead of the red-black trees: three links + color word.
    const size_t MapNode = 4 * sizeof(void *);
    size_t N = 0;
    for (const auto &[L, Vals] : LoadDeps)
      N += MapNode + sizeof(const ir::LoadStmt *) + sizeof(ValSet) +
           Vals.capacity() * sizeof(ValSet::value_type);
    for (const auto &[V, Pts] : VarPts)
      N += MapNode + sizeof(const ir::Variable *) + sizeof(PtsSet) +
           Pts.capacity() * sizeof(PtsSet::value_type);
    N += (Refs.size() + Mods.size()) * (MapNode + sizeof(ParamPath));
    return N;
  }

private:
  friend class PointsToAnalysis;
  friend class PointsToRebuilder;
  std::map<const ir::LoadStmt *, ValSet> LoadDeps;
  std::map<const ir::Variable *, PtsSet> VarPts;
  std::set<ParamPath> Refs, Mods;
  uint64_t CondsChecked = 0, CondsPruned = 0;
  bool Truncated = false;
  std::shared_ptr<Arena> ObjectArena;          ///< Keeps objects alive.
  std::shared_ptr<MemObjectTable> Objects;
};

/// Runs the analysis over \p F (must be in SSA form with an acyclic CFG).
PointsToResult runPointsTo(const ir::Function &F, ir::SymbolMap &Syms,
                           ir::ConditionMap &Conds,
                           const PTAConfig &Config = {});

/// Reconstitutes a `PointsToResult` from cached artifacts (the incremental
/// summary cache, svfa/SummaryIO). Only the outputs with downstream
/// consumers are restored: per-load dependences (the SEG's only points-to
/// input), the REF/MOD sets and the truncation flag. Per-variable points-to
/// sets and the linear-filter statistics stay empty — nothing outside the
/// pta stage reads them.
class PointsToRebuilder {
public:
  static PointsToResult build(std::map<const ir::LoadStmt *, ValSet> LoadDeps,
                              std::set<ParamPath> Refs,
                              std::set<ParamPath> Mods, bool Truncated) {
    PointsToResult R;
    R.LoadDeps = std::move(LoadDeps);
    R.Refs = std::move(Refs);
    R.Mods = std::move(Mods);
    R.Truncated = Truncated;
    return R;
  }
};

} // namespace pinpoint::pta

#endif // PINPOINT_PTA_POINTSTO_H
