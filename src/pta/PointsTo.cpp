//===- pta/PointsTo.cpp ------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "pta/PointsTo.h"

#include <algorithm>

using namespace pinpoint::ir;

namespace pinpoint::pta {

namespace {

/// Memory environment: contents of each touched object.
using Env = std::map<const MemObject *, ValSet>;

} // namespace

class PointsToAnalysis {
public:
  PointsToAnalysis(const Function &F, SymbolMap &Syms, ConditionMap &Conds,
                   const PTAConfig &Config)
      : F(F), Syms(Syms), Conds(Conds), Ctx(Syms.context()),
        Linear(Syms.context()), Config(Config) {
    R.ObjectArena = std::make_shared<Arena>();
    R.Objects = std::make_shared<MemObjectTable>(*R.ObjectArena);
  }

  PointsToResult run();

private:
  //===--- Condition plumbing ----------------------------------------------===

  /// Conjoins and prunes; returns null when obviously unsatisfiable.
  const smt::Expr *conj(const smt::Expr *A, const smt::Expr *B) {
    const smt::Expr *C = Ctx.mkAnd(A, B);
    ++R.CondsChecked;
    if (Config.UseLinearFilter && Linear.isObviouslyUnsat(C)) {
      ++R.CondsPruned;
      return nullptr;
    }
    return C;
  }

  template <typename T>
  static void addEntry(std::vector<CondEntry<T>> &Set, const T &Item,
                       const smt::Expr *Cond, smt::ExprContext &Ctx) {
    for (auto &E : Set)
      if (E.Item == Item) {
        E.Cond = Ctx.mkOr(E.Cond, Cond);
        return;
      }
    Set.push_back({Item, Cond});
  }

  //===--- Points-to of values ---------------------------------------------===

  const PtsSet &ptsOfVar(const Variable *V) {
    auto It = R.VarPts.find(V);
    if (It != R.VarPts.end())
      return It->second;
    PtsSet S;
    if (V->type().isPointer()) {
      // Opaque pointer (parameter, call receiver, or untracked): it points
      // to the access-path object rooted at itself, unless it is an Aux
      // formal parameter standing for *(root, k) — then to *(root, k+1).
      auto Aux = Config.AuxParams.find(V);
      if (Aux != Config.AuxParams.end())
        S.push_back({R.Objects->rootObject(Aux->second.Root,
                                           Aux->second.Level + 1),
                     Ctx.getTrue()});
      else
        S.push_back({R.Objects->rootObject(V, 1), Ctx.getTrue()});
    }
    return R.VarPts.emplace(V, std::move(S)).first->second;
  }

  PtsSet ptsOfValue(const Value *V) {
    if (isa<Constant>(V))
      return {}; // null / int literals point nowhere.
    return ptsOfVar(cast<Variable>(V));
  }

  /// Points-to of a memory content value.
  PtsSet ptsOfContent(const ContentVal &CV) {
    if (!CV.isInitial())
      return ptsOfValue(CV.V);
    // Initial contents: only root-path objects have known structure —
    // *(root,k)'s initial value points to *(root,k+1). Initial malloc
    // contents are undefined and point nowhere.
    const MemObject *O = CV.Origin;
    if (O->kind() == MemObject::Root && O->contentType().isPointer())
      return {{R.Objects->rootObject(O->root(), O->level() + 1),
               Ctx.getTrue()}};
    return {};
  }

  //===--- Memory environment ----------------------------------------------===

  ValSet &contentsOf(Env &E, const MemObject *O) {
    auto It = E.find(O);
    if (It != E.end())
      return It->second;
    // Lazily materialise the initial contents.
    ValSet Init{{ContentVal{nullptr, O}, Ctx.getTrue()}};
    return E.emplace(O, std::move(Init)).first->second;
  }

  /// Resolves the access path *(Base, K): returns the objects at level K
  /// with their conditions. Marks no REF/MOD itself.
  PtsSet resolvePath(Env &E, const Value *Base, uint32_t K) {
    PtsSet Objs = ptsOfValue(Base);
    for (uint32_t L = 1; L < K; ++L) {
      // Read level-L contents, then take their pointees.
      PtsSet Next;
      for (auto &[O, OC] : Objs) {
        for (auto &[CV, CC] : contentsOf(E, O)) {
          const smt::Expr *C1 = conj(OC, CC);
          if (!C1)
            continue;
          for (auto &[Child, ChC] : ptsOfContent(CV)) {
            if (const smt::Expr *C2 = conj(C1, ChC))
              addEntry(Next, Child, C2, Ctx);
          }
        }
      }
      Objs = std::move(Next);
    }
    return Objs;
  }

  /// Reads the final-level contents of *(Base, K), marking REFs for initial
  /// reads of parameter paths.
  ValSet loadPath(Env &E, const Value *Base, uint32_t K) {
    ValSet Out;
    for (auto &[O, OC] : resolvePath(E, Base, K)) {
      for (auto &[CV, CC] : contentsOf(E, O)) {
        const smt::Expr *C = conj(OC, CC);
        if (!C)
          continue;
        if (CV.isInitial() && CV.Origin->isParamPath())
          R.Refs.insert({CV.Origin->root(), CV.Origin->level()});
        addEntry(Out, CV, C, Ctx);
      }
    }
    return Out;
  }

  /// Writes \p V into *(Base, K) with strong updates where sound.
  void storePath(Env &E, const Value *Base, uint32_t K, const Value *V) {
    PtsSet Targets = resolvePath(E, Base, K);
    for (auto &[O, OC] : Targets) {
      if (O->isParamPath())
        R.Mods.insert({O->root(), O->level()});
      ValSet &S = contentsOf(E, O);
      if (OC->isTrue() && Targets.size() == 1) {
        // Strong update: every abstract object is a single cell (arrays are
        // collapsed at the model level; the paper does the same).
        S.clear();
        S.push_back({ContentVal{V, nullptr}, Ctx.getTrue()});
        continue;
      }
      // Conditional strong update: old contents survive under ¬OC.
      const smt::Expr *NotC = Ctx.mkNot(OC);
      ValSet Updated;
      for (auto &[CV, CC] : S)
        if (const smt::Expr *C = conj(CC, NotC))
          addEntry(Updated, CV, C, Ctx);
      addEntry(Updated, ContentVal{V, nullptr}, OC, Ctx);
      S = std::move(Updated);
    }
  }

  //===--- Transfer ---------------------------------------------------------

  void transfer(Env &E, Stmt *S) {
    switch (S->stmtKind()) {
    case Stmt::SK_Assign: {
      auto *A = cast<AssignStmt>(S);
      if (A->dst()->type().isPointer())
        R.VarPts[A->dst()] = ptsOfValue(A->src());
      break;
    }
    case Stmt::SK_Phi: {
      auto *Phi = cast<PhiStmt>(S);
      if (!Phi->dst()->type().isPointer())
        break;
      PtsSet Merged;
      for (auto &[Pred, V] : Phi->incoming()) {
        const smt::Expr *Gate = Conds.phiGate(Phi, Pred);
        for (auto &[O, C] : ptsOfValue(V))
          if (const smt::Expr *CC = conj(C, Gate))
            addEntry(Merged, O, CC, Ctx);
      }
      R.VarPts[Phi->dst()] = std::move(Merged);
      break;
    }
    case Stmt::SK_Call: {
      auto *Call = cast<CallStmt>(S);
      if (Call->calleeName() == intrinsics::Malloc && Call->receiver()) {
        Type RecvTy = Call->receiver()->type();
        Type ContentTy =
            RecvTy.isPointer() ? RecvTy.deref() : Type::intTy();
        R.VarPts[Call->receiver()] = {
            {R.Objects->allocObject(Call, ContentTy), Ctx.getTrue()}};
      }
      // Other receivers resolve lazily as opaque roots via ptsOfVar.
      break;
    }
    case Stmt::SK_Load: {
      auto *L = cast<LoadStmt>(S);
      ValSet Deps = loadPath(E, L->addr(), L->derefs());
      if (L->dst()->type().isPointer()) {
        PtsSet Pts;
        for (auto &[CV, C] : Deps)
          for (auto &[O, OC] : ptsOfContent(CV))
            if (const smt::Expr *CC = conj(C, OC))
              addEntry(Pts, O, CC, Ctx);
        R.VarPts[L->dst()] = std::move(Pts);
      }
      R.LoadDeps[L] = std::move(Deps);
      break;
    }
    case Stmt::SK_Store: {
      auto *St = cast<StoreStmt>(S);
      storePath(E, St->addr(), St->derefs(), St->value());
      break;
    }
    default:
      break;
    }
  }

  //===--- Merge ------------------------------------------------------------

  Env mergePreds(const BasicBlock *B,
                 const std::map<const BasicBlock *, Env> &BlockOut) {
    const auto &Preds = B->preds();
    if (Preds.empty())
      return {};
    if (Preds.size() == 1) {
      auto It = BlockOut.find(Preds[0]);
      return It == BlockOut.end() ? Env{} : It->second;
    }
    // Gate each predecessor's contents exactly like a phi operand.
    const BasicBlock *Region = Conds.domTree().idom(B);
    Env Out;
    std::set<const MemObject *> Touched;
    for (const BasicBlock *P : Preds) {
      auto It = BlockOut.find(P);
      if (It == BlockOut.end())
        continue;
      for (auto &[O, S] : It->second)
        Touched.insert(O);
    }
    for (const MemObject *O : Touched) {
      ValSet Merged;
      for (const BasicBlock *P : Preds) {
        const smt::Expr *Gate = Ctx.mkAnd(
            Region ? Conds.reachCond(Region, P) : Ctx.getTrue(),
            Conds.edgeCond(P, B));
        auto It = BlockOut.find(P);
        const ValSet *S = nullptr;
        ValSet Lazy;
        if (It != BlockOut.end()) {
          auto OIt = It->second.find(O);
          if (OIt != It->second.end())
            S = &OIt->second;
        }
        if (!S) {
          Lazy.push_back({ContentVal{nullptr, O}, Ctx.getTrue()});
          S = &Lazy;
        }
        for (auto &[CV, C] : *S)
          if (const smt::Expr *CC = conj(C, Gate))
            addEntry(Merged, CV, CC, Ctx);
      }
      Out.emplace(O, std::move(Merged));
    }
    return Out;
  }

  const Function &F;
  SymbolMap &Syms;
  ConditionMap &Conds;
  smt::ExprContext &Ctx;
  smt::LinearSolver Linear;
  PTAConfig Config;
  PointsToResult R;
};

PointsToResult PointsToAnalysis::run() {
  // Seed parameter points-to (lazily materialised anyway, but doing it here
  // keeps VarPts complete for clients).
  for (const Variable *P : F.params())
    (void)ptsOfVar(P);

  std::map<const BasicBlock *, Env> BlockOut;
  uint64_t Steps = 0;
  for (BasicBlock *B : reversePostOrder(F)) {
    Env E = mergePreds(B, BlockOut);
    for (Stmt *S : B->stmts()) {
      if (Config.MaxSteps > 0 && ++Steps > Config.MaxSteps) {
        R.Truncated = true;
        break;
      }
      transfer(E, S);
    }
    BlockOut.emplace(B, std::move(E));
    if (R.Truncated)
      break;
  }
  return std::move(R);
}

PointsToResult runPointsTo(const Function &F, SymbolMap &Syms,
                           ConditionMap &Conds, const PTAConfig &Config) {
  return PointsToAnalysis(F, Syms, Conds, Config).run();
}

} // namespace pinpoint::pta
