//===- pta/Memory.h - Abstract memory objects ------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract memory objects for the intra-procedural points-to analysis:
///
///  * `Alloc` — one cell per malloc() call site;
///  * `Root`  — the non-local location reached by the access path
///    `*(root, level)`. When `root` is a formal parameter these are the
///    locations whose REF/MOD status drives the connector transformation
///    (paper Definition 3.1); when it is an opaque call receiver they model
///    callee-returned memory soundily.
///
/// Contents of objects are `ContentVal`s: either a real IR value or the
/// object's *initial* value (what the location held at function entry) —
/// the thing the connector transform later materialises as an Aux formal
/// parameter.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_PTA_MEMORY_H
#define PINPOINT_PTA_MEMORY_H

#include "ir/IR.h"
#include "smt/Expr.h"

#include <map>
#include <string>
#include <vector>

namespace pinpoint::pta {

/// An abstract memory object.
class MemObject {
public:
  enum Kind : uint8_t { Alloc, Root };

  Kind kind() const { return TheKind; }

  /// Alloc: the malloc call site.
  const ir::CallStmt *allocSite() const {
    assert(TheKind == Alloc);
    return Site;
  }

  /// Root: the pointer variable the access path is rooted at.
  const ir::Variable *root() const {
    assert(TheKind == Root);
    return RootVar;
  }
  /// Root: the dereference level (k in *(p,k)).
  int level() const {
    assert(TheKind == Root);
    return Level;
  }

  /// True when this is `*(param, k)` for a formal parameter — the objects
  /// that participate in Mod/Ref and the connector transform.
  bool isParamPath() const {
    return TheKind == Root && RootVar->isParam() && !RootVar->isAuxParam();
  }

  /// The static type of values stored in this object.
  ir::Type contentType() const { return ContentTy; }

  std::string str() const;

private:
  friend class MemObjectTable;
  MemObject(const ir::CallStmt *Site, ir::Type ContentTy)
      : TheKind(Alloc), Site(Site), ContentTy(ContentTy) {}
  MemObject(const ir::Variable *RootVar, int Level, ir::Type ContentTy)
      : TheKind(Root), RootVar(RootVar), Level(Level), ContentTy(ContentTy) {}

  Kind TheKind;
  const ir::CallStmt *Site = nullptr;
  const ir::Variable *RootVar = nullptr;
  int Level = 0;
  ir::Type ContentTy = ir::Type::intTy();
};

/// Interning table for memory objects (per analysed function).
class MemObjectTable {
public:
  explicit MemObjectTable(Arena &Mem) : Mem(Mem) {}

  MemObject *allocObject(const ir::CallStmt *Site, ir::Type ContentTy);
  MemObject *rootObject(const ir::Variable *Root, int Level);

  const std::vector<MemObject *> &all() const { return All; }

private:
  Arena &Mem;
  std::map<const ir::CallStmt *, MemObject *> Allocs;
  std::map<std::pair<const ir::Variable *, int>, MemObject *> Roots;
  std::vector<MemObject *> All;
};

/// A value possibly held in memory: a real IR value, or the initial value
/// of an object (null IR value).
struct ContentVal {
  const ir::Value *V = nullptr; ///< Null means "initial value of Origin".
  const MemObject *Origin = nullptr; ///< Set when V is null.

  bool isInitial() const { return V == nullptr; }
  bool operator==(const ContentVal &O) const {
    return V == O.V && Origin == O.Origin;
  }
  bool operator<(const ContentVal &O) const {
    return V != O.V ? V < O.V : Origin < O.Origin;
  }
};

/// A conditional points-to / content entry.
template <typename T> struct CondEntry {
  T Item;
  const smt::Expr *Cond;
};

using PtsSet = std::vector<CondEntry<const MemObject *>>;
using ValSet = std::vector<CondEntry<ContentVal>>;

} // namespace pinpoint::pta

#endif // PINPOINT_PTA_MEMORY_H
