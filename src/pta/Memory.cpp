//===- pta/Memory.cpp --------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "pta/Memory.h"

namespace pinpoint::pta {

std::string MemObject::str() const {
  if (TheKind == Alloc)
    return "alloc@" + Site->loc().str();
  std::string S = "*(" + RootVar->name() + "," + std::to_string(Level) + ")";
  return S;
}

MemObject *MemObjectTable::allocObject(const ir::CallStmt *Site,
                                       ir::Type ContentTy) {
  auto It = Allocs.find(Site);
  if (It != Allocs.end())
    return It->second;
  auto *O = static_cast<MemObject *>(
      Mem.allocate(sizeof(MemObject), alignof(MemObject)));
  new (O) MemObject(Site, ContentTy);
  Allocs.emplace(Site, O);
  All.push_back(O);
  return O;
}

MemObject *MemObjectTable::rootObject(const ir::Variable *Root, int Level) {
  auto Key = std::make_pair(Root, Level);
  auto It = Roots.find(Key);
  if (It != Roots.end())
    return It->second;
  assert(Root->type().pointerDepth() >= Level && "over-deep access path");
  ir::Type ContentTy = Root->type().deref(Level);
  auto *O = static_cast<MemObject *>(
      Mem.allocate(sizeof(MemObject), alignof(MemObject)));
  new (O) MemObject(Root, Level, ContentTy);
  Roots.emplace(Key, O);
  All.push_back(O);
  return O;
}

} // namespace pinpoint::pta
