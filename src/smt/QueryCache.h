//===- smt/QueryCache.h - Shared verdict cache for SMT queries ------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded, thread-safe verdict cache keyed by interned `Expr` identity.
/// Because every condition in the system is hash-consed (smt/Expr.h), two
/// candidates guarded by the same formula — or by the same variable-disjoint
/// sub-conjunction after slicing — share one `const Expr *`, so a pointer is
/// a sound cache key within one `ExprContext`.
///
/// Only *definite* verdicts (Sat / Unsat) are stored: Unknown depends on
/// run state (backend timeouts, step budgets, injected faults) and replaying
/// it would freeze a transient failure into a semantic answer.
///
/// One cache instance is shared by the serial discharge path and every
/// per-chunk `StagedSolver` of a `--jobs N` run (DESIGN.md section 11), so
/// lookup/store are sharded by pointer hash to keep contention low. Races
/// between chunks are benign: backends are deterministic on definite
/// verdicts, so a lost store only costs a re-solve, never a wrong answer.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SMT_QUERYCACHE_H
#define PINPOINT_SMT_QUERYCACHE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace pinpoint::smt {

class Expr;
enum class SatResult;

/// Verdict cache shared across StagedSolver instances of one analysis run.
class QueryCache {
public:
  QueryCache() = default;
  QueryCache(const QueryCache &) = delete;
  QueryCache &operator=(const QueryCache &) = delete;

  /// Returns the cached verdict for \p E, if any.
  std::optional<SatResult> lookup(const Expr *E) const {
    const Shard &Sh = shardFor(E);
    std::lock_guard<std::mutex> L(Sh.Mu);
    auto It = Sh.Map.find(E);
    if (It == Sh.Map.end())
      return std::nullopt;
    return It->second;
  }

  /// Records a *definite* verdict for \p E. The caller must never pass
  /// Unknown (asserted in StagedSolver); first writer wins on a race.
  void store(const Expr *E, SatResult R) {
    Shard &Sh = shardFor(E);
    std::lock_guard<std::mutex> L(Sh.Mu);
    Sh.Map.emplace(E, R);
  }

  /// Number of cached verdicts (approximate under concurrent stores).
  size_t size() const {
    size_t N = 0;
    for (const Shard &Sh : Shards) {
      std::lock_guard<std::mutex> L(Sh.Mu);
      N += Sh.Map.size();
    }
    return N;
  }

private:
  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<const Expr *, SatResult> Map;
  };
  static constexpr size_t NumShards = 16;

  Shard &shardFor(const Expr *E) {
    return Shards[(reinterpret_cast<uintptr_t>(E) >> 4) % NumShards];
  }
  const Shard &shardFor(const Expr *E) const {
    return Shards[(reinterpret_cast<uintptr_t>(E) >> 4) % NumShards];
  }

  std::array<Shard, NumShards> Shards;
};

} // namespace pinpoint::smt

#endif // PINPOINT_SMT_QUERYCACHE_H
