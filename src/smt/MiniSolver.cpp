//===- smt/MiniSolver.cpp - Built-in DPLL + theory solver ------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small lazy-SMT solver used when Z3 is unavailable and as an ablation
/// backend. Pipeline:
///
///   1. Tseitin-transform the boolean skeleton into CNF. Theory atoms
///      (comparisons) become propositional variables.
///   2. DPLL with unit propagation and chronological backtracking.
///   3. On a full propositional model, check the implied theory constraints:
///      union-find over equalities, constant propagation, interval bounds,
///      and difference-constraint cycles. Inconsistent models are excluded
///      with a blocking clause and search resumes.
///
/// The theory check is refutationally incomplete (e.g. nonlinear terms are
/// treated as opaque); when it cannot refute, the model is accepted and the
/// answer is Sat — the soundy choice for a bug finder, mirroring how the
/// paper tolerates over-approximation everywhere except real UNSAT proofs.
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

namespace pinpoint::smt {
namespace {

/// A literal is 2*var+sign (sign 1 = negated).
using Lit = uint32_t;
inline Lit mkLit(uint32_t Var, bool Neg) { return Var * 2 + (Neg ? 1 : 0); }
inline uint32_t litVar(Lit L) { return L >> 1; }
inline bool litNeg(Lit L) { return L & 1; }
inline Lit negate(Lit L) { return L ^ 1; }

enum class LBool : uint8_t { False, True, Undef };

class MiniSolver : public Solver {
public:
  MiniSolver(ExprContext &Ctx, const SolverConfig &Cfg)
      : Ctx(Ctx), StepLimit(Cfg.MaxSteps) {}

  SatResult checkSat(const Expr *E) override;
  const char *name() const override { return "mini"; }

private:
  //===--- CNF construction -----------------------------------------------===
  uint32_t newPropVar() {
    uint32_t V = NumVars++;
    return V;
  }
  void addClause(std::vector<Lit> C) { Clauses.push_back(std::move(C)); }
  Lit encode(const Expr *E);

  //===--- DPLL -----------------------------------------------------------===
  SatResult dpll();
  bool propagate();
  bool allAssigned() const { return Trail.size() == NumVars; }
  void assign(uint32_t Var, bool Value) {
    Assign[Var] = Value ? LBool::True : LBool::False;
    Trail.push_back(Var);
  }

  //===--- Theory ---------------------------------------------------------===
  bool theoryConsistent();

  ExprContext &Ctx;
  uint64_t StepLimit;
  uint32_t NumVars = 0;
  std::vector<std::vector<Lit>> Clauses;
  std::vector<LBool> Assign;
  std::vector<uint32_t> Trail;
  std::vector<size_t> DecisionStack; // Trail indices at decision points.
  std::unordered_map<const Expr *, Lit> EncMemo;
  std::unordered_map<const Expr *, uint32_t> AtomVar; // Theory atom -> var.
  std::vector<const Expr *> VarAtom;                  // var -> atom or null.
};

Lit MiniSolver::encode(const Expr *E) {
  auto It = EncMemo.find(E);
  if (It != EncMemo.end())
    return It->second;

  Lit Result;
  switch (E->kind()) {
  case ExprKind::True: {
    uint32_t V = newPropVar();
    VarAtom.push_back(nullptr);
    addClause({mkLit(V, false)});
    Result = mkLit(V, false);
    break;
  }
  case ExprKind::False: {
    uint32_t V = newPropVar();
    VarAtom.push_back(nullptr);
    addClause({mkLit(V, false)});
    Result = mkLit(V, true);
    break;
  }
  case ExprKind::Not:
    Result = negate(encode(E->operand(0)));
    break;
  case ExprKind::And: {
    Lit A = encode(E->operand(0));
    Lit B = encode(E->operand(1));
    uint32_t V = newPropVar();
    VarAtom.push_back(nullptr);
    Lit O = mkLit(V, false);
    // O <-> A & B.
    addClause({negate(O), A});
    addClause({negate(O), B});
    addClause({O, negate(A), negate(B)});
    Result = O;
    break;
  }
  case ExprKind::Or: {
    Lit A = encode(E->operand(0));
    Lit B = encode(E->operand(1));
    uint32_t V = newPropVar();
    VarAtom.push_back(nullptr);
    Lit O = mkLit(V, false);
    // O <-> A | B.
    addClause({negate(O), A, B});
    addClause({O, negate(A)});
    addClause({O, negate(B)});
    Result = O;
    break;
  }
  default: {
    // Theory atom (BoolVar or comparison).
    assert(E->isAtom() && "unexpected boolean node");
    uint32_t V = newPropVar();
    VarAtom.push_back(E);
    AtomVar.emplace(E, V);
    Result = mkLit(V, false);
    break;
  }
  }
  EncMemo.emplace(E, Result);
  return Result;
}

bool MiniSolver::propagate() {
  // Naive unit propagation to fixpoint; clause DB is small for path
  // conditions, so scanning is acceptable.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &C : Clauses) {
      int Unassigned = 0;
      Lit UnitLit = 0;
      bool Satisfied = false;
      for (Lit L : C) {
        LBool V = Assign[litVar(L)];
        if (V == LBool::Undef) {
          ++Unassigned;
          UnitLit = L;
        } else if ((V == LBool::True) != litNeg(L)) {
          Satisfied = true;
          break;
        }
      }
      if (Satisfied)
        continue;
      if (Unassigned == 0)
        return false; // Conflict.
      if (Unassigned == 1) {
        assign(litVar(UnitLit), !litNeg(UnitLit));
        Changed = true;
      }
    }
  }
  return true;
}

SatResult MiniSolver::dpll() {
  uint64_t Steps = 0;
  while (true) {
    if (StepLimit > 0 && ++Steps > StepLimit)
      return SatResult::Unknown; // Step budget exhausted: give up honestly;
                                 // the caller applies the soundy treatment.
    if (!propagate()) {
      // Backtrack to last decision, flip it.
      while (!DecisionStack.empty()) {
        size_t Mark = DecisionStack.back();
        DecisionStack.pop_back();
        uint32_t DecVar = Trail[Mark];
        bool DecVal = Assign[DecVar] == LBool::True;
        for (size_t I = Trail.size(); I > Mark; --I)
          Assign[Trail[I - 1]] = LBool::Undef;
        Trail.resize(Mark);
        // Flip: assign the negation as an implied (non-decision) value.
        assign(DecVar, !DecVal);
        goto continue_outer;
      }
      return SatResult::Unsat; // Conflict at level 0.
    }
    if (allAssigned()) {
      if (theoryConsistent())
        return SatResult::Sat;
      // Exclude this theory-inconsistent model and continue.
      std::vector<Lit> Block;
      for (uint32_t V = 0; V < NumVars; ++V)
        if (VarAtom[V])
          Block.push_back(mkLit(V, Assign[V] == LBool::True));
      if (Block.empty())
        return SatResult::Sat;
      addClause(std::move(Block));
      // Restart from scratch (simplest correct policy).
      std::fill(Assign.begin(), Assign.end(), LBool::Undef);
      Trail.clear();
      DecisionStack.clear();
      continue;
    }
    // Decide: first unassigned variable, try true.
    for (uint32_t V = 0; V < NumVars; ++V)
      if (Assign[V] == LBool::Undef) {
        DecisionStack.push_back(Trail.size());
        assign(V, true);
        break;
      }
  continue_outer:;
  }
}

//===----------------------------------------------------------------------===
// Theory check
//===----------------------------------------------------------------------===

namespace theory {

/// Term ids: integer variables and constants get nodes; compound terms are
/// evaluated if ground, otherwise treated opaquely (no refutation through
/// them).
struct UnionFind {
  std::vector<uint32_t> Parent;
  uint32_t find(uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  void unite(uint32_t A, uint32_t B) { Parent[find(A)] = find(B); }
  uint32_t makeNode() {
    Parent.push_back(static_cast<uint32_t>(Parent.size()));
    return static_cast<uint32_t>(Parent.size() - 1);
  }
};

} // namespace theory

bool MiniSolver::theoryConsistent() {
  // Gather asserted atoms with their polarity.
  struct Assertion {
    const Expr *Atom;
    bool Positive;
  };
  std::vector<Assertion> Asserts;
  for (uint32_t V = 0; V < NumVars; ++V)
    if (const Expr *A = VarAtom[V])
      if (A->kind() != ExprKind::BoolVar) // Boolean vars are free.
        Asserts.push_back({A, Assign[V] == LBool::True});

  // Map terms to nodes: IntVar by varId, IntConst by value. Compound terms
  // are opaque (id by Expr pointer) — equalities through them still join via
  // union-find, and arithmetic is interpreted once its operands become
  // ground (see the evaluation fixpoint below).
  theory::UnionFind UF;
  std::unordered_map<const Expr *, uint32_t> TermNode;
  std::unordered_map<uint32_t, int64_t> NodeConst; // root -> value
  std::vector<const Expr *> Compounds;
  std::function<uint32_t(const Expr *)> node = [&](const Expr *T) -> uint32_t {
    auto It = TermNode.find(T);
    if (It != TermNode.end())
      return It->second;
    uint32_t N = UF.makeNode();
    TermNode.emplace(T, N);
    switch (T->kind()) {
    case ExprKind::IntConst:
      NodeConst[N] = T->constValue();
      break;
    case ExprKind::Add:
    case ExprKind::Sub:
    case ExprKind::Mul:
      node(T->operand(0));
      node(T->operand(1));
      Compounds.push_back(T);
      break;
    case ExprKind::Neg:
      node(T->operand(0));
      Compounds.push_back(T);
      break;
    default:
      break;
    }
    return N;
  };

  // Pass 1: merge equalities.
  for (const auto &A : Asserts) {
    ExprKind K = A.Atom->kind();
    bool IsEq = (K == ExprKind::Eq && A.Positive) ||
                (K == ExprKind::Ne && !A.Positive);
    if (!IsEq)
      continue;
    uint32_t L = node(A.Atom->operand(0));
    uint32_t R = node(A.Atom->operand(1));
    uint32_t RL = UF.find(L), RR = UF.find(R);
    if (RL == RR)
      continue;
    auto CL = NodeConst.find(RL), CR = NodeConst.find(RR);
    if (CL != NodeConst.end() && CR != NodeConst.end() &&
        CL->second != CR->second)
      return false; // Two distinct constants equated.
    int64_t Val = 0;
    bool HasVal = false;
    if (CL != NodeConst.end()) {
      Val = CL->second;
      HasVal = true;
    } else if (CR != NodeConst.end()) {
      Val = CR->second;
      HasVal = true;
    }
    UF.unite(RL, RR);
    if (HasVal)
      NodeConst[UF.find(RL)] = Val;
  }

  // Pass 1b: ground evaluation. A compound whose operands all sit in
  // constant-valued classes pins its own class to the computed value;
  // iterate to a fixpoint so chains ground transitively (b = a+1 with
  // a = 3 grounds b, which grounds c = b*2, refuting c = 9). Wrapping
  // arithmetic via uint64_t keeps overflow defined.
  bool Evaluated = true;
  while (Evaluated) {
    Evaluated = false;
    for (const Expr *T : Compounds) {
      auto constOf = [&](const Expr *O) {
        auto CIt = NodeConst.find(UF.find(TermNode.at(O)));
        return CIt == NodeConst.end() ? std::optional<int64_t>()
                                      : std::optional<int64_t>(CIt->second);
      };
      std::optional<int64_t> A = constOf(T->operand(0));
      std::optional<int64_t> Bv =
          T->kind() == ExprKind::Neg ? std::optional<int64_t>(0)
                                     : constOf(T->operand(1));
      if (!A || !Bv)
        continue;
      int64_t V = 0;
      switch (T->kind()) {
      case ExprKind::Add:
        V = static_cast<int64_t>(static_cast<uint64_t>(*A) +
                                 static_cast<uint64_t>(*Bv));
        break;
      case ExprKind::Sub:
        V = static_cast<int64_t>(static_cast<uint64_t>(*A) -
                                 static_cast<uint64_t>(*Bv));
        break;
      case ExprKind::Mul:
        V = static_cast<int64_t>(static_cast<uint64_t>(*A) *
                                 static_cast<uint64_t>(*Bv));
        break;
      case ExprKind::Neg:
        V = static_cast<int64_t>(-static_cast<uint64_t>(*A));
        break;
      default:
        continue;
      }
      uint32_t R = UF.find(TermNode.at(T));
      auto CIt = NodeConst.find(R);
      if (CIt != NodeConst.end()) {
        if (CIt->second != V)
          return false; // Ground term contradicts its class's constant.
      } else {
        NodeConst[R] = V;
        Evaluated = true;
      }
    }
  }

  // Pass 2: disequalities and orderings.
  // Bounds per root: [lo, hi].
  struct Bounds {
    int64_t Lo = INT64_MIN, Hi = INT64_MAX;
  };
  std::unordered_map<uint32_t, Bounds> B;
  auto boundsOf = [&](uint32_t Root) -> Bounds & {
    auto [It, New] = B.try_emplace(Root);
    if (New) {
      auto C = NodeConst.find(Root);
      if (C != NodeConst.end()) {
        It->second.Lo = C->second;
        It->second.Hi = C->second;
      }
    }
    return It->second;
  };
  // Difference edges Root(L) - Root(R) <= C.
  struct Edge {
    uint32_t From, To;
    int64_t W;
  };
  std::vector<Edge> Edges;

  for (const auto &A : Asserts) {
    ExprKind K = A.Atom->kind();
    if (K == ExprKind::BoolVar)
      continue;
    const Expr *LT = A.Atom->operand(0);
    const Expr *RT = A.Atom->operand(1);
    uint32_t L = UF.find(node(LT)), R = UF.find(node(RT));

    // Normalise to a positive relation.
    ExprKind Rel = K;
    if (!A.Positive) {
      switch (K) {
      case ExprKind::Eq:
        Rel = ExprKind::Ne;
        break;
      case ExprKind::Ne:
        Rel = ExprKind::Eq;
        break;
      case ExprKind::Lt:
        Rel = ExprKind::Ge;
        break;
      case ExprKind::Le:
        Rel = ExprKind::Gt;
        break;
      case ExprKind::Gt:
        Rel = ExprKind::Le;
        break;
      case ExprKind::Ge:
        Rel = ExprKind::Lt;
        break;
      default:
        break;
      }
    }

    if (Rel == ExprKind::Eq)
      continue; // Handled in pass 1.
    if (Rel == ExprKind::Ne) {
      if (L == R)
        return false; // x != x within one equivalence class.
      continue;
    }

    // Orderings: push constant bounds or difference edges.
    auto CL = NodeConst.find(L), CR = NodeConst.find(R);
    bool LConst = CL != NodeConst.end(), RConst = CR != NodeConst.end();
    int64_t Adjust = (Rel == ExprKind::Lt || Rel == ExprKind::Gt) ? 1 : 0;
    if (Rel == ExprKind::Lt || Rel == ExprKind::Le) {
      // L <= R - adjust.
      if (RConst) {
        Bounds &BB = boundsOf(L);
        BB.Hi = std::min(BB.Hi, CR->second - Adjust);
      } else if (LConst) {
        Bounds &BB = boundsOf(R);
        BB.Lo = std::max(BB.Lo, CL->second + Adjust);
      } else {
        Edges.push_back({L, R, -Adjust}); // L - R <= -adjust.
      }
    } else { // Gt / Ge: L >= R + adjust.
      if (RConst) {
        Bounds &BB = boundsOf(L);
        BB.Lo = std::max(BB.Lo, CR->second + Adjust);
      } else if (LConst) {
        Bounds &BB = boundsOf(R);
        BB.Hi = std::min(BB.Hi, CL->second - Adjust);
      } else {
        Edges.push_back({R, L, -Adjust}); // R - L <= -adjust.
      }
    }
  }

  for (auto &[Root, Bound] : B)
    if (Bound.Lo > Bound.Hi)
      return false;

  // Negative-cycle detection over difference edges (Bellman-Ford on the
  // used roots only). Bound interaction with edges is not modelled; this
  // only weakens refutation power, never soundness of Unsat.
  if (!Edges.empty()) {
    std::unordered_map<uint32_t, int64_t> Dist;
    for (const Edge &E : Edges) {
      Dist.try_emplace(E.From, 0);
      Dist.try_emplace(E.To, 0);
    }
    size_t N = Dist.size();
    for (size_t I = 0; I <= N; ++I) {
      bool Relaxed = false;
      for (const Edge &E : Edges) {
        if (Dist[E.From] + E.W < Dist[E.To]) {
          Dist[E.To] = Dist[E.From] + E.W;
          Relaxed = true;
        }
      }
      if (!Relaxed)
        break;
      if (I == N)
        return false; // Negative cycle.
    }
  }

  return true;
}

SatResult MiniSolver::checkSat(const Expr *E) {
  assert(E->isBool() && "checkSat on non-boolean");
  NumVars = 0;
  Clauses.clear();
  Trail.clear();
  DecisionStack.clear();
  EncMemo.clear();
  AtomVar.clear();
  VarAtom.clear();

  if (E->isTrue())
    return SatResult::Sat;
  if (E->isFalse())
    return SatResult::Unsat;

  Lit Root = encode(E);
  addClause({Root});
  Assign.assign(NumVars, LBool::Undef);
  return dpll();
}

} // namespace

std::unique_ptr<Solver> createMiniSolver(ExprContext &Ctx,
                                         const SolverConfig &Cfg) {
  return std::make_unique<MiniSolver>(Ctx, Cfg);
}

} // namespace pinpoint::smt
