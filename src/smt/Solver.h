//===- smt/Solver.h - SMT backend interface & staged solving --------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Satisfiability backends. The paper implements Pinpoint on Z3; this repo
/// provides the same (when libz3 is present) plus a self-contained
/// DPLL+theory "MiniSolver" so the system runs everywhere and the linear
/// filter can be ablated independently of the backend.
///
/// `StagedSolver` is the paper's two-stage pipeline: the linear-time filter
/// of Section 3.1.1 first, the full SMT solver only for conditions the
/// filter cannot refute. It keeps the counters the ablation benchmark
/// (bench/ablation_linear_solver) reports.
///
/// Between the filter and the backend sits the query-acceleration layer
/// (DESIGN.md section 11): the surviving conjunction is sliced into
/// variable-disjoint connected components that are discharged independently
/// (any unsat component refutes the whole query; all-sat composes to sat),
/// and both full queries and components consult a shared `QueryCache` of
/// definite verdicts before paying for a backend call.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SMT_SOLVER_H
#define PINPOINT_SMT_SOLVER_H

#include "smt/Expr.h"
#include "smt/LinearSolver.h"
#include "smt/QueryCache.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pinpoint {
class ResourceGovernor;
}

namespace pinpoint::smt {

enum class SatResult { Sat, Unsat, Unknown };

inline const char *toString(SatResult R) {
  switch (R) {
  case SatResult::Sat:
    return "sat";
  case SatResult::Unsat:
    return "unsat";
  default:
    return "unknown";
  }
}

/// Abstract satisfiability backend for boolean Exprs.
class Solver {
public:
  virtual ~Solver() = default;
  /// Decides satisfiability of the boolean formula \p E. Unknown means the
  /// backend gave up (timeout / step budget); callers treat it soundily.
  virtual SatResult checkSat(const Expr *E) = 0;
  virtual const char *name() const = 0;
};

/// Per-query resource limits for a backend.
struct SolverConfig {
  int TimeoutMs = 10000;         ///< Wall-clock timeout (Z3).
  uint64_t MaxSteps = 2'000'000; ///< DPLL step budget (MiniSolver).
};

/// Creates a Z3-backed solver, or nullptr when built without Z3.
std::unique_ptr<Solver> createZ3Solver(ExprContext &Ctx,
                                       const SolverConfig &Cfg = {});

/// Creates the built-in DPLL + (equality/difference-bounds) theory solver.
/// Sound for UNSAT; may answer Sat for theory fragments it cannot refute
/// (the soundy choice for a bug finder) and Unknown past its step budget.
std::unique_ptr<Solver> createMiniSolver(ExprContext &Ctx,
                                         const SolverConfig &Cfg = {});

/// Z3 if available, MiniSolver otherwise.
std::unique_ptr<Solver> createDefaultSolver(ExprContext &Ctx,
                                            const SolverConfig &Cfg = {});

/// The paper's two-stage solving discipline: linear-time filter, then a full
/// backend for whatever survives.
class StagedSolver : public Solver {
public:
  /// \p Gov, when given, receives a degradation event for every Unknown
  /// answer and drives fault injection of forced-Unknown queries.
  StagedSolver(ExprContext &Ctx, std::unique_ptr<Solver> Backend,
               bool UseLinearFilter = true, ResourceGovernor *Gov = nullptr)
      : Ctx(Ctx), Linear(Ctx), Backend(std::move(Backend)),
        UseLinearFilter(UseLinearFilter), Gov(Gov) {}

  SatResult checkSat(const Expr *E) override;
  const char *name() const override { return "staged"; }

  /// Tags subsequent queries with the function they originate from, so
  /// degradation events carry the function name regardless of which thread
  /// the query ran on. One StagedSolver instance is single-thread-owned
  /// (parallel discharge builds one per chunk), so a plain member suffices.
  void setQueryOrigin(std::string Fn) { Origin = std::move(Fn); }

  /// Attaches a shared verdict cache (not owned; may outlive many staged
  /// solvers). nullptr disables caching. The cache may be shared across
  /// threads; this solver itself stays single-thread-owned.
  void setQueryCache(QueryCache *C) { Cache = C; }
  /// Enables/disables conjunct slicing (on by default; an ablation knob).
  void setSlicing(bool On) { UseSlicing = On; }

  /// Statistics for the ablation study. The first six fields predate the
  /// acceleration layer and keep their per-*query* semantics — a cache hit
  /// replays the verdict the backend stage would have produced, so they are
  /// deterministic even when cache hit patterns are not (shared cache under
  /// --jobs). The acceleration counters below them are interleaving-
  /// dependent by nature and exempt from cross-run determinism.
  struct Stats {
    uint64_t Queries = 0;        ///< Total checkSat calls.
    uint64_t LinearUnsat = 0;    ///< Refuted by the linear filter alone.
    uint64_t BackendQueries = 0; ///< Fell through to the backend stage.
    uint64_t BackendUnsat = 0;   ///< Backend-stage queries found unsat.
    uint64_t BackendUnknown = 0; ///< Backend-stage unknowns (incl. injected).
    uint64_t InjectedUnknown = 0; ///< Unknowns forced by fault injection.
    // Acceleration layer (DESIGN.md section 11).
    uint64_t BackendCalls = 0; ///< Actual backend invocations (post cache).
    uint64_t CacheHits = 0;    ///< Full-query + component verdicts replayed.
    uint64_t SlicedQueries = 0; ///< Queries split into >1 component.
    uint64_t ComponentsRefuted = 0; ///< Unsat components refuting a query.
    // Resilience layer (DESIGN.md section 12).
    uint64_t Retries = 0; ///< Backend attempts repeated after a transient.
    uint64_t TransientFailures = 0; ///< Calls degraded: retries exhausted.
  };
  const Stats &stats() const { return S; }

private:
  /// Backend stage for one fall-through query: cache, slicing, composition.
  SatResult solveFull(const Expr *E);
  /// One variable-disjoint component: cache consult + backend discharge.
  SatResult solveComponent(const Expr *C);
  /// Uncached backend invocation (fault injection + degradation notes).
  SatResult discharge(const Expr *E);
  /// Flattens the top-level conjunction of \p E and partitions the
  /// conjuncts into variable-disjoint connected components. Returns false
  /// (leaving \p Out untouched) when there is nothing to slice.
  bool sliceComponents(const Expr *E, std::vector<const Expr *> &Out);
  /// Memoised sorted distinct variable ids of a conjunct.
  const std::vector<uint32_t> &varsOf(const Expr *E);

  ExprContext &Ctx;
  LinearSolver Linear;
  std::unique_ptr<Solver> Backend;
  bool UseLinearFilter;
  bool UseSlicing = true;
  ResourceGovernor *Gov;
  QueryCache *Cache = nullptr; ///< Shared verdict cache; nullptr = off.
  std::string Origin; ///< Function the current query is discharged for.
  std::unordered_map<const Expr *, std::vector<uint32_t>> VarsMemo;
  Stats S;
};

} // namespace pinpoint::smt

#endif // PINPOINT_SMT_SOLVER_H
