//===- smt/LinearSolver.h - The paper's linear-time constraint filter ----===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linear-time constraint solver of Section 3.1.1. For a condition C it
/// maintains the sets of positive and negative atomic constraints, P(C) and
/// N(C), under the rules
///
///   C = a        : P = {a},          N = {}
///   C = ¬C1      : P = N(C1),        N = P(C1)
///   C = C1 ∧ C2  : P = P1 ∪ P2,      N = N1 ∪ N2
///   C = C1 ∨ C2  : P = P1 ∩ P2,      N = N1 ∩ N2
///
/// and declares C unsatisfiable when P(C) ∩ N(C) ≠ ∅ (i.e. C contains an
/// apparent contradiction a ∧ ¬a). Per the paper, >90% of unsatisfiable path
/// conditions in practice are such "easy" constraints, so this filter removes
/// most SMT work; the quasi path-sensitive points-to analysis uses it as its
/// only decision procedure.
///
/// Atom sets are memoised per hash-consed Expr node, so repeated queries over
/// shared subformulas stay cheap.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SMT_LINEARSOLVER_H
#define PINPOINT_SMT_LINEARSOLVER_H

#include "smt/Expr.h"

#include <unordered_map>
#include <vector>

namespace pinpoint::smt {

/// Memoising implementation of the P(C)/N(C) rules.
class LinearSolver {
public:
  explicit LinearSolver(ExprContext &Ctx) : Ctx(Ctx) {}

  /// Returns true iff the formula contains an apparent contradiction
  /// (some atom occurs in both P(C) and N(C)), i.e. is "easily" UNSAT.
  bool isObviouslyUnsat(const Expr *E);

  /// The positive atom set P(C), as sorted atom node ids.
  const std::vector<uint32_t> &positiveAtoms(const Expr *E) {
    return sets(E).P;
  }
  /// The negative atom set N(C), as sorted atom node ids.
  const std::vector<uint32_t> &negativeAtoms(const Expr *E) {
    return sets(E).N;
  }

  /// Number of cache entries (for tests / stats).
  size_t cacheSize() const { return Cache.size(); }

private:
  struct PN {
    std::vector<uint32_t> P, N; // Sorted atom ids.
  };

  const PN &sets(const Expr *E);
  static std::vector<uint32_t> unionOf(const std::vector<uint32_t> &A,
                                       const std::vector<uint32_t> &B);
  static std::vector<uint32_t> intersectOf(const std::vector<uint32_t> &A,
                                           const std::vector<uint32_t> &B);
  static bool intersects(const std::vector<uint32_t> &A,
                         const std::vector<uint32_t> &B);

  ExprContext &Ctx;
  std::unordered_map<const Expr *, PN> Cache;
};

} // namespace pinpoint::smt

#endif // PINPOINT_SMT_LINEARSOLVER_H
