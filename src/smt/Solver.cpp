//===- smt/Solver.cpp ------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

namespace pinpoint::smt {

SatResult StagedSolver::checkSat(const Expr *E) {
  ++S.Queries;
  if (E->isTrue())
    return SatResult::Sat;
  if (UseLinearFilter && Linear.isObviouslyUnsat(E)) {
    ++S.LinearUnsat;
    return SatResult::Unsat;
  }
  ++S.BackendQueries;
  SatResult R = Backend->checkSat(E);
  if (R == SatResult::Unsat)
    ++S.BackendUnsat;
  return R;
}

std::unique_ptr<Solver> createDefaultSolver(ExprContext &Ctx) {
  if (auto Z3 = createZ3Solver(Ctx))
    return Z3;
  return createMiniSolver(Ctx);
}

} // namespace pinpoint::smt
