//===- smt/Solver.cpp ------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"
#include "support/ResourceGovernor.h"
#include "support/Statistics.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>
#include <unordered_set>

namespace pinpoint::smt {

SatResult StagedSolver::checkSat(const Expr *E) {
  ++S.Queries;
  if (E->isTrue())
    return SatResult::Sat;
  if (UseLinearFilter && Linear.isObviouslyUnsat(E)) {
    ++S.LinearUnsat;
    return SatResult::Unsat;
  }
  ++S.BackendQueries;
  SatResult R = solveFull(E);
  // Per-query outcome counters: a cache hit replays exactly the verdict the
  // backend stage would recompute (backends are deterministic on definite
  // answers and Unknown is never cached), so these stay deterministic even
  // when the shared cache makes hit/miss patterns interleaving-dependent.
  if (R == SatResult::Unsat)
    ++S.BackendUnsat;
  if (R == SatResult::Unknown)
    ++S.BackendUnknown;
  return R;
}

SatResult StagedSolver::solveFull(const Expr *E) {
  if (Cache) {
    if (auto V = Cache->lookup(E)) {
      ++S.CacheHits;
      return *V;
    }
  }
  SatResult R;
  std::vector<const Expr *> Comps;
  if (UseSlicing && sliceComponents(E, Comps)) {
    ++S.SlicedQueries;
    // Variable-disjoint components: models over disjoint vocabularies merge
    // into one model of the conjunction, so all-sat composes to sat; any
    // unsat component refutes the whole query; otherwise the query is
    // unresolved (some component unknown) and stays Unknown.
    bool AnyUnknown = false;
    R = SatResult::Sat;
    for (const Expr *C : Comps) {
      SatResult CR = solveComponent(C);
      if (CR == SatResult::Unsat) {
        ++S.ComponentsRefuted;
        R = SatResult::Unsat;
        break;
      }
      if (CR == SatResult::Unknown)
        AnyUnknown = true;
    }
    if (R == SatResult::Sat && AnyUnknown)
      R = SatResult::Unknown;
  } else {
    R = discharge(E);
  }
  // Unknown is run-state (timeouts, step budgets, injected faults), not a
  // property of the formula — caching it would freeze a transient failure.
  if (Cache && R != SatResult::Unknown)
    Cache->store(E, R);
  return R;
}

SatResult StagedSolver::solveComponent(const Expr *C) {
  if (Cache) {
    if (auto V = Cache->lookup(C)) {
      ++S.CacheHits;
      return *V;
    }
  }
  SatResult R = discharge(C);
  if (Cache && R != SatResult::Unknown)
    Cache->store(C, R);
  return R;
}

SatResult StagedSolver::discharge(const Expr *E) {
  ++S.BackendCalls;
  if (Gov && Gov->faults().injectSolverUnknown()) {
    ++S.InjectedUnknown;
    Gov->note(DegradationKind::InjectedFault, "smt", Origin,
              "forced solver unknown");
    return SatResult::Unknown;
  }

  // Bounded transient retry (DESIGN.md section 12): a backend exception or
  // an injected transient is retried up to the governed budget with capped
  // backoff, so one flaky call no longer downgrades a verdict to Unknown.
  // Definite answers and ordinary Unknowns (timeout/step cap — the backend
  // *answered*) are never retried.
  const int MaxRetries = Gov ? Gov->budget().RetryTransient : 0;
  for (int Attempt = 0;; ++Attempt) {
    bool Transient = false;
    SatResult R = SatResult::Unknown;
    if (Gov && Gov->faults().injectSolverTransient(Attempt)) {
      Transient = true;
    } else {
      try {
        R = Backend->checkSat(E);
      } catch (const std::exception &) {
        Transient = true;
      }
    }
    if (!Transient) {
      if (R == SatResult::Unknown && Gov)
        Gov->note(DegradationKind::SolverUnknown, "smt", Origin,
                  std::string(Backend->name()) + " gave up (timeout/steps)");
      return R;
    }
    if (Attempt >= MaxRetries || (Gov && Gov->cancelled())) {
      ++S.TransientFailures;
      if (Gov)
        Gov->note(DegradationKind::SolverTransient, "smt", Origin,
                  "transient backend failure persisted after " +
                      std::to_string(Attempt + 1) + " attempt(s)");
      return SatResult::Unknown;
    }
    ++S.Retries;
    Counters::get().add("solver.retries");
    // Capped exponential backoff: 1, 2, 4, 8, then 16 ms per further retry.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min<long>(1L << std::min(Attempt, 4),
                                                 16L)));
  }
}

const std::vector<uint32_t> &StagedSolver::varsOf(const Expr *E) {
  auto It = VarsMemo.find(E);
  if (It != VarsMemo.end())
    return It->second;
  std::vector<uint32_t> Vars;
  Ctx.collectVars(E, Vars);
  return VarsMemo.emplace(E, std::move(Vars)).first->second;
}

bool StagedSolver::sliceComponents(const Expr *E,
                                   std::vector<const Expr *> &Out) {
  if (E->kind() != ExprKind::And)
    return false;

  // Flatten the nested And spine into distinct conjuncts, left-to-right.
  // Hash-consing makes pointer identity the dedup key.
  std::vector<const Expr *> Conjs;
  std::unordered_set<const Expr *> SeenConj;
  std::vector<const Expr *> Stack{E};
  while (!Stack.empty()) {
    const Expr *Cur = Stack.back();
    Stack.pop_back();
    if (Cur->kind() == ExprKind::And) {
      auto Ops = Cur->operands();
      for (size_t I = Ops.size(); I-- > 0;)
        Stack.push_back(Ops[I]);
    } else if (SeenConj.insert(Cur).second) {
      Conjs.push_back(Cur);
    }
  }
  if (Conjs.size() < 2)
    return false;

  // Union-find over conjunct indices: two conjuncts that mention the same
  // variable must stay in one component (sharing an *atom* implies sharing
  // its variables, so partitioning by varId is the finest sound cut — atoms
  // like x>0 and x<5 are distinct nodes yet must not be separated).
  std::vector<uint32_t> Parent(Conjs.size());
  std::iota(Parent.begin(), Parent.end(), 0u);
  auto find = [&](uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  auto unite = [&](uint32_t A, uint32_t B) { Parent[find(A)] = find(B); };

  std::unordered_map<uint32_t, uint32_t> VarOwner; // varId -> conjunct idx
  for (uint32_t I = 0; I < Conjs.size(); ++I)
    for (uint32_t V : varsOf(Conjs[I])) {
      auto [It, New] = VarOwner.emplace(V, I);
      if (!New)
        unite(I, It->second);
    }

  // Group conjuncts by root, components ordered by their first conjunct's
  // position so the rebuilt exprs are deterministic given E's structure.
  std::unordered_map<uint32_t, size_t> GroupOf;
  std::vector<std::vector<const Expr *>> Groups;
  for (uint32_t I = 0; I < Conjs.size(); ++I) {
    uint32_t Root = find(I);
    auto [It, New] = GroupOf.emplace(Root, Groups.size());
    if (New)
      Groups.emplace_back();
    Groups[It->second].push_back(Conjs[I]);
  }
  if (Groups.size() < 2)
    return false;

  Out.reserve(Groups.size());
  for (const std::vector<const Expr *> &G : Groups)
    Out.push_back(Ctx.mkAndN(G));
  return true;
}

std::unique_ptr<Solver> createDefaultSolver(ExprContext &Ctx,
                                            const SolverConfig &Cfg) {
  if (auto Z3 = createZ3Solver(Ctx, Cfg))
    return Z3;
  return createMiniSolver(Ctx, Cfg);
}

} // namespace pinpoint::smt
