//===- smt/Solver.cpp ------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"
#include "support/ResourceGovernor.h"

namespace pinpoint::smt {

SatResult StagedSolver::checkSat(const Expr *E) {
  ++S.Queries;
  if (E->isTrue())
    return SatResult::Sat;
  if (UseLinearFilter && Linear.isObviouslyUnsat(E)) {
    ++S.LinearUnsat;
    return SatResult::Unsat;
  }
  ++S.BackendQueries;
  if (Gov && Gov->faults().injectSolverUnknown()) {
    ++S.BackendUnknown;
    ++S.InjectedUnknown;
    Gov->note(DegradationKind::InjectedFault, "smt", Origin,
              "forced solver unknown");
    return SatResult::Unknown;
  }
  SatResult R = Backend->checkSat(E);
  if (R == SatResult::Unsat)
    ++S.BackendUnsat;
  if (R == SatResult::Unknown) {
    ++S.BackendUnknown;
    if (Gov)
      Gov->note(DegradationKind::SolverUnknown, "smt", Origin,
                std::string(Backend->name()) + " gave up (timeout/steps)");
  }
  return R;
}

std::unique_ptr<Solver> createDefaultSolver(ExprContext &Ctx,
                                            const SolverConfig &Cfg) {
  if (auto Z3 = createZ3Solver(Ctx, Cfg))
    return Z3;
  return createMiniSolver(Ctx, Cfg);
}

} // namespace pinpoint::smt
