//===- smt/LinearSolver.cpp ------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "smt/LinearSolver.h"

#include <algorithm>

namespace pinpoint::smt {

std::vector<uint32_t> LinearSolver::unionOf(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B) {
  std::vector<uint32_t> Out;
  Out.reserve(A.size() + B.size());
  std::set_union(A.begin(), A.end(), B.begin(), B.end(),
                 std::back_inserter(Out));
  return Out;
}

std::vector<uint32_t>
LinearSolver::intersectOf(const std::vector<uint32_t> &A,
                          const std::vector<uint32_t> &B) {
  std::vector<uint32_t> Out;
  std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                        std::back_inserter(Out));
  return Out;
}

bool LinearSolver::intersects(const std::vector<uint32_t> &A,
                              const std::vector<uint32_t> &B) {
  auto IA = A.begin(), IB = B.begin();
  while (IA != A.end() && IB != B.end()) {
    if (*IA < *IB)
      ++IA;
    else if (*IB < *IA)
      ++IB;
    else
      return true;
  }
  return false;
}

const LinearSolver::PN &LinearSolver::sets(const Expr *E) {
  auto Found = Cache.find(E);
  if (Found != Cache.end())
    return Found->second;

  // Iterative post-order so huge shared DAGs do not overflow the stack.
  std::vector<std::pair<const Expr *, bool>> Stack{{E, false}};
  while (!Stack.empty()) {
    auto [Cur, Visited] = Stack.back();
    Stack.pop_back();
    if (Cache.count(Cur))
      continue;
    if (!Visited) {
      Stack.push_back({Cur, true});
      if (Cur->kind() == ExprKind::Not || Cur->kind() == ExprKind::And ||
          Cur->kind() == ExprKind::Or)
        for (const Expr *Op : Cur->operands())
          if (!Cache.count(Op))
            Stack.push_back({Op, false});
      continue;
    }
    PN Result;
    switch (Cur->kind()) {
    case ExprKind::True:
    case ExprKind::False:
      break; // Both sets empty; True/False are not atoms.
    case ExprKind::Not: {
      const PN &Sub = Cache[Cur->operand(0)];
      Result.P = Sub.N;
      Result.N = Sub.P;
      break;
    }
    case ExprKind::And: {
      const PN &L = Cache[Cur->operand(0)];
      const PN &R = Cache[Cur->operand(1)];
      Result.P = unionOf(L.P, R.P);
      Result.N = unionOf(L.N, R.N);
      break;
    }
    case ExprKind::Or: {
      const PN &L = Cache[Cur->operand(0)];
      const PN &R = Cache[Cur->operand(1)];
      Result.P = intersectOf(L.P, R.P);
      Result.N = intersectOf(L.N, R.N);
      break;
    }
    default:
      // Atoms: boolean variables and comparisons. (Comparisons are treated
      // as opaque atoms; their arithmetic is the SMT backend's job.)
      if (Cur->isAtom())
        Result.P.push_back(Cur->id());
      break;
    }
    Cache.emplace(Cur, std::move(Result));
  }
  return Cache[E];
}

bool LinearSolver::isObviouslyUnsat(const Expr *E) {
  if (E->isFalse())
    return true;
  const PN &S = sets(E);
  return intersects(S.P, S.N);
}

} // namespace pinpoint::smt
