//===- smt/Expr.cpp --------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "smt/Expr.h"

#include <algorithm>

namespace pinpoint::smt {

ExprContext::ExprContext() {
  TrueExpr = intern(ExprKind::True, {}, 0, 0);
  FalseExpr = intern(ExprKind::False, {}, 0, 0);
}

uint64_t ExprContext::hashKey(ExprKind K, std::span<const Expr *const> Ops,
                              uint32_t Var, int64_t Const) const {
  uint64_t H = static_cast<uint64_t>(K) * 0x9e3779b97f4a7c15ULL;
  H ^= (static_cast<uint64_t>(Var) + 1) * 0xbf58476d1ce4e5b9ULL;
  H ^= static_cast<uint64_t>(Const) * 0x94d049bb133111ebULL;
  for (const Expr *Op : Ops)
    H = (H ^ Op->id()) * 0x100000001b3ULL;
  return H;
}

const Expr *ExprContext::intern(ExprKind K, std::span<const Expr *const> Ops,
                                uint32_t Var, int64_t Const) {
  uint64_t H = hashKey(K, Ops, Var, Const);
  // Fold the high bits in so shard selection is not the low bits of the
  // same hash the per-shard table uses.
  InternShard &S = Shards[(H ^ (H >> 32)) % NumInternShards];
  std::lock_guard<std::mutex> L(S.Mu);
  auto &Bucket = S.Table[H];
  for (const Expr *E : Bucket) {
    if (E->Kind != K || E->NumOps != Ops.size())
      continue;
    if ((K == ExprKind::BoolVar || K == ExprKind::IntVar) &&
        E->VarOrConst.Var != Var)
      continue;
    if (K == ExprKind::IntConst && E->VarOrConst.Const != Const)
      continue;
    bool Same = true;
    for (unsigned I = 0; I < Ops.size(); ++I)
      if (E->Ops[I] != Ops[I]) {
        Same = false;
        break;
      }
    if (Same)
      return E;
  }

  const Expr **OpArray = nullptr;
  if (!Ops.empty()) {
    OpArray = static_cast<const Expr **>(
        S.Mem.allocate(sizeof(Expr *) * Ops.size(), alignof(Expr *)));
    std::copy(Ops.begin(), Ops.end(), OpArray);
  }
  // Expr's constructor is private; ExprContext is a friend, so construct
  // in-place rather than through Arena::allocObject. Expr is trivially
  // destructible, so no destructor registration is needed.
  static_assert(std::is_trivially_destructible_v<Expr>);
  void *Raw = S.Mem.allocate(sizeof(Expr), alignof(Expr));
  uint32_t Id = NextId.fetch_add(1, std::memory_order_relaxed);
  Expr *E = new (Raw) Expr(K, Id, OpArray, static_cast<uint8_t>(Ops.size()));
#ifndef NDEBUG
  // Interning invariant: operands are fully constructed (and therefore
  // numbered) before their parent — ids are topological even when shards
  // interleave allocations.
  for (const Expr *Op : Ops)
    assert(Op->id() < Id && "operand interned after its parent");
#endif
  if (K == ExprKind::BoolVar || K == ExprKind::IntVar)
    E->VarOrConst.Var = Var;
  else if (K == ExprKind::IntConst)
    E->VarOrConst.Const = Const;
  Bucket.push_back(E);
  return E;
}

size_t ExprContext::bytesUsed() const {
  size_t N = 0;
  for (const InternShard &S : Shards) {
    std::lock_guard<std::mutex> L(S.Mu);
    N += S.Mem.bytesUsed();
  }
  return N;
}

ExprContext::InternStats ExprContext::internStats() const {
  InternStats St;
  St.Nodes = numNodes();
  for (const InternShard &S : Shards) {
    std::lock_guard<std::mutex> L(S.Mu);
    St.TableSlots += S.Table.size();
    for (const auto &[Key, Chain] : S.Table)
      St.MaxChain = std::max(St.MaxChain, Chain.size());
    St.ArenaBytes += S.Mem.bytesUsed();
  }
  return St;
}

const Expr *ExprContext::freshBoolVar(std::string Name) {
  uint32_t Id;
  {
    std::lock_guard<std::mutex> L(VarMu);
    Id = static_cast<uint32_t>(VarNames.size());
    VarNames.push_back(std::move(Name));
    VarIsBool.push_back(true);
  }
  return intern(ExprKind::BoolVar, {}, Id, 0);
}

const Expr *ExprContext::freshIntVar(std::string Name) {
  uint32_t Id;
  {
    std::lock_guard<std::mutex> L(VarMu);
    Id = static_cast<uint32_t>(VarNames.size());
    VarNames.push_back(std::move(Name));
    VarIsBool.push_back(false);
  }
  return intern(ExprKind::IntVar, {}, Id, 0);
}

const Expr *ExprContext::getInt(int64_t V) {
  {
    std::lock_guard<std::mutex> L(ConstMu);
    auto It = IntConsts.find(V);
    if (It != IntConsts.end())
      return It->second;
  }
  // Interning dedups, so a racing insert of the same constant is benign:
  // both threads get the same node; the memo keeps whichever wins.
  const Expr *E = intern(ExprKind::IntConst, {}, 0, V);
  std::lock_guard<std::mutex> L(ConstMu);
  IntConsts.emplace(V, E);
  return E;
}

const Expr *ExprContext::mkNot(const Expr *A) {
  assert(A->isBool() && "mkNot on non-boolean");
  if (A->isTrue())
    return FalseExpr;
  if (A->isFalse())
    return TrueExpr;
  if (A->kind() == ExprKind::Not)
    return A->operand(0);
  const Expr *Ops[1] = {A};
  return intern(ExprKind::Not, Ops, 0, 0);
}

const Expr *ExprContext::mkAnd(const Expr *A, const Expr *B) {
  assert(A->isBool() && B->isBool() && "mkAnd on non-boolean");
  if (A->isFalse() || B->isFalse())
    return FalseExpr;
  if (A->isTrue())
    return B;
  if (B->isTrue())
    return A;
  if (A == B)
    return A;
  // x ∧ ¬x and ¬x ∧ x fold to false immediately.
  if ((A->kind() == ExprKind::Not && A->operand(0) == B) ||
      (B->kind() == ExprKind::Not && B->operand(0) == A))
    return FalseExpr;
  if (A->id() > B->id())
    std::swap(A, B);
  const Expr *Ops[2] = {A, B};
  return intern(ExprKind::And, Ops, 0, 0);
}

const Expr *ExprContext::mkOr(const Expr *A, const Expr *B) {
  assert(A->isBool() && B->isBool() && "mkOr on non-boolean");
  if (A->isTrue() || B->isTrue())
    return TrueExpr;
  if (A->isFalse())
    return B;
  if (B->isFalse())
    return A;
  if (A == B)
    return A;
  if ((A->kind() == ExprKind::Not && A->operand(0) == B) ||
      (B->kind() == ExprKind::Not && B->operand(0) == A))
    return TrueExpr;
  if (A->id() > B->id())
    std::swap(A, B);
  const Expr *Ops[2] = {A, B};
  return intern(ExprKind::Or, Ops, 0, 0);
}

const Expr *ExprContext::mkAndN(std::span<const Expr *const> Es) {
  const Expr *Acc = TrueExpr;
  for (const Expr *E : Es)
    Acc = mkAnd(Acc, E);
  return Acc;
}

const Expr *ExprContext::mkOrN(std::span<const Expr *const> Es) {
  const Expr *Acc = FalseExpr;
  for (const Expr *E : Es)
    Acc = mkOr(Acc, E);
  return Acc;
}

const Expr *ExprContext::mkCmp(ExprKind K, const Expr *A, const Expr *B) {
  assert(K >= ExprKind::Eq && K <= ExprKind::Ge && "not a comparison");
  assert(!A->isBool() && !B->isBool() && "comparison on boolean operands");
  // Constant fold.
  if (A->kind() == ExprKind::IntConst && B->kind() == ExprKind::IntConst) {
    int64_t X = A->constValue(), Y = B->constValue();
    switch (K) {
    case ExprKind::Eq:
      return getBool(X == Y);
    case ExprKind::Ne:
      return getBool(X != Y);
    case ExprKind::Lt:
      return getBool(X < Y);
    case ExprKind::Le:
      return getBool(X <= Y);
    case ExprKind::Gt:
      return getBool(X > Y);
    default:
      return getBool(X >= Y);
    }
  }
  if (A == B) {
    switch (K) {
    case ExprKind::Eq:
    case ExprKind::Le:
    case ExprKind::Ge:
      return TrueExpr;
    case ExprKind::Ne:
    case ExprKind::Lt:
    case ExprKind::Gt:
      return FalseExpr;
    default:
      break;
    }
  }
  // Canonicalise symmetric comparisons by operand id.
  if ((K == ExprKind::Eq || K == ExprKind::Ne) && A->id() > B->id())
    std::swap(A, B);
  const Expr *Ops[2] = {A, B};
  return intern(K, Ops, 0, 0);
}

const Expr *ExprContext::mkArith(ExprKind K, const Expr *A, const Expr *B) {
  assert(K >= ExprKind::Add && K <= ExprKind::Mul && "not an arith op");
  assert(!A->isBool() && !B->isBool() && "arith on boolean operands");
  if (A->kind() == ExprKind::IntConst && B->kind() == ExprKind::IntConst) {
    int64_t X = A->constValue(), Y = B->constValue();
    switch (K) {
    case ExprKind::Add:
      return getInt(X + Y);
    case ExprKind::Sub:
      return getInt(X - Y);
    default:
      return getInt(X * Y);
    }
  }
  if ((K == ExprKind::Add || K == ExprKind::Mul) && A->id() > B->id())
    std::swap(A, B);
  const Expr *Ops[2] = {A, B};
  return intern(K, Ops, 0, 0);
}

const Expr *ExprContext::mkNeg(const Expr *A) {
  assert(!A->isBool() && "mkNeg on boolean");
  if (A->kind() == ExprKind::IntConst)
    return getInt(-A->constValue());
  if (A->kind() == ExprKind::Neg)
    return A->operand(0);
  const Expr *Ops[1] = {A};
  return intern(ExprKind::Neg, Ops, 0, 0);
}

const Expr *ExprContext::mkIte(const Expr *Cond, const Expr *Then,
                               const Expr *Else) {
  assert(Cond->isBool() && !Then->isBool() && !Else->isBool());
  if (Cond->isTrue())
    return Then;
  if (Cond->isFalse())
    return Else;
  if (Then == Else)
    return Then;
  const Expr *Ops[3] = {Cond, Then, Else};
  return intern(ExprKind::Ite, Ops, 0, 0);
}

const Expr *ExprContext::substitute(
    const Expr *E, const std::unordered_map<uint32_t, const Expr *> &Map) {
  std::unordered_map<const Expr *, const Expr *> Memo;
  // Iterative post-order over the DAG to avoid deep recursion.
  std::vector<std::pair<const Expr *, bool>> Stack{{E, false}};
  while (!Stack.empty()) {
    auto [Cur, Visited] = Stack.back();
    Stack.pop_back();
    if (Memo.count(Cur))
      continue;
    if (!Visited) {
      Stack.push_back({Cur, true});
      for (const Expr *Op : Cur->operands())
        if (!Memo.count(Op))
          Stack.push_back({Op, false});
      continue;
    }
    const Expr *New = Cur;
    switch (Cur->kind()) {
    case ExprKind::BoolVar:
    case ExprKind::IntVar: {
      auto It = Map.find(Cur->varId());
      if (It != Map.end())
        New = It->second;
      break;
    }
    case ExprKind::Not:
      New = mkNot(Memo[Cur->operand(0)]);
      break;
    case ExprKind::And:
      New = mkAnd(Memo[Cur->operand(0)], Memo[Cur->operand(1)]);
      break;
    case ExprKind::Or:
      New = mkOr(Memo[Cur->operand(0)], Memo[Cur->operand(1)]);
      break;
    case ExprKind::Eq:
    case ExprKind::Ne:
    case ExprKind::Lt:
    case ExprKind::Le:
    case ExprKind::Gt:
    case ExprKind::Ge:
      New = mkCmp(Cur->kind(), Memo[Cur->operand(0)], Memo[Cur->operand(1)]);
      break;
    case ExprKind::Add:
    case ExprKind::Sub:
    case ExprKind::Mul:
      New = mkArith(Cur->kind(), Memo[Cur->operand(0)], Memo[Cur->operand(1)]);
      break;
    case ExprKind::Neg:
      New = mkNeg(Memo[Cur->operand(0)]);
      break;
    case ExprKind::Ite:
      New = mkIte(toBoolExpr(Memo[Cur->operand(0)]),
                  toIntExpr(Memo[Cur->operand(1)]),
                  toIntExpr(Memo[Cur->operand(2)]));
      break;
    default:
      break; // True/False/IntConst are fixed points.
    }
    Memo[Cur] = New;
  }
  return Memo[E];
}

void ExprContext::collectVars(const Expr *E,
                              std::vector<uint32_t> &Out) const {
  std::vector<const Expr *> Stack{E};
  std::unordered_map<const Expr *, bool> Seen;
  while (!Stack.empty()) {
    const Expr *Cur = Stack.back();
    Stack.pop_back();
    if (Seen[Cur])
      continue;
    Seen[Cur] = true;
    if (Cur->kind() == ExprKind::BoolVar || Cur->kind() == ExprKind::IntVar)
      Out.push_back(Cur->varId());
    for (const Expr *Op : Cur->operands())
      Stack.push_back(Op);
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
}

std::string ExprContext::toString(const Expr *E) const {
  switch (E->kind()) {
  case ExprKind::True:
    return "true";
  case ExprKind::False:
    return "false";
  case ExprKind::BoolVar:
  case ExprKind::IntVar:
    return varName(E->varId());
  case ExprKind::IntConst:
    return std::to_string(E->constValue());
  case ExprKind::Not:
    return "!" + toString(E->operand(0));
  case ExprKind::Neg:
    return "-" + toString(E->operand(0));
  case ExprKind::Ite:
    return "ite(" + toString(E->operand(0)) + ", " +
           toString(E->operand(1)) + ", " + toString(E->operand(2)) + ")";
  default:
    break;
  }
  const char *Op = "?";
  switch (E->kind()) {
  case ExprKind::And:
    Op = " & ";
    break;
  case ExprKind::Or:
    Op = " | ";
    break;
  case ExprKind::Eq:
    Op = " == ";
    break;
  case ExprKind::Ne:
    Op = " != ";
    break;
  case ExprKind::Lt:
    Op = " < ";
    break;
  case ExprKind::Le:
    Op = " <= ";
    break;
  case ExprKind::Gt:
    Op = " > ";
    break;
  case ExprKind::Ge:
    Op = " >= ";
    break;
  case ExprKind::Add:
    Op = " + ";
    break;
  case ExprKind::Sub:
    Op = " - ";
    break;
  case ExprKind::Mul:
    Op = " * ";
    break;
  default:
    break;
  }
  return "(" + toString(E->operand(0)) + Op + toString(E->operand(1)) + ")";
}

} // namespace pinpoint::smt
