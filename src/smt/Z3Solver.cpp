//===- smt/Z3Solver.cpp - Z3 backend ---------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates the interned Expr DAG into Z3 ASTs (via the C API) and asks Z3
/// for satisfiability — the same backend the paper's implementation uses.
/// Translation is memoised per node so shared subformulas are translated
/// once.
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#if PINPOINT_HAS_Z3

#include <string>
#include <unordered_map>
#include <vector>
#include <z3.h>

namespace pinpoint::smt {
namespace {

class Z3Solver : public Solver {
public:
  Z3Solver(ExprContext &Ctx, const SolverConfig &SC) : Ctx(Ctx) {
    Z3_config Cfg = Z3_mk_config();
    // Per-query timeout in ms; 0 would mean "no limit", so clamp to 1.
    std::string Timeout = std::to_string(SC.TimeoutMs > 0 ? SC.TimeoutMs : 1);
    Z3_set_param_value(Cfg, "timeout", Timeout.c_str());
    Z = Z3_mk_context(Cfg);
    Z3_del_config(Cfg);
    IntSort = Z3_mk_int_sort(Z);
    BoolSort = Z3_mk_bool_sort(Z);
  }

  ~Z3Solver() override { Z3_del_context(Z); }

  SatResult checkSat(const Expr *E) override {
    Z3_solver S = Z3_mk_solver(Z);
    Z3_solver_inc_ref(Z, S);
    Z3_solver_assert(Z, S, translate(E));
    Z3_lbool R = Z3_solver_check(Z, S);
    Z3_solver_dec_ref(Z, S);
    if (R == Z3_L_TRUE)
      return SatResult::Sat;
    if (R == Z3_L_FALSE)
      return SatResult::Unsat;
    return SatResult::Unknown;
  }

  const char *name() const override { return "z3"; }

private:
  Z3_ast var(uint32_t VarId) {
    auto It = Vars.find(VarId);
    if (It != Vars.end())
      return It->second;
    // The variable's identity is its varId, not its display name — two
    // fresh variables may share a name (e.g. per-function locals), and a
    // name-keyed Z3 constant would soundlessly conflate them. Suffix the
    // id so distinct Expr variables stay distinct in Z3.
    std::string Sym_ = Ctx.varName(VarId) + "#" + std::to_string(VarId);
    Z3_symbol Sym = Z3_mk_string_symbol(Z, Sym_.c_str());
    Z3_ast A = Z3_mk_const(Z, Sym, Ctx.varIsBool(VarId) ? BoolSort : IntSort);
    Vars.emplace(VarId, A);
    return A;
  }

  Z3_ast translate(const Expr *E) {
    auto It = Memo.find(E);
    if (It != Memo.end())
      return It->second;

    // Iterative post-order; condition DAGs can be deep.
    std::vector<std::pair<const Expr *, bool>> Stack{{E, false}};
    while (!Stack.empty()) {
      auto [Cur, Visited] = Stack.back();
      Stack.pop_back();
      if (Memo.count(Cur))
        continue;
      if (!Visited) {
        Stack.push_back({Cur, true});
        for (const Expr *Op : Cur->operands())
          if (!Memo.count(Op))
            Stack.push_back({Op, false});
        continue;
      }
      Memo[Cur] = translateNode(Cur);
    }
    return Memo[E];
  }

  Z3_ast translateNode(const Expr *E) {
    auto Op = [&](unsigned I) { return Memo[E->operand(I)]; };
    switch (E->kind()) {
    case ExprKind::True:
      return Z3_mk_true(Z);
    case ExprKind::False:
      return Z3_mk_false(Z);
    case ExprKind::BoolVar:
    case ExprKind::IntVar:
      return var(E->varId());
    case ExprKind::IntConst:
      return Z3_mk_int64(Z, E->constValue(), IntSort);
    case ExprKind::Not:
      return Z3_mk_not(Z, Op(0));
    case ExprKind::And: {
      Z3_ast Args[2] = {Op(0), Op(1)};
      return Z3_mk_and(Z, 2, Args);
    }
    case ExprKind::Or: {
      Z3_ast Args[2] = {Op(0), Op(1)};
      return Z3_mk_or(Z, 2, Args);
    }
    case ExprKind::Eq:
      return Z3_mk_eq(Z, Op(0), Op(1));
    case ExprKind::Ne:
      return Z3_mk_not(Z, Z3_mk_eq(Z, Op(0), Op(1)));
    case ExprKind::Lt:
      return Z3_mk_lt(Z, Op(0), Op(1));
    case ExprKind::Le:
      return Z3_mk_le(Z, Op(0), Op(1));
    case ExprKind::Gt:
      return Z3_mk_gt(Z, Op(0), Op(1));
    case ExprKind::Ge:
      return Z3_mk_ge(Z, Op(0), Op(1));
    case ExprKind::Add: {
      Z3_ast Args[2] = {Op(0), Op(1)};
      return Z3_mk_add(Z, 2, Args);
    }
    case ExprKind::Sub: {
      Z3_ast Args[2] = {Op(0), Op(1)};
      return Z3_mk_sub(Z, 2, Args);
    }
    case ExprKind::Mul: {
      Z3_ast Args[2] = {Op(0), Op(1)};
      return Z3_mk_mul(Z, 2, Args);
    }
    case ExprKind::Neg:
      return Z3_mk_unary_minus(Z, Op(0));
    case ExprKind::Ite:
      return Z3_mk_ite(Z, Op(0), Op(1), Op(2));
    }
    return Z3_mk_true(Z); // Unreachable; all kinds covered.
  }

  ExprContext &Ctx;
  Z3_context Z;
  Z3_sort IntSort, BoolSort;
  std::unordered_map<uint32_t, Z3_ast> Vars;
  std::unordered_map<const Expr *, Z3_ast> Memo;
};

} // namespace

std::unique_ptr<Solver> createZ3Solver(ExprContext &Ctx,
                                       const SolverConfig &Cfg) {
  return std::make_unique<Z3Solver>(Ctx, Cfg);
}

} // namespace pinpoint::smt

#else // !PINPOINT_HAS_Z3

namespace pinpoint::smt {
std::unique_ptr<Solver> createZ3Solver(ExprContext &, const SolverConfig &) {
  return nullptr;
}
} // namespace pinpoint::smt

#endif
