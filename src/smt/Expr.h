//===- smt/Expr.h - Hash-consed symbolic expression DAG ------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic expression DAG underlying every condition in the system:
/// SEG edge labels, gated-SSA gates, control dependences, path conditions and
/// function summaries are all `Expr` nodes interned in an `ExprContext`.
///
/// Hash-consing gives the "compact encoding" property the paper claims for
/// the SEG (Section 3.2, feature 1): a condition shared by many edges is one
/// node, and the linear-time solver of Section 3.1.1 memoises its atom sets
/// per node.
///
/// One `ExprContext` is shared by every task of a `--jobs N` run. Interning
/// is sharded: the node hash selects one of a fixed set of buckets, each
/// with its own mutex and arena, so concurrent `mk*` calls on unrelated
/// conditions rarely contend while hash-consing stays global (a condition
/// built by two workers is still one node). Node ids come from one atomic
/// counter — ids are *allocation-order* dependent and therefore not stable
/// across job counts; nothing downstream may key semantic decisions on the
/// numeric id (canonicalisation uses ids only to pick one of two orders of
/// the same pointer pair, which is per-pair deterministic).
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SMT_EXPR_H
#define PINPOINT_SMT_EXPR_H

#include "support/Arena.h"

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace pinpoint::smt {

/// Kinds of expression nodes. Boolean-typed: True..Ge (comparisons produce
/// bool); integer-typed: IntConst..Neg.
enum class ExprKind : uint8_t {
  // Boolean leaves / connectives.
  True,
  False,
  BoolVar,
  Not,
  And,
  Or,
  // Comparisons (boolean-typed, integer operands).
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  // Integer-typed.
  IntConst,
  IntVar,
  Add,
  Sub,
  Mul,
  Neg,
  Ite, ///< if-then-else over integers (bool cond, int, int).
};

/// An immutable, interned expression node. Create via ExprContext only.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  uint32_t id() const { return Id; }

  bool isBool() const {
    return Kind <= ExprKind::Ge; // True..Ge are boolean-typed.
  }

  /// For BoolVar / IntVar: the variable id (namespaced per context).
  uint32_t varId() const {
    assert(Kind == ExprKind::BoolVar || Kind == ExprKind::IntVar);
    return VarOrConst.Var;
  }

  /// For IntConst: the value.
  int64_t constValue() const {
    assert(Kind == ExprKind::IntConst);
    return VarOrConst.Const;
  }

  std::span<const Expr *const> operands() const { return {Ops, NumOps}; }
  const Expr *operand(unsigned I) const {
    assert(I < NumOps);
    return Ops[I];
  }
  unsigned numOperands() const { return NumOps; }

  /// An atom is a boolean-typed node that is not a logical connective:
  /// BoolVar, True/False are not counted, comparisons are. This matches the
  /// paper's definition "a bool-type expression without logic operators".
  bool isAtom() const {
    return Kind == ExprKind::BoolVar ||
           (Kind >= ExprKind::Eq && Kind <= ExprKind::Ge);
  }

  bool isTrue() const { return Kind == ExprKind::True; }
  bool isFalse() const { return Kind == ExprKind::False; }

private:
  friend class ExprContext;
  Expr(ExprKind K, uint32_t Id, const Expr *const *Ops, uint8_t NumOps)
      : Kind(K), NumOps(NumOps), Id(Id), Ops(Ops) {
    VarOrConst.Const = 0;
  }

  ExprKind Kind;
  uint8_t NumOps = 0;
  uint32_t Id;
  union {
    uint32_t Var;
    int64_t Const;
  } VarOrConst;
  const Expr *const *Ops = nullptr;
};

/// Owning context: sharded arenas + interning tables and a variable
/// registry. All Expr pointers remain valid for the lifetime of the
/// context. Thread-safe (see the file comment for the sharding scheme).
class ExprContext {
public:
  ExprContext();
  ExprContext(const ExprContext &) = delete;
  ExprContext &operator=(const ExprContext &) = delete;

  //===--------------------------------------------------------------------===
  // Variables
  //===--------------------------------------------------------------------===

  /// Creates a fresh boolean variable and returns its node.
  const Expr *freshBoolVar(std::string Name);
  /// Creates a fresh integer variable and returns its node.
  const Expr *freshIntVar(std::string Name);
  /// Name of a variable (for printing / Z3 symbols). The returned reference
  /// is stable (deque-backed) and the string is immutable once registered.
  const std::string &varName(uint32_t VarId) const {
    std::lock_guard<std::mutex> L(VarMu);
    return VarNames[VarId];
  }
  bool varIsBool(uint32_t VarId) const {
    std::lock_guard<std::mutex> L(VarMu);
    return VarIsBool[VarId];
  }
  uint32_t numVars() const {
    std::lock_guard<std::mutex> L(VarMu);
    return static_cast<uint32_t>(VarNames.size());
  }

  //===--------------------------------------------------------------------===
  // Constructors (with local simplification + interning)
  //===--------------------------------------------------------------------===

  const Expr *getTrue() const { return TrueExpr; }
  const Expr *getFalse() const { return FalseExpr; }
  const Expr *getBool(bool B) const { return B ? TrueExpr : FalseExpr; }
  const Expr *getInt(int64_t V);

  const Expr *mkNot(const Expr *A);
  const Expr *mkAnd(const Expr *A, const Expr *B);
  const Expr *mkOr(const Expr *A, const Expr *B);
  const Expr *mkAndN(std::span<const Expr *const> Es);
  const Expr *mkOrN(std::span<const Expr *const> Es);
  const Expr *mkImplies(const Expr *A, const Expr *B) {
    return mkOr(mkNot(A), B);
  }

  const Expr *mkCmp(ExprKind K, const Expr *A, const Expr *B);
  const Expr *mkEq(const Expr *A, const Expr *B) {
    return mkCmp(ExprKind::Eq, A, B);
  }
  const Expr *mkNe(const Expr *A, const Expr *B) {
    return mkCmp(ExprKind::Ne, A, B);
  }

  const Expr *mkArith(ExprKind K, const Expr *A, const Expr *B);
  const Expr *mkNeg(const Expr *A);
  /// if-then-else over integers; also the sound bool→int coercion
  /// (mkIte(b, 1, 0)).
  const Expr *mkIte(const Expr *Cond, const Expr *Then, const Expr *Else);
  /// Coerces a boolean expression to the integer 0/1 domain; identity on
  /// integer expressions.
  const Expr *toIntExpr(const Expr *E) {
    return E->isBool() ? mkIte(E, getInt(1), getInt(0)) : E;
  }
  /// Coerces an integer expression to a boolean (e != 0); identity on
  /// boolean expressions.
  const Expr *toBoolExpr(const Expr *E) {
    return E->isBool() ? E : mkNe(E, getInt(0));
  }

  //===--------------------------------------------------------------------===
  // Substitution / cloning
  //===--------------------------------------------------------------------===

  /// Rewrites \p E, replacing each variable id present in \p Map with the
  /// mapped expression. Memoised per call.
  const Expr *substitute(const Expr *E,
                         const std::unordered_map<uint32_t, const Expr *> &Map);

  /// Collects the distinct variable ids occurring in \p E.
  void collectVars(const Expr *E, std::vector<uint32_t> &Out) const;

  /// Renders \p E as a string (tests & debugging).
  std::string toString(const Expr *E) const;

  size_t numNodes() const { return NextId.load(std::memory_order_relaxed); }
  size_t bytesUsed() const;

  /// Intern-table observability (--stats): how full the hash-consing
  /// tables are and what the nodes cost. Taken under the shard locks, so
  /// the snapshot is consistent per shard (cheap: 64 small tables).
  struct InternStats {
    size_t Nodes = 0;      ///< Interned expression nodes.
    size_t TableSlots = 0; ///< Occupied hash keys across all shards.
    size_t MaxChain = 0;   ///< Longest same-hash collision chain.
    size_t ArenaBytes = 0; ///< Arena memory backing the nodes.
  };
  InternStats internStats() const;

private:
  const Expr *intern(ExprKind K, std::span<const Expr *const> Ops,
                     uint32_t Var, int64_t Const);
  uint64_t hashKey(ExprKind K, std::span<const Expr *const> Ops, uint32_t Var,
                   int64_t Const) const;

  /// One interning bucket: the table and the arena its nodes live in. Each
  /// node is created and deduplicated entirely under its shard's lock.
  struct InternShard {
    mutable std::mutex Mu;
    std::unordered_map<uint64_t, std::vector<const Expr *>> Table;
    Arena Mem;
  };
  static constexpr size_t NumInternShards = 64;

  std::array<InternShard, NumInternShards> Shards;
  std::atomic<uint32_t> NextId{0};
  mutable std::mutex VarMu; ///< Guards VarNames/VarIsBool.
  std::deque<std::string> VarNames; ///< Deque: stable refs under growth.
  std::deque<bool> VarIsBool;
  std::mutex ConstMu; ///< Guards IntConsts.
  std::unordered_map<int64_t, const Expr *> IntConsts;
  const Expr *TrueExpr;
  const Expr *FalseExpr;
};

} // namespace pinpoint::smt

#endif // PINPOINT_SMT_EXPR_H
