//===- frontend/Parser.h - MiniC parser / IR builder ----------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for MiniC, the concrete syntax of the paper's Section 3
/// call-by-value language, lowering directly to the CFG IR:
///
/// \code
///   module   := function*
///   function := type IDENT '(' (type IDENT (',' type IDENT)*)? ')' block
///   type     := 'int' '*'* | 'bool' | 'void'
///   block    := '{' stmt* '}'
///   stmt     := block
///             | type IDENT ('=' expr)? ';'
///             | 'if' '(' expr ')' stmt ('else' stmt)?
///             | 'while' '(' expr ')' stmt
///             | 'return' expr? ';'
///             | IDENT '=' expr ';'
///             | '*'+ IDENT '=' expr ';'
///             | expr ';'
///   expr     := the usual || / && / comparison / additive / multiplicative
///               precedence over: NUMBER, 'null', 'true', 'false', IDENT,
///               IDENT '(' args ')', '*'+ IDENT (load), unary -/!, parens
/// \endcode
///
/// Lowering decisions that mirror the paper's soundiness choices (§4.2):
///  * `while` is unrolled once (the body executes at most one iteration), so
///    every CFG is acyclic;
///  * every function is lowered through a unified exit block with a single
///    `return` statement (the paper's one-return assumption);
///  * `&&`/`||` are strict boolean operators (no short-circuit CFG) — path
///    conditions see them as the boolean connectives they are;
///  * there is no address-of: pointers originate from `malloc()` and
///    parameters, exactly as in the paper's language.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_FRONTEND_PARSER_H
#define PINPOINT_FRONTEND_PARSER_H

#include "ir/IR.h"
#include "support/SourceLoc.h"

#include <string>
#include <string_view>
#include <vector>

namespace pinpoint::frontend {

struct Diag {
  SourceLoc Loc;
  std::string Msg;

  std::string str() const { return Loc.str() + ": " + Msg; }
};

/// Parses \p Source into \p M. Returns true on success (no diagnostics).
/// On failure, \p Diags describes the problems; the module may be partially
/// populated.
bool parseModule(std::string_view Source, ir::Module &M,
                 std::vector<Diag> &Diags);

} // namespace pinpoint::frontend

#endif // PINPOINT_FRONTEND_PARSER_H
