//===- frontend/Lexer.h - MiniC lexer --------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokeniser for MiniC, the concrete syntax of the paper's Section 3
/// language (see docs in frontend/Parser.h). Supports //- and /*-comments
/// and tracks line/column for bug-report ground-truth matching.
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_FRONTEND_LEXER_H
#define PINPOINT_FRONTEND_LEXER_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace pinpoint::frontend {

enum class TokKind : uint8_t {
  Eof,
  Ident,
  Number,
  // Keywords.
  KwInt,
  KwBool,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwNull,
  KwTrue,
  KwFalse,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Semi,
  Assign,   // =
  Star,     // *
  Plus,
  Minus,
  Bang,     // !
  AmpAmp,   // &&
  PipePipe, // ||
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
  Error,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string_view Text;
  int64_t Number = 0;
  SourceLoc Loc;

  bool is(TokKind K) const { return Kind == K; }
};

/// A one-token-lookahead lexer over an in-memory buffer.
class Lexer {
public:
  explicit Lexer(std::string_view Source);

  const Token &peek() const { return Cur; }
  Token next() {
    Token T = Cur;
    advance();
    return T;
  }

private:
  void advance();
  void skipTrivia();

  std::string_view Src;
  size_t Pos = 0;
  uint32_t Line = 1, Col = 1;
  Token Cur;
};

} // namespace pinpoint::frontend

#endif // PINPOINT_FRONTEND_LEXER_H
