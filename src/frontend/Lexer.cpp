//===- frontend/Lexer.cpp ----------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <unordered_map>

namespace pinpoint::frontend {

Lexer::Lexer(std::string_view Source) : Src(Source) { advance(); }

void Lexer::skipTrivia() {
  while (Pos < Src.size()) {
    char C = Src[Pos];
    if (C == '\n') {
      ++Line;
      Col = 1;
      ++Pos;
    } else if (C == ' ' || C == '\t' || C == '\r') {
      ++Col;
      ++Pos;
    } else if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
      while (Pos < Src.size() && Src[Pos] != '\n')
        ++Pos;
    } else if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '*') {
      Pos += 2;
      Col += 2;
      while (Pos + 1 < Src.size() &&
             !(Src[Pos] == '*' && Src[Pos + 1] == '/')) {
        if (Src[Pos] == '\n') {
          ++Line;
          Col = 1;
        } else {
          ++Col;
        }
        ++Pos;
      }
      Pos = Pos + 2 <= Src.size() ? Pos + 2 : Src.size();
      Col += 2;
    } else {
      break;
    }
  }
}

void Lexer::advance() {
  skipTrivia();
  Cur = Token{};
  Cur.Loc = {Line, Col};
  if (Pos >= Src.size()) {
    Cur.Kind = TokKind::Eof;
    return;
  }

  char C = Src[Pos];
  auto single = [&](TokKind K) {
    Cur.Kind = K;
    Cur.Text = Src.substr(Pos, 1);
    ++Pos;
    ++Col;
  };
  auto twoChar = [&](TokKind K) {
    Cur.Kind = K;
    Cur.Text = Src.substr(Pos, 2);
    Pos += 2;
    Col += 2;
  };

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    size_t Start = Pos;
    while (Pos < Src.size() &&
           (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
            Src[Pos] == '_')) {
      ++Pos;
      ++Col;
    }
    Cur.Text = Src.substr(Start, Pos - Start);
    static const std::unordered_map<std::string_view, TokKind> Keywords = {
        {"int", TokKind::KwInt},       {"bool", TokKind::KwBool},
        {"void", TokKind::KwVoid},     {"if", TokKind::KwIf},
        {"else", TokKind::KwElse},     {"while", TokKind::KwWhile},
        {"return", TokKind::KwReturn}, {"null", TokKind::KwNull},
        {"true", TokKind::KwTrue},     {"false", TokKind::KwFalse},
    };
    auto It = Keywords.find(Cur.Text);
    Cur.Kind = It == Keywords.end() ? TokKind::Ident : It->second;
    return;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    size_t Start = Pos;
    int64_t Val = 0;
    while (Pos < Src.size() &&
           std::isdigit(static_cast<unsigned char>(Src[Pos]))) {
      Val = Val * 10 + (Src[Pos] - '0');
      ++Pos;
      ++Col;
    }
    Cur.Kind = TokKind::Number;
    Cur.Text = Src.substr(Start, Pos - Start);
    Cur.Number = Val;
    return;
  }

  char C1 = Pos + 1 < Src.size() ? Src[Pos + 1] : '\0';
  switch (C) {
  case '(':
    return single(TokKind::LParen);
  case ')':
    return single(TokKind::RParen);
  case '{':
    return single(TokKind::LBrace);
  case '}':
    return single(TokKind::RBrace);
  case ',':
    return single(TokKind::Comma);
  case ';':
    return single(TokKind::Semi);
  case '*':
    return single(TokKind::Star);
  case '+':
    return single(TokKind::Plus);
  case '-':
    return single(TokKind::Minus);
  case '=':
    return C1 == '=' ? twoChar(TokKind::EqEq) : single(TokKind::Assign);
  case '!':
    return C1 == '=' ? twoChar(TokKind::NotEq) : single(TokKind::Bang);
  case '<':
    return C1 == '=' ? twoChar(TokKind::Le) : single(TokKind::Lt);
  case '>':
    return C1 == '=' ? twoChar(TokKind::Ge) : single(TokKind::Gt);
  case '&':
    if (C1 == '&')
      return twoChar(TokKind::AmpAmp);
    break;
  case '|':
    if (C1 == '|')
      return twoChar(TokKind::PipePipe);
    break;
  default:
    break;
  }
  single(TokKind::Error);
}

} // namespace pinpoint::frontend
