//===- frontend/Parser.cpp ---------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "frontend/Lexer.h"

#include <map>
#include <optional>

using namespace pinpoint::ir;

namespace pinpoint::frontend {

namespace {

struct FnSig {
  Type RetTy = Type::voidTy();
  std::vector<Type> ParamTys;
};

/// A typed value during lowering.
struct TypedValue {
  Value *V = nullptr;
  Type Ty = Type::intTy();
  bool valid() const { return V != nullptr; }
};

class Parser {
public:
  Parser(std::string_view Source, Module &M, std::vector<Diag> &Diags)
      : Source(Source), Lex(Source), M(M), Diags(Diags) {}

  bool run() {
    collectSignatures();
    while (!Lex.peek().is(TokKind::Eof)) {
      if (!parseFunction())
        return false;
    }
    return Diags.empty();
  }

private:
  //===--- Diagnostics & token helpers -------------------------------------===

  void error(SourceLoc Loc, const std::string &Msg) {
    Diags.push_back({Loc, Msg});
  }

  /// Recursion-depth cap for the mutually recursive expression/statement
  /// grammar: hostile or generated inputs with thousands of nested parens,
  /// unary operators or blocks must produce a diagnostic, never overflow
  /// the stack. The cap bounds *grammar* nesting, far above anything a
  /// legitimate MiniC source reaches.
  static constexpr int MaxNestingDepth = 256;

  struct DepthGuard {
    Parser &P;
    bool Ok;
    DepthGuard(Parser &P, SourceLoc Loc)
        : P(P), Ok(++P.NestingDepth <= MaxNestingDepth) {
      if (!Ok)
        P.error(Loc, "nesting too deep (max " +
                         std::to_string(MaxNestingDepth) + " levels)");
    }
    ~DepthGuard() { --P.NestingDepth; }
  };

  bool expect(TokKind K, const char *What) {
    if (Lex.peek().is(K)) {
      Lex.next();
      return true;
    }
    error(Lex.peek().Loc, std::string("expected ") + What + ", got '" +
                              std::string(Lex.peek().Text) + "'");
    return false;
  }

  bool accept(TokKind K) {
    if (Lex.peek().is(K)) {
      Lex.next();
      return true;
    }
    return false;
  }

  //===--- Signature prepass ----------------------------------------------===

  void collectSignatures() {
    Lexer Pre(Source);
    while (!Pre.peek().is(TokKind::Eof)) {
      // type IDENT ( params ) {
      std::optional<Type> Ty = scanType(Pre);
      if (!Ty || !Pre.peek().is(TokKind::Ident)) {
        Pre.next();
        continue;
      }
      std::string Name(Pre.next().Text);
      if (!Pre.peek().is(TokKind::LParen))
        continue;
      Pre.next();
      FnSig Sig;
      Sig.RetTy = *Ty;
      while (!Pre.peek().is(TokKind::RParen) &&
             !Pre.peek().is(TokKind::Eof)) {
        std::optional<Type> PTy = scanType(Pre);
        if (!PTy)
          break;
        Sig.ParamTys.push_back(*PTy);
        if (Pre.peek().is(TokKind::Ident))
          Pre.next();
        if (!Pre.peek().is(TokKind::Comma))
          break;
        Pre.next();
      }
      Signatures[Name] = Sig;
      // Skip to the end of the body.
      int Depth = 0;
      while (!Pre.peek().is(TokKind::Eof)) {
        TokKind K = Pre.next().Kind;
        if (K == TokKind::LBrace)
          ++Depth;
        else if (K == TokKind::RBrace && --Depth == 0)
          break;
      }
    }
  }

  static std::optional<Type> scanType(Lexer &L) {
    if (L.peek().is(TokKind::KwBool)) {
      L.next();
      return Type::boolTy();
    }
    if (L.peek().is(TokKind::KwVoid)) {
      L.next();
      return Type::voidTy();
    }
    if (!L.peek().is(TokKind::KwInt))
      return std::nullopt;
    L.next();
    int Depth = 0;
    while (L.peek().is(TokKind::Star)) {
      L.next();
      ++Depth;
    }
    return Depth == 0 ? Type::intTy() : Type::ptrTy(Depth);
  }

  //===--- Scopes -----------------------------------------------------------

  Variable *lookup(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return nullptr;
  }

  void declare(const std::string &Name, Variable *V, SourceLoc Loc) {
    if (Scopes.back().count(Name))
      error(Loc, "redeclaration of '" + Name + "'");
    Scopes.back()[Name] = V;
  }

  //===--- IR emission helpers ---------------------------------------------===

  void emit(Stmt *S) { CurBB->append(S); }

  Variable *newTemp(Type Ty) {
    return F->createVar(Ty, "t" + std::to_string(TempCount++));
  }

  BasicBlock *newBlock(const std::string &Hint) {
    return F->createBlock(Hint);
  }

  void setBlock(BasicBlock *B) { CurBB = B; }

  void jumpTo(BasicBlock *Target, SourceLoc Loc) {
    if (!CurBB->terminator())
      emit(M.make<JumpStmt>(Target, Loc));
  }

  //===--- Functions --------------------------------------------------------

  bool parseFunction() {
    SourceLoc Loc = Lex.peek().Loc;
    std::optional<Type> RetTy = scanType(Lex);
    if (!RetTy) {
      error(Loc, "expected function return type");
      return false;
    }
    if (!Lex.peek().is(TokKind::Ident)) {
      error(Lex.peek().Loc, "expected function name");
      return false;
    }
    std::string Name(Lex.next().Text);
    if (M.function(Name)) {
      error(Loc, "redefinition of function '" + Name + "'");
      return false;
    }

    F = M.createFunction(Name, *RetTy);
    TempCount = 0;
    Scopes.clear();
    Scopes.emplace_back();

    if (!expect(TokKind::LParen, "'('"))
      return false;
    if (!Lex.peek().is(TokKind::RParen)) {
      do {
        SourceLoc PLoc = Lex.peek().Loc;
        std::optional<Type> PTy = scanType(Lex);
        if (!PTy || PTy->isVoid()) {
          error(PLoc, "expected parameter type");
          return false;
        }
        if (!Lex.peek().is(TokKind::Ident)) {
          error(Lex.peek().Loc, "expected parameter name");
          return false;
        }
        Token PName = Lex.next();
        Variable *P = F->addParam(*PTy, std::string(PName.Text));
        declare(std::string(PName.Text), P, PName.Loc);
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RParen, "')'"))
      return false;

    // Unified exit block with the single return.
    BasicBlock *Entry = F->createBlock("entry");
    ExitBB = F->createBlock("exit");
    F->setExitBlock(ExitBB);
    RetVar = RetTy->isVoid() ? nullptr : F->createVar(*RetTy, "retval");
    auto *Ret = M.make<ReturnStmt>(Loc);
    if (RetVar)
      Ret->addValue(RetVar);
    ExitBB->append(Ret);

    setBlock(Entry);
    if (!parseBlock())
      return false;
    // Fall-through at the end of the body returns (void or default 0).
    if (!CurBB->terminator()) {
      if (RetVar)
        emit(M.make<AssignStmt>(RetVar, defaultValueFor(RetVar->type()),
                                SourceLoc{}));
      emit(M.make<JumpStmt>(ExitBB, SourceLoc{}));
    }

    F->removeUnreachableBlocks();
    return true;
  }

  Value *defaultValueFor(Type Ty) {
    if (Ty.isPointer())
      return M.getNullConst(Ty);
    if (Ty.isBool())
      return M.getBoolConst(false);
    return M.getIntConst(0);
  }

  //===--- Statements -------------------------------------------------------

  bool parseBlock() {
    if (!expect(TokKind::LBrace, "'{'"))
      return false;
    Scopes.emplace_back();
    while (!Lex.peek().is(TokKind::RBrace)) {
      if (Lex.peek().is(TokKind::Eof)) {
        error(Lex.peek().Loc, "unterminated block");
        return false;
      }
      if (!parseStmt())
        return false;
    }
    Lex.next(); // }
    Scopes.pop_back();
    return true;
  }

  bool parseStmt() {
    DepthGuard G(*this, Lex.peek().Loc);
    if (!G.Ok)
      return false;
    const Token &T = Lex.peek();
    switch (T.Kind) {
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::KwInt:
    case TokKind::KwBool:
      return parseDecl();
    case TokKind::KwIf:
      return parseIf();
    case TokKind::KwWhile:
      return parseWhile();
    case TokKind::KwReturn:
      return parseReturn();
    case TokKind::Star:
      return parseStore();
    case TokKind::Ident: {
      // Assignment or expression statement: decided by one-token lookahead
      // through a sub-lexer is overkill; peek at the text after the ident by
      // re-lexing is avoided by grammar: `IDENT '='` is an assignment.
      return parseAssignOrExpr();
    }
    default:
      return parseExprStmt();
    }
  }

  bool parseDecl() {
    SourceLoc Loc = Lex.peek().Loc;
    std::optional<Type> Ty = scanType(Lex);
    if (!Ty || Ty->isVoid()) {
      error(Loc, "bad declaration type");
      return false;
    }
    if (!Lex.peek().is(TokKind::Ident)) {
      error(Lex.peek().Loc, "expected variable name");
      return false;
    }
    Token Name = Lex.next();
    Variable *V = F->createVar(*Ty, std::string(Name.Text));
    declare(std::string(Name.Text), V, Name.Loc);
    if (accept(TokKind::Assign)) {
      TypedValue Init = parseExpr(*Ty);
      if (!Init.valid())
        return false;
      emit(M.make<AssignStmt>(V, coerce(Init, *Ty, Name.Loc), Name.Loc));
    }
    return expect(TokKind::Semi, "';'");
  }

  bool parseIf() {
    SourceLoc Loc = Lex.next().Loc; // if
    if (!expect(TokKind::LParen, "'('"))
      return false;
    Value *Cond = parseCondition();
    if (!Cond)
      return false;
    if (!expect(TokKind::RParen, "')'"))
      return false;

    BasicBlock *ThenBB = newBlock("then");
    BasicBlock *JoinBB = newBlock("join");
    BasicBlock *ElseBB = JoinBB;

    BasicBlock *CondBB = CurBB;
    setBlock(ThenBB);
    if (!parseStmt())
      return false;
    BasicBlock *ThenEnd = CurBB;

    bool HasElse = Lex.peek().is(TokKind::KwElse);
    if (HasElse) {
      Lex.next();
      ElseBB = newBlock("else");
      setBlock(ElseBB);
      if (!parseStmt())
        return false;
      jumpTo(JoinBB, Loc);
    }

    CondBB->append(M.make<BranchStmt>(Cond, ThenBB, ElseBB, Loc));
    setBlock(ThenEnd);
    jumpTo(JoinBB, Loc);
    setBlock(JoinBB);
    return true;
  }

  bool parseWhile() {
    // Soundiness (paper §4.2): loops are unrolled once — lower
    // `while (c) body` as `if (c) body`.
    SourceLoc Loc = Lex.next().Loc; // while
    if (!expect(TokKind::LParen, "'('"))
      return false;
    Value *Cond = parseCondition();
    if (!Cond)
      return false;
    if (!expect(TokKind::RParen, "')'"))
      return false;

    BasicBlock *BodyBB = newBlock("loopbody");
    BasicBlock *JoinBB = newBlock("loopexit");
    CurBB->append(M.make<BranchStmt>(Cond, BodyBB, JoinBB, Loc));
    setBlock(BodyBB);
    if (!parseStmt())
      return false;
    jumpTo(JoinBB, Loc);
    setBlock(JoinBB);
    return true;
  }

  bool parseReturn() {
    SourceLoc Loc = Lex.next().Loc; // return
    if (!Lex.peek().is(TokKind::Semi)) {
      if (!RetVar) {
        error(Loc, "returning a value from a void function");
        return false;
      }
      TypedValue V = parseExpr(RetVar->type());
      if (!V.valid())
        return false;
      emit(M.make<AssignStmt>(RetVar, coerce(V, RetVar->type(), Loc), Loc));
    } else if (RetVar) {
      emit(M.make<AssignStmt>(RetVar, defaultValueFor(RetVar->type()), Loc));
    }
    if (!expect(TokKind::Semi, "';'"))
      return false;
    emit(M.make<JumpStmt>(ExitBB, Loc));
    // Continue lowering any trailing dead code into a fresh block; it is
    // pruned by removeUnreachableBlocks.
    setBlock(newBlock("dead"));
    return true;
  }

  bool parseStore() {
    SourceLoc Loc = Lex.peek().Loc;
    uint32_t Derefs = 0;
    while (accept(TokKind::Star))
      ++Derefs;
    if (!Lex.peek().is(TokKind::Ident)) {
      error(Lex.peek().Loc, "expected pointer variable after '*'");
      return false;
    }
    Token Name = Lex.next();
    Variable *Ptr = lookup(std::string(Name.Text));
    if (!Ptr) {
      error(Name.Loc, "use of undeclared variable '" +
                          std::string(Name.Text) + "'");
      return false;
    }
    if (Ptr->type().pointerDepth() < static_cast<int>(Derefs)) {
      error(Name.Loc, "cannot dereference '" + Ptr->name() + "' " +
                          std::to_string(Derefs) + " times");
      return false;
    }
    if (!expect(TokKind::Assign, "'='"))
      return false;
    Type ValTy = Ptr->type().deref(static_cast<int>(Derefs));
    TypedValue V = parseExpr(ValTy);
    if (!V.valid())
      return false;
    Value *Stored = coerce(V, ValTy, Loc);
    // Materialise stored null constants through a temporary so the null
    // value participates in value-flow graphs (constants do not flow).
    if (const auto *C = dyn_cast<Constant>(Stored);
        C && C->isNull() && ValTy.isPointer()) {
      Variable *T = newTemp(ValTy);
      emit(M.make<AssignStmt>(T, Stored, Loc));
      Stored = T;
    }
    emit(M.make<StoreStmt>(Ptr, Derefs, Stored, Loc));
    return expect(TokKind::Semi, "';'");
  }

  bool parseAssignOrExpr() {
    Token Name = Lex.peek();
    // Save lexer state is unnecessary: grammar is LL(2) here. We lex the
    // ident, then decide on '='.
    Lex.next();
    if (Lex.peek().is(TokKind::Assign)) {
      Lex.next();
      Variable *V = lookup(std::string(Name.Text));
      if (!V) {
        error(Name.Loc, "use of undeclared variable '" +
                            std::string(Name.Text) + "'");
        return false;
      }
      TypedValue RHS = parseExpr(V->type());
      if (!RHS.valid())
        return false;
      emit(M.make<AssignStmt>(V, coerce(RHS, V->type(), Name.Loc),
                              Name.Loc));
      return expect(TokKind::Semi, "';'");
    }
    // Expression statement beginning with an identifier: only calls have
    // effects, and the grammar only reaches here for them.
    if (Lex.peek().is(TokKind::LParen)) {
      TypedValue V = parseCallAfterName(Name, std::nullopt);
      if (!V.valid() && !CalleeIsVoid)
        return false;
      return expect(TokKind::Semi, "';'");
    }
    error(Lex.peek().Loc, "expected '=' or '(' after identifier");
    return false;
  }

  bool parseExprStmt() {
    TypedValue V = parseExpr(std::nullopt);
    if (!V.valid())
      return false;
    return expect(TokKind::Semi, "';'");
  }

  //===--- Expressions -------------------------------------------------------

  /// Lowers a condition expression to a bool-typed Value.
  Value *parseCondition() {
    TypedValue C = parseExpr(Type::boolTy());
    if (!C.valid())
      return nullptr;
    return coerce(C, Type::boolTy(), Lex.peek().Loc);
  }

  /// Coerces \p V to \p Want: int->bool via (v != 0); null adapts to any
  /// pointer depth. Mismatches diagnose but return something usable.
  Value *coerce(TypedValue V, Type Want, SourceLoc Loc) {
    if (V.Ty == Want)
      return V.V;
    if (Want.isBool() && (V.Ty.isInt() || V.Ty.isPointer())) {
      Variable *T = newTemp(Type::boolTy());
      Value *Zero = V.Ty.isPointer() ? static_cast<Value *>(M.getNullConst(
                                           V.Ty))
                                     : M.getIntConst(0);
      emit(M.make<BinOpStmt>(T, OpCode::Ne, V.V, Zero, Loc));
      return T;
    }
    if (Want.isPointer()) {
      if (const auto *C = dyn_cast<Constant>(V.V); C && C->value() == 0)
        return M.getNullConst(Want);
    }
    if (Want.isInt() && V.Ty.isBool())
      return V.V; // Tolerated: bools are 0/1 ints downstream.
    error(Loc, "type mismatch: have " + V.Ty.str() + ", want " + Want.str());
    return V.V;
  }

  /// expr := or-chain. \p Expected propagates the target type into
  /// context-sensitive leaves (null, malloc, externals).
  TypedValue parseExpr(std::optional<Type> Expected) {
    DepthGuard G(*this, Lex.peek().Loc);
    if (!G.Ok)
      return {};
    TypedValue L = parseAnd(Expected);
    if (!L.valid())
      return {};
    while (Lex.peek().is(TokKind::PipePipe)) {
      SourceLoc Loc = Lex.next().Loc;
      TypedValue R = parseAnd(Type::boolTy());
      if (!R.valid())
        return {};
      Variable *T = newTemp(Type::boolTy());
      emit(M.make<BinOpStmt>(T, OpCode::Or, coerce(L, Type::boolTy(), Loc),
                             coerce(R, Type::boolTy(), Loc), Loc));
      L = {T, Type::boolTy()};
    }
    return L;
  }

  TypedValue parseAnd(std::optional<Type> Expected) {
    TypedValue L = parseCmp(Expected);
    if (!L.valid())
      return {};
    while (Lex.peek().is(TokKind::AmpAmp)) {
      SourceLoc Loc = Lex.next().Loc;
      TypedValue R = parseCmp(Type::boolTy());
      if (!R.valid())
        return {};
      Variable *T = newTemp(Type::boolTy());
      emit(M.make<BinOpStmt>(T, OpCode::And, coerce(L, Type::boolTy(), Loc),
                             coerce(R, Type::boolTy(), Loc), Loc));
      L = {T, Type::boolTy()};
    }
    return L;
  }

  TypedValue parseCmp(std::optional<Type> Expected) {
    TypedValue L = parseAdd(Expected);
    if (!L.valid())
      return {};
    OpCode Op;
    switch (Lex.peek().Kind) {
    case TokKind::EqEq:
      Op = OpCode::Eq;
      break;
    case TokKind::NotEq:
      Op = OpCode::Ne;
      break;
    case TokKind::Lt:
      Op = OpCode::Lt;
      break;
    case TokKind::Le:
      Op = OpCode::Le;
      break;
    case TokKind::Gt:
      Op = OpCode::Gt;
      break;
    case TokKind::Ge:
      Op = OpCode::Ge;
      break;
    default:
      return L;
    }
    SourceLoc Loc = Lex.next().Loc;
    TypedValue R = parseAdd(L.Ty);
    if (!R.valid())
      return {};
    // Pointer comparisons against null/0 are the common pattern (*q != 0).
    Value *RV = R.V;
    if (L.Ty.isPointer() && !R.Ty.isPointer()) {
      if (const auto *C = dyn_cast<Constant>(R.V); C && C->value() == 0)
        RV = M.getNullConst(L.Ty);
      else
        error(Loc, "comparing pointer with non-pointer");
    }
    Variable *T = newTemp(Type::boolTy());
    emit(M.make<BinOpStmt>(T, Op, L.V, RV, Loc));
    return {T, Type::boolTy()};
  }

  TypedValue parseAdd(std::optional<Type> Expected) {
    TypedValue L = parseMul(Expected);
    if (!L.valid())
      return {};
    while (Lex.peek().is(TokKind::Plus) || Lex.peek().is(TokKind::Minus)) {
      OpCode Op = Lex.peek().is(TokKind::Plus) ? OpCode::Add : OpCode::Sub;
      SourceLoc Loc = Lex.next().Loc;
      TypedValue R = parseMul(Type::intTy());
      if (!R.valid())
        return {};
      Variable *T = newTemp(Type::intTy());
      emit(M.make<BinOpStmt>(T, Op, L.V, R.V, Loc));
      L = {T, Type::intTy()};
    }
    return L;
  }

  TypedValue parseMul(std::optional<Type> Expected) {
    TypedValue L = parseUnary(Expected);
    if (!L.valid())
      return {};
    while (Lex.peek().is(TokKind::Star)) {
      SourceLoc Loc = Lex.next().Loc;
      TypedValue R = parseUnary(Type::intTy());
      if (!R.valid())
        return {};
      Variable *T = newTemp(Type::intTy());
      emit(M.make<BinOpStmt>(T, OpCode::Mul, L.V, R.V, Loc));
      L = {T, Type::intTy()};
    }
    return L;
  }

  TypedValue parseUnary(std::optional<Type> Expected) {
    DepthGuard G(*this, Lex.peek().Loc);
    if (!G.Ok)
      return {};
    const Token &T = Lex.peek();
    if (T.is(TokKind::Minus)) {
      SourceLoc Loc = Lex.next().Loc;
      TypedValue V = parseUnary(Type::intTy());
      if (!V.valid())
        return {};
      Variable *Tmp = newTemp(Type::intTy());
      emit(M.make<UnOpStmt>(Tmp, OpCode::Neg, V.V, Loc));
      return {Tmp, Type::intTy()};
    }
    if (T.is(TokKind::Bang)) {
      SourceLoc Loc = Lex.next().Loc;
      TypedValue V = parseUnary(Type::boolTy());
      if (!V.valid())
        return {};
      Variable *Tmp = newTemp(Type::boolTy());
      emit(M.make<UnOpStmt>(Tmp, OpCode::Not,
                            coerce(V, Type::boolTy(), Loc), Loc));
      return {Tmp, Type::boolTy()};
    }
    if (T.is(TokKind::Star)) {
      // Load: *(p, k).
      SourceLoc Loc = T.Loc;
      uint32_t Derefs = 0;
      while (accept(TokKind::Star))
        ++Derefs;
      if (!Lex.peek().is(TokKind::Ident)) {
        error(Lex.peek().Loc, "expected variable after '*'");
        return {};
      }
      Token Name = Lex.next();
      Variable *Ptr = lookup(std::string(Name.Text));
      if (!Ptr) {
        error(Name.Loc, "use of undeclared variable '" +
                            std::string(Name.Text) + "'");
        return {};
      }
      if (Ptr->type().pointerDepth() < static_cast<int>(Derefs)) {
        error(Name.Loc, "cannot dereference '" + Ptr->name() + "' " +
                            std::to_string(Derefs) + " times");
        return {};
      }
      Type ResTy = Ptr->type().deref(static_cast<int>(Derefs));
      Variable *Tmp = newTemp(ResTy);
      emit(M.make<LoadStmt>(Tmp, Ptr, Derefs, Loc));
      return {Tmp, ResTy};
    }
    return parsePrimary(Expected);
  }

  TypedValue parsePrimary(std::optional<Type> Expected) {
    Token T = Lex.peek();
    switch (T.Kind) {
    case TokKind::Number:
      Lex.next();
      return {M.getIntConst(T.Number), Type::intTy()};
    case TokKind::KwTrue:
      Lex.next();
      return {M.getBoolConst(true), Type::boolTy()};
    case TokKind::KwFalse:
      Lex.next();
      return {M.getBoolConst(false), Type::boolTy()};
    case TokKind::KwNull: {
      Lex.next();
      Type Ty = Expected && Expected->isPointer() ? *Expected
                                                  : Type::ptrTy(1);
      return {M.getNullConst(Ty), Ty};
    }
    case TokKind::LParen: {
      Lex.next();
      TypedValue V = parseExpr(Expected);
      if (!V.valid())
        return {};
      if (!expect(TokKind::RParen, "')'"))
        return {};
      return V;
    }
    case TokKind::Ident: {
      Lex.next();
      if (Lex.peek().is(TokKind::LParen))
        return parseCallAfterName(T, Expected);
      Variable *V = lookup(std::string(T.Text));
      if (!V) {
        error(T.Loc,
              "use of undeclared variable '" + std::string(T.Text) + "'");
        return {};
      }
      return {V, V->type()};
    }
    default:
      error(T.Loc, "expected expression, got '" + std::string(T.Text) + "'");
      return {};
    }
  }

  /// Parses `(args)` after a callee name and emits the CallStmt.
  TypedValue parseCallAfterName(const Token &Name,
                                std::optional<Type> Expected) {
    CalleeIsVoid = false;
    expect(TokKind::LParen, "'('");
    std::string Callee(Name.Text);
    auto SigIt = Signatures.find(Callee);

    auto *Call = M.make<CallStmt>(Callee, Name.Loc);
    unsigned ArgIdx = 0;
    if (!Lex.peek().is(TokKind::RParen)) {
      do {
        std::optional<Type> ArgTy;
        if (SigIt != Signatures.end() &&
            ArgIdx < SigIt->second.ParamTys.size())
          ArgTy = SigIt->second.ParamTys[ArgIdx];
        TypedValue A = parseExpr(ArgTy);
        if (!A.valid())
          return {};
        Call->addArg(ArgTy ? coerce(A, *ArgTy, Name.Loc) : A.V);
        ++ArgIdx;
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RParen, "')'"))
      return {};

    // Determine the return type: defined functions have signatures;
    // malloc adapts to the expected pointer type; free is void; other
    // externals adapt to the expected type (default int).
    Type RetTy = Type::intTy();
    if (SigIt != Signatures.end()) {
      RetTy = SigIt->second.RetTy;
    } else if (Callee == ir::intrinsics::Malloc) {
      RetTy = Expected && Expected->isPointer() ? *Expected : Type::ptrTy(1);
    } else if (Callee == ir::intrinsics::Free) {
      RetTy = Type::voidTy();
    } else if (Expected) {
      RetTy = *Expected;
    }

    if (RetTy.isVoid()) {
      CalleeIsVoid = true;
      emit(Call);
      return {};
    }
    Variable *Recv = newTemp(RetTy);
    Call->setReceiver(Recv);
    emit(Call);
    return {Recv, RetTy};
  }

  std::string_view Source;
  Lexer Lex;
  Module &M;
  std::vector<Diag> &Diags;

  Function *F = nullptr;
  BasicBlock *CurBB = nullptr;
  BasicBlock *ExitBB = nullptr;
  Variable *RetVar = nullptr;
  unsigned TempCount = 0;
  bool CalleeIsVoid = false;
  int NestingDepth = 0; ///< Current grammar recursion depth (DepthGuard).
  std::vector<std::map<std::string, Variable *>> Scopes;
  std::map<std::string, FnSig> Signatures;
};

} // namespace

bool parseModule(std::string_view Source, Module &M,
                 std::vector<Diag> &Diags) {
  return Parser(Source, M, Diags).run();
}

} // namespace pinpoint::frontend
