//===- seg/SEG.cpp -----------------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "seg/SEG.h"
#include "support/Statistics.h"

#include <set>

using namespace pinpoint::ir;

namespace pinpoint::seg {

SEG::SEG(const Function &F, SymbolMap &Syms, ConditionMap &Conds,
         const pta::PointsToResult &PTA)
    : F(F), Syms(Syms), Conds(Conds), Ctx(Syms.context()) {
  build(PTA);
  freeze();
}

uint32_t SEG::vertexId(const Variable *V) {
  auto [It, Inserted] =
      VertexId.emplace(V, static_cast<uint32_t>(VertexOrder.size()));
  if (Inserted)
    VertexOrder.push_back(V);
  return It->second;
}

void SEG::addFlow(const Value *From, const Variable *To,
                  const smt::Expr *Cond, bool Direct, const Stmt *Via) {
  const auto *Var = dyn_cast<Variable>(From);
  if (!Var)
    return; // Constants do not flow.
  B->FlowOut[Var].push_back({To, Cond, Direct, Via});
  B->FlowIn[To].push_back({Var, Cond, Direct, Via});
  vertexId(Var);
  vertexId(To);
  ++EdgeCount;
}

void SEG::addUse(const Value *V, const Stmt *S, UseKind K, int Index) {
  if (const auto *Var = dyn_cast<Variable>(V)) {
    B->Uses[Var].push_back({S, K, Index});
    vertexId(Var);
  }
}

namespace {
/// Packs one adjacency map into CSR form over \p Order: offsets are
/// vertex-id indexed, rows preserve per-vertex build order.
template <typename T>
void packCSR(Arena &Mem,
             const std::unordered_map<const Variable *, std::vector<T>> &Adj,
             const std::vector<const Variable *> &Order,
             const uint32_t *&OffOut, const T *&EdgesOut) {
  const size_t N = Order.size();
  uint32_t *Off = Mem.allocArray<uint32_t>(N + 1);
  size_t Total = 0;
  for (size_t I = 0; I < N; ++I) {
    Off[I] = static_cast<uint32_t>(Total);
    auto It = Adj.find(Order[I]);
    if (It != Adj.end())
      Total += It->second.size();
  }
  Off[N] = static_cast<uint32_t>(Total);
  T *Edges = Mem.allocArray<T>(Total);
  for (size_t I = 0; I < N; ++I) {
    auto It = Adj.find(Order[I]);
    if (It == Adj.end())
      continue;
    T *Row = Edges + Off[I];
    for (size_t J = 0; J < It->second.size(); ++J)
      Row[J] = It->second[J];
  }
  OffOut = Off;
  EdgesOut = Edges;
}
} // namespace

const SEG::LocalDef *SEG::freezeDef(LocalDefInfo &&Info) {
  const Variable **Deps = Mem.allocArray<const Variable *>(Info.Deps.size());
  if (Deps)
    std::copy(Info.Deps.begin(), Info.Deps.end(), Deps);
  LocalDef *D = Mem.allocArray<LocalDef>(1);
  D->Constraint = Info.Constraint;
  D->Deps = Span<const Variable *>(Deps, Info.Deps.size());
  D->OpensParam = Info.OpensParam;
  D->OpenCall = Info.OpenCall;
  D->OpenRecvIndex = Info.OpenRecvIndex;
  return D;
}

void SEG::freeze() {
  packCSR(Mem, B->FlowOut, VertexOrder, FlowOutOff, FlowOutE);
  packCSR(Mem, B->FlowIn, VertexOrder, FlowInOff, FlowInE);
  packCSR(Mem, B->Uses, VertexOrder, UsesOff, UsesE);

  // Freeze the precomputed load definitions into the same arena, indexed
  // by vertex id (BuildDefs is in statement order, so the packed layout is
  // deterministic). Definitions queried later materialise lazily into the
  // same storage under QueryMu.
  DefByVertex = Mem.allocArray<const LocalDef *>(VertexOrder.size());
  for (size_t I = 0; I < VertexOrder.size(); ++I)
    DefByVertex[I] = nullptr;
  for (auto &[V, Info] : B->BuildDefs) {
    const LocalDef *D = freezeDef(std::move(Info));
    auto It = VertexId.find(V);
    if (It != VertexId.end())
      DefByVertex[It->second] = D;
    else
      DefOverflow.emplace(V, D);
  }

  B.reset();
  Counters::get().add("seg.csr-bytes",
                      static_cast<int64_t>(Mem.bytesUsed()));
}

size_t SEG::memoryBytes() const {
  // CSR storage is exact (arena-reserved); the id index and call list are
  // estimated from container geometry (bucket array + one node per entry).
  const size_t MapNode =
      sizeof(std::pair<const Variable *, uint32_t>) + 2 * sizeof(void *);
  return Mem.bytesReserved() + VertexId.size() * MapNode +
         VertexId.bucket_count() * sizeof(void *) +
         VertexOrder.capacity() * sizeof(const Variable *) +
         Calls.capacity() * sizeof(const CallStmt *);
}

void SEG::build(const pta::PointsToResult &PTA) {
  for (const BasicBlock *B : F.blocks()) {
    for (const Stmt *S : B->stmts()) {
      switch (S->stmtKind()) {
      case Stmt::SK_Assign: {
        const auto *A = cast<AssignStmt>(S);
        addFlow(A->src(), A->dst(), Ctx.getTrue(), /*Direct=*/true, S);
        addUse(A->src(), S, UseKind::Operand, -1);
        break;
      }
      case Stmt::SK_Phi: {
        const auto *Phi = cast<PhiStmt>(S);
        for (auto &[Pred, V] : Phi->incoming()) {
          addFlow(V, Phi->dst(), Conds.phiGate(Phi, Pred), /*Direct=*/true,
                  S);
          addUse(V, S, UseKind::Operand, -1);
        }
        break;
      }
      case Stmt::SK_BinOp: {
        const auto *O = cast<BinOpStmt>(S);
        addFlow(O->lhs(), O->dst(), Ctx.getTrue(), /*Direct=*/false, S);
        addFlow(O->rhs(), O->dst(), Ctx.getTrue(), /*Direct=*/false, S);
        addUse(O->lhs(), S, UseKind::Operand, -1);
        addUse(O->rhs(), S, UseKind::Operand, -1);
        break;
      }
      case Stmt::SK_UnOp: {
        const auto *O = cast<UnOpStmt>(S);
        addFlow(O->src(), O->dst(), Ctx.getTrue(), /*Direct=*/false, S);
        addUse(O->src(), S, UseKind::Operand, -1);
        break;
      }
      case Stmt::SK_Load: {
        const auto *L = cast<LoadStmt>(S);
        addUse(L->addr(), S, UseKind::DerefAddr, -1);
        // The load's symbolic definition comes from the points-to results:
        // ∧_j (cond_j ⇒ dst = val_j); initial (opaque) contents leave the
        // destination unconstrained under their condition.
        LocalDefInfo D;
        D.Constraint = Ctx.getTrue();
        for (auto &[CV, C] : PTA.loadDeps(L)) {
          if (CV.isInitial())
            continue;
          addFlow(CV.V, L->dst(), C, /*Direct=*/true, S);
          D.Constraint = Ctx.mkAnd(
              D.Constraint, Ctx.mkImplies(C, valueEq(L->dst(), CV.V)));
          if (const auto *Var = dyn_cast<Variable>(CV.V))
            D.Deps.push_back(Var);
          for (const Variable *GV : gateIRVars(C))
            D.Deps.push_back(GV);
        }
        // `B` is the block loop variable here; `this->B` is the builder.
        this->B->BuildDefs.emplace_back(L->dst(), std::move(D));
        break;
      }
      case Stmt::SK_Store: {
        const auto *St = cast<StoreStmt>(S);
        addUse(St->addr(), S, UseKind::DerefAddr, -1);
        addUse(St->value(), S, UseKind::StoreVal, -1);
        break;
      }
      case Stmt::SK_Branch:
        addUse(cast<BranchStmt>(S)->cond(), S, UseKind::BranchCond, -1);
        break;
      case Stmt::SK_Return: {
        const auto *R = cast<ReturnStmt>(S);
        for (size_t I = 0; I < R->values().size(); ++I)
          addUse(R->values()[I], S, UseKind::RetVal, static_cast<int>(I));
        break;
      }
      case Stmt::SK_Call: {
        const auto *C = cast<CallStmt>(S);
        Calls.push_back(C);
        for (size_t I = 0; I < C->args().size(); ++I)
          addUse(C->args()[I], S, UseKind::CallArg, static_cast<int>(I));
        break;
      }
      case Stmt::SK_Jump:
        break;
      }
    }
  }
}

//===----------------------------------------------------------------------===
// Symbolic definitions
//===----------------------------------------------------------------------===

/// The boolean formula denoting \p V: bool-typed symbols directly, integer
/// symbols as (v != 0), constants folded.
const smt::Expr *SEG::boolExprOf(const Value *V) {
  const smt::Expr *E = Syms[V];
  if (E->isBool())
    return E;
  return Ctx.mkNe(E, Ctx.getInt(0));
}

const smt::Expr *SEG::valueEq(const Value *A, const Value *B) {
  const smt::Expr *EA = Syms[A];
  const smt::Expr *EB = Syms[B];
  if (EA->isBool() || EB->isBool()) {
    const smt::Expr *BA = boolExprOf(A);
    const smt::Expr *BB = boolExprOf(B);
    return Ctx.mkAnd(Ctx.mkImplies(BA, BB), Ctx.mkImplies(BB, BA));
  }
  return Ctx.mkEq(EA, EB);
}

SEG::LocalDefInfo SEG::makeLocalDef(const Variable *V) {
  LocalDefInfo D;
  D.Constraint = Ctx.getTrue();

  auto dep = [&](const Value *Val) {
    if (const auto *Var = dyn_cast<Variable>(Val))
      D.Deps.push_back(Var);
  };
  auto iff = [&](const smt::Expr *A, const smt::Expr *B) {
    return Ctx.mkAnd(Ctx.mkImplies(A, B), Ctx.mkImplies(B, A));
  };

  if (V->isParam()) {
    D.OpensParam = true;
    return D;
  }
  const Stmt *Def = V->def();
  if (!Def)
    return D; // Unconstrained placeholder.

  switch (Def->stmtKind()) {
  case Stmt::SK_Assign: {
    const auto *A = cast<AssignStmt>(Def);
    D.Constraint = valueEq(V, A->src());
    dep(A->src());
    break;
  }
  case Stmt::SK_BinOp: {
    const auto *O = cast<BinOpStmt>(Def);
    const smt::Expr *L = Syms[O->lhs()];
    const smt::Expr *R = Syms[O->rhs()];
    switch (O->op()) {
    case OpCode::Add:
    case OpCode::Sub:
    case OpCode::Mul: {
      smt::ExprKind K = O->op() == OpCode::Add   ? smt::ExprKind::Add
                        : O->op() == OpCode::Sub ? smt::ExprKind::Sub
                                                 : smt::ExprKind::Mul;
      D.Constraint = Ctx.mkEq(
          Ctx.toIntExpr(Syms[V]),
          Ctx.mkArith(K, Ctx.toIntExpr(L), Ctx.toIntExpr(R)));
      break;
    }
    case OpCode::And:
      D.Constraint =
          iff(boolExprOf(V), Ctx.mkAnd(boolExprOf(O->lhs()),
                                       boolExprOf(O->rhs())));
      break;
    case OpCode::Or:
      D.Constraint = iff(boolExprOf(V), Ctx.mkOr(boolExprOf(O->lhs()),
                                                 boolExprOf(O->rhs())));
      break;
    default: { // Comparisons.
      smt::ExprKind K;
      switch (O->op()) {
      case OpCode::Eq:
        K = smt::ExprKind::Eq;
        break;
      case OpCode::Ne:
        K = smt::ExprKind::Ne;
        break;
      case OpCode::Lt:
        K = smt::ExprKind::Lt;
        break;
      case OpCode::Le:
        K = smt::ExprKind::Le;
        break;
      case OpCode::Gt:
        K = smt::ExprKind::Gt;
        break;
      default:
        K = smt::ExprKind::Ge;
        break;
      }
      const smt::Expr *Cmp;
      if (L->isBool() || R->isBool()) {
        // Boolean comparison: only ==/!= make sense; encode via iff.
        const smt::Expr *BL = boolExprOf(O->lhs());
        const smt::Expr *BR = boolExprOf(O->rhs());
        Cmp = K == smt::ExprKind::Ne ? Ctx.mkNot(iff(BL, BR)) : iff(BL, BR);
      } else {
        Cmp = Ctx.mkCmp(K, Ctx.toIntExpr(L), Ctx.toIntExpr(R));
      }
      D.Constraint = iff(boolExprOf(V), Cmp);
      break;
    }
    }
    dep(O->lhs());
    dep(O->rhs());
    break;
  }
  case Stmt::SK_UnOp: {
    const auto *O = cast<UnOpStmt>(Def);
    if (O->op() == OpCode::Neg)
      D.Constraint = Ctx.mkEq(Syms[V], Ctx.mkNeg(Syms[O->src()]));
    else
      D.Constraint = iff(boolExprOf(V), Ctx.mkNot(boolExprOf(O->src())));
    dep(O->src());
    break;
  }
  case Stmt::SK_Phi: {
    const auto *Phi = cast<PhiStmt>(Def);
    const smt::Expr *C = Ctx.getTrue();
    for (auto &[Pred, In] : Phi->incoming()) {
      const smt::Expr *Gate = Conds.phiGate(Phi, Pred);
      C = Ctx.mkAnd(C, Ctx.mkImplies(Gate, valueEq(V, In)));
      dep(In);
      // Gate variables need their definitions too.
      for (const Variable *BV : gateIRVars(Gate))
        D.Deps.push_back(BV);
    }
    D.Constraint = C;
    break;
  }
  case Stmt::SK_Load:
    // Load definitions are precomputed during build(); reaching this means
    // the load was unreachable — leave unconstrained.
    break;
  case Stmt::SK_Call: {
    const auto *C = cast<CallStmt>(Def);
    if (C->calleeName() == intrinsics::Malloc) {
      // Fresh heap cells are non-null.
      D.Constraint = Ctx.mkNe(Syms[V], Ctx.getInt(0));
    } else {
      D.OpenCall = C;
      if (C->receiver() == V) {
        D.OpenRecvIndex = -1;
      } else {
        for (size_t I = 0; I < C->auxReceivers().size(); ++I)
          if (C->auxReceivers()[I] == V)
            D.OpenRecvIndex = static_cast<int>(I);
      }
    }
    break;
  }
  default:
    break;
  }
  return D;
}

std::vector<const Variable *> SEG::gateIRVars(const smt::Expr *E) const {
  std::vector<uint32_t> SymVars;
  Ctx.collectVars(E, SymVars);
  std::vector<const Variable *> Out;
  for (uint32_t Id : SymVars)
    if (const Variable *V = Syms.irVar(Id))
      Out.push_back(V);
  return Out;
}

const SEG::LocalDef &SEG::localDef(const Variable *V) {
  auto It = VertexId.find(V);
  if (It != VertexId.end()) {
    const LocalDef *&Slot = DefByVertex[It->second];
    if (!Slot)
      Slot = freezeDef(makeLocalDef(V));
    return *Slot;
  }
  auto [OIt, Inserted] = DefOverflow.emplace(V, nullptr);
  if (Inserted)
    OIt->second = freezeDef(makeLocalDef(V));
  return *OIt->second;
}

const Closure &SEG::dd(const Variable *V) {
  // One lock per SEG: queries from concurrent checker tasks serialise on
  // this function's memo caches (LocalDefs/DDCache and the lazy parts of
  // ConditionMap reached through makeLocalDef).
  std::lock_guard<std::mutex> L(QueryMu);
  return ddImpl(V);
}

Closure SEG::controlCond(const Stmt *S) {
  std::lock_guard<std::mutex> L(QueryMu);
  return controlCondImpl(S);
}

const Closure &SEG::ddImpl(const Variable *V) {
  auto Found = DDCache.find(V);
  if (Found != DDCache.end())
    return Found->second;

  // Iterative closure over dependencies.
  Closure Out;
  Out.C = Ctx.getTrue();
  std::set<const Variable *> Visited;
  std::vector<const Variable *> Work{V};
  std::set<const Variable *> OpenParamSet;
  std::set<std::pair<const CallStmt *, int>> OpenRecvSet;

  while (!Work.empty()) {
    const Variable *Cur = Work.back();
    Work.pop_back();
    if (!Visited.insert(Cur).second)
      continue;

    const LocalDef &D = localDef(Cur);
    Out.C = Ctx.mkAnd(Out.C, D.Constraint);
    if (D.OpensParam)
      OpenParamSet.insert(Cur);
    if (D.OpenCall)
      OpenRecvSet.insert({D.OpenCall, D.OpenRecvIndex});
    for (const Variable *Dep : D.Deps)
      Work.push_back(Dep);
    // Phi constraints reference gate variables inside D.Constraint; their
    // deps were added in makeLocalDef.
  }

  Out.OpenParams.assign(OpenParamSet.begin(), OpenParamSet.end());
  Out.OpenRecvs.assign(OpenRecvSet.begin(), OpenRecvSet.end());
  return DDCache.emplace(V, std::move(Out)).first->second;
}

Closure SEG::controlCondImpl(const Stmt *S) {
  Closure Out;
  Out.C = Ctx.getTrue();
  std::set<const Variable *> OpenParamSet;
  std::set<std::pair<const CallStmt *, int>> OpenRecvSet;

  std::set<const BasicBlock *> Visited;
  std::vector<const BasicBlock *> Work{S->parent()};
  while (!Work.empty()) {
    const BasicBlock *B = Work.back();
    Work.pop_back();
    if (!Visited.insert(B).second)
      continue;
    for (const ControlDep &CD : Conds.controlDeps(B)) {
      const smt::Expr *Lit = boolExprOf(CD.BranchVar);
      Out.C = Ctx.mkAnd(Out.C, CD.Polarity ? Lit : Ctx.mkNot(Lit));
      const Closure &Sub = ddImpl(CD.BranchVar);
      Out.C = Ctx.mkAnd(Out.C, Sub.C);
      OpenParamSet.insert(Sub.OpenParams.begin(), Sub.OpenParams.end());
      OpenRecvSet.insert(Sub.OpenRecvs.begin(), Sub.OpenRecvs.end());
      // Walk the chain: the block defining the branch variable has its own
      // control dependences (Example 3.8).
      if (CD.BranchVar->def())
        Work.push_back(CD.BranchVar->def()->parent());
    }
  }
  Out.OpenParams.assign(OpenParamSet.begin(), OpenParamSet.end());
  Out.OpenRecvs.assign(OpenRecvSet.begin(), OpenRecvSet.end());
  return Out;
}

} // namespace pinpoint::seg
