//===- seg/SEG.h - Symbolic Expression Graph (paper Def. 3.2) -------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-function Symbolic Expression Graph. It is the paper's new kind of
/// sparse value-flow graph and carries three things:
///
///  1. **Value-flow edges** (the data-dependence subgraph Gd): from each SSA
///     value to the values it defines, labelled with the condition on which
///     the dependence holds — phi gates from gated SSA, alias conditions
///     from the quasi path-sensitive points-to analysis. `Direct` edges move
///     a value unchanged (assign/phi/load-store); operator edges flow
///     through computations (for taint-style checkers).
///
///  2. **Symbolic definitions**: every variable's defining statement as a
///     constraint over the symbol map (the operator vertices of Fig. 4,
///     realised as hash-consed smt::Expr nodes). The memoised closure
///     DD(v@s) of Example 3.7 conjoins everything a value transitively
///     depends on, leaving function parameters and call receivers *open* —
///     the holes that Equations (2)/(3) fill during inter-procedural
///     stitching.
///
///  3. **Control dependence** (Gc): CD(v@s) of Example 3.8, the
///     "efficient path condition" chain of branch literals plus the DD of
///     each branch variable.
///
/// A `SEG` is built once per function after the connector transform; the
/// global analysis never re-analyses the function body (Section 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SEG_SEG_H
#define PINPOINT_SEG_SEG_H

#include "ir/Conditions.h"
#include "ir/IR.h"
#include "pta/PointsTo.h"
#include "support/Arena.h"
#include "support/Span.h"

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace pinpoint::seg {

/// How a value is used at a statement (for sink matching and call hops).
enum class UseKind : uint8_t {
  DerefAddr, ///< Address operand of a load or store.
  CallArg,   ///< Argument of a call (Index = position).
  RetVal,    ///< Member of the return bundle (Index = position).
  StoreVal,  ///< Value operand of a store.
  BranchCond,
  Operand, ///< Operand of an assign/binop/unop/phi.
};

struct Use {
  const ir::Stmt *S;
  UseKind Kind;
  int Index; ///< Arg / return-bundle position; -1 otherwise.
};

/// A value-flow edge v → To under condition Cond.
struct FlowEdge {
  const ir::Variable *To;
  const smt::Expr *Cond;
  bool Direct; ///< True: value moves unchanged; false: through an operator.
  const ir::Stmt *Via;
};

/// The constraint closure of a DD/CD query: the formula plus the open ends
/// whose constraints live in callers (parameters) or callees (receivers).
struct Closure {
  const smt::Expr *C = nullptr;
  std::vector<const ir::Variable *> OpenParams;
  /// (call, bundle index): -1 = primary return value, i>=0 = i-th aux.
  std::vector<std::pair<const ir::CallStmt *, int>> OpenRecvs;
};

class SEG {
public:
  /// Builds the SEG for \p F (post-SSA, post-transform) from the final
  /// points-to results.
  SEG(const ir::Function &F, ir::SymbolMap &Syms, ir::ConditionMap &Conds,
      const pta::PointsToResult &PTA);

  const ir::Function &function() const { return F; }

  //===--- Graph access ----------------------------------------------------===
  //
  // Adjacency is frozen into immutable CSR arrays (offset + edge array per
  // direction) once construction finishes; accessors hand out non-owning
  // spans over the arena-backed rows. Per-vertex edge order is the build
  // order, exactly as the mutable vectors stored it.

  Span<FlowEdge> flowsOut(const ir::Variable *V) const {
    return row(FlowOutOff, FlowOutE, V);
  }

  /// Reverse edges: who flows *into* V (edge.To is then the source).
  Span<FlowEdge> flowsIn(const ir::Variable *V) const {
    return row(FlowInOff, FlowInE, V);
  }

  Span<Use> usesOf(const ir::Variable *V) const {
    return row(UsesOff, UsesE, V);
  }

  /// All call statements in the function (for summary application).
  const std::vector<const ir::CallStmt *> &calls() const { return Calls; }

  //===--- Constraint queries ----------------------------------------------===
  //
  // Queries are thread-safe: each SEG serialises them on its own mutex
  // (the memo caches are lazy). Different functions' SEGs never contend,
  // which is where the checker-phase parallelism comes from.

  /// DD(v@s): the memoised data-dependence constraint closure of \p V.
  /// The returned reference is stable (map-node backed) and the closure is
  /// immutable once cached, so it may be read after the lock is released.
  const Closure &dd(const ir::Variable *V);

  /// CD(v@s): the control-dependence condition of \p S — branch literals up
  /// the FOW chain, with the DD closures of the branch variables folded in.
  Closure controlCond(const ir::Stmt *S);

  /// Equality between two values as a constraint (bool-aware).
  const smt::Expr *valueEq(const ir::Value *A, const ir::Value *B);

  /// The symbol of \p V (delegates to the symbol map).
  const smt::Expr *symbol(const ir::Value *V) { return Syms[V]; }

  //===--- Statistics -------------------------------------------------------

  size_t numVertices() const { return VertexId.size(); }
  size_t numEdges() const { return EdgeCount; }
  /// Measured heap footprint of the frozen graph: CSR arena bytes plus the
  /// vertex-id index and call list. Feeds `MemStats::noteSEGNodes`.
  size_t memoryBytes() const;

private:
  /// A symbolic definition in its frozen form: the dependence list is an
  /// arena-backed span, the record itself trivially destructible and
  /// arena-allocated (stable address — dd() walks these while holding
  /// QueryMu, and the arena never moves an allocation).
  struct LocalDef {
    const smt::Expr *Constraint; ///< This definition's own equation.
    Span<const ir::Variable *> Deps;
    bool OpensParam = false;
    const ir::CallStmt *OpenCall = nullptr;
    int OpenRecvIndex = 0;
  };
  /// Construction form of a LocalDef, used while build() precomputes load
  /// definitions and by makeLocalDef; freezeDef packs it into the arena.
  struct LocalDefInfo {
    const smt::Expr *Constraint = nullptr;
    std::vector<const ir::Variable *> Deps;
    bool OpensParam = false;
    const ir::CallStmt *OpenCall = nullptr;
    int OpenRecvIndex = 0;
  };

  void build(const pta::PointsToResult &PTA);
  void freeze();
  const Closure &ddImpl(const ir::Variable *V);
  Closure controlCondImpl(const ir::Stmt *S);
  void addFlow(const ir::Value *From, const ir::Variable *To,
               const smt::Expr *Cond, bool Direct, const ir::Stmt *Via);
  void addUse(const ir::Value *V, const ir::Stmt *S, UseKind K, int Index);
  const smt::Expr *boolExprOf(const ir::Value *V);
  LocalDefInfo makeLocalDef(const ir::Variable *V);
  /// Packs \p Info into the arena and returns the frozen record.
  const LocalDef *freezeDef(LocalDefInfo &&Info);
  const LocalDef &localDef(const ir::Variable *V);
  /// IR variables whose symbols occur in \p E (gate support variables).
  std::vector<const ir::Variable *> gateIRVars(const smt::Expr *E) const;

  const ir::Function &F;
  ir::SymbolMap &Syms;
  ir::ConditionMap &Conds;
  smt::ExprContext &Ctx;

  /// Mutable adjacency used only while build() runs; freeze() packs it
  /// into the CSR arrays below and drops it, so a live SEG holds no
  /// node-based adjacency maps.
  struct Builder {
    std::unordered_map<const ir::Variable *, std::vector<FlowEdge>> FlowOut;
    std::unordered_map<const ir::Variable *, std::vector<FlowEdge>> FlowIn;
    std::unordered_map<const ir::Variable *, std::vector<Use>> Uses;
    /// Load definitions precomputed during build(), in statement order (a
    /// vector, not a map, so the frozen arena layout is deterministic).
    std::vector<std::pair<const ir::Variable *, LocalDefInfo>> BuildDefs;
  };

  uint32_t vertexId(const ir::Variable *V);
  template <typename T>
  Span<T> row(const uint32_t *Off, const T *Edges,
              const ir::Variable *V) const {
    auto It = VertexId.find(V);
    if (It == VertexId.end())
      return {};
    uint32_t Id = It->second;
    return {Edges + Off[Id], Off[Id + 1] - Off[Id]};
  }

  std::unique_ptr<Builder> B = std::make_unique<Builder>();
  std::vector<const ir::CallStmt *> Calls;
  /// Insertion-ordered vertex ids: the CSR row index of each variable.
  /// The id lookup is a point query, never iterated, so pointer-hash
  /// ordering can never reach reports.
  std::unordered_map<const ir::Variable *, uint32_t> VertexId;
  std::vector<const ir::Variable *> VertexOrder;
  /// Frozen CSR adjacency: `*Off` has numVertices()+1 entries; row i of
  /// the edge array is [Off[i], Off[i+1]). All storage lives in `Mem`.
  /// The arena is unreported — its bytes are charged through the
  /// per-structure `noteSEGNodes` channel instead (see Pipeline).
  const uint32_t *FlowOutOff = nullptr, *FlowInOff = nullptr,
                 *UsesOff = nullptr;
  const FlowEdge *FlowOutE = nullptr, *FlowInE = nullptr;
  const Use *UsesE = nullptr;
  Arena Mem{/*Reported=*/false};
  /// Frozen symbolic definitions, indexed by vertex id (nullptr = not yet
  /// materialised; slots fill lazily under QueryMu). Variables that never
  /// became vertices (e.g. a load destination with no incoming flow) land
  /// in the small overflow map instead. The records and their dependence
  /// arrays live in `Mem`, so a fully-queried SEG keeps no per-definition
  /// map nodes.
  const LocalDef **DefByVertex = nullptr;
  std::unordered_map<const ir::Variable *, const LocalDef *> DefOverflow;
  /// Lazy memo table for the dd() closures (still a node-based map: dd()
  /// hands out stable references into DDCache).
  std::unordered_map<const ir::Variable *, Closure> DDCache;
  mutable std::mutex QueryMu; ///< Guards the lazy query caches above.
  size_t EdgeCount = 0;
};

} // namespace pinpoint::seg

#endif // PINPOINT_SEG_SEG_H
