//===- seg/SEGPrinter.cpp -----------------------------------------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "seg/SEGPrinter.h"

#include <map>
#include <sstream>

using namespace pinpoint::ir;

namespace pinpoint::seg {

namespace {

/// Escapes a label for dot.
std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\l";
      continue;
    }
    Out += C;
  }
  return Out;
}

} // namespace

std::string printCFG(const Function &F) {
  std::ostringstream OS;
  OS << "digraph \"CFG." << F.name() << "\" {\n"
     << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const BasicBlock *B : F.blocks()) {
    std::string Label = B->name() + ":\\l";
    for (const Stmt *S : B->stmts())
      Label += "  " + S->str() + "\\l";
    OS << "  \"" << B->name() << "\" [label=\"" << escape(Label) << "\"];\n";
    for (const BasicBlock *Succ : B->succs())
      OS << "  \"" << B->name() << "\" -> \"" << Succ->name() << "\";\n";
  }
  OS << "}\n";
  return OS.str();
}

std::string printSEG(const SEG &G) {
  const Function &F = G.function();
  std::ostringstream OS;
  OS << "digraph \"SEG." << F.name() << "\" {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=ellipse, fontname=\"monospace\"];\n";

  // Emit each variable once, with flow edges carrying condition labels.
  std::map<const Variable *, bool> Emitted;
  auto node = [&](const Variable *V) {
    if (!Emitted[V]) {
      Emitted[V] = true;
      const char *Shape = V->isParam()
                              ? (V->isAuxParam() ? "doublecircle" : "diamond")
                              : "ellipse";
      OS << "  \"" << V->name() << "\" [shape=" << Shape << "];\n";
    }
  };

  for (const BasicBlock *B : F.blocks())
    for (const Stmt *S : B->stmts()) {
      if (const Variable *D = S->definedVar())
        node(D);
      (void)S;
    }
  for (const Variable *P : F.params())
    node(P);

  // Walk flow edges via the vertices we know about (snapshot: every flow
  // target is itself a defined variable or parameter, so this is complete).
  std::vector<const Variable *> Snapshot;
  for (auto &[V, _] : Emitted)
    Snapshot.push_back(V);
  for (const Variable *V : Snapshot) {
    for (const FlowEdge &E : G.flowsOut(V)) {
      node(E.To);
      OS << "  \"" << V->name() << "\" -> \"" << E.To->name() << "\"";
      std::string Attr;
      if (!E.Cond->isTrue()) {
        // Conditions need the symbol table to print; keep labels short.
        Attr += "label=\"[cond]\"";
      }
      if (!E.Direct)
        Attr += std::string(Attr.empty() ? "" : ", ") + "style=dashed";
      if (!Attr.empty())
        OS << " [" << Attr << "]";
      OS << ";\n";
    }
  }
  OS << "}\n";
  return OS.str();
}

} // namespace pinpoint::seg
