//===- seg/SEGPrinter.h - Graphviz output for SEGs and CFGs ----------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz dot renderers for debugging and documentation: the CFG of a
/// function and its Symbolic Expression Graph (value-flow edges with their
/// condition labels, like the paper's Fig. 4).
///
//===----------------------------------------------------------------------===//

#ifndef PINPOINT_SEG_SEGPRINTER_H
#define PINPOINT_SEG_SEGPRINTER_H

#include "seg/SEG.h"

#include <string>

namespace pinpoint::seg {

/// Renders the function's CFG as a dot digraph.
std::string printCFG(const ir::Function &F);

/// Renders the SEG's value-flow subgraph as a dot digraph; edges carry
/// their conditions, dashed edges flow through operators.
std::string printSEG(const SEG &G);

} // namespace pinpoint::seg

#endif // PINPOINT_SEG_SEGPRINTER_H
