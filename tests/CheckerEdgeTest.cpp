//===- tests/CheckerEdgeTest.cpp - Checker edge cases ----------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "svfa/GlobalSVFA.h"

#include <gtest/gtest.h>

using namespace pinpoint::ir;

namespace pinpoint::svfa {
namespace {

class CheckerEdgeTest : public ::testing::Test {
protected:
  std::vector<Report> check(std::string_view Src,
                            const checkers::CheckerSpec &Spec,
                            GlobalOptions Opts = {}) {
    M = std::make_unique<Module>();
    std::vector<frontend::Diag> Diags;
    bool OK = frontend::parseModule(Src, *M, Diags);
    for (auto &D : Diags)
      ADD_FAILURE() << D.str();
    EXPECT_TRUE(OK);
    Ctx = std::make_unique<smt::ExprContext>();
    return checkModule(*M, *Ctx, Spec, Opts);
  }

  std::unique_ptr<Module> M;
  std::unique_ptr<smt::ExprContext> Ctx;
};

TEST_F(CheckerEdgeTest, StoreThroughFreedPointerIsASink) {
  auto Reports = check(R"(
    void f(int *p) {
      free(p);
      *p = 1;
    })",
                       checkers::useAfterFreeChecker());
  ASSERT_EQ(Reports.size(), 1u);
}

TEST_F(CheckerEdgeTest, TwoLevelEscapeAcrossThreeFunctions) {
  // The freed pointer escapes through **q in the bottom function and is
  // dereferenced two frames up — the full connector relay.
  auto Reports = check(R"(
    void bottom(int **q) {
      int *dead = malloc();
      *q = dead;
      free(dead);
    }
    void middle(int **r) {
      bottom(r);
    }
    int top() {
      int **h = malloc();
      int *x = malloc();
      *h = x;
      middle(h);
      int *got = *h;
      return *got;
    })",
                       checkers::useAfterFreeChecker());
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].SourceFn, "bottom");
  EXPECT_EQ(Reports[0].SinkFn, "top");
}

TEST_F(CheckerEdgeTest, BeyondDepthLimitStillSoundlyReported) {
  // A chain deeper than the context limit: conditions beyond the limit are
  // left open (unconstrained), so the bug is still reported (soundy), just
  // with less precise conditions.
  GlobalOptions O;
  O.MaxContextDepth = 2;
  auto Reports = check(R"(
    void f1(int *p) { free(p); }
    void f2(int *p) { f1(p); }
    void f3(int *p) { f2(p); }
    void f4(int *p) { f3(p); }
    void f5(int *p) { f4(p); }
    int top(int *p) {
      f5(p);
      return *p;
    })",
                       checkers::useAfterFreeChecker(), O);
  EXPECT_TRUE(Reports.empty())
      << "entries beyond the depth limit are dropped from summaries";
  // At the paper's depth 6 the same chain is found.
  auto Deep = check(R"(
    void f1(int *p) { free(p); }
    void f2(int *p) { f1(p); }
    void f3(int *p) { f2(p); }
    void f4(int *p) { f3(p); }
    void f5(int *p) { f4(p); }
    int top(int *p) {
      f5(p);
      return *p;
    })",
                    checkers::useAfterFreeChecker());
  EXPECT_EQ(Deep.size(), 1u);
}

TEST_F(CheckerEdgeTest, IndependentFreesDoNotCrossContaminate) {
  auto Reports = check(R"(
    int f(int *a, int *b) {
      free(a);
      int v = *b;
      free(b);
      return v;
    })",
                       checkers::useAfterFreeChecker());
  EXPECT_TRUE(Reports.empty());
}

TEST_F(CheckerEdgeTest, FreeInBothBranchesThenUse) {
  auto Reports = check(R"(
    int f(int *p, bool t) {
      if (t) { free(p); } else { free(p); }
      return *p;
    })",
                       checkers::useAfterFreeChecker());
  // Both branch frees reach the deref; distinct sources may each report.
  EXPECT_GE(Reports.size(), 1u);
}

TEST_F(CheckerEdgeTest, ReportsCarryValueFlowPaths) {
  auto Reports = check(R"(
    void rel(int *x) { free(x); }
    int f(int *p) {
      rel(p);
      return *p;
    })",
                       checkers::useAfterFreeChecker());
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_FALSE(Reports[0].Path.empty());
  EXPECT_EQ(Reports[0].Verdict, smt::SatResult::Sat);
}

TEST_F(CheckerEdgeTest, TaintSpreadsThroughArithmetic) {
  auto Reports = check(R"(
    void f() {
      int a = fgetc();
      int b = 2;
      int c = a * b + 7;
      fopen(c);
    })",
                       checkers::pathTraversalChecker());
  ASSERT_EQ(Reports.size(), 1u);
}

TEST_F(CheckerEdgeTest, PointerChecksDoNotSpreadThroughArithmetic) {
  // Deriving an int from a freed pointer and dereferencing something else
  // is not a use-after-free.
  auto Reports = check(R"(
    int f(int *p, int *q) {
      free(p);
      int v = *q;
      return v;
    })",
                       checkers::useAfterFreeChecker());
  EXPECT_TRUE(Reports.empty());
}

TEST_F(CheckerEdgeTest, SameSourceManySinksAllReported) {
  auto Reports = check(R"(
    int f(int *p) {
      free(p);
      int a = *p;
      int b = *p;
      return a + b;
    })",
                       checkers::useAfterFreeChecker());
  EXPECT_EQ(Reports.size(), 2u);
}

TEST_F(CheckerEdgeTest, ConditionalFreeUnconditionalUse) {
  // Reported: the t-path reaches the deref with the free done.
  auto Reports = check(R"(
    int f(int *p, bool t) {
      if (t) { free(p); }
      return *p;
    })",
                       checkers::useAfterFreeChecker());
  ASSERT_EQ(Reports.size(), 1u);
}

TEST_F(CheckerEdgeTest, FreeViaPhiOfTwoPointers) {
  // The freed value is one of two pointers; both deref sites after the
  // free are candidates, each under its gate.
  auto Reports = check(R"(
    int f(int *a, int *b, bool t) {
      int *sel = a;
      if (t) { sel = b; }
      free(sel);
      int va = *a;
      return va;
    })",
                       checkers::useAfterFreeChecker());
  // *a after free(sel) is a bug exactly when ¬t — satisfiable.
  ASSERT_EQ(Reports.size(), 1u);
}

TEST_F(CheckerEdgeTest, PhiGateContradictionPrunesAliasedUse) {
  // free(sel) where sel == b under t; dereferencing b under ¬t afterwards
  // needs t ∧ ¬t: pruned.
  auto Reports = check(R"(
    int f(int *a, int *b, bool t) {
      int *sel = a;
      if (t) { sel = b; }
      free(sel);
      int v = 0;
      if (!t) {
        int *other = b;
        v = *other;
      }
      return v;
    })",
                       checkers::useAfterFreeChecker());
  EXPECT_TRUE(Reports.empty());
}

} // namespace
} // namespace pinpoint::svfa
