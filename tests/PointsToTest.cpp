//===- tests/PointsToTest.cpp - Quasi path-sensitive PTA tests -------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/SSA.h"
#include "pta/PointsTo.h"
#include "smt/Solver.h"

#include <gtest/gtest.h>

using namespace pinpoint::ir;

namespace pinpoint::pta {
namespace {

class PTATest : public ::testing::Test {
protected:
  /// Parses, SSA-converts, and analyses one function.
  PointsToResult analyze(std::string_view Src, const std::string &Fn = "f",
                         PTAConfig Config = {}) {
    M = std::make_unique<Module>();
    std::vector<frontend::Diag> Diags;
    bool OK = frontend::parseModule(Src, *M, Diags);
    for (auto &D : Diags)
      ADD_FAILURE() << D.str();
    EXPECT_TRUE(OK);
    F = M->function(Fn);
    EXPECT_NE(F, nullptr);
    F->recomputeCFGEdges();
    constructSSA(*F);
    Syms = std::make_unique<SymbolMap>(Ctx);
    Conds = std::make_unique<ConditionMap>(*F, *Syms);
    return runPointsTo(*F, *Syms, *Conds, Config);
  }

  /// Finds the single load with the given deref count.
  const LoadStmt *findLoad(uint32_t Derefs = 1, int Skip = 0) {
    for (BasicBlock *B : F->blocks())
      for (Stmt *S : B->stmts())
        if (auto *L = dyn_cast<LoadStmt>(S))
          if (L->derefs() == Derefs && Skip-- == 0)
            return L;
    return nullptr;
  }

  /// Names of IR values in the dep set (initial contents print as "<init>").
  std::vector<std::string> depNames(const ValSet &Deps) {
    std::vector<std::string> Out;
    for (auto &[CV, C] : Deps)
      Out.push_back(CV.isInitial() ? "<init>" : CV.V->str());
    std::sort(Out.begin(), Out.end());
    return Out;
  }

  smt::ExprContext Ctx;
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  std::unique_ptr<SymbolMap> Syms;
  std::unique_ptr<ConditionMap> Conds;
};

TEST_F(PTATest, MallocStoreLoadConnects) {
  auto R = analyze(R"(
    int f(int *a) {
      int **ptr = malloc();
      *ptr = a;
      int *v = *ptr;
      return *v;
    })");
  const LoadStmt *L = findLoad(1);
  ASSERT_NE(L, nullptr);
  const ValSet &Deps = R.loadDeps(L);
  ASSERT_EQ(Deps.size(), 1u);
  EXPECT_FALSE(Deps[0].Item.isInitial());
  EXPECT_EQ(Deps[0].Item.V, F->params()[0]);
  EXPECT_TRUE(Deps[0].Cond->isTrue());
}

TEST_F(PTATest, StrongUpdateKillsOldContents) {
  auto R = analyze(R"(
    int f(int *a, int *b) {
      int **h = malloc();
      *h = a;
      *h = b;
      int *v = *h;
      return *v;
    })");
  const LoadStmt *L = findLoad(1);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(depNames(R.loadDeps(L)), std::vector<std::string>{"b"});
}

TEST_F(PTATest, ConditionalStoreYieldsConditionalDeps) {
  // Paper Figure 2(b): contents of *ptr after the diamond are
  // {(stored-in-then, θ), (stored-before, ¬θ)}.
  auto R = analyze(R"(
    int f(bool t, int *a, int *b) {
      int **h = malloc();
      *h = a;
      if (t) { *h = b; }
      int *v = *h;
      return *v;
    })");
  const LoadStmt *L = findLoad(1);
  ASSERT_NE(L, nullptr);
  const ValSet &Deps = R.loadDeps(L);
  ASSERT_EQ(Deps.size(), 2u);
  std::vector<std::string> Names = depNames(Deps);
  EXPECT_EQ(Names, (std::vector<std::string>{"a", "b"}));
  // Conditions must be complementary: one θ, one ¬θ.
  const smt::Expr *CondA = nullptr, *CondB = nullptr;
  for (auto &[CV, C] : Deps)
    (CV.V->str() == "a" ? CondA : CondB) = C;
  EXPECT_EQ(Ctx.mkOr(CondA, CondB), Ctx.getTrue());
  EXPECT_EQ(Ctx.mkAnd(CondA, CondB), Ctx.getFalse());
}

TEST_F(PTATest, QuasiPathSensitivityPrunesContradictoryChains) {
  // Same branch variable tested twice: the value stored under t in the
  // first diamond cannot survive into the else-arm of the second.
  auto R = analyze(R"(
    int f(bool t, int *a, int *b, int *c) {
      int **h = malloc();
      *h = a;
      if (t) { *h = b; }
      if (t) { *h = c; }
      int *v = *h;
      return *v;
    })");
  const LoadStmt *L = findLoad(1);
  ASSERT_NE(L, nullptr);
  // b is dead: on the t path it is overwritten by c, on the ¬t path it was
  // never stored. Only the linear filter sees this (no SMT involved).
  EXPECT_EQ(depNames(R.loadDeps(L)), (std::vector<std::string>{"a", "c"}));
  EXPECT_GT(R.condsPruned(), 0u);
}

TEST_F(PTATest, RefDiscoveredForParameterLoads) {
  auto R = analyze(R"(
    int f(int **q) {
      int *v = *q;
      return *v;
    })");
  // *q is REF(q,1); *v dereferences the loaded value, whose initial target
  // is *(q,2) — REF(q,2).
  const Variable *Q = F->params()[0];
  EXPECT_TRUE(R.refs().count({Q, 1}));
  EXPECT_TRUE(R.refs().count({Q, 2}));
  EXPECT_TRUE(R.mods().empty());
}

TEST_F(PTATest, ModDiscoveredForParameterStores) {
  auto R = analyze(R"(
    void f(int **q, int *x) {
      *q = x;
    })");
  const Variable *Q = F->params()[0];
  EXPECT_TRUE(R.mods().count({Q, 1}));
  EXPECT_TRUE(R.refs().empty());
}

TEST_F(PTATest, PaperBarFunctionModRef) {
  // The paper's bar(): a load (*q != 0) and two stores *q = c / *q = b.
  auto R = analyze(R"(
    void f(int **q, int *b) {
      int *c = malloc();
      if (*q != 0) {
        *q = c; free(c);
      } else {
        int t = 1;
        if (t > 0) { *q = b; }
      }
    })");
  const Variable *Q = F->params()[0];
  EXPECT_TRUE(R.refs().count({Q, 1}));
  EXPECT_TRUE(R.mods().count({Q, 1}));
}

TEST_F(PTATest, TwoLevelStoreAndLoad) {
  auto R = analyze(R"(
    int f(int **q, int x) {
      **q = x;
      int v = **q;
      return v;
    })");
  const LoadStmt *L = findLoad(2);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(depNames(R.loadDeps(L)), std::vector<std::string>{"x"});
  const Variable *Q = F->params()[0];
  EXPECT_TRUE(R.mods().count({Q, 2}));
}

TEST_F(PTATest, PointerPhiMergesTargets) {
  auto R = analyze(R"(
    void f(bool t, int *a, int *b, int x) {
      int *p = a;
      if (t) { } else { p = b; }
      *p = x;
    })");
  // The store through the phi'd pointer MODs both *(a,1) and *(b,1).
  const Variable *A = F->params()[1];
  const Variable *B = F->params()[2];
  EXPECT_TRUE(R.mods().count({A, 1}));
  EXPECT_TRUE(R.mods().count({B, 1}));
}

TEST_F(PTATest, OpaqueCalleePointerStillConnectsLocally) {
  auto R = analyze(R"(
    int f(int x) {
      int *r = mystery();
      *r = x;
      int v = *r;
      return v;
    })");
  const LoadStmt *L = findLoad(1);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(depNames(R.loadDeps(L)), std::vector<std::string>{"x"});
  // No parameter is involved: no REF/MOD.
  EXPECT_TRUE(R.refs().empty());
  EXPECT_TRUE(R.mods().empty());
}

TEST_F(PTATest, LoadOfUninitialisedMallocIsUnconstrained) {
  auto R = analyze(R"(
    int f() {
      int **h = malloc();
      int *v = *h;
      return *v;
    })");
  const LoadStmt *L = findLoad(1);
  ASSERT_NE(L, nullptr);
  const ValSet &Deps = R.loadDeps(L);
  ASSERT_EQ(Deps.size(), 1u);
  EXPECT_TRUE(Deps[0].Item.isInitial());
}

TEST_F(PTATest, AuxParamBindingRedirectsPointsTo) {
  // Simulate the post-transform world: F is an extra parameter bound to
  // *(q,1); dereferencing F must read *(q,2).
  auto R0 = analyze(R"(
    int f(int **q, int *auxF) {
      int v = *auxF;
      return v;
    })");
  (void)R0;
  // Re-run with the binding in place.
  PTAConfig Config;
  Config.AuxParams[F->params()[1]] = {F->params()[0], 1};
  Syms = std::make_unique<SymbolMap>(Ctx);
  Conds = std::make_unique<ConditionMap>(*F, *Syms);
  auto R = runPointsTo(*F, *Syms, *Conds, Config);
  const Variable *Q = F->params()[0];
  EXPECT_TRUE(R.refs().count({Q, 2}));
}

TEST_F(PTATest, PointsToSetsExposedPerVariable) {
  auto R = analyze(R"(
    void f(int *a) {
      int **h = malloc();
      *h = a;
    })");
  // h points to the malloc cell.
  const Variable *H = nullptr;
  for (const Variable *V : F->vars())
    if (V->type().pointerDepth() == 2 && V->def())
      H = V;
  ASSERT_NE(H, nullptr);
  const PtsSet &Pts = R.pointsTo(H);
  ASSERT_EQ(Pts.size(), 1u);
  EXPECT_EQ(Pts[0].Item->kind(), MemObject::Alloc);
}

TEST_F(PTATest, LinearFilterCanBeDisabled) {
  PTAConfig Config;
  Config.UseLinearFilter = false;
  auto R = analyze(R"(
    int f(bool t, int *a, int *b, int *c) {
      int **h = malloc();
      *h = a;
      if (t) { *h = b; }
      if (t) { *h = c; }
      int *v = *h;
      return *v;
    })",
                   "f", Config);
  const LoadStmt *L = findLoad(1);
  ASSERT_NE(L, nullptr);
  // Without pruning, the stale b entry survives (with an UNSAT condition).
  EXPECT_EQ(depNames(R.loadDeps(L)),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(R.condsPruned(), 0u);
}

TEST_F(PTATest, DepConditionsAreSMTCheckable) {
  // End-to-end sanity: the condition on the pruned-looking-but-feasible
  // dependence is SAT, the contradictory one is caught by Z3/mini too.
  auto R = analyze(R"(
    int f(bool t, int *a, int *b) {
      int **h = malloc();
      *h = a;
      if (t) { *h = b; }
      int *v = *h;
      return *v;
    })");
  const LoadStmt *L = findLoad(1);
  auto Solver = smt::createDefaultSolver(Ctx);
  for (auto &[CV, C] : R.loadDeps(L))
    EXPECT_EQ(Solver->checkSat(C), smt::SatResult::Sat);
}

} // namespace
} // namespace pinpoint::pta
