//===- tests/FrontendTest.cpp - Lexer & parser tests -----------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace pinpoint::ir;

namespace pinpoint::frontend {
namespace {

//===----------------------------------------------------------------------===
// Lexer
//===----------------------------------------------------------------------===

std::vector<Token> lexAll(std::string_view Src) {
  Lexer L(Src);
  std::vector<Token> Out;
  while (!L.peek().is(TokKind::Eof))
    Out.push_back(L.next());
  return Out;
}

TEST(Lexer, TokenisesPunctuationAndOperators) {
  auto Toks = lexAll("( ) { } , ; = * + - ! && || == != < <= > >=");
  std::vector<TokKind> Kinds;
  for (auto &T : Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokKind> Expected = {
      TokKind::LParen, TokKind::RParen, TokKind::LBrace,  TokKind::RBrace,
      TokKind::Comma,  TokKind::Semi,   TokKind::Assign,  TokKind::Star,
      TokKind::Plus,   TokKind::Minus,  TokKind::Bang,    TokKind::AmpAmp,
      TokKind::PipePipe, TokKind::EqEq, TokKind::NotEq,   TokKind::Lt,
      TokKind::Le,     TokKind::Gt,     TokKind::Ge};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, KeywordsVsIdentifiers) {
  auto Toks = lexAll("int intx if iffy while null");
  EXPECT_EQ(Toks[0].Kind, TokKind::KwInt);
  EXPECT_EQ(Toks[1].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[2].Kind, TokKind::KwIf);
  EXPECT_EQ(Toks[3].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[4].Kind, TokKind::KwWhile);
  EXPECT_EQ(Toks[5].Kind, TokKind::KwNull);
}

TEST(Lexer, NumbersHaveValues) {
  auto Toks = lexAll("0 42 123456");
  EXPECT_EQ(Toks[0].Number, 0);
  EXPECT_EQ(Toks[1].Number, 42);
  EXPECT_EQ(Toks[2].Number, 123456);
}

TEST(Lexer, CommentsAreSkipped) {
  auto Toks = lexAll("a // comment\n b /* block\n comment */ c");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
  EXPECT_EQ(Toks[2].Text, "c");
}

TEST(Lexer, TracksLineNumbers) {
  auto Toks = lexAll("a\nb\n  c");
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[2].Loc.Line, 3u);
  EXPECT_EQ(Toks[2].Loc.Col, 3u);
}

//===----------------------------------------------------------------------===
// Parser
//===----------------------------------------------------------------------===

/// Parses and expects success; returns the module.
std::unique_ptr<Module> parseOK(std::string_view Src) {
  auto M = std::make_unique<Module>();
  std::vector<Diag> Diags;
  bool OK = parseModule(Src, *M, Diags);
  for (auto &D : Diags)
    ADD_FAILURE() << D.str();
  EXPECT_TRUE(OK);
  return M;
}

TEST(Parser, EmptyVoidFunction) {
  auto M = parseOK("void f() { }");
  Function *F = M->function("f");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->returnType().isVoid());
  EXPECT_EQ(verifyModule(*M).size(), 0u);
}

TEST(Parser, ParametersAndTypes) {
  auto M = parseOK("int g(int a, int *p, int **q, bool b) { return a; }");
  Function *F = M->function("g");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(F->params().size(), 4u);
  EXPECT_TRUE(F->params()[0]->type().isInt());
  EXPECT_EQ(F->params()[1]->type().pointerDepth(), 1);
  EXPECT_EQ(F->params()[2]->type().pointerDepth(), 2);
  EXPECT_TRUE(F->params()[3]->type().isBool());
}

TEST(Parser, SingleReturnInvariant) {
  auto M = parseOK(R"(
    int f(int a) {
      if (a > 0) return 1;
      return 2;
    })");
  auto Errs = verifyModule(*M);
  EXPECT_EQ(Errs.size(), 0u) << (Errs.empty() ? "" : Errs[0]);
  // Exactly one ReturnStmt.
  Function *F = M->function("f");
  int Returns = 0;
  for (BasicBlock *B : F->blocks())
    for (Stmt *S : B->stmts())
      if (isa<ReturnStmt>(S))
        ++Returns;
  EXPECT_EQ(Returns, 1);
}

TEST(Parser, IfElseProducesDiamond) {
  auto M = parseOK(R"(
    int f(int a) {
      int x = 0;
      if (a > 1) { x = 1; } else { x = 2; }
      return x;
    })");
  Function *F = M->function("f");
  // entry, then, else, join, exit (dead blocks pruned).
  EXPECT_GE(F->blocks().size(), 5u);
  EXPECT_EQ(verifyModule(*M).size(), 0u);
}

TEST(Parser, WhileIsUnrolledOnce) {
  auto M = parseOK(R"(
    int f(int n) {
      int i = 0;
      while (i < n) { i = i + 1; }
      return i;
    })");
  // Soundiness: the CFG must be acyclic — the verifier checks that.
  EXPECT_EQ(verifyModule(*M).size(), 0u);
}

TEST(Parser, LoadsAndStores) {
  auto M = parseOK(R"(
    int f(int **q) {
      int *p = *q;
      int v = **q;
      *q = p;
      **q = v + 1;
      return v;
    })");
  Function *F = M->function("f");
  int Loads = 0, Stores = 0;
  uint32_t MaxLoadDerefs = 0, MaxStoreDerefs = 0;
  for (BasicBlock *B : F->blocks())
    for (Stmt *S : B->stmts()) {
      if (auto *L = dyn_cast<LoadStmt>(S)) {
        ++Loads;
        MaxLoadDerefs = std::max(MaxLoadDerefs, L->derefs());
      }
      if (auto *St = dyn_cast<StoreStmt>(S)) {
        ++Stores;
        MaxStoreDerefs = std::max(MaxStoreDerefs, St->derefs());
      }
    }
  EXPECT_EQ(Loads, 2);
  EXPECT_EQ(Stores, 2);
  EXPECT_EQ(MaxLoadDerefs, 2u);
  EXPECT_EQ(MaxStoreDerefs, 2u);
}

TEST(Parser, MallocAdaptsToExpectedType) {
  auto M = parseOK("void f() { int **p = malloc(); }");
  Function *F = M->function("f");
  const CallStmt *Call = nullptr;
  for (BasicBlock *B : F->blocks())
    for (Stmt *S : B->stmts())
      if (auto *C = dyn_cast<CallStmt>(S))
        Call = C;
  ASSERT_NE(Call, nullptr);
  ASSERT_NE(Call->receiver(), nullptr);
  EXPECT_EQ(Call->receiver()->type().pointerDepth(), 2);
}

TEST(Parser, FreeIsAVoidCall) {
  auto M = parseOK("void f(int *p) { free(p); }");
  Function *F = M->function("f");
  const CallStmt *Call = nullptr;
  for (BasicBlock *B : F->blocks())
    for (Stmt *S : B->stmts())
      if (auto *C = dyn_cast<CallStmt>(S))
        Call = C;
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->calleeName(), "free");
  EXPECT_EQ(Call->receiver(), nullptr);
  EXPECT_TRUE(Call->auxReceivers().empty());
}

TEST(Parser, CallsResolveForwardReferences) {
  auto M = parseOK(R"(
    int caller() { int *p = callee(); return *p; }
    int *callee() { return null; }
  )");
  Function *F = M->function("caller");
  const CallStmt *Call = nullptr;
  for (BasicBlock *B : F->blocks())
    for (Stmt *S : B->stmts())
      if (auto *C = dyn_cast<CallStmt>(S))
        Call = C;
  ASSERT_NE(Call, nullptr);
  ASSERT_NE(Call->receiver(), nullptr);
  EXPECT_EQ(Call->receiver()->type().pointerDepth(), 1);
}

TEST(Parser, NullAdaptsToContext) {
  auto M = parseOK("void f() { int **q = null; }");
  Function *F = M->function("f");
  const AssignStmt *A = nullptr;
  for (BasicBlock *B : F->blocks())
    for (Stmt *S : B->stmts())
      if (auto *AS = dyn_cast<AssignStmt>(S))
        A = AS;
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->src()->type().pointerDepth(), 2);
}

TEST(Parser, OperatorPrecedence) {
  // a + b * c < d && e  parses as ((a + (b*c)) < d) && e.
  auto M = parseOK(R"(
    bool f(int a, int b, int c, int d, bool e) {
      return a + b * c < d && e;
    })");
  EXPECT_EQ(verifyModule(*M).size(), 0u);
}

TEST(Parser, SourceLocationsPointAtStatements) {
  auto M = parseOK("void f(int *p) {\n  free(p);\n}");
  Function *F = M->function("f");
  const CallStmt *Call = nullptr;
  for (BasicBlock *B : F->blocks())
    for (Stmt *S : B->stmts())
      if (auto *C = dyn_cast<CallStmt>(S))
        Call = C;
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->loc().Line, 2u);
}

TEST(Parser, BlockScopingShadowsOuter) {
  auto M = parseOK(R"(
    int f() {
      int x = 1;
      { int y = 2; x = y; }
      return x;
    })");
  EXPECT_EQ(verifyModule(*M).size(), 0u);
}

//===--- Error cases -------------------------------------------------------===

std::vector<Diag> parseErr(std::string_view Src) {
  Module M;
  std::vector<Diag> Diags;
  bool OK = parseModule(Src, M, Diags);
  EXPECT_FALSE(OK);
  return Diags;
}

TEST(ParserErrors, UndeclaredVariable) {
  auto Diags = parseErr("int f() { return zork; }");
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Msg.find("undeclared"), std::string::npos);
}

TEST(ParserErrors, Redeclaration) {
  auto Diags = parseErr("void f() { int x = 0; int x = 1; }");
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Msg.find("redeclaration"), std::string::npos);
}

TEST(ParserErrors, OverDereference) {
  auto Diags = parseErr("int f(int *p) { return **p; }");
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Msg.find("dereference"), std::string::npos);
}

TEST(ParserErrors, ReturnValueFromVoid) {
  auto Diags = parseErr("void f() { return 1; }");
  ASSERT_FALSE(Diags.empty());
}

TEST(ParserErrors, DuplicateFunction) {
  auto Diags = parseErr("void f() {} void f() {}");
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Msg.find("redefinition"), std::string::npos);
}

TEST(ParserErrors, UnterminatedBlock) {
  auto Diags = parseErr("void f() { int x = 1; ");
  ASSERT_FALSE(Diags.empty());
}

//===----------------------------------------------------------------------===
// Nesting-depth cap (run-lifecycle resilience: adversarial input must be
// diagnosed, never allowed to overflow the recursive-descent stack)
//===----------------------------------------------------------------------===

std::string nestedParens(int N, const std::string &Core) {
  std::string E(N, '(');
  E += Core;
  E += std::string(N, ')');
  return "int f(int a) { return " + E + "; }";
}

std::string nestedBlocks(int N) {
  std::string S = "void f() { int x = 0; ";
  for (int I = 0; I < N; ++I)
    S += "if (x < 1) { ";
  S += "x = 1; ";
  S += std::string(N, '}');
  S += " }";
  return S;
}

TEST(ParserDepth, DeepParensDiagnosedNotCrashed) {
  // 5000 levels would overflow the parse stack without the cap; with it,
  // the parser reports a diagnostic and returns.
  auto Diags = parseErr(nestedParens(5000, "a"));
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Msg.find("nesting too deep"), std::string::npos);
}

TEST(ParserDepth, DeepUnaryDiagnosedNotCrashed) {
  std::string E(5000, '!');
  auto Diags =
      parseErr("int f(int a) { return " + E + "(a < 1); }");
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Msg.find("nesting too deep"), std::string::npos);
}

TEST(ParserDepth, DeepBlocksDiagnosedNotCrashed) {
  auto Diags = parseErr(nestedBlocks(5000));
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Msg.find("nesting too deep"), std::string::npos);
}

TEST(ParserDepth, ShallowNestingStillParses) {
  // Well under the cap (each paren level costs two recursion frames):
  // legitimate code is unaffected.
  Module M1;
  std::vector<Diag> D1;
  EXPECT_TRUE(parseModule(nestedParens(40, "a"), M1, D1)) << nestedParens(40, "a");
  EXPECT_TRUE(D1.empty());

  Module M2;
  std::vector<Diag> D2;
  EXPECT_TRUE(parseModule(nestedBlocks(50), M2, D2));
  EXPECT_TRUE(D2.empty());
}

} // namespace
} // namespace pinpoint::frontend
