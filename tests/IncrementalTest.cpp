//===- tests/IncrementalTest.cpp - Incremental reanalysis differential tests ===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The correctness bar of the persistent summary cache (`--cache-dir`) is
/// absolute: a warm, cold or partially-invalidated run must be
/// *indistinguishable* from a from-scratch analysis — same reports, same
/// degradation events — with the cache visible only in its own counters.
/// These tests enforce that differentially:
///
///  * full vs warm-cache vs single-function-edited runs over generated
///    subjects, across checkers and jobs ∈ {1, 4};
///  * invalidation granularity on a handcrafted call chain — exactly the
///    edited SCC plus its transitive callers rebuild;
///  * robustness: truncated, bit-flipped and version-mismatched entry
///    files are detected, logged as degradation events, and silently fall
///    back to a full rebuild (never a crash, never a wrong report),
///    including via the `cache-read` injected fault;
///  * read-only mode writes nothing; nondeterministically degraded chains
///    are never stored;
///  * the serialisation layer itself (writer/reader round trips, bounds
///    checks, store/load integrity);
///  * `GlobalSVFA::Stats` being pollable from another thread while `run()`
///    is in flight (exercised under TSan in CI).
///
//===----------------------------------------------------------------------===//

#include "checkers/SpecialCheckers.h"
#include "frontend/Parser.h"
#include "support/FaultInjector.h"
#include "support/Hasher.h"
#include "support/ResourceGovernor.h"
#include "support/Serializer.h"
#include "support/Statistics.h"
#include "support/SummaryCache.h"
#include "support/ThreadPool.h"
#include "svfa/GlobalSVFA.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace pinpoint;

namespace pinpoint::svfa {
namespace {

//===----------------------------------------------------------------------===
// Harness
//===----------------------------------------------------------------------===

/// A fresh cache directory under the test working directory, removed on
/// scope exit.
class TempCacheDir {
public:
  explicit TempCacheDir(const std::string &Tag) {
    Path = "inc_cache_" + Tag + "_" +
           std::to_string(Counter.fetch_add(1, std::memory_order_relaxed));
    std::filesystem::remove_all(Path);
  }
  ~TempCacheDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  const std::string &path() const { return Path; }

private:
  static inline std::atomic<uint64_t> Counter{0};
  std::string Path;
};

/// Snapshot of the global cache counters; tests work in deltas because the
/// counters are cumulative across the whole test process.
struct CacheCounters {
  int64_t Hits = 0, Misses = 0, Invalidated = 0, Corrupt = 0, Stored = 0;

  static CacheCounters now() {
    Counters &C = Counters::get();
    return {C.value("cache.hits"), C.value("cache.misses"),
            C.value("cache.invalidated"), C.value("cache.corrupt"),
            C.value("cache.stored")};
  }
  CacheCounters operator-(const CacheCounters &O) const {
    return {Hits - O.Hits, Misses - O.Misses, Invalidated - O.Invalidated,
            Corrupt - O.Corrupt, Stored - O.Stored};
  }
};

std::string render(const Report &R) {
  std::string Out = R.Checker + "|" + R.SourceFn + ":" + R.Source.str() +
                    "->" + R.SinkFn + ":" + R.Sink.str() + "|" +
                    smt::toString(R.Verdict);
  for (const std::string &Step : R.Path)
    Out += "|" + Step;
  return Out;
}

/// One full analysis run and everything the differential comparison needs.
struct RunResult {
  std::vector<std::string> Reports;
  /// Sorted multiset of degradation events, cache-stage events excluded
  /// (those are the cache's own, legitimately warm-vs-cold-different
  /// channel — everything else must match exactly).
  std::multiset<std::string> Degradations;
  CacheCounters Cache; ///< Deltas attributable to this run.
  size_t NumFunctions = 0;
};

RunResult runAnalysis(const std::string &Src,
                      const checkers::CheckerSpec &Spec, unsigned Jobs,
                      SummaryCache *Cache, const std::string &FaultSpec = "") {
  RunResult Out;
  CacheCounters Before = CacheCounters::now();

  ir::Module M;
  std::vector<frontend::Diag> Diags;
  EXPECT_TRUE(frontend::parseModule(Src, M, Diags));
  for (auto &D : Diags)
    ADD_FAILURE() << D.str();
  Out.NumFunctions = M.functions().size();
  smt::ExprContext Ctx;

  FaultInjector FI;
  if (!FaultSpec.empty()) {
    std::string Err;
    EXPECT_TRUE(FI.parse(FaultSpec, Err)) << Err;
  }
  Budget Bud;
  ResourceGovernor Gov(Bud, std::move(FI));
  if (Cache) {
    std::string Err;
    EXPECT_TRUE(Cache->prepare(Err)) << Err;
  }

  std::unique_ptr<ThreadPool> Pool;
  if (Jobs > 1)
    Pool = std::make_unique<ThreadPool>(Jobs);

  PipelineOptions PO;
  PO.Governor = &Gov;
  PO.Pool = Pool.get();
  PO.Cache = Cache;
  AnalyzedModule AM(M, Ctx, PO);

  GlobalOptions GO;
  GO.Governor = &Gov;
  GO.Pool = Pool.get();
  GlobalSVFA Engine(AM, Spec, GO);
  for (const Report &R : Engine.run())
    Out.Reports.push_back(render(R));

  for (const DegradationEvent &E : Gov.log().events())
    if (E.Stage != "cache")
      Out.Degradations.insert(E.Stage + "|" + E.Function + "|" +
                              std::to_string(static_cast<int>(E.Kind)) + "|" +
                              E.Detail);
  Out.Cache = CacheCounters::now() - Before;
  return Out;
}

/// Cache-stage degradation kinds seen by a run (the channel excluded from
/// the differential comparison, asserted on by the robustness tests).
std::multiset<DegradationKind> cacheEvents(const std::string &Src,
                                           SummaryCache *Cache,
                                           const std::string &FaultSpec = "") {
  ir::Module M;
  std::vector<frontend::Diag> Diags;
  EXPECT_TRUE(frontend::parseModule(Src, M, Diags));
  smt::ExprContext Ctx;
  FaultInjector FI;
  if (!FaultSpec.empty()) {
    std::string Err;
    EXPECT_TRUE(FI.parse(FaultSpec, Err)) << Err;
  }
  Budget Bud;
  ResourceGovernor Gov(Bud, std::move(FI));
  PipelineOptions PO;
  PO.Governor = &Gov;
  PO.Cache = Cache;
  AnalyzedModule AM(M, Ctx, PO);
  std::multiset<DegradationKind> Out;
  for (const DegradationEvent &E : Gov.log().events())
    if (E.Stage == "cache")
      Out.insert(E.Kind);
  return Out;
}

workload::WorkloadConfig subjectConfig(uint64_t Seed) {
  workload::WorkloadConfig C;
  C.Seed = Seed;
  C.TargetLoC = 700;
  C.FeasibleUAF = 3;
  C.InfeasibleUAF = 2;
  C.FeasibleDF = 2;
  C.FeasibleTaint = 2;
  C.AliasNoise = 3;
  C.CallDepth = 3;
  return C;
}

/// Deterministic single-function edit: a dead declaration appended after
/// the header of the \p Pick-th generated function (column-0 headers).
std::string mutateOneFunction(const std::string &Src, size_t Pick,
                              std::string *EditedName = nullptr) {
  std::vector<size_t> HeaderEnds;
  std::vector<std::string> Names;
  size_t Pos = 0;
  while (Pos < Src.size()) {
    size_t EOL = Src.find('\n', Pos);
    if (EOL == std::string::npos)
      EOL = Src.size();
    std::string Line = Src.substr(Pos, EOL - Pos);
    if (Line.rfind("int ", 0) == 0 && Line.find('(') != std::string::npos &&
        Line.size() >= 1 && Line.back() == '{') {
      HeaderEnds.push_back(EOL);
      size_t NameStart = Line.find_first_not_of("* ", 4);
      Names.push_back(
          Line.substr(NameStart, Line.find('(') - NameStart));
    }
    Pos = EOL + 1;
  }
  EXPECT_FALSE(HeaderEnds.empty());
  size_t Idx = Pick % HeaderEnds.size();
  if (EditedName)
    *EditedName = Names[Idx];
  std::string Out = Src;
  Out.insert(HeaderEnds[Idx], "\n  int zqcachepad = 7;");
  return Out;
}

//===----------------------------------------------------------------------===
// Differential harness: full vs warm vs edited
//===----------------------------------------------------------------------===

TEST(IncrementalDifferentialTest, WarmRunMatchesColdExactly) {
  const checkers::CheckerSpec Specs[] = {checkers::useAfterFreeChecker(),
                                         checkers::doubleFreeChecker(),
                                         checkers::pathTraversalChecker()};
  for (uint64_t Seed : {11u, 42u}) {
    workload::Workload W = workload::generate(subjectConfig(Seed));
    for (unsigned Jobs : {1u, 4u}) {
      TempCacheDir Dir("warm");
      SummaryCache Cache(Dir.path(), SummaryCache::Mode::ReadWrite);

      // Reference: no cache at all.
      RunResult Ref = runAnalysis(W.Source, Specs[0], Jobs, nullptr);
      // Cold populate, then warm.
      RunResult Cold = runAnalysis(W.Source, Specs[0], Jobs, &Cache);
      RunResult Warm = runAnalysis(W.Source, Specs[0], Jobs, &Cache);

      EXPECT_EQ(Ref.Reports, Cold.Reports) << "seed " << Seed;
      EXPECT_EQ(Ref.Reports, Warm.Reports) << "seed " << Seed;
      EXPECT_EQ(Ref.Degradations, Cold.Degradations);
      EXPECT_EQ(Ref.Degradations, Warm.Degradations);
      EXPECT_FALSE(Ref.Reports.empty()) << "vacuous comparison";

      // Cold stored everything it could; warm hit exactly that set and
      // rebuilt the rest.
      EXPECT_EQ(Cold.Cache.Hits, 0);
      EXPECT_EQ(Cold.Cache.Misses, (int64_t)Cold.NumFunctions);
      EXPECT_GT(Cold.Cache.Stored, 0);
      EXPECT_EQ(Warm.Cache.Hits, Cold.Cache.Stored);
      EXPECT_EQ(Warm.Cache.Misses,
                (int64_t)Warm.NumFunctions - Cold.Cache.Stored);
      EXPECT_EQ(Warm.Cache.Invalidated, 0);
      EXPECT_EQ(Warm.Cache.Corrupt, 0);

      // The other checkers see identical reports on the warm pipeline too
      // (the checker stage is downstream of everything the cache replays).
      for (const checkers::CheckerSpec &Spec : {Specs[1], Specs[2]}) {
        RunResult R1 = runAnalysis(W.Source, Spec, Jobs, nullptr);
        RunResult R2 = runAnalysis(W.Source, Spec, Jobs, &Cache);
        EXPECT_EQ(R1.Reports, R2.Reports)
            << "seed " << Seed << " checker " << Spec.Name;
      }
    }
  }
}

TEST(IncrementalDifferentialTest, EditedRunMatchesColdAndReusesCleanSCCs) {
  for (uint64_t Seed : {7u, 23u}) {
    workload::Workload W = workload::generate(subjectConfig(Seed));
    std::string Edited = mutateOneFunction(W.Source, Seed);
    for (unsigned Jobs : {1u, 4u}) {
      TempCacheDir Dir("edit");
      SummaryCache Cache(Dir.path(), SummaryCache::Mode::ReadWrite);
      const checkers::CheckerSpec Spec = checkers::useAfterFreeChecker();

      RunResult Cold = runAnalysis(W.Source, Spec, Jobs, &Cache);
      RunResult EditedRef = runAnalysis(Edited, Spec, Jobs, nullptr);
      RunResult EditedWarm = runAnalysis(Edited, Spec, Jobs, &Cache);

      EXPECT_EQ(EditedRef.Reports, EditedWarm.Reports)
          << "seed " << Seed << " jobs " << Jobs;
      EXPECT_EQ(EditedRef.Degradations, EditedWarm.Degradations);
      // The edit must not blow the whole cache away: untouched SCCs hit.
      EXPECT_GT(EditedWarm.Cache.Hits, 0) << "seed " << Seed;
      // And it must invalidate something (the edited chain).
      EXPECT_GT(EditedWarm.Cache.Invalidated, 0) << "seed " << Seed;
      EXPECT_EQ(EditedWarm.Cache.Hits + EditedWarm.Cache.Misses,
                (int64_t)EditedWarm.NumFunctions);
      (void)Cold;
    }
  }
}

//===----------------------------------------------------------------------===
// Invalidation granularity on a handcrafted chain
//===----------------------------------------------------------------------===

constexpr const char *ChainSrc = R"(int leaf(int *p) { free(p); return 0; }
int mid(int *p) { return leaf(p); }
int top(int *p) { return mid(p); }
int sibling(int *q) { free(q); return *q; }
int main() {
  int *a = malloc(4);
  top(a);
  *a = 1;
  int *b = malloc(4);
  sibling(b);
  free(b);
  return 0;
}
)";

TEST(IncrementalInvalidationTest, ExactlyDirtySCCAndTransitiveCallersRebuild) {
  const checkers::CheckerSpec Spec = checkers::useAfterFreeChecker();
  TempCacheDir Dir("chain");
  SummaryCache Cache(Dir.path(), SummaryCache::Mode::ReadWrite);

  RunResult Cold = runAnalysis(ChainSrc, Spec, 1, &Cache);
  EXPECT_EQ(Cold.Cache.Stored, 5);

  // Editing the chain's leaf dirties leaf, mid, top and main — but not
  // sibling, the one function outside the edited call chain.
  std::string LeafEdited(ChainSrc);
  LeafEdited.insert(LeafEdited.find("free(p)"), "int pad = 7; ");
  RunResult LeafRun = runAnalysis(LeafEdited, Spec, 1, &Cache);
  EXPECT_EQ(LeafRun.Cache.Hits, 1);
  EXPECT_EQ(LeafRun.Cache.Misses, 4);
  EXPECT_EQ(LeafRun.Cache.Invalidated, 4);

  // A second, stacked edit to sibling dirties only sibling and main; the
  // leaf chain (re-stored under its edited key by the previous run) is
  // reused wholesale.
  std::string SiblingEdited(LeafEdited);
  SiblingEdited.insert(SiblingEdited.find("free(q)"), "int pad = 7; ");
  RunResult SiblingRun = runAnalysis(SiblingEdited, Spec, 1, &Cache);
  EXPECT_EQ(SiblingRun.Cache.Hits, 3);
  EXPECT_EQ(SiblingRun.Cache.Misses, 2);
  EXPECT_EQ(SiblingRun.Cache.Invalidated, 2);

  // A pure layout change below every function body (appended comment-free
  // whitespace) keys identically: the fingerprint is content-based.
  RunResult Whitespace =
      runAnalysis(SiblingEdited + "\n\n", Spec, 1, &Cache);
  EXPECT_EQ(Whitespace.Cache.Invalidated, 0);
  EXPECT_EQ(Whitespace.Cache.Hits, 5);
}

//===----------------------------------------------------------------------===
// Robustness: corrupted, truncated, version-mismatched entries
//===----------------------------------------------------------------------===

class CacheRobustnessTest : public ::testing::Test {
protected:
  /// Populates a cache for ChainSrc and returns the baseline reports.
  std::vector<std::string> populate(SummaryCache &Cache) {
    RunResult Cold =
        runAnalysis(ChainSrc, checkers::useAfterFreeChecker(), 1, &Cache);
    EXPECT_EQ(Cold.Cache.Stored, 5);
    return Cold.Reports;
  }

  /// Warm run against the (possibly damaged) cache; expects byte-identical
  /// reports and returns the run's cache counter deltas.
  CacheCounters warmExpecting(SummaryCache &Cache,
                              const std::vector<std::string> &Baseline) {
    RunResult Warm =
        runAnalysis(ChainSrc, checkers::useAfterFreeChecker(), 1, &Cache);
    EXPECT_EQ(Warm.Reports, Baseline);
    return Warm.Cache;
  }
};

TEST_F(CacheRobustnessTest, TruncatedEntryFallsBackToRebuild) {
  TempCacheDir Dir("trunc");
  SummaryCache Cache(Dir.path(), SummaryCache::Mode::ReadWrite);
  std::vector<std::string> Baseline = populate(Cache);

  std::string Entry = Cache.entryPath("leaf");
  ASSERT_TRUE(std::filesystem::exists(Entry));
  std::filesystem::resize_file(Entry,
                               std::filesystem::file_size(Entry) / 2);

  CacheCounters C = warmExpecting(Cache, Baseline);
  EXPECT_EQ(C.Corrupt, 1);
  EXPECT_EQ(C.Hits, 4);
  std::multiset<DegradationKind> Events = cacheEvents(ChainSrc, &Cache);
  EXPECT_EQ(Events.count(DegradationKind::CacheCorrupt), 0u)
      << "rebuild must have re-stored a healthy entry";
}

TEST_F(CacheRobustnessTest, BitFlippedPayloadIsDetectedByChecksum) {
  TempCacheDir Dir("flip");
  SummaryCache Cache(Dir.path(), SummaryCache::Mode::ReadWrite);
  std::vector<std::string> Baseline = populate(Cache);

  std::string Entry = Cache.entryPath("mid");
  ASSERT_TRUE(std::filesystem::exists(Entry));
  {
    std::fstream F(Entry, std::ios::in | std::ios::out | std::ios::binary);
    F.seekg(0, std::ios::end);
    auto Size = static_cast<long>(F.tellg());
    ASSERT_GT(Size, 40);
    F.seekp(Size - 3);
    char B = 0;
    F.seekg(Size - 3);
    F.read(&B, 1);
    B ^= 0x40;
    F.seekp(Size - 3);
    F.write(&B, 1);
  }

  std::multiset<DegradationKind> Events = cacheEvents(ChainSrc, &Cache);
  EXPECT_EQ(Events.count(DegradationKind::CacheCorrupt), 1u);
  CacheCounters C = warmExpecting(Cache, Baseline);
  EXPECT_EQ(C.Corrupt, 0) << "the corrupt entry was rebuilt and re-stored";
  EXPECT_EQ(C.Hits, 5);
}

TEST_F(CacheRobustnessTest, VersionMismatchIsDetectedAndRebuilt) {
  TempCacheDir Dir("ver");
  SummaryCache Cache(Dir.path(), SummaryCache::Mode::ReadWrite);
  std::vector<std::string> Baseline = populate(Cache);

  std::string Entry = Cache.entryPath("top");
  {
    // The u32 format version sits right after the 4-byte magic.
    std::fstream F(Entry, std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(4);
    uint8_t Bumped = SummaryCache::FormatVersion + 1;
    F.write(reinterpret_cast<const char *>(&Bumped), 1);
  }

  std::multiset<DegradationKind> Events = cacheEvents(ChainSrc, &Cache);
  EXPECT_EQ(Events.count(DegradationKind::CacheCorrupt), 1u);
  CacheCounters C = warmExpecting(Cache, Baseline);
  EXPECT_EQ(C.Hits, 5);
}

TEST_F(CacheRobustnessTest, GarbageAndEmptyEntryFilesNeverCrash) {
  TempCacheDir Dir("garbage");
  SummaryCache Cache(Dir.path(), SummaryCache::Mode::ReadWrite);
  std::vector<std::string> Baseline = populate(Cache);

  {
    std::ofstream(Cache.entryPath("leaf"), std::ios::binary).write("", 0);
    std::ofstream G(Cache.entryPath("sibling"), std::ios::binary);
    for (int I = 0; I < 100; ++I)
      G.put(static_cast<char>(I * 37));
  }
  CacheCounters C = warmExpecting(Cache, Baseline);
  EXPECT_EQ(C.Corrupt, 2);
  EXPECT_EQ(C.Hits, 3);
}

TEST_F(CacheRobustnessTest, InjectedCacheReadFaultDegradesGracefully) {
  TempCacheDir Dir("fault");
  SummaryCache Cache(Dir.path(), SummaryCache::Mode::ReadWrite);
  std::vector<std::string> Baseline = populate(Cache);

  RunResult Warm = runAnalysis(ChainSrc, checkers::useAfterFreeChecker(), 1,
                               &Cache, "seed=7,cache-read=mid");
  EXPECT_EQ(Warm.Reports, Baseline);
  EXPECT_EQ(Warm.Cache.Corrupt, 1);
  EXPECT_EQ(Warm.Cache.Hits, 4);
  std::multiset<DegradationKind> Events =
      cacheEvents(ChainSrc, &Cache, "seed=7,cache-read=mid");
  EXPECT_EQ(Events.count(DegradationKind::InjectedFault), 1u);
}

//===----------------------------------------------------------------------===
// Write-side policy
//===----------------------------------------------------------------------===

TEST(CachePolicyTest, ReadOnlyModeNeverWrites) {
  TempCacheDir Dir("ro");
  SummaryCache Cache(Dir.path(), SummaryCache::Mode::Read);
  RunResult R =
      runAnalysis(ChainSrc, checkers::useAfterFreeChecker(), 1, &Cache);
  EXPECT_EQ(R.Cache.Misses, 5);
  EXPECT_EQ(R.Cache.Stored, 0);
  EXPECT_FALSE(std::filesystem::exists(Dir.path()))
      << "read mode must not even create the directory";
}

TEST(CachePolicyTest, NondeterministicallyDegradedChainsAreNotStored) {
  // leaf's pipeline throws: leaf (failed) and its transitive callers mid,
  // top and main (built against a degraded interface) must not be stored;
  // sibling — independent of the fault — must.
  TempCacheDir Dir("taint");
  SummaryCache Cache(Dir.path(), SummaryCache::Mode::ReadWrite);
  RunResult Faulty = runAnalysis(ChainSrc, checkers::useAfterFreeChecker(), 1,
                                 &Cache, "seed=7,pipeline-throw-fn=leaf");
  EXPECT_EQ(Faulty.Cache.Stored, 1);
  EXPECT_TRUE(std::filesystem::exists(Cache.entryPath("sibling")));
  EXPECT_FALSE(std::filesystem::exists(Cache.entryPath("leaf")));
  EXPECT_FALSE(std::filesystem::exists(Cache.entryPath("mid")));
  EXPECT_FALSE(std::filesystem::exists(Cache.entryPath("top")));
  EXPECT_FALSE(std::filesystem::exists(Cache.entryPath("main")));

  // A healthy follow-up run reuses sibling, rebuilds the chain fresh, and
  // reports exactly what a never-cached run reports.
  RunResult Ref = runAnalysis(ChainSrc, checkers::useAfterFreeChecker(), 1,
                              nullptr);
  RunResult Healthy = runAnalysis(ChainSrc, checkers::useAfterFreeChecker(),
                                  1, &Cache);
  EXPECT_EQ(Ref.Reports, Healthy.Reports);
  EXPECT_EQ(Healthy.Cache.Hits, 1);
  EXPECT_EQ(Healthy.Cache.Stored, 4);
}

//===----------------------------------------------------------------------===
// Serialisation layer
//===----------------------------------------------------------------------===

TEST(SerializerTest, RoundTripsEveryFieldType) {
  ByteWriter W;
  W.u8(0xab);
  W.u32(0xdeadbeef);
  W.u64(0x0123456789abcdefull);
  W.i64(-42);
  W.boolean(true);
  W.boolean(false);
  W.str("hello");
  W.str("");

  ByteReader R(W.buffer());
  EXPECT_EQ(R.u8(), 0xab);
  EXPECT_EQ(R.u32(), 0xdeadbeefu);
  EXPECT_EQ(R.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(R.i64(), -42);
  EXPECT_TRUE(R.boolean());
  EXPECT_FALSE(R.boolean());
  EXPECT_EQ(R.str(), "hello");
  EXPECT_EQ(R.str(), "");
  EXPECT_TRUE(R.atEnd());
}

TEST(SerializerTest, ReadingPastTheEndThrows) {
  ByteWriter W;
  W.u32(7);
  ByteReader R(W.buffer());
  EXPECT_EQ(R.u32(), 7u);
  EXPECT_THROW(R.u8(), SerializationError);

  // A string whose length prefix overruns the buffer must throw, not read
  // out of bounds.
  ByteWriter W2;
  W2.u32(1000);
  ByteReader R2(W2.buffer());
  EXPECT_THROW(R2.str(), SerializationError);
}

TEST(SummaryCacheTest, StoreLoadRoundTripAndStaleKey) {
  TempCacheDir Dir("unit");
  SummaryCache Cache(Dir.path(), SummaryCache::Mode::ReadWrite);
  std::string Err;
  ASSERT_TRUE(Cache.prepare(Err)) << Err;

  std::vector<uint8_t> Payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(Cache.store("fn", 0x1111, Payload));

  SummaryCache::Loaded L = Cache.load("fn", 0x1111);
  EXPECT_EQ(L.Status, SummaryCache::LoadStatus::Ok);
  EXPECT_EQ(L.Payload, Payload);

  EXPECT_EQ(Cache.load("fn", 0x2222).Status, SummaryCache::LoadStatus::Stale);
  EXPECT_EQ(Cache.load("other", 0x1111).Status,
            SummaryCache::LoadStatus::Missing);

  // Overwrite is atomic-replace: the new payload wins completely.
  std::vector<uint8_t> Payload2 = {9, 9};
  ASSERT_TRUE(Cache.store("fn", 0x3333, Payload2));
  SummaryCache::Loaded L2 = Cache.load("fn", 0x3333);
  EXPECT_EQ(L2.Status, SummaryCache::LoadStatus::Ok);
  EXPECT_EQ(L2.Payload, Payload2);
}

TEST(SummaryCacheTest, MissingDirectoryInReadModeJustMisses) {
  SummaryCache Cache("inc_cache_never_created", SummaryCache::Mode::Read);
  std::string Err;
  EXPECT_TRUE(Cache.prepare(Err));
  EXPECT_EQ(Cache.load("fn", 1).Status, SummaryCache::LoadStatus::Missing);
}

TEST(HasherTest, DigestIsOrderAndLengthSensitive) {
  EXPECT_NE(Hasher().str("ab").str("c").digest(),
            Hasher().str("a").str("bc").digest());
  EXPECT_NE(Hasher().u32(1).u32(2).digest(), Hasher().u32(2).u32(1).digest());
  EXPECT_EQ(Hasher::hashString("pinpoint"), Hasher::hashString("pinpoint"));
}

//===----------------------------------------------------------------------===
// GlobalSVFA::Stats is concurrently pollable (exercised under TSan)
//===----------------------------------------------------------------------===

TEST(StatsConcurrencyTest, PollingWhileRunningIsRaceFree) {
  workload::Workload W = workload::generate(subjectConfig(5));
  ir::Module M;
  std::vector<frontend::Diag> Diags;
  ASSERT_TRUE(frontend::parseModule(W.Source, M, Diags));
  smt::ExprContext Ctx;
  AnalyzedModule AM(M, Ctx);

  GlobalSVFA Engine(AM, checkers::useAfterFreeChecker());
  std::atomic<bool> Done{false};
  uint64_t LastEvents = 0;
  std::thread Poller([&] {
    while (!Done.load(std::memory_order_acquire)) {
      GlobalSVFA::Stats Snap = Engine.stats(); // Copy = relaxed snapshot.
      uint64_t E = Snap.Events.load(std::memory_order_relaxed);
      EXPECT_GE(E, LastEvents) << "counters must be monotone";
      LastEvents = E;
      std::this_thread::yield();
    }
  });
  std::vector<Report> Reports = Engine.run();
  Done.store(true, std::memory_order_release);
  Poller.join();

  EXPECT_GE(Engine.stats().Events.load(std::memory_order_relaxed),
            LastEvents);
  EXPECT_FALSE(Reports.empty());
}

} // namespace
} // namespace pinpoint::svfa
