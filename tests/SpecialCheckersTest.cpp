//===- tests/SpecialCheckersTest.cpp - Null-deref & leak checker tests -----===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "checkers/SpecialCheckers.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace pinpoint::ir;

namespace pinpoint::checkers {
namespace {

class SpecialTest : public ::testing::Test {
protected:
  void analyze(std::string_view Src) {
    M = std::make_unique<Module>();
    std::vector<frontend::Diag> Diags;
    ASSERT_TRUE(frontend::parseModule(Src, *M, Diags))
        << (Diags.empty() ? "?" : Diags[0].str());
    AM = std::make_unique<svfa::AnalyzedModule>(*M, Ctx);
  }

  std::vector<svfa::Report> run(const CheckerSpec &Spec) {
    svfa::GlobalSVFA Engine(*AM, Spec);
    return Engine.run();
  }

  smt::ExprContext Ctx;
  std::unique_ptr<Module> M;
  std::unique_ptr<svfa::AnalyzedModule> AM;
};

//===----------------------------------------------------------------------===
// Null dereference
//===----------------------------------------------------------------------===

TEST_F(SpecialTest, NullDerefDirect) {
  analyze(R"(
    int f() {
      int *p = null;
      return *p;
    })");
  auto Reports = run(nullDerefChecker());
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].Checker, "null-deref");
}

TEST_F(SpecialTest, NullGuardedByComplementaryBranchIsClean) {
  analyze(R"(
    int f(bool bad) {
      int *p = malloc();
      if (bad) { p = null; }
      int v = 0;
      if (!bad) { v = *p; }
      return v;
    })");
  EXPECT_TRUE(run(nullDerefChecker()).empty());
}

TEST_F(SpecialTest, NullOnSameBranchIsReported) {
  analyze(R"(
    int f(bool bad) {
      int *p = malloc();
      if (bad) { p = null; }
      int v = 0;
      if (bad) { v = *p; }
      return v;
    })");
  EXPECT_EQ(run(nullDerefChecker()).size(), 1u);
}

TEST_F(SpecialTest, NullAcrossCallViaVF3) {
  analyze(R"(
    void poison(int **q) {
      *q = null;
    }
    int f() {
      int **h = malloc();
      int *x = malloc();
      *h = x;
      poison(h);
      int *p = *h;
      return *p;
    })");
  auto Reports = run(nullDerefChecker());
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].SourceFn, "poison");
}

//===----------------------------------------------------------------------===
// Memory leak
//===----------------------------------------------------------------------===

TEST_F(SpecialTest, LeakWhenNeverConsumed) {
  analyze(R"(
    void f() {
      int *p = malloc();
      *p = 1;
    })");
  auto Reports = checkMemoryLeaks(*AM);
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].Checker, "memory-leak");
}

TEST_F(SpecialTest, NoLeakWhenFreed) {
  analyze(R"(
    void f() {
      int *p = malloc();
      free(p);
    })");
  EXPECT_TRUE(checkMemoryLeaks(*AM).empty());
}

TEST_F(SpecialTest, NoLeakWhenReturned) {
  analyze("int *f() { int *p = malloc(); return p; }");
  EXPECT_TRUE(checkMemoryLeaks(*AM).empty());
}

TEST_F(SpecialTest, NoLeakWhenStoredAway) {
  analyze(R"(
    void stash(int **slot, int *v) { *slot = v; }
    void f(int **registry) {
      int *p = malloc();
      *registry = p;
    })");
  EXPECT_TRUE(checkMemoryLeaks(*AM).empty());
}

TEST_F(SpecialTest, NoLeakWhenPassedToCallee) {
  analyze(R"(
    void take(int *v) { free(v); }
    void f() {
      int *p = malloc();
      take(p);
    })");
  EXPECT_TRUE(checkMemoryLeaks(*AM).empty());
}

TEST_F(SpecialTest, LeakFollowsCopies) {
  analyze(R"(
    void f() {
      int *p = malloc();
      int *q = p;
      *q = 3;
    })");
  EXPECT_EQ(checkMemoryLeaks(*AM).size(), 1u);
}

TEST_F(SpecialTest, MultipleLeaksAllReported) {
  analyze(R"(
    void f() {
      int *a = malloc();
      int *b = malloc();
      int *c = malloc();
      free(b);
      *a = 1;
      *c = 2;
    })");
  EXPECT_EQ(checkMemoryLeaks(*AM).size(), 2u);
}

} // namespace
} // namespace pinpoint::checkers
