//===- tests/SmtSolverTest.cpp - Linear filter + backends ------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the linear-time solver of paper Section 3.1.1 and for the SMT
/// backends (Z3 when present, MiniSolver always). Backend tests are
/// parameterised so both backends face the same suite.
///
//===----------------------------------------------------------------------===//

#include "smt/LinearSolver.h"
#include "smt/Solver.h"

#include <gtest/gtest.h>

namespace pinpoint::smt {
namespace {

//===----------------------------------------------------------------------===
// LinearSolver (paper Section 3.1.1)
//===----------------------------------------------------------------------===

class LinearTest : public ::testing::Test {
protected:
  ExprContext Ctx;
  LinearSolver LS{Ctx};
};

TEST_F(LinearTest, DirectContradictionViaSharedSubterm) {
  // (a & b) & !a  — the a/!a contradiction spans subformulas, so the
  // constructor-level folding cannot see it but P/N analysis does.
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *F = Ctx.mkAnd(Ctx.mkAnd(A, B), Ctx.mkNot(A));
  EXPECT_TRUE(LS.isObviouslyUnsat(F));
}

TEST_F(LinearTest, SatisfiableConjunctionPasses) {
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  EXPECT_FALSE(LS.isObviouslyUnsat(Ctx.mkAnd(A, B)));
  EXPECT_FALSE(LS.isObviouslyUnsat(Ctx.mkAnd(A, Ctx.mkNot(B))));
}

TEST_F(LinearTest, PaperRuleForNegation) {
  // P(¬C) = N(C), N(¬C) = P(C).
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *NotA = Ctx.mkNot(A);
  EXPECT_EQ(LS.positiveAtoms(NotA).size(), 0u);
  EXPECT_EQ(LS.negativeAtoms(NotA).size(), 1u);
  EXPECT_EQ(LS.negativeAtoms(NotA)[0], A->id());
}

TEST_F(LinearTest, PaperRuleForConjunctionIsUnion) {
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *F = Ctx.mkAnd(A, Ctx.mkNot(B));
  EXPECT_EQ(LS.positiveAtoms(F).size(), 1u);
  EXPECT_EQ(LS.negativeAtoms(F).size(), 1u);
}

TEST_F(LinearTest, PaperRuleForDisjunctionIsIntersection) {
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  // P(a ∨ b) = {a} ∩ {b} = ∅.
  EXPECT_EQ(LS.positiveAtoms(Ctx.mkOr(A, B)).size(), 0u);
  // P((a ∧ b) ∨ (a ∧ ¬b)) = {a,b} ∩ {a} = {a}.
  const Expr *F = Ctx.mkOr(Ctx.mkAnd(A, B), Ctx.mkAnd(A, Ctx.mkNot(B)));
  ASSERT_EQ(LS.positiveAtoms(F).size(), 1u);
  EXPECT_EQ(LS.positiveAtoms(F)[0], A->id());
}

TEST_F(LinearTest, DisjunctionHidesContradiction) {
  // (a ∨ b) ∧ ¬a is satisfiable (choose b), and the intersection rule
  // correctly avoids flagging it.
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *F = Ctx.mkAnd(Ctx.mkOr(A, B), Ctx.mkNot(A));
  EXPECT_FALSE(LS.isObviouslyUnsat(F));
}

TEST_F(LinearTest, ContradictionThroughBothDisjuncts) {
  // (a ∧ b) ∨ (a ∧ c), conjoined with ¬a: a survives the intersection, so
  // the filter catches it.
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *C = Ctx.freshBoolVar("c");
  const Expr *F = Ctx.mkAnd(Ctx.mkOr(Ctx.mkAnd(A, B), Ctx.mkAnd(A, C)),
                            Ctx.mkNot(A));
  EXPECT_TRUE(LS.isObviouslyUnsat(F));
}

TEST_F(LinearTest, ComparisonAtomsParticipate) {
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *Cmp = Ctx.mkCmp(ExprKind::Lt, X, Ctx.getInt(5));
  const Expr *F = Ctx.mkAnd(Ctx.mkAnd(Cmp, Ctx.freshBoolVar("t")),
                            Ctx.mkNot(Cmp));
  EXPECT_TRUE(LS.isObviouslyUnsat(F));
}

TEST_F(LinearTest, SemanticContradictionIsNotObvious) {
  // x < 5 ∧ x > 7 is UNSAT but has no syntactic a ∧ ¬a — exactly the ~10%
  // of cases the paper leaves to the SMT solver.
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *F = Ctx.mkAnd(Ctx.mkCmp(ExprKind::Lt, X, Ctx.getInt(5)),
                            Ctx.mkCmp(ExprKind::Gt, X, Ctx.getInt(7)));
  EXPECT_FALSE(LS.isObviouslyUnsat(F));
}

TEST_F(LinearTest, CacheIsReused) {
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *F = Ctx.mkAnd(A, B);
  LS.isObviouslyUnsat(F);
  size_t N = LS.cacheSize();
  LS.isObviouslyUnsat(F);
  EXPECT_EQ(LS.cacheSize(), N);
}

//===----------------------------------------------------------------------===
// Backends, parameterised over {mini, z3?}
//===----------------------------------------------------------------------===

struct BackendCase {
  const char *Name;
};

class BackendTest : public ::testing::TestWithParam<BackendCase> {
protected:
  /// Returns null when the requested backend is unavailable (Z3-less build);
  /// tests skip in that case.
  std::unique_ptr<Solver> makeSolver() {
    if (std::string(GetParam().Name) == "z3")
      return createZ3Solver(Ctx);
    return createMiniSolver(Ctx);
  }
  ExprContext Ctx;
};

TEST_P(BackendTest, TrivialFormulas) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  EXPECT_EQ(S->checkSat(Ctx.getTrue()), SatResult::Sat);
  EXPECT_EQ(S->checkSat(Ctx.getFalse()), SatResult::Unsat);
}

TEST_P(BackendTest, PropositionalSat) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  EXPECT_EQ(S->checkSat(Ctx.mkAnd(A, Ctx.mkNot(B))), SatResult::Sat);
  EXPECT_EQ(S->checkSat(Ctx.mkOr(A, B)), SatResult::Sat);
}

TEST_P(BackendTest, PropositionalUnsatAcrossClauses) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  // (a ∨ b) ∧ ¬a ∧ ¬b.
  const Expr *F = Ctx.mkAnd(Ctx.mkAnd(Ctx.mkOr(A, B), Ctx.mkNot(A)),
                            Ctx.mkNot(B));
  EXPECT_EQ(S->checkSat(F), SatResult::Unsat);
}

TEST_P(BackendTest, EqualityChainConflict) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *Y = Ctx.freshIntVar("y");
  // x = 1 ∧ y = 2 ∧ x = y.
  const Expr *F = Ctx.mkAnd(
      Ctx.mkAnd(Ctx.mkEq(X, Ctx.getInt(1)), Ctx.mkEq(Y, Ctx.getInt(2))),
      Ctx.mkEq(X, Y));
  EXPECT_EQ(S->checkSat(F), SatResult::Unsat);
}

TEST_P(BackendTest, BoundsConflict) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *F = Ctx.mkAnd(Ctx.mkCmp(ExprKind::Lt, X, Ctx.getInt(5)),
                            Ctx.mkCmp(ExprKind::Gt, X, Ctx.getInt(7)));
  EXPECT_EQ(S->checkSat(F), SatResult::Unsat);
}

TEST_P(BackendTest, BoundsSatisfiable) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *F = Ctx.mkAnd(Ctx.mkCmp(ExprKind::Ge, X, Ctx.getInt(5)),
                            Ctx.mkCmp(ExprKind::Le, X, Ctx.getInt(5)));
  EXPECT_EQ(S->checkSat(F), SatResult::Sat);
}

TEST_P(BackendTest, DisequalityWithinEqualityClass) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *Y = Ctx.freshIntVar("y");
  const Expr *Z = Ctx.freshIntVar("z");
  // x = y ∧ y = z ∧ x ≠ z.
  const Expr *F =
      Ctx.mkAnd(Ctx.mkAnd(Ctx.mkEq(X, Y), Ctx.mkEq(Y, Z)), Ctx.mkNe(X, Z));
  EXPECT_EQ(S->checkSat(F), SatResult::Unsat);
}

TEST_P(BackendTest, OrderingCycleConflict) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *Y = Ctx.freshIntVar("y");
  // x < y ∧ y < x.
  const Expr *F = Ctx.mkAnd(Ctx.mkCmp(ExprKind::Lt, X, Y),
                            Ctx.mkCmp(ExprKind::Lt, Y, X));
  EXPECT_EQ(S->checkSat(F), SatResult::Unsat);
}

TEST_P(BackendTest, MixedBooleanAndTheory) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *T = Ctx.freshBoolVar("t");
  const Expr *X = Ctx.freshIntVar("x");
  // (t → x > 3) ∧ (¬t → x > 10) ∧ x < 2 : UNSAT either way.
  const Expr *F = Ctx.mkAnd(
      Ctx.mkAnd(Ctx.mkImplies(T, Ctx.mkCmp(ExprKind::Gt, X, Ctx.getInt(3))),
                Ctx.mkImplies(Ctx.mkNot(T),
                              Ctx.mkCmp(ExprKind::Gt, X, Ctx.getInt(10)))),
      Ctx.mkCmp(ExprKind::Lt, X, Ctx.getInt(2)));
  EXPECT_EQ(S->checkSat(F), SatResult::Unsat);
}

TEST_P(BackendTest, BranchCorrelationSatisfiableSide) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *T = Ctx.freshBoolVar("t");
  const Expr *X = Ctx.freshIntVar("x");
  // (t → x > 3) ∧ x < 2 : satisfiable with ¬t.
  const Expr *F =
      Ctx.mkAnd(Ctx.mkImplies(T, Ctx.mkCmp(ExprKind::Gt, X, Ctx.getInt(3))),
                Ctx.mkCmp(ExprKind::Lt, X, Ctx.getInt(2)));
  EXPECT_EQ(S->checkSat(F), SatResult::Sat);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendTest,
                         ::testing::Values(BackendCase{"mini"},
                                           BackendCase{"z3"}),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });


TEST_P(BackendTest, IteSemantics) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *X = Ctx.freshIntVar("x");
  // ite(b, 1, 0) == 1 ∧ ¬b is UNSAT under full integer reasoning; the
  // MiniSolver may only manage Sat (opaque term) — accept Unsat or Sat but
  // require Z3 to refute it.
  const Expr *F = Ctx.mkAnd(
      Ctx.mkEq(Ctx.mkIte(B, Ctx.getInt(1), Ctx.getInt(0)), Ctx.getInt(1)),
      Ctx.mkNot(B));
  smt::SatResult R = S->checkSat(F);
  if (std::string(GetParam().Name) == "z3")
    EXPECT_EQ(R, SatResult::Unsat);
  else
    EXPECT_NE(R, SatResult::Unknown);
}

//===----------------------------------------------------------------------===
// StagedSolver (the two-stage discipline)
//===----------------------------------------------------------------------===

TEST(StagedSolver, LinearFilterShortCircuits) {
  ExprContext Ctx;
  StagedSolver S(Ctx, createMiniSolver(Ctx));
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *Easy = Ctx.mkAnd(Ctx.mkAnd(A, B), Ctx.mkNot(A));
  EXPECT_EQ(S.checkSat(Easy), SatResult::Unsat);
  EXPECT_EQ(S.stats().LinearUnsat, 1u);
  EXPECT_EQ(S.stats().BackendQueries, 0u);
}

TEST(StagedSolver, HardUnsatFallsThroughToBackend) {
  ExprContext Ctx;
  StagedSolver S(Ctx, createMiniSolver(Ctx));
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *Hard = Ctx.mkAnd(Ctx.mkCmp(ExprKind::Lt, X, Ctx.getInt(5)),
                               Ctx.mkCmp(ExprKind::Gt, X, Ctx.getInt(7)));
  EXPECT_EQ(S.checkSat(Hard), SatResult::Unsat);
  EXPECT_EQ(S.stats().LinearUnsat, 0u);
  EXPECT_EQ(S.stats().BackendQueries, 1u);
  EXPECT_EQ(S.stats().BackendUnsat, 1u);
}

TEST(StagedSolver, FilterCanBeDisabled) {
  ExprContext Ctx;
  StagedSolver S(Ctx, createMiniSolver(Ctx), /*UseLinearFilter=*/false);
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *Easy = Ctx.mkAnd(A, Ctx.mkNot(Ctx.mkNot(Ctx.mkNot(A))));
  EXPECT_EQ(S.checkSat(Easy), SatResult::Unsat);
  EXPECT_EQ(S.stats().LinearUnsat, 0u);
  EXPECT_EQ(S.stats().BackendQueries, 1u);
}

} // namespace
} // namespace pinpoint::smt
