//===- tests/SmtSolverTest.cpp - Linear filter + backends ------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the linear-time solver of paper Section 3.1.1 and for the SMT
/// backends (Z3 when present, MiniSolver always). Backend tests are
/// parameterised so both backends face the same suite.
///
//===----------------------------------------------------------------------===//

#include "smt/LinearSolver.h"
#include "smt/QueryCache.h"
#include "smt/Solver.h"
#include "support/ResourceGovernor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace pinpoint::smt {
namespace {

//===----------------------------------------------------------------------===
// LinearSolver (paper Section 3.1.1)
//===----------------------------------------------------------------------===

class LinearTest : public ::testing::Test {
protected:
  ExprContext Ctx;
  LinearSolver LS{Ctx};
};

TEST_F(LinearTest, DirectContradictionViaSharedSubterm) {
  // (a & b) & !a  — the a/!a contradiction spans subformulas, so the
  // constructor-level folding cannot see it but P/N analysis does.
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *F = Ctx.mkAnd(Ctx.mkAnd(A, B), Ctx.mkNot(A));
  EXPECT_TRUE(LS.isObviouslyUnsat(F));
}

TEST_F(LinearTest, SatisfiableConjunctionPasses) {
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  EXPECT_FALSE(LS.isObviouslyUnsat(Ctx.mkAnd(A, B)));
  EXPECT_FALSE(LS.isObviouslyUnsat(Ctx.mkAnd(A, Ctx.mkNot(B))));
}

TEST_F(LinearTest, PaperRuleForNegation) {
  // P(¬C) = N(C), N(¬C) = P(C).
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *NotA = Ctx.mkNot(A);
  EXPECT_EQ(LS.positiveAtoms(NotA).size(), 0u);
  EXPECT_EQ(LS.negativeAtoms(NotA).size(), 1u);
  EXPECT_EQ(LS.negativeAtoms(NotA)[0], A->id());
}

TEST_F(LinearTest, PaperRuleForConjunctionIsUnion) {
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *F = Ctx.mkAnd(A, Ctx.mkNot(B));
  EXPECT_EQ(LS.positiveAtoms(F).size(), 1u);
  EXPECT_EQ(LS.negativeAtoms(F).size(), 1u);
}

TEST_F(LinearTest, PaperRuleForDisjunctionIsIntersection) {
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  // P(a ∨ b) = {a} ∩ {b} = ∅.
  EXPECT_EQ(LS.positiveAtoms(Ctx.mkOr(A, B)).size(), 0u);
  // P((a ∧ b) ∨ (a ∧ ¬b)) = {a,b} ∩ {a} = {a}.
  const Expr *F = Ctx.mkOr(Ctx.mkAnd(A, B), Ctx.mkAnd(A, Ctx.mkNot(B)));
  ASSERT_EQ(LS.positiveAtoms(F).size(), 1u);
  EXPECT_EQ(LS.positiveAtoms(F)[0], A->id());
}

TEST_F(LinearTest, DisjunctionHidesContradiction) {
  // (a ∨ b) ∧ ¬a is satisfiable (choose b), and the intersection rule
  // correctly avoids flagging it.
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *F = Ctx.mkAnd(Ctx.mkOr(A, B), Ctx.mkNot(A));
  EXPECT_FALSE(LS.isObviouslyUnsat(F));
}

TEST_F(LinearTest, ContradictionThroughBothDisjuncts) {
  // (a ∧ b) ∨ (a ∧ c), conjoined with ¬a: a survives the intersection, so
  // the filter catches it.
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *C = Ctx.freshBoolVar("c");
  const Expr *F = Ctx.mkAnd(Ctx.mkOr(Ctx.mkAnd(A, B), Ctx.mkAnd(A, C)),
                            Ctx.mkNot(A));
  EXPECT_TRUE(LS.isObviouslyUnsat(F));
}

TEST_F(LinearTest, ComparisonAtomsParticipate) {
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *Cmp = Ctx.mkCmp(ExprKind::Lt, X, Ctx.getInt(5));
  const Expr *F = Ctx.mkAnd(Ctx.mkAnd(Cmp, Ctx.freshBoolVar("t")),
                            Ctx.mkNot(Cmp));
  EXPECT_TRUE(LS.isObviouslyUnsat(F));
}

TEST_F(LinearTest, SemanticContradictionIsNotObvious) {
  // x < 5 ∧ x > 7 is UNSAT but has no syntactic a ∧ ¬a — exactly the ~10%
  // of cases the paper leaves to the SMT solver.
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *F = Ctx.mkAnd(Ctx.mkCmp(ExprKind::Lt, X, Ctx.getInt(5)),
                            Ctx.mkCmp(ExprKind::Gt, X, Ctx.getInt(7)));
  EXPECT_FALSE(LS.isObviouslyUnsat(F));
}

TEST_F(LinearTest, CacheIsReused) {
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *F = Ctx.mkAnd(A, B);
  LS.isObviouslyUnsat(F);
  size_t N = LS.cacheSize();
  LS.isObviouslyUnsat(F);
  EXPECT_EQ(LS.cacheSize(), N);
}

//===----------------------------------------------------------------------===
// Backends, parameterised over {mini, z3?}
//===----------------------------------------------------------------------===

struct BackendCase {
  const char *Name;
};

class BackendTest : public ::testing::TestWithParam<BackendCase> {
protected:
  /// Returns null when the requested backend is unavailable (Z3-less build);
  /// tests skip in that case.
  std::unique_ptr<Solver> makeSolver() {
    if (std::string(GetParam().Name) == "z3")
      return createZ3Solver(Ctx);
    return createMiniSolver(Ctx);
  }
  ExprContext Ctx;
};

TEST_P(BackendTest, TrivialFormulas) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  EXPECT_EQ(S->checkSat(Ctx.getTrue()), SatResult::Sat);
  EXPECT_EQ(S->checkSat(Ctx.getFalse()), SatResult::Unsat);
}

TEST_P(BackendTest, PropositionalSat) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  EXPECT_EQ(S->checkSat(Ctx.mkAnd(A, Ctx.mkNot(B))), SatResult::Sat);
  EXPECT_EQ(S->checkSat(Ctx.mkOr(A, B)), SatResult::Sat);
}

TEST_P(BackendTest, PropositionalUnsatAcrossClauses) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  // (a ∨ b) ∧ ¬a ∧ ¬b.
  const Expr *F = Ctx.mkAnd(Ctx.mkAnd(Ctx.mkOr(A, B), Ctx.mkNot(A)),
                            Ctx.mkNot(B));
  EXPECT_EQ(S->checkSat(F), SatResult::Unsat);
}

TEST_P(BackendTest, EqualityChainConflict) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *Y = Ctx.freshIntVar("y");
  // x = 1 ∧ y = 2 ∧ x = y.
  const Expr *F = Ctx.mkAnd(
      Ctx.mkAnd(Ctx.mkEq(X, Ctx.getInt(1)), Ctx.mkEq(Y, Ctx.getInt(2))),
      Ctx.mkEq(X, Y));
  EXPECT_EQ(S->checkSat(F), SatResult::Unsat);
}

TEST_P(BackendTest, BoundsConflict) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *F = Ctx.mkAnd(Ctx.mkCmp(ExprKind::Lt, X, Ctx.getInt(5)),
                            Ctx.mkCmp(ExprKind::Gt, X, Ctx.getInt(7)));
  EXPECT_EQ(S->checkSat(F), SatResult::Unsat);
}

TEST_P(BackendTest, BoundsSatisfiable) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *F = Ctx.mkAnd(Ctx.mkCmp(ExprKind::Ge, X, Ctx.getInt(5)),
                            Ctx.mkCmp(ExprKind::Le, X, Ctx.getInt(5)));
  EXPECT_EQ(S->checkSat(F), SatResult::Sat);
}

TEST_P(BackendTest, DisequalityWithinEqualityClass) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *Y = Ctx.freshIntVar("y");
  const Expr *Z = Ctx.freshIntVar("z");
  // x = y ∧ y = z ∧ x ≠ z.
  const Expr *F =
      Ctx.mkAnd(Ctx.mkAnd(Ctx.mkEq(X, Y), Ctx.mkEq(Y, Z)), Ctx.mkNe(X, Z));
  EXPECT_EQ(S->checkSat(F), SatResult::Unsat);
}

TEST_P(BackendTest, OrderingCycleConflict) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *Y = Ctx.freshIntVar("y");
  // x < y ∧ y < x.
  const Expr *F = Ctx.mkAnd(Ctx.mkCmp(ExprKind::Lt, X, Y),
                            Ctx.mkCmp(ExprKind::Lt, Y, X));
  EXPECT_EQ(S->checkSat(F), SatResult::Unsat);
}

TEST_P(BackendTest, MixedBooleanAndTheory) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *T = Ctx.freshBoolVar("t");
  const Expr *X = Ctx.freshIntVar("x");
  // (t → x > 3) ∧ (¬t → x > 10) ∧ x < 2 : UNSAT either way.
  const Expr *F = Ctx.mkAnd(
      Ctx.mkAnd(Ctx.mkImplies(T, Ctx.mkCmp(ExprKind::Gt, X, Ctx.getInt(3))),
                Ctx.mkImplies(Ctx.mkNot(T),
                              Ctx.mkCmp(ExprKind::Gt, X, Ctx.getInt(10)))),
      Ctx.mkCmp(ExprKind::Lt, X, Ctx.getInt(2)));
  EXPECT_EQ(S->checkSat(F), SatResult::Unsat);
}

TEST_P(BackendTest, BranchCorrelationSatisfiableSide) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *T = Ctx.freshBoolVar("t");
  const Expr *X = Ctx.freshIntVar("x");
  // (t → x > 3) ∧ x < 2 : satisfiable with ¬t.
  const Expr *F =
      Ctx.mkAnd(Ctx.mkImplies(T, Ctx.mkCmp(ExprKind::Gt, X, Ctx.getInt(3))),
                Ctx.mkCmp(ExprKind::Lt, X, Ctx.getInt(2)));
  EXPECT_EQ(S->checkSat(F), SatResult::Sat);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendTest,
                         ::testing::Values(BackendCase{"mini"},
                                           BackendCase{"z3"}),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });


TEST_P(BackendTest, IteSemantics) {
  auto S = makeSolver();
  if (!S)
    GTEST_SKIP() << "backend unavailable";
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *X = Ctx.freshIntVar("x");
  // ite(b, 1, 0) == 1 ∧ ¬b is UNSAT under full integer reasoning; the
  // MiniSolver may only manage Sat (opaque term) — accept Unsat or Sat but
  // require Z3 to refute it.
  const Expr *F = Ctx.mkAnd(
      Ctx.mkEq(Ctx.mkIte(B, Ctx.getInt(1), Ctx.getInt(0)), Ctx.getInt(1)),
      Ctx.mkNot(B));
  smt::SatResult R = S->checkSat(F);
  if (std::string(GetParam().Name) == "z3")
    EXPECT_EQ(R, SatResult::Unsat);
  else
    EXPECT_NE(R, SatResult::Unknown);
}

//===----------------------------------------------------------------------===
// StagedSolver (the two-stage discipline)
//===----------------------------------------------------------------------===

TEST(StagedSolver, LinearFilterShortCircuits) {
  ExprContext Ctx;
  StagedSolver S(Ctx, createMiniSolver(Ctx));
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *Easy = Ctx.mkAnd(Ctx.mkAnd(A, B), Ctx.mkNot(A));
  EXPECT_EQ(S.checkSat(Easy), SatResult::Unsat);
  EXPECT_EQ(S.stats().LinearUnsat, 1u);
  EXPECT_EQ(S.stats().BackendQueries, 0u);
}

TEST(StagedSolver, HardUnsatFallsThroughToBackend) {
  ExprContext Ctx;
  StagedSolver S(Ctx, createMiniSolver(Ctx));
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *Hard = Ctx.mkAnd(Ctx.mkCmp(ExprKind::Lt, X, Ctx.getInt(5)),
                               Ctx.mkCmp(ExprKind::Gt, X, Ctx.getInt(7)));
  EXPECT_EQ(S.checkSat(Hard), SatResult::Unsat);
  EXPECT_EQ(S.stats().LinearUnsat, 0u);
  EXPECT_EQ(S.stats().BackendQueries, 1u);
  EXPECT_EQ(S.stats().BackendUnsat, 1u);
}

TEST(StagedSolver, FilterCanBeDisabled) {
  ExprContext Ctx;
  StagedSolver S(Ctx, createMiniSolver(Ctx), /*UseLinearFilter=*/false);
  const Expr *A = Ctx.freshBoolVar("a");
  const Expr *Easy = Ctx.mkAnd(A, Ctx.mkNot(Ctx.mkNot(Ctx.mkNot(A))));
  EXPECT_EQ(S.checkSat(Easy), SatResult::Unsat);
  EXPECT_EQ(S.stats().LinearUnsat, 0u);
  EXPECT_EQ(S.stats().BackendQueries, 1u);
}

//===----------------------------------------------------------------------===
// Query acceleration: verdict cache + conjunct slicing (DESIGN.md section 11)
//===----------------------------------------------------------------------===

/// (x < 5 ∧ x > 7) — passes the P/N filter (distinct atoms) but is
/// backend-refutable, and forms one variable-connected component.
static const Expr *hardUnsat(ExprContext &Ctx, const Expr *X) {
  return Ctx.mkAnd(Ctx.mkCmp(ExprKind::Lt, X, Ctx.getInt(5)),
                   Ctx.mkCmp(ExprKind::Gt, X, Ctx.getInt(7)));
}

TEST(QueryAccel, SlicingRefutesViaDisjointComponent) {
  ExprContext Ctx;
  StagedSolver S(Ctx, createMiniSolver(Ctx));
  QueryCache QC;
  S.setQueryCache(&QC);
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *B = Ctx.freshBoolVar("b");
  // ((x<5 ∧ x>7) ∧ b) splits into the x-component and the b-component;
  // the x-component alone refutes the query, short-circuiting before the
  // b-component is ever discharged.
  const Expr *Q = Ctx.mkAnd(hardUnsat(Ctx, X), B);
  EXPECT_EQ(S.checkSat(Q), SatResult::Unsat);
  EXPECT_EQ(S.stats().SlicedQueries, 1u);
  EXPECT_EQ(S.stats().ComponentsRefuted, 1u);
  // Component order follows mkAnd's canonicalised operand order, so the
  // b-component may be discharged (Sat) before the x-component refutes.
  EXPECT_LE(S.stats().BackendCalls, 2u);
  // The pre-existing per-query counters keep their semantics.
  EXPECT_EQ(S.stats().BackendQueries, 1u);
  EXPECT_EQ(S.stats().BackendUnsat, 1u);
}

TEST(QueryAccel, SatVerdictsComposeAcrossComponents) {
  ExprContext Ctx;
  StagedSolver S(Ctx, createMiniSolver(Ctx));
  QueryCache QC;
  S.setQueryCache(&QC);
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *B = Ctx.freshBoolVar("b");
  // b ∧ x<5: two variable-disjoint components, both satisfiable — their
  // models merge, so the composed verdict is Sat.
  const Expr *Q = Ctx.mkAnd(B, Ctx.mkCmp(ExprKind::Lt, X, Ctx.getInt(5)));
  EXPECT_EQ(S.checkSat(Q), SatResult::Sat);
  EXPECT_EQ(S.stats().SlicedQueries, 1u);
  EXPECT_EQ(S.stats().BackendCalls, 2u); // one per component
  // A verbatim repeat replays the full-query verdict from the cache.
  EXPECT_EQ(S.checkSat(Q), SatResult::Sat);
  EXPECT_EQ(S.stats().BackendCalls, 2u);
  EXPECT_GE(S.stats().CacheHits, 1u);
}

TEST(QueryAccel, CacheReplaysFullQueryVerdict) {
  ExprContext Ctx;
  StagedSolver S(Ctx, createMiniSolver(Ctx));
  QueryCache QC;
  S.setQueryCache(&QC);
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *Q = hardUnsat(Ctx, X);
  EXPECT_EQ(S.checkSat(Q), SatResult::Unsat);
  EXPECT_EQ(S.stats().BackendCalls, 1u);
  EXPECT_EQ(S.checkSat(Q), SatResult::Unsat);
  EXPECT_EQ(S.stats().BackendCalls, 1u); // replayed, not recomputed
  EXPECT_EQ(S.stats().CacheHits, 1u);
  // Per-query counters advance as if the backend had run again.
  EXPECT_EQ(S.stats().BackendQueries, 2u);
  EXPECT_EQ(S.stats().BackendUnsat, 2u);
}

TEST(QueryAccel, ComponentVerdictReusedAcrossQueries) {
  ExprContext Ctx;
  StagedSolver S(Ctx, createMiniSolver(Ctx));
  QueryCache QC;
  S.setQueryCache(&QC);
  const Expr *X = Ctx.freshIntVar("x");
  const Expr *B = Ctx.freshBoolVar("b");
  const Expr *C = Ctx.freshBoolVar("c");
  EXPECT_EQ(S.checkSat(Ctx.mkAnd(hardUnsat(Ctx, X), B)), SatResult::Unsat);
  const uint64_t CallsAfterQ1 = S.stats().BackendCalls;
  // A *different* query sharing the unsat x-component: the component's
  // cached verdict refutes it with at most the fresh c-component's
  // discharge as new backend work — the x-component is never re-solved.
  EXPECT_EQ(S.checkSat(Ctx.mkAnd(hardUnsat(Ctx, X), C)), SatResult::Unsat);
  EXPECT_LE(S.stats().BackendCalls, CallsAfterQ1 + 1);
  EXPECT_EQ(S.stats().CacheHits, 1u);
  EXPECT_EQ(S.stats().ComponentsRefuted, 2u);
  EXPECT_EQ(S.stats().SlicedQueries, 2u);
}

TEST(QueryAccel, SharedCacheAcrossSolverInstances) {
  // Mirrors the parallel discharge path: per-chunk StagedSolvers sharing
  // one run-wide QueryCache over the same ExprContext.
  ExprContext Ctx;
  QueryCache QC;
  const Expr *Q = hardUnsat(Ctx, Ctx.freshIntVar("x"));
  StagedSolver S1(Ctx, createMiniSolver(Ctx));
  S1.setQueryCache(&QC);
  EXPECT_EQ(S1.checkSat(Q), SatResult::Unsat);
  EXPECT_EQ(S1.stats().BackendCalls, 1u);
  StagedSolver S2(Ctx, createMiniSolver(Ctx));
  S2.setQueryCache(&QC);
  EXPECT_EQ(S2.checkSat(Q), SatResult::Unsat);
  EXPECT_EQ(S2.stats().BackendCalls, 0u);
  EXPECT_EQ(S2.stats().CacheHits, 1u);
}

TEST(QueryAccel, UnknownIsNeverCached) {
  // Force every backend discharge to Unknown: the verdict depends on run
  // state (budgets / injection), so it must never be replayed later.
  FaultInjector FI;
  std::string Err;
  ASSERT_TRUE(FI.parse("seed=1,solver-unknown=100", Err)) << Err;
  ResourceGovernor Gov({}, std::move(FI));
  ExprContext Ctx;
  StagedSolver S(Ctx, createMiniSolver(Ctx), /*UseLinearFilter=*/true, &Gov);
  QueryCache QC;
  S.setQueryCache(&QC);
  const Expr *Q = hardUnsat(Ctx, Ctx.freshIntVar("x"));
  EXPECT_EQ(S.checkSat(Q), SatResult::Unknown);
  EXPECT_EQ(S.checkSat(Q), SatResult::Unknown);
  EXPECT_EQ(QC.size(), 0u);
  EXPECT_EQ(S.stats().CacheHits, 0u);
  EXPECT_EQ(S.stats().InjectedUnknown, 2u);
  EXPECT_TRUE(Gov.degraded());
}

TEST(QueryAccel, SlicingCanBeDisabledIndependently) {
  ExprContext Ctx;
  StagedSolver S(Ctx, createMiniSolver(Ctx));
  QueryCache QC;
  S.setQueryCache(&QC);
  S.setSlicing(false);
  const Expr *Q =
      Ctx.mkAnd(hardUnsat(Ctx, Ctx.freshIntVar("x")), Ctx.freshBoolVar("b"));
  EXPECT_EQ(S.checkSat(Q), SatResult::Unsat);
  EXPECT_EQ(S.stats().SlicedQueries, 0u);
  EXPECT_EQ(S.stats().BackendCalls, 1u); // whole query in one discharge
  EXPECT_EQ(S.checkSat(Q), SatResult::Unsat);
  EXPECT_EQ(S.stats().CacheHits, 1u); // caching still active
}

TEST(QueryCacheTest, ConcurrentStoreLookupIsCoherent) {
  // The cache is the only structure shared across --jobs discharge
  // chunks; hammer it from several threads. Every thread stores the same
  // verdict per key (as real runs do — verdicts are deterministic facts
  // about interned formulas), so every successful lookup must agree.
  ExprContext Ctx;
  QueryCache QC;
  std::vector<const Expr *> Keys;
  for (int I = 0; I < 256; ++I)
    Keys.push_back(
        Ctx.mkCmp(ExprKind::Lt, Ctx.freshIntVar("v"), Ctx.getInt(I)));
  std::atomic<uint64_t> Mismatches{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < 8; ++T)
    Threads.emplace_back([&QC, &Keys, &Mismatches] {
      for (int Round = 0; Round < 50; ++Round)
        for (size_t I = 0; I < Keys.size(); ++I) {
          SatResult Want = I % 2 ? SatResult::Sat : SatResult::Unsat;
          QC.store(Keys[I], Want);
          auto Got = QC.lookup(Keys[I]);
          if (!Got || *Got != Want)
            ++Mismatches;
        }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0u);
  EXPECT_EQ(QC.size(), Keys.size());
}

} // namespace
} // namespace pinpoint::smt
