//===- tests/PropertyTest.cpp - Parameterised property sweeps --------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style tests swept over seeds with TEST_P: solver agreement on
/// random formulas, pipeline invariants on random workloads, and the
/// end-to-end precision/recall contract of the whole system.
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/CallGraph.h"
#include "ir/Verifier.h"
#include "smt/LinearSolver.h"
#include "smt/QueryCache.h"
#include "smt/Solver.h"
#include "support/RNG.h"
#include "support/ResourceGovernor.h"
#include "support/Statistics.h"
#include "support/SummaryCache.h"
#include "svfa/GlobalSVFA.h"
#include "workload/Evaluate.h"

#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <fstream>

using namespace pinpoint::ir;

namespace pinpoint {
namespace {

//===----------------------------------------------------------------------===
// Random formula generation
//===----------------------------------------------------------------------===

class FormulaGen {
public:
  FormulaGen(smt::ExprContext &Ctx, uint64_t Seed) : Ctx(Ctx), Rand(Seed) {
    for (int I = 0; I < 4; ++I) {
      Bools.push_back(Ctx.freshBoolVar("b" + std::to_string(I)));
      Ints.push_back(Ctx.freshIntVar("i" + std::to_string(I)));
    }
  }

  const smt::Expr *gen(int Depth) {
    if (Depth == 0) {
      switch (Rand.below(3)) {
      case 0:
        return Bools[Rand.below(Bools.size())];
      case 1:
        return Ctx.mkCmp(
            static_cast<smt::ExprKind>(
                static_cast<int>(smt::ExprKind::Eq) + Rand.below(6)),
            Ints[Rand.below(Ints.size())],
            Ctx.getInt(Rand.range(-3, 3)));
      default:
        return Ctx.mkCmp(smt::ExprKind::Lt, Ints[Rand.below(Ints.size())],
                         Ints[Rand.below(Ints.size())]);
      }
    }
    switch (Rand.below(3)) {
    case 0:
      return Ctx.mkAnd(gen(Depth - 1), gen(Depth - 1));
    case 1:
      return Ctx.mkOr(gen(Depth - 1), gen(Depth - 1));
    default:
      return Ctx.mkNot(gen(Depth - 1));
    }
  }

private:
  smt::ExprContext &Ctx;
  RNG Rand;
  std::vector<const smt::Expr *> Bools, Ints;
};

class SolverAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverAgreement, LinearFilterIsSoundWrtZ3) {
  // Whatever the linear filter declares obviously-UNSAT must really be
  // UNSAT (checked against the trusted backend).
  smt::ExprContext Ctx;
  auto Z3 = smt::createZ3Solver(Ctx);
  if (!Z3)
    GTEST_SKIP() << "built without Z3";
  smt::LinearSolver Linear(Ctx);
  FormulaGen Gen(Ctx, GetParam());
  for (int I = 0; I < 40; ++I) {
    const smt::Expr *F = Gen.gen(4);
    if (Linear.isObviouslyUnsat(F))
      EXPECT_EQ(Z3->checkSat(F), smt::SatResult::Unsat)
          << Ctx.toString(F);
  }
}

TEST_P(SolverAgreement, MiniSolverAgreesWithZ3) {
  // The built-in solver must agree with Z3 whenever it gives a definite
  // answer on these formulas (its theory covers them).
  smt::ExprContext Ctx;
  auto Z3 = smt::createZ3Solver(Ctx);
  if (!Z3)
    GTEST_SKIP() << "built without Z3";
  auto Mini = smt::createMiniSolver(Ctx);
  FormulaGen Gen(Ctx, GetParam() ^ 0x5a5a);
  for (int I = 0; I < 25; ++I) {
    const smt::Expr *F = Gen.gen(3);
    smt::SatResult RZ = Z3->checkSat(F);
    smt::SatResult RM = Mini->checkSat(F);
    if (RZ == smt::SatResult::Unknown || RM == smt::SatResult::Unknown)
      continue;
    // Mini may answer Sat where the theory is too weak, but must never
    // claim Unsat for a satisfiable formula.
    if (RM == smt::SatResult::Unsat)
      EXPECT_EQ(RZ, smt::SatResult::Unsat) << Ctx.toString(F);
    if (RZ == smt::SatResult::Sat)
      EXPECT_EQ(RM, smt::SatResult::Sat) << Ctx.toString(F);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreement,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

//===----------------------------------------------------------------------===
// Query-acceleration equivalence (DESIGN.md section 11)
//===----------------------------------------------------------------------===

/// Sweeps random *grouped* conjunctions — each conjunct drawn from one of
/// several FormulaGen instances with disjoint fresh variable pools, so the
/// slicer reliably finds multiple variable-disjoint components — and checks
/// that the accelerated staged solver (slicing + shared verdict cache, the
/// linear filter disabled to isolate the layer) agrees with a direct
/// backend call on every formula, including on verbatim replays.
class AccelEquivalence : public ::testing::TestWithParam<uint64_t> {
protected:
  /// Builds a random conjunction of 2–5 group-local subformulas.
  const smt::Expr *genGrouped(smt::ExprContext &Ctx,
                              std::vector<FormulaGen> &Groups, RNG &Rand) {
    const smt::Expr *F = nullptr;
    int NumConj = 2 + static_cast<int>(Rand.below(4));
    for (int C = 0; C < NumConj; ++C) {
      const smt::Expr *Part = Groups[Rand.below(Groups.size())].gen(2);
      F = F ? Ctx.mkAnd(F, Part) : Part;
    }
    return F;
  }

  void runAgainst(smt::ExprContext &Ctx, std::unique_ptr<smt::Solver> Direct,
                  std::unique_ptr<smt::Solver> Backend) {
    smt::StagedSolver Staged(Ctx, std::move(Backend),
                             /*UseLinearFilter=*/false);
    smt::QueryCache QC;
    Staged.setQueryCache(&QC);
    std::vector<FormulaGen> Groups;
    for (uint64_t G = 0; G < 3; ++G)
      Groups.emplace_back(Ctx, GetParam() * 131 + G);
    RNG Rand(GetParam() ^ 0xACCE1u);
    for (int I = 0; I < 30; ++I) {
      const smt::Expr *F = genGrouped(Ctx, Groups, Rand);
      smt::SatResult RD = Direct->checkSat(F);
      smt::SatResult RS = Staged.checkSat(F);
      // A verbatim replay must reproduce the verdict from the cache.
      EXPECT_EQ(Staged.checkSat(F), RS) << Ctx.toString(F);
      if (RD == smt::SatResult::Unknown || RS == smt::SatResult::Unknown)
        continue; // Budget-dependent; only definite verdicts must agree.
      EXPECT_EQ(RS, RD) << Ctx.toString(F);
    }
    EXPECT_GT(Staged.stats().SlicedQueries, 0u);
    EXPECT_GT(Staged.stats().CacheHits, 0u);
  }
};

TEST_P(AccelEquivalence, SlicedCachedMatchesDirectMiniSolver) {
  smt::ExprContext Ctx;
  // A tight step budget keeps adversarial DPLL instances cheap: they
  // degrade to Unknown, which the sweep skips (only definite verdicts
  // must agree), instead of burning minutes.
  smt::SolverConfig Cfg;
  Cfg.MaxSteps = 50'000;
  runAgainst(Ctx, smt::createMiniSolver(Ctx, Cfg),
             smt::createMiniSolver(Ctx, Cfg));
}

TEST_P(AccelEquivalence, SlicedCachedMatchesDirectZ3) {
  smt::ExprContext Ctx;
  auto Direct = smt::createZ3Solver(Ctx);
  if (!Direct)
    GTEST_SKIP() << "built without Z3";
  runAgainst(Ctx, std::move(Direct), smt::createZ3Solver(Ctx));
}

TEST_P(AccelEquivalence, InjectedUnknownDegradesPerComponent) {
  // Under 100% forced-Unknown injection no discharge may produce a definite
  // verdict, so nothing is ever cached and every fall-through query degrades
  // to Unknown — with a degradation event per injected component.
  FaultInjector FI;
  std::string Err;
  ASSERT_TRUE(FI.parse(
      "seed=" + std::to_string(GetParam()) + ",solver-unknown=100", Err))
      << Err;
  ResourceGovernor Gov({}, std::move(FI));
  smt::ExprContext Ctx;
  smt::StagedSolver Staged(Ctx, smt::createMiniSolver(Ctx),
                           /*UseLinearFilter=*/false, &Gov);
  smt::QueryCache QC;
  Staged.setQueryCache(&QC);
  std::vector<FormulaGen> Groups;
  for (uint64_t G = 0; G < 3; ++G)
    Groups.emplace_back(Ctx, GetParam() * 257 + G);
  RNG Rand(GetParam() ^ 0xFA117u);
  for (int I = 0; I < 20; ++I) {
    const smt::Expr *F = nullptr;
    int NumConj = 2 + static_cast<int>(Rand.below(4));
    for (int C = 0; C < NumConj; ++C) {
      const smt::Expr *Part = Groups[Rand.below(Groups.size())].gen(2);
      F = F ? Ctx.mkAnd(F, Part) : Part;
    }
    Staged.checkSat(F);
  }
  const auto &St = Staged.stats();
  ASSERT_GT(St.BackendQueries, 0u);
  EXPECT_EQ(St.BackendUnknown, St.BackendQueries); // all degraded
  EXPECT_EQ(St.InjectedUnknown, St.BackendCalls);  // every discharge injected
  // Sliced queries inject (and log) once per attempted component.
  EXPECT_GE(St.InjectedUnknown, St.BackendUnknown);
  EXPECT_EQ(St.CacheHits, 0u);
  EXPECT_EQ(QC.size(), 0u); // Unknown is never cached
  EXPECT_TRUE(Gov.degraded());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccelEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

//===----------------------------------------------------------------------===
// Pipeline invariants over random workloads
//===----------------------------------------------------------------------===

class PipelineProperty : public ::testing::TestWithParam<uint64_t> {
protected:
  workload::Workload makeWorkload() {
    workload::WorkloadConfig Cfg;
    Cfg.Seed = GetParam();
    Cfg.TargetLoC = 600;
    Cfg.FeasibleUAF = 2;
    Cfg.InfeasibleUAF = 3;
    Cfg.FeasibleDF = 1;
    Cfg.FeasibleTaint = 1;
    Cfg.AliasNoise = 3;
    return workload::generate(Cfg);
  }
};

TEST_P(PipelineProperty, GeneratedModulesStayWellFormedThroughPipeline) {
  workload::Workload W = makeWorkload();
  Module M;
  std::vector<frontend::Diag> Diags;
  ASSERT_TRUE(frontend::parseModule(W.Source, M, Diags));
  smt::ExprContext Ctx;
  svfa::AnalyzedModule AM(M, Ctx);
  // After SSA + connectors + call rewriting, every function still passes
  // the strict SSA verifier.
  auto Errs = verifyModule(M, /*ExpectSSA=*/true);
  EXPECT_TRUE(Errs.empty()) << (Errs.empty() ? "" : Errs[0]);
}

TEST_P(PipelineProperty, LoadDepConditionsAreSatisfiable) {
  // The quasi path-sensitive points-to must never emit a dependence whose
  // condition the SMT solver refutes: the linear filter only prunes, never
  // invents.
  workload::Workload W = makeWorkload();
  Module M;
  std::vector<frontend::Diag> Diags;
  ASSERT_TRUE(frontend::parseModule(W.Source, M, Diags));
  smt::ExprContext Ctx;
  svfa::AnalyzedModule AM(M, Ctx);
  auto Solver = smt::createDefaultSolver(Ctx);
  int Checked = 0;
  for (Function *F : M.functions()) {
    const auto &PTA = AM.info(F).PTA;
    for (BasicBlock *B : F->blocks())
      for (Stmt *S : B->stmts())
        if (auto *L = dyn_cast<LoadStmt>(S))
          for (auto &[CV, C] : PTA.loadDeps(L)) {
            if (Checked++ > 200)
              return; // Bound the SMT work per sweep instance.
            EXPECT_NE(Solver->checkSat(C), smt::SatResult::Unsat)
                << F->name() << ": " << Ctx.toString(C);
          }
  }
}

TEST_P(PipelineProperty, EndToEndPrecisionContract) {
  // The system contract on every workload: all feasible plants found, no
  // infeasible plant reported.
  workload::Workload W = makeWorkload();
  Module M;
  std::vector<frontend::Diag> Diags;
  ASSERT_TRUE(frontend::parseModule(W.Source, M, Diags));
  smt::ExprContext Ctx;
  auto Reports =
      svfa::checkModule(M, Ctx, checkers::useAfterFreeChecker());
  std::vector<workload::ReportView> Views;
  for (const auto &R : Reports)
    Views.push_back({R.Source.Line, R.Sink.Line,
                     workload::BugChecker::UseAfterFree});
  auto Eval = workload::evaluate(W.Bugs, Views,
                                 workload::BugChecker::UseAfterFree);
  EXPECT_EQ(Eval.FalseNegatives, 0);
  EXPECT_EQ(Eval.FalsePositives, 0); // No env-guarded plants in this config.
}

TEST_P(PipelineProperty, ReportsAreDeterministic) {
  workload::Workload W = makeWorkload();
  auto runOnce = [&] {
    Module M;
    std::vector<frontend::Diag> Diags;
    frontend::parseModule(W.Source, M, Diags);
    smt::ExprContext Ctx;
    auto Reports =
        svfa::checkModule(M, Ctx, checkers::useAfterFreeChecker());
    std::vector<std::pair<uint32_t, uint32_t>> Keys;
    for (const auto &R : Reports)
      Keys.push_back({R.Source.Line, R.Sink.Line});
    std::sort(Keys.begin(), Keys.end());
    return Keys;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST_P(PipelineProperty, DemandSlicedReportsMatchExhaustive) {
  // The --demand determinism contract on random subjects: the sliced
  // analysis reports exactly what the exhaustive one does, for a temporal
  // checker and a taint checker.
  workload::Workload W = makeWorkload();
  auto runMode = [&](bool Demand, const checkers::CheckerSpec &Spec) {
    Module M;
    std::vector<frontend::Diag> Diags;
    frontend::parseModule(W.Source, M, Diags);
    smt::ExprContext Ctx;
    svfa::GlobalOptions GO;
    GO.Demand = Demand;
    auto Reports = svfa::checkModule(M, Ctx, Spec, GO);
    std::vector<std::string> Keys;
    for (const auto &R : Reports) {
      std::string K = R.SourceFn + ":" + R.Source.str() + "->" + R.SinkFn +
                      ":" + R.Sink.str();
      for (const auto &Step : R.Path)
        K += "|" + Step;
      Keys.push_back(K);
    }
    return Keys;
  };
  for (const auto &Spec : {checkers::useAfterFreeChecker(),
                           checkers::pathTraversalChecker()})
    EXPECT_EQ(runMode(true, Spec), runMode(false, Spec)) << Spec.Name;
}

TEST_P(PipelineProperty, CacheInvalidationTracksDirtySCCs) {
  // Randomised invalidation fuzzing: mutate one seed-picked function body,
  // then check against the call graph that *exactly* the dirty SCC plus
  // its transitive callers rebuild — and that the partially-warm run's
  // reports equal a from-scratch run on the edited source.
  workload::Workload W = makeWorkload();
  RNG Rand(GetParam() * 0x9e37u + 1);

  // Pick a function by mutating its column-0 header's following line.
  std::vector<size_t> HeaderEnds;
  std::vector<std::string> Names;
  size_t Pos = 0;
  while (Pos < W.Source.size()) {
    size_t EOL = W.Source.find('\n', Pos);
    if (EOL == std::string::npos)
      EOL = W.Source.size();
    std::string Line = W.Source.substr(Pos, EOL - Pos);
    if (Line.rfind("int ", 0) == 0 && Line.find('(') != std::string::npos &&
        !Line.empty() && Line.back() == '{') {
      HeaderEnds.push_back(EOL);
      size_t NameStart = Line.find_first_not_of("* ", 4);
      Names.push_back(Line.substr(NameStart, Line.find('(') - NameStart));
    }
    Pos = EOL + 1;
  }
  ASSERT_FALSE(HeaderEnds.empty());
  size_t Idx = Rand.below(HeaderEnds.size());
  const std::string &EditedFn = Names[Idx];
  std::string Edited = W.Source;
  Edited.insert(HeaderEnds[Idx], "\n  int zqcachepad = 7;");

  const std::string Dir =
      "prop_cache_" + std::to_string(GetParam());
  std::filesystem::remove_all(Dir);
  SummaryCache Cache(Dir, SummaryCache::Mode::ReadWrite);
  std::string Err;
  ASSERT_TRUE(Cache.prepare(Err)) << Err;

  auto counters = [] {
    Counters &C = Counters::get();
    return std::array<int64_t, 4>{
        C.value("cache.hits"), C.value("cache.misses"),
        C.value("cache.invalidated"), C.value("cache.stored")};
  };
  auto runWith = [&](const std::string &Src,
                     SummaryCache *UseCache) {
    Module M;
    std::vector<frontend::Diag> Diags;
    EXPECT_TRUE(frontend::parseModule(Src, M, Diags));
    smt::ExprContext Ctx;
    svfa::PipelineOptions PO;
    PO.Cache = UseCache;
    svfa::AnalyzedModule AM(M, Ctx, PO);
    svfa::GlobalSVFA Engine(AM, checkers::useAfterFreeChecker());
    std::vector<std::pair<uint32_t, uint32_t>> Keys;
    for (const auto &R : Engine.run())
      Keys.push_back({R.Source.Line, R.Sink.Line});
    std::sort(Keys.begin(), Keys.end());
    return std::make_pair(Keys, M.functions().size());
  };

  // Cold populate: every function missed and (for these simple subjects)
  // every function's artifacts are representable, so all are stored.
  auto C0 = counters();
  auto [ColdKeys, NumFns] = runWith(W.Source, &Cache);
  auto C1 = counters();
  ASSERT_EQ(C1[1] - C0[1], (int64_t)NumFns) << "cold misses";
  ASSERT_EQ(C1[3] - C0[3], (int64_t)NumFns)
      << "unrepresentable summary in generated subject";

  // Expected dirty set from the edited call graph: the edited function's
  // SCC and every SCC that transitively calls into it (ascending SCC ids
  // are topological, so one pass propagates taint caller-ward).
  size_t ExpectedDirty = 0;
  {
    Module M;
    std::vector<frontend::Diag> Diags;
    ASSERT_TRUE(frontend::parseModule(Edited, M, Diags));
    CallGraph CG(M);
    const auto &SCCs = CG.sccs();
    std::vector<bool> Dirty(SCCs.size(), false);
    for (size_t I = 0; I < SCCs.size(); ++I) {
      for (Function *F : SCCs[I].Members)
        if (F->name() == EditedFn)
          Dirty[I] = true;
      for (size_t Callee : SCCs[I].CalleeSCCs)
        if (Dirty[Callee])
          Dirty[I] = true;
      if (Dirty[I])
        ExpectedDirty += SCCs[I].Members.size();
    }
  }
  ASSERT_GT(ExpectedDirty, 0u);

  // Edited warm run: exactly the dirty functions miss (all as explicit
  // invalidations — their entries exist under the old key), the rest hit.
  auto C2 = counters();
  auto [WarmKeys, NumFns2] = runWith(Edited, &Cache);
  auto C3 = counters();
  EXPECT_EQ(C3[2] - C2[2], (int64_t)ExpectedDirty) << "fn " << EditedFn;
  EXPECT_EQ(C3[1] - C2[1], (int64_t)ExpectedDirty) << "fn " << EditedFn;
  EXPECT_EQ(C3[0] - C2[0], (int64_t)(NumFns2 - ExpectedDirty))
      << "fn " << EditedFn;

  // And the differential guarantee: identical findings to a cold run on
  // the edited source.
  auto [RefKeys, NumFns3] = runWith(Edited, nullptr);
  EXPECT_EQ(WarmKeys, RefKeys) << "fn " << EditedFn;
  (void)NumFns3;

  std::filesystem::remove_all(Dir);
}

TEST_P(PipelineProperty, SinkSlicedAndReplayedReportsMatchExhaustive) {
  // Every slicing mode reports exactly what the exhaustive run does on a
  // random subject with planted source/sink pairs: the source-only cone
  // (sink knob off), the bidirectional cone, and a warm run that replays
  // the persisted relevance entry instead of re-running the pre-pass.
  workload::Workload W = makeWorkload();
  auto runCfg = [&](const svfa::DemandSpec *DS, SummaryCache *Cache,
                    const checkers::CheckerSpec &Spec) {
    Module M;
    std::vector<frontend::Diag> Diags;
    EXPECT_TRUE(frontend::parseModule(W.Source, M, Diags));
    smt::ExprContext Ctx;
    svfa::PipelineOptions PO;
    PO.Demand = DS;
    PO.Cache = Cache;
    svfa::AnalyzedModule AM(M, Ctx, PO);
    svfa::GlobalOptions GO;
    GO.Demand = DS != nullptr;
    svfa::GlobalSVFA Engine(AM, Spec, GO);
    std::vector<std::string> Keys;
    for (const auto &R : Engine.run()) {
      std::string K = R.SourceFn + ":" + R.Source.str() + "->" + R.SinkFn +
                      ":" + R.Sink.str();
      for (const auto &Step : R.Path)
        K += "|" + Step;
      Keys.push_back(K);
    }
    std::sort(Keys.begin(), Keys.end());
    return Keys;
  };

  for (const auto &Spec : {checkers::useAfterFreeChecker(),
                           checkers::pathTraversalChecker()}) {
    svfa::DemandSpec Bi, SrcOnly;
    Bi.Checkers.push_back(Spec);
    SrcOnly.Checkers.push_back(Spec);
    SrcOnly.UseSinkCones = false;
    auto Exhaustive = runCfg(nullptr, nullptr, Spec);
    EXPECT_EQ(runCfg(&SrcOnly, nullptr, Spec), Exhaustive) << Spec.Name;
    EXPECT_EQ(runCfg(&Bi, nullptr, Spec), Exhaustive) << Spec.Name;

    // Warm replay through a summary cache: the cold run persists the
    // relevance entry, the warm run consumes it without pre-pass work.
    const std::string Dir =
        "prop_rel_" + Spec.Name + "_" + std::to_string(GetParam());
    std::filesystem::remove_all(Dir);
    Counters &C = Counters::get();
    std::string Err;
    {
      SummaryCache Cold(Dir, SummaryCache::Mode::ReadWrite);
      ASSERT_TRUE(Cold.prepare(Err)) << Err;
      const int64_t Stored = C.value("demand.relevance-stored");
      EXPECT_EQ(runCfg(&Bi, &Cold, Spec), Exhaustive) << Spec.Name;
      EXPECT_EQ(C.value("demand.relevance-stored"), Stored + 1);
    }
    {
      SummaryCache Warm(Dir, SummaryCache::Mode::ReadWrite);
      ASSERT_TRUE(Warm.prepare(Err)) << Err;
      const int64_t Replayed = C.value("demand.relevance-replayed");
      const int64_t Prepass = C.value("demand.prepass-fns");
      EXPECT_EQ(runCfg(&Bi, &Warm, Spec), Exhaustive) << Spec.Name;
      EXPECT_EQ(C.value("demand.relevance-replayed"), Replayed + 1);
      EXPECT_EQ(C.value("demand.prepass-fns"), Prepass)
          << "warm replay must skip the pre-pass";
    }
    std::filesystem::remove_all(Dir);
  }
}

TEST_P(PipelineProperty, CorruptRelevanceEntryFallsBackToFreshPrePass) {
  // Flipping one byte of the persisted relevance entry must be detected
  // (cache-corrupt degradation + counter), fall back to a fresh pre-pass,
  // re-store a healthy entry, and leave the reports untouched.
  workload::Workload W = makeWorkload();
  svfa::DemandSpec DS;
  DS.Checkers.push_back(checkers::useAfterFreeChecker());
  auto runCfg = [&](const svfa::DemandSpec *D, SummaryCache *Cache,
                    ResourceGovernor *Gov) {
    Module M;
    std::vector<frontend::Diag> Diags;
    EXPECT_TRUE(frontend::parseModule(W.Source, M, Diags));
    smt::ExprContext Ctx;
    svfa::PipelineOptions PO;
    PO.Demand = D;
    PO.Cache = Cache;
    PO.Governor = Gov;
    svfa::AnalyzedModule AM(M, Ctx, PO);
    svfa::GlobalOptions GO;
    GO.Demand = D != nullptr;
    svfa::GlobalSVFA Engine(AM, checkers::useAfterFreeChecker(), GO);
    std::vector<std::pair<uint32_t, uint32_t>> Keys;
    for (const auto &R : Engine.run())
      Keys.push_back({R.Source.Line, R.Sink.Line});
    std::sort(Keys.begin(), Keys.end());
    return Keys;
  };
  auto Exhaustive = runCfg(nullptr, nullptr, nullptr);

  const std::string Dir = "prop_relcorrupt_" + std::to_string(GetParam());
  std::filesystem::remove_all(Dir);
  std::string Err;
  {
    SummaryCache Cold(Dir, SummaryCache::Mode::ReadWrite);
    ASSERT_TRUE(Cold.prepare(Err)) << Err;
    EXPECT_EQ(runCfg(&DS, &Cold, nullptr), Exhaustive);
  }

  // One byte flip in the middle of the entry.
  const std::string Entry =
      (std::filesystem::path(Dir) / "relevance").string();
  ASSERT_TRUE(std::filesystem::exists(Entry));
  {
    std::fstream F(Entry, std::ios::in | std::ios::out | std::ios::binary);
    F.seekg(0, std::ios::end);
    auto Size = static_cast<long>(F.tellg());
    ASSERT_GT(Size, 8);
    char B = 0;
    F.seekg(Size / 2);
    F.read(&B, 1);
    B ^= 0x40;
    F.seekp(Size / 2);
    F.write(&B, 1);
  }

  Counters &C = Counters::get();
  const int64_t Corrupt = C.value("cache.corrupt");
  const int64_t Replayed = C.value("demand.relevance-replayed");
  const int64_t Stored = C.value("demand.relevance-stored");
  ResourceGovernor Gov({}, FaultInjector());
  {
    SummaryCache Warm(Dir, SummaryCache::Mode::ReadWrite);
    ASSERT_TRUE(Warm.prepare(Err)) << Err;
    EXPECT_EQ(runCfg(&DS, &Warm, &Gov), Exhaustive);
  }
  EXPECT_EQ(C.value("cache.corrupt"), Corrupt + 1);
  EXPECT_EQ(Gov.log().count(DegradationKind::CacheCorrupt), 1u);
  EXPECT_EQ(C.value("demand.relevance-replayed"), Replayed);
  EXPECT_EQ(C.value("demand.relevance-stored"), Stored + 1)
      << "fallback must re-store a healthy entry";

  // The re-stored entry replays cleanly.
  {
    SummaryCache Again(Dir, SummaryCache::Mode::ReadWrite);
    ASSERT_TRUE(Again.prepare(Err)) << Err;
    EXPECT_EQ(runCfg(&DS, &Again, nullptr), Exhaustive);
  }
  EXPECT_EQ(C.value("demand.relevance-replayed"), Replayed + 1);

  std::filesystem::remove_all(Dir);
}

TEST_P(PipelineProperty, EditedWarmRefreshMatchesColdOnRandomEdits) {
  // Randomised edit-localised reanalysis fuzzing (DESIGN.md section 15):
  // pad-edit K seed-picked function bodies, then check that the warm
  // refresh run re-scans exactly those K functions (dirty diff == edit
  // set) while reporting byte-identically to a from-scratch run on the
  // edited source — and that the refreshed entry replays on the next run.
  workload::Workload W = makeWorkload();
  RNG Rand(GetParam() * 0x51edu + 3);

  // Column-0 function headers, as in CacheInvalidationTracksDirtySCCs.
  std::vector<size_t> HeaderEnds;
  size_t Pos = 0;
  while (Pos < W.Source.size()) {
    size_t EOL = W.Source.find('\n', Pos);
    if (EOL == std::string::npos)
      EOL = W.Source.size();
    std::string Line = W.Source.substr(Pos, EOL - Pos);
    if (Line.rfind("int ", 0) == 0 && Line.find('(') != std::string::npos &&
        !Line.empty() && Line.back() == '{')
      HeaderEnds.push_back(EOL);
    Pos = EOL + 1;
  }
  ASSERT_FALSE(HeaderEnds.empty());

  // 1-3 distinct functions, edited back-to-front so offsets stay valid.
  size_t K = 1 + Rand.below(std::min<size_t>(3, HeaderEnds.size()));
  std::vector<size_t> Picks;
  while (Picks.size() < K) {
    size_t Idx = Rand.below(HeaderEnds.size());
    if (std::find(Picks.begin(), Picks.end(), Idx) == Picks.end())
      Picks.push_back(Idx);
  }
  std::sort(Picks.begin(), Picks.end(), std::greater<size_t>());
  std::string Edited = W.Source;
  for (size_t Idx : Picks)
    Edited.insert(HeaderEnds[Idx], "\n  int zqrefreshpad = 7;");

  svfa::DemandSpec DS;
  DS.Checkers.push_back(checkers::useAfterFreeChecker());
  auto runCfg = [&](const std::string &Src, SummaryCache *Cache) {
    Module M;
    std::vector<frontend::Diag> Diags;
    EXPECT_TRUE(frontend::parseModule(Src, M, Diags));
    smt::ExprContext Ctx;
    svfa::PipelineOptions PO;
    PO.Demand = &DS;
    PO.Cache = Cache;
    // Force the dirty-cone path: small generated subjects can trip the
    // ~30% auto threshold at K=3, and this sweep pins the local path.
    PO.RelevanceRefresh = svfa::RelevanceRefreshMode::Local;
    svfa::AnalyzedModule AM(M, Ctx, PO);
    svfa::GlobalOptions GO;
    GO.Demand = true;
    svfa::GlobalSVFA Engine(AM, checkers::useAfterFreeChecker(), GO);
    std::vector<std::pair<uint32_t, uint32_t>> Keys;
    for (const auto &R : Engine.run())
      Keys.push_back({R.Source.Line, R.Sink.Line});
    std::sort(Keys.begin(), Keys.end());
    return Keys;
  };

  const std::string Dir = "prop_refresh_" + std::to_string(GetParam());
  std::filesystem::remove_all(Dir);
  std::string Err;
  Counters &C = Counters::get();
  {
    SummaryCache Cold(Dir, SummaryCache::Mode::ReadWrite);
    ASSERT_TRUE(Cold.prepare(Err)) << Err;
    runCfg(W.Source, &Cold);
  }

  const int64_t Dirty = C.value("demand.dirty-fns");
  const int64_t Prepass = C.value("demand.prepass-fns");
  const int64_t Stale = C.value("demand.relevance-stale");
  const int64_t Stored = C.value("demand.relevance-stored");
  std::vector<std::pair<uint32_t, uint32_t>> WarmKeys;
  {
    SummaryCache Warm(Dir, SummaryCache::Mode::ReadWrite);
    ASSERT_TRUE(Warm.prepare(Err)) << Err;
    WarmKeys = runCfg(Edited, &Warm);
  }
  // The dirty diff found exactly the K edited functions, only they were
  // re-scanned, and the refreshed entry was re-stored for the new subject.
  EXPECT_EQ(C.value("demand.dirty-fns"), Dirty + (int64_t)K);
  EXPECT_EQ(C.value("demand.prepass-fns"), Prepass + (int64_t)K);
  EXPECT_EQ(C.value("demand.relevance-stale"), Stale + 1);
  EXPECT_EQ(C.value("demand.relevance-stored"), Stored + 1);

  // Differential guarantee: identical findings to a cold uncached run on
  // the edited source.
  EXPECT_EQ(WarmKeys, runCfg(Edited, nullptr)) << "K=" << K;

  // And the refreshed entry replays outright on the next warm run.
  const int64_t Replayed = C.value("demand.relevance-replayed");
  {
    SummaryCache Again(Dir, SummaryCache::Mode::ReadWrite);
    ASSERT_TRUE(Again.prepare(Err)) << Err;
    EXPECT_EQ(runCfg(Edited, &Again), WarmKeys);
  }
  EXPECT_EQ(C.value("demand.relevance-replayed"), Replayed + 1);

  std::filesystem::remove_all(Dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

//===----------------------------------------------------------------------===
// Malformed-input robustness (run-lifecycle resilience)
//===----------------------------------------------------------------------===

/// Adversarial-input property: no truncation or byte corruption of a valid
/// subject may crash the frontend — every mutation either parses (and then
/// survives the pipeline) or is rejected with diagnostics. Run under
/// ASan/UBSan in CI, where "never crashes" is checked with teeth.
class MalformedInput : public ::testing::TestWithParam<uint64_t> {
protected:
  std::string makeSource() {
    workload::WorkloadConfig Cfg;
    Cfg.Seed = GetParam();
    Cfg.TargetLoC = 400;
    Cfg.FeasibleUAF = 2;
    Cfg.FeasibleTaint = 1;
    Cfg.AliasNoise = 2;
    return workload::generate(Cfg).Source;
  }

  /// Parses \p Src and, when it still parses, pushes it through the whole
  /// per-function pipeline — corruption that survives parsing must also
  /// survive analysis.
  void expectNoCrash(const std::string &Src) {
    Module M;
    std::vector<frontend::Diag> Diags;
    if (!frontend::parseModule(Src, M, Diags)) {
      EXPECT_FALSE(Diags.empty()); // Rejection always says why.
      return;
    }
    smt::ExprContext Ctx;
    svfa::AnalyzedModule AM(M, Ctx);
    auto Errs = verifyModule(M, /*ExpectSSA=*/true);
    EXPECT_TRUE(Errs.empty()) << (Errs.empty() ? "" : Errs[0]);
  }
};

TEST_P(MalformedInput, RandomTruncationsNeverCrash) {
  const std::string Src = makeSource();
  RNG Rand(GetParam() * 7919 + 1);
  for (int I = 0; I < 24; ++I)
    expectNoCrash(Src.substr(0, Rand.below(Src.size() + 1)));
  // Degenerate prefixes too.
  expectNoCrash("");
  expectNoCrash(Src.substr(0, 1));
}

TEST_P(MalformedInput, RandomByteFlipsNeverCrash) {
  const std::string Src = makeSource();
  RNG Rand(GetParam() * 104729 + 3);
  for (int I = 0; I < 24; ++I) {
    std::string Mut = Src;
    // Up to three arbitrary byte corruptions per variant (any value,
    // including NUL and non-ASCII).
    for (uint64_t K = Rand.below(3) + 1; K > 0; --K)
      Mut[Rand.below(Mut.size())] = static_cast<char>(Rand.below(256));
    expectNoCrash(Mut);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MalformedInput,
                         ::testing::Values(101, 202, 303, 404));

} // namespace
} // namespace pinpoint
