//===- tests/PropertyTest.cpp - Parameterised property sweeps --------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style tests swept over seeds with TEST_P: solver agreement on
/// random formulas, pipeline invariants on random workloads, and the
/// end-to-end precision/recall contract of the whole system.
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Verifier.h"
#include "smt/LinearSolver.h"
#include "smt/Solver.h"
#include "support/RNG.h"
#include "svfa/GlobalSVFA.h"
#include "workload/Evaluate.h"

#include <gtest/gtest.h>

using namespace pinpoint::ir;

namespace pinpoint {
namespace {

//===----------------------------------------------------------------------===
// Random formula generation
//===----------------------------------------------------------------------===

class FormulaGen {
public:
  FormulaGen(smt::ExprContext &Ctx, uint64_t Seed) : Ctx(Ctx), Rand(Seed) {
    for (int I = 0; I < 4; ++I) {
      Bools.push_back(Ctx.freshBoolVar("b" + std::to_string(I)));
      Ints.push_back(Ctx.freshIntVar("i" + std::to_string(I)));
    }
  }

  const smt::Expr *gen(int Depth) {
    if (Depth == 0) {
      switch (Rand.below(3)) {
      case 0:
        return Bools[Rand.below(Bools.size())];
      case 1:
        return Ctx.mkCmp(
            static_cast<smt::ExprKind>(
                static_cast<int>(smt::ExprKind::Eq) + Rand.below(6)),
            Ints[Rand.below(Ints.size())],
            Ctx.getInt(Rand.range(-3, 3)));
      default:
        return Ctx.mkCmp(smt::ExprKind::Lt, Ints[Rand.below(Ints.size())],
                         Ints[Rand.below(Ints.size())]);
      }
    }
    switch (Rand.below(3)) {
    case 0:
      return Ctx.mkAnd(gen(Depth - 1), gen(Depth - 1));
    case 1:
      return Ctx.mkOr(gen(Depth - 1), gen(Depth - 1));
    default:
      return Ctx.mkNot(gen(Depth - 1));
    }
  }

private:
  smt::ExprContext &Ctx;
  RNG Rand;
  std::vector<const smt::Expr *> Bools, Ints;
};

class SolverAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverAgreement, LinearFilterIsSoundWrtZ3) {
  // Whatever the linear filter declares obviously-UNSAT must really be
  // UNSAT (checked against the trusted backend).
  smt::ExprContext Ctx;
  auto Z3 = smt::createZ3Solver(Ctx);
  if (!Z3)
    GTEST_SKIP() << "built without Z3";
  smt::LinearSolver Linear(Ctx);
  FormulaGen Gen(Ctx, GetParam());
  for (int I = 0; I < 40; ++I) {
    const smt::Expr *F = Gen.gen(4);
    if (Linear.isObviouslyUnsat(F))
      EXPECT_EQ(Z3->checkSat(F), smt::SatResult::Unsat)
          << Ctx.toString(F);
  }
}

TEST_P(SolverAgreement, MiniSolverAgreesWithZ3) {
  // The built-in solver must agree with Z3 whenever it gives a definite
  // answer on these formulas (its theory covers them).
  smt::ExprContext Ctx;
  auto Z3 = smt::createZ3Solver(Ctx);
  if (!Z3)
    GTEST_SKIP() << "built without Z3";
  auto Mini = smt::createMiniSolver(Ctx);
  FormulaGen Gen(Ctx, GetParam() ^ 0x5a5a);
  for (int I = 0; I < 25; ++I) {
    const smt::Expr *F = Gen.gen(3);
    smt::SatResult RZ = Z3->checkSat(F);
    smt::SatResult RM = Mini->checkSat(F);
    if (RZ == smt::SatResult::Unknown || RM == smt::SatResult::Unknown)
      continue;
    // Mini may answer Sat where the theory is too weak, but must never
    // claim Unsat for a satisfiable formula.
    if (RM == smt::SatResult::Unsat)
      EXPECT_EQ(RZ, smt::SatResult::Unsat) << Ctx.toString(F);
    if (RZ == smt::SatResult::Sat)
      EXPECT_EQ(RM, smt::SatResult::Sat) << Ctx.toString(F);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreement,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

//===----------------------------------------------------------------------===
// Pipeline invariants over random workloads
//===----------------------------------------------------------------------===

class PipelineProperty : public ::testing::TestWithParam<uint64_t> {
protected:
  workload::Workload makeWorkload() {
    workload::WorkloadConfig Cfg;
    Cfg.Seed = GetParam();
    Cfg.TargetLoC = 600;
    Cfg.FeasibleUAF = 2;
    Cfg.InfeasibleUAF = 3;
    Cfg.FeasibleDF = 1;
    Cfg.FeasibleTaint = 1;
    Cfg.AliasNoise = 3;
    return workload::generate(Cfg);
  }
};

TEST_P(PipelineProperty, GeneratedModulesStayWellFormedThroughPipeline) {
  workload::Workload W = makeWorkload();
  Module M;
  std::vector<frontend::Diag> Diags;
  ASSERT_TRUE(frontend::parseModule(W.Source, M, Diags));
  smt::ExprContext Ctx;
  svfa::AnalyzedModule AM(M, Ctx);
  // After SSA + connectors + call rewriting, every function still passes
  // the strict SSA verifier.
  auto Errs = verifyModule(M, /*ExpectSSA=*/true);
  EXPECT_TRUE(Errs.empty()) << (Errs.empty() ? "" : Errs[0]);
}

TEST_P(PipelineProperty, LoadDepConditionsAreSatisfiable) {
  // The quasi path-sensitive points-to must never emit a dependence whose
  // condition the SMT solver refutes: the linear filter only prunes, never
  // invents.
  workload::Workload W = makeWorkload();
  Module M;
  std::vector<frontend::Diag> Diags;
  ASSERT_TRUE(frontend::parseModule(W.Source, M, Diags));
  smt::ExprContext Ctx;
  svfa::AnalyzedModule AM(M, Ctx);
  auto Solver = smt::createDefaultSolver(Ctx);
  int Checked = 0;
  for (Function *F : M.functions()) {
    const auto &PTA = AM.info(F).PTA;
    for (BasicBlock *B : F->blocks())
      for (Stmt *S : B->stmts())
        if (auto *L = dyn_cast<LoadStmt>(S))
          for (auto &[CV, C] : PTA.loadDeps(L)) {
            if (Checked++ > 200)
              return; // Bound the SMT work per sweep instance.
            EXPECT_NE(Solver->checkSat(C), smt::SatResult::Unsat)
                << F->name() << ": " << Ctx.toString(C);
          }
  }
}

TEST_P(PipelineProperty, EndToEndPrecisionContract) {
  // The system contract on every workload: all feasible plants found, no
  // infeasible plant reported.
  workload::Workload W = makeWorkload();
  Module M;
  std::vector<frontend::Diag> Diags;
  ASSERT_TRUE(frontend::parseModule(W.Source, M, Diags));
  smt::ExprContext Ctx;
  auto Reports =
      svfa::checkModule(M, Ctx, checkers::useAfterFreeChecker());
  std::vector<workload::ReportView> Views;
  for (const auto &R : Reports)
    Views.push_back({R.Source.Line, R.Sink.Line,
                     workload::BugChecker::UseAfterFree});
  auto Eval = workload::evaluate(W.Bugs, Views,
                                 workload::BugChecker::UseAfterFree);
  EXPECT_EQ(Eval.FalseNegatives, 0);
  EXPECT_EQ(Eval.FalsePositives, 0); // No env-guarded plants in this config.
}

TEST_P(PipelineProperty, ReportsAreDeterministic) {
  workload::Workload W = makeWorkload();
  auto runOnce = [&] {
    Module M;
    std::vector<frontend::Diag> Diags;
    frontend::parseModule(W.Source, M, Diags);
    smt::ExprContext Ctx;
    auto Reports =
        svfa::checkModule(M, Ctx, checkers::useAfterFreeChecker());
    std::vector<std::pair<uint32_t, uint32_t>> Keys;
    for (const auto &R : Reports)
      Keys.push_back({R.Source.Line, R.Sink.Line});
    std::sort(Keys.begin(), Keys.end());
    return Keys;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

} // namespace
} // namespace pinpoint
