//===- tests/ResilienceTest.cpp - Degradation & fault-injection tests ------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the ResourceGovernor degradation paths end-to-end: solver
/// Unknown verdicts are kept (tagged) rather than dropped, budget
/// exhaustion truncates with logged events instead of hanging, and an
/// exception in one function's analysis is isolated without losing the
/// reports of every other function.
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "support/FaultInjector.h"
#include "support/ResourceGovernor.h"
#include "svfa/GlobalSVFA.h"

#include <gtest/gtest.h>

using namespace pinpoint::ir;

namespace pinpoint::svfa {
namespace {

/// Two independent use-after-free bugs in two unrelated functions.
constexpr const char *TwoBugSrc = R"(
  int f1(int *p) {
    free(p);
    return *p;
  }
  int f2(int *q) {
    free(q);
    return *q;
  })";

/// A branch-guarded bug: the path condition is satisfiable but not
/// trivially true, so the staged solver must consult the backend.
constexpr const char *GuardedBugSrc = R"(
  int f(int *p, int c) {
    if (c > 0) {
      free(p);
    }
    return *p;
  })";

class ResilienceTest : public ::testing::Test {
protected:
  void parse(std::string_view Src) {
    M = std::make_unique<Module>();
    std::vector<frontend::Diag> Diags;
    bool OK = frontend::parseModule(Src, *M, Diags);
    for (auto &D : Diags)
      ADD_FAILURE() << D.str();
    ASSERT_TRUE(OK);
    Ctx = std::make_unique<smt::ExprContext>();
  }

  /// Runs the UAF checker under \p Gov and stores the engine stats.
  std::vector<Report> runUAF(ResourceGovernor &Gov) {
    PipelineOptions PO;
    PO.Governor = &Gov;
    AnalyzedModule AM(*M, *Ctx, PO);
    GlobalOptions GO;
    GO.Governor = &Gov;
    GlobalSVFA Engine(AM, checkers::useAfterFreeChecker(), GO);
    auto Reports = Engine.run();
    EngineStats = Engine.stats();
    return Reports;
  }

  std::unique_ptr<Module> M;
  std::unique_ptr<smt::ExprContext> Ctx;
  GlobalSVFA::Stats EngineStats;
};

//===----------------------------------------------------------------------===
// (a) Solver Unknown yields a tagged report, not a drop
//===----------------------------------------------------------------------===

TEST_F(ResilienceTest, UnknownVerdictKeepsTaggedReport) {
  parse(GuardedBugSrc);
  FaultInjector FI;
  std::string Err;
  ASSERT_TRUE(FI.parse("seed=7,solver-unknown=100", Err)) << Err;
  ResourceGovernor Gov({}, std::move(FI));

  auto Reports = runUAF(Gov);
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].Verdict, smt::SatResult::Unknown);
  EXPECT_EQ(EngineStats.SolverUnknown, 1u);
  EXPECT_EQ(EngineStats.SolverSat, 0u);
  EXPECT_GT(Gov.log().count(DegradationKind::InjectedFault), 0u);
}

TEST_F(ResilienceTest, SatVerdictWithoutInjection) {
  parse(GuardedBugSrc);
  ResourceGovernor Gov;
  auto Reports = runUAF(Gov);
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].Verdict, smt::SatResult::Sat);
  EXPECT_EQ(EngineStats.SolverUnknown, 0u);
}

TEST_F(ResilienceTest, MiniSolverStepBudgetReturnsUnknown) {
  smt::ExprContext C;
  // (a || b) && (!a || c): satisfiable, but any budget of 1 DPLL step
  // cannot decide it.
  const smt::Expr *A = C.freshBoolVar("a"), *B = C.freshBoolVar("b"),
                  *D = C.freshBoolVar("c");
  const smt::Expr *E = C.mkAnd(C.mkOr(A, B), C.mkOr(C.mkNot(A), D));
  auto Tight = smt::createMiniSolver(C, {.MaxSteps = 1});
  EXPECT_EQ(Tight->checkSat(E), smt::SatResult::Unknown);
  auto Roomy = smt::createMiniSolver(C, {.MaxSteps = 100000});
  EXPECT_EQ(Roomy->checkSat(E), smt::SatResult::Sat);
}

//===----------------------------------------------------------------------===
// (b) Budget exhaustion terminates with a logged event
//===----------------------------------------------------------------------===

TEST_F(ResilienceTest, ClosureStepBudgetTruncatesWithEvent) {
  parse(TwoBugSrc);
  Budget B;
  B.MaxClosureSteps = 1;
  ResourceGovernor Gov(B);
  auto Reports = runUAF(Gov); // Must terminate; reports are best-effort.
  EXPECT_GT(Gov.log().count(DegradationKind::ClosureTruncated), 0u);
  for (const DegradationEvent &E : Gov.log().events()) {
    if (E.Kind == DegradationKind::ClosureTruncated) {
      EXPECT_EQ(E.Stage, "closure");
    }
  }
}

TEST_F(ResilienceTest, InjectedClosureOverrideForcesTruncation) {
  parse(TwoBugSrc);
  FaultInjector FI;
  std::string Err;
  ASSERT_TRUE(FI.parse("closure-steps=1", Err)) << Err;
  ResourceGovernor Gov({}, std::move(FI));
  runUAF(Gov);
  EXPECT_GT(Gov.log().count(DegradationKind::ClosureTruncated), 0u);
}

TEST_F(ResilienceTest, ExhaustedRunBudgetSkipsEverythingGracefully) {
  parse(TwoBugSrc);
  Budget B;
  B.RunWallMs = 0; // Already expired when the engines start.
  ResourceGovernor Gov(B);
  auto Reports = runUAF(Gov);
  EXPECT_TRUE(Reports.empty());
  EXPECT_GT(Gov.log().count(DegradationKind::RunBudgetExhausted), 0u);
}

TEST_F(ResilienceTest, PTAStepBudgetMarksTruncation) {
  parse(TwoBugSrc);
  Budget B;
  B.MaxPTASteps = 1;
  ResourceGovernor Gov(B);
  runUAF(Gov);
  EXPECT_GT(Gov.log().count(DegradationKind::PTATruncated), 0u);
}

TEST_F(ResilienceTest, OversizedFunctionsDegradeButStillReportLocalBugs) {
  parse(TwoBugSrc);
  Budget B;
  B.MaxFunctionStmts = 1; // Every function is "oversized".
  ResourceGovernor Gov(B);
  auto Reports = runUAF(Gov);
  EXPECT_GT(Gov.log().count(DegradationKind::FunctionOversized), 0u);
  // The conservative fallback still carries direct def-use flow, so these
  // purely local free-then-deref bugs survive degradation.
  EXPECT_EQ(Reports.size(), 2u);
}

//===----------------------------------------------------------------------===
// (c) One function's failure does not lose the others' reports
//===----------------------------------------------------------------------===

TEST_F(ResilienceTest, InjectedFunctionThrowIsIsolated) {
  parse(TwoBugSrc);
  ResourceGovernor Baseline;
  ASSERT_EQ(runUAF(Baseline).size(), 2u);

  parse(TwoBugSrc);
  FaultInjector FI;
  std::string Err;
  ASSERT_TRUE(FI.parse("throw-fn=f1", Err)) << Err;
  ResourceGovernor Gov({}, std::move(FI));
  auto Reports = runUAF(Gov);
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].SourceFn, "f2");
  EXPECT_EQ(EngineStats.IsolatedFailures, 1u);
  EXPECT_EQ(Gov.log().count(DegradationKind::FunctionFailed), 1u);
}

TEST_F(ResilienceTest, PipelineFaultIsolatedToOneFunction) {
  parse(TwoBugSrc);
  FaultInjector FI;
  std::string Err;
  ASSERT_TRUE(FI.parse("pipeline-throw-fn=f1", Err)) << Err;
  ResourceGovernor Gov({}, std::move(FI));
  auto Reports = runUAF(Gov);
  EXPECT_EQ(Gov.log().count(DegradationKind::FunctionFailed), 1u);
  // f2 is untouched; f1 falls back to the degraded build (which may or may
  // not still find its local bug, but must not crash or mask f2).
  bool SawF2 = false;
  for (const Report &R : Reports)
    SawF2 |= R.SourceFn == "f2";
  EXPECT_TRUE(SawF2);
}

//===----------------------------------------------------------------------===
// FaultInjector spec parsing
//===----------------------------------------------------------------------===

TEST(FaultInjectorTest, ParsesFullSpec) {
  FaultInjector FI;
  std::string Err;
  EXPECT_TRUE(FI.parse(
      "seed=42,solver-unknown=50,throw-fn=a,pipeline-throw-fn=b,"
      "throw-checker=uaf,closure-steps=10",
      Err))
      << Err;
  EXPECT_TRUE(FI.enabled());
  EXPECT_TRUE(FI.injectFunctionThrow("a"));
  EXPECT_FALSE(FI.injectFunctionThrow("b"));
  EXPECT_TRUE(FI.injectPipelineThrow("b"));
  EXPECT_TRUE(FI.injectCheckerThrow("uaf"));
  EXPECT_EQ(FI.closureStepOverride(), 10u);
}

TEST(FaultInjectorTest, RejectsMalformedSpecs) {
  FaultInjector FI;
  std::string Err;
  EXPECT_FALSE(FI.parse("bogus-key=1", Err));
  EXPECT_FALSE(FI.parse("solver-unknown=150", Err));
  EXPECT_FALSE(FI.parse("solver-unknown=abc", Err));
  EXPECT_FALSE(FI.parse("seed", Err));
  EXPECT_FALSE(FI.parse("closure-steps=0", Err));
  EXPECT_FALSE(FI.enabled());
}

TEST(FaultInjectorTest, SolverUnknownIsDeterministicPerSeed) {
  std::string Err;
  auto Draw = [&](uint64_t) {
    FaultInjector FI;
    EXPECT_TRUE(FI.parse("seed=9,solver-unknown=50", Err));
    std::vector<bool> Out;
    for (int I = 0; I < 64; ++I)
      Out.push_back(FI.injectSolverUnknown());
    return Out;
  };
  EXPECT_EQ(Draw(9), Draw(9));
}

//===----------------------------------------------------------------------===
// DegradationLog bookkeeping
//===----------------------------------------------------------------------===

TEST(DegradationLogTest, CountsAndSummarizes) {
  DegradationLog Log;
  Log.note(DegradationKind::SolverUnknown, "smt", "f1", "q1");
  Log.note(DegradationKind::SolverUnknown, "smt", "f1", "q2");
  Log.note(DegradationKind::CheckerFailed, "checker", "uaf", "boom");
  EXPECT_EQ(Log.count(DegradationKind::SolverUnknown), 2u);
  EXPECT_EQ(Log.count(DegradationKind::CheckerFailed), 1u);
  EXPECT_EQ(Log.total(), 3u);
  EXPECT_EQ(Log.events().size(), 3u);
  std::string S = Log.summary();
  EXPECT_NE(S.find("degradations=3"), std::string::npos);
  EXPECT_NE(S.find("solver-unknown=2"), std::string::npos);
  EXPECT_NE(S.find("checker-failed=1"), std::string::npos);
}

} // namespace
} // namespace pinpoint::svfa
