//===- tests/ParallelTest.cpp - Parallel engine correctness tests ----------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract of the parallel engine (`--jobs N`): scheduling is an
/// implementation detail, results are not. These tests pin down
///
///  * the ThreadPool primitives (completion, exception propagation, and the
///    helping-wait that makes nested TaskGroup waits deadlock-free even on a
///    one-worker pool);
///  * report-level determinism — analysing generator subjects with a
///    4-worker pool yields exactly the serial run's reports, in order;
///  * fault isolation under parallelism — injected per-function failures
///    stay confined to their function with workers running concurrently;
///  * degradation events carrying the function name, so logs stay
///    attributable (and sortable) regardless of thread interleaving.
///
//===----------------------------------------------------------------------===//

#include "checkers/SpecialCheckers.h"
#include "frontend/Parser.h"
#include "support/FaultInjector.h"
#include "support/ResourceGovernor.h"
#include "support/ThreadPool.h"
#include "svfa/GlobalSVFA.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

using namespace pinpoint;

namespace pinpoint::svfa {
namespace {

//===----------------------------------------------------------------------===
// ThreadPool primitives
//===----------------------------------------------------------------------===

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.workers(), 4u);
  std::atomic<int> Sum{0};
  ThreadPool::TaskGroup G(Pool);
  for (int I = 1; I <= 100; ++I)
    G.spawn([&Sum, I] { Sum.fetch_add(I); });
  G.wait();
  EXPECT_EQ(Sum.load(), 5050);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool Pool(2);
  {
    ThreadPool::TaskGroup G(Pool);
    for (int I = 0; I < 8; ++I)
      G.spawn([I] {
        if (I == 3)
          throw std::runtime_error("task 3 failed");
      });
    EXPECT_THROW(G.wait(), std::runtime_error);
  }
  // The pool must stay usable after a group saw an exception.
  std::atomic<int> Ran{0};
  ThreadPool::TaskGroup G2(Pool);
  for (int I = 0; I < 8; ++I)
    G2.spawn([&Ran] { Ran.fetch_add(1); });
  G2.wait();
  EXPECT_EQ(Ran.load(), 8);
}

TEST(ThreadPoolTest, NestedWaitDoesNotDeadlockOnOneWorker) {
  // The scheduler nests waits (a pool task runs a TaskGroup of its own, as
  // GlobalSVFA's deferred discharge does inside a checker task). With one
  // worker that deadlocks unless wait() helps run queued tasks inline.
  ThreadPool Pool(1);
  std::atomic<int> Inner{0};
  ThreadPool::TaskGroup Outer(Pool);
  Outer.spawn([&Pool, &Inner] {
    ThreadPool::TaskGroup G(Pool);
    for (int I = 0; I < 4; ++I)
      G.spawn([&Inner] { Inner.fetch_add(1); });
    G.wait();
  });
  Outer.wait();
  EXPECT_EQ(Inner.load(), 4);
}

TEST(ThreadPoolTest, WaitingThreadHelpsRunTasks) {
  // Even the thread calling wait() (not a pool worker) must be able to
  // drain the queue, so a saturated pool cannot starve its waiter.
  ThreadPool Pool(1);
  std::atomic<int> Ran{0};
  ThreadPool::TaskGroup G(Pool);
  for (int I = 0; I < 64; ++I)
    G.spawn([&Ran] { Ran.fetch_add(1); });
  G.wait();
  EXPECT_EQ(Ran.load(), 64);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

//===----------------------------------------------------------------------===
// Determinism: jobs=4 must reproduce the serial reports byte for byte
//===----------------------------------------------------------------------===

std::string render(const Report &R) {
  std::string Out = R.Checker + "|" + R.SourceFn + ":" + R.Source.str() +
                    "->" + R.SinkFn + ":" + R.Sink.str() + "|" +
                    smt::toString(R.Verdict);
  for (const std::string &Step : R.Path)
    Out += "|" + Step;
  return Out;
}

/// Parses \p Src fresh (the pipeline mutates the module) and runs \p Spec
/// with a \p Jobs-worker pool (Jobs <= 1: the serial path).
std::vector<std::string> runRendered(const std::string &Src,
                                     const checkers::CheckerSpec &Spec,
                                     unsigned Jobs,
                                     const std::string &FaultSpec = "",
                                     Budget Bud = {}) {
  ir::Module M;
  std::vector<frontend::Diag> Diags;
  EXPECT_TRUE(frontend::parseModule(Src, M, Diags));
  for (auto &D : Diags)
    ADD_FAILURE() << D.str();
  smt::ExprContext Ctx;

  FaultInjector FI;
  if (!FaultSpec.empty()) {
    std::string Err;
    EXPECT_TRUE(FI.parse(FaultSpec, Err)) << Err;
  }
  ResourceGovernor Gov(Bud, std::move(FI));

  std::unique_ptr<ThreadPool> Pool;
  if (Jobs > 1)
    Pool = std::make_unique<ThreadPool>(Jobs);

  PipelineOptions PO;
  PO.Governor = &Gov;
  PO.Pool = Pool.get();
  AnalyzedModule AM(M, Ctx, PO);

  GlobalOptions GO;
  GO.Governor = &Gov;
  GO.Pool = Pool.get();
  GlobalSVFA Engine(AM, Spec, GO);

  std::vector<std::string> Out;
  for (const Report &R : Engine.run())
    Out.push_back(render(R));
  return Out;
}

workload::WorkloadConfig subjectConfig(uint64_t Seed) {
  workload::WorkloadConfig C;
  C.Seed = Seed;
  C.TargetLoC = 800;
  C.FeasibleUAF = 3;
  C.InfeasibleUAF = 2;
  C.EnvGuardedUAF = 1;
  C.FeasibleDF = 2;
  C.FeasibleTaint = 2;
  C.InfeasibleTaint = 1;
  C.AliasNoise = 3;
  C.CallDepth = 3;
  return C;
}

TEST(ParallelDeterminismTest, WorkloadSubjectsMatchSerial) {
  const checkers::CheckerSpec Specs[] = {
      checkers::useAfterFreeChecker(), checkers::doubleFreeChecker(),
      checkers::pathTraversalChecker()};
  for (uint64_t Seed : {11u, 42u, 77u}) {
    workload::Workload W = workload::generate(subjectConfig(Seed));
    for (const checkers::CheckerSpec &Spec : Specs) {
      std::vector<std::string> Serial = runRendered(W.Source, Spec, 1);
      std::vector<std::string> Parallel = runRendered(W.Source, Spec, 4);
      EXPECT_EQ(Serial, Parallel)
          << "seed " << Seed << ", checker " << Spec.Name;
      // A subject with planted bugs must actually produce reports, or the
      // comparison is vacuous.
      if (Spec.Name == "use-after-free") {
        EXPECT_FALSE(Serial.empty()) << "seed " << Seed;
      }
    }
  }
}

TEST(ParallelDeterminismTest, RepeatedParallelRunsAreStable) {
  workload::Workload W = workload::generate(subjectConfig(5));
  const checkers::CheckerSpec Spec = checkers::useAfterFreeChecker();
  std::vector<std::string> First = runRendered(W.Source, Spec, 4);
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(runRendered(W.Source, Spec, 4), First) << "iteration " << I;
}

/// Fingerprint of the whole pipeline output: rewritten IR text plus
/// interface and SEG shape for every function, in bottom-up order.
std::string pipelineFingerprint(const std::string &Src, unsigned Jobs) {
  ir::Module M;
  std::vector<frontend::Diag> Diags;
  EXPECT_TRUE(frontend::parseModule(Src, M, Diags));
  smt::ExprContext Ctx;
  std::unique_ptr<ThreadPool> Pool;
  if (Jobs > 1)
    Pool = std::make_unique<ThreadPool>(Jobs);
  PipelineOptions PO;
  PO.Pool = Pool.get();
  AnalyzedModule AM(M, Ctx, PO);

  std::string Out;
  for (ir::Function *F : AM.bottomUpOrder()) {
    const AnalyzedFunction &I = AM.info(F);
    Out += F->str();
    Out += "refs=" + std::to_string(I.Interface.RefPaths.size()) +
           " mods=" + std::to_string(I.Interface.ModPaths.size()) +
           " edges=" + std::to_string(I.Seg ? I.Seg->numEdges() : 0) +
           " verts=" + std::to_string(I.Seg ? I.Seg->numVertices() : 0) + "\n";
  }
  return Out;
}

TEST(ParallelDeterminismTest, WideSubjectPipelineMatchesSerialExactly) {
  // Regression: a subject with hundreds of root SCCs (the generator's hub
  // allocators) and fast leaf tasks once made the scheduler's root scan
  // race with early completions and spawn some SCCs twice, running the
  // interface transform twice on one function. Small subjects never hit
  // the window; this wide one did on every run. The fingerprint covers the
  // rewritten IR itself, so a doubled transform cannot cancel out.
  workload::WorkloadConfig C;
  C.Seed = 3;
  C.TargetLoC = 6000;
  C.FeasibleUAF = 8;
  C.InfeasibleUAF = 4;
  C.EnvGuardedUAF = 2;
  C.FeasibleDF = 4;
  C.FeasibleTaint = 3;
  C.InfeasibleTaint = 2;
  C.AliasNoise = 8;
  C.CallDepth = 4;
  workload::Workload W = workload::generate(C);

  std::string Serial = pipelineFingerprint(W.Source, 1);
  for (unsigned Jobs : {2u, 4u})
    for (int Rep = 0; Rep < 2; ++Rep)
      EXPECT_EQ(Serial, pipelineFingerprint(W.Source, Jobs))
          << "jobs " << Jobs << ", rep " << Rep;
}

//===----------------------------------------------------------------------===
// Schedule-mode determinism: fifo and steal agree at every width
//===----------------------------------------------------------------------===

/// A \p Layers x \p Width diamond lattice of singleton SCCs: every
/// function in layer L calls two adjacent functions of layer L+1 (the
/// cones re-join, so mid-lattice SCCs become ready in bursts and the
/// scheduler's dispatch order really matters). Each bottom leaf plants a
/// feasible use-after-free; the layer above allocates, so value flow stays
/// one call deep — threading one pointer through the whole lattice would
/// double the path conditions per layer and swamp the scheduling question
/// this subject exists to ask.
std::string diamondLatticeSubject(unsigned Layers, unsigned Width) {
  std::string S;
  // Bottom-up so every callee is defined before its caller.
  for (unsigned L = Layers; L-- > 0;) {
    for (unsigned J = 0; J < Width; ++J) {
      std::string Name = "d" + std::to_string(L) + "_" + std::to_string(J);
      std::string A = "d" + std::to_string(L + 1) + "_" + std::to_string(J);
      std::string B = "d" + std::to_string(L + 1) + "_" +
                      std::to_string((J + 1) % Width);
      if (L + 1 == Layers) {
        S += "int " + Name + "(int *p, int c) { if (c > 0) { free(p); } "
             "if (c > 1) { int x = *p; } return c; }\n";
      } else if (L + 2 == Layers) {
        S += "int " + Name + "(int c) { int *p = malloc(4); int a = " + A +
             "(p, c); int b = " + B + "(p, c); return a + b; }\n";
      } else {
        S += "int " + Name + "(int c) { int a = " + A + "(c); int b = " + B +
             "(c); return a + b; }\n";
      }
    }
  }
  return S;
}

/// runRendered with an explicit schedule mode; always pools (jobs=1 runs
/// the parallel path on a single worker, not the serial loop).
std::vector<std::string> runLattice(const std::string &Src, unsigned Jobs,
                                    ThreadPool::Schedule Mode) {
  ir::Module M;
  std::vector<frontend::Diag> Diags;
  EXPECT_TRUE(frontend::parseModule(Src, M, Diags));
  smt::ExprContext Ctx;
  ThreadPool Pool(Jobs, Mode);
  PipelineOptions PO;
  PO.Pool = &Pool;
  AnalyzedModule AM(M, Ctx, PO);
  GlobalOptions GO;
  GO.Pool = &Pool;
  GlobalSVFA Engine(AM, checkers::useAfterFreeChecker(), GO);
  std::vector<std::string> Out;
  for (const Report &R : Engine.run())
    Out.push_back(render(R));
  return Out;
}

TEST(ParallelDeterminismTest, DiamondLatticeMatchesAcrossSchedules) {
  // 10 x 5 = 50 SCCs. The serial loop is the reference; both disciplines
  // at one, two and eight workers must reproduce its reports exactly —
  // rank-priority dispatch and randomized stealing are scheduling detail,
  // never output.
  const std::string Src = diamondLatticeSubject(10, 5);
  const std::vector<std::string> Serial =
      runRendered(Src, checkers::useAfterFreeChecker(), 1);
  EXPECT_FALSE(Serial.empty()) << "lattice planted no findings";
  for (ThreadPool::Schedule Mode :
       {ThreadPool::Schedule::Fifo, ThreadPool::Schedule::Steal}) {
    for (unsigned Jobs : {1u, 2u, 8u}) {
      EXPECT_EQ(runLattice(Src, Jobs, Mode), Serial)
          << (Mode == ThreadPool::Schedule::Fifo ? "fifo" : "steal")
          << " jobs=" << Jobs;
    }
  }
}

//===----------------------------------------------------------------------===
// Fault isolation under parallelism
//===----------------------------------------------------------------------===

constexpr const char *TwoBugSrc = R"(
  int f1(int *p) {
    free(p);
    return *p;
  }
  int f2(int *q) {
    free(q);
    return *q;
  })";

constexpr const char *GuardedBugSrc = R"(
  int f(int *p, int c) {
    if (c > 0) {
      free(p);
    }
    return *p;
  })";

TEST(ParallelFaultTest, SvfaThrowIsolatedUnderJobs4) {
  // f1's analysis throws; with four workers f2's reports must survive and
  // match the serial run exactly.
  std::vector<std::string> Serial =
      runRendered(TwoBugSrc, checkers::useAfterFreeChecker(), 1,
                  "seed=7,throw-fn=f1");
  std::vector<std::string> Parallel =
      runRendered(TwoBugSrc, checkers::useAfterFreeChecker(), 4,
                  "seed=7,throw-fn=f1");
  EXPECT_EQ(Serial, Parallel);
  ASSERT_EQ(Parallel.size(), 1u);
  EXPECT_NE(Parallel[0].find("f2"), std::string::npos);
}

TEST(ParallelFaultTest, PipelineThrowIsolatedUnderJobs4) {
  // The per-function pipeline task for f1 throws inside a pool worker: f1
  // degrades to the conservative fallback, f2 is untouched, and the
  // resulting reports equal the serial run's.
  std::vector<std::string> Serial =
      runRendered(TwoBugSrc, checkers::useAfterFreeChecker(), 1,
                  "seed=7,pipeline-throw-fn=f1");
  std::vector<std::string> Parallel =
      runRendered(TwoBugSrc, checkers::useAfterFreeChecker(), 4,
                  "seed=7,pipeline-throw-fn=f1");
  EXPECT_EQ(Serial, Parallel);
  EXPECT_FALSE(Parallel.empty());
}

TEST(ParallelFaultTest, ForcedSolverUnknownMatchesSerial) {
  // solver-unknown=100 is one of the two injection rates that stay
  // deterministic under parallel discharge (every draw fires).
  std::vector<std::string> Serial =
      runRendered(GuardedBugSrc, checkers::useAfterFreeChecker(), 1,
                  "seed=7,solver-unknown=100");
  std::vector<std::string> Parallel =
      runRendered(GuardedBugSrc, checkers::useAfterFreeChecker(), 4,
                  "seed=7,solver-unknown=100");
  EXPECT_EQ(Serial, Parallel);
  ASSERT_EQ(Parallel.size(), 1u);
  EXPECT_NE(Parallel[0].find("unknown"), std::string::npos);
}

//===----------------------------------------------------------------------===
// Degradation events stay attributable under parallelism
//===----------------------------------------------------------------------===

TEST(ParallelDegradationTest, EventsCarryFunctionAndMatchSerial) {
  workload::Workload W = workload::generate(subjectConfig(11));

  auto collect = [&](unsigned Jobs) {
    ir::Module M;
    std::vector<frontend::Diag> Diags;
    EXPECT_TRUE(frontend::parseModule(W.Source, M, Diags));
    smt::ExprContext Ctx;
    Budget B;
    B.MaxClosureSteps = 2; // Force closure truncation everywhere.
    ResourceGovernor Gov(B);
    std::unique_ptr<ThreadPool> Pool;
    if (Jobs > 1)
      Pool = std::make_unique<ThreadPool>(Jobs);
    PipelineOptions PO;
    PO.Governor = &Gov;
    PO.Pool = Pool.get();
    AnalyzedModule AM(M, Ctx, PO);
    GlobalOptions GO;
    GO.Governor = &Gov;
    GO.Pool = Pool.get();
    GlobalSVFA Engine(AM, checkers::useAfterFreeChecker(), GO);
    (void)Engine.run();

    // Sorted multiset of (stage, function, kind, detail): the parallel log
    // arrives in completion order but must hold the same events.
    std::multiset<std::string> Events;
    for (const DegradationEvent &E : Gov.log().events()) {
      if (E.Kind == DegradationKind::ClosureTruncated) {
        EXPECT_FALSE(E.Function.empty()) << E.Detail;
      }
      Events.insert(E.Stage + "|" + E.Function + "|" +
                    std::to_string(static_cast<int>(E.Kind)) + "|" + E.Detail);
    }
    return Events;
  };

  std::multiset<std::string> Serial = collect(1);
  std::multiset<std::string> Parallel = collect(4);
  EXPECT_FALSE(Serial.empty());
  EXPECT_EQ(Serial, Parallel);
}

} // namespace
} // namespace pinpoint::svfa
