//===- tests/SEGTest.cpp - Symbolic Expression Graph unit tests ------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "smt/Solver.h"
#include "svfa/Pipeline.h"

#include <gtest/gtest.h>

using namespace pinpoint::ir;

namespace pinpoint::seg {
namespace {

class SEGTest : public ::testing::Test {
protected:
  /// Runs the full pipeline; SEGs live in AM.
  void analyze(std::string_view Src) {
    M = std::make_unique<Module>();
    std::vector<frontend::Diag> Diags;
    bool OK = frontend::parseModule(Src, *M, Diags);
    for (auto &D : Diags)
      ADD_FAILURE() << D.str();
    ASSERT_TRUE(OK);
    AM = std::make_unique<svfa::AnalyzedModule>(*M, Ctx);
  }

  SEG &segOf(const std::string &Fn) {
    return *AM->info(M->function(Fn)).Seg;
  }
  Function *fn(const std::string &Name) { return M->function(Name); }

  const Variable *varNamed(Function *F, std::string_view Prefix) {
    for (const Variable *V : F->vars())
      if (V->name().rfind(Prefix, 0) == 0)
        return V;
    return nullptr;
  }

  smt::ExprContext Ctx;
  std::unique_ptr<Module> M;
  std::unique_ptr<svfa::AnalyzedModule> AM;
};

TEST_F(SEGTest, AssignCreatesDirectFlowEdge) {
  analyze("int f(int *a) { int *b = a; return *b; }");
  Function *F = fn("f");
  SEG &S = segOf("f");
  const Variable *A = F->params()[0];
  bool Found = false;
  for (const FlowEdge &E : S.flowsOut(A))
    if (E.Direct && E.To->name().rfind("b", 0) == 0)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST_F(SEGTest, FlowInMirrorsFlowOut) {
  analyze("int f(int a) { int b = a; int c = b; return c; }");
  SEG &S = segOf("f");
  const Variable *A = fn("f")->params()[0];
  ASSERT_FALSE(S.flowsOut(A).empty());
  const Variable *B = S.flowsOut(A)[0].To;
  bool Mirror = false;
  for (const FlowEdge &E : S.flowsIn(B))
    if (E.To == A) // FlowIn stores the source in To.
      Mirror = true;
  EXPECT_TRUE(Mirror);
}

TEST_F(SEGTest, PhiEdgesCarryComplementaryGates) {
  analyze(R"(
    int f(int a, int b, bool t) {
      int x = a;
      if (t) { x = b; }
      return x;
    })");
  SEG &S = segOf("f");
  Function *F = fn("f");
  // The phi's two incoming edges (from the copies of a and b) carry θ/¬θ.
  const PhiStmt *Phi = nullptr;
  for (BasicBlock *B : F->blocks())
    for (Stmt *St : B->stmts())
      if (auto *P = dyn_cast<PhiStmt>(St))
        Phi = P;
  ASSERT_NE(Phi, nullptr);
  std::vector<const smt::Expr *> Gates;
  for (const FlowEdge &E : S.flowsIn(Phi->dst()))
    if (E.Via == Phi)
      Gates.push_back(E.Cond);
  ASSERT_EQ(Gates.size(), 2u);
  EXPECT_EQ(Ctx.mkAnd(Gates[0], Gates[1]), Ctx.getFalse());
  EXPECT_EQ(Ctx.mkOr(Gates[0], Gates[1]), Ctx.getTrue());
}

TEST_F(SEGTest, OperatorEdgesAreIndirect) {
  analyze("int f(int a, int b) { int c = a + b; return c; }");
  SEG &S = segOf("f");
  const Variable *A = fn("f")->params()[0];
  ASSERT_FALSE(S.flowsOut(A).empty());
  for (const FlowEdge &E : S.flowsOut(A))
    if (isa<BinOpStmt>(E.Via))
      EXPECT_FALSE(E.Direct);
}

TEST_F(SEGTest, LoadEdgesCarryAliasConditions) {
  analyze(R"(
    int f(int *a, int *b, bool t) {
      int **h = malloc();
      *h = a;
      if (t) { *h = b; }
      int *v = *h;
      return *v;
    })");
  SEG &S = segOf("f");
  Function *F = fn("f");
  // a flows into v under ¬t.
  const smt::Expr *CondA = nullptr;
  for (const FlowEdge &E : S.flowsOut(F->params()[0]))
    if (isa<LoadStmt>(E.Via))
      CondA = E.Cond;
  ASSERT_NE(CondA, nullptr);
  EXPECT_FALSE(CondA->isTrue());
  // And the condition is satisfiable.
  auto Solver = smt::createDefaultSolver(Ctx);
  EXPECT_EQ(Solver->checkSat(CondA), smt::SatResult::Sat);
}

TEST_F(SEGTest, UsesIndexSinksAndCalls) {
  analyze(R"(
    void g(int *q) { }
    void f(int *p) {
      free(p);
      g(p);
      int v = *p;
    })");
  SEG &S = segOf("f");
  const Variable *P = fn("f")->params()[0];
  int CallArgs = 0, Derefs = 0;
  for (const Use &U : S.usesOf(P)) {
    if (U.Kind == UseKind::CallArg)
      ++CallArgs;
    if (U.Kind == UseKind::DerefAddr && !U.S->isSynthetic())
      ++Derefs;
  }
  EXPECT_EQ(CallArgs, 2); // free + g.
  EXPECT_EQ(Derefs, 1);
}

TEST_F(SEGTest, DDOfArithmeticChain) {
  analyze("int f(int a) { int b = a + 1; int c = b * 2; return c; }");
  SEG &S = segOf("f");
  Function *F = fn("f");
  const auto *RetVal =
      dyn_cast<Variable>(F->returnStmt()->values()[0]);
  const Closure &D = S.dd(RetVal);
  // DD leaves the parameter open.
  ASSERT_EQ(D.OpenParams.size(), 1u);
  EXPECT_EQ(D.OpenParams[0], F->params()[0]);
  // The constraint pins c = (a+1)*2: with a = 3, c must equal 8.
  auto Solver = smt::createDefaultSolver(Ctx);
  const smt::Expr *A = S.symbol(F->params()[0]);
  const smt::Expr *C = S.symbol(RetVal);
  const smt::Expr *Probe =
      Ctx.mkAnd(D.C, Ctx.mkAnd(Ctx.mkEq(A, Ctx.getInt(3)),
                               Ctx.mkEq(C, Ctx.getInt(8))));
  EXPECT_EQ(Solver->checkSat(Probe), smt::SatResult::Sat);
  const smt::Expr *Wrong =
      Ctx.mkAnd(D.C, Ctx.mkAnd(Ctx.mkEq(A, Ctx.getInt(3)),
                               Ctx.mkEq(C, Ctx.getInt(9))));
  EXPECT_EQ(Solver->checkSat(Wrong), smt::SatResult::Unsat);
}

TEST_F(SEGTest, DDOfPhiEncodesGatedEqualities) {
  analyze(R"(
    int f(int a, int b, bool t) {
      int x = a;
      if (t) { x = b; }
      return x;
    })");
  SEG &S = segOf("f");
  Function *F = fn("f");
  const auto *RetVal = dyn_cast<Variable>(F->returnStmt()->values()[0]);
  const Closure &D = S.dd(RetVal);
  auto Solver = smt::createDefaultSolver(Ctx);
  // Under t, the result must equal b.
  const Variable *BoolParam = F->params()[0];
  for (const Variable *V : F->params())
    if (V->type().isBool())
      BoolParam = V;
  const smt::Expr *T = S.symbol(BoolParam);
  const smt::Expr *Probe = Ctx.mkAnd(
      D.C,
      Ctx.mkAnd(T, Ctx.mkAnd(
                       Ctx.mkEq(S.symbol(F->params()[1]), Ctx.getInt(7)),
                       Ctx.mkNe(S.symbol(RetVal), Ctx.getInt(7)))));
  EXPECT_EQ(Solver->checkSat(Probe), smt::SatResult::Unsat);
}

TEST_F(SEGTest, DDIsMemoised) {
  analyze("int f(int a) { int b = a + 1; return b; }");
  SEG &S = segOf("f");
  Function *F = fn("f");
  const auto *RetVal = dyn_cast<Variable>(F->returnStmt()->values()[0]);
  const Closure &D1 = S.dd(RetVal);
  const Closure &D2 = S.dd(RetVal);
  EXPECT_EQ(&D1, &D2);
}

TEST_F(SEGTest, DDOpensCallReceivers) {
  analyze(R"(
    int callee(int x) { return x + 1; }
    int f(int a) {
      int r = callee(a);
      return r;
    })");
  SEG &S = segOf("f");
  Function *F = fn("f");
  const auto *RetVal = dyn_cast<Variable>(F->returnStmt()->values()[0]);
  const Closure &D = S.dd(RetVal);
  ASSERT_EQ(D.OpenRecvs.size(), 1u);
  EXPECT_EQ(D.OpenRecvs[0].second, -1); // Primary receiver.
}

TEST_F(SEGTest, MallocReceiversAreNonNull) {
  analyze("int *f() { int *p = malloc(); return p; }");
  SEG &S = segOf("f");
  Function *F = fn("f");
  const auto *RetVal = dyn_cast<Variable>(F->returnStmt()->values()[0]);
  const Closure &D = S.dd(RetVal);
  auto Solver = smt::createDefaultSolver(Ctx);
  // retval == 0 contradicts the malloc non-nullness.
  const smt::Expr *Probe =
      Ctx.mkAnd(D.C, Ctx.mkEq(S.symbol(RetVal), Ctx.getInt(0)));
  EXPECT_EQ(Solver->checkSat(Probe), smt::SatResult::Unsat);
}

TEST_F(SEGTest, ControlCondChainsNestedBranches) {
  // Example 3.8's shape: a statement inside a nested branch is control
  // dependent on the inner condition, which is control dependent on the
  // outer one.
  analyze(R"(
    void f(int *p, int a) {
      if (a > 0) {
        bool inner = a > 10;
        if (inner) {
          free(p);
        }
      }
    })");
  SEG &S = segOf("f");
  Function *F = fn("f");
  const Stmt *FreeCall = nullptr;
  for (BasicBlock *B : F->blocks())
    for (Stmt *St : B->stmts())
      if (auto *C = dyn_cast<CallStmt>(St))
        if (C->calleeName() == "free")
          FreeCall = C;
  ASSERT_NE(FreeCall, nullptr);
  Closure CD = S.controlCond(FreeCall);
  auto Solver = smt::createDefaultSolver(Ctx);
  // The chained condition forces a > 10 (and transitively a > 0).
  const smt::Expr *A = S.symbol(F->params()[1]);
  EXPECT_EQ(Solver->checkSat(Ctx.mkAnd(CD.C, Ctx.mkEq(A, Ctx.getInt(5)))),
            smt::SatResult::Unsat);
  EXPECT_EQ(Solver->checkSat(Ctx.mkAnd(CD.C, Ctx.mkEq(A, Ctx.getInt(20)))),
            smt::SatResult::Sat);
}

TEST_F(SEGTest, EfficientPathConditionVsCanonical) {
  // Example 3.6: the exit's efficient condition is empty (true) even though
  // the canonical path enumeration would mention all branches. Here the
  // canonical reach condition folds to true too (hash-consing folds the
  // disjunction), demonstrating the compact-encoding property.
  analyze(R"(
    int f(bool t3, bool t4) {
      int y = 0;
      if (t3) { y = 1; }
      else {
        if (t4) { y = 2; }
      }
      return y;
    })");
  Function *F = fn("f");
  SEG &S = segOf("f");
  Closure CD = S.controlCond(F->returnStmt());
  EXPECT_TRUE(CD.C->isTrue());
}

TEST_F(SEGTest, SEGCountsAreReported) {
  analyze("int f(int a, int b) { int c = a + b; return c; }");
  SEG &S = segOf("f");
  EXPECT_GT(S.numEdges(), 0u);
  EXPECT_GT(S.numVertices(), 0u);
}

} // namespace
} // namespace pinpoint::seg
