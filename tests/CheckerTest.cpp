//===- tests/CheckerTest.cpp - End-to-end checker tests --------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-pipeline tests: parse → SSA → connectors → SEG → global SVFA →
/// SMT. Includes the paper's own motivating examples (Figures 1/2 and 5).
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "svfa/GlobalSVFA.h"

#include <gtest/gtest.h>

using namespace pinpoint::ir;

namespace pinpoint::svfa {
namespace {

class CheckerTest : public ::testing::Test {
protected:
  std::vector<Report> check(std::string_view Src,
                            const checkers::CheckerSpec &Spec,
                            GlobalOptions Opts = {}) {
    M = std::make_unique<Module>();
    std::vector<frontend::Diag> Diags;
    bool OK = frontend::parseModule(Src, *M, Diags);
    for (auto &D : Diags)
      ADD_FAILURE() << D.str();
    EXPECT_TRUE(OK);
    Ctx = std::make_unique<smt::ExprContext>();
    return checkModule(*M, *Ctx, Spec, Opts);
  }

  std::vector<Report> checkUAF(std::string_view Src, GlobalOptions O = {}) {
    return check(Src, checkers::useAfterFreeChecker(), O);
  }

  std::unique_ptr<Module> M;
  std::unique_ptr<smt::ExprContext> Ctx;
};

//===----------------------------------------------------------------------===
// Intra-procedural use-after-free
//===----------------------------------------------------------------------===

TEST_F(CheckerTest, DirectUseAfterFree) {
  auto Reports = checkUAF(R"(
    int f(int *p) {
      free(p);
      return *p;
    })");
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].Checker, "use-after-free");
  EXPECT_LT(Reports[0].Source.Line, Reports[0].Sink.Line);
}

TEST_F(CheckerTest, UseBeforeFreeIsNotABug) {
  auto Reports = checkUAF(R"(
    int f(int *p) {
      int v = *p;
      free(p);
      return v;
    })");
  EXPECT_TRUE(Reports.empty());
}

TEST_F(CheckerTest, UseAfterFreeThroughAlias) {
  // Paper Figure 5 pattern: b = a; free(b); use *a.
  auto Reports = checkUAF(R"(
    int f(int *a) {
      int *b = a;
      free(b);
      return *a;
    })");
  ASSERT_EQ(Reports.size(), 1u);
}

TEST_F(CheckerTest, UseAfterFreeThroughHeapMemory) {
  auto Reports = checkUAF(R"(
    int f(int *a) {
      int **h = malloc();
      *h = a;
      free(a);
      int *v = *h;
      return *v;
    })");
  ASSERT_EQ(Reports.size(), 1u);
}

TEST_F(CheckerTest, InfeasiblePathIsPruned) {
  // free under t, deref under !t: the conjunction t ∧ ¬t is UNSAT.
  auto Reports = checkUAF(R"(
    int f(int *p, bool t) {
      if (t) { free(p); }
      int v = 0;
      if (!t) { v = *p; }
      return v;
    })");
  EXPECT_TRUE(Reports.empty());
}

TEST_F(CheckerTest, FeasibleBranchCombinationIsReported) {
  // Same shape but both under t: feasible.
  auto Reports = checkUAF(R"(
    int f(int *p, bool t) {
      if (t) { free(p); }
      int v = 0;
      if (t) { v = *p; }
      return v;
    })");
  ASSERT_EQ(Reports.size(), 1u);
}

TEST_F(CheckerTest, ArithmeticCorrelationNeedsSMT) {
  // Conditions x > 5 and x > 3 are not syntactic complements; feasibility
  // (x=6 satisfies both) needs the SMT stage to confirm.
  auto Reports = checkUAF(R"(
    int f(int *p, int x) {
      if (x > 5) { free(p); }
      int v = 0;
      if (x > 3) { v = *p; }
      return v;
    })");
  ASSERT_EQ(Reports.size(), 1u);
}

TEST_F(CheckerTest, ArithmeticContradictionIsPruned) {
  // x > 5 ∧ x < 2 is UNSAT — only the SMT solver can see it.
  auto Reports = checkUAF(R"(
    int f(int *p, int x) {
      if (x > 5) { free(p); }
      int v = 0;
      if (x < 2) { v = *p; }
      return v;
    })");
  EXPECT_TRUE(Reports.empty());
}

TEST_F(CheckerTest, PathInsensitiveModeKeepsInfeasibleCandidates) {
  GlobalOptions O;
  O.PathSensitive = false;
  auto Reports = checkUAF(R"(
    int f(int *p, bool t) {
      if (t) { free(p); }
      int v = 0;
      if (!t) { v = *p; }
      return v;
    })",
                          O);
  // The SVF-like ablation reports the false positive.
  EXPECT_EQ(Reports.size(), 1u);
}

//===----------------------------------------------------------------------===
// Inter-procedural use-after-free
//===----------------------------------------------------------------------===

TEST_F(CheckerTest, FreeInCalleeVF3) {
  // Paper Figure 5: foo frees its parameter; the caller then uses it.
  auto Reports = checkUAF(R"(
    void release(int *a) {
      int *b = a;
      free(b);
    }
    int caller(int *p) {
      release(p);
      return *p;
    })");
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].SourceFn, "release");
  EXPECT_EQ(Reports[0].SinkFn, "caller");
}

TEST_F(CheckerTest, SinkInCalleeVF4) {
  auto Reports = checkUAF(R"(
    int deref(int *q) { return *q; }
    int caller(int *p) {
      free(p);
      return deref(p);
    })");
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].SourceFn, "caller");
  EXPECT_EQ(Reports[0].SinkFn, "deref");
}

TEST_F(CheckerTest, FreedValueReturnedVF2) {
  auto Reports = checkUAF(R"(
    int *make_dangling() {
      int *p = malloc();
      free(p);
      return p;
    }
    int caller() {
      int *q = make_dangling();
      return *q;
    })");
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].SourceFn, "make_dangling");
  EXPECT_EQ(Reports[0].SinkFn, "caller");
}

TEST_F(CheckerTest, FlowThroughCalleeVF1) {
  auto Reports = checkUAF(R"(
    int *identity(int *x) { return x; }
    int caller(int *p) {
      int *q = identity(p);
      free(p);
      return *q;
    })");
  ASSERT_EQ(Reports.size(), 1u);
}

TEST_F(CheckerTest, PaperFigure1UseAfterFree) {
  // The paper's motivating example: the freed pointer c escapes bar through
  // *q (a MOD side effect), reaches foo's *ptr, and is dereferenced at
  // print(*f) — but only on the θ1 ∧ θ3 ∧ θ2 path.
  auto Reports = checkUAF(R"(
    void foo(int *a, bool t1, bool t2, bool t4, int *b, int *d, int *e) {
      int **ptr = malloc();
      *ptr = a;
      if (t1) { bar(ptr, t4, b); }
      else    { qux(ptr, d, e); }
      int *f = *ptr;
      if (t2) { print(*f); }
    }
    void bar(int **q, bool t4, int *b) {
      int *c = malloc();
      if (*q != 0) {
        *q = c;
        free(c);
      } else {
        if (t4) { *q = b; }
      }
    }
    void qux(int **r, int *d, int *e) {
      bool t5 = *r != 0;
      if (t5) { *r = d; }
      else    { *r = e; }
    })");
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].SourceFn, "bar");
  EXPECT_EQ(Reports[0].SinkFn, "foo");
}

TEST_F(CheckerTest, PaperFigure1InfeasibleVariantIsPruned) {
  // Same shape, but the deref happens only when the value came through
  // qux (the ¬θ1 arm stores d/e, never the freed c): feasibility must
  // prune the candidate where c flows to the deref under ¬θ1.
  auto Reports = checkUAF(R"(
    void foo(bool t1, int *a, int *b, int *d) {
      int **ptr = malloc();
      *ptr = a;
      if (t1) { bar(ptr, b); }
      int *f = *ptr;
      if (!t1) { print(*f); }
    }
    void bar(int **q, int *b) {
      int *c = malloc();
      *q = c;
      free(c);
    })");
  EXPECT_TRUE(Reports.empty());
}

TEST_F(CheckerTest, DeepCallChainWithinDepthLimit) {
  auto Reports = checkUAF(R"(
    void f1(int *p) { free(p); }
    void f2(int *p) { f1(p); }
    void f3(int *p) { f2(p); }
    int top(int *p) {
      f3(p);
      return *p;
    })");
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].SourceFn, "f1");
}

TEST_F(CheckerTest, RecursionDoesNotDiverge) {
  auto Reports = checkUAF(R"(
    void rec(int *p, int n) {
      if (n > 0) { rec(p, n - 1); }
      free(p);
    }
    int top(int *p) {
      rec(p, 3);
      return *p;
    })");
  // The free inside rec surfaces as VF3 (local analysis of rec), the use in
  // top follows.
  ASSERT_EQ(Reports.size(), 1u);
}

//===----------------------------------------------------------------------===
// Double free
//===----------------------------------------------------------------------===

TEST_F(CheckerTest, DirectDoubleFree) {
  auto Reports = check(R"(
    void f(int *p) {
      free(p);
      free(p);
    })",
                       checkers::doubleFreeChecker());
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].Checker, "double-free");
}

TEST_F(CheckerTest, SingleFreeIsNotDoubleFree) {
  auto Reports = check(R"(
    void f(int *p, int *q) {
      free(p);
      free(q);
    })",
                       checkers::doubleFreeChecker());
  EXPECT_TRUE(Reports.empty());
}

TEST_F(CheckerTest, DoubleFreeAcrossFunctions) {
  auto Reports = check(R"(
    void release(int *x) { free(x); }
    void f(int *p) {
      release(p);
      release(p);
    })",
                       checkers::doubleFreeChecker());
  ASSERT_GE(Reports.size(), 1u);
}

TEST_F(CheckerTest, BranchExclusiveFreesAreNotDoubleFree) {
  auto Reports = check(R"(
    void f(int *p, bool t) {
      if (t) { free(p); } else { free(p); }
    })",
                       checkers::doubleFreeChecker());
  EXPECT_TRUE(Reports.empty());
}

//===----------------------------------------------------------------------===
// Taint checkers
//===----------------------------------------------------------------------===

TEST_F(CheckerTest, PathTraversalDirect) {
  auto Reports = check(R"(
    void f() {
      int input = fgetc();
      int path = input + 1;
      fopen(path);
    })",
                       checkers::pathTraversalChecker());
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].Checker, "path-traversal");
}

TEST_F(CheckerTest, PathTraversalInterprocedural) {
  auto Reports = check(R"(
    int read_user() { return fgetc(); }
    void openit(int path) { fopen(path); }
    void f() {
      int p = read_user();
      openit(p);
    })",
                       checkers::pathTraversalChecker());
  ASSERT_EQ(Reports.size(), 1u);
}

TEST_F(CheckerTest, UntaintedDataIsClean) {
  auto Reports = check(R"(
    void f() {
      int path = 42;
      fopen(path);
      int input = fgetc();
      print(input);
    })",
                       checkers::pathTraversalChecker());
  EXPECT_TRUE(Reports.empty());
}

TEST_F(CheckerTest, DataTransmissionThroughMemory) {
  auto Reports = check(R"(
    void f() {
      int *cell = malloc();
      int secret = getpass();
      *cell = secret;
      int out = *cell;
      sendto(out);
    })",
                       checkers::dataTransmissionChecker());
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].Checker, "data-transmission");
}

TEST_F(CheckerTest, TaintDoesNotRequireTemporalOrder) {
  // Pointer-identity checkers do not flow through arithmetic; taint does.
  auto UAF = checkUAF(R"(
    int f(int *p) {
      free(p);
      int v = 1 + 2;
      return v;
    })");
  EXPECT_TRUE(UAF.empty());
}

} // namespace
} // namespace pinpoint::svfa
