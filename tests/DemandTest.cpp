//===- tests/DemandTest.cpp - Demand-driven slicing tests ------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demand-slicing contract (DESIGN.md section 13), enforced end to end:
///
///  * CLI differential: for every checker individually, at --jobs 1 and 4,
///    with and without a summary cache (cold and warm), the output of
///    `--demand=on` is byte-identical to `--demand=off` once the
///    work-reflecting stats lines ([pipeline]/[exprs]/[cache]/[lifecycle]/
///    [demand]) are filtered out — reports, degradation log and the
///    per-checker [checker] lines are part of the determinism surface;
///  * the pre-pass actually skips: on a subject with disconnected filler
///    functions, `skipped-fns` is positive and relevant+skipped covers the
///    module;
///  * cache interplay: skipped functions neither probe nor populate the
///    cache, and cached artifacts are demand-mode-independent (a warm
///    `--demand=on` run happily consumes a `--demand=off` run's cache);
///  * the relevance computation itself: seeds, caller closure, callee
///    closure, SCC uniformity and the leak-checker malloc seeds;
///  * the ReachOracle rewrite: exact agreement with a brute-force CFG
///    reachability check on every statement pair, and lazy row
///    materialisation (unqueried functions build no rows).
///
/// The CLI tests fork a child that calls `pinpointToolMain` directly (the
/// LifecycleTest harness) and are skipped under TSan.
///
//===----------------------------------------------------------------------===//

#include "checkers/Checker.h"
#include "checkers/SpecialCheckers.h"
#include "frontend/Parser.h"
#include "ir/CallGraph.h"
#include "support/Statistics.h"
#include "svfa/Demand.h"
#include "svfa/GlobalSVFA.h"
#include "svfa/ReachOracle.h"
#include "tools/PinpointTool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

#if defined(__SANITIZE_THREAD__)
#define PINPOINT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PINPOINT_TSAN 1
#endif
#endif

using namespace pinpoint;

namespace {

//===----------------------------------------------------------------------===
// Harness
//===----------------------------------------------------------------------===

class TempDir {
public:
  explicit TempDir(const std::string &Tag) {
    Path = "demand_" + Tag + "_" +
           std::to_string(Counter.fetch_add(1, std::memory_order_relaxed));
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  std::string file(const std::string &Name) const {
    return (std::filesystem::path(Path) / Name).string();
  }

private:
  static inline std::atomic<uint64_t> Counter{0};
  std::string Path;
};

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// A subject with one source region per checker plus a disconnected chain
/// of filler functions no checker can ever need: the fillers are pointer
/// code with no sources, no callers into the source regions and no callees
/// from them, so the relevance pre-pass must skip all of them while every
/// report stays identical.
///
/// Every function that is *irrelevant* to some single-checker run is
/// branch-free: `linear-pruned` counts the filter's pruning work wherever
/// it happens — including summary construction inside functions another
/// checker's run never needs — so a function with an infeasible flow would
/// (correctly) shift that one counter between modes. Branch-free bodies
/// have nothing to prune, keeping even the work-reflecting [checker]
/// fields byte-identical. (uaf_df keeps its branches: it contributes no
/// pruning, and the temporal checkers need the guards.)
std::string demandSubject() {
  std::string S;
  // use-after-free + double-free sources (also exercises TemporalOrder).
  S += "int uaf_df(int *p, int c) {\n"
       "  if (c > 0) { free(p); }\n"
       "  if (c > 1) { free(p); }\n"
       "  return *p;\n"
       "}\n";
  // Taint sources/sinks for path-traversal and data-transmission.
  S += "int taints(int c) {\n"
       "  int v = read_input();\n"
       "  int k = load_key();\n"
       "  open(v);\n"
       "  send(k);\n"
       "  return v + k;\n"
       "}\n";
  // Null-deref source (null constant) and leak source (malloc).
  S += "int nulls(int c) {\n"
       "  int *z = 0;\n"
       "  int w = *z;\n"
       "  int *m = malloc(4);\n"
       "  return c + w;\n"
       "}\n";
  // Disconnected fillers: a call chain rooted at fillRoot, never calling
  // into (or called from) the source functions above.
  for (int I = 0; I < 6; ++I) {
    std::string N = std::to_string(I);
    std::string Callee =
        I == 0 ? std::string() : ("  int t = fill" + std::to_string(I - 1) +
                                  "(p);\n");
    S += "int fill" + N + "(int *p) {\n" + Callee +
         "  int *q = p;\n"
         "  return *q;\n"
         "}\n";
  }
  S += "int fillRoot(int *a) {\n"
       "  int r = fill5(a);\n"
       "  return r;\n"
       "}\n";
  return S;
}

#if !defined(_WIN32) && !defined(PINPOINT_TSAN)

/// Forks a child running the production CLI entry point (stdout to
/// \p OutFile, stderr to /dev/null); returns its exit code.
int runTool(const std::vector<std::string> &Args, const std::string &OutFile) {
  pid_t Pid = fork();
  if (Pid == 0) {
    if (!std::freopen(OutFile.c_str(), "w", stdout))
      std::exit(90);
    if (!std::freopen("/dev/null", "w", stderr))
      std::exit(91);
    std::vector<std::string> Store = Args;
    std::vector<char *> Argv;
    static char Name[] = "pinpoint";
    Argv.push_back(Name);
    for (std::string &A : Store)
      Argv.push_back(A.data());
    std::exit(
        tools::pinpointToolMain(static_cast<int>(Argv.size()), Argv.data()));
  }
  int Status = 0;
  if (waitpid(Pid, &Status, 0) != Pid)
    return -1000;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1001;
}

/// Strips the stats lines that reflect work performed rather than findings
/// — the demand determinism contract exempts exactly these (they change
/// when functions are skipped), mirroring the --jobs contract's exemption
/// of the interleaving-dependent acceleration counters.
std::string filterVolatile(const std::string &Out) {
  static const char *const Volatile[] = {"[pipeline]",   "[phase]",
                                         "[exprs]",      "[cache]",
                                         "[lifecycle]",  "[demand]",
                                         "[sched]"};
  std::string Keep;
  std::stringstream SS(Out);
  std::string Line;
  while (std::getline(SS, Line)) {
    bool Drop = false;
    for (const char *P : Volatile)
      if (Line.rfind(P, 0) == 0)
        Drop = true;
    if (!Drop)
      Keep += Line + "\n";
  }
  return Keep;
}

/// Extracts `Key=<number>` from \p Out (first occurrence); -1 if absent.
long long statValue(const std::string &Out, const std::string &Key) {
  size_t Pos = Out.find(Key + "=");
  if (Pos == std::string::npos)
    return -1;
  return std::atoll(Out.c_str() + Pos + Key.size() + 1);
}

//===----------------------------------------------------------------------===
// CLI differential: --demand=on ≡ --demand=off
//===----------------------------------------------------------------------===

TEST(DemandCLI, PerCheckerDifferentialAcrossJobs) {
  TempDir T("diff");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << demandSubject();

  const char *const Checkers[] = {"uaf",        "df",         "taint-path",
                                  "taint-data", "null-deref", "leak"};
  for (const char *Checker : Checkers) {
    for (const char *Jobs : {"--jobs=1", "--jobs=4"}) {
      const std::string On = T.file("on.out"), Off = T.file("off.out");
      ASSERT_EQ(runTool({std::string("--checker=") + Checker, Jobs, "--stats",
                         "--degradation-log", "--demand=on", Subject},
                        On),
                0)
          << Checker;
      ASSERT_EQ(runTool({std::string("--checker=") + Checker, Jobs, "--stats",
                         "--degradation-log", "--demand=off", Subject},
                        Off),
                0)
          << Checker;
      EXPECT_EQ(filterVolatile(readFile(On)), filterVolatile(readFile(Off)))
          << "checker=" << Checker << " " << Jobs;
    }
  }
}

TEST(DemandCLI, AllCheckersTogetherDifferential) {
  TempDir T("union");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << demandSubject();

  const std::string All = "--checker=uaf,df,taint-path,taint-data,"
                          "null-deref,leak";
  for (const char *Jobs : {"--jobs=1", "--jobs=4"}) {
    const std::string On = T.file("on.out"), Off = T.file("off.out");
    ASSERT_EQ(runTool({All, Jobs, "--stats", "--degradation-log",
                       "--demand=on", Subject},
                      On),
              0);
    ASSERT_EQ(runTool({All, Jobs, "--stats", "--degradation-log",
                       "--demand=off", Subject},
                      Off),
              0);
    EXPECT_EQ(filterVolatile(readFile(On)), filterVolatile(readFile(Off)))
        << Jobs;
  }
}

TEST(DemandCLI, SkipsTheDisconnectedFillers) {
  TempDir T("skip");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << demandSubject();

  const std::string Out = T.file("run.out");
  ASSERT_EQ(runTool({"--checker=uaf", "--stats", Subject}, Out), 0);
  const std::string Text = readFile(Out);
  // uaf's only source function is uaf_df; it has no callers and no
  // module-level callees, so everything else (taints, nulls and the seven
  // fill* functions) is skipped.
  EXPECT_EQ(statValue(Text, "relevant-fns"), 1) << Text;
  EXPECT_EQ(statValue(Text, "skipped-fns"), 9) << Text;
  EXPECT_EQ(statValue(Text, "source-fns"), 1) << Text;
  EXPECT_GT(statValue(Text, "csr-bytes"), 0) << Text;
}

//===----------------------------------------------------------------------===
// Cache interplay
//===----------------------------------------------------------------------===

TEST(DemandCLI, ColdWarmCacheDifferential) {
  TempDir T("cache");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << demandSubject();
  const std::string DirOn = T.file("cache_on"), DirOff = T.file("cache_off");

  // Cold and warm runs in each mode; all four filtered outputs must agree.
  std::vector<std::string> Filtered;
  struct RunSpec {
    const char *Mode;
    const std::string *Dir;
    const char *Tag;
  } RunSpecs[] = {{"--demand=on", &DirOn, "on_cold"},
                  {"--demand=on", &DirOn, "on_warm"},
                  {"--demand=off", &DirOff, "off_cold"},
                  {"--demand=off", &DirOff, "off_warm"}};
  for (const RunSpec &R : RunSpecs) {
    const std::string Out = T.file(std::string(R.Tag) + ".out");
    ASSERT_EQ(runTool({"--checker=uaf,df", "--stats", "--degradation-log",
                       R.Mode, "--cache-dir=" + *R.Dir, Subject},
                      Out),
              0)
        << R.Tag;
    Filtered.push_back(filterVolatile(readFile(Out)));
  }
  EXPECT_EQ(Filtered[0], Filtered[1]);
  EXPECT_EQ(Filtered[0], Filtered[2]);
  EXPECT_EQ(Filtered[0], Filtered[3]);

  // Warm demand=on probed only relevant functions: every probe hits, and
  // the store count of the cold run equals the relevant-function count
  // (skipped functions were never written).
  const std::string OnCold = readFile(T.file("on_cold.out"));
  const std::string OnWarm = readFile(T.file("on_warm.out"));
  EXPECT_EQ(statValue(OnCold, "stored"), statValue(OnCold, "relevant-fns"))
      << OnCold;
  // " hits" (with the space) targets the [cache] line, not the checker
  // line's cache-hits counter.
  EXPECT_EQ(statValue(OnWarm, " hits"), statValue(OnWarm, "relevant-fns"))
      << OnWarm;
  EXPECT_EQ(statValue(OnWarm, "misses"), 0) << OnWarm;
  // The exhaustive run stored strictly more (the fillers too).
  const std::string OffCold = readFile(T.file("off_cold.out"));
  EXPECT_GT(statValue(OffCold, "stored"), statValue(OnCold, "stored"));
}

TEST(DemandCLI, CacheArtifactsAreModeIndependent) {
  TempDir T("xmode");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << demandSubject();
  const std::string Dir = T.file("cache");

  // Cold exhaustive run populates; a warm demand run consumes the same
  // artifacts (the cache key has no demand bit) and still matches.
  const std::string Cold = T.file("cold.out"), Warm = T.file("warm.out");
  ASSERT_EQ(runTool({"--checker=uaf", "--stats", "--demand=off",
                     "--cache-dir=" + Dir, Subject},
                    Cold),
            0);
  ASSERT_EQ(runTool({"--checker=uaf", "--stats", "--demand=on",
                     "--cache-dir=" + Dir, Subject},
                    Warm),
            0);
  EXPECT_EQ(filterVolatile(readFile(Cold)), filterVolatile(readFile(Warm)));
  const std::string WarmText = readFile(Warm);
  EXPECT_EQ(statValue(WarmText, " hits"), statValue(WarmText, "relevant-fns"))
      << WarmText;
  EXPECT_EQ(statValue(WarmText, "misses"), 0) << WarmText;
}

#endif // !_WIN32 && !PINPOINT_TSAN

//===----------------------------------------------------------------------===
// Relevance computation
//===----------------------------------------------------------------------===

class RelevanceTest : public ::testing::Test {
protected:
  void parse(const std::string &Source) {
    std::vector<frontend::Diag> Diags;
    ASSERT_TRUE(frontend::parseModule(Source, M, Diags))
        << (Diags.empty() ? "" : Diags[0].str());
    CG = std::make_unique<ir::CallGraph>(M);
  }
  const ir::Function *fn(const std::string &Name) {
    for (ir::Function *F : M.functions())
      if (F->name() == Name)
        return F;
    return nullptr;
  }
  svfa::RelevanceSet uafRelevance() {
    svfa::DemandSpec DS;
    DS.Checkers.push_back(checkers::useAfterFreeChecker());
    return svfa::computeRelevance(*CG, M, DS);
  }

  ir::Module M;
  std::unique_ptr<ir::CallGraph> CG;
};

TEST_F(RelevanceTest, CallerAndCalleeClosure) {
  parse("int leaf(int *p) { return *p; }\n"
        "int src(int *p) { free(p); int x = leaf(p); return x; }\n"
        "int mid(int *p) { int r = src(p); return r; }\n"
        "int top(int *p) { int r = mid(p); return r; }\n"
        "int helper(int *p) { return *p; }\n"
        "int stranger(int *p) { int r = helper(p); return r; }\n");
  svfa::RelevanceSet R = uafRelevance();
  EXPECT_FALSE(R.All);
  EXPECT_EQ(R.SourceFns, 1u);
  // Seed + transitive callers + their transitive callees.
  EXPECT_TRUE(R.relevant(fn("src")));
  EXPECT_TRUE(R.relevant(fn("mid")));
  EXPECT_TRUE(R.relevant(fn("top")));
  EXPECT_TRUE(R.relevant(fn("leaf")));
  // The disconnected pair is out.
  EXPECT_FALSE(R.relevant(fn("helper")));
  EXPECT_FALSE(R.relevant(fn("stranger")));
}

TEST_F(RelevanceTest, CalleeClosureReachesSiblingsOfTheSource) {
  // A caller pulled in by the caller closure drags in its *other* callees:
  // they define the interfaces the caller's analysis depends on.
  parse("int src(int *p) { free(p); return 0; }\n"
        "int sibling(int *p) { return *p; }\n"
        "int caller(int *p) { int a = src(p); int b = sibling(p); "
        "return a + b; }\n");
  svfa::RelevanceSet R = uafRelevance();
  EXPECT_TRUE(R.relevant(fn("caller")));
  EXPECT_TRUE(R.relevant(fn("sibling")));
}

TEST_F(RelevanceTest, RelevanceIsSCCUniform) {
  // Mutually recursive functions: the source sits in one member, the deref
  // (the uaf sink seed) in the other — each cone marks the whole SCC.
  parse("int ping(int *p, int c) { if (c > 0) { int r = pong(p, c); "
        "return r; } free(p); return 0; }\n"
        "int pong(int *p, int c) { int v = *p; int r = ping(p, c); "
        "return r + v; }\n"
        "int lonely(int *p) { return *p; }\n");
  svfa::RelevanceSet R = uafRelevance();
  EXPECT_TRUE(R.relevant(fn("ping")));
  EXPECT_TRUE(R.relevant(fn("pong")));
  EXPECT_FALSE(R.relevant(fn("lonely")));
}

TEST_F(RelevanceTest, LeakSourcesSeedMallocSites) {
  parse("int *maker(int n) { int *m = malloc(n); return m; }\n"
        "int other(int *p) { return *p; }\n");
  svfa::DemandSpec DS;
  DS.LeakSources = true;
  svfa::RelevanceSet R = svfa::computeRelevance(*CG, M, DS);
  EXPECT_TRUE(R.relevant(fn("maker")));
  EXPECT_FALSE(R.relevant(fn("other")));
  EXPECT_EQ(R.SourceFns, 1u);
}

TEST_F(RelevanceTest, EmptySpecKeepsNothing) {
  parse("int f(int *p) { free(p); return *p; }\n");
  svfa::DemandSpec DS; // No checkers, no leak: nothing is a source.
  svfa::RelevanceSet R = svfa::computeRelevance(*CG, M, DS);
  EXPECT_FALSE(R.All);
  EXPECT_FALSE(R.relevant(fn("f")));
  EXPECT_EQ(R.SourceFns, 0u);
}

TEST_F(RelevanceTest, DefaultRelevanceSetKeepsEverything) {
  parse("int f(int *p) { return *p; }\n");
  svfa::RelevanceSet R; // All = true: demand off.
  EXPECT_TRUE(R.relevant(fn("f")));
}

//===----------------------------------------------------------------------===
// Library-level report equivalence
//===----------------------------------------------------------------------===

TEST(DemandLibrary, ReportsMatchExhaustive) {
  const std::string Source = demandSubject();
  auto runMode = [&](bool Demand, const checkers::CheckerSpec &Spec) {
    ir::Module M;
    std::vector<frontend::Diag> Diags;
    if (!frontend::parseModule(Source, M, Diags))
      ADD_FAILURE() << "parse failed";
    smt::ExprContext Ctx;
    svfa::GlobalOptions GO;
    GO.Demand = Demand;
    auto Reports = svfa::checkModule(M, Ctx, Spec, GO);
    std::vector<std::string> Keys;
    for (const auto &R : Reports) {
      std::string K = R.Checker + " " + R.SourceFn + ":" + R.Source.str() +
                      "->" + R.SinkFn + ":" + R.Sink.str();
      for (const auto &Step : R.Path)
        K += "|" + Step;
      Keys.push_back(K);
    }
    return Keys;
  };
  for (const auto &Spec :
       {checkers::useAfterFreeChecker(), checkers::doubleFreeChecker(),
        checkers::pathTraversalChecker(), checkers::nullDerefChecker()}) {
    auto On = runMode(true, Spec), Off = runMode(false, Spec);
    EXPECT_EQ(On, Off) << Spec.Name;
    EXPECT_FALSE(Off.empty()) << Spec.Name << ": subject has no findings";
  }
}

//===----------------------------------------------------------------------===
// ReachOracle: exactness and laziness
//===----------------------------------------------------------------------===

namespace {

/// Brute-force reference: control reaches B strictly after A — same block
/// compares statement order, distinct blocks need a >= 1 edge CFG path.
bool bruteReaches(const ir::Function &F, const ir::Stmt *A,
                  const ir::Stmt *B) {
  if (A == B)
    return false;
  if (A->parent() == B->parent())
    return F.stmtOrder(A) < F.stmtOrder(B);
  std::vector<const ir::BasicBlock *> Work(A->parent()->succs().begin(),
                                           A->parent()->succs().end());
  std::vector<const ir::BasicBlock *> Seen;
  while (!Work.empty()) {
    const ir::BasicBlock *Cur = Work.back();
    Work.pop_back();
    if (std::find(Seen.begin(), Seen.end(), Cur) != Seen.end())
      continue;
    Seen.push_back(Cur);
    if (Cur == B->parent())
      return true;
    for (const ir::BasicBlock *S : Cur->succs())
      Work.push_back(S);
  }
  return false;
}

} // namespace

TEST(ReachOracleTest, MatchesBruteForceOnBranchyCFG) {
  ir::Module M;
  std::vector<frontend::Diag> Diags;
  ASSERT_TRUE(frontend::parseModule(
      "int branchy(int *p, int a, int b) {\n"
      "  int x = 0;\n"
      "  if (a > 0) {\n"
      "    if (b > 0) { free(p); } else { x = 1; }\n"
      "    x = x + 1;\n"
      "  } else {\n"
      "    if (b > 1) { x = 2; } else { x = 3; }\n"
      "  }\n"
      "  int y = *p;\n"
      "  return x + y;\n"
      "}\n",
      M, Diags));
  ir::Function &F = *M.functions().front();
  F.renumberStmts(); // stmtOrder needs numbering (the pipeline's SSA
                     // stage does this for real runs).
  svfa::ReachOracle RO(F);

  std::vector<const ir::Stmt *> Stmts;
  for (const ir::BasicBlock *B : F.blocks())
    for (const ir::Stmt *S : B->stmts())
      Stmts.push_back(S);
  ASSERT_GT(Stmts.size(), 10u);
  for (const ir::Stmt *A : Stmts)
    for (const ir::Stmt *B : Stmts)
      EXPECT_EQ(RO.reaches(A, B), bruteReaches(F, A, B))
          << "A=" << F.stmtOrder(A) << " B=" << F.stmtOrder(B);
}

TEST(ReachOracleTest, RowsMaterialiseLazily) {
  ir::Module M;
  std::vector<frontend::Diag> Diags;
  ASSERT_TRUE(frontend::parseModule(
      "int few(int a) {\n"
      "  int x = 0;\n"
      "  if (a > 0) { x = 1; }\n"
      "  if (a > 1) { x = 2; }\n"
      "  if (a > 2) { x = 3; }\n"
      "  return x;\n"
      "}\n",
      M, Diags));
  ir::Function &F = *M.functions().front();
  F.renumberStmts();
  Counters &C = Counters::get();

  const int64_t Before = C.value("svfa.lazy-reach-rows");
  svfa::ReachOracle RO(F);
  // Construction alone builds nothing.
  EXPECT_EQ(C.value("svfa.lazy-reach-rows"), Before);

  // A same-block query and an O(1)-pruned backward query build nothing
  // either: find two stmts in the same block, and an entry->... forward
  // pair answered by the condensation interval check.
  const ir::BasicBlock *Entry = F.blocks().front();
  ASSERT_GE(Entry->stmts().size(), 2u);
  RO.reaches(Entry->stmts()[0], Entry->stmts()[1]);
  const ir::BasicBlock *Last = F.blocks().back();
  RO.reaches(Last->stmts().front(), Entry->stmts().front());
  EXPECT_EQ(C.value("svfa.lazy-reach-rows"), Before);

  // A genuine cross-block forward query from the entry materialises
  // exactly one row; repeating it (and querying other targets from the
  // same source block) adds none.
  EXPECT_TRUE(RO.reaches(Entry->stmts().front(), Last->stmts().front()));
  EXPECT_EQ(C.value("svfa.lazy-reach-rows"), Before + 1);
  RO.reaches(Entry->stmts().front(), Last->stmts().front());
  EXPECT_EQ(C.value("svfa.lazy-reach-rows"), Before + 1);
}

TEST(ReachOracleTest, OrderingFreeSubjectBuildsNoOracles) {
  // Construction is lazy: the Tarjan pass is deferred to the first
  // cross-block reaches() query, so a checker that never consults temporal
  // order (TemporalOrder = false short-circuits the query) builds zero
  // oracles no matter how many events it processes.
  Counters &C = Counters::get();
  const std::string Source = demandSubject();

  auto runSpec = [&](const checkers::CheckerSpec &Spec) {
    ir::Module M;
    std::vector<frontend::Diag> Diags;
    if (!frontend::parseModule(Source, M, Diags))
      ADD_FAILURE() << "parse failed";
    smt::ExprContext Ctx;
    return svfa::checkModule(M, Ctx, Spec, svfa::GlobalOptions());
  };

  const int64_t Before = C.value("svfa.reach-oracles-built");
  auto Taint = runSpec(checkers::pathTraversalChecker());
  EXPECT_FALSE(Taint.empty()) << "ordering-free subject has no findings";
  EXPECT_EQ(C.value("svfa.reach-oracles-built"), Before)
      << "ordering-free checker paid for a reach oracle";

  // The same subject under a temporal checker whose source and sink sit in
  // different blocks does build one — the counter moves exactly when
  // ordering is consulted across blocks.
  auto Uaf = runSpec(checkers::useAfterFreeChecker());
  EXPECT_FALSE(Uaf.empty());
  EXPECT_GT(C.value("svfa.reach-oracles-built"), Before);
}

} // namespace
