//===- tests/DemandSinkTest.cpp - Sink-driven bidirectional slicing tests --===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sink-intersected half of the demand contract (DESIGN.md section 13):
///
///  * the bidirectional relevance computation itself — per checker,
///    `callees*( callers*(Src) ∩ callers*(Snk) )` — on subjects where the
///    sink cone prunes regions the source-only cone keeps, with exact
///    relevant/skipped membership;
///  * the syntactic-sink predicate, the deref-host sink seeding for deref-
///    sink checkers (use-after-free, null-deref), and the source-only leak
///    cone;
///  * the persisted `relevance` cache entry: round-trip, staleness on
///    subject or spec change, corruption detection, and the warm-run replay
///    that skips the pre-pass entirely;
///  * the edit-localised warm refresh (DESIGN.md section 15): the v3
///    per-function record section, the dirty-fingerprint diff, seed/edge
///    reuse for clean functions, the closure-reuse fast path, the auto
///    threshold fallback, and the rule that v1/v2 entries reload as Stale
///    (recompute silently) rather than Corrupt;
///  * CLI differentials proving sink-intersected runs emit byte-identical
///    reports and degradation logs to `--demand=off` at --jobs 1 and 4
///    (per checker and for the union run);
///  * the mode-independent memory plan: one --mem-budget-mb pre-degrades
///    the same SCC set under --demand=on and off;
///  * the frozen condensation layout (CallGraph SCC member/callee spans).
///
/// The CLI tests fork a child that calls `pinpointToolMain` directly (the
/// LifecycleTest harness) and are skipped under TSan.
///
//===----------------------------------------------------------------------===//

#include "checkers/Checker.h"
#include "checkers/SpecialCheckers.h"
#include "frontend/Parser.h"
#include "ir/CallGraph.h"
#include "ir/Fingerprint.h"
#include "support/Hasher.h"
#include "support/Serializer.h"
#include "support/Statistics.h"
#include "svfa/Demand.h"
#include "svfa/GlobalSVFA.h"
#include "tools/PinpointTool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

#if defined(__SANITIZE_THREAD__)
#define PINPOINT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PINPOINT_TSAN 1
#endif
#endif

using namespace pinpoint;

namespace {

//===----------------------------------------------------------------------===
// Harness
//===----------------------------------------------------------------------===

class TempDir {
public:
  explicit TempDir(const std::string &Tag) {
    Path = "demandsink_" + Tag + "_" +
           std::to_string(Counter.fetch_add(1, std::memory_order_relaxed));
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  std::string file(const std::string &Name) const {
    return (std::filesystem::path(Path) / Name).string();
  }

private:
  static inline std::atomic<uint64_t> Counter{0};
  std::string Path;
};

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// The canonical sink-pruning subject for the taint-path checker. Three
/// regions plus a disconnected filler:
///
///  * srcOnly/srcCaller: a source (read_input) whose caller cone never
///    meets a sink — the source-only cone keeps both, the sink
///    intersection prunes both;
///  * bothSrc/bothSnk/bothCaller: a source and a sink joined by a shared
///    caller — the only region where a report can form, kept by both
///    cones;
///  * snkOnly/snkCaller: a sink (remove) no source can reach — pruned by
///    both cones (the source cone never saw it);
///  * filler: disconnected pointer code, pruned by both.
///
/// taint-path sources here: read_input (x2). Sinks: open, remove.
std::string sinkSubject() {
  return "int srcOnly(int c) { int v = read_input(); return v; }\n"
         "int srcCaller(int c) { int r = srcOnly(c); return r; }\n"
         "int bothSrc(int c) { int v = read_input(); return v; }\n"
         "int bothSnk(int v) { open(v); return 0; }\n"
         "int bothCaller(int c) { int v = bothSrc(c); int r = bothSnk(v); "
         "return r + v; }\n"
         "int snkOnly(int v) { remove(v); return 0; }\n"
         "int snkCaller(int v) { int r = snkOnly(v); return r; }\n"
         "int filler(int *p) { int *q = p; return *q; }\n";
}

/// sinkSubject plus a taint-data region (read_secret -> send, with an
/// orphan load_key source) and a double-free region, so every sink-sliced
/// checker has real work and real reports on one subject.
std::string mixedSubject() {
  return sinkSubject() +
         "int tdSrc(int c) { int k = read_secret(); return k; }\n"
         "int tdSnk(int k) { send(k); return 0; }\n"
         "int tdCaller(int c) { int k = tdSrc(c); int r = tdSnk(k); "
         "return r + k; }\n"
         "int tdOrphan(int c) { int k = load_key(); return k; }\n"
         "int dfBoth(int *p, int c) { if (c > 0) { free(p); } "
         "if (c > 1) { free(p); } return c; }\n";
}

/// The use-after-free narrowing subject: a feasible report in the freeUse
/// region, a free-only region (freeNoUse/freeNoUseCaller) whose caller cone
/// never meets a dereference — only the deref-host sink seeding can prune
/// it, the source-only cone keeps it — and a disconnected deref-only pad
/// both cones prune.
std::string derefNarrowSubject() {
  return "void freeUse(int *p, int c) { if (c > 0) { free(p); } "
         "if (c > 1) { int x = *p; } }\n"
         "int freeUseCaller(int c) { int *p = malloc(4); "
         "freeUse(p, c); return 0; }\n"
         "int freeNoUse(int *p, int c) { if (c > 0) { free(p); } "
         "return c; }\n"
         "int freeNoUseCaller(int c) { int *p = malloc(4); "
         "int r = freeNoUse(p, c); return r; }\n"
         "int pad(int *p) { int *q = p; return *q; }\n";
}

//===----------------------------------------------------------------------===
// Bidirectional relevance computation
//===----------------------------------------------------------------------===

class SinkRelevanceTest : public ::testing::Test {
protected:
  void parse(const std::string &Source) {
    std::vector<frontend::Diag> Diags;
    ASSERT_TRUE(frontend::parseModule(Source, M, Diags))
        << (Diags.empty() ? "" : Diags[0].str());
    CG = std::make_unique<ir::CallGraph>(M);
  }
  const ir::Function *fn(const std::string &Name) {
    for (ir::Function *F : M.functions())
      if (F->name() == Name)
        return F;
    return nullptr;
  }
  svfa::RelevanceSet relevanceFor(const checkers::CheckerSpec &Spec,
                                  bool UseSinkCones) {
    svfa::DemandSpec DS;
    DS.Checkers.push_back(Spec);
    DS.UseSinkCones = UseSinkCones;
    return svfa::computeRelevance(*CG, M, DS);
  }
  /// The names kept by \p R, sorted.
  std::vector<std::string> names(const svfa::RelevanceSet &R) {
    std::vector<std::string> Out;
    for (ir::Function *F : M.functions())
      if (R.relevant(F))
        Out.push_back(F->name());
    std::sort(Out.begin(), Out.end());
    return Out;
  }

  ir::Module M;
  std::unique_ptr<ir::CallGraph> CG;
};

TEST_F(SinkRelevanceTest, BidirectionalPrunesWhatSourceOnlyKeeps) {
  parse(sinkSubject());
  svfa::RelevanceSet R =
      relevanceFor(checkers::pathTraversalChecker(), /*UseSinkCones=*/true);
  EXPECT_FALSE(R.All);
  // Only the region where a source cone meets a sink cone survives; the
  // callee closure of the intersected core pulls the source and sink
  // leaves back in.
  EXPECT_EQ(names(R), (std::vector<std::string>{"bothCaller", "bothSnk",
                                                "bothSrc"}));
  EXPECT_EQ(R.SourceFns, 2u); // srcOnly + bothSrc contain read_input.
  EXPECT_EQ(R.SinkFns, 2u);   // bothSnk (open) + snkOnly (remove).
}

TEST_F(SinkRelevanceTest, SourceOnlyConeKeepsSinklessRegions) {
  parse(sinkSubject());
  svfa::RelevanceSet R =
      relevanceFor(checkers::pathTraversalChecker(), /*UseSinkCones=*/false);
  // The ablation keeps the whole source caller cone (and its callees),
  // including the region that can never reach a sink.
  EXPECT_EQ(names(R), (std::vector<std::string>{"bothCaller", "bothSnk",
                                                "bothSrc", "srcCaller",
                                                "srcOnly"}));
  EXPECT_EQ(R.SourceFns, 2u);
  EXPECT_EQ(R.SinkFns, 0u); // No sink seeds in source-only mode.
}

TEST_F(SinkRelevanceTest, DerefSinkCheckerIntersectsDerefHostCone) {
  parse(mixedSubject());
  // use-after-free sinks are loads/stores, not named calls, so its sink
  // cone seeds at deref hosts. The only deref host here (filler) is
  // disconnected from the only free host (dfBoth): the intersection is
  // empty — no freed value can ever reach a dereference on this subject.
  ASSERT_FALSE(checkers::useAfterFreeChecker().hasSyntacticSinks());
  svfa::RelevanceSet Bi =
      relevanceFor(checkers::useAfterFreeChecker(), /*UseSinkCones=*/true);
  svfa::RelevanceSet SrcOnly =
      relevanceFor(checkers::useAfterFreeChecker(), /*UseSinkCones=*/false);
  EXPECT_EQ(names(Bi), std::vector<std::string>{});
  EXPECT_EQ(Bi.SinkFns, 1u); // filler is the only deref host.
  // The ablation keeps the free host the narrowing proved sink-less.
  EXPECT_EQ(names(SrcOnly), (std::vector<std::string>{"dfBoth"}));
  EXPECT_EQ(SrcOnly.SinkFns, 0u);
}

TEST_F(SinkRelevanceTest, DerefNarrowingSkipsStrictlyMore) {
  parse(derefNarrowSubject());
  svfa::RelevanceSet Bi =
      relevanceFor(checkers::useAfterFreeChecker(), /*UseSinkCones=*/true);
  svfa::RelevanceSet SrcOnly =
      relevanceFor(checkers::useAfterFreeChecker(), /*UseSinkCones=*/false);
  // The free-only region survives the source-only cone but not the deref
  // intersection; the reporting region survives both.
  EXPECT_EQ(names(Bi),
            (std::vector<std::string>{"freeUse", "freeUseCaller"}));
  EXPECT_EQ(names(SrcOnly),
            (std::vector<std::string>{"freeNoUse", "freeNoUseCaller",
                                      "freeUse", "freeUseCaller"}));
  EXPECT_EQ(Bi.SourceFns, 2u); // freeUse + freeNoUse call free.
  EXPECT_EQ(Bi.SinkFns, 2u);   // freeUse + pad dereference.
}

TEST_F(SinkRelevanceTest, DerefNarrowedReportsMatchExhaustive) {
  // Library-level non-vacuity + equivalence for the deref narrowing: the
  // subject really produces a use-after-free finding, and the narrowed
  // demand run reports exactly what the exhaustive run does.
  auto runMode = [](bool Demand) {
    ir::Module M2;
    std::vector<frontend::Diag> Diags;
    EXPECT_TRUE(frontend::parseModule(derefNarrowSubject(), M2, Diags));
    smt::ExprContext Ctx;
    svfa::GlobalOptions GO;
    GO.Demand = Demand;
    auto Reports =
        svfa::checkModule(M2, Ctx, checkers::useAfterFreeChecker(), GO);
    std::vector<std::string> Keys;
    for (const auto &R : Reports)
      Keys.push_back(R.SourceFn + ":" + R.Source.str() + "->" + R.SinkFn +
                     ":" + R.Sink.str());
    std::sort(Keys.begin(), Keys.end());
    return Keys;
  };
  auto On = runMode(true), Off = runMode(false);
  EXPECT_EQ(On, Off);
  EXPECT_FALSE(Off.empty()) << "narrowing subject produced no uaf findings";
}

TEST_F(SinkRelevanceTest, DoubleFreeConesCoincide) {
  parse(mixedSubject());
  // df's source and sink are the same site (free), so the sink
  // intersection is a no-op by construction — a useful degenerate case.
  ASSERT_TRUE(checkers::doubleFreeChecker().hasSyntacticSinks());
  svfa::RelevanceSet Bi =
      relevanceFor(checkers::doubleFreeChecker(), /*UseSinkCones=*/true);
  svfa::RelevanceSet SrcOnly =
      relevanceFor(checkers::doubleFreeChecker(), /*UseSinkCones=*/false);
  EXPECT_EQ(names(Bi), names(SrcOnly));
  EXPECT_EQ(names(Bi), (std::vector<std::string>{"dfBoth"}));
  EXPECT_EQ(Bi.SinkFns, 1u);
}

TEST_F(SinkRelevanceTest, UnionIsPerCheckerIntersectThenUnion) {
  parse(mixedSubject());
  svfa::DemandSpec DS;
  DS.Checkers.push_back(checkers::pathTraversalChecker());
  DS.Checkers.push_back(checkers::dataTransmissionChecker());
  svfa::RelevanceArtifact A = svfa::computeRelevanceArtifact(*CG, M, DS);

  // Each checker intersects its own cones before the union: srcOnly is in
  // taint-path's source cone and tdSnk is in taint-data's sink cone, but
  // neither pair meets, so neither survives into the union.
  EXPECT_EQ(names(A.Union),
            (std::vector<std::string>{"bothCaller", "bothSnk", "bothSrc",
                                      "tdCaller", "tdSnk", "tdSrc"}));
  // Union seed counts: read_input x2, read_secret, load_key sources;
  // open, remove, send sinks.
  EXPECT_EQ(A.Union.SourceFns, 4u);
  EXPECT_EQ(A.Union.SinkFns, 3u);

  // The per-checker slices the engines consume are the individual cones,
  // keyed by CheckerSpec::Name.
  ASSERT_EQ(A.PerChecker.count("path-traversal"), 1u);
  ASSERT_EQ(A.PerChecker.count("data-transmission"), 1u);
  EXPECT_EQ(names(A.PerChecker.at("path-traversal")),
            (std::vector<std::string>{"bothCaller", "bothSnk", "bothSrc"}));
  EXPECT_EQ(names(A.PerChecker.at("data-transmission")),
            (std::vector<std::string>{"tdCaller", "tdSnk", "tdSrc"}));
}

TEST_F(SinkRelevanceTest, SyntacticSinkPredicates) {
  parse(mixedSubject());
  // Which checkers can be sink-sliced at all.
  EXPECT_FALSE(checkers::useAfterFreeChecker().hasSyntacticSinks());
  EXPECT_FALSE(checkers::nullDerefChecker().hasSyntacticSinks());
  EXPECT_TRUE(checkers::doubleFreeChecker().hasSyntacticSinks());
  EXPECT_TRUE(checkers::pathTraversalChecker().hasSyntacticSinks());
  EXPECT_TRUE(checkers::dataTransmissionChecker().hasSyntacticSinks());

  // Site membership for the taint checkers.
  const checkers::CheckerSpec TP = checkers::pathTraversalChecker();
  EXPECT_TRUE(TP.hasSinkSite(*fn("bothSnk")));  // open
  EXPECT_TRUE(TP.hasSinkSite(*fn("snkOnly")));  // remove
  EXPECT_FALSE(TP.hasSinkSite(*fn("bothSrc"))); // source, not sink
  EXPECT_FALSE(TP.hasSinkSite(*fn("tdSnk")));   // other checker's sink
  const checkers::CheckerSpec TD = checkers::dataTransmissionChecker();
  EXPECT_TRUE(TD.hasSinkSite(*fn("tdSnk"))); // send
  EXPECT_FALSE(TD.hasSinkSite(*fn("bothSnk")));
  // A deref-sink checker reports no syntactic sink sites anywhere.
  for (ir::Function *F : M.functions())
    EXPECT_FALSE(checkers::useAfterFreeChecker().hasSinkSite(*F))
        << F->name();

  // Deref-host membership, the sink-seed scan for deref-sink checkers.
  const checkers::CheckerSpec UAF = checkers::useAfterFreeChecker();
  EXPECT_TRUE(UAF.hasDerefSite(*fn("filler")));  // loads *q
  EXPECT_FALSE(UAF.hasDerefSite(*fn("dfBoth"))); // frees, never derefs
  EXPECT_FALSE(UAF.hasDerefSite(*fn("bothSnk"))); // calls only
}

TEST_F(SinkRelevanceTest, SlicedReportsMatchExhaustiveOnTheSinkSubject) {
  // Library-level non-vacuity + equivalence: the subject really produces
  // taint-path findings, and the bidirectional slice reports exactly them.
  auto runMode = [](bool Demand) {
    ir::Module M2;
    std::vector<frontend::Diag> Diags;
    EXPECT_TRUE(frontend::parseModule(sinkSubject(), M2, Diags));
    smt::ExprContext Ctx;
    svfa::GlobalOptions GO;
    GO.Demand = Demand;
    auto Reports =
        svfa::checkModule(M2, Ctx, checkers::pathTraversalChecker(), GO);
    std::vector<std::string> Keys;
    for (const auto &R : Reports)
      Keys.push_back(R.SourceFn + ":" + R.Source.str() + "->" + R.SinkFn +
                     ":" + R.Sink.str());
    std::sort(Keys.begin(), Keys.end());
    return Keys;
  };
  auto On = runMode(true), Off = runMode(false);
  EXPECT_EQ(On, Off);
  EXPECT_FALSE(Off.empty()) << "sink subject produced no taint findings";
}

//===----------------------------------------------------------------------===
// Persisted relevance (the `relevance` cache entry)
//===----------------------------------------------------------------------===

class RelevancePersistTest : public SinkRelevanceTest {
protected:
  svfa::DemandSpec taintSpec() {
    svfa::DemandSpec DS;
    DS.Checkers.push_back(checkers::pathTraversalChecker());
    return DS;
  }
  /// Name-set view of an artifact (union + per-checker), for equality.
  std::vector<std::vector<std::string>> view(svfa::RelevanceArtifact &A) {
    std::vector<std::vector<std::string>> Out;
    Out.push_back(names(A.Union));
    for (auto &[Name, Set] : A.PerChecker) {
      Out.push_back({Name});
      Out.push_back(names(Set));
    }
    return Out;
  }
};

TEST_F(RelevancePersistTest, RoundTrip) {
  parse(sinkSubject());
  TempDir T("roundtrip");
  svfa::DemandSpec DS = taintSpec();
  const uint64_t Key = svfa::relevanceSpecKey(DS);
  svfa::RelevanceArtifact A = svfa::computeRelevanceArtifact(*CG, M, DS);
  ASSERT_TRUE(svfa::storeRelevance(T.file(""), 0x5EED, Key, A));

  svfa::RelevanceArtifact B;
  ASSERT_EQ(svfa::loadRelevance(T.file(""), 0x5EED, Key, M, B),
            svfa::RelevanceLoadStatus::Ok);
  EXPECT_EQ(view(A), view(B));
  EXPECT_FALSE(B.Union.All);
  EXPECT_EQ(B.Union.SourceFns, A.Union.SourceFns);
  EXPECT_EQ(B.Union.SinkFns, A.Union.SinkFns);
}

TEST_F(RelevancePersistTest, SubjectOrSpecMismatchIsStale) {
  parse(sinkSubject());
  TempDir T("stale");
  svfa::DemandSpec DS = taintSpec();
  const uint64_t Key = svfa::relevanceSpecKey(DS);
  svfa::RelevanceArtifact A = svfa::computeRelevanceArtifact(*CG, M, DS);
  ASSERT_TRUE(svfa::storeRelevance(T.file(""), 0x5EED, Key, A));

  svfa::RelevanceArtifact B;
  // Same spec, different subject fingerprint.
  EXPECT_EQ(svfa::loadRelevance(T.file(""), 0xBAD, Key, M, B),
            svfa::RelevanceLoadStatus::Stale);
  // Same subject, different demand spec.
  EXPECT_EQ(svfa::loadRelevance(T.file(""), 0x5EED, Key ^ 1, M, B),
            svfa::RelevanceLoadStatus::Stale);
}

TEST_F(RelevancePersistTest, MissingEntry) {
  parse(sinkSubject());
  TempDir T("missing");
  svfa::RelevanceArtifact B;
  EXPECT_EQ(svfa::loadRelevance(T.file(""), 1, 2, M, B),
            svfa::RelevanceLoadStatus::Missing);
}

TEST_F(RelevancePersistTest, CorruptBytesAreDetected) {
  parse(sinkSubject());
  TempDir T("corrupt");
  svfa::DemandSpec DS = taintSpec();
  const uint64_t Key = svfa::relevanceSpecKey(DS);
  svfa::RelevanceArtifact A = svfa::computeRelevanceArtifact(*CG, M, DS);
  ASSERT_TRUE(svfa::storeRelevance(T.file(""), 7, Key, A));
  const std::string Entry = T.file("relevance");
  const std::string Orig = readFile(Entry);
  ASSERT_GT(Orig.size(), 8u);

  // Every single-byte flip anywhere in the file must be caught — header,
  // key fields and payload are all under the checksum (a flip in the
  // stored fingerprint must read as corruption, not staleness).
  for (size_t Pos : {size_t(0), Orig.size() / 2, Orig.size() - 1}) {
    std::string Bad = Orig;
    Bad[Pos] = static_cast<char>(Bad[Pos] ^ 0x40);
    std::ofstream(Entry, std::ios::binary | std::ios::trunc) << Bad;
    svfa::RelevanceArtifact B;
    EXPECT_EQ(svfa::loadRelevance(T.file(""), 7, Key, M, B),
              svfa::RelevanceLoadStatus::Corrupt)
        << "flip at " << Pos;
  }
  // Truncation too.
  std::ofstream(Entry, std::ios::binary | std::ios::trunc)
      << Orig.substr(0, Orig.size() / 2);
  svfa::RelevanceArtifact B;
  EXPECT_EQ(svfa::loadRelevance(T.file(""), 7, Key, M, B),
            svfa::RelevanceLoadStatus::Corrupt);
}

TEST_F(RelevancePersistTest, UnknownFunctionNameIsCorrupt) {
  parse(sinkSubject());
  TempDir T("unknown");
  svfa::DemandSpec DS = taintSpec();
  const uint64_t Key = svfa::relevanceSpecKey(DS);
  svfa::RelevanceArtifact A = svfa::computeRelevanceArtifact(*CG, M, DS);
  ASSERT_TRUE(svfa::storeRelevance(T.file(""), 9, Key, A));

  // A module that lacks the stored functions cannot resolve the entry:
  // name resolution failure is corruption, never a silent partial replay.
  ir::Module Other;
  std::vector<frontend::Diag> Diags;
  ASSERT_TRUE(frontend::parseModule("int unrelated(int *p) { return *p; }\n",
                                    Other, Diags));
  svfa::RelevanceArtifact B;
  EXPECT_EQ(svfa::loadRelevance(T.file(""), 9, Key, Other, B),
            svfa::RelevanceLoadStatus::Corrupt);
}

TEST_F(RelevancePersistTest, V3RecordsRoundTrip) {
  parse(sinkSubject());
  TempDir T("records");
  svfa::DemandSpec DS = taintSpec();
  const uint64_t Key = svfa::relevanceSpecKey(DS);
  ir::ModuleFingerprints FP = ir::fingerprintModule(M);
  svfa::RelevanceArtifact A =
      svfa::computeRelevanceArtifact(*CG, M, DS, &FP.PerFn);
  // The record table covers every function with its live fingerprint.
  ASSERT_EQ(A.Records.Checkers.size(), 1u);
  ASSERT_EQ(A.Records.Fns.size(), M.functions().size());
  for (const ir::Function *F : M.functions())
    EXPECT_EQ(A.Records.Fns.at(F->name()).FP, FP.PerFn.at(F)) << F->name();
  // srcCaller's single resolved callee is recorded by name.
  EXPECT_EQ(A.Records.Fns.at("srcCaller").Callees,
            std::vector<std::string>{"srcOnly"});

  ASSERT_TRUE(svfa::storeRelevance(T.file(""), FP.Subject, Key, A));
  svfa::RelevanceLoadResult R =
      svfa::loadRelevanceEx(T.file(""), FP.Subject, Key, M);
  ASSERT_EQ(R.Status, svfa::RelevanceLoadStatus::Ok);
  ASSERT_EQ(R.Artifact.Records.Fns.size(), A.Records.Fns.size());
  for (const auto &[Name, Rec] : A.Records.Fns) {
    const svfa::FunctionRecord &Got = R.Artifact.Records.Fns.at(Name);
    EXPECT_EQ(Got.FP, Rec.FP) << Name;
    EXPECT_EQ(Got.Flags, Rec.Flags) << Name;
    EXPECT_EQ(Got.SeedBits, Rec.SeedBits) << Name;
    EXPECT_EQ(Got.Callees, Rec.Callees) << Name;
  }

  // A stale-subject load surfaces the unresolved entry for refresh.
  svfa::RelevanceLoadResult S =
      svfa::loadRelevanceEx(T.file(""), FP.Subject ^ 1, Key, M);
  EXPECT_EQ(S.Status, svfa::RelevanceLoadStatus::Stale);
  EXPECT_TRUE(S.StoredUsable);
  EXPECT_EQ(S.Stored.Records.Fns.size(), A.Records.Fns.size());
  // ... but a stale-spec load never exposes records: the seed-bit layout
  // belongs to another checker set.
  svfa::RelevanceLoadResult K =
      svfa::loadRelevanceEx(T.file(""), FP.Subject, Key ^ 1, M);
  EXPECT_EQ(K.Status, svfa::RelevanceLoadStatus::Stale);
  EXPECT_FALSE(K.StoredUsable);
}

/// Writes a well-formed `relevance` entry with an arbitrary (older) format
/// version: correct magic, checksummed payload — only the version differs.
void writeLegacyRelevanceEntry(const std::string &Path, uint32_t Version) {
  ByteWriter PW;
  PW.u32(0);
  std::vector<uint8_t> Payload = PW.take();
  ByteWriter W;
  const char Magic[4] = {'P', 'P', 'R', 'L'};
  for (char C : Magic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(Version);
  W.u64(0); // subject fingerprint (never reached)
  W.u64(0); // spec key (never reached)
  W.u64(Hasher().bytes(Payload.data(), Payload.size()).digest());
  W.u32(static_cast<uint32_t>(Payload.size()));
  std::vector<uint8_t> Bytes = W.take();
  Bytes.insert(Bytes.end(), Payload.begin(), Payload.end());
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

TEST_F(RelevancePersistTest, OlderFormatVersionsReloadAsStale) {
  parse(sinkSubject());
  TempDir T("downgrade");
  svfa::DemandSpec DS = taintSpec();
  const uint64_t Key = svfa::relevanceSpecKey(DS);
  // A v1 or v2 entry is an honest leftover of an older build, not damage:
  // it must read as Stale (silent recompute), never Corrupt — and it can
  // never seed a refresh, whose seed-bit layout is v3-only.
  for (uint32_t Version : {1u, 2u}) {
    writeLegacyRelevanceEntry(T.file("relevance"), Version);
    svfa::RelevanceArtifact B;
    EXPECT_EQ(svfa::loadRelevance(T.file(""), 0x5EED, Key, M, B),
              svfa::RelevanceLoadStatus::Stale)
        << "version " << Version;
    svfa::RelevanceLoadResult R =
        svfa::loadRelevanceEx(T.file(""), 0x5EED, Key, M);
    EXPECT_EQ(R.Status, svfa::RelevanceLoadStatus::Stale);
    EXPECT_FALSE(R.StoredUsable) << "version " << Version;
  }
}

//===----------------------------------------------------------------------===
// Edit-localised refresh (DESIGN.md section 15)
//===----------------------------------------------------------------------===

/// One parsed subject with its call graph and fingerprints — refresh tests
/// hold two of these (the stored world and the edited world).
struct RefreshSubject {
  ir::Module M;
  std::unique_ptr<ir::CallGraph> CG;
  ir::ModuleFingerprints FP;
};

void loadRefreshSubject(RefreshSubject &S, const std::string &Src) {
  std::vector<frontend::Diag> Diags;
  ASSERT_TRUE(frontend::parseModule(Src, S.M, Diags))
      << (Diags.empty() ? "" : Diags[0].str());
  S.CG = std::make_unique<ir::CallGraph>(S.M);
  S.FP = ir::fingerprintModule(S.M);
}

/// Module-independent equality view of a relevance set: seed counts plus
/// sorted member names.
std::vector<std::string> refreshSetView(const svfa::RelevanceSet &S) {
  std::vector<std::string> Out;
  Out.push_back("src=" + std::to_string(S.SourceFns) +
                " snk=" + std::to_string(S.SinkFns));
  std::vector<std::string> Names;
  for (const ir::Function *F : S.Fns)
    Names.push_back(F->name());
  std::sort(Names.begin(), Names.end());
  Out.insert(Out.end(), Names.begin(), Names.end());
  return Out;
}

std::vector<std::vector<std::string>>
refreshView(const svfa::RelevanceArtifact &A) {
  std::vector<std::vector<std::string>> Out;
  Out.push_back(refreshSetView(A.Union));
  for (const auto &[Name, S] : A.PerChecker) {
    Out.push_back({Name});
    Out.push_back(refreshSetView(S));
  }
  return Out;
}

/// sinkSubject with \p From replaced by \p To.
std::string editedSinkSubject(const std::string &From, const std::string &To) {
  std::string S = sinkSubject();
  size_t Pos = S.find(From);
  EXPECT_NE(Pos, std::string::npos) << From;
  if (Pos != std::string::npos)
    S.replace(Pos, From.size(), To);
  return S;
}

class RelevanceRefreshTest : public ::testing::Test {
protected:
  svfa::DemandSpec taintSpec() {
    svfa::DemandSpec DS;
    DS.Checkers.push_back(checkers::pathTraversalChecker());
    return DS;
  }
  /// Stores the original subject's artifact, reloads it against the edited
  /// subject (asserting Stale + StoredUsable), and returns the refreshed
  /// artifact for comparison against a cold compute on the edited module.
  svfa::RelevanceArtifact refreshAgainst(RefreshSubject &Orig,
                                         RefreshSubject &Edited,
                                         svfa::RelevanceRefreshMode Mode,
                                         svfa::RelevanceRefreshStats &Stats) {
    TempDir T("refresh");
    svfa::DemandSpec DS = taintSpec();
    const uint64_t Key = svfa::relevanceSpecKey(DS);
    svfa::RelevanceArtifact A =
        svfa::computeRelevanceArtifact(*Orig.CG, Orig.M, DS, &Orig.FP.PerFn);
    EXPECT_TRUE(svfa::storeRelevance(T.file(""), Orig.FP.Subject, Key, A));
    svfa::RelevanceLoadResult L =
        svfa::loadRelevanceEx(T.file(""), Edited.FP.Subject, Key, Edited.M);
    EXPECT_EQ(L.Status, svfa::RelevanceLoadStatus::Stale);
    EXPECT_TRUE(L.StoredUsable);
    return svfa::refreshRelevanceArtifact(*Edited.CG, Edited.M, DS, L.Stored,
                                          Edited.FP.PerFn, Mode, Stats);
  }
};

TEST_F(RelevanceRefreshTest, LocalRefreshMatchesColdOnSeedChangingEdit) {
  RefreshSubject Orig, Edited;
  loadRefreshSubject(Orig, sinkSubject());
  // srcOnly gains a sink call: its region flips from pruned to relevant,
  // so the cones genuinely have to be recomputed from the merged seeds.
  loadRefreshSubject(
      Edited,
      editedSinkSubject(
          "int srcOnly(int c) { int v = read_input(); return v; }",
          "int srcOnly(int c) { int v = read_input(); open(v); return v; }"));

  svfa::RelevanceRefreshStats Stats;
  svfa::RelevanceArtifact R = refreshAgainst(
      Orig, Edited, svfa::RelevanceRefreshMode::Auto, Stats);
  EXPECT_TRUE(Stats.Local);
  EXPECT_FALSE(Stats.ClosureReused);
  EXPECT_EQ(Stats.DirtyFns, 1u);
  EXPECT_EQ(Stats.ScannedFns, 1u);
  EXPECT_GT(Stats.EdgesReused, 0u);
  ASSERT_EQ(Stats.Dirty.size(), 1u);
  EXPECT_EQ((*Stats.Dirty.begin())->name(), "srcOnly");

  svfa::RelevanceArtifact Cold =
      svfa::computeRelevanceArtifact(*Edited.CG, Edited.M, taintSpec());
  EXPECT_EQ(refreshView(R), refreshView(Cold));
  // The refresh really changed the result: the srcOnly region is now kept.
  EXPECT_TRUE(R.Union.Fns.count(Edited.M.function("srcOnly")));
  EXPECT_TRUE(R.Union.Fns.count(Edited.M.function("srcCaller")));

  // The refreshed artifact round-trips as a first-class v3 entry.
  TempDir T("restore");
  const uint64_t Key = svfa::relevanceSpecKey(taintSpec());
  ASSERT_TRUE(svfa::storeRelevance(T.file(""), Edited.FP.Subject, Key, R));
  svfa::RelevanceArtifact Re;
  EXPECT_EQ(svfa::loadRelevance(T.file(""), Edited.FP.Subject, Key, Edited.M,
                                Re),
            svfa::RelevanceLoadStatus::Ok);
  EXPECT_EQ(refreshView(Re), refreshView(Cold));
}

TEST_F(RelevanceRefreshTest, ConeNeutralEditReusesStoredClosure) {
  RefreshSubject Orig, Edited;
  loadRefreshSubject(Orig, sinkSubject());
  // A body edit that touches no source/sink/call site: one function is
  // dirty, but the merged seed table and edge lists are unchanged, so the
  // stored closure results are adopted without walking a single cone.
  loadRefreshSubject(
      Edited, editedSinkSubject(
                  "int srcOnly(int c) { int v = read_input(); return v; }",
                  "int srcOnly(int c) { int v = read_input(); int zq = 7; "
                  "return v; }"));

  svfa::RelevanceRefreshStats Stats;
  svfa::RelevanceArtifact R = refreshAgainst(
      Orig, Edited, svfa::RelevanceRefreshMode::Auto, Stats);
  EXPECT_TRUE(Stats.Local);
  EXPECT_TRUE(Stats.ClosureReused);
  EXPECT_EQ(Stats.DirtyFns, 1u);
  EXPECT_EQ(Stats.ScannedFns, 1u);

  svfa::RelevanceArtifact Cold =
      svfa::computeRelevanceArtifact(*Edited.CG, Edited.M, taintSpec());
  EXPECT_EQ(refreshView(R), refreshView(Cold));
  // The adopted records still carry the *new* fingerprint, so the stored
  // refresh replays on the next run instead of re-dirtying srcOnly.
  EXPECT_EQ(R.Records.Fns.at("srcOnly").FP,
            Edited.FP.PerFn.at(Edited.M.function("srcOnly")));
}

TEST_F(RelevanceRefreshTest, AddedAndDeletedFunctionsForceConeRecompute) {
  RefreshSubject Orig, Edited;
  loadRefreshSubject(Orig, sinkSubject());
  // filler disappears and a new caller of srcCaller appears: definition-set
  // changes can re/un-resolve call edges anywhere, so the closure-reuse
  // fast path must be refused even though the edit is small.
  std::string Src = editedSinkSubject(
      "int filler(int *p) { int *q = p; return *q; }\n", "");
  Src += "int extra(int c) { int r = srcCaller(c); return r; }\n";
  loadRefreshSubject(Edited, Src);

  svfa::RelevanceRefreshStats Stats;
  svfa::RelevanceArtifact R = refreshAgainst(
      Orig, Edited, svfa::RelevanceRefreshMode::Auto, Stats);
  EXPECT_TRUE(Stats.Local);
  EXPECT_FALSE(Stats.ClosureReused);
  EXPECT_EQ(Stats.DirtyFns, 1u); // only the new definition is dirty
  ASSERT_EQ(Stats.Dirty.size(), 1u);
  EXPECT_EQ((*Stats.Dirty.begin())->name(), "extra");

  svfa::RelevanceArtifact Cold =
      svfa::computeRelevanceArtifact(*Edited.CG, Edited.M, taintSpec());
  EXPECT_EQ(refreshView(R), refreshView(Cold));
}

TEST_F(RelevanceRefreshTest, AutoThresholdFallsBackToFull) {
  RefreshSubject Orig, Edited;
  loadRefreshSubject(Orig, sinkSubject());
  // Three of eight functions edited (37% > the ~30% threshold): Auto falls
  // back to the plain full pre-pass, Local forces the dirty-cone path —
  // and both produce the identical artifact.
  std::string Src = editedSinkSubject(
      "int srcOnly(int c) { int v = read_input(); return v; }",
      "int srcOnly(int c) { int v = read_input(); int a = 1; return v; }");
  {
    std::string From = "int bothSrc(int c) { int v = read_input(); return v; }";
    size_t Pos = Src.find(From);
    ASSERT_NE(Pos, std::string::npos);
    Src.replace(Pos, From.size(),
                "int bothSrc(int c) { int v = read_input(); int b = 2; "
                "return v; }");
    From = "int snkOnly(int v) { remove(v); return 0; }";
    Pos = Src.find(From);
    ASSERT_NE(Pos, std::string::npos);
    Src.replace(Pos, From.size(),
                "int snkOnly(int v) { remove(v); int c = 3; return 0; }");
  }
  loadRefreshSubject(Edited, Src);

  svfa::RelevanceRefreshStats AutoStats;
  svfa::RelevanceArtifact A = refreshAgainst(
      Orig, Edited, svfa::RelevanceRefreshMode::Auto, AutoStats);
  EXPECT_FALSE(AutoStats.Local);
  EXPECT_EQ(AutoStats.DirtyFns, 3u);
  EXPECT_EQ(AutoStats.ScannedFns, Edited.M.functions().size());

  svfa::RelevanceRefreshStats LocalStats;
  svfa::RelevanceArtifact L = refreshAgainst(
      Orig, Edited, svfa::RelevanceRefreshMode::Local, LocalStats);
  EXPECT_TRUE(LocalStats.Local);
  EXPECT_EQ(LocalStats.ScannedFns, 3u);

  svfa::RelevanceArtifact Cold =
      svfa::computeRelevanceArtifact(*Edited.CG, Edited.M, taintSpec());
  EXPECT_EQ(refreshView(A), refreshView(Cold));
  EXPECT_EQ(refreshView(L), refreshView(Cold));
}

TEST(RelevanceSpecKeyTest, OrderInvariantAndKnobSensitive) {
  svfa::DemandSpec AB, BA;
  AB.Checkers = {checkers::pathTraversalChecker(),
                 checkers::dataTransmissionChecker()};
  BA.Checkers = {checkers::dataTransmissionChecker(),
                 checkers::pathTraversalChecker()};
  // The key is canonical over checker order (the CLI assembles the spec in
  // flag order) ...
  EXPECT_EQ(svfa::relevanceSpecKey(AB), svfa::relevanceSpecKey(BA));

  // ... but sensitive to every knob that shapes the result.
  svfa::DemandSpec NoSink = AB;
  NoSink.UseSinkCones = false;
  EXPECT_NE(svfa::relevanceSpecKey(AB), svfa::relevanceSpecKey(NoSink));
  svfa::DemandSpec Leak = AB;
  Leak.LeakSources = true;
  EXPECT_NE(svfa::relevanceSpecKey(AB), svfa::relevanceSpecKey(Leak));
  svfa::DemandSpec One;
  One.Checkers = {checkers::pathTraversalChecker()};
  EXPECT_NE(svfa::relevanceSpecKey(AB), svfa::relevanceSpecKey(One));
}

//===----------------------------------------------------------------------===
// Frozen condensation layout
//===----------------------------------------------------------------------===

TEST(CondensationLayoutTest, FrozenSpansReplayBottomUpOrder) {
  ir::Module M;
  std::vector<frontend::Diag> Diags;
  // A recursion pair, a chain through it, and an isolated function: three
  // SCC shapes (multi-member, chained singletons, isolated singleton).
  ASSERT_TRUE(frontend::parseModule(
      "int ping(int *p, int c) { if (c > 0) { int r = pong(p, c); "
      "return r; } return 0; }\n"
      "int pong(int *p, int c) { int r = ping(p, c); return r; }\n"
      "int top(int *p, int c) { int r = ping(p, c); return r; }\n"
      "int lonely(int *p) { return *p; }\n",
      M, Diags));
  Counters &C = Counters::get();
  const int64_t Before = C.value("cg.csr-bytes");
  ir::CallGraph CG(M);
  // The frozen member/adjacency rows live in a measured arena.
  EXPECT_GT(C.value("cg.csr-bytes"), Before);

  // Concatenating Members over ascending SCC id replays bottomUpOrder
  // exactly (ids are Tarjan completion order, which is topological).
  std::vector<ir::Function *> Concat;
  for (const auto &N : CG.sccs())
    for (ir::Function *F : N.Members)
      Concat.push_back(F);
  EXPECT_EQ(Concat, CG.bottomUpOrder());

  // Callee rows are sorted, deduplicated and strictly below the owner id.
  for (size_t I = 0; I < CG.sccs().size(); ++I) {
    const auto &Row = CG.sccs()[I].CalleeSCCs;
    for (size_t K = 0; K < Row.size(); ++K) {
      EXPECT_LT(Row[K], I);
      if (K) {
        EXPECT_LT(Row[K - 1], Row[K]);
      }
    }
  }
  // The recursion pair is one SCC with both members.
  bool SawPair = false;
  for (const auto &N : CG.sccs())
    if (N.Members.size() == 2)
      SawPair = true;
  EXPECT_TRUE(SawPair);
}

#if !defined(_WIN32) && !defined(PINPOINT_TSAN)

//===----------------------------------------------------------------------===
// CLI harness (forked pinpointToolMain, as in LifecycleTest/DemandTest)
//===----------------------------------------------------------------------===

int runTool(const std::vector<std::string> &Args, const std::string &OutFile) {
  pid_t Pid = fork();
  if (Pid == 0) {
    if (!std::freopen(OutFile.c_str(), "w", stdout))
      std::exit(90);
    if (!std::freopen("/dev/null", "w", stderr))
      std::exit(91);
    std::vector<std::string> Store = Args;
    std::vector<char *> Argv;
    static char Name[] = "pinpoint";
    Argv.push_back(Name);
    for (std::string &A : Store)
      Argv.push_back(A.data());
    std::exit(
        tools::pinpointToolMain(static_cast<int>(Argv.size()), Argv.data()));
  }
  int Status = 0;
  if (waitpid(Pid, &Status, 0) != Pid)
    return -1000;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1001;
}

/// Extracts `Key=<number>` from \p Out (first occurrence); -1 if absent.
long long statValue(const std::string &Out, const std::string &Key) {
  size_t Pos = Out.find(Key + "=");
  if (Pos == std::string::npos)
    return -1;
  return std::atoll(Out.c_str() + Pos + Key.size() + 1);
}

//===----------------------------------------------------------------------===
// CLI differentials: sink-intersected runs vs --demand=off
//===----------------------------------------------------------------------===
//
// Unlike DemandTest's source-only-era differentials these run *without*
// --stats: sink cones legitimately shrink the work-reflecting [checker]
// fields (events, linear-pruned) on subjects with sink-less source
// regions, while reports and the degradation log stay byte-identical —
// which is exactly what raw output comparison pins down.

TEST(DemandSinkCLI, PerCheckerDifferentialAcrossJobs) {
  TempDir T("diff");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << mixedSubject();

  for (const char *Checker : {"df", "taint-path", "taint-data"}) {
    for (const char *Jobs : {"--jobs=1", "--jobs=4"}) {
      const std::string On = T.file("on.out"), Off = T.file("off.out");
      ASSERT_EQ(runTool({std::string("--checker=") + Checker, Jobs,
                         "--degradation-log", "--demand=on", Subject},
                        On),
                0)
          << Checker;
      ASSERT_EQ(runTool({std::string("--checker=") + Checker, Jobs,
                         "--degradation-log", "--demand=off", Subject},
                        Off),
                0)
          << Checker;
      EXPECT_EQ(readFile(On), readFile(Off))
          << "checker=" << Checker << " " << Jobs;
    }
  }
}

TEST(DemandSinkCLI, DerefNarrowingDifferentialAcrossJobs) {
  TempDir T("deref");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << derefNarrowSubject();

  // The deref-sink checkers across both job counts: narrowed demand runs
  // emit byte-identical reports and degradation logs to the exhaustive
  // runs, on a subject where the narrowing really skips a free region.
  for (const char *Checker : {"uaf", "null-deref"}) {
    for (const char *Jobs : {"--jobs=1", "--jobs=4"}) {
      const std::string On = T.file("on.out"), Off = T.file("off.out");
      ASSERT_EQ(runTool({std::string("--checker=") + Checker, Jobs,
                         "--degradation-log", "--demand=on", Subject},
                        On),
                0)
          << Checker;
      ASSERT_EQ(runTool({std::string("--checker=") + Checker, Jobs,
                         "--degradation-log", "--demand=off", Subject},
                        Off),
                0)
          << Checker;
      EXPECT_EQ(readFile(On), readFile(Off))
          << "checker=" << Checker << " " << Jobs;
    }
  }

  // Exact narrowed counts: the source-only cone would keep four functions
  // (both free regions); the deref intersection keeps two and skips three.
  const std::string Out = T.file("stats.out");
  ASSERT_EQ(runTool({"--checker=uaf", "--stats", Subject}, Out), 0);
  const std::string Text = readFile(Out);
  EXPECT_EQ(statValue(Text, "relevant-fns"), 2) << Text;
  EXPECT_EQ(statValue(Text, "skipped-fns"), 3) << Text;
  EXPECT_EQ(statValue(Text, "source-fns"), 2) << Text;
  EXPECT_EQ(statValue(Text, "sink-fns"), 2) << Text;
}

TEST(DemandSinkCLI, UnionDifferentialAcrossJobs) {
  TempDir T("union");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << mixedSubject();

  const std::string All = "--checker=uaf,df,taint-path,taint-data,"
                          "null-deref,leak";
  for (const char *Jobs : {"--jobs=1", "--jobs=4"}) {
    const std::string On = T.file("on.out"), Off = T.file("off.out");
    ASSERT_EQ(runTool({All, Jobs, "--degradation-log", "--demand=on",
                       Subject},
                      On),
              0);
    ASSERT_EQ(runTool({All, Jobs, "--degradation-log", "--demand=off",
                       Subject},
                      Off),
              0);
    EXPECT_EQ(readFile(On), readFile(Off)) << Jobs;
  }
}

TEST(DemandSinkCLI, SinkConesPruneExactCounts) {
  TempDir T("counts");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << sinkSubject();

  const std::string Out = T.file("run.out");
  ASSERT_EQ(runTool({"--checker=taint-path", "--stats", Subject}, Out), 0);
  const std::string Text = readFile(Out);
  // The sink intersection keeps exactly the meeting region (bothSrc,
  // bothSnk, bothCaller) out of eight functions; the source-only cone
  // would have kept five (srcOnly and srcCaller too).
  EXPECT_EQ(statValue(Text, "relevant-fns"), 3) << Text;
  EXPECT_EQ(statValue(Text, "skipped-fns"), 5) << Text;
  EXPECT_EQ(statValue(Text, "source-fns"), 2) << Text;
  EXPECT_EQ(statValue(Text, "sink-fns"), 2) << Text;
  // The frozen condensation reports its arena footprint, and the pre-pass
  // really walked the module. (Counter fields are inherited from the test
  // process across fork(), so only >0 and cross-run deltas are asserted in
  // the CLI tests — never absolute counter values.)
  EXPECT_GT(statValue(Text, "cg-csr-bytes"), 0) << Text;
  EXPECT_GT(statValue(Text, "prepass-fns"), 0) << Text;
}

//===----------------------------------------------------------------------===
// Persisted relevance through the CLI (--cache-dir warm replay)
//===----------------------------------------------------------------------===

TEST(DemandSinkCLI, WarmRunReplaysPersistedRelevance) {
  TempDir T("warm");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << sinkSubject();
  const std::string Dir = T.file("cache");

  // Cold: the pre-pass runs over the whole module and persists its result.
  const std::string Cold = T.file("cold.out"), Warm = T.file("warm.out");
  ASSERT_EQ(runTool({"--checker=taint-path", "--stats", "--degradation-log",
                     "--cache-dir=" + Dir, Subject},
                    Cold),
            0);
  const std::string ColdText = readFile(Cold);

  // Warm: the persisted entry replays — zero pre-pass work, same slice.
  // Both children fork from the same test-process counter state, so the
  // cross-run deltas isolate exactly what each run did: the cold run
  // stored one entry and walked all 8 functions, the warm run replayed
  // one entry and walked none.
  ASSERT_EQ(runTool({"--checker=taint-path", "--stats", "--degradation-log",
                     "--cache-dir=" + Dir, Subject},
                    Warm),
            0);
  const std::string WarmText = readFile(Warm);
  EXPECT_EQ(statValue(ColdText, "relevance-stored"),
            statValue(WarmText, "relevance-stored") + 1)
      << ColdText << WarmText;
  EXPECT_EQ(statValue(WarmText, "relevance-replayed"),
            statValue(ColdText, "relevance-replayed") + 1)
      << ColdText << WarmText;
  EXPECT_EQ(statValue(WarmText, "relevance-stale"),
            statValue(ColdText, "relevance-stale"))
      << ColdText << WarmText;
  EXPECT_EQ(statValue(ColdText, "prepass-fns"),
            statValue(WarmText, "prepass-fns") + 8)
      << ColdText << WarmText;
  EXPECT_EQ(statValue(WarmText, "relevant-fns"), 3) << WarmText;
  EXPECT_EQ(statValue(WarmText, "skipped-fns"), 5) << WarmText;
  EXPECT_EQ(statValue(WarmText, "sink-fns"), 2) << WarmText;
}

TEST(DemandSinkCLI, CorruptRelevanceEntryRecomputes) {
  TempDir T("corruptcli");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << sinkSubject();
  const std::string Dir = T.file("cache");

  ASSERT_EQ(runTool({"--checker=taint-path", "--stats",
                     "--cache-dir=" + Dir, Subject},
                    T.file("cold.out")),
            0);
  const std::string ColdText = readFile(T.file("cold.out"));
  // Reference output for the differential below (no cache, demand off).
  ASSERT_EQ(runTool({"--checker=taint-path", "--demand=off", Subject},
                    T.file("ref.out")),
            0);

  // Flip one payload byte of the persisted entry.
  const std::string Entry =
      (std::filesystem::path(Dir) / "relevance").string();
  std::string Bytes = readFile(Entry);
  ASSERT_GT(Bytes.size(), 4u);
  Bytes[Bytes.size() - 2] = static_cast<char>(Bytes[Bytes.size() - 2] ^ 0x7f);
  std::ofstream(Entry, std::ios::binary | std::ios::trunc) << Bytes;

  // The corrupt entry is detected, logged, and the pre-pass recomputes —
  // reports are unaffected and a fresh entry is stored.
  const std::string Out = T.file("recompute.out");
  ASSERT_EQ(runTool({"--checker=taint-path", "--stats", "--degradation-log",
                     "--cache-dir=" + Dir, Subject},
                    Out),
            0);
  const std::string Text = readFile(Out);
  EXPECT_NE(Text.find("cache-corrupt demand"), std::string::npos) << Text;
  // Deltas vs the cold run (identical inherited counter state): neither
  // run replayed, both ran the full pre-pass and stored an entry.
  EXPECT_EQ(statValue(Text, "relevance-replayed"),
            statValue(ColdText, "relevance-replayed"))
      << Text;
  EXPECT_EQ(statValue(Text, "relevance-stored"),
            statValue(ColdText, "relevance-stored"))
      << Text;
  EXPECT_EQ(statValue(Text, "prepass-fns"), statValue(ColdText, "prepass-fns"))
      << Text;
  EXPECT_EQ(statValue(Text, "relevant-fns"), 3) << Text;

  // Report lines match the uncached exhaustive run.
  const std::string Ref = readFile(T.file("ref.out"));
  EXPECT_NE(Text.find(Ref.substr(0, Ref.find('\n'))), std::string::npos);

  // And the freshly stored entry replays on the next run.
  ASSERT_EQ(runTool({"--checker=taint-path", "--stats",
                     "--cache-dir=" + Dir, Subject},
                    T.file("rewarm.out")),
            0);
  EXPECT_EQ(statValue(readFile(T.file("rewarm.out")), "relevance-replayed"),
            statValue(ColdText, "relevance-replayed") + 1);
}

TEST(DemandSinkCLI, SpecChangeStoresFreshRelevance) {
  TempDir T("spec");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << mixedSubject();
  const std::string Dir = T.file("cache");

  ASSERT_EQ(runTool({"--checker=taint-path", "--stats",
                     "--cache-dir=" + Dir, Subject},
                    T.file("a.out")),
            0);
  const std::string A = readFile(T.file("a.out"));
  // A different checker set is a different spec key: the entry is
  // well-formed but stale, and the run recomputes and overwrites it.
  // (All deltas are against run A — same inherited counter state.)
  const std::string Out = T.file("b.out");
  ASSERT_EQ(runTool({"--checker=taint-data", "--stats",
                     "--cache-dir=" + Dir, Subject},
                    Out),
            0);
  const std::string Text = readFile(Out);
  EXPECT_EQ(statValue(Text, "relevance-stale"),
            statValue(A, "relevance-stale") + 1)
      << Text;
  EXPECT_EQ(statValue(Text, "relevance-replayed"),
            statValue(A, "relevance-replayed"))
      << Text;
  EXPECT_EQ(statValue(Text, "relevance-stored"),
            statValue(A, "relevance-stored"))
      << Text;
  // The overwritten entry now serves the new spec.
  ASSERT_EQ(runTool({"--checker=taint-data", "--stats",
                     "--cache-dir=" + Dir, Subject},
                    T.file("c.out")),
            0);
  const std::string Again = readFile(T.file("c.out"));
  EXPECT_EQ(statValue(Again, "relevance-replayed"),
            statValue(A, "relevance-replayed") + 1)
      << Again;
  EXPECT_EQ(statValue(Again, "relevance-stale"),
            statValue(A, "relevance-stale"))
      << Again;
}

//===----------------------------------------------------------------------===
// Mode-independent memory plan
//===----------------------------------------------------------------------===

/// pairSubject from LifecycleTest (a feasible use-after-free per pair) plus
/// disconnected source-less fillers the uaf pre-pass skips — the functions
/// whose existence must NOT perturb the memory plan across demand modes.
std::string memPlanSubject(int Pairs, int Fillers) {
  std::string S;
  for (int I = 0; I < Pairs; ++I) {
    std::string N = std::to_string(I);
    S += "void use" + N + "(int *p, int c) { if (c > " + N +
         ") { free(p); } if (c > " + std::to_string(I + 1) +
         ") { int x = *p; } }\n";
    S += "int caller" + N + "(int c) { int *p = malloc(4); use" + N +
         "(p, c); return 0; }\n";
  }
  for (int I = 0; I < Fillers; ++I) {
    std::string N = std::to_string(I);
    S += "int pad" + N + "(int *p) { int *q = p; return *q; }\n";
  }
  return S;
}

TEST(DemandSinkCLI, MemPlanIsIdenticalAcrossDemandModes) {
  TempDir T("memplan");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << memPlanSubject(60, 12);

  // Same budget, both demand modes, both job counts: the deterministic
  // memory plan keys on the union-relevant set in *every* mode (the CLI
  // passes the same planning spec for on and off), so the pre-degraded
  // SCC set — and with it the whole output — is byte-identical.
  std::vector<std::string> Outs;
  for (const char *Mode : {"--demand=on", "--demand=off"}) {
    for (const char *Jobs : {"--jobs=1", "--jobs=4"}) {
      const std::string Out =
          T.file(std::string(Mode + 9) + Jobs[7] + ".out");
      ASSERT_EQ(runTool({"--checker=uaf", Jobs, Mode, "--mem-budget-mb=2",
                         "--degradation-log", Subject},
                        Out),
                0)
          << Mode << " " << Jobs;
      Outs.push_back(readFile(Out));
    }
  }
  EXPECT_NE(Outs[0].find("memory-pressure"), std::string::npos) << Outs[0];
  EXPECT_EQ(Outs[0], Outs[1]);
  EXPECT_EQ(Outs[0], Outs[2]);
  EXPECT_EQ(Outs[0], Outs[3]);

  // Non-vacuity: demand=on really skipped the fillers while producing the
  // very same plan.
  const std::string StatsOut = T.file("stats.out");
  ASSERT_EQ(runTool({"--checker=uaf", "--demand=on", "--mem-budget-mb=2",
                     "--stats", Subject},
                    StatsOut),
            0);
  const std::string Text = readFile(StatsOut);
  EXPECT_EQ(statValue(Text, "skipped-fns"), 12) << Text;
  EXPECT_GT(statValue(Text, "mem-plan-degraded"), 0) << Text;
}

//===----------------------------------------------------------------------===
// Edit-localised warm refresh through the CLI (--relevance-refresh)
//===----------------------------------------------------------------------===

TEST(DemandSinkCLI, EditedWarmRunRefreshesLocally) {
  TempDir T("editwarm");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << sinkSubject();
  const std::string DirA = T.file("cacheA"), DirB = T.file("cacheB");

  // Two cold populates of the original subject (one per refresh policy).
  ASSERT_EQ(runTool({"--checker=taint-path", "--stats",
                     "--cache-dir=" + DirA, Subject},
                    T.file("coldA.out")),
            0);
  ASSERT_EQ(runTool({"--checker=taint-path", "--stats",
                     "--cache-dir=" + DirB, Subject},
                    T.file("coldB.out")),
            0);
  const std::string ColdA = readFile(T.file("coldA.out"));
  EXPECT_NE(ColdA.find("refresh-mode=cold"), std::string::npos) << ColdA;

  // An unedited warm run replays outright.
  ASSERT_EQ(runTool({"--checker=taint-path", "--stats",
                     "--cache-dir=" + DirA, Subject},
                    T.file("replay.out")),
            0);
  EXPECT_NE(readFile(T.file("replay.out")).find("refresh-mode=replay"),
            std::string::npos);

  // Edit one function body, then rerun warm: the stale entry seeds a
  // localized refresh instead of a full pre-pass.
  std::ofstream(Subject, std::ios::trunc) << editedSinkSubject(
      "int srcOnly(int c) { int v = read_input(); return v; }",
      "int srcOnly(int c) { int v = read_input(); int zq = 7; return v; }");
  ASSERT_EQ(runTool({"--checker=taint-path", "--stats",
                     "--cache-dir=" + DirA, Subject},
                    T.file("warm.out")),
            0);
  const std::string Warm = readFile(T.file("warm.out"));
  EXPECT_NE(Warm.find("refresh-mode=local"), std::string::npos) << Warm;
  // Deltas vs the cold run (identical inherited counter state): exactly
  // one dirty function, one re-scanned function (vs all 8 cold), reused
  // edges, one more stale detection — and a refreshed entry stored.
  EXPECT_EQ(statValue(Warm, "dirty-fns"), statValue(ColdA, "dirty-fns") + 1)
      << Warm;
  EXPECT_EQ(statValue(Warm, "prepass-fns"),
            statValue(ColdA, "prepass-fns") - 7)
      << Warm;
  EXPECT_GT(statValue(Warm, "edges-reused"),
            statValue(ColdA, "edges-reused"))
      << Warm;
  EXPECT_EQ(statValue(Warm, "relevance-stale"),
            statValue(ColdA, "relevance-stale") + 1)
      << Warm;
  EXPECT_EQ(statValue(Warm, "relevance-stored"),
            statValue(ColdA, "relevance-stored"))
      << Warm;

  // The refreshed entry replays on the next warm run.
  ASSERT_EQ(runTool({"--checker=taint-path", "--stats",
                     "--cache-dir=" + DirA, Subject},
                    T.file("rewarm.out")),
            0);
  EXPECT_NE(readFile(T.file("rewarm.out")).find("refresh-mode=replay"),
            std::string::npos);

  // --relevance-refresh=full on the same edit reruns the whole pre-pass:
  // all 8 functions scanned, no dirty-diff bookkeeping at all.
  ASSERT_EQ(runTool({"--checker=taint-path", "--stats",
                     "--relevance-refresh=full", "--cache-dir=" + DirB,
                     Subject},
                    T.file("full.out")),
            0);
  const std::string Full = readFile(T.file("full.out"));
  EXPECT_NE(Full.find("refresh-mode=full"), std::string::npos) << Full;
  EXPECT_EQ(statValue(Full, "prepass-fns"), statValue(ColdA, "prepass-fns"))
      << Full;
  EXPECT_EQ(statValue(Full, "dirty-fns"), statValue(ColdA, "dirty-fns"))
      << Full;
}

TEST(DemandSinkCLI, EditedWarmByteIdentityAcrossModes) {
  TempDir T("editmatrix");
  const std::string Subject = T.file("subject.mc");
  const std::string All = "--checker=uaf,df,taint-path,taint-data,"
                          "null-deref,leak";
  const std::string Orig = mixedSubject();
  // A seed-changing edit (a third free site in dfBoth): the warm refresh
  // has to recompute the cones, re-analyze the dirtied SCC, and still land
  // byte-identical to a cold run on the edited subject.
  std::string Edited = Orig;
  const std::string From = "int dfBoth(int *p, int c) { if (c > 0) { "
                           "free(p); } if (c > 1) { free(p); } return c; }";
  size_t Pos = Edited.find(From);
  ASSERT_NE(Pos, std::string::npos);
  Edited.replace(Pos, From.size(),
                 "int dfBoth(int *p, int c) { if (c > 0) { free(p); } "
                 "if (c > 1) { free(p); } if (c > 2) { free(p); } "
                 "return c; }");

  int Combo = 0;
  for (const char *Jobs : {"--jobs=1", "--jobs=4"}) {
    for (const char *Sched : {"--schedule=fifo", "--schedule=steal"}) {
      const std::string Tag = std::to_string(Combo++);
      const std::string DirA = T.file("ca" + Tag), DirB = T.file("cb" + Tag);
      std::ofstream(Subject, std::ios::trunc) << Orig;
      ASSERT_EQ(runTool({All, Jobs, Sched, "--cache-dir=" + DirA, Subject},
                        T.file("seed.out")),
                0);
      ASSERT_EQ(runTool({All, Jobs, Sched, "--cache-dir=" + DirB, Subject},
                        T.file("seed.out")),
                0);
      std::ofstream(Subject, std::ios::trunc) << Edited;
      const std::string C = T.file("c" + Tag + ".out"),
                        W = T.file("w" + Tag + ".out"),
                        F = T.file("f" + Tag + ".out");
      ASSERT_EQ(runTool({All, Jobs, Sched, "--degradation-log", Subject}, C),
                0);
      ASSERT_EQ(runTool({All, Jobs, Sched, "--degradation-log",
                         "--cache-dir=" + DirA, Subject},
                        W),
                0);
      ASSERT_EQ(runTool({All, Jobs, Sched, "--degradation-log",
                         "--relevance-refresh=full", "--cache-dir=" + DirB,
                         Subject},
                        F),
                0);
      EXPECT_EQ(readFile(C), readFile(W)) << Jobs << " " << Sched;
      EXPECT_EQ(readFile(C), readFile(F)) << Jobs << " " << Sched;
    }
  }
}

TEST(DemandSinkCLI, VersionDowngradeRecomputesSilently) {
  TempDir T("downgradecli");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << sinkSubject();
  const std::string Dir = T.file("cache");

  ASSERT_EQ(runTool({"--checker=taint-path", "--stats", "--degradation-log",
                     "--cache-dir=" + Dir, Subject},
                    T.file("cold.out")),
            0);
  const std::string Cold = readFile(T.file("cold.out"));

  // Replace the entry with a well-formed v2-era one: an honest leftover of
  // an older build, which must recompute silently — stale, not corrupt.
  writeLegacyRelevanceEntry(
      (std::filesystem::path(Dir) / "relevance").string(), 2);
  ASSERT_EQ(runTool({"--checker=taint-path", "--stats", "--degradation-log",
                     "--cache-dir=" + Dir, Subject},
                    T.file("warm.out")),
            0);
  const std::string Warm = readFile(T.file("warm.out"));
  EXPECT_EQ(Warm.find("cache-corrupt demand"), std::string::npos) << Warm;
  EXPECT_NE(Warm.find("refresh-mode=full"), std::string::npos) << Warm;
  EXPECT_EQ(statValue(Warm, "relevance-stale"),
            statValue(Cold, "relevance-stale") + 1)
      << Warm;
  EXPECT_EQ(statValue(Warm, "relevance-stored"),
            statValue(Cold, "relevance-stored"))
      << Warm;
  EXPECT_EQ(statValue(Warm, "prepass-fns"), statValue(Cold, "prepass-fns"))
      << Warm;

  // The overwritten v3 entry replays on the next run.
  ASSERT_EQ(runTool({"--checker=taint-path", "--stats",
                     "--cache-dir=" + Dir, Subject},
                    T.file("rewarm.out")),
            0);
  EXPECT_EQ(statValue(readFile(T.file("rewarm.out")), "relevance-replayed"),
            statValue(Cold, "relevance-replayed") + 1);
}

TEST(DemandSinkCLI, OrphanTmpFilesAreSweptAtStartup) {
  TempDir T("tmpgc");
  const std::string Subject = T.file("subject.mc");
  std::ofstream(Subject) << sinkSubject();
  const std::string Dir = T.file("cache");

  ASSERT_EQ(runTool({"--checker=taint-path", "--stats",
                     "--cache-dir=" + Dir, Subject},
                    T.file("cold.out")),
            0);
  const std::string Cold = readFile(T.file("cold.out"));

  // Count the real entries, then plant orphaned temp files of every store
  // family (entry, relevance, sched-profile) as a crashed run would.
  size_t Entries = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    if (E.path().extension() == ".pps")
      ++Entries;
  ASSERT_GT(Entries, 0u);
  for (const char *Orphan :
       {"deadbeef00000000.pps.tmp3.7", "relevance.tmp1", "sched-profile.tmp0"})
    std::ofstream((std::filesystem::path(Dir) / Orphan).string())
        << "leftover";

  ASSERT_EQ(runTool({"--checker=taint-path", "--stats",
                     "--cache-dir=" + Dir, Subject},
                    T.file("warm.out")),
            0);
  const std::string Warm = readFile(T.file("warm.out"));
  EXPECT_EQ(statValue(Warm, "gc-tmp"), statValue(Cold, "gc-tmp") + 3) << Warm;
  // Orphans are gone, real entries and the relevance entry survived.
  size_t After = 0, Tmps = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir)) {
    if (E.path().extension() == ".pps")
      ++After;
    if (E.path().filename().string().find(".tmp") != std::string::npos)
      ++Tmps;
  }
  EXPECT_EQ(After, Entries);
  EXPECT_EQ(Tmps, 0u);
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(Dir) /
                                      "relevance"));
  EXPECT_EQ(statValue(Warm, "relevance-replayed"),
            statValue(Cold, "relevance-replayed") + 1)
      << Warm;
}

#endif // !_WIN32 && !PINPOINT_TSAN

} // namespace
