//===- tests/ContextTest.cpp - Context cloning / instantiation tests -------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "svfa/Context.h"
#include "svfa/GlobalSVFA.h"
#include "svfa/Pipeline.h"

#include <gtest/gtest.h>

using namespace pinpoint::ir;

namespace pinpoint::svfa {
namespace {

class ContextTest : public ::testing::Test {
protected:
  void analyze(std::string_view Src) {
    M = std::make_unique<Module>();
    std::vector<frontend::Diag> Diags;
    ASSERT_TRUE(frontend::parseModule(Src, *M, Diags))
        << (Diags.empty() ? "?" : Diags[0].str());
    AM = std::make_unique<AnalyzedModule>(*M, Ctx);
    CT = std::make_unique<ContextTable>(Ctx, AM->symbols());
  }

  const CallStmt *callIn(const std::string &Fn, const std::string &Callee) {
    for (BasicBlock *B : M->function(Fn)->blocks())
      for (Stmt *S : B->stmts())
        if (auto *C = dyn_cast<CallStmt>(S))
          if (C->calleeName() == Callee)
            return C;
    return nullptr;
  }

  smt::ExprContext Ctx;
  std::unique_ptr<Module> M;
  std::unique_ptr<AnalyzedModule> AM;
  std::unique_ptr<ContextTable> CT;
};

TEST_F(ContextTest, ContextsAreInterned) {
  analyze(R"(
    int g(int x) { return x; }
    int f(int a) { return g(a); }
  )");
  const CallStmt *Call = callIn("f", "g");
  const Context *C1 = CT->push(CT->top(), Call);
  const Context *C2 = CT->push(CT->top(), Call);
  EXPECT_EQ(C1, C2);
  EXPECT_EQ(ContextTable::depth(C1), 1);
  EXPECT_EQ(ContextTable::depth(CT->top()), 0);
}

TEST_F(ContextTest, ParamsMapToActualSymbols) {
  analyze(R"(
    int g(int x) { return x; }
    int f(int a) { return g(a); }
  )");
  Function *G = M->function("g");
  Function *F = M->function("f");
  const CallStmt *Call = callIn("f", "g");
  const Context *C = CT->push(CT->top(), Call);

  // An expression over g's parameter x…
  const smt::Expr *XSym = AM->symbols()[G->params()[0]];
  const smt::Expr *E = Ctx.mkCmp(smt::ExprKind::Gt, XSym, Ctx.getInt(0));
  // …instantiated at the call becomes an expression over the actual a.
  const smt::Expr *Inst = CT->instantiate(E, G, C);
  const smt::Expr *ASym = AM->symbols()[F->params()[0]];
  EXPECT_EQ(Inst, Ctx.mkCmp(smt::ExprKind::Gt, ASym, Ctx.getInt(0)));
}

TEST_F(ContextTest, LocalsAreClonedPerContext) {
  analyze(R"(
    int g(int x) { int y = x + 1; return y; }
    int f(int a) {
      int r1 = g(a);
      int r2 = g(a);
      return r1 + r2;
    }
  )");
  Function *G = M->function("g");
  // Find g's local y.
  const Variable *Y = nullptr;
  for (const Variable *V : G->vars())
    if (V->name().rfind("y", 0) == 0)
      Y = V;
  ASSERT_NE(Y, nullptr);
  const smt::Expr *YSym = AM->symbols()[Y];

  // Two different call sites → two different clones.
  std::vector<const CallStmt *> Calls;
  for (BasicBlock *B : M->function("f")->blocks())
    for (Stmt *S : B->stmts())
      if (auto *C = dyn_cast<CallStmt>(S))
        if (C->calleeName() == "g")
          Calls.push_back(C);
  ASSERT_EQ(Calls.size(), 2u);

  const smt::Expr *I1 =
      CT->instantiate(YSym, G, CT->push(CT->top(), Calls[0]));
  const smt::Expr *I2 =
      CT->instantiate(YSym, G, CT->push(CT->top(), Calls[1]));
  EXPECT_NE(I1, I2);
  EXPECT_NE(I1, YSym);
  // Same context → same clone (cache).
  EXPECT_EQ(I1, CT->instantiate(YSym, G, CT->push(CT->top(), Calls[0])));
}

TEST_F(ContextTest, TopContextIsIdentity) {
  analyze("int f(int a) { return a; }");
  const smt::Expr *A = AM->symbols()[M->function("f")->params()[0]];
  EXPECT_EQ(CT->instantiate(A, M->function("f"), CT->top()), A);
}

TEST_F(ContextTest, NestedContextsChainSubstitution) {
  analyze(R"(
    int h(int z) { return z; }
    int g(int y) { return h(y); }
    int f(int a) { return g(a); }
  )");
  Function *H = M->function("h");
  const CallStmt *FG = callIn("f", "g");
  const CallStmt *GH = callIn("g", "h");
  const Context *C1 = CT->push(CT->top(), FG);
  const Context *C2 = CT->push(C1, GH);

  // h's parameter z, two frames up, resolves to f's actual a.
  const smt::Expr *Z = AM->symbols()[H->params()[0]];
  const smt::Expr *Inst = CT->instantiate(Z, H, C2);
  const smt::Expr *A = AM->symbols()[M->function("f")->params()[0]];
  EXPECT_EQ(Inst, A);
}

TEST_F(ContextTest, ContextSensitivityDistinguishesCallSites) {
  // End-to-end: the same callee frees its argument only under its boolean
  // parameter; one call site passes true-ish condition, the other false.
  // Context-sensitive conditions must keep them apart.
  analyze(R"(
    void maybe_free(int *p, bool doit) {
      if (doit) { free(p); }
    }
    int f(int *x, int *y) {
      maybe_free(x, true);
      maybe_free(y, false);
      int a = *x;
      int b = *y;
      return a + b;
    }
  )");
  GlobalSVFA Engine(*AM, checkers::useAfterFreeChecker());
  auto Reports = Engine.run();
  // Only *x is a use-after-free; the y call site's condition is false.
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].Sink.Line, 8u); // a = *x.
}

} // namespace
} // namespace pinpoint::svfa
