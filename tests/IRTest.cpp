//===- tests/IRTest.cpp - IR, dominators, SSA, call graph, conditions ------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/CallGraph.h"
#include "ir/Conditions.h"
#include "ir/Dominators.h"
#include "ir/SSA.h"
#include "ir/Verifier.h"
#include "smt/Solver.h"

#include <gtest/gtest.h>

namespace pinpoint::ir {
namespace {

std::unique_ptr<Module> parse(std::string_view Src) {
  auto M = std::make_unique<Module>();
  std::vector<frontend::Diag> Diags;
  bool OK = frontend::parseModule(Src, *M, Diags);
  for (auto &D : Diags)
    ADD_FAILURE() << D.str();
  EXPECT_TRUE(OK);
  return M;
}

std::unique_ptr<Module> parseSSA(std::string_view Src) {
  auto M = parse(Src);
  for (Function *F : M->functions()) {
    F->recomputeCFGEdges();
    constructSSA(*F);
  }
  return M;
}

//===----------------------------------------------------------------------===
// Types
//===----------------------------------------------------------------------===

TEST(Types, DerefReducesDepth) {
  Type T = Type::ptrTy(3);
  EXPECT_EQ(T.deref().pointerDepth(), 2);
  EXPECT_EQ(T.deref(3), Type::intTy());
  EXPECT_EQ(T.str(), "int***");
}

//===----------------------------------------------------------------------===
// Dominators
//===----------------------------------------------------------------------===

TEST(Dominators, DiamondIdoms) {
  auto M = parse(R"(
    int f(int a) {
      int x = 0;
      if (a > 0) { x = 1; } else { x = 2; }
      return x;
    })");
  Function *F = M->function("f");
  F->recomputeCFGEdges();
  DomTree DT(*F);

  BasicBlock *Entry = F->entry();
  // Find then/else/join by structure.
  auto *Br = cast<BranchStmt>(Entry->terminator());
  BasicBlock *Then = Br->trueBlock();
  BasicBlock *Else = Br->falseBlock();
  ASSERT_EQ(Then->succs().size(), 1u);
  BasicBlock *Join = Then->succs()[0];

  EXPECT_EQ(DT.idom(Then), Entry);
  EXPECT_EQ(DT.idom(Else), Entry);
  EXPECT_EQ(DT.idom(Join), Entry);
  EXPECT_TRUE(DT.dominates(Entry, Join));
  EXPECT_FALSE(DT.dominates(Then, Join));
  EXPECT_TRUE(DT.dominates(Join, Join));

  // Dominance frontier of then/else is the join.
  ASSERT_EQ(DT.frontier(Then).size(), 1u);
  EXPECT_EQ(DT.frontier(Then)[0], Join);
}

TEST(Dominators, PostDominators) {
  auto M = parse(R"(
    int f(int a) {
      int x = 0;
      if (a > 0) { x = 1; }
      return x;
    })");
  Function *F = M->function("f");
  F->recomputeCFGEdges();
  DomTree PDT(*F, DomTree::Direction::Post);
  BasicBlock *Entry = F->entry();
  auto *Br = cast<BranchStmt>(Entry->terminator());
  BasicBlock *Then = Br->trueBlock();
  BasicBlock *Join = Br->falseBlock(); // No else: false edge goes to join.

  EXPECT_TRUE(PDT.dominates(F->exitBlock(), Entry));
  EXPECT_TRUE(PDT.dominates(Join, Then));
  EXPECT_FALSE(PDT.dominates(Then, Entry));
}

TEST(Dominators, RPOStartsAtEntry) {
  auto M = parse("int f(int a) { if (a > 0) { a = 1; } return a; }");
  Function *F = M->function("f");
  F->recomputeCFGEdges();
  auto RPO = reversePostOrder(*F);
  ASSERT_FALSE(RPO.empty());
  EXPECT_EQ(RPO[0], F->entry());
  // RPO is topological on this acyclic CFG: each block precedes its succs.
  std::map<BasicBlock *, size_t> Pos;
  for (size_t I = 0; I < RPO.size(); ++I)
    Pos[RPO[I]] = I;
  for (BasicBlock *B : RPO)
    for (BasicBlock *S : B->succs())
      EXPECT_LT(Pos[B], Pos[S]);
}

//===----------------------------------------------------------------------===
// SSA
//===----------------------------------------------------------------------===

TEST(SSA, VerifiesAfterConstruction) {
  auto M = parseSSA(R"(
    int f(int a, int b) {
      int x = 0;
      if (a > b) { x = a; } else { x = b; }
      int y = x + 1;
      if (y > 10) { y = 10; }
      return y;
    })");
  auto Errs = verifyModule(*M, /*ExpectSSA=*/true);
  EXPECT_EQ(Errs.size(), 0u) << (Errs.empty() ? "" : Errs[0]);
}

TEST(SSA, PlacesPhiAtJoin) {
  auto M = parseSSA(R"(
    int f(int a) {
      int x = 0;
      if (a > 0) { x = 1; } else { x = 2; }
      return x;
    })");
  Function *F = M->function("f");
  int Phis = 0;
  for (BasicBlock *B : F->blocks())
    for (Stmt *S : B->stmts())
      if (auto *Phi = dyn_cast<PhiStmt>(S)) {
        ++Phis;
        EXPECT_EQ(Phi->incoming().size(), 2u);
      }
  EXPECT_GE(Phis, 1);
}

TEST(SSA, NoPhiForStraightLine) {
  auto M = parseSSA(R"(
    int f(int a) {
      int x = a;
      x = x + 1;
      x = x + 2;
      return x;
    })");
  Function *F = M->function("f");
  for (BasicBlock *B : F->blocks())
    for (Stmt *S : B->stmts())
      EXPECT_FALSE(isa<PhiStmt>(S));
  EXPECT_EQ(verifyModule(*M, true).size(), 0u);
}

TEST(SSA, SingleDefInOneBranchStillGetsPhi) {
  // x defined in entry and redefined in the then-branch only: the join
  // still needs a phi.
  auto M = parseSSA(R"(
    int f(int a) {
      int x = 0;
      if (a > 0) { x = 1; }
      return x;
    })");
  Function *F = M->function("f");
  int Phis = 0;
  for (BasicBlock *B : F->blocks())
    for (Stmt *S : B->stmts())
      if (isa<PhiStmt>(S))
        ++Phis;
  EXPECT_GE(Phis, 1);
  EXPECT_EQ(verifyModule(*M, true).size(), 0u);
}

TEST(SSA, ParamsKeepTheirIdentity) {
  auto M = parseSSA("int f(int a) { return a; }");
  Function *F = M->function("f");
  Variable *A = F->params()[0];
  auto *Ret = F->returnStmt();
  ASSERT_NE(Ret, nullptr);
  ASSERT_EQ(Ret->values().size(), 1u);
  // retval = a; return retval — the assignment's source is still `a`.
  bool FoundParamUse = false;
  for (BasicBlock *B : F->blocks())
    for (Stmt *S : B->stmts())
      if (auto *As = dyn_cast<AssignStmt>(S))
        if (As->src() == A)
          FoundParamUse = true;
  EXPECT_TRUE(FoundParamUse);
}

TEST(SSA, DefPointersAreSet) {
  auto M = parseSSA(R"(
    int f(int a) {
      int x = a + 1;
      return x;
    })");
  Function *F = M->function("f");
  for (BasicBlock *B : F->blocks())
    for (Stmt *S : B->stmts())
      if (Variable *D = S->definedVar())
        EXPECT_EQ(D->def(), S);
}

TEST(SSA, StmtOrderIsTopological) {
  auto M = parseSSA(R"(
    int f(int a) {
      int x = 0;
      if (a > 0) { x = 1; } else { x = 2; }
      return x;
    })");
  Function *F = M->function("f");
  ASSERT_TRUE(F->hasStmtOrder());
  // Defs precede uses in the order.
  for (BasicBlock *B : F->blocks())
    for (Stmt *S : B->stmts()) {
      if (auto *As = dyn_cast<AssignStmt>(S))
        if (auto *V = dyn_cast<Variable>(As->src()))
          if (V->def())
            EXPECT_LT(F->stmtOrder(V->def()), F->stmtOrder(S));
    }
}

//===----------------------------------------------------------------------===
// CallGraph
//===----------------------------------------------------------------------===

TEST(CallGraphTest, BottomUpOrderPutsCalleesFirst) {
  auto M = parse(R"(
    void leaf() { }
    void mid() { leaf(); }
    void top() { mid(); leaf(); }
  )");
  CallGraph CG(*M);
  auto &Order = CG.bottomUpOrder();
  std::map<std::string, size_t> Pos;
  for (size_t I = 0; I < Order.size(); ++I)
    Pos[Order[I]->name()] = I;
  EXPECT_LT(Pos["leaf"], Pos["mid"]);
  EXPECT_LT(Pos["mid"], Pos["top"]);
  EXPECT_EQ(CG.numSCCs(), 3u);
}

TEST(CallGraphTest, ResolvesCalleePointers) {
  auto M = parse(R"(
    void callee() { }
    void caller() { callee(); unknown_external(); }
  )");
  Function *Caller = M->function("caller");
  CallGraph CG(*M);
  EXPECT_EQ(CG.callees(Caller).size(), 1u);
  EXPECT_EQ(CG.callers(M->function("callee")).size(), 1u);
}

TEST(CallGraphTest, RecursionFormsSCC) {
  auto M = parse(R"(
    void a() { b(); }
    void b() { a(); }
    void main2() { a(); }
  )");
  CallGraph CG(*M);
  EXPECT_TRUE(CG.inSameSCC(M->function("a"), M->function("b")));
  EXPECT_FALSE(CG.inSameSCC(M->function("a"), M->function("main2")));
  EXPECT_EQ(CG.numSCCs(), 2u);
}

//===----------------------------------------------------------------------===
// Conditions (gated SSA + control dependence)
//===----------------------------------------------------------------------===

class ConditionsTest : public ::testing::Test {
protected:
  smt::ExprContext Ctx;
};

TEST_F(ConditionsTest, PhiGatesAreComplementary) {
  auto M = parseSSA(R"(
    int f(int a) {
      int x = 0;
      if (a > 0) { x = 1; } else { x = 2; }
      return x;
    })");
  Function *F = M->function("f");
  SymbolMap Syms(Ctx);
  ConditionMap CM(*F, Syms);

  const PhiStmt *Phi = nullptr;
  for (BasicBlock *B : F->blocks())
    for (Stmt *S : B->stmts())
      if (auto *P = dyn_cast<PhiStmt>(S))
        Phi = P;
  ASSERT_NE(Phi, nullptr);
  ASSERT_EQ(Phi->incoming().size(), 2u);

  const smt::Expr *G0 = CM.phiGate(Phi, Phi->incoming()[0].first);
  const smt::Expr *G1 = CM.phiGate(Phi, Phi->incoming()[1].first);
  // Gates must be θ and ¬θ for a diamond.
  EXPECT_EQ(Ctx.mkOr(G0, G1), Ctx.getTrue());
  EXPECT_EQ(Ctx.mkAnd(G0, G1), Ctx.getFalse());
}

TEST_F(ConditionsTest, EdgeCondsUseBranchVariable) {
  auto M = parseSSA(R"(
    int f(bool t) {
      int x = 0;
      if (t) { x = 1; }
      return x;
    })");
  Function *F = M->function("f");
  SymbolMap Syms(Ctx);
  ConditionMap CM(*F, Syms);

  auto *Br = cast<BranchStmt>(F->entry()->terminator());
  const smt::Expr *TrueEdge = CM.edgeCond(F->entry(), Br->trueBlock());
  const smt::Expr *FalseEdge = CM.edgeCond(F->entry(), Br->falseBlock());
  EXPECT_EQ(TrueEdge, Syms[Br->cond()]);
  EXPECT_EQ(FalseEdge, Ctx.mkNot(TrueEdge));
}

TEST_F(ConditionsTest, ReachCondOfJoinIsTrue) {
  auto M = parseSSA(R"(
    int f(bool t) {
      int x = 0;
      if (t) { x = 1; } else { x = 2; }
      return x;
    })");
  Function *F = M->function("f");
  SymbolMap Syms(Ctx);
  ConditionMap CM(*F, Syms);
  // The join and exit are reached unconditionally: θ ∨ ¬θ folds to true.
  EXPECT_EQ(CM.canonicalPathCond(F->exitBlock()), Ctx.getTrue());
}

TEST_F(ConditionsTest, ReachCondOfBranchSideIsLiteral) {
  auto M = parseSSA(R"(
    int f(bool t) {
      int x = 0;
      if (t) { x = 1; }
      return x;
    })");
  Function *F = M->function("f");
  SymbolMap Syms(Ctx);
  ConditionMap CM(*F, Syms);
  auto *Br = cast<BranchStmt>(F->entry()->terminator());
  const smt::Expr *RC = CM.canonicalPathCond(Br->trueBlock());
  EXPECT_EQ(RC, Syms[Br->cond()]);
}

TEST_F(ConditionsTest, ControlDepsOfNestedBranches) {
  auto M = parseSSA(R"(
    int f(bool t, bool u) {
      int x = 0;
      if (t) {
        if (u) { x = 1; }
      }
      return x;
    })");
  Function *F = M->function("f");
  SymbolMap Syms(Ctx);
  ConditionMap CM(*F, Syms);

  auto *OuterBr = cast<BranchStmt>(F->entry()->terminator());
  BasicBlock *OuterThen = OuterBr->trueBlock();
  auto *InnerBr = cast<BranchStmt>(OuterThen->terminator());
  BasicBlock *InnerThen = InnerBr->trueBlock();

  // Inner then-block is control dependent on the inner branch (true edge);
  // the outer then-block on the outer branch.
  const auto &CDInner = CM.controlDeps(InnerThen);
  ASSERT_EQ(CDInner.size(), 1u);
  EXPECT_EQ(CDInner[0].BranchVar, cast<Variable>(InnerBr->cond()));
  EXPECT_TRUE(CDInner[0].Polarity);

  const auto &CDOuter = CM.controlDeps(OuterThen);
  ASSERT_EQ(CDOuter.size(), 1u);
  EXPECT_EQ(CDOuter[0].BranchVar, cast<Variable>(OuterBr->cond()));

  // The exit block is control dependent on nothing.
  EXPECT_TRUE(CM.controlDeps(F->exitBlock()).empty());
}

TEST_F(ConditionsTest, JoinBlockHasNoControlDeps) {
  auto M = parseSSA(R"(
    int f(bool t) {
      int x = 0;
      if (t) { x = 1; } else { x = 2; }
      return x;
    })");
  Function *F = M->function("f");
  SymbolMap Syms(Ctx);
  ConditionMap CM(*F, Syms);
  auto *Br = cast<BranchStmt>(F->entry()->terminator());
  BasicBlock *Join = Br->trueBlock()->succs()[0];
  EXPECT_TRUE(CM.controlDeps(Join).empty());
  EXPECT_EQ(CM.controlDeps(Br->trueBlock()).size(), 1u);
  EXPECT_EQ(CM.controlDeps(Br->falseBlock()).size(), 1u);
}

TEST_F(ConditionsTest, SymbolMapTypesFollowIR) {
  auto M = parseSSA("int f(bool t, int x, int *p) { return x; }");
  Function *F = M->function("f");
  SymbolMap Syms(Ctx);
  EXPECT_TRUE(Syms[F->params()[0]]->isBool());
  EXPECT_FALSE(Syms[F->params()[1]]->isBool());
  EXPECT_FALSE(Syms[F->params()[2]]->isBool()); // Pointers are int terms.
  // Stable mapping.
  EXPECT_EQ(Syms[F->params()[0]], Syms[F->params()[0]]);
}

} // namespace
} // namespace pinpoint::ir
