//===- tests/WorkloadTest.cpp - Generator / oracle / suite tests -----------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "svfa/GlobalSVFA.h"
#include "workload/Evaluate.h"
#include "workload/Juliet.h"
#include "workload/Subjects.h"

#include <gtest/gtest.h>

namespace pinpoint::workload {
namespace {

std::vector<ReportView> toViews(const std::vector<svfa::Report> &Reports,
                                BugChecker C) {
  std::vector<ReportView> Out;
  for (const auto &R : Reports)
    Out.push_back({R.Source.Line, R.Sink.Line, C});
  return Out;
}

std::vector<svfa::Report> runChecker(const std::string &Source,
                                     const checkers::CheckerSpec &Spec) {
  ir::Module M;
  std::vector<frontend::Diag> Diags;
  bool OK = frontend::parseModule(Source, M, Diags);
  for (auto &D : Diags)
    ADD_FAILURE() << D.str();
  EXPECT_TRUE(OK) << "generated source must parse";
  smt::ExprContext Ctx;
  return svfa::checkModule(M, Ctx, Spec);
}

TEST(Generator, IsDeterministic) {
  WorkloadConfig Cfg;
  Cfg.Seed = 99;
  Cfg.TargetLoC = 500;
  Cfg.FeasibleUAF = 2;
  Workload A = generate(Cfg);
  Workload B = generate(Cfg);
  EXPECT_EQ(A.Source, B.Source);
  EXPECT_EQ(A.Bugs.size(), B.Bugs.size());
}

TEST(Generator, HitsSizeTarget) {
  WorkloadConfig Cfg;
  Cfg.TargetLoC = 2000;
  Workload W = generate(Cfg);
  EXPECT_GE(W.LoC, 2000u);
  EXPECT_LT(W.LoC, 2400u); // Within one template of the target.
}

TEST(Generator, GeneratedSourceParses) {
  for (uint64_t Seed : {1ull, 7ull, 42ull, 12345ull}) {
    WorkloadConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.TargetLoC = 800;
    Cfg.FeasibleUAF = 3;
    Cfg.InfeasibleUAF = 3;
    Cfg.EnvGuardedUAF = 1;
    Cfg.FeasibleDF = 2;
    Cfg.FeasibleTaint = 2;
    Workload W = generate(Cfg);
    ir::Module M;
    std::vector<frontend::Diag> Diags;
    EXPECT_TRUE(frontend::parseModule(W.Source, M, Diags))
        << "seed " << Seed << ": "
        << (Diags.empty() ? "?" : Diags[0].str());
  }
}

TEST(Generator, PlantsRequestedBugCounts) {
  WorkloadConfig Cfg;
  Cfg.FeasibleUAF = 4;
  Cfg.InfeasibleUAF = 3;
  Cfg.EnvGuardedUAF = 2;
  Cfg.FeasibleDF = 2;
  Workload W = generate(Cfg);
  int Feas = 0, Inf = 0, Env = 0, DF = 0;
  for (const auto &B : W.Bugs) {
    if (B.Checker == BugChecker::DoubleFree)
      ++DF;
    else if (B.Kind == BugKind::Feasible)
      ++Feas;
    else if (B.Kind == BugKind::Infeasible)
      ++Inf;
    else
      ++Env;
  }
  EXPECT_EQ(Feas, 4);
  EXPECT_EQ(Inf, 3);
  EXPECT_EQ(Env, 2);
  EXPECT_EQ(DF, 2);
}

TEST(GeneratorEndToEnd, PinpointFindsFeasibleAndPrunesInfeasible) {
  WorkloadConfig Cfg;
  Cfg.Seed = 2024;
  Cfg.TargetLoC = 600;
  Cfg.FeasibleUAF = 4;
  Cfg.InfeasibleUAF = 4;
  Cfg.EnvGuardedUAF = 1;
  Workload W = generate(Cfg);

  auto Reports = runChecker(W.Source, checkers::useAfterFreeChecker());
  auto Eval = evaluate(W.Bugs, toViews(Reports, BugChecker::UseAfterFree),
                       BugChecker::UseAfterFree);

  EXPECT_EQ(Eval.FalseNegatives, 0) << "all feasible plants found";
  EXPECT_EQ(Eval.TruePositives, 4);
  // Infeasible plants must be pruned by path sensitivity; the env-guarded
  // plant is reported (it is statically feasible) and counts as the FP.
  EXPECT_EQ(Eval.FalsePositives, 1);
}

TEST(GeneratorEndToEnd, PathInsensitiveModeReportsInfeasiblePlants) {
  WorkloadConfig Cfg;
  Cfg.Seed = 77;
  Cfg.TargetLoC = 400;
  Cfg.FeasibleUAF = 2;
  Cfg.InfeasibleUAF = 3;
  Workload W = generate(Cfg);

  ir::Module M;
  std::vector<frontend::Diag> Diags;
  ASSERT_TRUE(frontend::parseModule(W.Source, M, Diags));
  smt::ExprContext Ctx;
  svfa::GlobalOptions O;
  O.PathSensitive = false;
  auto Reports = svfa::checkModule(M, Ctx, checkers::useAfterFreeChecker(), O);
  auto Eval = evaluate(W.Bugs, toViews(Reports, BugChecker::UseAfterFree),
                       BugChecker::UseAfterFree);
  EXPECT_GT(Eval.FalsePositives, 0) << "ablation must report infeasible plants";
  EXPECT_EQ(Eval.FalseNegatives, 0);
}

TEST(GeneratorEndToEnd, TaintPlantsAreFoundByTaintCheckers) {
  WorkloadConfig Cfg;
  Cfg.Seed = 5;
  Cfg.TargetLoC = 300;
  Cfg.FeasibleTaint = 2;
  Cfg.InfeasibleTaint = 1;
  Workload W = generate(Cfg);

  auto PT = runChecker(W.Source, checkers::pathTraversalChecker());
  auto EvalPT = evaluate(W.Bugs, toViews(PT, BugChecker::PathTraversal),
                         BugChecker::PathTraversal);
  EXPECT_EQ(EvalPT.FalseNegatives, 0);
  EXPECT_EQ(EvalPT.FalsePositives, 0);

  auto DT = runChecker(W.Source, checkers::dataTransmissionChecker());
  auto EvalDT = evaluate(W.Bugs, toViews(DT, BugChecker::DataTransmission),
                         BugChecker::DataTransmission);
  EXPECT_EQ(EvalDT.FalseNegatives, 0);
}

TEST(Subjects, TableMatchesPaperShape) {
  const auto &Subjects = table1Subjects();
  ASSERT_EQ(Subjects.size(), 30u);
  int TotalTP = 0, TotalFP = 0;
  for (const auto &S : Subjects) {
    TotalTP += S.FeasibleUAF;
    TotalFP += S.EnvGuardedUAF;
  }
  // Table 1: 12 true positives, 2 false positives, 14 reports.
  EXPECT_EQ(TotalTP, 12);
  EXPECT_EQ(TotalFP, 2);
  // Ordered by size within origin.
  EXPECT_STREQ(Subjects.front().Name, "mcf");
  EXPECT_STREQ(Subjects.back().Name, "firefox");
}

TEST(Subjects, ConfigScalesWithSize) {
  const auto &Subjects = table1Subjects();
  WorkloadConfig Small = configFor(Subjects[0], 0.01);
  WorkloadConfig Large = configFor(Subjects[29], 0.01);
  EXPECT_LT(Small.TargetLoC, Large.TargetLoC);
  EXPECT_LT(Small.AliasNoise, Large.AliasNoise);
}

TEST(Juliet, SuiteHasBadAndGoodCases) {
  auto Suite = generateJulietSuite(3);
  int Bad = 0, Good = 0;
  for (const auto &C : Suite) {
    (C.IsBad ? Bad : Good)++;
    ir::Module M;
    std::vector<frontend::Diag> Diags;
    EXPECT_TRUE(frontend::parseModule(C.Source, M, Diags)) << C.Name;
    if (C.IsBad)
      EXPECT_FALSE(C.Bugs.empty());
  }
  EXPECT_GT(Bad, 0);
  EXPECT_EQ(Good, 2 * Bad);
}

TEST(Juliet, FullRecallOnBadCases) {
  // The paper reports 1421/1421 on Juliet; our oracle must agree on a
  // sampled slice of the suite.
  auto Suite = generateJulietSuite(4);
  for (const auto &C : Suite) {
    auto Spec = C.Checker == BugChecker::DoubleFree
                    ? checkers::doubleFreeChecker()
                    : checkers::useAfterFreeChecker();
    if (!C.IsBad)
      continue;
    auto Reports = runChecker(C.Source, Spec);
    auto Eval = evaluate(C.Bugs, toViews(Reports, C.Checker), C.Checker);
    EXPECT_EQ(Eval.FalseNegatives, 0) << C.Name;
  }
}

TEST(Juliet, NoReportsOnGoodCases) {
  auto Suite = generateJulietSuite(4);
  for (const auto &C : Suite) {
    if (C.IsBad)
      continue;
    auto Spec = C.Checker == BugChecker::DoubleFree
                    ? checkers::doubleFreeChecker()
                    : checkers::useAfterFreeChecker();
    auto Reports = runChecker(C.Source, Spec);
    EXPECT_TRUE(Reports.empty()) << C.Name;
  }
}

TEST(Evaluate, ClassifiesCorrectly) {
  std::vector<PlantedBug> Bugs = {
      {BugKind::Feasible, BugChecker::UseAfterFree, "s", 10, 20},
      {BugKind::Infeasible, BugChecker::UseAfterFree, "s", 30, 40},
  };
  std::vector<ReportView> Reports = {
      {10, 20, BugChecker::UseAfterFree}, // TP.
      {30, 40, BugChecker::UseAfterFree}, // FP (infeasible plant).
      {99, 100, BugChecker::UseAfterFree}, // FP (spurious).
  };
  EvalResult R = evaluate(Bugs, Reports, BugChecker::UseAfterFree);
  EXPECT_EQ(R.TruePositives, 1);
  EXPECT_EQ(R.FalsePositives, 2);
  EXPECT_EQ(R.FalseNegatives, 0);
  EXPECT_NEAR(R.fpRate(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(R.recall(), 1.0, 1e-9);
}

TEST(Evaluate, SinkLineWindowTolerance) {
  std::vector<PlantedBug> Bugs = {
      {BugKind::Feasible, BugChecker::UseAfterFree, "s", 10, 20}};
  std::vector<ReportView> Reports = {{10, 21, BugChecker::UseAfterFree}};
  EvalResult R = evaluate(Bugs, Reports, BugChecker::UseAfterFree);
  EXPECT_EQ(R.TruePositives, 1);
}

} // namespace
} // namespace pinpoint::workload
