//===- tests/SupportTest.cpp - Unit tests for src/support ------------------===//
//
// Part of the Pinpoint reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Casting.h"
#include "support/Interrupt.h"
#include "support/RNG.h"
#include "support/SourceLoc.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

namespace pinpoint {
namespace {

//===----------------------------------------------------------------------===
// Arena
//===----------------------------------------------------------------------===

TEST(Arena, AllocatesAlignedMemory) {
  Arena A;
  void *P1 = A.allocate(13, 8);
  void *P2 = A.allocate(7, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P1) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P2) % 16, 0u);
  EXPECT_NE(P1, P2);
  EXPECT_EQ(A.bytesUsed(), 20u);
}

TEST(Arena, GrowsAcrossSlabs) {
  Arena A;
  // Allocate more than one slab's worth.
  for (int I = 0; I < 40; ++I) {
    void *P = A.allocate(100 * 1024);
    ASSERT_NE(P, nullptr);
  }
  EXPECT_GE(A.bytesReserved(), A.bytesUsed());
  EXPECT_EQ(A.bytesUsed(), 40u * 100 * 1024);
}

TEST(Arena, LargeSingleAllocation) {
  Arena A;
  void *P = A.allocate(8 << 20); // Bigger than the default slab.
  ASSERT_NE(P, nullptr);
}

TEST(Arena, RunsDestructorsOfNonTrivialObjects) {
  static int Destroyed = 0;
  struct Tracked {
    std::string Payload = "payload"; // Non-trivially destructible.
    ~Tracked() { ++Destroyed; }
  };
  {
    Arena A;
    A.allocObject<Tracked>();
    A.allocObject<Tracked>();
    EXPECT_EQ(Destroyed, 0);
  }
  EXPECT_EQ(Destroyed, 2);
}

TEST(Arena, ResetReclaimsAccounting) {
  int64_t Before = MemStats::get().liveBytes();
  {
    Arena A;
    A.allocate(3 << 20);
    EXPECT_GT(MemStats::get().liveBytes(), Before);
  }
  EXPECT_EQ(MemStats::get().liveBytes(), Before);
}

//===----------------------------------------------------------------------===
// Casting
//===----------------------------------------------------------------------===

struct Base {
  enum Kind { K_A, K_B } TheKind;
  explicit Base(Kind K) : TheKind(K) {}
};
struct DerivedA : Base {
  DerivedA() : Base(K_A) {}
  static bool classof(const Base *B) { return B->TheKind == K_A; }
};
struct DerivedB : Base {
  DerivedB() : Base(K_B) {}
  static bool classof(const Base *B) { return B->TheKind == K_B; }
};

TEST(Casting, IsaAndDynCast) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
  EXPECT_NE(dyn_cast<DerivedA>(B), nullptr);
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
  EXPECT_EQ(cast<DerivedA>(B), &A);
}

TEST(Casting, DynCastOrNullToleratesNull) {
  Base *B = nullptr;
  EXPECT_EQ(dyn_cast_or_null<DerivedA>(B), nullptr);
}

//===----------------------------------------------------------------------===
// RNG
//===----------------------------------------------------------------------===

TEST(RNG, DeterministicForSameSeed) {
  RNG A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, DifferentSeedsDiverge) {
  RNG A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 5);
}

TEST(RNG, BelowStaysInRange) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(RNG, RangeIsInclusive) {
  RNG R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u); // All values hit.
}

TEST(RNG, ForkProducesIndependentStream) {
  RNG A(5);
  RNG C = A.fork(1);
  RNG A2(5);
  RNG C2 = A2.fork(1);
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(C.next(), C2.next());
}

//===----------------------------------------------------------------------===
// Statistics
//===----------------------------------------------------------------------===

TEST(Statistics, CountersAccumulate) {
  Counters::get().clear();
  Counters::get().add("test.counter", 3);
  Counters::get().add("test.counter");
  EXPECT_EQ(Counters::get().value("test.counter"), 4);
  EXPECT_EQ(Counters::get().value("test.missing"), 0);
}

TEST(Statistics, PeakTracksHighWaterMark) {
  MemStats &M = MemStats::get();
  M.resetPeak();
  int64_t Base = M.liveBytes();
  M.noteArenaBytes(1000);
  M.noteArenaBytes(-1000);
  EXPECT_EQ(M.liveBytes(), Base);
  EXPECT_GE(M.peakBytes(), Base + 1000);
}

TEST(Statistics, ProcessPeakRSSReadable) {
  EXPECT_GT(MemStats::processPeakRSS(), 0);
}

TEST(SourceLoc, Formatting) {
  SourceLoc L{12, 5};
  EXPECT_TRUE(L.isValid());
  EXPECT_EQ(L.str(), "12:5");
  EXPECT_FALSE(SourceLoc().isValid());
}

//===----------------------------------------------------------------------===
// CancelToken / cooperative cancellation
//===----------------------------------------------------------------------===

TEST(CancelToken, OneWayUntilReset) {
  CancelToken T;
  EXPECT_FALSE(T.cancelled());
  T.cancel();
  EXPECT_TRUE(T.cancelled());
  T.cancel(); // Idempotent.
  EXPECT_TRUE(T.cancelled());
  T.reset();
  EXPECT_FALSE(T.cancelled());
}

TEST(CancelToken, VisibleAcrossThreads) {
  CancelToken T;
  std::atomic<bool> Seen{false};
  std::thread Poller([&] {
    while (!T.cancelled())
      std::this_thread::yield();
    Seen.store(true);
  });
  T.cancel();
  Poller.join();
  EXPECT_TRUE(Seen.load());
}

//===----------------------------------------------------------------------===
// ThreadPool shutdown via CancelToken
//===----------------------------------------------------------------------===

TEST(ThreadPoolShutdown, RequestStopCancelsTokenAndDrainsGroups) {
  ThreadPool Pool(4);
  EXPECT_FALSE(Pool.shutdownToken().cancelled());

  // Queued work completes even when stop is requested mid-flight: the
  // helping wait drains the queue, so no spawned task is lost.
  std::atomic<int> Ran{0};
  {
    ThreadPool::TaskGroup G(Pool);
    for (int I = 0; I < 64; ++I)
      G.spawn([&] { Ran.fetch_add(1, std::memory_order_relaxed); });
    Pool.requestStop();
    G.wait();
  }
  EXPECT_EQ(Ran.load(), 64);
  EXPECT_TRUE(Pool.shutdownToken().cancelled());
}

TEST(ThreadPoolShutdown, DestructionAfterStopIsClean) {
  // requestStop() then destruction must not hang or double-drain; this is
  // the driver's signal-exit path (run under TSan in CI).
  auto Pool = std::make_unique<ThreadPool>(2);
  std::atomic<int> Ran{0};
  {
    ThreadPool::TaskGroup G(*Pool);
    for (int I = 0; I < 8; ++I)
      G.spawn([&] { Ran.fetch_add(1, std::memory_order_relaxed); });
    G.wait();
  }
  Pool->requestStop();
  Pool.reset();
  EXPECT_EQ(Ran.load(), 8);
}

TEST(ProcessToken, RecordsAndResets) {
  interrupt::resetForTesting();
  EXPECT_FALSE(interrupt::processToken().cancelled());
  EXPECT_EQ(interrupt::lastSignal(), 0);
  interrupt::processToken().cancel();
  EXPECT_TRUE(interrupt::processToken().cancelled());
  interrupt::resetForTesting();
  EXPECT_FALSE(interrupt::processToken().cancelled());
  EXPECT_EQ(interrupt::lastSignal(), 0);
}

} // namespace
} // namespace pinpoint
